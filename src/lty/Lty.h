//===- lty/Lty.h - Lambda types (LTY) ---------------------------------------===//
///
/// \file
/// The lambda types of the typed intermediate language LEXP (paper Section
/// 4.1):
///
///   INTty | REALty | BOXEDty | RBOXEDty
///   | RECORDty [t1, ..., tn]        -- core records, field-typed
///   | SRECORDty [t1, ..., tn]       -- module (structure) records
///   | PRECORDty [(i1,t1), ...]      -- partial view of an external structure
///   | ARROWty (t1, t2)
///
/// BOXEDty is a one-word pointer whose target's fields may or may not be
/// boxed (shallow wrapping). RBOXEDty is a one-word pointer to a
/// *recursively* boxed object — the standard boxed representation used by
/// non-type-based compilers and, following Leroy, by all recursive datatype
/// contents.
///
/// LTYs are globally hash-consed (paper Section 4.5): equality is pointer
/// equality, which makes the coerce fast path O(1). Hash-consing can be
/// disabled to reproduce the paper's compile-time ablation.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LTY_LTY_H
#define SMLTC_LTY_LTY_H

#include "support/Arena.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace smltc {

enum class LtyKind : uint8_t {
  Int,
  Real,
  Boxed,
  RBoxed,
  Record,
  SRecord,
  PRecord,
  Arrow,
};

/// A partial-record field: (index in the full record, field type).
struct PField {
  int Index;
  const class Lty *Ty;
};

class Lty {
public:
  LtyKind kind() const { return K; }
  Span<const Lty *> fields() const { return Fields; }
  Span<PField> pfields() const { return PFields; }
  const Lty *from() const { return From; }
  const Lty *to() const { return To; }
  unsigned id() const { return Id; }

  bool isRecordLike() const {
    return K == LtyKind::Record || K == LtyKind::SRecord;
  }

private:
  friend class LtyContext;
  LtyKind K;
  Span<const Lty *> Fields;
  Span<PField> PFields;
  const Lty *From = nullptr;
  const Lty *To = nullptr;
  unsigned Id = 0;
};

/// Creation context: owns the hash-cons table. With hash-consing on,
/// structural equality is pointer equality; with it off, use equal().
class LtyContext {
public:
  explicit LtyContext(Arena &A, bool HashCons = true)
      : A(A), HashCons(HashCons) {
    IntTy = alloc(LtyKind::Int, {}, {}, nullptr, nullptr);
    RealTy = alloc(LtyKind::Real, {}, {}, nullptr, nullptr);
    BoxedTy = alloc(LtyKind::Boxed, {}, {}, nullptr, nullptr);
    RBoxedTy = alloc(LtyKind::RBoxed, {}, {}, nullptr, nullptr);
  }

  const Lty *intTy() const { return IntTy; }
  const Lty *realTy() const { return RealTy; }
  const Lty *boxedTy() const { return BoxedTy; }
  const Lty *rboxedTy() const { return RBoxedTy; }

  const Lty *record(const std::vector<const Lty *> &Fields);
  const Lty *srecord(const std::vector<const Lty *> &Fields);
  const Lty *precord(const std::vector<PField> &Fields);
  const Lty *arrow(const Lty *From, const Lty *To);

  /// Structural equality. O(1) under hash-consing.
  bool equal(const Lty *A, const Lty *B) const;

  /// The paper's dup operation: the standard-boxed view of a type.
  ///   dup(RECORD [t1..tn]) = RECORD [RBOXED, ..., RBOXED]
  ///   dup(ARROW (t1, t2))  = ARROW (RBOXED, RBOXED)
  ///   dup(t)               = BOXED otherwise
  const Lty *dup(const Lty *T);

  /// True if a value of type T is already in recursively boxed form (safe
  /// to hand to the runtime's polymorphic equality / GC-walking code).
  bool isRecursivelyBoxed(const Lty *T) const;

  /// Number of live (interned) nodes — used by the hash-consing ablation.
  size_t internedCount() const { return Table.size(); }
  size_t allocatedCount() const { return NextId; }
  bool hashConsing() const { return HashCons; }

  /// Drops every interned entry (the weak-pointer staleness substitute:
  /// SML/NJ used GC weak pointers; we purge between compilation units).
  void purge() { Table.clear(); }

  std::string toString(const Lty *T) const;

private:
  const Lty *alloc(LtyKind K, std::vector<const Lty *> Fields,
                   std::vector<PField> PFields, const Lty *From,
                   const Lty *To);
  size_t hashOf(LtyKind K, const std::vector<const Lty *> &Fields,
                const std::vector<PField> &PFields, const Lty *From,
                const Lty *To) const;

  Arena &A;
  bool HashCons;
  unsigned NextId = 0;
  std::unordered_multimap<size_t, const Lty *> Table;
  const Lty *IntTy;
  const Lty *RealTy;
  const Lty *BoxedTy;
  const Lty *RBoxedTy;
};

} // namespace smltc

#endif // SMLTC_LTY_LTY_H
