//===- lty/TypeToLty.h - ML types to LTY (paper Figure 6) -------------------===//
///
/// \file
/// Translates semantic ML types, type schemes, and structure statics into
/// LTYs. Implements the paper's Figure 6 algorithm: type variables that
/// appear inside (rigid) constructor types are recursively boxed (RBOXED);
/// other type variables are BOXED; rigid constructor types are BOXED;
/// flexible (abstract) constructor types are RBOXED. Equality type
/// variables are also RBOXED so the runtime polymorphic equality can walk
/// their values.
///
/// Three representation modes mirror the measured compilers:
///   Standard    (sml.nrp / sml.fag): everything standard boxed
///   RecordsOnly (sml.rep / sml.mtd): typed records, floats still boxed
///   FullFloat   (sml.ffb / sml.fp3): floats unboxed (REALty)
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LTY_TYPETOLTY_H
#define SMLTC_LTY_TYPETOLTY_H

#include "elab/Absyn.h"
#include "lty/Lty.h"
#include "types/Type.h"

#include <unordered_set>

namespace smltc {

enum class ReprMode : uint8_t { Standard, RecordsOnly, FullFloat };

class TypeLowering {
public:
  TypeLowering(LtyContext &LC, TypeContext &Types, ReprMode Mode)
      : LC(LC), Types(Types), Mode(Mode) {}

  ReprMode mode() const { return Mode; }
  LtyContext &ltyContext() { return LC; }

  /// Lowers a monotype occurrence.
  const Lty *lower(Type *T);
  /// Lowers a type scheme (quantifiers ignored; bound vars lower as BOXED
  /// or RBOXED per the marking rules).
  const Lty *lowerScheme(const TypeScheme &S);
  /// Lowers structure statics to an SRECORDty.
  const Lty *lowerStatic(const StrStatic *S);

private:
  const Lty *lowerRec(Type *T,
                      const std::unordered_set<const Type *> &Marked);
  void markVars(Type *T, bool InCon,
                std::unordered_set<const Type *> &Marked);

  LtyContext &LC;
  TypeContext &Types;
  ReprMode Mode;
};

} // namespace smltc

#endif // SMLTC_LTY_TYPETOLTY_H
