//===- lty/TypeToLty.cpp - ML types to LTY -----------------------------------===//

#include "lty/TypeToLty.h"

using namespace smltc;

void TypeLowering::markVars(Type *T, bool InCon,
                            std::unordered_set<const Type *> &Marked) {
  T = Types.headNormalize(T);
  switch (T->K) {
  case Type::Kind::Var:
    if (InCon || T->IsEq)
      Marked.insert(T);
    return;
  case Type::Kind::Con:
    // Record and function type constructors are not "constructor types"
    // (paper footnote 2); every other tycon application marks the
    // variables below it.
    for (Type *Arg : T->Args)
      markVars(Arg, /*InCon=*/true, Marked);
    return;
  case Type::Kind::Tuple:
    for (Type *E : T->Elems)
      markVars(E, InCon, Marked);
    return;
  case Type::Kind::Arrow:
    markVars(T->From, InCon, Marked);
    markVars(T->To, InCon, Marked);
    return;
  }
}

const Lty *TypeLowering::lowerRec(
    Type *T, const std::unordered_set<const Type *> &Marked) {
  T = Types.headNormalize(T);

  if (Mode == ReprMode::Standard) {
    // Non-type-based compilers: standard boxed representations everywhere.
    // Record and arrow arity is still structural (SELECTs exist in the
    // untyped compiler too), but every field/argument is one word.
    switch (T->K) {
    case Type::Kind::Var:
      return LC.rboxedTy();
    case Type::Kind::Con:
      if (T->Con == Types.IntTycon || T->Con == Types.UnitTycon)
        return LC.intTy();
      return LC.rboxedTy();
    case Type::Kind::Tuple: {
      if (T->Elems.empty())
        return LC.intTy();
      std::vector<const Lty *> Fields(T->Elems.size(), LC.rboxedTy());
      return LC.record(Fields);
    }
    case Type::Kind::Arrow:
      return LC.arrow(LC.rboxedTy(), LC.rboxedTy());
    }
    return LC.rboxedTy();
  }

  switch (T->K) {
  case Type::Kind::Var:
    return Marked.count(T) ? LC.rboxedTy() : LC.boxedTy();
  case Type::Kind::Con: {
    TyCon *C = T->Con;
    if (C == Types.IntTycon || C == Types.UnitTycon)
      return LC.intTy();
    if (C == Types.RealTycon)
      return Mode == ReprMode::FullFloat ? LC.realTy() : LC.boxedTy();
    if (C->K == TyCon::Kind::Flexible)
      return LC.rboxedTy();
    // All rigid constructor types (string, list, ref, array, exn, cont,
    // bool, user datatypes) are one-word pointers/words.
    return LC.boxedTy();
  }
  case Type::Kind::Tuple: {
    if (T->Elems.empty())
      return LC.intTy();
    std::vector<const Lty *> Fields;
    for (Type *E : T->Elems)
      Fields.push_back(lowerRec(E, Marked));
    return LC.record(Fields);
  }
  case Type::Kind::Arrow:
    return LC.arrow(lowerRec(T->From, Marked), lowerRec(T->To, Marked));
  }
  return LC.boxedTy();
}

const Lty *TypeLowering::lower(Type *T) {
  std::unordered_set<const Type *> Marked;
  if (Mode != ReprMode::Standard)
    markVars(T, /*InCon=*/false, Marked);
  return lowerRec(T, Marked);
}

const Lty *TypeLowering::lowerScheme(const TypeScheme &S) {
  return lower(S.Body);
}

const Lty *TypeLowering::lowerStatic(const StrStatic *S) {
  std::vector<const Lty *> Fields;
  for (const StrComp &C : S->Comps) {
    switch (C.K) {
    case StrComp::Kind::Val:
      Fields.push_back(lowerScheme(C.Scheme));
      break;
    case StrComp::Kind::Exn:
      Fields.push_back(LC.boxedTy()); // the runtime tag
      break;
    case StrComp::Kind::Str:
      Fields.push_back(lowerStatic(C.Str));
      break;
    }
  }
  return LC.srecord(Fields);
}
