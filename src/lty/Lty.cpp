//===- lty/Lty.cpp - Lambda types (LTY) --------------------------------------===//

#include "lty/Lty.h"

#include <cassert>
#include <sstream>

using namespace smltc;

size_t LtyContext::hashOf(LtyKind K, const std::vector<const Lty *> &Fields,
                          const std::vector<PField> &PFields,
                          const Lty *From, const Lty *To) const {
  size_t H = static_cast<size_t>(K) * 0x9e3779b97f4a7c15ULL;
  auto Mix = [&H](size_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  for (const Lty *F : Fields)
    Mix(F->id() + 1);
  for (const PField &F : PFields) {
    Mix(static_cast<size_t>(F.Index) * 31);
    Mix(F.Ty->id() + 1);
  }
  if (From)
    Mix(From->id() + 1);
  if (To)
    Mix(To->id() + 1);
  return H;
}

const Lty *LtyContext::alloc(LtyKind K, std::vector<const Lty *> Fields,
                             std::vector<PField> PFields, const Lty *From,
                             const Lty *To) {
  if (HashCons) {
    size_t H = hashOf(K, Fields, PFields, From, To);
    auto [Lo, Hi] = Table.equal_range(H);
    for (auto It = Lo; It != Hi; ++It) {
      const Lty *C = It->second;
      if (C->kind() != K || C->from() != From || C->to() != To)
        continue;
      if (C->fields().size() != Fields.size() ||
          C->pfields().size() != PFields.size())
        continue;
      bool Same = true;
      for (size_t I = 0; I < Fields.size() && Same; ++I)
        Same = C->fields()[I] == Fields[I];
      for (size_t I = 0; I < PFields.size() && Same; ++I)
        Same = C->pfields()[I].Index == PFields[I].Index &&
               C->pfields()[I].Ty == PFields[I].Ty;
      if (Same)
        return C;
    }
    Lty *N = A.create<Lty>();
    N->K = K;
    N->Fields = Span<const Lty *>::copy(A, Fields);
    N->PFields = Span<PField>::copy(A, PFields);
    N->From = From;
    N->To = To;
    N->Id = NextId++;
    Table.emplace(H, N);
    return N;
  }
  Lty *N = A.create<Lty>();
  N->K = K;
  N->Fields = Span<const Lty *>::copy(A, Fields);
  N->PFields = Span<PField>::copy(A, PFields);
  N->From = From;
  N->To = To;
  N->Id = NextId++;
  return N;
}

const Lty *LtyContext::record(const std::vector<const Lty *> &Fields) {
  return alloc(LtyKind::Record, Fields, {}, nullptr, nullptr);
}

const Lty *LtyContext::srecord(const std::vector<const Lty *> &Fields) {
  return alloc(LtyKind::SRecord, Fields, {}, nullptr, nullptr);
}

const Lty *LtyContext::precord(const std::vector<PField> &Fields) {
  return alloc(LtyKind::PRecord, {}, Fields, nullptr, nullptr);
}

const Lty *LtyContext::arrow(const Lty *From, const Lty *To) {
  return alloc(LtyKind::Arrow, {}, {}, From, To);
}

bool LtyContext::equal(const Lty *X, const Lty *Y) const {
  if (X == Y)
    return true;
  if (HashCons)
    return false; // interning makes pointer equality complete
  if (X->kind() != Y->kind())
    return false;
  switch (X->kind()) {
  case LtyKind::Int:
  case LtyKind::Real:
  case LtyKind::Boxed:
  case LtyKind::RBoxed:
    return true;
  case LtyKind::Record:
  case LtyKind::SRecord: {
    if (X->fields().size() != Y->fields().size())
      return false;
    for (size_t I = 0; I < X->fields().size(); ++I)
      if (!equal(X->fields()[I], Y->fields()[I]))
        return false;
    return true;
  }
  case LtyKind::PRecord: {
    if (X->pfields().size() != Y->pfields().size())
      return false;
    for (size_t I = 0; I < X->pfields().size(); ++I) {
      if (X->pfields()[I].Index != Y->pfields()[I].Index ||
          !equal(X->pfields()[I].Ty, Y->pfields()[I].Ty))
        return false;
    }
    return true;
  }
  case LtyKind::Arrow:
    return equal(X->from(), Y->from()) && equal(X->to(), Y->to());
  }
  return false;
}

const Lty *LtyContext::dup(const Lty *T) {
  switch (T->kind()) {
  case LtyKind::Record:
  case LtyKind::SRecord: {
    std::vector<const Lty *> Fields(T->fields().size(), RBoxedTy);
    return T->kind() == LtyKind::Record ? record(Fields) : srecord(Fields);
  }
  case LtyKind::PRecord: {
    std::vector<PField> Fields;
    for (const PField &F : T->pfields())
      Fields.push_back(PField{F.Index, RBoxedTy});
    return precord(Fields);
  }
  case LtyKind::Arrow:
    return arrow(RBoxedTy, RBoxedTy);
  default:
    return BoxedTy;
  }
}

bool LtyContext::isRecursivelyBoxed(const Lty *T) const {
  switch (T->kind()) {
  case LtyKind::Int: // tagged integers are valid standard-boxed words
  case LtyKind::RBoxed:
    return true;
  case LtyKind::Record:
  case LtyKind::SRecord: {
    for (const Lty *F : T->fields())
      if (!isRecursivelyBoxed(F))
        return false;
    return true;
  }
  case LtyKind::Arrow:
    return isRecursivelyBoxed(T->from()) && isRecursivelyBoxed(T->to());
  default:
    return false;
  }
}

std::string LtyContext::toString(const Lty *T) const {
  std::ostringstream OS;
  switch (T->kind()) {
  case LtyKind::Int:
    OS << "INT";
    break;
  case LtyKind::Real:
    OS << "REAL";
    break;
  case LtyKind::Boxed:
    OS << "BOXED";
    break;
  case LtyKind::RBoxed:
    OS << "RBOXED";
    break;
  case LtyKind::Record:
  case LtyKind::SRecord: {
    OS << (T->kind() == LtyKind::Record ? "RECORD[" : "SRECORD[");
    for (size_t I = 0; I < T->fields().size(); ++I) {
      if (I)
        OS << ", ";
      OS << toString(T->fields()[I]);
    }
    OS << ']';
    break;
  }
  case LtyKind::PRecord: {
    OS << "PRECORD[";
    for (size_t I = 0; I < T->pfields().size(); ++I) {
      if (I)
        OS << ", ";
      OS << '(' << T->pfields()[I].Index << ", "
         << toString(T->pfields()[I].Ty) << ')';
    }
    OS << ']';
    break;
  }
  case LtyKind::Arrow:
    OS << "ARROW(" << toString(T->from()) << ", " << toString(T->to())
       << ')';
    break;
  }
  return OS.str();
}
