//===- vm/VmMetrics.cpp - Runtime metrics JSON emitter ------------------------------===//

#include "vm/Vm.h"

#include <cinttypes>
#include <cstdio>

using namespace smltc;

std::string VmMetrics::toJson() const {
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"dispatch\":\"%s\",\"nursery_kb\":%zu,"
      "\"decode_sec\":%.6f,\"exec_sec\":%.6f,\"gc_sec\":%.6f,"
      "\"instructions\":%" PRIu64 ",\"cycles\":%" PRIu64 ","
      "\"instructions_per_sec\":%.0f,"
      "\"alloc_objects\":%" PRIu64 ",\"nursery_alloc_objects\":%" PRIu64
      ",\"alloc_words32\":%" PRIu64 ","
      "\"minor_collections\":%" PRIu64 ",\"major_collections\":%" PRIu64
      ",\"copied_words\":%" PRIu64 ",\"promoted_words\":%" PRIu64
      ",\"major_copied_words\":%" PRIu64
      ",\"max_minor_pause_words\":%" PRIu64
      ",\"max_major_pause_words\":%" PRIu64 ",\"barrier_stores\":%" PRIu64,
      Dispatch, NurseryKb, DecodeSec, ExecSec, GcSec, Instructions, Cycles,
      instructionsPerSec(), AllocObjects, NurseryAllocObjects, AllocWords32,
      MinorCollections, MajorCollections, CopiedWords, PromotedWords,
      MajorCopiedWords, MaxMinorPauseWords, MaxMajorPauseWords,
      BarrierStores);
  std::string Out = Buf;
  if (HasOpCounts) {
    Out += ",\"op_counts\":{";
    bool First = true;
    for (int I = 0; I < NumDOps; ++I) {
      if (OpCounts[I] == 0)
        continue;
      char Item[64];
      std::snprintf(Item, sizeof(Item), "%s\"%s\":%" PRIu64,
                    First ? "" : ",", dopName(static_cast<DOp>(I)),
                    OpCounts[I]);
      Out += Item;
      First = false;
    }
    Out += "}";
  }
  Out += "}";
  return Out;
}
