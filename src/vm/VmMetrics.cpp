//===- vm/VmMetrics.cpp - Runtime metrics JSON emitter ------------------------------===//

#include "vm/Vm.h"

#include "obs/Json.h"

using namespace smltc;

std::string VmMetrics::toJson() const {
  obs::JsonWriter W;
  W.beginObject()
      .field("dispatch", Dispatch)
      .field("nursery_kb", NurseryKb)
      .field("decode_sec", DecodeSec)
      .field("exec_sec", ExecSec)
      .field("gc_sec", GcSec)
      .field("instructions", Instructions)
      .field("cycles", Cycles)
      .field("instructions_per_sec", instructionsPerSec(), 0)
      .field("alloc_objects", AllocObjects)
      .field("nursery_alloc_objects", NurseryAllocObjects)
      .field("alloc_words32", AllocWords32)
      .field("minor_collections", MinorCollections)
      .field("major_collections", MajorCollections)
      .field("copied_words", CopiedWords)
      .field("promoted_words", PromotedWords)
      .field("major_copied_words", MajorCopiedWords)
      .field("max_minor_pause_words", MaxMinorPauseWords)
      .field("max_major_pause_words", MaxMajorPauseWords)
      .field("barrier_stores", BarrierStores);
  if (HasOpCounts) {
    W.key("op_counts").beginObject();
    for (int I = 0; I < NumDOps; ++I) {
      if (OpCounts[I] == 0)
        continue;
      W.field(dopName(static_cast<DOp>(I)), OpCounts[I]);
    }
    W.endObject();
  }
  W.endObject();
  return W.take();
}
