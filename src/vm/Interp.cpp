//===- vm/Interp.cpp - Pre-decoded dispatch loops (switch + computed goto) ---------===//
//
// Two execution loops over the pre-decoded form, sharing their opcode
// bodies through InterpLoop.inc:
//
//   runDecodedSwitch   — portable fetch/switch loop;
//   runDecodedThreaded — computed-goto (label address) dispatch under
//                        GCC/Clang: each opcode body jumps directly to
//                        the next handler, so the branch predictor sees
//                        one indirect branch per opcode site instead of
//                        a single shared dispatch branch.
//
// Both charge the fused static cost at fetch time and resynchronize
// their instruction pointer from Fn/Pc only after control transfers, so
// the hot path never touches the Pc member or bounds-checks it (branch
// targets were validated at decode time; running past the last
// instruction lands on the TrapEnd pad).
//
//===----------------------------------------------------------------------===//

#include "vm/VmInternal.h"

#include <cmath>
#include <cstring>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define SMLTC_COMPUTED_GOTO 1
#else
#define SMLTC_COMPUTED_GOTO 0
#endif

using namespace smltc;
using namespace smltc::vmdetail;

bool smltc::threadedDispatchAvailable() { return SMLTC_COMPUTED_GOTO != 0; }

void Machine::runDecodedSwitch(const DecodedProgram &DP) {
  const DInsn *CurCode = DP.Funs[static_cast<size_t>(Fn)].Code.data();
  const DInsn *IP = CurCode + Pc;
  const DInsn *I;
  for (;;) {
    if (R.Cycles > Opts.MaxCycles) {
      R.Trapped = true;
      R.TrapMessage = "cycle budget exhausted";
      return;
    }
    I = IP++;
    ++R.Instructions;
    if (ProfileOps)
      ++OpCounts[static_cast<int>(I->Op)];
    R.Cycles += I->Cost;
    switch (I->Op) {
#define VM_CASE(op) case DOp::op:
#define VM_NEXT() continue
#define VM_XFER()                                                          \
  do {                                                                     \
    if (Done)                                                              \
      goto vm_done;                                                        \
    CurCode = DP.Funs[static_cast<size_t>(Fn)].Code.data();                \
    IP = CurCode + Pc;                                                     \
  } while (0);                                                             \
  continue
#include "vm/InterpLoop.inc"
#undef VM_CASE
#undef VM_NEXT
#undef VM_XFER
    }
  }
vm_done:
  return;
}

void Machine::runDecodedThreaded(const DecodedProgram &DP) {
#if SMLTC_COMPUTED_GOTO
  // One entry per DOp, in declaration order.
  static const void *const Labels[NumDOps] = {
      &&L_MovI, &&L_MovR, &&L_MovFI, &&L_MovFR, &&L_LoadLabel, &&L_LoadStr,
      &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Mod, &&L_Neg, &&L_Abs,
      &&L_FAdd, &&L_FSub, &&L_FMul, &&L_FDiv, &&L_FNeg, &&L_FAbs,
      &&L_FSqrt, &&L_FSin, &&L_FCos, &&L_FAtan, &&L_FExp, &&L_FLn,
      &&L_Floor, &&L_IToF,
      &&L_Br, &&L_BrF, &&L_BrBoxed, &&L_Jmp,
      &&L_Load, &&L_Store, &&L_LoadF, &&L_LoadIdx, &&L_StoreIdx,
      &&L_LoadByte, &&L_SizeOfOp,
      &&L_AllocStart, &&L_AllocWord, &&L_AllocFloat, &&L_AllocEnd,
      &&L_GetHdlr, &&L_SetHdlr,
      &&L_SetArg, &&L_SetArgF, &&L_CallL, &&L_CallR,
      &&L_CCallRt,
      &&L_HaltOp, &&L_HaltExnOp,
      &&L_TrapEnd, &&L_TrapInvalid,
  };
  const DInsn *CurCode = DP.Funs[static_cast<size_t>(Fn)].Code.data();
  const DInsn *IP = CurCode + Pc;
  const DInsn *I;

// The dispatch is replicated at the end of every opcode body: fetch,
// count, charge the fused cost, jump to the handler.
#define VM_CASE(op) L_##op:
#define VM_NEXT()                                                          \
  do {                                                                     \
    if (R.Cycles > Opts.MaxCycles)                                         \
      goto vm_budget;                                                      \
    I = IP++;                                                              \
    ++R.Instructions;                                                      \
    if (ProfileOps)                                                        \
      ++OpCounts[static_cast<int>(I->Op)];                                 \
    R.Cycles += I->Cost;                                                   \
    goto *Labels[static_cast<int>(I->Op)];                                 \
  } while (0)
#define VM_XFER()                                                          \
  do {                                                                     \
    if (Done)                                                              \
      goto vm_done;                                                        \
    CurCode = DP.Funs[static_cast<size_t>(Fn)].Code.data();                \
    IP = CurCode + Pc;                                                     \
  } while (0);                                                             \
  VM_NEXT()

  VM_NEXT(); // fetch the first instruction
#include "vm/InterpLoop.inc"
#undef VM_CASE
#undef VM_NEXT
#undef VM_XFER

vm_budget:
  R.Trapped = true;
  R.TrapMessage = "cycle budget exhausted";
  return;
vm_done:
  return;
#else
  // No computed goto on this toolchain; run() normally routes Threaded
  // to the switch loop already, but keep this safe regardless.
  runDecodedSwitch(DP);
#endif
}
