//===- vm/Runtime.cpp - Engine-independent runtime services ------------------------===//
//
// The services shared by the three interpreter engines and the native
// backend: heap allocation helpers, the exception machinery, polymorphic
// equality, and the CCallRt dispatch. Costs here are part of the
// observable cost model and must stay identical across engines.
//
//===----------------------------------------------------------------------===//

#include "vm/Runtime.h"

#include <cstdio>
#include <cstring>

using namespace smltc;
using namespace smltc::vmdetail;

VmRuntime::VmRuntime(const TmProgram &P, const VmOptions &Opts)
    : P(P), Opts(Opts),
      Hp(Opts.HeapSemiWords, Opts.NurseryKb * 1024 / sizeof(Word)) {
  std::memset(ArgW, 0, sizeof(ArgW));
  std::memset(ArgF, 0, sizeof(ArgF));
  std::memset(Tags, 0, sizeof(Tags));
  Handler = tagInt(0);
}

void VmRuntime::initRuntime(Word *WBase, const size_t *WLiveCount) {
  if (WBase)
    Hp.addRootRange(WBase, WLiveCount);
  Hp.addRootRange(ArgW, MaxArgs);
  Hp.addRootRange(&Handler, 1);
  Hp.addRootRange(Tags, NumBuiltinTags);
  internStrings();
  Hp.addRootRange(StrPtrs.data(), StrPtrs.size());
}

//===----------------------------------------------------------------------===//
// Heap helpers
//===----------------------------------------------------------------------===//

size_t VmRuntime::allocObject(ObjKind K, uint32_t Len1, uint32_t Len2,
                              size_t PayloadWords) {
  uint64_t CopiedBefore = Hp.copiedWords();
  size_t At = Hp.allocRaw(PayloadWords);
  // GC cost: 3 cycles per copied 64-bit word (promotions included).
  R.Cycles += 3 * (Hp.copiedWords() - CopiedBefore);
  Hp.at(At) = makeDesc(K, Len1, Len2);
  return At;
}

Word VmRuntime::allocBytes(const char *Data, size_t N) {
  size_t Payload = (N + 7) / 8;
  size_t At =
      allocObject(ObjKind::Bytes, static_cast<uint32_t>(N), 0, Payload);
  char *Dst = reinterpret_cast<char *>(&Hp.at(At + 1));
  std::memcpy(Dst, Data, N);
  AllocWords32 += 1 + (N + 3) / 4;
  return makePointer(At);
}

const char *VmRuntime::bytesData(Word P, size_t &N) {
  size_t Idx = pointerIndex(P);
  Word D = Hp.at(Idx);
  N = descLen1(D);
  return reinterpret_cast<const char *>(&Hp.at(Idx + 1));
}

void VmRuntime::internStrings() {
  for (const std::string &S : P.StringPool)
    StrPtrs.push_back(allocBytes(S.data(), S.size()));
}

//===----------------------------------------------------------------------===//
// Exceptions
//===----------------------------------------------------------------------===//

void VmRuntime::trap(const std::string &Msg) {
  R.Trapped = true;
  R.TrapMessage = Msg;
  Done = true;
}

/// Raises a builtin exception through the handler register.
void VmRuntime::raiseBuiltin(int TagIdx) {
  cost(12);
  Word Tag = Tags[TagIdx];
  // exn = [tag, unit]
  size_t At = allocObject(ObjKind::Record, 0, 2, 2);
  Hp.at(At + 1) = Tag;
  Hp.at(At + 2) = tagInt(0);
  AllocWords32 += 3;
  Word Exn = makePointer(At);
  invokeHandler(Exn);
}

void VmRuntime::invokeHandler(Word Exn) {
  Word H = Handler;
  if (!isPointer(H)) {
    trap("exception raised with no handler installed");
    return;
  }
  size_t Idx = pointerIndex(H);
  Word Code = Hp.at(Idx + 1); // closure slot 0 (after descriptor)
  ArgW[0] = H;
  ArgW[1] = Exn;
  for (int I = 2; I < 8; ++I)
    ArgW[I] = tagInt(0);
  for (int I = 0; I < 8; ++I)
    ArgF[I] = 0.0;
  if (!isTaggedInt(Code)) {
    trap("handler closure has no code pointer");
    return;
  }
  enterFunction(static_cast<int>(untagInt(Code)), 8, 8);
}

//===----------------------------------------------------------------------===//
// Runtime services
//===----------------------------------------------------------------------===//

bool VmRuntime::polyEq(Word A, Word B, uint64_t &Nodes) {
  if (++Nodes > 1000000)
    return A == B;
  if (A == B)
    return true;
  if (!isPointer(A) || !isPointer(B))
    return false;
  size_t IA = pointerIndex(A), IB = pointerIndex(B);
  Word DA = Hp.at(IA), DB = Hp.at(IB);
  if (descKind(DA) != descKind(DB))
    return false;
  switch (descKind(DA)) {
  case ObjKind::Bytes: {
    size_t NA = descLen1(DA), NB = descLen1(DB);
    if (NA != NB)
      return false;
    return std::memcmp(&Hp.at(IA + 1), &Hp.at(IB + 1), NA) == 0;
  }
  case ObjKind::Cell:
  case ObjKind::Array:
    return false; // identity compared above
  case ObjKind::Record: {
    uint32_t FA = descLen1(DA), WA = descLen2(DA);
    if (FA != descLen1(DB) || WA != descLen2(DB))
      return false;
    for (uint32_t I = 0; I < FA; ++I)
      if (Hp.at(IA + 1 + I) != Hp.at(IB + 1 + I))
        return false;
    for (uint32_t I = 0; I < WA; ++I)
      if (!polyEq(Hp.at(IA + 1 + FA + I), Hp.at(IB + 1 + FA + I), Nodes))
        return false;
    return true;
  }
  case ObjKind::Forward:
    return false;
  }
  return false;
}

void VmRuntime::runtimeCall(CpsOp Rt, Reg Rd) {
  cost(10);
  switch (Rt) {
  case CpsOp::RtPolyEq: {
    // The runtime structural equality dispatches on descriptor tags at
    // every node (the paper's "slow polymorphic equality").
    uint64_t Nodes = 0;
    bool Eq = polyEq(ArgW[0], ArgW[1], Nodes);
    cost(15 + 12 * Nodes);
    regOut(Rd) = tagInt(Eq ? 1 : 0);
    return;
  }
  case CpsOp::RtStrEq:
  case CpsOp::RtStrCmp: {
    size_t NA, NB;
    const char *A = bytesData(ArgW[0], NA);
    const char *B = bytesData(ArgW[1], NB);
    size_t M = NA < NB ? NA : NB;
    int C = std::memcmp(A, B, M);
    if (C == 0)
      C = NA < NB ? -1 : (NA > NB ? 1 : 0);
    else
      C = C < 0 ? -1 : 1;
    cost(M);
    if (Rt == CpsOp::RtStrEq)
      regOut(Rd) = tagInt(C == 0 ? 1 : 0);
    else
      regOut(Rd) = tagInt(C);
    return;
  }
  case CpsOp::RtConcat: {
    size_t NA, NB;
    const char *A = bytesData(ArgW[0], NA);
    std::string Buf(A, NA);
    const char *B = bytesData(ArgW[1], NB);
    Buf.append(B, NB);
    cost(NA + NB);
    regOut(Rd) = allocBytes(Buf.data(), Buf.size());
    return;
  }
  case CpsOp::RtSubstring: {
    size_t N;
    const char *A = bytesData(ArgW[0], N);
    int64_t Start = untagInt(ArgW[1]);
    int64_t Len = untagInt(ArgW[2]);
    if (Start < 0 || Len < 0 || static_cast<size_t>(Start + Len) > N) {
      raiseBuiltin(TagSubscript);
      return;
    }
    std::string Buf(A + Start, static_cast<size_t>(Len));
    cost(static_cast<uint64_t>(Len));
    regOut(Rd) = allocBytes(Buf.data(), Buf.size());
    return;
  }
  case CpsOp::RtChr: {
    int64_t C = untagInt(ArgW[0]);
    if (C < 0 || C > 255) {
      raiseBuiltin(TagChr);
      return;
    }
    char Ch = static_cast<char>(C);
    regOut(Rd) = allocBytes(&Ch, 1);
    return;
  }
  case CpsOp::RtItos: {
    char Buf[32];
    int N = std::snprintf(Buf, sizeof(Buf), "%lld",
                          static_cast<long long>(untagInt(ArgW[0])));
    cost(20);
    regOut(Rd) = allocBytes(Buf, static_cast<size_t>(N));
    return;
  }
  case CpsOp::RtRtos: {
    char Buf[48];
    int N = std::snprintf(Buf, sizeof(Buf), "%g", ArgF[0]);
    cost(30);
    regOut(Rd) = allocBytes(Buf, static_cast<size_t>(N));
    return;
  }
  case CpsOp::RtPrint: {
    size_t N;
    const char *A = bytesData(ArgW[0], N);
    R.Output.append(A, N);
    cost(N);
    regOut(Rd) = tagInt(0);
    return;
  }
  case CpsOp::RtMakeTag: {
    int64_t BuiltinIdx = untagInt(ArgW[0]);
    size_t At = allocObject(ObjKind::Cell, 0, 1, 1);
    Hp.at(At + 1) = tagInt(BuiltinIdx);
    AllocWords32 += 2;
    Word Ptr = makePointer(At);
    if (BuiltinIdx > 0 && BuiltinIdx < NumBuiltinTags)
      Tags[BuiltinIdx] = Ptr;
    regOut(Rd) = Ptr;
    return;
  }
  case CpsOp::RtArrayMake: {
    int64_t N = untagInt(ArgW[0]);
    Word Init = ArgW[1];
    if (N < 0) {
      raiseBuiltin(TagSize);
      return;
    }
    size_t At = allocObject(ObjKind::Array, 0, static_cast<uint32_t>(N),
                            static_cast<size_t>(N));
    for (int64_t K = 0; K < N; ++K)
      Hp.at(At + 1 + K) = Init;
    AllocWords32 += 1 + static_cast<uint64_t>(N);
    cost(static_cast<uint64_t>(N));
    regOut(Rd) = makePointer(At);
    return;
  }
  default:
    trap("unknown runtime call");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Conditions
//===----------------------------------------------------------------------===//

bool VmRuntime::condHolds(TmCond C, int64_t A, int64_t B) {
  switch (C) {
  case TmCond::Eq: return A == B;
  case TmCond::Ne: return A != B;
  case TmCond::Lt: return A < B;
  case TmCond::Le: return A <= B;
  case TmCond::Gt: return A > B;
  case TmCond::Ge: return A >= B;
  case TmCond::Ult:
    return static_cast<uint64_t>(A) < static_cast<uint64_t>(B);
  }
  return false;
}

bool VmRuntime::condHoldsF(TmCond C, double A, double B) {
  switch (C) {
  case TmCond::Eq: return A == B;
  case TmCond::Ne: return A != B;
  case TmCond::Lt: return A < B;
  case TmCond::Le: return A <= B;
  case TmCond::Gt: return A > B;
  case TmCond::Ge: return A >= B;
  case TmCond::Ult:
    // No unsigned ordering on floats; BrF sites trap before asking.
    break;
  }
  return false;
}
