//===- vm/Vm.h - The TM execution engine --------------------------------------------===//
///
/// \file
/// Executes TM programs with a DECstation-5000-flavoured cost model and
/// full metric accounting: cycles, heap allocation in 32-bit words
/// (floats = 2, descriptors = 1), instruction counts, and GC work.
/// The substitution for the paper's hardware measurements: absolute
/// numbers differ from a real MIPS, but the costs the six compiler
/// variants trade against each other (boxing, memory traffic, allocation,
/// GC) are modeled directly.
///
/// Three dispatch engines execute the same cost model bit for bit:
///   threaded — pre-decoded code, computed-goto dispatch (GCC/Clang);
///   switch   — pre-decoded code, portable switch dispatch;
///   legacy   — the original step()-per-instruction interpreter over raw
///              TmFunctions, kept as the differential oracle and the
///              baseline bench/exec_throughput measures speedups against.
/// Determinism is an acceptance gate, not a nice-to-have: the cycle
/// counters feed Figure 7, so every mode must produce identical results
/// and identical counters.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_VM_H
#define SMLTC_VM_VM_H

#include "codegen/Machine.h"
#include "vm/Decode.h"
#include "vm/Heap.h"

#include <cstdint>
#include <string>

namespace smltc {

enum class VmDispatch : uint8_t {
  Threaded, ///< computed goto where available, else switch
  Switch,   ///< portable pre-decoded switch loop
  Legacy,   ///< original undecoded interpreter (seed baseline)
};

struct VmOptions {
  bool UnalignedFloats = true; ///< float loads cost two word loads
  size_t HeapSemiWords = 1 << 20;
  /// Nursery size in KiB (8-byte words inside); 0 restores the plain
  /// two-space collector. Clamped to a quarter of the semispace.
  size_t NurseryKb = 256;
  uint64_t MaxCycles = 40ull * 1000 * 1000 * 1000;
  VmDispatch Dispatch = VmDispatch::Threaded;
  /// Count executions per opcode (reported in VmMetrics::OpCounts).
  bool ProfileOpcodes = false;
};

/// Runtime observability: where the cycles, allocations, and GC work
/// went. The JSON emitter mirrors BatchMetrics::toJson on the compile
/// side; `smltcc --vm-metrics-json` and bench/exec_throughput expose it.
struct VmMetrics {
  const char *Dispatch = "switch"; ///< effective engine that ran
  size_t NurseryKb = 0;            ///< effective nursery size
  double DecodeSec = 0;            ///< pre-decode time (load time)
  double ExecSec = 0;              ///< wall time in the dispatch loop
  double GcSec = 0;                ///< wall time inside collections

  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  uint64_t AllocObjects = 0;
  uint64_t NurseryAllocObjects = 0;
  uint64_t AllocWords32 = 0;

  uint64_t MinorCollections = 0;
  uint64_t MajorCollections = 0;
  uint64_t CopiedWords = 0;   ///< total GC copies (promotions + major)
  uint64_t PromotedWords = 0; ///< words surviving minor scavenges
  uint64_t MajorCopiedWords = 0;
  uint64_t MaxMinorPauseWords = 0; ///< worst single minor pause (words)
  uint64_t MaxMajorPauseWords = 0; ///< worst single major pause (words)
  uint64_t BarrierStores = 0;      ///< old-to-young stores recorded

  bool HasOpCounts = false; ///< OpCounts populated (ProfileOpcodes)
  uint64_t OpCounts[NumDOps] = {};

  double instructionsPerSec() const {
    return ExecSec > 0 ? static_cast<double>(Instructions) / ExecSec : 0;
  }
  /// Renders the metrics as a single JSON object (no trailing newline).
  std::string toJson() const;
};

struct ExecResult {
  bool Ok = false;
  bool UncaughtException = false;
  bool Trapped = false; ///< VM-level failure (cycle budget, internal)
  std::string TrapMessage;
  int64_t Result = 0;
  std::string Output; ///< everything `print`ed

  // Metrics (flat fields kept for existing callers; Metrics has the
  // full breakdown).
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t AllocWords32 = 0; ///< 32-bit words allocated (paper's metric)
  uint64_t AllocObjects = 0;
  uint64_t GcCopiedWords = 0;
  uint64_t Collections = 0;
  VmMetrics Metrics;
};

ExecResult execute(const TmProgram &Program, const VmOptions &Opts);

/// Whether computed-goto dispatch is compiled in (GCC/Clang); when
/// false, VmDispatch::Threaded silently runs the switch loop.
bool threadedDispatchAvailable();

} // namespace smltc

#endif // SMLTC_VM_VM_H
