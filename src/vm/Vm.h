//===- vm/Vm.h - The TM execution engine --------------------------------------------===//
///
/// \file
/// Executes TM programs with a DECstation-5000-flavoured cost model and
/// full metric accounting: cycles, heap allocation in 32-bit words
/// (floats = 2, descriptors = 1), instruction counts, and GC work.
/// The substitution for the paper's hardware measurements: absolute
/// numbers differ from a real MIPS, but the costs the six compiler
/// variants trade against each other (boxing, memory traffic, allocation,
/// GC) are modeled directly.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_VM_H
#define SMLTC_VM_VM_H

#include "codegen/Machine.h"
#include "vm/Heap.h"

#include <cstdint>
#include <string>

namespace smltc {

struct VmOptions {
  bool UnalignedFloats = true; ///< float loads cost two word loads
  size_t HeapSemiWords = 1 << 20;
  uint64_t MaxCycles = 40ull * 1000 * 1000 * 1000;
};

struct ExecResult {
  bool Ok = false;
  bool UncaughtException = false;
  bool Trapped = false; ///< VM-level failure (cycle budget, internal)
  std::string TrapMessage;
  int64_t Result = 0;
  std::string Output; ///< everything `print`ed

  // Metrics.
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t AllocWords32 = 0; ///< 32-bit words allocated (paper's metric)
  uint64_t AllocObjects = 0;
  uint64_t GcCopiedWords = 0;
  uint64_t Collections = 0;
};

ExecResult execute(const TmProgram &Program, const VmOptions &Opts);

} // namespace smltc

#endif // SMLTC_VM_VM_H
