//===- vm/Decode.cpp - TM -> pre-decoded internal form -----------------------------===//

#include "vm/Decode.h"
#include "vm/VmInternal.h"

using namespace smltc;

namespace {

using vmdetail::FastFloatRegs;
using vmdetail::FastWordRegs;

/// The spilled-register surcharges of Machine::regCost / fregCost,
/// evaluated at decode time (they depend only on register numbers).
uint16_t rc(Reg A, Reg B = 0, Reg C = 0) {
  return 2 * ((A >= FastWordRegs) + (B >= FastWordRegs) +
              (C >= FastWordRegs));
}
uint16_t fc(Reg A, Reg B = 0, Reg C = 0) {
  return 2 * ((A >= FastFloatRegs) + (B >= FastFloatRegs) +
              (C >= FastFloatRegs));
}

/// The static cycle charge of one instruction — the fusion of the legacy
/// interpreter's cost() + regCost()/fregCost() calls on the non-trapping
/// path. Dynamic charges (taken branches +1, GC copies, runtime-service
/// work) stay in the loop bodies. Any edit here must keep
/// VmEngine.DispatchModesAreBitIdentical green: Figure 7 is cycles.
uint16_t staticCost(const Insn &I, bool UnalignedFloats) {
  switch (I.Op) {
  case TmOp::MovI:
  case TmOp::LoadLabel:
  case TmOp::LoadStr:
    return 1 + rc(I.Rd);
  case TmOp::MovR:
    return 1 + rc(I.Rd, I.Rs1);
  case TmOp::MovFI:
    return 1 + fc(I.Rd);
  case TmOp::MovFR:
    return 1 + fc(I.Rd, I.Rs1);
  case TmOp::Add:
  case TmOp::Sub:
    return 1 + rc(I.Rd, I.Rs1, I.Rs2);
  case TmOp::Mul:
    return 5 + rc(I.Rd, I.Rs1, I.Rs2);
  case TmOp::Div:
  case TmOp::Mod:
    return 12 + rc(I.Rd, I.Rs1, I.Rs2);
  case TmOp::Neg:
  case TmOp::Abs:
    return 1 + rc(I.Rd, I.Rs1);
  case TmOp::FAdd:
  case TmOp::FSub:
  case TmOp::FMul:
    return 2 + fc(I.Rd, I.Rs1, I.Rs2);
  case TmOp::FDiv:
    return 12 + fc(I.Rd, I.Rs1, I.Rs2);
  case TmOp::FNeg:
  case TmOp::FAbs:
    return 1 + fc(I.Rd, I.Rs1);
  case TmOp::FSqrt:
    return 15 + fc(I.Rd, I.Rs1);
  case TmOp::FSin:
  case TmOp::FCos:
  case TmOp::FAtan:
  case TmOp::FExp:
  case TmOp::FLn:
    return 30;
  case TmOp::Floor:
  case TmOp::IToF:
    return 2;
  case TmOp::Br: // not-taken charge; taken adds 1 dynamically
    return 1 + rc(I.Rs1, I.Rs2);
  case TmOp::BrF:
    return 1;
  case TmOp::BrBoxed:
    return 1 + rc(I.Rs1);
  case TmOp::Jmp:
    return 2;
  case TmOp::Load:
    return 2 + rc(I.Rd, I.Rs1);
  case TmOp::Store:
    return 1;
  case TmOp::LoadF:
    return (UnalignedFloats ? 4 : 2) + fc(I.Rd) + rc(I.Rs1);
  case TmOp::LoadIdx:
    return 3 + rc(I.Rd, I.Rs1, I.Rs2);
  case TmOp::StoreIdx:
    return 2;
  case TmOp::LoadByte:
  case TmOp::SizeOfOp:
    return 2;
  case TmOp::AllocStart:
    return 1;
  case TmOp::AllocWord:
    return 1 + rc(I.Rs1);
  case TmOp::AllocFloat:
    return 2;
  case TmOp::AllocEnd:
    return 1 + rc(I.Rd);
  case TmOp::GetHdlr:
    return 1 + rc(I.Rd);
  case TmOp::SetHdlr:
  case TmOp::SetArg:
    return 1 + rc(I.Rs1);
  case TmOp::SetArgF:
    return 1;
  case TmOp::CallL:
    return 2;
  case TmOp::CallR: // charged even when the call traps (legacy order)
    return 2 + rc(I.Rs1);
  case TmOp::CCallRt: // runtimeCall charges its own 10 + per-service work
  case TmOp::HaltOp:
  case TmOp::HaltExnOp:
    return 0;
  }
  return 0;
}

bool isBranch(TmOp Op) {
  return Op == TmOp::Br || Op == TmOp::BrF || Op == TmOp::BrBoxed ||
         Op == TmOp::Jmp;
}

DInsn invalid(int32_t Reason) {
  DInsn D;
  D.Op = DOp::TrapInvalid;
  D.Imm = Reason;
  return D;
}

} // namespace

const char *smltc::dopName(DOp Op) {
  static const char *const Names[NumDOps] = {
      "MovI", "MovR", "MovFI", "MovFR", "LoadLabel", "LoadStr",
      "Add", "Sub", "Mul", "Div", "Mod", "Neg", "Abs",
      "FAdd", "FSub", "FMul", "FDiv", "FNeg", "FAbs",
      "FSqrt", "FSin", "FCos", "FAtan", "FExp", "FLn",
      "Floor", "IToF",
      "Br", "BrF", "BrBoxed", "Jmp",
      "Load", "Store", "LoadF", "LoadIdx", "StoreIdx", "LoadByte",
      "SizeOf",
      "AllocStart", "AllocWord", "AllocFloat", "AllocEnd",
      "GetHdlr", "SetHdlr",
      "SetArg", "SetArgF", "CallL", "CallR",
      "CCallRt",
      "Halt", "HaltExn",
      "TrapEnd", "TrapInvalid",
  };
  int I = static_cast<int>(Op);
  return I >= 0 && I < NumDOps ? Names[I] : "?";
}

const char *smltc::dtrapMessage(int32_t Reason) {
  switch (Reason) {
  case DTrapFloatUnsignedCompare:
    return "float compare has no unsigned ordering (BrF with Ult)";
  case DTrapBadStringIndex:
    return "string-pool index out of range";
  default:
    return "statically invalid instruction";
  }
}

namespace {

/// Register operands of one instruction, classified by file.
struct RegUse {
  int MaxW = -1;       ///< largest word register mentioned
  int MaxF = -1;       ///< largest float register mentioned
  bool Negative = false;
  bool BadArgSlot = false;
};

RegUse regUse(const Insn &I) {
  RegUse U;
  auto w = [&U](Reg R) {
    if (R < 0)
      U.Negative = true;
    else if (R > U.MaxW)
      U.MaxW = R;
  };
  auto f = [&U](Reg R) {
    if (R < 0)
      U.Negative = true;
    else if (R > U.MaxF)
      U.MaxF = R;
  };
  switch (I.Op) {
  case TmOp::MovI:
  case TmOp::LoadLabel:
  case TmOp::LoadStr:
  case TmOp::AllocEnd:
  case TmOp::GetHdlr:
  case TmOp::CCallRt:
    w(I.Rd);
    break;
  case TmOp::MovR:
  case TmOp::Neg:
  case TmOp::Abs:
  case TmOp::Load:
  case TmOp::SizeOfOp:
    w(I.Rd);
    w(I.Rs1);
    break;
  case TmOp::Add:
  case TmOp::Sub:
  case TmOp::Mul:
  case TmOp::Div:
  case TmOp::Mod:
  case TmOp::LoadIdx:
  case TmOp::LoadByte:
  case TmOp::StoreIdx:
    w(I.Rd);
    w(I.Rs1);
    w(I.Rs2);
    break;
  case TmOp::MovFI:
    f(I.Rd);
    break;
  case TmOp::MovFR:
  case TmOp::FNeg:
  case TmOp::FAbs:
  case TmOp::FSqrt:
  case TmOp::FSin:
  case TmOp::FCos:
  case TmOp::FAtan:
  case TmOp::FExp:
  case TmOp::FLn:
    f(I.Rd);
    f(I.Rs1);
    break;
  case TmOp::FAdd:
  case TmOp::FSub:
  case TmOp::FMul:
  case TmOp::FDiv:
    f(I.Rd);
    f(I.Rs1);
    f(I.Rs2);
    break;
  case TmOp::Floor:
    w(I.Rd);
    f(I.Rs1);
    break;
  case TmOp::IToF:
  case TmOp::LoadF:
    f(I.Rd);
    w(I.Rs1);
    break;
  case TmOp::Br:
    w(I.Rs1);
    w(I.Rs2);
    break;
  case TmOp::BrF:
    f(I.Rs1);
    f(I.Rs2);
    break;
  case TmOp::BrBoxed:
  case TmOp::SetHdlr:
  case TmOp::CallR:
  case TmOp::AllocWord:
  case TmOp::HaltOp:
    w(I.Rs1);
    break;
  case TmOp::Store:
    w(I.Rd);
    w(I.Rs1);
    break;
  case TmOp::AllocFloat:
    f(I.Rs1);
    break;
  case TmOp::SetArg:
    w(I.Rs1);
    U.BadArgSlot = I.Imm < 0 || I.Imm >= vmdetail::MaxArgs;
    break;
  case TmOp::SetArgF:
    f(I.Rs1);
    U.BadArgSlot = I.Imm < 0 || I.Imm >= vmdetail::MaxArgs;
    break;
  case TmOp::AllocStart: // Rs1/Rs2 are field counts, not registers
  case TmOp::Jmp:
  case TmOp::CallL:
  case TmOp::HaltExnOp:
    break;
  }
  return U;
}

} // namespace

const char *smltc::validateRegisters(const TmProgram &P) {
  for (const TmFunction &Fn : P.Funs)
    for (const Insn &I : Fn.Code) {
      RegUse U = regUse(I);
      if (U.Negative || U.BadArgSlot || U.MaxW >= vmdetail::NumWordRegs ||
          U.MaxF >= vmdetail::NumFloatRegs)
        return "register or argument slot out of range";
    }
  return nullptr;
}

DecodedProgram smltc::decodeProgram(const TmProgram &P,
                                    bool UnalignedFloats) {
  DecodedProgram Out;
  Out.Funs.resize(P.Funs.size());
  for (size_t FI = 0; FI < P.Funs.size(); ++FI) {
    const TmFunction &F = P.Funs[FI];
    DecodedFunction &DF = Out.Funs[FI];
    DF.NumWordParams = F.NumWordParams;
    DF.NumFloatParams = F.NumFloatParams;
    DF.NumRegsUsed = 1 + F.NumWordParams;
    for (const Insn &I : F.Code) {
      int M = regUse(I).MaxW;
      if (M + 1 > DF.NumRegsUsed)
        DF.NumRegsUsed = M + 1;
    }
    int32_t S = static_cast<int32_t>(F.Code.size()); // TrapEnd pad index
    DF.Code.reserve(F.Code.size() + 1);
    for (const Insn &I : F.Code) {
      DInsn D;
      D.Op = static_cast<DOp>(I.Op); // DOp mirrors the TmOp order
      D.Aux = static_cast<uint8_t>(I.Cond);
      D.Cost = staticCost(I, UnalignedFloats);
      D.Rd = I.Rd;
      D.Rs1 = I.Rs1;
      D.Rs2 = I.Rs2;
      D.Imm = I.Imm;
      D.IVal = I.IVal;
      switch (I.Op) {
      case TmOp::MovI:
        // Pre-tag the immediate; the loop just moves the word.
        D.IVal = static_cast<int64_t>(tagInt(I.IVal));
        break;
      case TmOp::MovFI:
        D.FVal = I.FVal;
        break;
      case TmOp::LoadLabel:
        D.IVal = static_cast<int64_t>(tagInt(I.Imm));
        break;
      case TmOp::LoadStr:
        if (I.Imm < 0 ||
            static_cast<size_t>(I.Imm) >= P.StringPool.size())
          D = invalid(DTrapBadStringIndex);
        break;
      case TmOp::BrF:
        // A float unsigned compare has no meaning; the seed silently
        // degraded it to a signed Lt — now an explicit trap.
        if (I.Cond == TmCond::Ult)
          D = invalid(DTrapFloatUnsignedCompare);
        break;
      case TmOp::AllocStart:
        D.Aux = static_cast<uint8_t>(I.RK);
        break;
      case TmOp::CCallRt:
        D.Imm = static_cast<int32_t>(I.Rt);
        break;
      default:
        break;
      }
      // Validate jump targets once so the hot loop never bounds-checks
      // Pc: anything outside [0, S] lands on the TrapEnd pad, which is
      // exactly where the legacy interpreter's per-step check traps.
      if (isBranch(I.Op) && D.Op != DOp::TrapInvalid &&
          (D.Imm < 0 || D.Imm > S))
        D.Imm = S;
      DF.Code.push_back(D);
    }
    DInsn Pad;
    Pad.Op = DOp::TrapEnd;
    DF.Code.push_back(Pad);
  }
  return Out;
}
