//===- vm/Decode.h - Pre-decoded TM code for the fast dispatch loops ---------------===//
///
/// \file
/// At load time each TmFunction is decoded into a dense internal form the
/// execution loops can dispatch on without per-step checks:
///
///  - the static part of the cost model (base cycles + the spilled-register
///    surcharges of regCost/fregCost, which depend only on register
///    numbers) is fused into a per-instruction `Cost` constant;
///  - immediates are pre-resolved (MovI/LoadLabel store the already-tagged
///    word; LoadF's unaligned-float surcharge is baked in);
///  - every branch target is validated once: out-of-range targets are
///    clamped to the TrapEnd pad appended after each function, so the
///    per-step `Pc` bounds check disappears;
///  - statically invalid instructions (float unsigned compare, bad
///    string-pool index) decode to an explicit Trap instruction.
///
/// Cycle counts feed Figure 7, so decoding must not change them: the
/// fused costs reproduce the legacy interpreter's charges bit for bit
/// (asserted across the corpus by tests/test_vm_engine.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_DECODE_H
#define SMLTC_VM_DECODE_H

#include "codegen/Machine.h"

#include <cstdint>
#include <vector>

namespace smltc {

/// Decoded opcodes. The first NumTmOps values mirror TmOp one-for-one
/// (same order — decode maps by static_cast); the trailing entries are
/// synthetic trap instructions produced only by the decoder.
enum class DOp : uint8_t {
  MovI, MovR, MovFI, MovFR, LoadLabel, LoadStr,
  Add, Sub, Mul, Div, Mod, Neg, Abs,
  FAdd, FSub, FMul, FDiv, FNeg, FAbs,
  FSqrt, FSin, FCos, FAtan, FExp, FLn,
  Floor, IToF,
  Br, BrF, BrBoxed, Jmp,
  Load, Store, LoadF, LoadIdx, StoreIdx, LoadByte, SizeOfOp,
  AllocStart, AllocWord, AllocFloat, AllocEnd,
  GetHdlr, SetHdlr,
  SetArg, SetArgF, CallL, CallR,
  CCallRt,
  HaltOp, HaltExnOp,
  TrapEnd,     ///< pad after the last instruction: "fell off the end"
  TrapInvalid, ///< statically invalid instruction; Imm selects the message
};

constexpr int NumDOps = static_cast<int>(DOp::TrapInvalid) + 1;

/// TrapInvalid message selectors (DInsn::Imm).
enum DTrapReason : int32_t {
  DTrapFloatUnsignedCompare = 0,
  DTrapBadStringIndex = 1,
};

const char *dopName(DOp Op);
const char *dtrapMessage(int32_t Reason);

/// One pre-decoded instruction: 24 bytes, operands resolved, static cost
/// fused. Aux carries TmCond for branches and RecordKind for AllocStart;
/// Imm carries the validated jump target / field offset / arg slot /
/// label / CpsOp runtime-service id.
struct DInsn {
  DOp Op = DOp::TrapEnd;
  uint8_t Aux = 0;
  uint16_t Cost = 0;
  Reg Rd = 0, Rs1 = 0, Rs2 = 0;
  int32_t Imm = 0;
  union {
    int64_t IVal;
    double FVal;
  };
  DInsn() : IVal(0) {}
};
static_assert(sizeof(DInsn) == 24, "DInsn should stay dense");

struct DecodedFunction {
  std::vector<DInsn> Code; ///< original code plus one TrapEnd pad
  int NumWordParams = 0;
  int NumFloatParams = 0;
  /// 1 + the largest word register the function mentions (and at least
  /// 1 + NumWordParams): the register-file watermark. On entry only
  /// registers below it need clearing, and the GC only scans that
  /// prefix — everything above would be a tagged zero in the legacy
  /// interpreter, so the live root set is identical.
  int NumRegsUsed = 1;
};

struct DecodedProgram {
  std::vector<DecodedFunction> Funs;
  size_t codeBytes() const {
    size_t N = 0;
    for (const DecodedFunction &F : Funs)
      N += F.Code.size() * sizeof(DInsn);
    return N;
  }
};

/// Decodes a whole program. UnalignedFloats selects the LoadF cost
/// (paper footnote 7), matching VmOptions::UnalignedFloats.
DecodedProgram decodeProgram(const TmProgram &P, bool UnalignedFloats);

/// Checks every register operand and argument-slot immediate against the
/// machine's register-file sizes. Returns nullptr when the program is
/// well-formed, else a trap message. Run once at load time by every
/// dispatch mode: the code generator allocates virtual registers without
/// an upper bound, and an out-of-range register must become a clean trap,
/// not an out-of-bounds write into a neighboring register file.
const char *validateRegisters(const TmProgram &P);

} // namespace smltc

#endif // SMLTC_VM_DECODE_H
