//===- vm/VmInternal.h - Machine state shared by the dispatch engines --------------===//
///
/// \file
/// The Machine layers the three interpreter engines over the shared
/// VmRuntime services (vm/Runtime.h): it owns the word/float register
/// files and the dispatch loops. Vm.cpp implements the legacy loop and
/// run(); Interp.cpp implements the pre-decoded switch and computed-goto
/// loops over the bodies in InterpLoop.inc. The native backend
/// (src/native/) derives its own host from VmRuntime instead.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_VMINTERNAL_H
#define SMLTC_VM_VMINTERNAL_H

#include "vm/Decode.h"
#include "vm/Runtime.h"
#include "vm/Vm.h"

#include <cstring>
#include <string>
#include <vector>

namespace smltc {
namespace vmdetail {

class Machine : public VmRuntime {
public:
  Machine(const TmProgram &P, const VmOptions &Opts);
  ExecResult run();

private:
  //===--------------------------------------------------------------------===//
  // Cost model (legacy loop; the decoded loops use the fused constants)
  //===--------------------------------------------------------------------===//

  void regCost(Reg Word1, Reg Word2 = 0, Reg Word3 = 0) {
    // Registers beyond the fast file model spilled values.
    if (Word1 >= FastWordRegs)
      R.Cycles += 2;
    if (Word2 >= FastWordRegs)
      R.Cycles += 2;
    if (Word3 >= FastWordRegs)
      R.Cycles += 2;
  }
  void fregCost(Reg F1, Reg F2 = 0, Reg F3 = 0) {
    if (F1 >= FastFloatRegs)
      R.Cycles += 2;
    if (F2 >= FastFloatRegs)
      R.Cycles += 2;
    if (F3 >= FastFloatRegs)
      R.Cycles += 2;
  }

  //===--------------------------------------------------------------------===//
  // Engine hooks for the shared runtime services
  //===--------------------------------------------------------------------===//

  Word &regOut(Reg Rd) override { return W[Rd]; }
  void enterFunction(int Label, int NW, int NF) override {
    jumpInto(Label, NW, NF);
  }

  //===--------------------------------------------------------------------===//
  // Control (Vm.cpp)
  //===--------------------------------------------------------------------===//

  void jumpInto(int Label, int NW, int NF);
  void jumpIntoDecoded(const DecodedProgram &DP, int Label, int NW, int NF);

  //===--------------------------------------------------------------------===//
  // Dispatch engines
  //===--------------------------------------------------------------------===//

  void runLegacy();
  void stepLegacy();
  void runDecodedSwitch(const DecodedProgram &DP);   // Interp.cpp
  void runDecodedThreaded(const DecodedProgram &DP); // Interp.cpp

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  Word W[NumWordRegs];
  double F[NumFloatRegs];

  int Fn = 0;
  size_t Pc = 0;
  /// GC scan watermark for W: registers at or above it are dead (the
  /// legacy interpreter keeps them as tagged zeros; the decoded engines
  /// skip both the clear and the scan).
  size_t WLive = NumWordRegs;
  int MaxWSeen = -1;
  int MaxFSeen = -1;

  size_t PendingAt = 0;
  size_t PendingCursor = 0;
  uint32_t PendingWords = 0;
  uint32_t PendingFloats = 0;

  bool ProfileOps = false;
  uint64_t OpCounts[NumDOps] = {};
};

} // namespace vmdetail
} // namespace smltc

#endif // SMLTC_VM_VMINTERNAL_H
