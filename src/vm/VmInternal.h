//===- vm/VmInternal.h - Machine state shared by the dispatch engines --------------===//
///
/// \file
/// The Machine holds the register files, heap, and runtime services
/// (allocation, exceptions, the CCallRt services, polymorphic equality)
/// shared by all three dispatch engines. Vm.cpp implements the services
/// and the legacy loop; Interp.cpp implements the pre-decoded switch and
/// computed-goto loops over the bodies in InterpLoop.inc.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_VMINTERNAL_H
#define SMLTC_VM_VMINTERNAL_H

#include "vm/Decode.h"
#include "vm/Vm.h"

#include <cstring>
#include <string>
#include <vector>

namespace smltc {
namespace vmdetail {

// Virtual register files. The float file matches the word file: the
// code generator allocates fresh virtual registers per function and
// float-heavy programs exceed 64 (Nucleic under sml.nrp reaches f79 —
// with the old 64-entry file those writes silently landed in ArgW and
// became garbage "pointers" for the GC). The cost model is unaffected:
// registers past the fast-file sizes below already model spills.
constexpr int NumWordRegs = 256;
constexpr int NumFloatRegs = 256;
constexpr int FastWordRegs = 32;
constexpr int FastFloatRegs = 16;
constexpr int MaxArgs = 64;

/// Builtin exception tag indices (must match BuiltinExns::all() order in
/// the translator prologue: Match, Bind, Div, Subscript, Size, Overflow,
/// Chr; ids are 1-based).
enum BuiltinTag {
  TagMatch = 1,
  TagBind = 2,
  TagDiv = 3,
  TagSubscript = 4,
  TagSize = 5,
  TagOverflow = 6,
  TagChr = 7,
  NumBuiltinTags = 8,
};

class Machine {
public:
  Machine(const TmProgram &P, const VmOptions &Opts);
  ExecResult run();

private:
  friend struct InterpAccess;

  //===--------------------------------------------------------------------===//
  // Cost model (legacy loop; the decoded loops use the fused constants)
  //===--------------------------------------------------------------------===//

  void cost(uint64_t C) { R.Cycles += C; }
  void regCost(Reg Word1, Reg Word2 = 0, Reg Word3 = 0) {
    // Registers beyond the fast file model spilled values.
    if (Word1 >= FastWordRegs)
      R.Cycles += 2;
    if (Word2 >= FastWordRegs)
      R.Cycles += 2;
    if (Word3 >= FastWordRegs)
      R.Cycles += 2;
  }
  void fregCost(Reg F1, Reg F2 = 0, Reg F3 = 0) {
    if (F1 >= FastFloatRegs)
      R.Cycles += 2;
    if (F2 >= FastFloatRegs)
      R.Cycles += 2;
    if (F3 >= FastFloatRegs)
      R.Cycles += 2;
  }

  //===--------------------------------------------------------------------===//
  // Heap helpers and runtime services (Vm.cpp)
  //===--------------------------------------------------------------------===//

  size_t allocObject(ObjKind K, uint32_t Len1, uint32_t Len2,
                     size_t PayloadWords);
  Word allocBytes(const char *Data, size_t N);
  const char *bytesData(Word P, size_t &N);
  void internStrings();

  void jumpInto(int Label, int NW, int NF);
  void jumpIntoDecoded(const DecodedProgram &DP, int Label, int NW, int NF);
  void trap(const std::string &Msg);
  void raiseBuiltin(int TagIdx);
  void invokeHandler(Word Exn);
  bool polyEq(Word A, Word B, uint64_t &Nodes);
  void runtimeCall(CpsOp Rt, Reg Rd);

  bool condHolds(TmCond C, int64_t A, int64_t B);
  bool condHoldsF(TmCond C, double A, double B);

  //===--------------------------------------------------------------------===//
  // Dispatch engines
  //===--------------------------------------------------------------------===//

  void runLegacy();
  void stepLegacy();
  void runDecodedSwitch(const DecodedProgram &DP);   // Interp.cpp
  void runDecodedThreaded(const DecodedProgram &DP); // Interp.cpp

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const TmProgram &P;
  VmOptions Opts;
  Heap Hp;
  ExecResult R;

  Word W[NumWordRegs];
  double F[NumFloatRegs];
  Word ArgW[MaxArgs];
  double ArgF[MaxArgs];
  Word Handler;
  Word Tags[NumBuiltinTags];
  std::vector<Word> StrPtrs;

  int Fn = 0;
  size_t Pc = 0;
  /// GC scan watermark for W: registers at or above it are dead (the
  /// legacy interpreter keeps them as tagged zeros; the decoded engines
  /// skip both the clear and the scan).
  size_t WLive = NumWordRegs;
  bool Done = false;
  int MaxWSeen = -1;
  int MaxFSeen = -1;

  size_t PendingAt = 0;
  size_t PendingCursor = 0;
  uint32_t PendingWords = 0;
  uint32_t PendingFloats = 0;

  uint64_t AllocWords32 = 0;

  bool ProfileOps = false;
  uint64_t OpCounts[NumDOps] = {};
};

} // namespace vmdetail
} // namespace smltc

#endif // SMLTC_VM_VMINTERNAL_H
