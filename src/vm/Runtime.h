//===- vm/Runtime.h - Runtime services shared by interpreters and native code ------===//
///
/// \file
/// VmRuntime holds the execution state and services every engine needs —
/// the heap, argument registers, handler, builtin exception tags, interned
/// strings, and the CCallRt service dispatch — independent of how the word
/// register file is represented. The three interpreter loops keep their
/// registers in Machine's W array; the native backend keeps them in
/// per-frame locals published to the heap's shadow stack. The two
/// engine-specific operations the services need are virtual:
///
///   regOut(Rd)            — where a service result register lives;
///   enterFunction(L,n,n)  — transfer control to a function (the
///                           interpreters jump, native code returns the
///                           target index to its trampoline).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_RUNTIME_H
#define SMLTC_VM_RUNTIME_H

#include "vm/Vm.h"

#include <string>
#include <vector>

namespace smltc {
namespace vmdetail {

// Virtual register files. The float file matches the word file: the
// code generator allocates fresh virtual registers per function and
// float-heavy programs exceed 64 (Nucleic under sml.nrp reaches f79 —
// with the old 64-entry file those writes silently landed in ArgW and
// became garbage "pointers" for the GC). The cost model is unaffected:
// registers past the fast-file sizes below already model spills.
constexpr int NumWordRegs = 256;
constexpr int NumFloatRegs = 256;
constexpr int FastWordRegs = 32;
constexpr int FastFloatRegs = 16;
constexpr int MaxArgs = 64;

/// Builtin exception tag indices (must match BuiltinExns::all() order in
/// the translator prologue: Match, Bind, Div, Subscript, Size, Overflow,
/// Chr; ids are 1-based).
enum BuiltinTag {
  TagMatch = 1,
  TagBind = 2,
  TagDiv = 3,
  TagSubscript = 4,
  TagSize = 5,
  TagOverflow = 6,
  TagChr = 7,
  NumBuiltinTags = 8,
};

/// Engine-independent runtime: heap, argument staging, exceptions, and
/// the CCallRt services, with identical costs under every engine.
class VmRuntime {
public:
  VmRuntime(const TmProgram &P, const VmOptions &Opts);
  virtual ~VmRuntime() = default;

protected:
  /// Lvalue of the destination register for a runtime-service result.
  virtual Word &regOut(Reg Rd) = 0;
  /// Transfers control to function Label with NW/NF staged arguments.
  /// Interpreter engines jump immediately; the native host records the
  /// target for its trampoline. Must trap on an invalid label.
  virtual void enterFunction(int Label, int NW, int NF) = 0;

  /// Registers the GC roots and interns the string pool. Call from the
  /// derived constructor once register storage is initialized: WBase, if
  /// non-null, is registered first (scanned up to *WLiveCount), matching
  /// the interpreters' historical root order; the native host passes
  /// null and publishes frames through the heap shadow stack instead.
  void initRuntime(Word *WBase, const size_t *WLiveCount);

  void cost(uint64_t C) { R.Cycles += C; }

  //===--------------------------------------------------------------------===//
  // Heap helpers and runtime services (Runtime.cpp)
  //===--------------------------------------------------------------------===//

  size_t allocObject(ObjKind K, uint32_t Len1, uint32_t Len2,
                     size_t PayloadWords);
  Word allocBytes(const char *Data, size_t N);
  const char *bytesData(Word P, size_t &N);
  void internStrings();

  void trap(const std::string &Msg);
  void raiseBuiltin(int TagIdx);
  void invokeHandler(Word Exn);
  bool polyEq(Word A, Word B, uint64_t &Nodes);
  void runtimeCall(CpsOp Rt, Reg Rd);

  static bool condHolds(TmCond C, int64_t A, int64_t B);
  static bool condHoldsF(TmCond C, double A, double B);

  //===--------------------------------------------------------------------===//
  // Shared state
  //===--------------------------------------------------------------------===//

  const TmProgram &P;
  VmOptions Opts;
  Heap Hp;
  ExecResult R;

  Word ArgW[MaxArgs];
  double ArgF[MaxArgs];
  Word Handler;
  Word Tags[NumBuiltinTags];
  std::vector<Word> StrPtrs;

  bool Done = false;
  uint64_t AllocWords32 = 0;
};

} // namespace vmdetail
} // namespace smltc

#endif // SMLTC_VM_RUNTIME_H
