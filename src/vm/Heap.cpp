//===- vm/Heap.cpp - Tagged heap: nursery + Cheney two-space major space -----------===//

#include "vm/Heap.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>
#include <chrono>

using namespace smltc;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

// GC pauses are microseconds-to-tens-of-milliseconds; the ladder spans
// 1us..100ms in ~2.5x steps.
std::vector<double> gcPauseBuckets() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1};
}

// Copy volume per collection, in heap words (1Ki..16Mi, 4x steps).
std::vector<double> gcCopyBuckets() {
  return {1024.0,   4096.0,    16384.0,   65536.0,
          262144.0, 1048576.0, 4194304.0, 16777216.0};
}

} // namespace

std::shared_ptr<obs::Histogram> smltc::gcPauseHistogram(bool Major) {
  static std::shared_ptr<obs::Histogram> Minor =
      std::make_shared<obs::Histogram>(gcPauseBuckets());
  static std::shared_ptr<obs::Histogram> Maj =
      std::make_shared<obs::Histogram>(gcPauseBuckets());
  return Major ? Maj : Minor;
}

std::shared_ptr<obs::Histogram> smltc::gcCopiedWordsHistogram(bool Major) {
  static std::shared_ptr<obs::Histogram> Minor =
      std::make_shared<obs::Histogram>(gcCopyBuckets());
  static std::shared_ptr<obs::Histogram> Maj =
      std::make_shared<obs::Histogram>(gcCopyBuckets());
  return Major ? Maj : Minor;
}

Heap::Heap(size_t SemiWords, size_t NurseryWords)
    : SemiWords(SemiWords), NurseryWords(NurseryWords) {
  // The major space must always hold NurseryWords of promotion headroom
  // (see allocMajor); cap the nursery so a tiny test heap keeps room to
  // make progress.
  if (this->NurseryWords > SemiWords / 4)
    this->NurseryWords = SemiWords / 4;
  Mem.resize(SemiWords, 0);
  FromSpace.resize(SemiWords, 0);
  Nursery.resize(this->NurseryWords, 0);
}

size_t Heap::objectWords(Word Desc) {
  size_t N;
  switch (descKind(Desc)) {
  case ObjKind::Record:
    N = 1 + descLen1(Desc) + descLen2(Desc);
    break;
  case ObjKind::Bytes:
    N = 1 + (descLen1(Desc) + 7) / 8;
    break;
  case ObjKind::Cell:
    N = 2;
    break;
  case ObjKind::Array:
    N = 1 + descLen2(Desc);
    break;
  case ObjKind::Forward:
    return 1;
  default:
    N = 1;
    break;
  }
  // Forwarding needs two words in place (marker + new address).
  return N < 2 ? 2 : N;
}

size_t Heap::allocRaw(size_t PayloadWords) {
  // Match objectWords: every object occupies at least 2 words so the
  // collector's forwarding pair fits without clobbering a neighbor.
  if (PayloadWords == 0)
    PayloadWords = 1;
  size_t Need = 1 + PayloadWords;
  // Small objects go to the nursery; anything over a quarter of it goes
  // straight to the major space (it would evict everything else anyway).
  if (NurseryWords != 0 && Need * 4 <= NurseryWords) {
    if (NurseryHP + Need > NurseryWords) {
      minorCollect();
      // Promotion may have eaten the major headroom; restore the
      // invariant now, while the nursery is guaranteed empty.
      if (HP + NurseryWords > SemiWords)
        majorCollectAndGrow(0);
    }
    size_t At = NurseryBase + NurseryHP;
    NurseryHP += Need;
    ++AllocatedObjects;
    ++Stats.NurseryAllocObjects;
    return At;
  }
  return allocMajor(Need);
}

size_t Heap::allocMajor(size_t Need) {
  // Reserve NurseryWords of headroom so a minor scavenge always has room
  // to promote every nursery survivor.
  if (HP + Need + NurseryWords > SemiWords) {
    minorCollect();
    majorCollectAndGrow(Need);
  }
  size_t At = HP;
  HP += Need;
  ++AllocatedObjects;
  return At;
}

void Heap::majorCollectAndGrow(size_t Need) {
  collect();
  while (HP + Need + NurseryWords > SemiWords) {
    // Grow both semispaces and re-collect into the bigger space.
    SemiWords *= 2;
    FromSpace.assign(SemiWords, 0);
    collect();
  }
}

//===----------------------------------------------------------------------===//
// Minor collection: scavenge the nursery into the major space.
//===----------------------------------------------------------------------===//

Word Heap::forwardMinor(Word P) {
  if (!isPointer(P))
    return P;
  size_t Idx = pointerIndex(P);
  if (Idx < NurseryBase)
    return P; // already old
  size_t NIdx = Idx - NurseryBase;
  Word Desc = Nursery[NIdx];
  if (descKind(Desc) == ObjKind::Forward)
    return Nursery[NIdx + 1];
  size_t N = objectWords(Desc);
  size_t NewIdx = HP;
  assert(NewIdx + N <= SemiWords && "promotion headroom violated");
  for (size_t I = 0; I < N; ++I)
    Mem[NewIdx + I] = Nursery[NIdx + I];
  HP += N;
  CopiedWords += N;
  Word NewPtr = makePointer(NewIdx);
  Nursery[NIdx] = makeDesc(ObjKind::Forward, 0, 0);
  Nursery[NIdx + 1] = NewPtr;
  return NewPtr;
}

void Heap::scanPromoted(size_t Scan) {
  while (Scan < HP) {
    Word Desc = Mem[Scan];
    size_t N = objectWords(Desc);
    switch (descKind(Desc)) {
    case ObjKind::Record: {
      size_t Floats = descLen1(Desc);
      size_t Words = descLen2(Desc);
      for (size_t I = 0; I < Words; ++I) {
        size_t Slot = Scan + 1 + Floats + I;
        Mem[Slot] = forwardMinor(Mem[Slot]);
      }
      break;
    }
    case ObjKind::Cell:
    case ObjKind::Array: {
      size_t Words = descKind(Desc) == ObjKind::Cell ? 1 : descLen2(Desc);
      for (size_t I = 0; I < Words; ++I) {
        size_t Slot = Scan + 1 + I;
        Mem[Slot] = forwardMinor(Mem[Slot]);
      }
      break;
    }
    case ObjKind::Bytes:
    case ObjKind::Forward:
      break;
    }
    Scan += N;
  }
}

void Heap::minorCollect() {
  if (NurseryHP == 0) {
    StoreList.clear();
    return;
  }
  auto T0 = std::chrono::steady_clock::now();
  obs::Span GcSpan("minor_gc", "gc");
  ++Stats.MinorCollections;
  size_t PromoteStart = HP;
  for (RootRange &R : RootRanges)
    for (size_t I = 0, E = R.count(); I < E; ++I)
      R.Begin[I] = forwardMinor(R.Begin[I]);
  // Native frames published through the shadow-stack protocol.
  for (uint64_t FI = 0; FI < ShadowDepth; ++FI) {
    ShadowFrame &SF = ShadowStack[FI];
    for (uint64_t I = 0; I < SF.Count; ++I)
      SF.Base[I] = forwardMinor(SF.Base[I]);
  }
  // Old-to-young pointers recorded by the write barrier.
  for (size_t Slot : StoreList)
    Mem[Slot] = forwardMinor(Mem[Slot]);
  // Transitively promote everything the survivors reach.
  scanPromoted(PromoteStart);
  uint64_t Promoted = HP - PromoteStart;
  Stats.PromotedWords += Promoted;
  if (Promoted > Stats.MaxMinorPauseWords)
    Stats.MaxMinorPauseWords = Promoted;
  NurseryHP = 0;
  StoreList.clear();
  GcSpan.arg("promoted_words", Promoted);
  double Sec = secondsSince(T0);
  Stats.GcSec += Sec;
  gcPauseHistogram(false)->observe(Sec);
  gcCopiedWordsHistogram(false)->observe(static_cast<double>(Promoted));
}

//===----------------------------------------------------------------------===//
// Major collection: classic two-space Cheney copy.
//===----------------------------------------------------------------------===//

Word Heap::forward(Word P) {
  if (!isPointer(P))
    return P;
  size_t Idx = pointerIndex(P);
  assert(Idx < NurseryBase && "nursery pointer reached the major GC");
  Word Desc = FromSpace[Idx];
  if (descKind(Desc) == ObjKind::Forward)
    return FromSpace[Idx + 1];
  size_t N = objectWords(Desc);
  size_t NewIdx = HP;
  for (size_t I = 0; I < N; ++I)
    Mem[NewIdx + I] = FromSpace[Idx + I];
  HP += N;
  CopiedWords += N;
  Word NewPtr = makePointer(NewIdx);
  FromSpace[Idx] = makeDesc(ObjKind::Forward, 0, 0);
  FromSpace[Idx + 1] = NewPtr;
  return NewPtr;
}

void Heap::collect() {
  assert(NurseryHP == 0 && StoreList.empty() &&
         "major collection requires an empty nursery (minorCollect first)");
  auto T0 = std::chrono::steady_clock::now();
  obs::Span GcSpan("major_gc", "gc");
  ++Stats.MajorCollections;
  uint64_t CopiedBefore = CopiedWords;
  std::swap(Mem, FromSpace);
  if (Mem.size() != SemiWords)
    Mem.assign(SemiWords, 0);
  HP = 1;
  size_t Scan = 1;
  for (RootRange &R : RootRanges)
    for (size_t I = 0, E = R.count(); I < E; ++I)
      R.Begin[I] = forward(R.Begin[I]);
  // Native frames published through the shadow-stack protocol.
  for (uint64_t FI = 0; FI < ShadowDepth; ++FI) {
    ShadowFrame &SF = ShadowStack[FI];
    for (uint64_t I = 0; I < SF.Count; ++I)
      SF.Base[I] = forward(SF.Base[I]);
  }
  // Cheney scan.
  while (Scan < HP) {
    Word Desc = Mem[Scan];
    size_t N = objectWords(Desc);
    switch (descKind(Desc)) {
    case ObjKind::Record: {
      size_t Floats = descLen1(Desc);
      size_t Words = descLen2(Desc);
      for (size_t I = 0; I < Words; ++I) {
        size_t Slot = Scan + 1 + Floats + I;
        Mem[Slot] = forward(Mem[Slot]);
      }
      break;
    }
    case ObjKind::Cell:
    case ObjKind::Array: {
      size_t Words = descKind(Desc) == ObjKind::Cell ? 1 : descLen2(Desc);
      for (size_t I = 0; I < Words; ++I) {
        size_t Slot = Scan + 1 + I;
        Mem[Slot] = forward(Mem[Slot]);
      }
      break;
    }
    case ObjKind::Bytes:
    case ObjKind::Forward:
      break;
    }
    Scan += N;
  }
  uint64_t Pause = CopiedWords - CopiedBefore;
  Stats.MajorCopiedWords += Pause;
  if (Pause > Stats.MaxMajorPauseWords)
    Stats.MaxMajorPauseWords = Pause;
  GcSpan.arg("copied_words", Pause);
  double Sec = secondsSince(T0);
  Stats.GcSec += Sec;
  gcPauseHistogram(true)->observe(Sec);
  gcCopiedWordsHistogram(true)->observe(static_cast<double>(Pause));
}
