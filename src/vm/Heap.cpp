//===- vm/Heap.cpp - Tagged heap with a Cheney two-space collector ------------------===//

#include "vm/Heap.h"

#include <cassert>

using namespace smltc;

Heap::Heap(size_t SemiWords) : SemiWords(SemiWords) {
  Mem.resize(SemiWords, 0);
  FromSpace.resize(SemiWords, 0);
}

size_t Heap::objectWords(Word Desc) {
  switch (descKind(Desc)) {
  case ObjKind::Record:
    return 1 + descLen1(Desc) + descLen2(Desc);
  case ObjKind::Bytes:
    return 1 + (descLen1(Desc) + 7) / 8;
  case ObjKind::Cell:
    return 2;
  case ObjKind::Array:
    return 1 + descLen2(Desc);
  case ObjKind::Forward:
    return 1;
  }
  return 1;
}

size_t Heap::allocRaw(size_t PayloadWords) {
  size_t Need = 1 + PayloadWords;
  if (HP + Need > SemiWords) {
    collect();
    while (HP + Need > SemiWords) {
      // Grow both semispaces and re-collect into the bigger space.
      SemiWords *= 2;
      FromSpace.assign(SemiWords, 0);
      collect();
    }
  }
  size_t At = HP;
  HP += Need;
  ++AllocatedObjects;
  return At;
}

Word Heap::forward(Word P, std::vector<Word> &To, size_t &Scan) {
  (void)Scan;
  if (!isPointer(P))
    return P;
  size_t Idx = pointerIndex(P);
  Word Desc = FromSpace[Idx];
  if (descKind(Desc) == ObjKind::Forward)
    return FromSpace[Idx + 1];
  size_t N = objectWords(Desc);
  size_t NewIdx = HP;
  for (size_t I = 0; I < N; ++I)
    To[NewIdx + I] = FromSpace[Idx + I];
  HP += N;
  CopiedWords += N;
  Word NewPtr = makePointer(NewIdx);
  FromSpace[Idx] = makeDesc(ObjKind::Forward, 0, 0);
  FromSpace[Idx + 1] = NewPtr;
  return NewPtr;
}

void Heap::collect() {
  ++Collections;
  std::swap(Mem, FromSpace);
  if (Mem.size() != SemiWords)
    Mem.assign(SemiWords, 0);
  HP = 1;
  size_t Scan = 1;
  for (RootRange &R : RootRanges)
    for (size_t I = 0; I < R.Count; ++I)
      R.Begin[I] = forward(R.Begin[I], Mem, Scan);
  // Cheney scan.
  while (Scan < HP) {
    Word Desc = Mem[Scan];
    size_t N = objectWords(Desc);
    switch (descKind(Desc)) {
    case ObjKind::Record: {
      size_t Floats = descLen1(Desc);
      size_t Words = descLen2(Desc);
      for (size_t I = 0; I < Words; ++I) {
        size_t Slot = Scan + 1 + Floats + I;
        Mem[Slot] = forward(Mem[Slot], Mem, Scan);
      }
      break;
    }
    case ObjKind::Cell:
    case ObjKind::Array: {
      size_t Words = descKind(Desc) == ObjKind::Cell ? 1 : descLen2(Desc);
      for (size_t I = 0; I < Words; ++I) {
        size_t Slot = Scan + 1 + I;
        Mem[Slot] = forward(Mem[Slot], Mem, Scan);
      }
      break;
    }
    case ObjKind::Bytes:
    case ObjKind::Forward:
      break;
    }
    Scan += N;
  }
}
