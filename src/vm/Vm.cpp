//===- vm/Vm.cpp - Machine services, legacy dispatch loop, and run() ---------------===//
//
// The shared runtime services (heap helpers, exceptions, CCallRt, polyEq)
// and the original undecoded interpreter, kept as VmDispatch::Legacy: it
// is the baseline bench/exec_throughput measures against and the
// differential oracle the decoded loops must match cycle for cycle.
// The pre-decoded switch/threaded loops live in Interp.cpp.
//
//===----------------------------------------------------------------------===//

#include "vm/VmInternal.h"

#include "obs/Trace.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace smltc;
using namespace smltc::vmdetail;

Machine::Machine(const TmProgram &P, const VmOptions &Opts)
    : VmRuntime(P, Opts) {
  std::memset(W, 0, sizeof(W));
  std::memset(F, 0, sizeof(F));
  ProfileOps = Opts.ProfileOpcodes;
  // Register storage is zeroed; safe to register roots and intern now.
  initRuntime(W, &WLive);
}

//===----------------------------------------------------------------------===//
// Control
//===----------------------------------------------------------------------===//

void Machine::jumpInto(int Label, int NW, int NF) {
  if (Label < 0 || Label >= static_cast<int>(P.Funs.size())) {
    trap("jump to invalid label");
    return;
  }
  const TmFunction &Target = P.Funs[Label];
  // Stage arguments into the register file.
  for (int I = 0; I < Target.NumWordParams; ++I)
    W[1 + I] = I < NW ? ArgW[I] : tagInt(0);
  for (int I = 0; I < Target.NumFloatParams; ++I)
    F[1 + I] = I < NF ? ArgF[I] : 0.0;
  // Clear dead registers so the GC roots stay precise.
  for (int I = 1 + Target.NumWordParams; I < NumWordRegs; ++I)
    W[I] = tagInt(0);
  WLive = NumWordRegs;
  Fn = Label;
  Pc = 0;
}

void Machine::jumpIntoDecoded(const DecodedProgram &DP, int Label, int NW,
                              int NF) {
  if (Label < 0 || Label >= static_cast<int>(DP.Funs.size())) {
    trap("jump to invalid label");
    return;
  }
  const DecodedFunction &Target = DP.Funs[Label];
  for (int I = 0; I < Target.NumWordParams; ++I)
    W[1 + I] = I < NW ? ArgW[I] : tagInt(0);
  for (int I = 0; I < Target.NumFloatParams; ++I)
    F[1 + I] = I < NF ? ArgF[I] : 0.0;
  // Clear only up to the callee's watermark and shrink the GC scan to
  // it: the registers above would be tagged zeros under the legacy
  // interpreter's full clear, so the visible root set is unchanged.
  for (int I = 1 + Target.NumWordParams; I < Target.NumRegsUsed; ++I)
    W[I] = tagInt(0);
  WLive = static_cast<size_t>(Target.NumRegsUsed);
  Fn = Label;
  Pc = 0;
}

//===----------------------------------------------------------------------===//
// Runtime services: allocation, exceptions, polyEq, and CCallRt moved to
// vm/Runtime.cpp (VmRuntime), shared with the native backend.
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Legacy interpreter step (the seed baseline, preserved bit for bit)
//===----------------------------------------------------------------------===//

void Machine::stepLegacy() {
  const TmFunction &CurFn = P.Funs[Fn];
  if (Pc >= CurFn.Code.size()) {
    trap("fell off the end of a function");
    return;
  }
  const Insn &I = CurFn.Code[Pc++];
  ++R.Instructions;
  if (ProfileOps)
    ++OpCounts[static_cast<int>(I.Op)];
  switch (I.Op) {
  case TmOp::MovI:
    W[I.Rd] = tagInt(I.IVal);
    cost(1);
    regCost(I.Rd);
    return;
  case TmOp::MovR:
    W[I.Rd] = W[I.Rs1];
    cost(1);
    regCost(I.Rd, I.Rs1);
    return;
  case TmOp::MovFI:
    F[I.Rd] = I.FVal;
    cost(1);
    fregCost(I.Rd);
    return;
  case TmOp::MovFR:
    F[I.Rd] = F[I.Rs1];
    cost(1);
    fregCost(I.Rd, I.Rs1);
    return;
  case TmOp::LoadLabel:
    W[I.Rd] = tagInt(I.Imm);
    cost(1);
    regCost(I.Rd);
    return;
  case TmOp::LoadStr:
    W[I.Rd] = StrPtrs[static_cast<size_t>(I.Imm)];
    cost(1);
    regCost(I.Rd);
    return;

  case TmOp::Add:
    W[I.Rd] = tagInt(untagInt(W[I.Rs1]) + untagInt(W[I.Rs2]));
    cost(1);
    regCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::Sub:
    W[I.Rd] = tagInt(untagInt(W[I.Rs1]) - untagInt(W[I.Rs2]));
    cost(1);
    regCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::Mul:
    W[I.Rd] = tagInt(untagInt(W[I.Rs1]) * untagInt(W[I.Rs2]));
    cost(5);
    regCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::Div:
  case TmOp::Mod: {
    int64_t D = untagInt(W[I.Rs2]);
    if (D == 0) {
      raiseBuiltin(TagDiv);
      return;
    }
    int64_t N = untagInt(W[I.Rs1]);
    // SML div/mod round toward negative infinity.
    int64_t Q = N / D;
    int64_t Rm = N % D;
    if (Rm != 0 && ((Rm < 0) != (D < 0))) {
      Q -= 1;
      Rm += D;
    }
    W[I.Rd] = tagInt(I.Op == TmOp::Div ? Q : Rm);
    cost(12);
    regCost(I.Rd, I.Rs1, I.Rs2);
    return;
  }
  case TmOp::Neg:
    W[I.Rd] = tagInt(-untagInt(W[I.Rs1]));
    cost(1);
    regCost(I.Rd, I.Rs1);
    return;
  case TmOp::Abs: {
    int64_t V = untagInt(W[I.Rs1]);
    W[I.Rd] = tagInt(V < 0 ? -V : V);
    cost(1);
    regCost(I.Rd, I.Rs1);
    return;
  }

  case TmOp::FAdd:
    F[I.Rd] = F[I.Rs1] + F[I.Rs2];
    cost(2);
    fregCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::FSub:
    F[I.Rd] = F[I.Rs1] - F[I.Rs2];
    cost(2);
    fregCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::FMul:
    F[I.Rd] = F[I.Rs1] * F[I.Rs2];
    cost(2);
    fregCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::FDiv:
    F[I.Rd] = F[I.Rs1] / F[I.Rs2];
    cost(12);
    fregCost(I.Rd, I.Rs1, I.Rs2);
    return;
  case TmOp::FNeg:
    F[I.Rd] = -F[I.Rs1];
    cost(1);
    fregCost(I.Rd, I.Rs1);
    return;
  case TmOp::FAbs:
    F[I.Rd] = std::fabs(F[I.Rs1]);
    cost(1);
    fregCost(I.Rd, I.Rs1);
    return;
  case TmOp::FSqrt:
    F[I.Rd] = std::sqrt(F[I.Rs1]);
    cost(15);
    fregCost(I.Rd, I.Rs1);
    return;
  case TmOp::FSin:
    F[I.Rd] = std::sin(F[I.Rs1]);
    cost(30);
    return;
  case TmOp::FCos:
    F[I.Rd] = std::cos(F[I.Rs1]);
    cost(30);
    return;
  case TmOp::FAtan:
    F[I.Rd] = std::atan(F[I.Rs1]);
    cost(30);
    return;
  case TmOp::FExp:
    F[I.Rd] = std::exp(F[I.Rs1]);
    cost(30);
    return;
  case TmOp::FLn:
    F[I.Rd] = std::log(F[I.Rs1]);
    cost(30);
    return;
  case TmOp::Floor:
    W[I.Rd] = tagInt(static_cast<int64_t>(std::floor(F[I.Rs1])));
    cost(2);
    return;
  case TmOp::IToF:
    F[I.Rd] = static_cast<double>(untagInt(W[I.Rs1]));
    cost(2);
    return;

  case TmOp::Br: {
    bool T = condHolds(I.Cond, static_cast<int64_t>(W[I.Rs1]),
                       static_cast<int64_t>(W[I.Rs2]));
    cost(T ? 2 : 1);
    regCost(I.Rs1, I.Rs2);
    if (T)
      Pc = static_cast<size_t>(I.Imm);
    return;
  }
  case TmOp::BrF: {
    if (I.Cond == TmCond::Ult) {
      trap(dtrapMessage(DTrapFloatUnsignedCompare));
      return;
    }
    bool T = condHoldsF(I.Cond, F[I.Rs1], F[I.Rs2]);
    cost(T ? 2 : 1);
    if (T)
      Pc = static_cast<size_t>(I.Imm);
    return;
  }
  case TmOp::BrBoxed: {
    bool T = isPointer(W[I.Rs1]);
    cost(T ? 2 : 1);
    regCost(I.Rs1);
    if (T)
      Pc = static_cast<size_t>(I.Imm);
    return;
  }
  case TmOp::Jmp:
    cost(2);
    Pc = static_cast<size_t>(I.Imm);
    return;

  case TmOp::Load: {
    Word Base = W[I.Rs1];
    if (!isPointer(Base)) {
      trap("load from a non-pointer (fn " + std::to_string(Fn) + " pc " +
           std::to_string(Pc - 1) + ")");
      return;
    }
    W[I.Rd] = Hp.at(pointerIndex(Base) + 1 + I.Imm);
    cost(2);
    regCost(I.Rd, I.Rs1);
    return;
  }
  case TmOp::Store: {
    Word Base = W[I.Rs1];
    if (!isPointer(Base)) {
      trap("store to a non-pointer");
      return;
    }
    Hp.storeField(pointerIndex(Base) + 1 + I.Imm, W[I.Rd]);
    cost(1);
    return;
  }
  case TmOp::LoadF: {
    Word Base = W[I.Rs1];
    if (!isPointer(Base)) {
      trap("float load from a non-pointer");
      return;
    }
    Word Bits = Hp.at(pointerIndex(Base) + 1 + I.Imm);
    std::memcpy(&F[I.Rd], &Bits, 8);
    cost(Opts.UnalignedFloats ? 4 : 2);
    fregCost(I.Rd);
    regCost(0, I.Rs1);
    return;
  }
  case TmOp::LoadIdx: {
    Word Base = W[I.Rs1];
    if (!isPointer(Base)) {
      trap("indexed load from a non-pointer");
      return;
    }
    int64_t Idx = untagInt(W[I.Rs2]);
    size_t BI = pointerIndex(Base);
    Word D = Hp.at(BI);
    int64_t Len = descKind(D) == ObjKind::Cell
                      ? 1
                      : static_cast<int64_t>(descLen2(D));
    if (Idx < 0 || Idx >= Len) {
      raiseBuiltin(TagSubscript);
      return;
    }
    W[I.Rd] = Hp.at(BI + 1 + Idx);
    cost(3); // descriptor check + load
    regCost(I.Rd, I.Rs1, I.Rs2);
    return;
  }
  case TmOp::StoreIdx: {
    Word Base = W[I.Rs1];
    if (!isPointer(Base)) {
      trap("indexed store to a non-pointer");
      return;
    }
    int64_t Idx = untagInt(W[I.Rs2]);
    size_t BI = pointerIndex(Base);
    Word D = Hp.at(BI);
    int64_t Len = descKind(D) == ObjKind::Cell
                      ? 1
                      : static_cast<int64_t>(descLen2(D));
    if (Idx < 0 || Idx >= Len) {
      raiseBuiltin(TagSubscript);
      return;
    }
    Hp.storeField(BI + 1 + Idx, W[I.Rd]);
    cost(2);
    return;
  }
  case TmOp::LoadByte: {
    size_t N;
    const char *Data = bytesData(W[I.Rs1], N);
    int64_t Idx = untagInt(W[I.Rs2]);
    if (Idx < 0 || static_cast<size_t>(Idx) >= N) {
      raiseBuiltin(TagSubscript);
      return;
    }
    W[I.Rd] = tagInt(static_cast<unsigned char>(Data[Idx]));
    cost(2);
    return;
  }
  case TmOp::SizeOfOp: {
    size_t BI = pointerIndex(W[I.Rs1]);
    Word D = Hp.at(BI);
    int64_t N;
    switch (descKind(D)) {
    case ObjKind::Bytes: N = descLen1(D); break;
    case ObjKind::Array: N = descLen2(D); break;
    case ObjKind::Cell: N = 1; break;
    default: N = descLen1(D) + descLen2(D); break;
    }
    W[I.Rd] = tagInt(N);
    cost(2);
    return;
  }

  case TmOp::AllocStart: {
    PendingFloats = I.Rs2;
    PendingWords = I.Rs1;
    size_t Payload = static_cast<size_t>(PendingWords) + PendingFloats;
    PendingAt =
        allocObject(ObjKind::Record, PendingFloats, PendingWords, Payload);
    if (I.RK == RecordKind::Ref)
      Hp.at(PendingAt) = makeDesc(ObjKind::Cell, 0, 1);
    PendingCursor = PendingAt + 1;
    AllocWords32 += 1 + PendingWords + 2 * PendingFloats;
    cost(1);
    return;
  }
  case TmOp::AllocWord:
    Hp.at(PendingCursor++) = W[I.Rs1];
    cost(1);
    regCost(0, I.Rs1);
    return;
  case TmOp::AllocFloat: {
    Word Bits;
    std::memcpy(&Bits, &F[I.Rs1], 8);
    Hp.at(PendingCursor++) = Bits;
    cost(2); // two single-word stores
    return;
  }
  case TmOp::AllocEnd:
    W[I.Rd] = makePointer(PendingAt);
    cost(1);
    regCost(I.Rd);
    return;

  case TmOp::GetHdlr:
    W[I.Rd] = Handler;
    cost(1);
    regCost(I.Rd);
    return;
  case TmOp::SetHdlr:
    Handler = W[I.Rs1];
    cost(1);
    regCost(0, I.Rs1);
    return;

  case TmOp::SetArg:
    ArgW[I.Imm] = W[I.Rs1];
    if (I.Imm > MaxWSeen)
      MaxWSeen = I.Imm;
    cost(1);
    regCost(0, I.Rs1);
    return;
  case TmOp::SetArgF:
    ArgF[I.Imm] = F[I.Rs1];
    if (I.Imm > MaxFSeen)
      MaxFSeen = I.Imm;
    cost(1);
    return;
  case TmOp::CallL:
    cost(2);
    jumpInto(I.Imm, MaxWSeen + 1, MaxFSeen + 1);
    MaxWSeen = MaxFSeen = -1;
    return;
  case TmOp::CallR: {
    Word Code = W[I.Rs1];
    cost(2);
    regCost(0, I.Rs1);
    if (!isTaggedInt(Code)) {
      trap("indirect call through a non-label value (fn " +
           std::to_string(Fn) + " pc " + std::to_string(Pc - 1) + " reg " +
           std::to_string(I.Rs1) + ")");
      return;
    }
    jumpInto(static_cast<int>(untagInt(Code)), MaxWSeen + 1, MaxFSeen + 1);
    MaxWSeen = MaxFSeen = -1;
    return;
  }

  case TmOp::CCallRt:
    runtimeCall(I.Rt, I.Rd);
    MaxWSeen = MaxFSeen = -1;
    return;

  case TmOp::HaltOp:
    R.Result = untagInt(W[I.Rs1]);
    Done = true;
    return;
  case TmOp::HaltExnOp:
    R.UncaughtException = true;
    R.Result = -1;
    Done = true;
    return;
  }
  trap("unknown instruction");
}

void Machine::runLegacy() {
  while (!Done) {
    if (R.Cycles > Opts.MaxCycles) {
      R.Trapped = true;
      R.TrapMessage = "cycle budget exhausted";
      break;
    }
    stepLegacy();
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

ExecResult Machine::run() {
  using Clock = std::chrono::steady_clock;
  auto Sec = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double>(B - A).count();
  };

  obs::Span RunSpan("vm_run", "vm");

  VmDispatch Mode = Opts.Dispatch;
  if (Mode == VmDispatch::Threaded && !threadedDispatchAvailable())
    Mode = VmDispatch::Switch;

  // Load-time structural check, identical in every mode: an out-of-range
  // register must trap, never index past a register file.
  if (const char *Err = validateRegisters(P)) {
    R.Metrics.Dispatch = Mode == VmDispatch::Legacy    ? "legacy"
                         : Mode == VmDispatch::Switch ? "switch"
                                                      : "threaded";
    trap(Err);
  } else {
    DecodedProgram DP;
    if (Mode != VmDispatch::Legacy) {
      auto T0 = Clock::now();
      DP = decodeProgram(P, Opts.UnalignedFloats);
      R.Metrics.DecodeSec = Sec(T0, Clock::now());
    }

    Fn = 0;
    Pc = 0;
    jumpInto(0, 0, 0);
    auto T0 = Clock::now();
    switch (Mode) {
    case VmDispatch::Legacy:
      R.Metrics.Dispatch = "legacy";
      runLegacy();
      break;
    case VmDispatch::Switch:
      R.Metrics.Dispatch = "switch";
      runDecodedSwitch(DP);
      break;
    case VmDispatch::Threaded:
      R.Metrics.Dispatch = "threaded";
      runDecodedThreaded(DP);
      break;
    }
    R.Metrics.ExecSec = Sec(T0, Clock::now());
  }

  R.Ok = !R.Trapped;
  R.AllocWords32 = AllocWords32;
  R.AllocObjects = Hp.allocatedObjects();
  R.GcCopiedWords = Hp.copiedWords();
  R.Collections = Hp.collections();

  const HeapStats &HS = Hp.stats();
  VmMetrics &M = R.Metrics;
  M.NurseryKb = Hp.nurseryWords() * sizeof(Word) / 1024;
  M.GcSec = HS.GcSec;
  M.Instructions = R.Instructions;
  M.Cycles = R.Cycles;
  M.AllocObjects = Hp.allocatedObjects();
  M.NurseryAllocObjects = HS.NurseryAllocObjects;
  M.AllocWords32 = AllocWords32;
  M.MinorCollections = HS.MinorCollections;
  M.MajorCollections = HS.MajorCollections;
  M.CopiedWords = Hp.copiedWords();
  M.PromotedWords = HS.PromotedWords;
  M.MajorCopiedWords = HS.MajorCopiedWords;
  M.MaxMinorPauseWords = HS.MaxMinorPauseWords;
  M.MaxMajorPauseWords = HS.MaxMajorPauseWords;
  M.BarrierStores = HS.BarrierStores;
  if (ProfileOps) {
    M.HasOpCounts = true;
    std::memcpy(M.OpCounts, OpCounts, sizeof(OpCounts));
  }
  RunSpan.arg("dispatch", std::string(M.Dispatch));
  RunSpan.arg("instructions", M.Instructions);
  return R;
}

ExecResult smltc::execute(const TmProgram &Program, const VmOptions &Opts) {
  Machine M(Program, Opts);
  return M.run();
}
