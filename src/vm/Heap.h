//===- vm/Heap.h - Tagged heap: nursery + Cheney two-space major space -------------===//
///
/// \file
/// The runtime heap. Values are 64-bit words: tagged integers are odd
/// ((n << 1) | 1); heap pointers are even (word index << 3). Floats live
/// untagged in float registers and occupy one 64-bit heap word (counted as
/// two 32-bit words in the allocation statistics, matching the paper's
/// 32-bit target).
///
/// Every object carries one descriptor word (kind, len1, len2):
///   Record (len1 = raw floats stored first, len2 = words after) — the
///     paper's Figure 1c "two short integers" descriptor;
///   Bytes  (len1 = byte count) — strings;
///   Cell   (1 mutable word) — refs and exception tags;
///   Array  (len2 = mutable words).
///
/// Generational layout: small objects are bump-allocated in a nursery
/// (word indices offset by NurseryBase so a pointer's generation is one
/// compare). When the nursery fills, a minor Cheney scavenge promotes the
/// survivors into the major space; old-to-young pointers created by
/// Cell/Array mutation are tracked in a store list by `storeField` (the
/// write barrier). The major space is the original two-space copying
/// collector and always reserves NurseryWords of headroom so promotion
/// can never fail mid-scavenge. A nursery of 0 words restores the plain
/// two-space behavior bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_HEAP_H
#define SMLTC_VM_HEAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace smltc {

namespace obs {
class Histogram;
}

using Word = uint64_t;

inline Word tagInt(int64_t N) {
  return (static_cast<uint64_t>(N) << 1) | 1;
}
inline int64_t untagInt(Word W) { return static_cast<int64_t>(W) >> 1; }
inline bool isTaggedInt(Word W) { return (W & 1) != 0; }
inline bool isPointer(Word W) { return W != 0 && (W & 1) == 0; }
inline Word makePointer(size_t WordIndex) {
  return static_cast<Word>(WordIndex) << 3;
}
inline size_t pointerIndex(Word W) { return static_cast<size_t>(W >> 3); }

enum class ObjKind : uint8_t {
  Record = 1,
  Bytes = 2,
  Cell = 3,
  Array = 4,
  Forward = 7, ///< GC forwarding marker
};

inline Word makeDesc(ObjKind K, uint32_t Len1, uint32_t Len2) {
  return (static_cast<Word>(K) << 56) |
         (static_cast<Word>(Len1 & 0xFFFFFFF) << 28) |
         static_cast<Word>(Len2 & 0xFFFFFFF);
}
inline ObjKind descKind(Word D) {
  return static_cast<ObjKind>(D >> 56);
}
inline uint32_t descLen1(Word D) {
  return static_cast<uint32_t>((D >> 28) & 0xFFFFFFF);
}
inline uint32_t descLen2(Word D) {
  return static_cast<uint32_t>(D & 0xFFFFFFF);
}

/// Per-heap GC statistics, split by generation. "Pause" is measured in
/// copied words — the deterministic proxy for stop-the-world time under
/// the cost model (3 cycles per copied word) — alongside wall seconds.
struct HeapStats {
  uint64_t MinorCollections = 0;
  uint64_t MajorCollections = 0;
  uint64_t PromotedWords = 0;   ///< nursery words that survived a minor GC
  uint64_t MajorCopiedWords = 0;
  uint64_t MaxMinorPauseWords = 0; ///< largest single minor scavenge
  uint64_t MaxMajorPauseWords = 0; ///< largest single major collection
  uint64_t NurseryAllocObjects = 0;
  uint64_t BarrierStores = 0; ///< old-to-young stores recorded
  double GcSec = 0;           ///< wall time inside collections
};

/// One native-frame root map: a frame's word registers live in memory the
/// generated code owns (a local array), and the frame publishes their
/// location here so the collector can scan and update them like any other
/// root range. See pushFrame/popFrame below.
struct ShadowFrame {
  Word *Base;
  uint64_t Count;
};

/// Process-global GC histograms, shared by every Heap in the process
/// and observed on every collection. A node's metrics registry adopts
/// them (Registry::registerHistogram) to expose
/// `smltcc_vm_gc_pause_seconds{gc="minor"|"major"}` and
/// `smltcc_vm_gc_copied_words{gc=...}` (minor = words promoted out of
/// the nursery, major = words copied between semispaces) on /metrics —
/// the heap itself never learns about registries.
std::shared_ptr<obs::Histogram> gcPauseHistogram(bool Major);
std::shared_ptr<obs::Histogram> gcCopiedWordsHistogram(bool Major);

/// A generational heap: bump-allocated nursery in front of a two-space
/// Cheney-collected major space. Allocation never fails: minor-collects,
/// major-collects, then grows, as needed. Root ranges must be registered
/// beforehand.
class Heap {
public:
  /// Nursery word indices live at NurseryBase + [0, NurseryWords) so that
  /// `Idx >= NurseryBase` is the generation test. Major indices stay
  /// small (semispaces grow by doubling from ~1M words), so the ranges
  /// cannot collide.
  static constexpr size_t NurseryBase = size_t(1) << 32;

  explicit Heap(size_t SemiWords = 1 << 20, size_t NurseryWords = 0);

  /// Allocates an object of 1 + Payload words; returns its word index.
  /// Objects are always at least 2 words so a (Forward, new-address)
  /// pair fits in place during collection.
  size_t allocRaw(size_t PayloadWords);

  Word &at(size_t Index) {
    if (Index >= NurseryBase) {
      assert(Index - NurseryBase < Nursery.size() &&
             "nursery access out of bounds");
      return Nursery[Index - NurseryBase];
    }
    assert(Index < Mem.size() && "heap access out of bounds");
    return Mem[Index];
  }
  Word at(size_t Index) const {
    return const_cast<Heap *>(this)->at(Index);
  }

  bool inNursery(size_t Index) const { return Index >= NurseryBase; }

  /// Mutating store with the generational write barrier: records the
  /// slot when an old-space slot is set to point at a nursery object.
  /// Initializing stores into fresh objects do not need it; Cell/Array
  /// mutation (Store/StoreIdx) must go through it.
  void storeField(size_t Slot, Word V) {
    at(Slot) = V;
    if (Slot < NurseryBase && isPointer(V) &&
        pointerIndex(V) >= NurseryBase) {
      // Cheap dedup for tight update loops hammering one slot.
      if (StoreList.empty() || StoreList.back() != Slot)
        StoreList.push_back(Slot);
      ++Stats.BarrierStores;
    }
  }

  /// Registers a root range (scanned and updated by GC).
  void addRootRange(Word *Begin, size_t Count) {
    RootRanges.push_back({Begin, Count, nullptr});
  }
  /// Root range whose live length is read through *Count at each
  /// collection — used for the register file, where only the prefix up
  /// to the current function's watermark holds live values (the rest
  /// would scan as tagged zeros anyway).
  void addRootRange(Word *Begin, const size_t *Count) {
    RootRanges.push_back({Begin, 0, Count});
  }
  void clearRootRanges() { RootRanges.clear(); }

  //===--------------------------------------------------------------------===//
  // Shadow-stack root protocol (native frames)
  //
  // Compiled code keeps a function's word registers in a frame-local
  // array and pushes a (base, count) map around every region that can
  // allocate; both collectors scan the live frames exactly like root
  // ranges. The interpreters never push frames, so the depth stays 0 and
  // they pay nothing. The stack is a fixed array so generated code can
  // push/pop through raw pointers (shadowFrames/shadowDepth) without a
  // callback per function entry; CPS code runs at depth 1 (every call is
  // a tail transfer through the trampoline), so the capacity is about
  // nesting of host-side re-entry, not program recursion.
  //===--------------------------------------------------------------------===//

  static constexpr size_t MaxShadowFrames = 64;

  void pushFrame(Word *Base, size_t Count) {
    assert(ShadowDepth < MaxShadowFrames && "shadow stack overflow");
    ShadowStack[ShadowDepth].Base = Base;
    ShadowStack[ShadowDepth].Count = Count;
    ++ShadowDepth;
  }
  void popFrame() {
    assert(ShadowDepth > 0 && "shadow stack underflow");
    --ShadowDepth;
  }
  /// Raw access for the native backend: generated code maintains the
  /// frame entries and depth directly through these pointers.
  ShadowFrame *shadowFrames() { return ShadowStack; }
  uint64_t *shadowDepth() { return &ShadowDepth; }
  uint64_t shadowDepthNow() const { return ShadowDepth; }

  /// Raw semispace / nursery storage for the native backend's inlined
  /// heap accesses. Both pointers are invalidated by any allocation
  /// (GC swap or growth): the native host refreshes its context copies
  /// after every call that can allocate.
  Word *majorData() { return Mem.data(); }
  Word *nurseryData() { return Nursery.data(); }

  /// Words copied by all collections so far (GC cost metric): minor
  /// promotions plus major-space copies.
  uint64_t copiedWords() const { return CopiedWords; }
  /// Total collections, both generations (back-compat aggregate).
  uint64_t collections() const {
    return Stats.MinorCollections + Stats.MajorCollections;
  }
  uint64_t allocatedObjects() const { return AllocatedObjects; }
  const HeapStats &stats() const { return Stats; }
  size_t nurseryWords() const { return NurseryWords; }
  size_t semiWords() const { return SemiWords; }

  /// Total payload size (in 64-bit words, incl. descriptor) of an object.
  /// Never less than 2 for allocatable kinds: the collector overwrites
  /// the first two words with a forwarding pair, so a descriptor-only
  /// object (empty string, empty record) must still occupy two words —
  /// the seed's 1-word empty objects let forwarding corrupt the next
  /// object's descriptor.
  static size_t objectWords(Word Desc);

private:
  size_t allocMajor(size_t Need);
  void minorCollect();
  void majorCollectAndGrow(size_t Need);
  void collect();
  Word forward(Word P);
  Word forwardMinor(Word P);
  void scanPromoted(size_t Scan);

  struct RootRange {
    Word *Begin;
    size_t Count;
    const size_t *DynCount; ///< overrides Count when non-null
    size_t count() const { return DynCount ? *DynCount : Count; }
  };

  std::vector<Word> FromSpace;
  std::vector<Word> Mem;     ///< active major semispace
  std::vector<Word> Nursery; ///< bump-allocated young generation
  size_t HP = 1;             ///< major alloc cursor; word 0 reserved (null)
  size_t NurseryHP = 0;      ///< nursery alloc cursor
  size_t SemiWords;
  size_t NurseryWords; ///< 0 disables the nursery
  std::vector<RootRange> RootRanges;
  ShadowFrame ShadowStack[MaxShadowFrames];
  uint64_t ShadowDepth = 0;
  std::vector<size_t> StoreList; ///< major slots holding nursery pointers
  uint64_t CopiedWords = 0;
  uint64_t AllocatedObjects = 0;
  HeapStats Stats;
};

} // namespace smltc

#endif // SMLTC_VM_HEAP_H
