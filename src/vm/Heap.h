//===- vm/Heap.h - Tagged heap with a Cheney two-space collector -------------------===//
///
/// \file
/// The runtime heap. Values are 64-bit words: tagged integers are odd
/// ((n << 1) | 1); heap pointers are even (word index << 3). Floats live
/// untagged in float registers and occupy one 64-bit heap word (counted as
/// two 32-bit words in the allocation statistics, matching the paper's
/// 32-bit target).
///
/// Every object carries one descriptor word (kind, len1, len2):
///   Record (len1 = raw floats stored first, len2 = words after) — the
///     paper's Figure 1c "two short integers" descriptor;
///   Bytes  (len1 = byte count) — strings;
///   Cell   (1 mutable word) — refs and exception tags;
///   Array  (len2 = mutable words).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_VM_HEAP_H
#define SMLTC_VM_HEAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace smltc {

using Word = uint64_t;

inline Word tagInt(int64_t N) {
  return (static_cast<uint64_t>(N) << 1) | 1;
}
inline int64_t untagInt(Word W) { return static_cast<int64_t>(W) >> 1; }
inline bool isTaggedInt(Word W) { return (W & 1) != 0; }
inline bool isPointer(Word W) { return W != 0 && (W & 1) == 0; }
inline Word makePointer(size_t WordIndex) {
  return static_cast<Word>(WordIndex) << 3;
}
inline size_t pointerIndex(Word W) { return static_cast<size_t>(W >> 3); }

enum class ObjKind : uint8_t {
  Record = 1,
  Bytes = 2,
  Cell = 3,
  Array = 4,
  Forward = 7, ///< GC forwarding marker
};

inline Word makeDesc(ObjKind K, uint32_t Len1, uint32_t Len2) {
  return (static_cast<Word>(K) << 56) |
         (static_cast<Word>(Len1 & 0xFFFFFFF) << 28) |
         static_cast<Word>(Len2 & 0xFFFFFFF);
}
inline ObjKind descKind(Word D) {
  return static_cast<ObjKind>(D >> 56);
}
inline uint32_t descLen1(Word D) {
  return static_cast<uint32_t>((D >> 28) & 0xFFFFFFF);
}
inline uint32_t descLen2(Word D) {
  return static_cast<uint32_t>(D & 0xFFFFFFF);
}

/// A two-space heap. Allocation is pointer bumping; collection copies the
/// live graph reachable from the registered roots.
class Heap {
public:
  explicit Heap(size_t SemiWords = 1 << 20);

  /// Allocates an object of 1 + Payload words; returns its word index.
  /// Never fails: collects, then grows, as needed. RootsBegin/RootsEnd
  /// and extra root vectors must be registered beforehand.
  size_t allocRaw(size_t PayloadWords);

  Word &at(size_t Index) {
    assert(Index < Mem.size() && "heap access out of bounds");
    return Mem[Index];
  }
  Word at(size_t Index) const {
    assert(Index < Mem.size() && "heap access out of bounds");
    return Mem[Index];
  }

  /// Registers a root range (scanned and updated by GC).
  void addRootRange(Word *Begin, size_t Count) {
    RootRanges.push_back({Begin, Count});
  }
  void clearRootRanges() { RootRanges.clear(); }

  /// Words copied by all collections so far (GC cost metric).
  uint64_t copiedWords() const { return CopiedWords; }
  uint64_t collections() const { return Collections; }
  uint64_t allocatedObjects() const { return AllocatedObjects; }

  /// Total payload size (in 64-bit words, incl. descriptor) of an object.
  static size_t objectWords(Word Desc);

private:
  void collect();
  Word forward(Word P, std::vector<Word> &To, size_t &Scan);

  struct RootRange {
    Word *Begin;
    size_t Count;
  };

  std::vector<Word> FromSpace;
  std::vector<Word> Mem; ///< active semispace
  size_t HP = 1;         ///< word 0 reserved (null)
  size_t SemiWords;
  std::vector<RootRange> RootRanges;
  uint64_t CopiedWords = 0;
  uint64_t Collections = 0;
  uint64_t AllocatedObjects = 0;
};

} // namespace smltc

#endif // SMLTC_VM_HEAP_H
