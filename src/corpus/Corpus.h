//===- corpus/Corpus.h - The twelve-benchmark corpus --------------------------------===//
///
/// \file
/// MiniML stand-ins for the paper's twelve SML benchmarks (Section 6).
/// Each program defines `main : unit -> int` and returns a checksum the
/// harness verifies, so every variant must compute the same answer.
/// Profiles match the paper's description: MBrot, Nucleic, Simple, Ray and
/// BHut are float-intensive; Sieve uses first-class continuations; KB-Comp
/// uses exceptions and higher-order functions; VLIW and KB-Comp are
/// closure-heavy; Boyer is datatype-heavy; Life tests set membership with
/// polymorphic equality in a tight loop (the MTD 10x anecdote); Lexgen is
/// string-heavy; Yacc is table/list-heavy.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CORPUS_CORPUS_H
#define SMLTC_CORPUS_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace smltc {

struct BenchmarkProgram {
  const char *Name;
  const char *Source;
  int64_t ExpectedResult;
  bool FloatIntensive;
};

/// The twelve benchmarks, in the paper's Figure 7 order.
const std::vector<BenchmarkProgram> &benchmarkCorpus();

/// Finds a benchmark by name (nullptr if absent).
const BenchmarkProgram *findBenchmark(const std::string &Name);

} // namespace smltc

#endif // SMLTC_CORPUS_CORPUS_H
