//===- corpus/Corpus.cpp - The twelve-benchmark corpus -------------------------------===//

#include "corpus/Corpus.h"

using namespace smltc;

namespace {

// --- BHut: 2D Barnes-Hut-flavoured n-body (naive forces), float tuples ---
const char *BHutSrc = R"ML(
fun accel ((x1 : real, y1 : real), (x2, y2, m2)) =
  let val dx = x2 - x1
      val dy = y2 - y1
      val d2 = dx * dx + dy * dy + 0.05
      val d = sqrt d2
      val f = m2 / (d2 * d)
  in (f * dx, f * dy) end

fun totalAccel (p, bodies) =
  foldl (fn (b, (ax, ay)) =>
           let val (dax, day) = accel (p, b) in (ax + dax, ay + day) end)
        (0.0, 0.0) bodies

fun step bodies =
  map (fn (x, y, m) =>
         let val (ax, ay) = totalAccel ((x, y), bodies)
         in (x + 0.01 * ax, y + 0.01 * ay, m) end)
      bodies

fun mkBodies n =
  tabulate (n, fn i =>
    let val r = real i
    in (r * 0.37 - 3.0, r * 0.11 - 1.0, 1.0 + r * 0.01) end)

fun loop (bodies, 0) = bodies
  | loop (bodies, k) = loop (step bodies, k - 1)

fun main () =
  let val final = loop (mkBodies 24, 12)
      val s = foldl (fn ((x, y, _), a : real) =>
                       a + (if x < 0.0 then 0.0 - x else x)
                         + (if y < 0.0 then 0.0 - y else y))
                    0.0 final
  in floor (s * 10.0) end
)ML";

// --- Boyer: term rewriting to normal form, datatype-heavy ---
const char *BoyerSrc = R"ML(
datatype term = V of int | F of int * term list

fun size (V _) = 1
  | size (F (_, args)) = foldl (fn (t, a) => a + size t) 1 args

fun subst (env, V n) =
      let fun look l = case l of
                         nil => V n
                       | (k, t) :: r => if k = n then t else look r
      in look env end
  | subst (env, F (f, args)) = F (f, map (fn t => subst (env, t)) args)

(* rewrite rules: f1(x) -> f2(x, x); f2(x, y) -> f3(y); f3(c) -> c *)
fun rewrite (F (1, [x])) = F (2, [x, x])
  | rewrite (F (2, [x, y])) = F (3, [y])
  | rewrite (F (3, [c])) = c
  | rewrite t = t

fun normalize t =
  let val t2 = case t of
                 V n => V n
               | F (f, args) => F (f, map normalize args)
      val t3 = rewrite t2
  in if size t3 < size t2 then normalize t3 else t3 end

fun build 0 = V 7
  | build n = F (1, [F (2, [build (n - 1), V n])])

fun iter (0, acc) = acc
  | iter (k, acc) =
      let val t = build (8 + k mod 3)
          val n = normalize (subst ([(7, V 9)], t))
      in iter (k - 1, acc + size n) end

fun main () = iter (220, 0)
)ML";

// --- Sieve: closure-chained prime sieve plus callcc early exit ---
const char *SieveSrc = R"ML(
fun fromTo (i, n) = if i > n then nil else i :: fromTo (i + 1, n)

fun sieve nil = nil
  | sieve (p :: rest) =
      p :: sieve (filter (fn x => x mod p <> 0) rest)

fun firstOver (limit, l) =
  callcc (fn k =>
    (app (fn p => if p > limit then throw k p else ()) l; 0))

fun main () =
  let val primes = sieve (fromTo (2, 900))
      val count = length primes
      val probe = firstOver (500, primes)
  in count * 1000 + probe mod 1000 end
)ML";

// --- KB-Comp: unification with exception failure, higher-order ---
const char *KbSrc = R"ML(
datatype trm = Vt of int | Ft of int * trm list

exception Unify

fun look (env, n) =
  let fun go l = case l of
                   nil => Vt n
                 | (k, t) :: r => if k = n then t else go r
  in go env end

fun unify (env, Vt a, t) =
      (case look (env, a) of
         Vt b => if a = b then (a, t) :: env
                 else unify (env, look (env, a), t)
       | bound => unify (env, bound, t))
  | unify (env, t, Vt a) = unify (env, Vt a, t)
  | unify (env, Ft (f, fa), Ft (g, ga)) =
      if f <> g orelse length fa <> length ga then raise Unify
      else foldl (fn ((x, y), e) => unify (e, x, y)) env (zip (fa, ga))
and zip (nil, nil) = nil
  | zip (x :: xs, y :: ys) = (x, y) :: zip (xs, ys)
  | zip _ = raise Unify

fun mk (d, s) =
  if d = 0 then (if s mod 3 = 0 then Vt (s mod 5) else Ft (s mod 4, nil))
  else Ft (s mod 4, [mk (d - 1, s + 1), mk (d - 1, s * 2 + 1)])

fun tryPair (a, b) =
  (let val e = unify (nil, a, b) in 1 + (length e) end)
  handle Unify => 0

fun iter (0, acc) = acc
  | iter (k, acc) =
      iter (k - 1, acc + tryPair (mk (4, k mod 7), mk (4, (k + 3) mod 7)))

fun main () = iter (260, 0)
)ML";

// --- Lexgen: string scanning / tokenizing ---
const char *LexgenSrc = R"ML(
fun isDigit c = c >= 48 andalso c <= 57
fun isAlpha c = (c >= 97 andalso c <= 122) orelse (c >= 65 andalso c <= 90)
fun isSpace c = c = 32 orelse c = 10 orelse c = 9

fun scan (s, i, n, toks, chars) =
  if i >= n then (toks, chars)
  else
    let val c = strsub (s, i)
    in
      if isSpace c then scan (s, i + 1, n, toks, chars)
      else if isDigit c then
        let fun go j = if j < n andalso isDigit (strsub (s, j))
                       then go (j + 1) else j
            val j = go i
        in scan (s, j, n, toks + 1, chars + (j - i)) end
      else if isAlpha c then
        let fun go j = if j < n andalso isAlpha (strsub (s, j))
                       then go (j + 1) else j
            val j = go i
            val w = substring (s, i, j - i)
        in scan (s, j, n, toks + 1, chars + size w) end
      else scan (s, i + 1, n, toks + 1, chars)
    end

fun repeatStr (s, 0) = ""
  | repeatStr (s, k) = s ^ repeatStr (s, k - 1)

fun main () =
  let val input = repeatStr ("let val x1 = 42 in fn2 x1 + 375 end  ", 60)
      val (toks, chars) = scan (input, 0, size input, 0, 0)
  in toks * 1000 + chars mod 1000 end
)ML";

// --- Yacc: LR-flavoured table-driven parsing over int arrays ---
const char *YaccSrc = R"ML(
fun mkTable n =
  let val t = array (n * 8, 0)
      fun fill i =
        if i >= n * 8 then t
        else (aupdate (t, i, (i * 7 + 3) mod 5); fill (i + 1))
  in fill 0 end

fun parse (table, input, state, stack, reds) =
  case input of
    nil => (length stack, reds)
  | tok :: rest =>
      let val action = asub (table, (state * 8 + tok) mod (alength table))
      in
        if action = 0 then parse (table, rest, tok mod 11, state :: stack, reds)
        else if action < 3 then
          (case stack of
             nil => parse (table, rest, action, stack, reds + 1)
           | top :: below =>
               parse (table, rest, (top + action) mod 11, below, reds + 1))
        else parse (table, rest, (state + action) mod 11, stack, reds)
      end

fun mkInput (0, acc) = acc
  | mkInput (k, acc) = mkInput (k - 1, (k * 13 + 5) mod 8 :: acc)

fun iter (0, table, acc) = acc
  | iter (k, table, acc) =
      let val (depth, reds) = parse (table, mkInput (160, nil), 0, nil, 0)
      in iter (k - 1, table, acc + depth + reds) end

fun main () = iter (40, mkTable 11, 0)
)ML";

// --- Simple: hydrodynamics-flavoured float-array relaxation ---
const char *SimpleSrc = R"ML(
fun mkGrid n =
  let val a = array (n, 0.0)
      fun fill i =
        if i >= n then a
        else (aupdate (a, i, real i * 0.5); fill (i + 1))
  in fill 0 end

fun relaxStep (a, n) =
  let fun go (i, acc : real) =
        if i >= n - 1 then acc
        else
          let val v = (asub (a, i - 1) + 2.0 * asub (a, i)
                       + asub (a, i + 1)) * 0.25
          in (aupdate (a, i, v); go (i + 1, acc + v)) end
  in go (1, 0.0) end

fun pressure (u : real, v : real, rho) =
  let val q = rho * (u * u + v * v) * 0.5
  in (q, q * 1.4, q * 0.4) end

fun sumP (i, n, acc : real) =
  if i >= n then acc
  else
    let val (p1, p2, p3) = pressure (real i * 0.01, real (n - i) * 0.02,
                                     1.0 + real (i mod 7) * 0.1)
    in sumP (i + 1, n, acc + p1 + p2 - p3) end

fun iter (0, a, n, acc : real) = acc
  | iter (k, a, n, acc) =
      iter (k - 1, a, n, acc + relaxStep (a, n) + sumP (0, 48, 0.0))

fun main () = floor (iter (30, mkGrid 120, 120, 0.0))
)ML";

// --- Ray: sphere intersection and shading over float-tuple vectors ---
const char *RaySrc = R"ML(
fun dot ((ax : real, ay : real, az : real), (bx, by, bz)) =
  ax * bx + ay * by + az * bz
fun vsub ((ax : real, ay : real, az : real), (bx, by, bz)) =
  (ax - bx, ay - by, az - bz)
fun vscale (s : real, (x, y, z)) = (s * x, s * y, s * z)
fun vnorm v = let val d = sqrt (dot (v, v)) in vscale (1.0 / d, v) end

fun hit (orig, dir, center, radius : real) =
  let val oc = vsub (orig, center)
      val b = 2.0 * dot (oc, dir)
      val c = dot (oc, oc) - radius * radius
      val disc = b * b - 4.0 * c
  in if disc < 0.0 then 1000000.0
     else let val t = (0.0 - b - sqrt disc) * 0.5
          in if t > 0.001 then t else 1000000.0 end
  end

(* The best-hit accumulator rides in the argument tuple: flat float
   components under representation analysis. *)
fun closest (orig, dir, spheres) =
  let fun go (sl, bt : real, bx : real, by : real, bz : real) =
        case sl of
          nil => (bt, bx, by, bz)
        | (c, r) :: rest =>
            let val t = hit (orig, dir, c, r)
            in if t < bt
               then let val (cx, cy, cz) = c
                    in go (rest, t, cx, cy, cz) end
               else go (rest, bt, bx, by, bz)
            end
  in go (spheres, 1000000.0, 0.0, 0.0, 0.0) end

fun shade (orig, dir, spheres) =
  let val (t, cx, cy, cz) = closest (orig, dir, spheres)
  in if t > 999999.0 then 0.1
     else
       let val p = vscale (t, dir)
           val n = vnorm (vsub (p, (cx, cy, cz)))
           val l = vnorm (0.6, 0.8, 0.5)
           val d = dot (n, l)
           val base = if d > 0.0 then 0.1 + 0.7 * d else 0.1
           val h = vnorm (vsub (l, dir))
           val sp = dot (n, h)
           val spec = if sp > 0.0 then sp * sp * sp * sp * 0.3 else 0.0
       in base + spec end
  end

fun scene () =
  [((0.0, 0.0, 5.0), 1.0),
   ((1.5, 0.8, 6.0), 0.7),
   ((0.0 - 1.2, 0.0 - 0.4, 4.0), 0.5),
   ((0.4, 0.0 - 1.0, 7.0), 1.2)]

fun render (w, h) =
  let val spheres = scene ()
      fun px (x, y) =
        let val dx = (real x - real w * 0.5) / real w
            val dy = (real y - real h * 0.5) / real h
            val dir = vnorm (dx, dy, 1.0)
        in shade ((0.0, 0.0, 0.0), dir, spheres) end
      fun go (x, y, acc : real) =
        if y >= h then acc
        else if x >= w then go (0, y + 1, acc)
        else go (x + 1, y, acc + px (x, y))
  in go (0, 0, 0.0) end

fun main () = floor (render (24, 24) * 10.0)
)ML";

// --- Life: the MTD anecdote — polymorphic-equality membership in a loop ---
const char *LifeSrc = R"ML(
structure Main : sig val main : unit -> int end = struct
  fun member (c, l) =
    case l of
      nil => false
    | x :: r => x = c orelse member (c, r)

  fun neighbors ((x, y), board) =
    let fun occ d = if member (d, board) then 1 else 0
    in occ (x - 1, y - 1) + occ (x, y - 1) + occ (x + 1, y - 1)
       + occ (x - 1, y) + occ (x + 1, y)
       + occ (x - 1, y + 1) + occ (x, y + 1) + occ (x + 1, y + 1)
    end

  fun survivors (board, all) =
    filter (fn c => let val n = neighbors (c, all)
                    in n = 2 orelse n = 3 end) board

  fun births (board, (xmin, xmax)) =
    let fun cells (x, y, acc) =
          if y > xmax then acc
          else if x > xmax then cells (xmin, y + 1, acc)
          else if member ((x, y), board) then cells (x + 1, y, acc)
          else if neighbors ((x, y), board) = 3
          then cells (x + 1, y, (x, y) :: acc)
          else cells (x + 1, y, acc)
    in cells (xmin, xmin, nil) end

  fun gen (board, bounds) =
    survivors (board, board) @ births (board, bounds)

  fun run (board, bounds, 0) = board
    | run (board, bounds, k) = run (gen (board, bounds), bounds, k - 1)

  fun main () =
    let val glider = [(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)]
        val blinker = [(6, 5), (6, 6), (6, 7)]
        val final = run (glider @ blinker, (0, 10), 10)
    in length final * 100
       + foldl (fn ((x, y), a) => a + x + y) 0 final
    end
end
)ML";

// --- MBrot: mandelbrot iteration, pure float arithmetic ---
const char *MBrotSrc = R"ML(
fun escapes (cx : real, cy : real) =
  let fun go (zx, zy, i) =
        if i >= 50 then 50
        else
          let val zx2 = zx * zx
              val zy2 = zy * zy
          in if zx2 + zy2 > 4.0 then i
             else go (zx2 - zy2 + cx, 2.0 * zx * zy + cy, i + 1)
          end
  in go (0.0, 0.0, 0) end

fun grid (w, h) =
  let fun go (x, y, acc) =
        if y >= h then acc
        else if x >= w then go (0, y + 1, acc)
        else
          let val cx = real x * 3.0 / real w - 2.0
              val cy = real y * 2.4 / real h - 1.2
          in go (x + 1, y, acc + escapes (cx, cy)) end
  in go (0, 0, 0) end

fun main () = grid (36, 36)
)ML";

// --- Nucleic: 3D transforms over float tuples, pruning by distance ---
const char *NucleicSrc = R"ML(
fun tfm (((a : real, b : real, c : real),
          (d : real, e : real, f : real),
          (g : real, h : real, i : real),
          (tx : real, ty : real, tz : real)),
         (x : real, y : real, z : real)) =
  (a * x + b * y + c * z + tx,
   d * x + e * y + f * z + ty,
   g * x + h * y + i * z + tz)

fun rotZ (t : real) =
  ((cos t, 0.0 - sin t, 0.0),
   (sin t, cos t, 0.0),
   (0.0, 0.0, 1.0),
   (0.1, 0.02, 0.3))

fun dist2 ((x1 : real, y1 : real, z1 : real), (x2, y2, z2)) =
  let val dx = x1 - x2
      val dy = y1 - y2
      val dz = z1 - z2
  in dx * dx + dy * dy + dz * dz end

fun mkCloud n =
  tabulate (n, fn i =>
    let val r = real i
    in (sin (r * 0.7) * 3.0, cos (r * 0.9) * 2.0, r * 0.05) end)

fun applyChain (p, 0) = p
  | applyChain (p, k) = applyChain (tfm (rotZ (real k * 0.21), p), k - 1)

fun countNear (cloud, anchor, cut : real) =
  length (filter (fn p => dist2 (p, anchor) < cut) cloud)

fun main () =
  let val cloud = map (fn p => applyChain (p, 12)) (mkCloud 120)
      val a = countNear (cloud, (0.0, 0.0, 0.0), 4.0)
      val b = countNear (cloud, (1.0, 1.0, 1.0), 9.0)
      val s = foldl (fn ((x, _, _), acc : real) => acc + x) 0.0 cloud
  in a * 1000 + b * 10 + (floor s) mod 10 end
)ML";

// --- VLIW: greedy instruction scheduling with higher-order predicates ---
const char *VliwSrc = R"ML(
fun conflicts ((d1, s1, _), (d2, s2, _)) =
  d1 = d2 orelse d1 = s2 orelse d2 = s1

fun canIssue (instr, slot) = not (exists (fn i => conflicts (i, instr)) slot)

fun schedule (nil, slots, cur) = rev (cur :: slots)
  | schedule (i :: rest, slots, cur) =
      if length cur < 4 andalso canIssue (i, cur)
      then schedule (rest, slots, i :: cur)
      else schedule (rest, cur :: slots, [i])

fun mkInstrs (0, acc) = rev acc
  | mkInstrs (n, acc) =
      mkInstrs (n - 1, ((n * 7) mod 13, (n * 11) mod 13, n) :: acc)

fun score slots =
  foldl (fn (slot, a) => a + length slot * length slot) 0 slots

fun iter (0, acc) = acc
  | iter (k, acc) =
      iter (k - 1, acc + score (schedule (mkInstrs (90, nil), nil, nil)))

fun main () = iter (45, 0)
)ML";

} // namespace

const std::vector<BenchmarkProgram> &smltc::benchmarkCorpus() {
  // ExpectedResult is the checksum main() must return under *every*
  // variant; the batch tests verify parallel compiles against these.
  static const std::vector<BenchmarkProgram> Corpus = {
      {"BHut", BHutSrc, 676, true},
      {"Boyer", BoyerSrc, 660, false},
      {"Sieve", SieveSrc, 154503, false},
      {"KB-C", KbSrc, 0, false},
      {"Lexgen", LexgenSrc, 840380, false},
      {"Yacc", YaccSrc, 3600, false},
      {"Simple", SimpleSrc, 106036, true},
      {"Ray", RaySrc, 696, true},
      {"Life", LifeSrc, 984, false},
      {"VLIW", VliwSrc, 11880, false},
      {"MBrot", MBrotSrc, 19232, true},
      {"Nucleic", NucleicSrc, 19, true},
  };
  return Corpus;
}

const BenchmarkProgram *smltc::findBenchmark(const std::string &Name) {
  for (const BenchmarkProgram &B : benchmarkCorpus())
    if (Name == B.Name)
      return &B;
  return nullptr;
}
