//===- closure/Spill.cpp - Register-pressure analysis -------------------------------===//

#include "closure/Spill.h"

#include <unordered_set>

using namespace smltc;

namespace {

/// Computes live-variable counts bottom-up; returns the live set of E.
void liveWalk(const Cexp *E, std::unordered_set<CVar> &Live,
              const std::unordered_set<CVar> &Floats, int &MaxW,
              int &MaxF) {
  auto Count = [&]() {
    int W = 0, F = 0;
    for (CVar V : Live)
      (Floats.count(V) ? F : W)++;
    if (W > MaxW)
      MaxW = W;
    if (F > MaxF)
      MaxF = F;
  };
  auto Use = [&](const CValue &V) {
    if (V.isVar())
      Live.insert(V.V);
  };
  switch (E->K) {
  case Cexp::Kind::Branch: {
    std::unordered_set<CVar> L1 = Live;
    liveWalk(E->C1, L1, Floats, MaxW, MaxF);
    liveWalk(E->C2, Live, Floats, MaxW, MaxF);
    for (CVar V : L1)
      Live.insert(V);
    for (const CValue &V : E->Args)
      Use(V);
    Count();
    return;
  }
  case Cexp::Kind::App:
    Use(E->F);
    for (const CValue &V : E->Args)
      Use(V);
    Count();
    return;
  case Cexp::Kind::Halt:
    Use(E->F);
    Count();
    return;
  case Cexp::Kind::Fix:
    // Closed code has no FIX; tolerate for pre-closure use.
    for (const CFun *F : E->Funs) {
      std::unordered_set<CVar> L;
      liveWalk(F->Body, L, Floats, MaxW, MaxF);
    }
    liveWalk(E->C1, Live, Floats, MaxW, MaxF);
    return;
  default:
    liveWalk(E->C1, Live, Floats, MaxW, MaxF);
    if (E->W)
      Live.erase(E->W);
    for (const CField &F : E->Fields)
      Use(F.V);
    for (const CValue &V : E->Args)
      Use(V);
    if (E->K == Cexp::Kind::Select)
      Use(E->F);
    Count();
    return;
  }
}

void collectFloats(const Cexp *E, std::unordered_set<CVar> &Floats) {
  if (!E)
    return;
  if (E->W && E->WTy.isFloat())
    Floats.insert(E->W);
  collectFloats(E->C1, Floats);
  collectFloats(E->C2, Floats);
  for (const CFun *F : E->Funs)
    collectFloats(F->Body, Floats);
}

} // namespace

SpillReport smltc::analyzeRegisterPressure(const ClosureResult &Closed) {
  SpillReport R;
  for (const CFun *F : Closed.Funs) {
    std::unordered_set<CVar> Floats;
    for (size_t I = 0; I < F->Params.size(); ++I)
      if (F->ParamTys[I].isFloat())
        Floats.insert(F->Params[I]);
    collectFloats(F->Body, Floats);
    std::unordered_set<CVar> Live;
    int MaxW = 0, MaxF = 0;
    liveWalk(F->Body, Live, Floats, MaxW, MaxF);
    if (MaxW > R.MaxLiveWords)
      R.MaxLiveWords = MaxW;
    if (MaxF > R.MaxLiveFloats)
      R.MaxLiveFloats = MaxF;
    if (MaxW > 32)
      ++R.FunsOverWordLimit;
  }
  return R;
}
