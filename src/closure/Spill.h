//===- closure/Spill.h - Register-pressure analysis --------------------------------===//
///
/// \file
/// The spill phase of the paper's pipeline guarantees that no more values
/// are simultaneously live than the machine has registers. In this
/// reproduction, register pressure beyond the 32 fast registers is charged
/// by the VM as spill cost instead of being rewritten into spill records;
/// this analysis measures the pressure so tests (and EXPERIMENTS.md) can
/// verify the workloads stay in healthy territory.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CLOSURE_SPILL_H
#define SMLTC_CLOSURE_SPILL_H

#include "closure/Closure.h"

namespace smltc {

struct SpillReport {
  int MaxLiveWords = 0;
  int MaxLiveFloats = 0;
  int FunsOverWordLimit = 0; ///< functions whose pressure exceeds 32
};

SpillReport analyzeRegisterPressure(const ClosureResult &Closed);

} // namespace smltc

#endif // SMLTC_CLOSURE_SPILL_H
