//===- closure/Closure.h - Closure conversion ------------------------------------===//
///
/// \file
/// Closure conversion (paper Section 5.2, after Shao & Appel's
/// space-efficient closure representations [23] and callee-save registers
/// [6]). Converts nested CPS into closed, top-level functions:
///
///   - Known functions (all call sites known): free variables are passed
///     as extra arguments — "in registers".
///   - Escaping functions: a flat closure record [code, fv1, ..., fvn];
///     calls to unknown functions fetch the code pointer from slot 0.
///   - Continuations use the callee-save convention: a continuation is a
///     bundle (code, cs1, cs2, cs3 [, fcs1..fcsK]) of values passed in
///     registers. Up to GpCalleeSaves word free variables ride the cs
///     slots; overflow goes to one spill record. Float free variables ride
///     float callee-save registers when FloatCalleeSaves > 0 (sml.fp3);
///     otherwise each is boxed into the word slots (the float-boxing
///     traffic fp3 eliminates, at the cost of copying floats into every
///     continuation).
///   - First-class continuation values (callcc, exception handlers) are
///     packaged as ordinary escaping closures via a generated stub, so
///     `throw` is ordinary application.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CLOSURE_CLOSURE_H
#define SMLTC_CLOSURE_CLOSURE_H

#include "cps/Cps.h"
#include "driver/Options.h"

#include <vector>

namespace smltc {

/// The closed program: Funs[i] is the code for label i; Funs[0] is the
/// program entry (no parameters).
struct ClosureResult {
  std::vector<CFun *> Funs;
  CVar MaxVar = 0;
  size_t ClosuresBuilt = 0;
  size_t ContSpills = 0;
  size_t ContFloatBoxes = 0;
};

ClosureResult closureConvert(Arena &A, const CompilerOptions &Opts,
                             Cexp *Program, CVar MaxVar);

} // namespace smltc

#endif // SMLTC_CLOSURE_CLOSURE_H
