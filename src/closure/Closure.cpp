//===- closure/Closure.cpp - Closure conversion -----------------------------------===//

#include "closure/Closure.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace smltc;

namespace {

/// A captured value component. A continuation variable is a *bundle* of
/// 1 + NCS word values and FCS float values (the callee-save convention),
/// so capturing one captures all of its components.
struct CompRef {
  CVar V;
  int Idx;      ///< -1: plain variable; otherwise bundle component index
  bool IsFloat; ///< lives in a float register
};

class ClosureConverter {
public:
  ClosureConverter(Arena &A, const CompilerOptions &Opts, CVar MaxVar)
      : A(A), Opts(Opts), B(A, MaxVar), NCS(Opts.GpCalleeSaves),
        FCS(Opts.FloatCalleeSaves) {}

  ClosureResult run(Cexp *Program) {
    collect(Program);
    computeFreeVars();
    for (auto &[Name, F] : Fns)
      FvComps[Name] = expandComponents(fvList(Name));
    for (auto &[Name, F] : Fns)
      if (F->K == CFun::Kind::Cont)
        planCont(Name);

    Result.Funs.resize(Fns.size() + 1, nullptr);
    Env.clear();
    Cexp *EntryBody = rewriteExp(Program);
    Result.Funs[0] =
        B.fun(CFun::Kind::Escape, /*Name=*/0, {}, {}, EntryBody);
    for (auto &[Name, F] : Fns)
      Result.Funs[LabelOf.at(Name)] = rewriteFun(F);
    Result.MaxVar = B.maxVar();
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Collection
  //===--------------------------------------------------------------------===//

  void collect(const Cexp *E) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Fix:
        for (CFun *F : E->Funs) {
          Fns[F->Name] = F;
          LabelOf[F->Name] = NextLabel++;
          for (size_t I = 0; I < F->Params.size(); ++I) {
            VarTy[F->Params[I]] = F->ParamTys[I];
            // Only continuation *parameters* are callee-save bundles;
            // continuation-typed locals (handler values, code pointers)
            // are single packaged words.
            if (F->ParamTys[I].K == CtyKind::Cnt)
              BundleVars.insert(F->Params[I]);
          }
        }
        for (const CFun *F : E->Funs)
          collect(F->Body);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        collect(E->C1);
        E = E->C2;
        continue;
      case Cexp::Kind::App:
      case Cexp::Kind::Halt:
        return;
      default:
        if (E->W)
          VarTy[E->W] = E->WTy;
        E = E->C1;
        continue;
      }
    }
  }

  bool isFloatVar(CVar V) const {
    auto It = VarTy.find(V);
    return It != VarTy.end() && It->second.isFloat();
  }
  bool isCntVar(CVar V) const { return BundleVars.count(V) != 0; }

  //===--------------------------------------------------------------------===//
  // Free variables (fn names expanded transitively)
  //===--------------------------------------------------------------------===//

  void fvValue(const CValue &V, std::set<CVar> &Out,
               const std::set<CVar> &Bound) {
    if (V.isVar() && !Bound.count(V.V))
      Out.insert(V.V);
  }

  void fvWalk(const Cexp *E, std::set<CVar> &Out, std::set<CVar> &Bound) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          fvValue(F.V, Out, Bound);
        Bound.insert(E->W);
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        fvValue(E->F, Out, Bound);
        Bound.insert(E->W);
        E = E->C1;
        continue;
      case Cexp::Kind::App:
        fvValue(E->F, Out, Bound);
        for (const CValue &V : E->Args)
          fvValue(V, Out, Bound);
        return;
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs) {
          Bound.insert(F->Name);
          for (CVar P : F->Params)
            Bound.insert(P);
        }
        for (const CFun *F : E->Funs)
          fvWalk(F->Body, Out, Bound);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args)
          fvValue(V, Out, Bound);
        fvWalk(E->C1, Out, Bound);
        E = E->C2;
        continue;
      case Cexp::Kind::Halt:
        fvValue(E->F, Out, Bound);
        return;
      default:
        for (const CValue &V : E->Args)
          fvValue(V, Out, Bound);
        if (E->W)
          Bound.insert(E->W);
        E = E->C1;
        continue;
      }
    }
  }

  void computeFreeVars() {
    for (auto &[Name, F] : Fns) {
      std::set<CVar> Bound;
      Bound.insert(F->Name);
      for (CVar P : F->Params)
        Bound.insert(P);
      std::set<CVar> Out;
      fvWalk(F->Body, Out, Bound);
      Fvs[Name] = std::move(Out);
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto &[Name, Set] : Fvs) {
        std::vector<CVar> Add, Del;
        for (CVar V : Set) {
          auto It = Fvs.find(V);
          if (It == Fvs.end())
            continue;
          Del.push_back(V);
          for (CVar W : It->second)
            if (W != Name && !Set.count(W))
              Add.push_back(W);
        }
        for (CVar V : Del)
          Set.erase(V);
        for (CVar V : Add)
          Set.insert(V);
        if (!Del.empty() || !Add.empty())
          Changed = true;
      }
    }
  }

  std::vector<CVar> fvList(CVar Name) const {
    const std::set<CVar> &S = Fvs.at(Name);
    return std::vector<CVar>(S.begin(), S.end());
  }

  /// Expands a free-variable list into value components (continuation
  /// variables contribute their whole callee-save bundle).
  std::vector<CompRef> expandComponents(const std::vector<CVar> &Vars) {
    std::vector<CompRef> Out;
    for (CVar V : Vars) {
      if (isCntVar(V)) {
        for (int I = 0; I <= NCS; ++I)
          Out.push_back({V, I, false});
        for (int I = 0; I < FCS; ++I)
          Out.push_back({V, NCS + 1 + I, true});
      } else {
        Out.push_back({V, -1, isFloatVar(V)});
      }
    }
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Continuation plans
  //===--------------------------------------------------------------------===//

  /// Placement of one continuation's captured components. Floats beyond
  /// the float callee-save registers are stored *flat* in the spill record
  /// (it is a heap record, so raw floats are fine there); word overflow
  /// shares the same record. The spill pointer rides the last word slot.
  struct ContPlan {
    std::vector<CompRef> FloatRegs;    ///< in float callee-save registers
    std::vector<CompRef> FloatSpilled; ///< flat in the spill record
    std::vector<CompRef> Words;        ///< in word callee-save slots
    std::vector<CompRef> Spilled;      ///< words in the spill record
    bool HasSpill = false;
  };

  void planCont(CVar Name) {
    ContPlan P;
    std::vector<CompRef> Words;
    for (const CompRef &C : FvComps.at(Name)) {
      if (C.IsFloat) {
        if (static_cast<int>(P.FloatRegs.size()) < FCS)
          P.FloatRegs.push_back(C);
        else
          P.FloatSpilled.push_back(C);
      } else {
        Words.push_back(C);
      }
    }
    P.HasSpill = !P.FloatSpilled.empty() ||
                 static_cast<int>(Words.size()) > NCS;
    if (!P.HasSpill) {
      P.Words = Words;
    } else {
      size_t InRegs = std::min<size_t>(Words.size(), NCS - 1);
      for (size_t I = 0; I < InRegs; ++I)
        P.Words.push_back(Words[I]);
      for (size_t I = InRegs; I < Words.size(); ++I)
        P.Spilled.push_back(Words[I]);
    }
    Plans[Name] = std::move(P);
  }

  //===--------------------------------------------------------------------===//
  // Access and materialization
  //===--------------------------------------------------------------------===//

  struct Access {
    enum class Kind : uint8_t { Value, KBundle } K = Kind::Value;
    CValue V;
    std::vector<CValue> Bundle; ///< [kcode, cs1..csNCS, fcs1..fcsFCS]
  };

  std::vector<Cexp *> Pending;

  Cexp *wrapPending(size_t Mark, Cexp *Inner) {
    while (Pending.size() > Mark) {
      Cexp *P = Pending.back();
      Pending.pop_back();
      P->C1 = Inner;
      Inner = P;
    }
    return Inner;
  }

  bool isFn(CVar V) const { return Fns.count(V) != 0; }
  bool isContFn(CVar V) const {
    auto It = Fns.find(V);
    return It != Fns.end() && It->second->K == CFun::Kind::Cont;
  }

  CValue access(const CValue &V) {
    if (!V.isVar())
      return V;
    auto It = Env.find(V.V);
    if (It != Env.end()) {
      assert(It->second.K == Access::Kind::Value &&
             "continuation bundle used as a single value");
      return It->second.V;
    }
    return V; // local
  }

  /// One component of a captured value.
  CValue accessComp(const CompRef &C) {
    if (C.Idx < 0)
      return access(CValue::var(C.V));
    auto It = Env.find(C.V);
    if (It != Env.end()) {
      assert(It->second.K == Access::Kind::KBundle);
      return It->second.Bundle[static_cast<size_t>(C.Idx)];
    }
    // A continuation *function* captured by name: its bundle.
    assert(isContFn(C.V) && "bundle component of a non-continuation");
    return bundleOfCont(C.V)[static_cast<size_t>(C.Idx)];
  }

  CValue accessValuePos(const CValue &V) {
    if (!V.isVar())
      return V;
    auto It = Env.find(V.V);
    if (It != Env.end() && It->second.K == Access::Kind::KBundle)
      return packageBundle(It->second.Bundle);
    if (isContFn(V.V))
      return packageBundle(bundleOfCont(V.V));
    if (isFn(V.V))
      return buildClosure(V.V);
    return access(V);
  }

  CValue emitFloatBox(CValue F) {
    ++Result.ContFloatBoxes;
    CVar W = B.fresh();
    Cexp *R = B.record(RecordKind::FloatBox, {{F, true}}, W, nullptr);
    Pending.push_back(R);
    return CValue::var(W);
  }

  /// An escaping function's flat closure [code, comps...]; float
  /// components are boxed so the closure stays all-words.
  CValue buildClosure(CVar Name) {
    ++Result.ClosuresBuilt;
    std::vector<CField> Fields;
    Fields.push_back({CValue::label(LabelOf.at(Name)), false});
    for (const CompRef &C : FvComps.at(Name)) {
      CValue AV = accessComp(C);
      if (C.IsFloat)
        AV = emitFloatBox(AV);
      Fields.push_back({AV, false});
    }
    CVar W = B.fresh();
    Cexp *R = B.record(RecordKind::Closure, Fields, W, nullptr);
    Pending.push_back(R);
    return CValue::var(W);
  }

  /// The callee-save bundle of a continuation function:
  /// [code, cs1..csNCS, fcs1..fcsFCS].
  std::vector<CValue> bundleOfCont(CVar Name) {
    const ContPlan &P = Plans.at(Name);
    std::vector<CValue> Out;
    Out.push_back(CValue::label(LabelOf.at(Name)));

    std::vector<CValue> WordVals;
    for (const CompRef &C : P.Words)
      WordVals.push_back(accessComp(C));
    if (P.HasSpill) {
      ++Result.ContSpills;
      Result.ContFloatBoxes += P.FloatSpilled.size();
      // Spill record: flat floats first, then overflow words.
      std::vector<CField> Fields;
      for (const CompRef &C : P.FloatSpilled)
        Fields.push_back({accessComp(C), true});
      for (const CompRef &C : P.Spilled)
        Fields.push_back({accessComp(C), false});
      CVar SW = B.fresh();
      Cexp *R = B.record(RecordKind::Spill, Fields, SW, nullptr);
      Pending.push_back(R);
      WordVals.push_back(CValue::var(SW));
    }
    while (static_cast<int>(WordVals.size()) < NCS)
      WordVals.push_back(CValue::pad());
    for (CValue &V : WordVals)
      Out.push_back(V);

    std::vector<CValue> FloatVals;
    for (const CompRef &C : P.FloatRegs)
      FloatVals.push_back(accessComp(C));
    while (static_cast<int>(FloatVals.size()) < FCS)
      FloatVals.push_back(CValue::padF());
    for (CValue &V : FloatVals)
      Out.push_back(V);
    return Out;
  }

  /// Packages a continuation bundle as an escaping closure with a stub, so
  /// first-class continuations are invoked like ordinary functions.
  CValue packageBundle(const std::vector<CValue> &Bundle) {
    int StubLabel = static_cast<int>(Result.Funs.size());
    // Reserve the slot now (nested packaging may create more stubs).
    Result.Funs.push_back(nullptr);

    std::vector<CField> Fields;
    Fields.push_back({CValue::label(StubLabel), false});
    size_t NumWords = 1 + static_cast<size_t>(NCS);
    for (size_t I = 0; I < NumWords; ++I)
      Fields.push_back({Bundle[I], false});
    for (size_t I = NumWords; I < Bundle.size(); ++I)
      Fields.push_back({emitFloatBox(Bundle[I]), false});

    // Stub: (clo, x, kcode, cs..., fcs...) -> jump into the packaged cont.
    std::vector<CVar> Params;
    std::vector<Cty> Tys;
    CVar Clo = B.fresh();
    Params.push_back(Clo);
    Tys.push_back(Cty::ptrUnknown());
    CVar X = B.fresh();
    Params.push_back(X);
    Tys.push_back(Cty::ptrUnknown());
    Params.push_back(B.fresh());
    Tys.push_back(Cty::cntTy());
    for (int I = 0; I < NCS; ++I) {
      Params.push_back(B.fresh());
      Tys.push_back(Cty::ptrUnknown());
    }
    for (int I = 0; I < FCS; ++I) {
      Params.push_back(B.fresh());
      Tys.push_back(Cty::fltTy());
    }
    CVar KCode = B.fresh();
    std::vector<CVar> Cs(NCS);
    for (int I = 0; I < NCS; ++I)
      Cs[I] = B.fresh();
    int NumFloats = static_cast<int>(Bundle.size() - NumWords);
    std::vector<CVar> FBoxes(NumFloats), FVals(NumFloats);
    for (int I = 0; I < NumFloats; ++I) {
      FBoxes[I] = B.fresh();
      FVals[I] = B.fresh();
    }
    std::vector<CValue> JumpArgs;
    JumpArgs.push_back(CValue::var(X));
    for (int I = 0; I < NCS; ++I)
      JumpArgs.push_back(CValue::var(Cs[I]));
    for (int I = 0; I < NumFloats; ++I)
      JumpArgs.push_back(CValue::var(FVals[I]));
    for (int I = NumFloats; I < FCS; ++I)
      JumpArgs.push_back(CValue::padF());
    Cexp *Jump = B.app(CValue::var(KCode), JumpArgs);
    for (int I = NumFloats; I-- > 0;)
      Jump = B.select(0, true, CValue::var(FBoxes[I]), FVals[I],
                      Cty::fltTy(), Jump);
    for (int I = NumFloats; I-- > 0;)
      Jump = B.select(static_cast<int>(NumWords) + 1 + I, false,
                      CValue::var(Clo), FBoxes[I], Cty::ptrUnknown(),
                      Jump);
    for (int I = NCS; I-- > 0;)
      Jump = B.select(2 + I, false, CValue::var(Clo), Cs[I],
                      Cty::ptrUnknown(), Jump);
    Jump = B.select(1, false, CValue::var(Clo), KCode, Cty::cntTy(), Jump);
    Result.Funs[StubLabel] =
        B.fun(CFun::Kind::Escape, /*Name=*/0, Params, Tys, Jump);

    CVar W = B.fresh();
    Cexp *R = B.record(RecordKind::Closure, Fields, W, nullptr);
    Pending.push_back(R);
    ++Result.ClosuresBuilt;
    return CValue::var(W);
  }

  //===--------------------------------------------------------------------===//
  // Function rewriting
  //===--------------------------------------------------------------------===//

  void expandContParam(CVar Orig, std::vector<CVar> &Params,
                       std::vector<Cty> &Tys) {
    Access Acc;
    Acc.K = Access::Kind::KBundle;
    CVar KCode = B.fresh();
    Params.push_back(KCode);
    Tys.push_back(Cty::cntTy());
    Acc.Bundle.push_back(CValue::var(KCode));
    for (int I = 0; I < NCS; ++I) {
      CVar CS = B.fresh();
      Params.push_back(CS);
      Tys.push_back(Cty::ptrUnknown());
      Acc.Bundle.push_back(CValue::var(CS));
    }
    for (int I = 0; I < FCS; ++I) {
      CVar FS = B.fresh();
      Params.push_back(FS);
      Tys.push_back(Cty::fltTy());
      Acc.Bundle.push_back(CValue::var(FS));
    }
    Env[Orig] = Acc;
  }

  /// Binds captured components back into Env entries (assembling KBundles
  /// for captured continuations).
  class CompBinder {
  public:
    explicit CompBinder(ClosureConverter &CC) : CC(CC) {}

    void add(const CompRef &C, CValue V) {
      if (C.Idx < 0) {
        ClosureConverter::Access A;
        A.K = Access::Kind::Value;
        A.V = V;
        CC.Env[C.V] = A;
        return;
      }
      auto &Acc = CC.Env[C.V];
      if (Acc.K != Access::Kind::KBundle || Acc.Bundle.empty()) {
        Acc.K = Access::Kind::KBundle;
        Acc.Bundle.assign(
            static_cast<size_t>(1 + CC.NCS + CC.FCS), CValue::intC(0));
      }
      Acc.Bundle[static_cast<size_t>(C.Idx)] = V;
    }

  private:
    ClosureConverter &CC;
  };

  CFun *rewriteFun(CFun *F) {
    Env.clear();
    std::vector<CVar> Params;
    std::vector<Cty> Tys;
    std::vector<Cexp *> Pro;
    CompBinder Binder(*this);

    if (F->K == CFun::Kind::Cont) {
      for (size_t I = 0; I < F->Params.size(); ++I) {
        Params.push_back(F->Params[I]);
        Tys.push_back(F->ParamTys[I]);
      }
      const ContPlan &P = Plans.at(F->Name);
      std::vector<CVar> Cs(NCS), Fs(FCS);
      for (int I = 0; I < NCS; ++I) {
        Cs[I] = B.fresh();
        Params.push_back(Cs[I]);
        Tys.push_back(Cty::ptrUnknown());
      }
      for (int I = 0; I < FCS; ++I) {
        Fs[I] = B.fresh();
        Params.push_back(Fs[I]);
        Tys.push_back(Cty::fltTy());
      }
      for (size_t I = 0; I < P.FloatRegs.size(); ++I)
        Binder.add(P.FloatRegs[I], CValue::var(Fs[I]));

      int SlotIdx = 0;
      for (const CompRef &C : P.Words)
        Binder.add(C, CValue::var(Cs[SlotIdx++]));
      if (P.HasSpill) {
        CVar Spill = Cs[SlotIdx];
        size_t NF = P.FloatSpilled.size();
        for (size_t I = 0; I < NF; ++I) {
          CVar SV = B.fresh();
          Cexp *Sel = B.select(static_cast<int>(I), true,
                               CValue::var(Spill), SV, Cty::fltTy(),
                               nullptr);
          Pro.push_back(Sel);
          Binder.add(P.FloatSpilled[I], CValue::var(SV));
        }
        for (size_t I = 0; I < P.Spilled.size(); ++I) {
          CVar SV = B.fresh();
          Cexp *Sel = B.select(static_cast<int>(NF + I), false,
                               CValue::var(Spill), SV, Cty::ptrUnknown(),
                               nullptr);
          Pro.push_back(Sel);
          Binder.add(P.Spilled[I], CValue::var(SV));
        }
      }
    } else if (F->K == CFun::Kind::Known) {
      for (size_t I = 0; I < F->Params.size(); ++I) {
        if (F->ParamTys[I].K == CtyKind::Cnt) {
          expandContParam(F->Params[I], Params, Tys);
        } else {
          Params.push_back(F->Params[I]);
          Tys.push_back(F->ParamTys[I]);
        }
      }
      for (const CompRef &C : FvComps.at(F->Name)) {
        CVar P = B.fresh();
        Params.push_back(P);
        Tys.push_back(C.IsFloat ? Cty::fltTy() : Cty::ptrUnknown());
        Binder.add(C, CValue::var(P));
      }
    } else {
      CVar Clo = B.fresh();
      Params.push_back(Clo);
      Tys.push_back(Cty::ptrUnknown());
      for (size_t I = 0; I < F->Params.size(); ++I) {
        if (F->ParamTys[I].K == CtyKind::Cnt) {
          expandContParam(F->Params[I], Params, Tys);
        } else {
          Params.push_back(F->Params[I]);
          Tys.push_back(F->ParamTys[I]);
        }
      }
      const std::vector<CompRef> &Comps = FvComps.at(F->Name);
      for (size_t I = 0; I < Comps.size(); ++I) {
        CVar Loaded = B.fresh();
        Cexp *Sel =
            B.select(static_cast<int>(I) + 1, false, CValue::var(Clo),
                     Loaded, Cty::ptrUnknown(), nullptr);
        Pro.push_back(Sel);
        if (Comps[I].IsFloat) {
          CVar Raw = B.fresh();
          Cexp *Unbox = B.select(0, true, CValue::var(Loaded), Raw,
                                 Cty::fltTy(), nullptr);
          Pro.push_back(Unbox);
          Binder.add(Comps[I], CValue::var(Raw));
        } else {
          Binder.add(Comps[I], CValue::var(Loaded));
        }
      }
      // Self-reference: the closure parameter is this function's value.
      Access Self;
      Self.K = Access::Kind::Value;
      Self.V = CValue::var(Clo);
      Env[F->Name] = Self;
    }

    Cexp *Body = rewriteExp(F->Body);
    for (size_t I = Pro.size(); I-- > 0;) {
      Pro[I]->C1 = Body;
      Body = Pro[I];
    }
    return B.fun(F->K, F->Name, Params, Tys, Body);
  }

  //===--------------------------------------------------------------------===//
  // Expression rewriting
  //===--------------------------------------------------------------------===//

  void expandArgs(Span<CValue> Args, std::vector<CValue> &Out,
                  bool &SawBundle) {
    SawBundle = false;
    for (size_t I = 0; I < Args.size(); ++I) {
      const CValue &V = Args[I];
      bool Last = I + 1 == Args.size();
      if (V.isVar()) {
        auto It = Env.find(V.V);
        bool IsBundleParam =
            It != Env.end() && It->second.K == Access::Kind::KBundle;
        if (Last && (IsBundleParam || isContFn(V.V))) {
          std::vector<CValue> Bundle = IsBundleParam
                                           ? It->second.Bundle
                                           : bundleOfCont(V.V);
          for (const CValue &BV : Bundle)
            Out.push_back(BV);
          SawBundle = true;
          continue;
        }
      }
      Out.push_back(accessValuePos(V));
    }
  }

  void appendDummyBundle(std::vector<CValue> &Out) {
    Out.push_back(CValue::pad());
    for (int I = 0; I < NCS; ++I)
      Out.push_back(CValue::pad());
    for (int I = 0; I < FCS; ++I)
      Out.push_back(CValue::padF());
  }

  Cexp *rewriteExp(const Cexp *E) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      size_t M = Pending.size();
      std::vector<CField> Fields;
      for (const CField &F : E->Fields)
        Fields.push_back({accessValuePos(F.V), F.IsFloat});
      Cexp *N = B.record(E->RK, Fields, E->W, rewriteExp(E->C1));
      N->WTy = E->WTy;
      return wrapPending(M, N);
    }
    case Cexp::Kind::Select: {
      size_t M = Pending.size();
      CValue Base = access(E->F);
      Cexp *N = B.select(E->Idx, E->IsFloat, Base, E->W, E->WTy,
                         rewriteExp(E->C1));
      return wrapPending(M, N);
    }
    case Cexp::Kind::App: {
      size_t M = Pending.size();
      Cexp *Call = rewriteApp(E);
      return wrapPending(M, Call);
    }
    case Cexp::Kind::Fix:
      // Function bodies are rewritten separately; closures materialize at
      // use sites.
      return rewriteExp(E->C1);
    case Cexp::Kind::Branch: {
      size_t M = Pending.size();
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(accessValuePos(V));
      Cexp *N =
          B.branch(E->BOp, Args, rewriteExp(E->C1), rewriteExp(E->C2));
      return wrapPending(M, N);
    }
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall:
    case Cexp::Kind::Setter: {
      size_t M = Pending.size();
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(accessValuePos(V));
      Cexp *N;
      switch (E->K) {
      case Cexp::Kind::Arith:
        N = B.arith(E->Op, Args, E->W, E->WTy, nullptr);
        break;
      case Cexp::Kind::Pure:
        N = B.pure(E->Op, Args, E->W, E->WTy, nullptr);
        break;
      case Cexp::Kind::Looker:
        N = B.looker(E->Op, Args, E->W, E->WTy, nullptr);
        break;
      case Cexp::Kind::CCall:
        N = B.ccall(E->Op, Args, E->W, E->WTy, nullptr);
        break;
      default:
        N = B.setter(E->Op, Args, nullptr);
        break;
      }
      N->C1 = rewriteExp(E->C1);
      return wrapPending(M, N);
    }
    case Cexp::Kind::Halt: {
      size_t M = Pending.size();
      Cexp *N = B.halt(accessValuePos(E->F));
      N->Idx = E->Idx;
      return wrapPending(M, N);
    }
    }
    assert(false && "unknown CPS node in closure conversion");
    return nullptr;
  }

  Cexp *rewriteApp(const Cexp *E) {
    // Direct call to a continuation (join point / return to known cont).
    if (E->F.isVar() && isContFn(E->F.V)) {
      CVar Name = E->F.V;
      std::vector<CValue> Bundle = bundleOfCont(Name);
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(accessValuePos(V));
      for (size_t I = 1; I < Bundle.size(); ++I)
        Args.push_back(Bundle[I]);
      return B.app(Bundle[0], Args);
    }
    // Return through a continuation parameter bundle.
    if (E->F.isVar()) {
      auto It = Env.find(E->F.V);
      if (It != Env.end() && It->second.K == Access::Kind::KBundle) {
        const std::vector<CValue> &Bundle = It->second.Bundle;
        std::vector<CValue> Args;
        for (const CValue &V : E->Args)
          Args.push_back(accessValuePos(V));
        for (size_t I = 1; I < Bundle.size(); ++I)
          Args.push_back(Bundle[I]);
        return B.app(Bundle[0], Args);
      }
    }
    // Known function: direct call, free-variable components as extra args.
    if (E->F.isVar() && isFn(E->F.V) &&
        Fns.at(E->F.V)->K == CFun::Kind::Known) {
      CVar Name = E->F.V;
      std::vector<CValue> Args;
      bool SawBundle;
      expandArgs(E->Args, Args, SawBundle);
      if (!SawBundle)
        appendDummyBundle(Args);
      for (const CompRef &C : FvComps.at(Name))
        Args.push_back(accessComp(C));
      return B.app(CValue::label(LabelOf.at(Name)), Args);
    }
    // Escaping function called directly: build its closure here.
    if (E->F.isVar() && isFn(E->F.V)) {
      CVar Name = E->F.V;
      CValue Clo = buildClosure(Name);
      std::vector<CValue> Args;
      Args.push_back(Clo);
      bool SawBundle;
      expandArgs(E->Args, Args, SawBundle);
      if (!SawBundle)
        appendDummyBundle(Args);
      return B.app(CValue::label(LabelOf.at(Name)), Args);
    }
    // Unknown call: fetch the code pointer from the closure.
    CValue FV = access(E->F);
    CVar Code = B.fresh();
    std::vector<CValue> Args;
    Args.push_back(FV);
    bool SawBundle;
    expandArgs(E->Args, Args, SawBundle);
    if (!SawBundle)
      appendDummyBundle(Args);
    Cexp *Call = B.app(CValue::var(Code), Args);
    return B.select(0, false, FV, Code, Cty::cntTy(), Call);
  }

  friend class CompBinder;

  Arena &A;
  const CompilerOptions &Opts;
  CpsBuilder B;
  int NCS;
  int FCS;
  int NextLabel = 1;

  std::map<CVar, CFun *> Fns;
  std::unordered_map<CVar, int> LabelOf;
  std::unordered_map<CVar, Cty> VarTy;
  std::unordered_set<CVar> BundleVars;
  std::unordered_map<CVar, std::set<CVar>> Fvs;
  std::unordered_map<CVar, std::vector<CompRef>> FvComps;
  std::unordered_map<CVar, ContPlan> Plans;
  std::unordered_map<CVar, Access> Env;
  ClosureResult Result;
};

} // namespace

ClosureResult smltc::closureConvert(Arena &A, const CompilerOptions &Opts,
                                    Cexp *Program, CVar MaxVar) {
  ClosureConverter C(A, Opts, MaxVar);
  return C.run(Program);
}
