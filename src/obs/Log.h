//===- obs/Log.h - Leveled, structured, rate-limited logging ------------------===//
///
/// \file
/// One JSON line per event, to stderr or `--log-file`: a `ts` wall
/// clock, `level`, `comp`onent, `event`, then whatever fields the call
/// site attached — plus the thread's distributed-trace id when one is
/// installed, so a log line from any farm node greps straight to its
/// span in the merged trace. `--log-level` gates emission; the disabled
/// fast path is a relaxed load and an integer compare, cheap enough to
/// leave call sites in hot code (bench/obs_overhead covers it alongside
/// the tracer under the same <= 2% gate).
///
/// Rate limiting is per (component, event) key: at most
/// `kMaxPerKeyPerSec` lines per key per second, with one summary line
/// (`event:"log_suppressed"`) when a window closes having dropped any —
/// a crash-looping backend can't turn the log into its own DoS.
///
/// Usage:
///   SMLTC_LOG(LogLevel::Warn, "router", "backend_unhealthy",
///             LogFields().add("backend", Addr).take());
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_OBS_LOG_H
#define SMLTC_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

namespace smltc {
namespace obs {

enum class LogLevel : uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char *logLevelName(LogLevel L);
/// Parses "debug"/"info"/"warn"/"error"/"off"; false on anything else.
bool parseLogLevel(const std::string &S, LogLevel &Out);

/// Pre-rendered JSON field body builder (comma-joined `"k":v` pairs, no
/// braces — the same convention Span::arg uses).
class LogFields {
public:
  LogFields &add(const char *Key, const std::string &Val);
  LogFields &add(const char *Key, const char *Val);
  LogFields &add(const char *Key, uint64_t Val);
  LogFields &add(const char *Key, int64_t Val);
  LogFields &add(const char *Key, int Val) {
    return add(Key, static_cast<int64_t>(Val));
  }
  LogFields &add(const char *Key, double Val);
  std::string take() { return std::move(Body); }

private:
  std::string Body;
};

class Logger {
public:
  static Logger &instance();

  /// The per-call fast path: one relaxed load + compare. Default level
  /// is Warn, so Info/Debug call sites cost nothing until --log-level
  /// opts in.
  static bool levelEnabled(LogLevel L) {
    return static_cast<uint8_t>(L) >=
           Level.load(std::memory_order_relaxed);
  }
  static void setLevel(LogLevel L) {
    Level.store(static_cast<uint8_t>(L), std::memory_order_relaxed);
  }
  static LogLevel level() {
    return static_cast<LogLevel>(Level.load(std::memory_order_relaxed));
  }

  /// Redirects output to `Path` (append mode); empty restores stderr.
  bool openFile(const std::string &Path, std::string &Err);
  /// Closes any open log file and reverts to stderr.
  void closeFile();

  /// Emits one line. `Comp`/`Event` should be static strings (they are
  /// also the rate-limit key); `Fields` is a pre-rendered JSON object
  /// body (LogFields) or empty. The thread's current TraceContext is
  /// stamped automatically.
  void log(LogLevel L, const char *Comp, const char *Event,
           std::string Fields = std::string());

  uint64_t emittedCount() const {
    return Emitted.load(std::memory_order_relaxed);
  }
  uint64_t suppressedCount() const {
    return Suppressed.load(std::memory_order_relaxed);
  }

  static constexpr uint64_t kMaxPerKeyPerSec = 50;

private:
  Logger() = default;

  static std::atomic<uint8_t> Level;

  struct RateBucket {
    uint64_t WindowSec = 0;
    uint64_t CountInWindow = 0;
    uint64_t Dropped = 0;
  };

  std::mutex M;
  std::FILE *Out = nullptr; ///< null = stderr
  std::unordered_map<std::string, RateBucket> Buckets;
  std::atomic<uint64_t> Emitted{0};
  std::atomic<uint64_t> Suppressed{0};
};

/// Level-gated logging; the fields expression is only evaluated when
/// the line will actually be considered for emission.
#define SMLTC_LOG(Lvl, Comp, Event, FieldsExpr)                              \
  do {                                                                       \
    if (::smltc::obs::Logger::levelEnabled(Lvl))                             \
      ::smltc::obs::Logger::instance().log(Lvl, Comp, Event, (FieldsExpr)); \
  } while (0)

} // namespace obs
} // namespace smltc

#endif // SMLTC_OBS_LOG_H
