//===- obs/Metrics.cpp - Counter / gauge / histogram registry -----------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace smltc;
using namespace smltc::obs;

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      Buckets(Bounds.size() + 1) /* +Inf */ {
  std::sort(Bounds.begin(), Bounds.end());
}

void Histogram::observe(double X) {
  size_t I = 0;
  while (I < Bounds.size() && X > Bounds[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add: not every libstdc++
  // this builds against implements the C++20 floating-point overload.
  double Old = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Old, Old + X,
                                    std::memory_order_relaxed))
    ;
}

uint64_t Histogram::count() const {
  return Count.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::vector<uint64_t> Out(Buckets.size());
  for (size_t I = 0; I < Buckets.size(); ++I)
    Out[I] = Buckets[I].load(std::memory_order_relaxed);
  return Out;
}

uint64_t Histogram::cumulative(size_t I) const {
  uint64_t N = 0;
  for (size_t J = 0; J <= I && J < Buckets.size(); ++J)
    N += Buckets[J].load(std::memory_order_relaxed);
  return N;
}

double Histogram::percentile(double Q) const {
  std::vector<uint64_t> Cs = bucketCounts();
  uint64_t Total = 0;
  for (uint64_t C : Cs)
    Total += C;
  if (Total == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  double Rank = Q * static_cast<double>(Total);
  uint64_t Cum = 0;
  for (size_t I = 0; I < Cs.size(); ++I) {
    uint64_t Prev = Cum;
    Cum += Cs[I];
    if (static_cast<double>(Cum) < Rank || Cs[I] == 0)
      continue;
    if (I >= Bounds.size())
      return Bounds.empty() ? 0 : Bounds.back(); // +Inf bucket: clamp
    double Lo = I == 0 ? 0.0 : Bounds[I - 1];
    double Hi = Bounds[I];
    double Frac = (Rank - static_cast<double>(Prev)) /
                  static_cast<double>(Cs[I]);
    return Lo + (Hi - Lo) * Frac;
  }
  return Bounds.empty() ? 0 : Bounds.back();
}

std::vector<double> Histogram::latencyBuckets() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
          0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5,
          5.0,    10.0};
}

namespace {

std::string promNumber(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

std::string promLabel(const MetricEntry &E, const char *Extra = nullptr,
                      const std::string &ExtraVal = std::string()) {
  if (!E.Labels.empty()) {
    std::string S = "{";
    bool First = true;
    for (const auto &KV : E.Labels) {
      if (!First)
        S += ",";
      S += KV.first + "=\"" + KV.second + "\"";
      First = false;
    }
    if (Extra) {
      if (!First)
        S += ",";
      S += std::string(Extra) + "=\"" + ExtraVal + "\"";
    }
    S += "}";
    return S;
  }
  if (E.LabelKey.empty() && !Extra)
    return "";
  std::string S = "{";
  bool First = true;
  if (!E.LabelKey.empty()) {
    S += E.LabelKey + "=\"" + E.LabelVal + "\"";
    First = false;
  }
  if (Extra) {
    if (!First)
      S += ",";
    S += std::string(Extra) + "=\"" + ExtraVal + "\"";
  }
  S += "}";
  return S;
}

const char *kindType(MetricEntry::Kind K) {
  switch (K) {
  case MetricEntry::Kind::Counter:
  case MetricEntry::Kind::CounterFn:
    return "counter";
  case MetricEntry::Kind::Gauge:
  case MetricEntry::Kind::GaugeFn:
    return "gauge";
  case MetricEntry::Kind::Histogram:
    return "histogram";
  }
  return "untyped";
}

} // namespace

Counter &Registry::counter(const std::string &Name, const std::string &Help,
                           const std::string &LabelKey,
                           const std::string &LabelVal) {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &E : Entries)
    if (E->K == MetricEntry::Kind::Counter && E->Name == Name &&
        E->LabelVal == LabelVal)
      return *E->C;
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::Counter;
  E->Name = Name;
  E->Help = Help;
  E->LabelKey = LabelKey;
  E->LabelVal = LabelVal;
  E->C = std::make_shared<Counter>();
  Entries.push_back(E);
  return *E->C;
}

Gauge &Registry::gauge(const std::string &Name, const std::string &Help,
                       const std::string &LabelKey,
                       const std::string &LabelVal) {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &E : Entries)
    if (E->K == MetricEntry::Kind::Gauge && E->Name == Name &&
        E->LabelVal == LabelVal)
      return *E->G;
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::Gauge;
  E->Name = Name;
  E->Help = Help;
  E->LabelKey = LabelKey;
  E->LabelVal = LabelVal;
  E->G = std::make_shared<Gauge>();
  Entries.push_back(E);
  return *E->G;
}

Histogram &Registry::histogram(const std::string &Name,
                               std::vector<double> Bounds,
                               const std::string &Help,
                               const std::string &LabelKey,
                               const std::string &LabelVal) {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &E : Entries)
    if (E->K == MetricEntry::Kind::Histogram && E->Name == Name &&
        E->LabelVal == LabelVal)
      return *E->H;
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::Histogram;
  E->Name = Name;
  E->Help = Help;
  E->LabelKey = LabelKey;
  E->LabelVal = LabelVal;
  E->H = std::make_shared<Histogram>(std::move(Bounds));
  Entries.push_back(E);
  return *E->H;
}

void Registry::registerHistogram(const std::string &Name,
                                 std::shared_ptr<Histogram> H,
                                 const std::string &Help,
                                 const std::string &LabelKey,
                                 const std::string &LabelVal) {
  if (!H)
    return;
  std::lock_guard<std::mutex> Lock(M);
  for (auto &E : Entries)
    if (E->K == MetricEntry::Kind::Histogram && E->Name == Name &&
        E->LabelVal == LabelVal)
      return;
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::Histogram;
  E->Name = Name;
  E->Help = Help;
  E->LabelKey = LabelKey;
  E->LabelVal = LabelVal;
  E->H = std::move(H);
  Entries.push_back(E);
}

void Registry::infoGauge(
    const std::string &Name,
    std::vector<std::pair<std::string, std::string>> Labels,
    const std::string &Help) {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &E : Entries)
    if (E->K == MetricEntry::Kind::Gauge && E->Name == Name)
      return;
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::Gauge;
  E->Name = Name;
  E->Help = Help;
  E->Labels = std::move(Labels);
  E->G = std::make_shared<Gauge>();
  E->G->set(1);
  Entries.push_back(E);
}

void Registry::counterFn(const std::string &Name,
                         std::function<uint64_t()> Fn,
                         const std::string &Help,
                         const std::string &LabelKey,
                         const std::string &LabelVal) {
  std::lock_guard<std::mutex> Lock(M);
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::CounterFn;
  E->Name = Name;
  E->Help = Help;
  E->LabelKey = LabelKey;
  E->LabelVal = LabelVal;
  E->CFn = std::move(Fn);
  Entries.push_back(E);
}

void Registry::gaugeFn(const std::string &Name, std::function<double()> Fn,
                       const std::string &Help,
                       const std::string &LabelKey,
                       const std::string &LabelVal) {
  std::lock_guard<std::mutex> Lock(M);
  auto E = std::make_shared<MetricEntry>();
  E->K = MetricEntry::Kind::GaugeFn;
  E->Name = Name;
  E->Help = Help;
  E->LabelKey = LabelKey;
  E->LabelVal = LabelVal;
  E->GFn = std::move(Fn);
  Entries.push_back(E);
}

const Histogram *Registry::findHistogram(const std::string &Name,
                                         const std::string &LabelVal) const {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &E : Entries)
    if (E->K == MetricEntry::Kind::Histogram && E->Name == Name &&
        (LabelVal.empty() || E->LabelVal == LabelVal))
      return E->H.get();
  return nullptr;
}

std::string Registry::renderPrometheus() const {
  std::vector<std::shared_ptr<MetricEntry>> Es;
  {
    std::lock_guard<std::mutex> Lock(M);
    Es = Entries;
  }
  std::string Out;
  std::string LastFamily;
  for (const auto &EP : Es) {
    const MetricEntry &E = *EP;
    // One HELP/TYPE header per family; labelled histograms that share a
    // name (the per-tier split) emit the header once.
    if (E.Name != LastFamily) {
      if (!E.Help.empty())
        Out += "# HELP " + E.Name + " " + E.Help + "\n";
      Out += "# TYPE " + E.Name + " " + std::string(kindType(E.K)) + "\n";
      LastFamily = E.Name;
    }
    switch (E.K) {
    case MetricEntry::Kind::Counter:
      Out += E.Name + promLabel(E) + " " + std::to_string(E.C->value()) +
             "\n";
      break;
    case MetricEntry::Kind::CounterFn:
      Out += E.Name + promLabel(E) + " " + std::to_string(E.CFn()) + "\n";
      break;
    case MetricEntry::Kind::Gauge:
      Out += E.Name + promLabel(E) + " " + promNumber(E.G->value()) + "\n";
      break;
    case MetricEntry::Kind::GaugeFn:
      Out += E.Name + promLabel(E) + " " + promNumber(E.GFn()) + "\n";
      break;
    case MetricEntry::Kind::Histogram: {
      const Histogram &H = *E.H;
      std::vector<uint64_t> Cs = H.bucketCounts();
      uint64_t Cum = 0;
      for (size_t I = 0; I < H.bounds().size(); ++I) {
        Cum += Cs[I];
        Out += E.Name + "_bucket" +
               promLabel(E, "le", promNumber(H.bounds()[I])) + " " +
               std::to_string(Cum) + "\n";
      }
      Cum += Cs.back();
      Out += E.Name + "_bucket" + promLabel(E, "le", "+Inf") + " " +
             std::to_string(Cum) + "\n";
      Out += E.Name + "_sum" + promLabel(E) + " " + promNumber(H.sum()) +
             "\n";
      Out += E.Name + "_count" + promLabel(E) + " " +
             std::to_string(H.count()) + "\n";
      break;
    }
    }
  }
  return Out;
}

namespace {

// Captured during static initialization, i.e. effectively at exec time —
// every registry in the process reports the same start instant.
const double GProcessStartSec = [] {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count()) /
         1e6;
}();

} // namespace

void obs::registerProcessInfo(Registry &R, const std::string &Version,
                              const std::string &CacheSchema,
                              unsigned ProtocolVersion) {
  R.infoGauge("smltcc_build_info",
              {{"version", Version},
               {"cache_schema", CacheSchema},
               {"protocol", std::to_string(ProtocolVersion)}},
              "Build identity of this node; value is always 1.");
  R.gaugeFn(
      "smltcc_process_start_time_seconds", [] { return GProcessStartSec; },
      "Unix time the process started, in seconds.");
}

std::string Registry::renderJson() const {
  std::vector<std::shared_ptr<MetricEntry>> Es;
  {
    std::lock_guard<std::mutex> Lock(M);
    Es = Entries;
  }
  JsonWriter W;
  W.beginObject();
  for (const auto &EP : Es) {
    const MetricEntry &E = *EP;
    std::string Key =
        E.LabelVal.empty() ? E.Name : E.Name + "." + E.LabelVal;
    switch (E.K) {
    case MetricEntry::Kind::Counter:
      W.field(Key, E.C->value());
      break;
    case MetricEntry::Kind::CounterFn:
      W.field(Key, E.CFn());
      break;
    case MetricEntry::Kind::Gauge:
      W.field(Key, E.G->value());
      break;
    case MetricEntry::Kind::GaugeFn:
      W.field(Key, E.GFn());
      break;
    case MetricEntry::Kind::Histogram:
      W.key(Key)
          .beginObject()
          .field("count", E.H->count())
          .field("sum", E.H->sum())
          .field("p50", E.H->percentile(0.50))
          .field("p90", E.H->percentile(0.90))
          .field("p99", E.H->percentile(0.99))
          .endObject();
      break;
    }
  }
  W.endObject();
  return W.take();
}
