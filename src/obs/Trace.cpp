//===- obs/Trace.cpp - Low-overhead span tracer -------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>
#include <random>
#include <thread>

using namespace smltc;
using namespace smltc::obs;

std::atomic<bool> Tracer::Enabled{false};

namespace {

thread_local TraceContext CurrentCtx;

/// Per-thread splitmix64 stream for span/trace ids: seeded once from
/// random_device + clock + thread id, then pure arithmetic — no lock,
/// no syscall per id.
uint64_t nextRandom64() {
  thread_local uint64_t State = [] {
    std::random_device RD;
    uint64_t S = (static_cast<uint64_t>(RD()) << 32) ^ RD();
    S ^= static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    S ^= std::hash<std::thread::id>()(std::this_thread::get_id()) *
         0x9e3779b97f4a7c15ull;
    return S;
  }();
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

TraceContext smltc::obs::mintTraceContext() {
  TraceContext Ctx;
  do {
    Ctx.TraceIdHi = nextRandom64();
    Ctx.TraceIdLo = nextRandom64();
  } while (!Ctx.valid());
  return Ctx;
}

uint64_t smltc::obs::mintSpanId() {
  uint64_t Id;
  do
    Id = nextRandom64();
  while (Id == 0);
  return Id;
}

std::string smltc::obs::traceIdHex(uint64_t Hi, uint64_t Lo) {
  return hex16(Hi) + hex16(Lo);
}

std::string smltc::obs::spanIdHex(uint64_t Id) { return hex16(Id); }

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

void Tracer::enable() { Enabled.store(true, std::memory_order_relaxed); }

void Tracer::disable() { Enabled.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    B->Events.clear();
    B->Active.clear();
  }
}

TraceContext Tracer::currentContext() { return CurrentCtx; }

void Tracer::setCurrentContext(const TraceContext &Ctx) { CurrentCtx = Ctx; }

uint64_t Tracer::nowUs() const {
  return toUs(std::chrono::steady_clock::now());
}

uint64_t Tracer::toUs(std::chrono::steady_clock::time_point T) const {
  if (T <= Epoch)
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(T - Epoch)
          .count());
}

Tracer::ThreadBuf &Tracer::threadBuf() {
  // The shared_ptr keeps the buffer alive in the registry after the
  // thread exits, so late snapshots still see its events.
  thread_local std::shared_ptr<ThreadBuf> Mine;
  if (!Mine) {
    Mine = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Mine->Tid = NextTid++;
    Buffers.push_back(Mine);
  }
  return *Mine;
}

void Tracer::append(TraceEvent E) {
  ThreadBuf &B = threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  E.Tid = B.Tid;
  B.Events.push_back(std::move(E));
}

void Tracer::beginSpan(const char *Name, const char *Cat, uint64_t StartUs,
                       uint64_t SpanId) {
  ThreadBuf &B = threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  ActiveSpan A;
  A.Name = Name;
  A.Cat = Cat;
  A.StartUs = StartUs;
  A.SpanId = SpanId;
  A.Tid = B.Tid;
  B.Active.push_back(A);
}

void Tracer::endSpan(TraceEvent E) {
  ThreadBuf &B = threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  // Spans end LIFO on their own thread, so the entry is almost always
  // last; if flushActive() already recorded it, skip the duplicate.
  for (size_t I = B.Active.size(); I-- > 0;) {
    if (B.Active[I].SpanId != E.SpanId)
      continue;
    B.Active.erase(B.Active.begin() + static_cast<ptrdiff_t>(I));
    E.Tid = B.Tid;
    B.Events.push_back(std::move(E));
    return;
  }
}

void Tracer::emitComplete(const char *Name, const char *Cat, uint64_t TsUs,
                          uint64_t DurUs, std::string Args,
                          const TraceContext &Ctx, uint64_t SpanId,
                          uint64_t ParentSpanId) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsUs = TsUs;
  E.DurUs = DurUs;
  E.TraceIdHi = Ctx.TraceIdHi;
  E.TraceIdLo = Ctx.TraceIdLo;
  E.SpanId = SpanId;
  E.ParentSpanId = ParentSpanId;
  E.Args = std::move(Args);
  append(std::move(E));
}

void Tracer::setThreadName(const std::string &Name) {
  Tracer &T = instance();
  ThreadBuf &B = T.threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  B.Name = Name;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> Out;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  }
  return Out;
}

size_t Tracer::eventCount() const {
  size_t N = 0;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    N += B->Events.size();
  }
  return N;
}

std::vector<ActiveSpan> Tracer::activeSpans() const {
  std::vector<ActiveSpan> Out;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    Out.insert(Out.end(), B->Active.begin(), B->Active.end());
  }
  return Out;
}

size_t Tracer::flushActive() {
  uint64_t Now = nowUs();
  size_t Flushed = 0;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    for (const ActiveSpan &A : B->Active) {
      TraceEvent E;
      E.Name = A.Name;
      E.Cat = A.Cat;
      E.TsUs = A.StartUs;
      E.DurUs = Now > A.StartUs ? Now - A.StartUs : 0;
      E.Tid = B->Tid;
      E.SpanId = A.SpanId;
      E.Args = "\"flushed\":true";
      B->Events.push_back(std::move(E));
      ++Flushed;
    }
    B->Active.clear();
  }
  return Flushed;
}

std::string Tracer::renderJson() const {
  // Snapshot thread names + events under the locks, render outside.
  std::vector<std::pair<uint32_t, std::string>> Names;
  std::vector<TraceEvent> Events;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    for (const auto &B : Buffers) {
      std::lock_guard<std::mutex> BL(B->M);
      if (!B->Name.empty())
        Names.emplace_back(B->Tid, B->Name);
      Events.insert(Events.end(), B->Events.begin(), B->Events.end());
    }
  }

  JsonWriter W;
  W.beginObject().key("traceEvents").beginArray();
  for (const auto &NM : Names) {
    // Chrome metadata event labelling the thread track.
    W.beginObject()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", static_cast<uint64_t>(NM.first))
        .key("args")
        .beginObject()
        .field("name", NM.second)
        .endObject()
        .endObject();
  }
  for (const TraceEvent &E : Events) {
    W.beginObject()
        .field("name", E.Name)
        .field("cat", E.Cat)
        .field("ph", "X")
        .field("ts", E.TsUs)
        .field("dur", E.DurUs)
        .field("pid", 1)
        .field("tid", static_cast<uint64_t>(E.Tid));
    bool HasIds = (E.TraceIdHi | E.TraceIdLo | E.SpanId) != 0;
    if (!E.Args.empty() || HasIds) {
      std::string Body = E.Args;
      auto AddField = [&Body](const char *K, const std::string &V) {
        if (!Body.empty())
          Body += ',';
        Body += '"';
        Body += K;
        Body += "\":\"";
        Body += V;
        Body += '"';
      };
      if ((E.TraceIdHi | E.TraceIdLo) != 0)
        AddField("trace_id", traceIdHex(E.TraceIdHi, E.TraceIdLo));
      if (E.SpanId != 0)
        AddField("span_id", spanIdHex(E.SpanId));
      if (E.ParentSpanId != 0)
        AddField("parent_span_id", spanIdHex(E.ParentSpanId));
      W.fieldRaw("args", "{" + Body + "}");
    }
    W.endObject();
  }
  W.endArray()
      .field("displayTimeUnit", "ms")
      .field("epochWallUs", EpochWallUs)
      .endObject();
  return W.take();
}

bool Tracer::writeFile(const std::string &Path, std::string &Err) const {
  std::string Json = renderJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t N = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = N == Json.size() && std::fputc('\n', F) != EOF;
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok)
    Err = "short write to '" + Path + "'";
  return Ok;
}

void Span::begin(const char *N, const char *C) {
  Name = N;
  Cat = C;
  Tracer &T = Tracer::instance();
  StartUs = T.nowUs();
  Prev = CurrentCtx;
  Ctx.TraceIdHi = Prev.TraceIdHi;
  Ctx.TraceIdLo = Prev.TraceIdLo;
  Ctx.SpanId = mintSpanId();
  ParentId = Prev.SpanId;
  CurrentCtx = Ctx;
  T.beginSpan(Name, Cat, StartUs, Ctx.SpanId);
  Active = true;
}

void Span::end() {
  Tracer &T = Tracer::instance();
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsUs = StartUs;
  uint64_t Now = T.nowUs();
  E.DurUs = Now > StartUs ? Now - StartUs : 0;
  E.TraceIdHi = Ctx.TraceIdHi;
  E.TraceIdLo = Ctx.TraceIdLo;
  E.SpanId = Ctx.SpanId;
  E.ParentSpanId = ParentId;
  E.Args = std::move(Args);
  T.endSpan(std::move(E));
  CurrentCtx = Prev;
  Active = false;
}

void Span::adopt(const TraceContext &Parent) {
  if (!Active || !Parent.valid())
    return;
  Ctx.TraceIdHi = Parent.TraceIdHi;
  Ctx.TraceIdLo = Parent.TraceIdLo;
  ParentId = Parent.SpanId;
  CurrentCtx = Ctx;
}

void Span::arg(const char *Key, const std::string &Val) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += jsonEscape(Key);
  Args += "\":\"";
  Args += jsonEscape(Val);
  Args += '"';
}

void Span::arg(const char *Key, uint64_t Val) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += jsonEscape(Key);
  Args += "\":";
  Args += std::to_string(Val);
}

void Span::arg(const char *Key, int64_t Val) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += jsonEscape(Key);
  Args += "\":";
  Args += std::to_string(Val);
}

RequestLog &RequestLog::instance() {
  static RequestLog L;
  return L;
}

void RequestLog::record(RequestSample S) {
  std::lock_guard<std::mutex> Lock(M);
  ++Total;
  if (Ring.size() < kCapacity) {
    Ring.push_back(std::move(S));
    return;
  }
  Ring[Next] = std::move(S);
  Next = (Next + 1) % kCapacity;
}

std::vector<RequestSample> RequestLog::slowest(size_t MaxN) const {
  std::vector<RequestSample> Out;
  {
    std::lock_guard<std::mutex> Lock(M);
    Out = Ring;
  }
  std::sort(Out.begin(), Out.end(),
            [](const RequestSample &A, const RequestSample &B) {
              return A.Sec > B.Sec;
            });
  if (MaxN && Out.size() > MaxN)
    Out.resize(MaxN);
  return Out;
}

uint64_t RequestLog::totalRecorded() const {
  std::lock_guard<std::mutex> Lock(M);
  return Total;
}

void RequestLog::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Ring.clear();
  Next = 0;
  Total = 0;
}

std::string obs::renderTracezJson(size_t MaxSlowest) {
  Tracer &T = Tracer::instance();
  uint64_t NowUs = T.nowUs();
  JsonWriter W;
  W.beginObject();
  W.field("tracing_enabled", Tracer::enabled());
  W.key("active_spans").beginArray();
  for (const ActiveSpan &A : T.activeSpans()) {
    uint64_t Age = NowUs > A.StartUs ? NowUs - A.StartUs : 0;
    W.beginObject()
        .field("name", A.Name)
        .field("cat", A.Cat)
        .field("age_us", Age)
        .field("span_id", spanIdHex(A.SpanId))
        .field("tid", static_cast<uint64_t>(A.Tid))
        .endObject();
  }
  W.endArray();
  RequestLog &RL = RequestLog::instance();
  W.field("requests_recorded", RL.totalRecorded());
  W.key("slowest_requests").beginArray();
  for (const RequestSample &S : RL.slowest(MaxSlowest)) {
    W.beginObject()
        .field("request_id", S.RequestId)
        .field("sec", S.Sec)
        .field("kind", S.Kind)
        .field("tenant", S.Tenant)
        .field("ts_us", S.TsUs);
    if (S.TraceIdHi | S.TraceIdLo)
      W.field("trace_id", traceIdHex(S.TraceIdHi, S.TraceIdLo));
    if (!S.PhasesJson.empty())
      W.fieldRaw("phases", "{" + S.PhasesJson + "}");
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}
