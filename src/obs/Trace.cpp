//===- obs/Trace.cpp - Low-overhead span tracer -------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <cstdio>

using namespace smltc;
using namespace smltc::obs;

std::atomic<bool> Tracer::Enabled{false};

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

void Tracer::enable() { Enabled.store(true, std::memory_order_relaxed); }

void Tracer::disable() { Enabled.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    B->Events.clear();
  }
}

uint64_t Tracer::nowUs() const {
  return toUs(std::chrono::steady_clock::now());
}

uint64_t Tracer::toUs(std::chrono::steady_clock::time_point T) const {
  if (T <= Epoch)
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(T - Epoch)
          .count());
}

Tracer::ThreadBuf &Tracer::threadBuf() {
  // The shared_ptr keeps the buffer alive in the registry after the
  // thread exits, so late snapshots still see its events.
  thread_local std::shared_ptr<ThreadBuf> Mine;
  if (!Mine) {
    Mine = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Mine->Tid = NextTid++;
    Buffers.push_back(Mine);
  }
  return *Mine;
}

void Tracer::append(TraceEvent E) {
  ThreadBuf &B = threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  E.Tid = B.Tid;
  B.Events.push_back(std::move(E));
}

void Tracer::emitComplete(const char *Name, const char *Cat, uint64_t TsUs,
                          uint64_t DurUs, std::string Args) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsUs = TsUs;
  E.DurUs = DurUs;
  E.Args = std::move(Args);
  append(std::move(E));
}

void Tracer::setThreadName(const std::string &Name) {
  Tracer &T = instance();
  ThreadBuf &B = T.threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  B.Name = Name;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> Out;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  }
  return Out;
}

size_t Tracer::eventCount() const {
  size_t N = 0;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    N += B->Events.size();
  }
  return N;
}

std::string Tracer::renderJson() const {
  // Snapshot thread names + events under the locks, render outside.
  std::vector<std::pair<uint32_t, std::string>> Names;
  std::vector<TraceEvent> Events;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    for (const auto &B : Buffers) {
      std::lock_guard<std::mutex> BL(B->M);
      if (!B->Name.empty())
        Names.emplace_back(B->Tid, B->Name);
      Events.insert(Events.end(), B->Events.begin(), B->Events.end());
    }
  }

  JsonWriter W;
  W.beginObject().key("traceEvents").beginArray();
  for (const auto &NM : Names) {
    // Chrome metadata event labelling the thread track.
    W.beginObject()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", static_cast<uint64_t>(NM.first))
        .key("args")
        .beginObject()
        .field("name", NM.second)
        .endObject()
        .endObject();
  }
  for (const TraceEvent &E : Events) {
    W.beginObject()
        .field("name", E.Name)
        .field("cat", E.Cat)
        .field("ph", "X")
        .field("ts", E.TsUs)
        .field("dur", E.DurUs)
        .field("pid", 1)
        .field("tid", static_cast<uint64_t>(E.Tid));
    if (!E.Args.empty())
      W.fieldRaw("args", "{" + E.Args + "}");
    W.endObject();
  }
  W.endArray().field("displayTimeUnit", "ms").endObject();
  return W.take();
}

bool Tracer::writeFile(const std::string &Path, std::string &Err) const {
  std::string Json = renderJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t N = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = N == Json.size() && std::fputc('\n', F) != EOF;
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok)
    Err = "short write to '" + Path + "'";
  return Ok;
}

void Span::begin(const char *N, const char *C) {
  Name = N;
  Cat = C;
  StartUs = Tracer::instance().nowUs();
  Active = true;
}

void Span::end() {
  Tracer &T = Tracer::instance();
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsUs = StartUs;
  uint64_t Now = T.nowUs();
  E.DurUs = Now > StartUs ? Now - StartUs : 0;
  E.Args = std::move(Args);
  T.append(std::move(E));
  Active = false;
}

void Span::arg(const char *Key, const std::string &Val) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += jsonEscape(Key);
  Args += "\":\"";
  Args += jsonEscape(Val);
  Args += '"';
}

void Span::arg(const char *Key, uint64_t Val) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += jsonEscape(Key);
  Args += "\":";
  Args += std::to_string(Val);
}

void Span::arg(const char *Key, int64_t Val) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += jsonEscape(Key);
  Args += "\":";
  Args += std::to_string(Val);
}
