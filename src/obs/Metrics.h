//===- obs/Metrics.h - Counter / gauge / histogram registry -------------------===//
///
/// \file
/// A central registry of named metrics with two render targets: the
/// Prometheus text exposition format (`# TYPE` lines, histogram
/// `_bucket`/`_sum`/`_count` series — what `smltcc --remote-stats
/// --format=prom` scrapes from the compile server) and one shared JSON
/// serializer. Owned instruments (Counter, Gauge, Histogram) are
/// thread-safe via atomics; callback instruments (counterFn/gaugeFn)
/// let existing metrics structs — ServerMetrics and friends — publish
/// their fields into the registry without restructuring their hot
/// paths, instead of each growing another hand-rolled emitter.
///
/// Histograms use fixed upper-bound buckets (Prometheus `le`
/// convention, +Inf implicit) with percentile extraction by linear
/// interpolation inside the winning bucket — p50/p90/p99 for the
/// server's per-tier request-latency split.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_OBS_METRICS_H
#define SMLTC_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smltc {
namespace obs {

class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Fixed-bucket histogram. `Bounds` are inclusive upper bounds in
/// ascending order; an implicit +Inf bucket catches the rest.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  uint64_t count() const;
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Cumulative count at Bounds[I] (Prometheus `le` semantics).
  uint64_t cumulative(size_t I) const;
  const std::vector<double> &bounds() const { return Bounds; }
  /// Bucket counts, one per bound plus the +Inf bucket.
  std::vector<uint64_t> bucketCounts() const;

  /// Quantile in [0,1] by linear interpolation within the winning
  /// bucket (0 from the first bucket's lower edge of 0). Observations
  /// landing beyond the last finite bound report that bound — the
  /// histogram cannot resolve further. Returns 0 on an empty histogram.
  double percentile(double Q) const;

  /// The default request-latency bucket ladder, in seconds (100us to
  /// 10s, roughly 2.5x steps).
  static std::vector<double> latencyBuckets();

private:
  std::vector<double> Bounds;
  std::vector<std::atomic<uint64_t>> Buckets; ///< Bounds.size() + 1 (+Inf)
  std::atomic<double> Sum{0};
  std::atomic<uint64_t> Count{0};
};

/// One registered metric family. Label support is a single optional
/// key/value pair — enough for the server's `{tier="..."}` split —
/// plus an explicit multi-label list for info-style series
/// (`smltcc_build_info{version=...,cache_schema=...,protocol=...}`).
/// When `Labels` is non-empty it wins over LabelKey/LabelVal.
struct MetricEntry {
  enum class Kind : uint8_t { Counter, Gauge, Histogram, CounterFn, GaugeFn };
  Kind K = Kind::Counter;
  std::string Name;
  std::string Help;
  std::string LabelKey;
  std::string LabelVal;
  std::vector<std::pair<std::string, std::string>> Labels;
  std::shared_ptr<Counter> C;
  std::shared_ptr<Gauge> G;
  std::shared_ptr<Histogram> H;
  std::function<uint64_t()> CFn;
  std::function<double()> GFn;
};

/// Named-metric registry. Registration returns stable references;
/// rendering walks entries in registration order. Thread-safe for
/// concurrent registration, updates, and rendering.
class Registry {
public:
  /// Counters and gauges take the same optional single label pair as
  /// histograms; same-name entries with distinct label values form one
  /// family (register them back-to-back so the Prometheus renderer
  /// emits a single HELP/TYPE header) — the farm's per-tenant
  /// `{tenant="..."}` split uses this.
  Counter &counter(const std::string &Name, const std::string &Help = "",
                   const std::string &LabelKey = "",
                   const std::string &LabelVal = "");
  Gauge &gauge(const std::string &Name, const std::string &Help = "",
               const std::string &LabelKey = "",
               const std::string &LabelVal = "");
  Histogram &histogram(const std::string &Name, std::vector<double> Bounds,
                       const std::string &Help = "",
                       const std::string &LabelKey = "",
                       const std::string &LabelVal = "");

  /// Publishes an externally owned histogram (shared with its writer —
  /// the VM's process-global GC pause/copy histograms use this so every
  /// node's registry exposes the same series without the heap knowing
  /// about registries). Same-name-same-label registration is a no-op.
  void registerHistogram(const std::string &Name,
                         std::shared_ptr<Histogram> H,
                         const std::string &Help = "",
                         const std::string &LabelKey = "",
                         const std::string &LabelVal = "");

  /// Registers a constant-1 "info" gauge with an explicit multi-label
  /// set (Prometheus build_info convention). Re-registration under the
  /// same name is a no-op.
  void infoGauge(const std::string &Name,
                 std::vector<std::pair<std::string, std::string>> Labels,
                 const std::string &Help = "");

  /// Publishes an externally owned value under `Name`; `Fn` is invoked
  /// at render time, so it must stay valid for the registry's lifetime
  /// and be safe to call from the rendering thread.
  void counterFn(const std::string &Name, std::function<uint64_t()> Fn,
                 const std::string &Help = "",
                 const std::string &LabelKey = "",
                 const std::string &LabelVal = "");
  void gaugeFn(const std::string &Name, std::function<double()> Fn,
               const std::string &Help = "",
               const std::string &LabelKey = "",
               const std::string &LabelVal = "");

  /// Prometheus text exposition (text/plain; version=0.0.4): `# HELP` /
  /// `# TYPE` per family, `_bucket`/`_sum`/`_count` series for
  /// histograms, `le` rendered with up to 6 significant decimals and
  /// `+Inf` last.
  std::string renderPrometheus() const;

  /// The shared JSON rendering: {"name":value,...}; histograms render
  /// as {"count":..,"sum":..,"p50":..,"p90":..,"p99":..}.
  std::string renderJson() const;

  /// Finds a registered histogram (label-qualified); nullptr if absent.
  const Histogram *findHistogram(const std::string &Name,
                                 const std::string &LabelVal = "") const;

private:
  mutable std::mutex M;
  std::vector<std::shared_ptr<MetricEntry>> Entries;
};

/// Registers the standard per-process identity series every farm node
/// exposes: `smltcc_build_info{version,cache_schema,protocol} 1` and
/// `smltcc_process_start_time_seconds` (Unix seconds, captured at
/// static initialization).
void registerProcessInfo(Registry &R, const std::string &Version,
                         const std::string &CacheSchema,
                         unsigned ProtocolVersion);

} // namespace obs
} // namespace smltc

#endif // SMLTC_OBS_METRICS_H
