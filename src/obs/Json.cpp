//===- obs/Json.cpp - Shared JSON emission helpers ----------------------------===//

#include "obs/Json.h"

#include <cstdio>

using namespace smltc;
using namespace smltc::obs;

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string obs::jsonDouble(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

void JsonWriter::comma() {
  if (NeedComma)
    Out += ',';
  NeedComma = false;
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  comma();
  Out += '[';
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &Name) {
  comma();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\":";
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, uint64_t V) {
  key(Name);
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, int64_t V) {
  key(Name);
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, int V) {
  return field(Name, static_cast<int64_t>(V));
}

JsonWriter &JsonWriter::field(const std::string &Name, double V,
                              int Precision) {
  key(Name);
  Out += jsonDouble(V, Precision);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, bool V) {
  key(Name);
  Out += V ? "true" : "false";
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name,
                              const std::string &V) {
  key(Name);
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, const char *V) {
  return field(Name, std::string(V ? V : ""));
}

JsonWriter &JsonWriter::fieldRaw(const std::string &Name,
                                 const std::string &Json) {
  key(Name);
  Out += Json;
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  comma();
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(double V, int Precision) {
  comma();
  Out += jsonDouble(V, Precision);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  comma();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::valueRaw(const std::string &Json) {
  comma();
  Out += Json;
  NeedComma = true;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct JsonParser {
  const std::string &S;
  size_t P = 0;
  std::string &Err;

  bool fail(const std::string &Msg) {
    Err = Msg + " at byte " + std::to_string(P);
    return false;
  }

  void skipWs() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\t' || S[P] == '\n' ||
                            S[P] == '\r'))
      ++P;
  }

  bool consume(char C, const char *What) {
    skipWs();
    if (P >= S.size() || S[P] != C)
      return fail(std::string("expected ") + What);
    ++P;
    return true;
  }

  bool parseHex4(uint32_t &Out) {
    if (P + 4 > S.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = S[P++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("bad \\u escape digit");
    }
    return true;
  }

  void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xc0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xe0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "string"))
      return false;
    Out.clear();
    while (true) {
      if (P >= S.size())
        return fail("unterminated string");
      char C = S[P++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (P >= S.size())
        return fail("truncated escape");
      char E = S[P++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        uint32_t Cp;
        if (!parseHex4(Cp))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDCxx.
        if (Cp >= 0xd800 && Cp <= 0xdbff && P + 1 < S.size() &&
            S[P] == '\\' && S[P + 1] == 'u') {
          P += 2;
          uint32_t Lo;
          if (!parseHex4(Lo))
            return false;
          if (Lo >= 0xdc00 && Lo <= 0xdfff)
            Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Lo - 0xdc00);
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("bad escape character");
      }
    }
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    skipWs();
    if (P >= S.size())
      return fail("unexpected end of input");
    char C = S[P];
    if (C == '{') {
      ++P;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      while (true) {
        std::string Key;
        if (!parseString(Key) || !consume(':', "':'"))
          return false;
        Out.Obj.emplace_back(std::move(Key), JsonValue());
        if (!parseValue(Out.Obj.back().second, Depth + 1))
          return false;
        skipWs();
        if (P < S.size() && S[P] == ',') {
          ++P;
          skipWs();
          continue;
        }
        return consume('}', "'}'");
      }
    }
    if (C == '[') {
      ++P;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      while (true) {
        Out.Arr.emplace_back();
        if (!parseValue(Out.Arr.back(), Depth + 1))
          return false;
        skipWs();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        return consume(']', "']'");
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (S.compare(P, 4, "true") == 0) {
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      P += 4;
      return true;
    }
    if (S.compare(P, 5, "false") == 0) {
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      P += 5;
      return true;
    }
    if (S.compare(P, 4, "null") == 0) {
      Out.K = JsonValue::Kind::Null;
      P += 4;
      return true;
    }
    // Number.
    size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    while (P < S.size() &&
           ((S[P] >= '0' && S[P] <= '9') || S[P] == '.' || S[P] == 'e' ||
            S[P] == 'E' || S[P] == '+' || S[P] == '-'))
      ++P;
    if (P == Start)
      return fail("unexpected character");
    try {
      Out.Num = std::stod(S.substr(Start, P - Start));
    } catch (...) {
      return fail("malformed number");
    }
    Out.K = JsonValue::Kind::Number;
    return true;
  }
};

const std::string EmptyString;

} // namespace

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &KV : Obj)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

const std::string &JsonValue::getString(const std::string &Key) const {
  const JsonValue *V = get(Key);
  return V && V->K == Kind::String ? V->Str : EmptyString;
}

bool obs::jsonParse(const std::string &Text, JsonValue &Out,
                    std::string &Err) {
  Out = JsonValue();
  JsonParser Pr{Text, 0, Err};
  if (!Pr.parseValue(Out, 0))
    return false;
  Pr.skipWs();
  if (Pr.P != Text.size()) {
    Err = "trailing garbage at byte " + std::to_string(Pr.P);
    return false;
  }
  return true;
}
