//===- obs/Json.cpp - Shared JSON emission helpers ----------------------------===//

#include "obs/Json.h"

#include <cstdio>

using namespace smltc;
using namespace smltc::obs;

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string obs::jsonDouble(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

void JsonWriter::comma() {
  if (NeedComma)
    Out += ',';
  NeedComma = false;
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  comma();
  Out += '[';
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &Name) {
  comma();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\":";
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, uint64_t V) {
  key(Name);
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, int64_t V) {
  key(Name);
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, int V) {
  return field(Name, static_cast<int64_t>(V));
}

JsonWriter &JsonWriter::field(const std::string &Name, double V,
                              int Precision) {
  key(Name);
  Out += jsonDouble(V, Precision);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, bool V) {
  key(Name);
  Out += V ? "true" : "false";
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name,
                              const std::string &V) {
  key(Name);
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Name, const char *V) {
  return field(Name, std::string(V ? V : ""));
}

JsonWriter &JsonWriter::fieldRaw(const std::string &Name,
                                 const std::string &Json) {
  key(Name);
  Out += Json;
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  comma();
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(double V, int Precision) {
  comma();
  Out += jsonDouble(V, Precision);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  comma();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::valueRaw(const std::string &Json) {
  comma();
  Out += Json;
  NeedComma = true;
  return *this;
}
