//===- obs/Log.cpp - Leveled, structured, rate-limited logging ----------------===//

#include "obs/Log.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <chrono>

using namespace smltc;
using namespace smltc::obs;

std::atomic<uint8_t> Logger::Level{
    static_cast<uint8_t>(LogLevel::Warn)};

const char *smltc::obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "unknown";
}

bool smltc::obs::parseLogLevel(const std::string &S, LogLevel &Out) {
  if (S == "debug")
    Out = LogLevel::Debug;
  else if (S == "info")
    Out = LogLevel::Info;
  else if (S == "warn")
    Out = LogLevel::Warn;
  else if (S == "error")
    Out = LogLevel::Error;
  else if (S == "off")
    Out = LogLevel::Off;
  else
    return false;
  return true;
}

LogFields &LogFields::add(const char *Key, const std::string &Val) {
  if (!Body.empty())
    Body += ',';
  Body += '"';
  Body += jsonEscape(Key);
  Body += "\":\"";
  Body += jsonEscape(Val);
  Body += '"';
  return *this;
}

LogFields &LogFields::add(const char *Key, const char *Val) {
  return add(Key, std::string(Val));
}

LogFields &LogFields::add(const char *Key, uint64_t Val) {
  if (!Body.empty())
    Body += ',';
  Body += '"';
  Body += jsonEscape(Key);
  Body += "\":";
  Body += std::to_string(Val);
  return *this;
}

LogFields &LogFields::add(const char *Key, int64_t Val) {
  if (!Body.empty())
    Body += ',';
  Body += '"';
  Body += jsonEscape(Key);
  Body += "\":";
  Body += std::to_string(Val);
  return *this;
}

LogFields &LogFields::add(const char *Key, double Val) {
  if (!Body.empty())
    Body += ',';
  Body += '"';
  Body += jsonEscape(Key);
  Body += "\":";
  Body += jsonDouble(Val, 6);
  return *this;
}

Logger &Logger::instance() {
  static Logger L;
  return L;
}

bool Logger::openFile(const std::string &Path, std::string &Err) {
  std::lock_guard<std::mutex> Lock(M);
  if (Out) {
    std::fclose(Out);
    Out = nullptr;
  }
  if (Path.empty())
    return true;
  Out = std::fopen(Path.c_str(), "a");
  if (!Out) {
    Err = "cannot open log file '" + Path + "' for appending";
    return false;
  }
  return true;
}

void Logger::closeFile() {
  std::lock_guard<std::mutex> Lock(M);
  if (Out) {
    std::fclose(Out);
    Out = nullptr;
  }
}

void Logger::log(LogLevel L, const char *Comp, const char *Event,
                 std::string Fields) {
  if (!levelEnabled(L))
    return;

  double NowSec =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()) /
      1e6;
  TraceContext Ctx = Tracer::currentContext();

  std::string Line = "{\"ts\":" + jsonDouble(NowSec, 6) +
                     ",\"level\":\"" + logLevelName(L) + "\",\"comp\":\"" +
                     jsonEscape(Comp) + "\",\"event\":\"" +
                     jsonEscape(Event) + "\"";
  if (Ctx.valid()) {
    Line += ",\"trace_id\":\"" + traceIdHex(Ctx.TraceIdHi, Ctx.TraceIdLo) +
            "\"";
    if (Ctx.SpanId)
      Line += ",\"span_id\":\"" + spanIdHex(Ctx.SpanId) + "\"";
  }
  if (!Fields.empty()) {
    Line += ',';
    Line += Fields;
  }
  Line += "}\n";

  uint64_t WindowSec = static_cast<uint64_t>(NowSec);
  std::lock_guard<std::mutex> Lock(M);
  RateBucket &B = Buckets[std::string(Comp) + "/" + Event];
  std::FILE *Dst = Out ? Out : stderr;
  if (B.WindowSec != WindowSec) {
    // Window rolled over: account for anything the last one dropped.
    if (B.Dropped) {
      std::string Summary =
          "{\"ts\":" + jsonDouble(NowSec, 6) +
          ",\"level\":\"warn\",\"comp\":\"" + jsonEscape(Comp) +
          "\",\"event\":\"log_suppressed\",\"suppressed_event\":\"" +
          jsonEscape(Event) +
          "\",\"dropped\":" + std::to_string(B.Dropped) + "}\n";
      std::fwrite(Summary.data(), 1, Summary.size(), Dst);
    }
    B.WindowSec = WindowSec;
    B.CountInWindow = 0;
    B.Dropped = 0;
  }
  if (B.CountInWindow >= kMaxPerKeyPerSec) {
    ++B.Dropped;
    Suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++B.CountInWindow;
  Emitted.fetch_add(1, std::memory_order_relaxed);
  std::fwrite(Line.data(), 1, Line.size(), Dst);
  std::fflush(Dst);
}
