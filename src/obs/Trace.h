//===- obs/Trace.h - Low-overhead span tracer ---------------------------------===//
///
/// \file
/// Compiler-wide tracing: every pipeline phase, batch job, server
/// request, and GC pause can be recorded as a span and exported as
/// Chrome trace-event JSON (load the file in Perfetto or
/// chrome://tracing). Instrumentation is left compiled in everywhere;
/// the disabled fast path is a single relaxed atomic load per span, so
/// production binaries pay effectively nothing until `--trace-json` (or
/// Tracer::enable) turns collection on. bench/obs_overhead gates that
/// claim at <= 2% on the full 72-job compile matrix.
///
/// Distributed tracing: spans carry a 128-bit trace id plus 64-bit
/// span/parent ids. A `TraceContext` names "the span new work should
/// nest under" on the current thread; `Span` inherits it, mints its own
/// span id, and installs itself for the duration, so nesting falls out
/// of scoping with no plumbing. Contexts cross process boundaries
/// through protocol-v4 compile frames (client -> router -> shard ->
/// batch worker), and `tools/merge_traces` stitches the per-node
/// `--trace-json` files into one causally linked trace.
///
/// Concurrency: spans append to a per-thread buffer guarded by that
/// buffer's own mutex — uncontended on the hot path (only the owning
/// thread takes it per event; the exporter takes it once per snapshot),
/// so worker pools trace without a global lock. Thread ids are small
/// sequential integers assigned on first use; `setThreadName` labels
/// them in the export (Perfetto shows the names on the track headers).
///
/// Timestamps are microseconds on the monotonic clock, measured from a
/// process-wide epoch, matching the `ts`/`dur` convention of the Chrome
/// trace-event format ("ph":"X" complete events). The export also
/// records the epoch's wall-clock time so merge_traces can align
/// different processes onto one timeline.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_OBS_TRACE_H
#define SMLTC_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smltc {
namespace obs {

/// A propagated trace context: which 128-bit trace the current work
/// belongs to, and the span id new child spans should parent under.
/// Zero trace id = "no context" (spans still record, without ids).
struct TraceContext {
  uint64_t TraceIdHi = 0;
  uint64_t TraceIdLo = 0;
  uint64_t SpanId = 0;
  bool valid() const { return (TraceIdHi | TraceIdLo) != 0; }
};

/// Mints a fresh random 128-bit trace id (SpanId left 0 — the caller's
/// root span supplies it). Thread-safe, never returns an invalid id.
TraceContext mintTraceContext();
/// Mints a fresh nonzero 64-bit span id. Thread-safe.
uint64_t mintSpanId();
/// Lowercase-hex renderings (32 / 16 chars, zero-padded).
std::string traceIdHex(uint64_t Hi, uint64_t Lo);
std::string spanIdHex(uint64_t Id);

/// One recorded span ("ph":"X" complete event).
struct TraceEvent {
  const char *Name = "";   ///< static string (phase/section name)
  const char *Cat = "";    ///< static category ("compile", "batch", ...)
  uint64_t TsUs = 0;       ///< start, microseconds since the trace epoch
  uint64_t DurUs = 0;
  uint32_t Tid = 0;
  uint64_t TraceIdHi = 0;  ///< distributed trace id (0 = none)
  uint64_t TraceIdLo = 0;
  uint64_t SpanId = 0;     ///< this span's id (0 = none)
  uint64_t ParentSpanId = 0;
  std::string Args;        ///< pre-rendered JSON object body ("" = none)
};

/// A span that was begun but not yet ended — what /tracez shows and
/// what flushActive() force-records during a graceful drain.
struct ActiveSpan {
  const char *Name = "";
  const char *Cat = "";
  uint64_t StartUs = 0;
  uint64_t SpanId = 0;
  uint32_t Tid = 0;
};

class Tracer {
public:
  static Tracer &instance();

  /// The per-span fast-path check; a relaxed load, nothing else.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }

  void enable();
  /// Stops collection; already-recorded events stay until clear().
  void disable();
  /// Drops every recorded event (collection state unchanged).
  void clear();

  /// The calling thread's installed trace context (what the next Span
  /// will parent under), and its setter. Plain thread-local reads and
  /// writes — safe whether or not tracing is enabled.
  static TraceContext currentContext();
  static void setCurrentContext(const TraceContext &Ctx);

  /// Microseconds since the trace epoch, and the conversion for
  /// externally captured steady_clock points (queue-wait spans measure
  /// from their enqueue timestamp).
  uint64_t nowUs() const;
  uint64_t toUs(std::chrono::steady_clock::time_point T) const;

  /// Records a completed span with explicit timing — the path for
  /// async/request spans whose start predates the recording thread's
  /// involvement. `Name`/`Cat` must be static strings; `Args` is a
  /// pre-rendered JSON object body (use JsonWriter, strip the braces)
  /// or empty. `Ctx` supplies the trace id, `SpanId`/`ParentSpanId` the
  /// causal links (all optional — zeros render without ids).
  void emitComplete(const char *Name, const char *Cat, uint64_t TsUs,
                    uint64_t DurUs, std::string Args = std::string(),
                    const TraceContext &Ctx = TraceContext(),
                    uint64_t SpanId = 0, uint64_t ParentSpanId = 0);

  /// Labels the calling thread in the export (Chrome "thread_name"
  /// metadata). Safe to call whether or not tracing is enabled.
  static void setThreadName(const std::string &Name);

  /// Snapshot of everything recorded so far, in per-thread buffer order.
  std::vector<TraceEvent> snapshot() const;
  size_t eventCount() const;

  /// Spans currently open on any thread (begin seen, end not yet).
  std::vector<ActiveSpan> activeSpans() const;
  /// Force-records every still-open span with its duration so far (arg
  /// "flushed":true) and forgets it, so a drained server's trace file
  /// is never missing the spans that were in flight at SIGTERM. A
  /// span's normal end() after a flush is a silent no-op. Returns the
  /// number of spans flushed.
  size_t flushActive();

  /// Renders the Chrome trace-event JSON document
  /// ({"traceEvents":[...]}).
  std::string renderJson() const;
  /// renderJson straight to a file; false + Err on I/O failure.
  bool writeFile(const std::string &Path, std::string &Err) const;

private:
  friend class Span;

  struct ThreadBuf {
    mutable std::mutex M;
    std::vector<TraceEvent> Events;
    std::vector<ActiveSpan> Active;
    uint32_t Tid = 0;
    std::string Name;
  };

  Tracer() = default;
  /// The calling thread's buffer, created and registered on first use.
  ThreadBuf &threadBuf();
  void append(TraceEvent E);
  /// Registers a just-begun span on the calling thread's active list.
  void beginSpan(const char *Name, const char *Cat, uint64_t StartUs,
                 uint64_t SpanId);
  /// Records a span end: drops the active entry and appends the event.
  /// No-op when flushActive() already recorded (and removed) the span.
  void endSpan(TraceEvent E);

  static std::atomic<bool> Enabled;

  mutable std::mutex RegistryMutex;
  std::vector<std::shared_ptr<ThreadBuf>> Buffers;
  uint32_t NextTid = 1;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  /// Wall-clock time of `Epoch`, microseconds since the Unix epoch —
  /// exported so merge_traces can align traces from different processes.
  uint64_t EpochWallUs =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::system_clock::now()
                                    .time_since_epoch())
                                .count());
};

/// Installs a trace context on the current thread for a scope — how a
/// batch worker adopts the context a compile frame carried in, so the
/// job's spans parent under the remote client's. Restores the previous
/// context on destruction. Cheap enough to use unconditionally.
class ScopedTraceContext {
public:
  explicit ScopedTraceContext(const TraceContext &Ctx)
      : Prev(Tracer::currentContext()) {
    Tracer::setCurrentContext(Ctx);
  }
  ~ScopedTraceContext() { Tracer::setCurrentContext(Prev); }
  ScopedTraceContext(const ScopedTraceContext &) = delete;
  ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

private:
  TraceContext Prev;
};

/// RAII span: records [construction, destruction) on the current thread.
/// When tracing is disabled at construction the span is inert — no
/// clock read, no allocation — and stays inert even if tracing turns on
/// mid-flight (half-measured spans would lie). Active spans inherit the
/// thread's TraceContext as parent, mint their own span id, and install
/// themselves as the context for their scope.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "compile") {
    if (Tracer::enabled())
      begin(Name, Cat);
  }
  ~Span() {
    if (Active)
      end();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value argument (shown in the Perfetto side panel).
  /// No-ops on inert spans, so callers never guard these.
  void arg(const char *Key, const std::string &Val);
  void arg(const char *Key, uint64_t Val);
  void arg(const char *Key, int64_t Val);

  /// Re-parents the span under an externally propagated context (the
  /// trace id + parent span id a protocol-v4 frame carried in). Also
  /// updates the installed thread context so child spans follow. No-op
  /// on inert spans or invalid contexts.
  void adopt(const TraceContext &Parent);

  /// This span's ids — what a forwarder stamps into the downstream
  /// frame so remote spans parent under this one. Zero when inert.
  uint64_t spanId() const { return Active ? Ctx.SpanId : 0; }
  TraceContext context() const { return Active ? Ctx : TraceContext(); }

private:
  void begin(const char *Name, const char *Cat);
  void end();

  const char *Name = "";
  const char *Cat = "";
  uint64_t StartUs = 0;
  std::string Args;
  TraceContext Ctx;  ///< trace id + this span's own id
  TraceContext Prev; ///< restored on end()
  uint64_t ParentId = 0;
  bool Active = false;
};

#define SMLTC_OBS_CONCAT_IMPL(A, B) A##B
#define SMLTC_OBS_CONCAT(A, B) SMLTC_OBS_CONCAT_IMPL(A, B)
/// Scope-level span with no handle (no args attached).
#define SMLTC_SPAN(NameLit, CatLit)                                          \
  ::smltc::obs::Span SMLTC_OBS_CONCAT(ObsSpan_, __LINE__)(NameLit, CatLit)

/// One completed request as /tracez reports it: identity, total
/// latency, and an optional pre-rendered per-phase breakdown.
struct RequestSample {
  uint64_t RequestId = 0;
  uint64_t TraceIdHi = 0;
  uint64_t TraceIdLo = 0;
  uint64_t TsUs = 0; ///< arrival, tracer-epoch microseconds
  double Sec = 0;    ///< total latency
  std::string Kind;  ///< "memory"/"disk"/"miss" on shards, "forward" on routers
  std::string Tenant;
  std::string PhasesJson; ///< pre-rendered JSON object body ("" = none)
};

/// Process-wide ring of recent completed requests; /tracez renders the
/// slowest of them with their per-phase breakdown. Always on (one mutex
/// + small copy per request — noise next to a compile), so the status
/// surface works without --trace-json.
class RequestLog {
public:
  static RequestLog &instance();

  void record(RequestSample S);
  /// The retained samples, slowest first, at most `MaxN` (0 = all).
  std::vector<RequestSample> slowest(size_t MaxN = 0) const;
  uint64_t totalRecorded() const;
  void clear();

  /// Completed requests retained (a recency window; /tracez sorts it).
  static constexpr size_t kCapacity = 128;

private:
  RequestLog() = default;
  mutable std::mutex M;
  std::vector<RequestSample> Ring; ///< circular, oldest at Next
  size_t Next = 0;
  uint64_t Total = 0;
};

/// Renders the /tracez JSON document both farm node types serve:
/// currently-active spans (name, category, age, span id, thread) plus
/// the slowest `MaxSlowest` recent requests from the RequestLog with
/// their per-phase breakdowns. Works with tracing disabled (the active
/// list is empty then; the request ring always records).
std::string renderTracezJson(size_t MaxSlowest = 32);

} // namespace obs
} // namespace smltc

#endif // SMLTC_OBS_TRACE_H
