//===- obs/Trace.h - Low-overhead span tracer ---------------------------------===//
///
/// \file
/// Compiler-wide tracing: every pipeline phase, batch job, server
/// request, and GC pause can be recorded as a span and exported as
/// Chrome trace-event JSON (load the file in Perfetto or
/// chrome://tracing). Instrumentation is left compiled in everywhere;
/// the disabled fast path is a single relaxed atomic load per span, so
/// production binaries pay effectively nothing until `--trace-json` (or
/// Tracer::enable) turns collection on. bench/obs_overhead gates that
/// claim at <= 2% on the full 72-job compile matrix.
///
/// Concurrency: spans append to a per-thread buffer guarded by that
/// buffer's own mutex — uncontended on the hot path (only the owning
/// thread takes it per event; the exporter takes it once per snapshot),
/// so worker pools trace without a global lock. Thread ids are small
/// sequential integers assigned on first use; `setThreadName` labels
/// them in the export (Perfetto shows the names on the track headers).
///
/// Timestamps are microseconds on the monotonic clock, measured from a
/// process-wide epoch, matching the `ts`/`dur` convention of the Chrome
/// trace-event format ("ph":"X" complete events).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_OBS_TRACE_H
#define SMLTC_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smltc {
namespace obs {

/// One recorded span ("ph":"X" complete event).
struct TraceEvent {
  const char *Name = "";   ///< static string (phase/section name)
  const char *Cat = "";    ///< static category ("compile", "batch", ...)
  uint64_t TsUs = 0;       ///< start, microseconds since the trace epoch
  uint64_t DurUs = 0;
  uint32_t Tid = 0;
  std::string Args;        ///< pre-rendered JSON object body ("" = none)
};

class Tracer {
public:
  static Tracer &instance();

  /// The per-span fast-path check; a relaxed load, nothing else.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }

  void enable();
  /// Stops collection; already-recorded events stay until clear().
  void disable();
  /// Drops every recorded event (collection state unchanged).
  void clear();

  /// Microseconds since the trace epoch, and the conversion for
  /// externally captured steady_clock points (queue-wait spans measure
  /// from their enqueue timestamp).
  uint64_t nowUs() const;
  uint64_t toUs(std::chrono::steady_clock::time_point T) const;

  /// Records a completed span with explicit timing — the path for
  /// async/request spans whose start predates the recording thread's
  /// involvement. `Name`/`Cat` must be static strings; `Args` is a
  /// pre-rendered JSON object body (use JsonWriter, strip the braces)
  /// or empty.
  void emitComplete(const char *Name, const char *Cat, uint64_t TsUs,
                    uint64_t DurUs, std::string Args = std::string());

  /// Labels the calling thread in the export (Chrome "thread_name"
  /// metadata). Safe to call whether or not tracing is enabled.
  static void setThreadName(const std::string &Name);

  /// Snapshot of everything recorded so far, in per-thread buffer order.
  std::vector<TraceEvent> snapshot() const;
  size_t eventCount() const;

  /// Renders the Chrome trace-event JSON document
  /// ({"traceEvents":[...]}).
  std::string renderJson() const;
  /// renderJson straight to a file; false + Err on I/O failure.
  bool writeFile(const std::string &Path, std::string &Err) const;

private:
  friend class Span;

  struct ThreadBuf {
    mutable std::mutex M;
    std::vector<TraceEvent> Events;
    uint32_t Tid = 0;
    std::string Name;
  };

  Tracer() = default;
  /// The calling thread's buffer, created and registered on first use.
  ThreadBuf &threadBuf();
  void append(TraceEvent E);

  static std::atomic<bool> Enabled;

  mutable std::mutex RegistryMutex;
  std::vector<std::shared_ptr<ThreadBuf>> Buffers;
  uint32_t NextTid = 1;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

/// RAII span: records [construction, destruction) on the current thread.
/// When tracing is disabled at construction the span is inert — no
/// clock read, no allocation — and stays inert even if tracing turns on
/// mid-flight (half-measured spans would lie).
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "compile") {
    if (Tracer::enabled())
      begin(Name, Cat);
  }
  ~Span() {
    if (Active)
      end();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value argument (shown in the Perfetto side panel).
  /// No-ops on inert spans, so callers never guard these.
  void arg(const char *Key, const std::string &Val);
  void arg(const char *Key, uint64_t Val);
  void arg(const char *Key, int64_t Val);

private:
  void begin(const char *Name, const char *Cat);
  void end();

  const char *Name = "";
  const char *Cat = "";
  uint64_t StartUs = 0;
  std::string Args;
  bool Active = false;
};

#define SMLTC_OBS_CONCAT_IMPL(A, B) A##B
#define SMLTC_OBS_CONCAT(A, B) SMLTC_OBS_CONCAT_IMPL(A, B)
/// Scope-level span with no handle (no args attached).
#define SMLTC_SPAN(NameLit, CatLit)                                          \
  ::smltc::obs::Span SMLTC_OBS_CONCAT(ObsSpan_, __LINE__)(NameLit, CatLit)

} // namespace obs
} // namespace smltc

#endif // SMLTC_OBS_TRACE_H
