//===- obs/Json.h - Shared JSON emission helpers ------------------------------===//
///
/// \file
/// The one JSON serializer every metrics emitter in the repo goes
/// through. Before this existed, BatchMetrics, ServerMetrics, VmMetrics,
/// and the bench writers each hand-rolled their own snprintf emitters —
/// and every string they interpolated (error messages, file paths,
/// variant names) went out unescaped, so one diagnostic containing a
/// quote produced invalid JSON. `jsonEscape` is the single escaping
/// routine; `JsonWriter` builds objects/arrays field by field with the
/// exact numeric formats the existing emitters used (plain integers,
/// fixed-precision doubles), so converted emitters stay byte-compatible
/// with their previous output.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_OBS_JSON_H
#define SMLTC_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smltc {
namespace obs {

/// Escapes a string for inclusion inside JSON double quotes: `"` and
/// `\` are backslash-escaped, the named control characters use their
/// short forms (\n \r \t \b \f), and every other byte below 0x20 is
/// emitted as \u00XX. Bytes >= 0x80 pass through untouched (UTF-8 is
/// valid JSON as-is).
std::string jsonEscape(const std::string &S);

/// Incremental JSON builder. Values are appended in call order; commas
/// and quoting are handled here, escaping goes through jsonEscape.
/// Numeric formats are chosen to match the repo's historical emitters:
/// integers render with std::to_string, doubles with a caller-chosen
/// fixed precision (default 6, the old "%.6f").
class JsonWriter {
public:
  /// Starts an object ({...}). Call at the top level or after key().
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits `"name":` inside an object; follow with a value call or a
  /// begin*() for a nested container.
  JsonWriter &key(const std::string &Name);

  // Keyed scalar fields (object context).
  // size_t is uint64_t on every platform this builds for; a separate
  // overload would be a redefinition.
  JsonWriter &field(const std::string &Name, uint64_t V);
  JsonWriter &field(const std::string &Name, int64_t V);
  JsonWriter &field(const std::string &Name, int V);
  JsonWriter &field(const std::string &Name, double V, int Precision = 6);
  JsonWriter &field(const std::string &Name, bool V);
  JsonWriter &field(const std::string &Name, const std::string &V);
  JsonWriter &field(const std::string &Name, const char *V);
  /// Splices pre-rendered JSON as the value (for nested emitters that
  /// already produce a complete object).
  JsonWriter &fieldRaw(const std::string &Name, const std::string &Json);

  // Unkeyed values (array context).
  JsonWriter &value(uint64_t V);
  JsonWriter &value(double V, int Precision = 6);
  JsonWriter &value(const std::string &V);
  JsonWriter &valueRaw(const std::string &Json);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void comma();
  std::string Out;
  bool NeedComma = false;
};

/// Renders a double with fixed precision (the historical "%.Nf").
std::string jsonDouble(double V, int Precision = 6);

/// A parsed JSON value — the minimal recursive model `tools/merge_traces`
/// and the tests use to read back what JsonWriter (and the tracer)
/// emitted. Numbers are doubles (Chrome trace ts/dur fit exactly up to
/// 2^53 us, ~285 years of uptime); object fields keep insertion order.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(const std::string &Key) const;
  /// get() that also requires the member to be a string; "" fallback.
  const std::string &getString(const std::string &Key) const;
};

/// Strict-enough recursive-descent parse of a complete JSON document
/// (trailing whitespace allowed, trailing garbage rejected). On failure
/// returns false with a byte-offset diagnostic in `Err`.
bool jsonParse(const std::string &Text, JsonValue &Out, std::string &Err);

} // namespace obs
} // namespace smltc

#endif // SMLTC_OBS_JSON_H
