//===- cps/CpsCheck.h - CPS well-formedness checking ----------------------------===//
///
/// \file
/// Verifies CPS invariants between phases: every variable is bound before
/// use, binders are unique, and applications have consistent shapes.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CPS_CPSCHECK_H
#define SMLTC_CPS_CPSCHECK_H

#include "cps/Cps.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace smltc {

struct CpsCheckResult {
  bool Ok = true;
  std::string Error;
  size_t NodesChecked = 0;
};

CpsCheckResult checkCps(const Cexp *Program);

/// The census half of the checker: recounts every value occurrence and
/// App-head occurrence in \p Program and compares against the caller's
/// maintained per-variable tables. \p Resolve (optional) maps each
/// occurrence through the caller's pending substitution before counting,
/// so an incremental census that describes the virtual (substituted)
/// tree can be verified against the physical one. Variables at or above
/// the table sizes are ignored. Fails on the first mismatch.
CpsCheckResult
checkCpsCensus(const Cexp *Program, const std::vector<int32_t> &UseCounts,
               const std::vector<int32_t> &CallCounts,
               const std::function<CValue(CValue)> &Resolve = nullptr);

} // namespace smltc

#endif // SMLTC_CPS_CPSCHECK_H
