//===- cps/CpsCheck.h - CPS well-formedness checking ----------------------------===//
///
/// \file
/// Verifies CPS invariants between phases: every variable is bound before
/// use, binders are unique, and applications have consistent shapes.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CPS_CPSCHECK_H
#define SMLTC_CPS_CPSCHECK_H

#include "cps/Cps.h"

#include <string>

namespace smltc {

struct CpsCheckResult {
  bool Ok = true;
  std::string Error;
  size_t NodesChecked = 0;
};

CpsCheckResult checkCps(const Cexp *Program);

} // namespace smltc

#endif // SMLTC_CPS_CPSCHECK_H
