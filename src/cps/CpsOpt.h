//===- cps/CpsOpt.h - CPS optimizer ---------------------------------------------===//
///
/// \file
/// The CPS optimizer (paper Section 5.2 and Appel's book): contractions
/// (dead code, constant folding, select-from-known-record), beta reduction
/// of once-used functions, eta reduction of continuations, inline expansion
/// of small functions, and the two new type-enabled optimizations the paper
/// adds: cancellation of wrapper/unwrapper pairs and record-copy
/// elimination (possible because record sizes are now known from CTYs).
/// Also implements Kranz-style argument flattening for known functions
/// (the sml.fag configuration).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CPS_CPSOPT_H
#define SMLTC_CPS_CPSOPT_H

#include "cps/Cps.h"
#include "driver/Options.h"

namespace smltc {

struct CpsOptStats {
  int Rounds = 0;
  size_t DeadRemoved = 0;
  size_t SelectsFolded = 0;
  size_t RecordsCopyEliminated = 0;
  size_t FloatBoxesReused = 0; ///< wrap/unwrap pairs cancelled
  size_t BranchesFolded = 0;
  size_t ConstantsFolded = 0;
  size_t InlinedOnce = 0;
  size_t InlinedSmall = 0;
  size_t EtaConts = 0;
  size_t KnownFnsFlattened = 0;
};

/// Optimizes a CPS program in place (functionally: returns the new root).
/// \p MaxVar is the exclusive upper bound of variable ids, updated as the
/// optimizer introduces fresh variables.
Cexp *optimizeCps(Arena &A, const CompilerOptions &Opts, Cexp *Program,
                  CVar &MaxVar, CpsOptStats &Stats);

} // namespace smltc

#endif // SMLTC_CPS_CPSOPT_H
