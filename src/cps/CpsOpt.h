//===- cps/CpsOpt.h - CPS optimizer ---------------------------------------------===//
///
/// \file
/// The CPS optimizer (paper Section 5.2 and Appel's book): contractions
/// (dead code, constant folding, select-from-known-record), beta reduction
/// of once-used functions, eta reduction of continuations, inline expansion
/// of small functions, and the two new type-enabled optimizations the paper
/// adds: cancellation of wrapper/unwrapper pairs and record-copy
/// elimination (possible because record sizes are now known from CTYs).
/// Also implements Kranz-style argument flattening for known functions
/// (the sml.fag configuration).
///
/// Two engines implement the same reductions (CompilerOptions::CpsOpt):
///
///  - `rounds` (legacy): up to 10 fixpoint rounds, each taking a fresh
///    census and rebuilding the whole tree in the arena.
///  - `shrink` (default): one up-front census over dense CVar-indexed
///    tables, incrementally maintained as each contraction fires, with
///    the tree mutated in place so unchanged subtrees are never
///    re-cloned. Each phase plans the non-shrinking passes (inline-small,
///    argument flattening) from phase-entry counts, then applies all
///    reductions in one top-down sweep that mirrors the rounds cadence
///    decision-for-decision — both engines reach the same normal form
///    through the same intermediate states, so they are differentially
///    testable down to exact VM instruction counts.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CPS_CPSOPT_H
#define SMLTC_CPS_CPSOPT_H

#include "cps/Cps.h"
#include "driver/Options.h"

#include <atomic>
#include <cstdint>

namespace smltc {

namespace obs {
class Registry;
}

struct CpsOptStats {
  int Rounds = 0; ///< census+rewrite rounds (rounds) / sweep phases (shrink)
  size_t DeadRemoved = 0;
  size_t SelectsFolded = 0;
  size_t RecordsCopyEliminated = 0;
  size_t FloatBoxesReused = 0; ///< wrap/unwrap pairs cancelled
  size_t BranchesFolded = 0;
  size_t ConstantsFolded = 0;
  size_t InlinedOnce = 0;
  size_t InlinedSmall = 0;
  size_t EtaConts = 0;
  size_t KnownFnsFlattened = 0;
  // Fixpoint-era shrink rules (fire only when CpsOptMaxPhases == 0):
  size_t EtaFuns = 0;          ///< generalized eta of forwarding functions
  size_t CensusFlattened = 0;  ///< census-driven (untyped) arg flattening;
                               ///< also counted in KnownFnsFlattened
  size_t WrapCancelChains = 0; ///< non-adjacent wrap dedup / unwrap CSE
  /// The subset of WrapCancelChains that cancelled a per-iteration
  /// allocation or select inside a loop nest (fired through the
  /// loop-body gate rather than same-depth or last-use). These carry
  /// the dynamic-instruction wins; the bench gate keys on them.
  size_t WrapCancelLoopCarried = 0;
  size_t HoistedAllocs = 0;    ///< closed allocs hoisted out of known loops
  size_t WorklistPasses = 0; ///< shrink engine: contraction sweeps run
  size_t ExpandPasses = 0;   ///< shrink engine: inline/flatten phases run
  /// Arena payload bytes before/after the optimizer ran; the difference is
  /// the allocation churn this compile's optimization cost.
  size_t ArenaBytesBefore = 0;
  size_t ArenaBytesAfter = 0;
  /// Shrink-engine audit mode (setCpsOptAudit): per-variable mismatches
  /// between the incrementally maintained census and a recount.
  size_t CensusAuditFailures = 0;
  /// The engine stopped at its round/phase cap while reductions were still
  /// firing (previously a silent non-convergence).
  bool HitRoundCap = false;
  /// Fixpoint mode only: the shrink engine was still contracting when it
  /// reached the safety ceiling. The driver turns this into a compile
  /// error — contraction rules provably shrink, so this is a rule bug,
  /// not a program property.
  bool HitSafetyCeiling = false;
};

/// Optimizes a CPS program in place (functionally: returns the new root).
/// \p MaxVar is the exclusive upper bound of variable ids, updated as the
/// optimizer introduces fresh variables.
Cexp *optimizeCps(Arena &A, const CompilerOptions &Opts, Cexp *Program,
                  CVar &MaxVar, CpsOptStats &Stats);

/// Process-wide totals accumulated across every optimizeCps run, for the
/// observability metrics registry.
struct CpsOptTotals {
  std::atomic<uint64_t> Runs{0};
  std::atomic<uint64_t> DeadRemoved{0};
  std::atomic<uint64_t> SelectsFolded{0};
  std::atomic<uint64_t> RecordsCopyEliminated{0};
  std::atomic<uint64_t> FloatBoxesReused{0};
  std::atomic<uint64_t> BranchesFolded{0};
  std::atomic<uint64_t> ConstantsFolded{0};
  std::atomic<uint64_t> InlinedOnce{0};
  std::atomic<uint64_t> InlinedSmall{0};
  std::atomic<uint64_t> EtaConts{0};
  std::atomic<uint64_t> KnownFnsFlattened{0};
  std::atomic<uint64_t> EtaFuns{0};
  std::atomic<uint64_t> CensusFlattened{0};
  std::atomic<uint64_t> WrapCancelChains{0};
  std::atomic<uint64_t> WrapCancelLoopCarried{0};
  std::atomic<uint64_t> HoistedAllocs{0};
  std::atomic<uint64_t> Rounds{0};
  std::atomic<uint64_t> WorklistPasses{0};
  std::atomic<uint64_t> ExpandPasses{0};
  std::atomic<uint64_t> ArenaBytes{0};
  std::atomic<uint64_t> RoundCapHits{0};
  std::atomic<uint64_t> SafetyCeilingHits{0};
};

CpsOptTotals &cpsOptTotals();

/// Registers smltcc_cps_opt_* counters over cpsOptTotals() in \p R.
void registerCpsOptMetrics(obs::Registry &R);

/// Test hook: when enabled, the shrink engine recounts the census from
/// scratch after every sweep phase and records mismatches in
/// CpsOptStats::CensusAuditFailures. Off by default (it is quadratic).
void setCpsOptAudit(bool Enabled);

} // namespace smltc

#endif // SMLTC_CPS_CPSOPT_H
