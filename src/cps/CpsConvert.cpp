//===- cps/CpsConvert.cpp - LEXP to CPS conversion ------------------------------===//

#include "cps/CpsConvert.h"

#include "lexp/PrimRep.h"

#include <cassert>
#include <functional>
#include <unordered_map>

using namespace smltc;

RecordLayout smltc::layoutOf(const Lty *RecordTy) {
  RecordLayout L;
  assert(RecordTy->isRecordLike());
  // Floats first (Figure 1c): physical index = rank among floats, words
  // follow after all floats.
  int FloatCount = 0;
  for (const Lty *F : RecordTy->fields())
    if (F->kind() == LtyKind::Real)
      ++FloatCount;
  int NextFloat = 0;
  int NextWord = FloatCount;
  for (const Lty *F : RecordTy->fields()) {
    if (F->kind() == LtyKind::Real)
      L.Slots.push_back({NextFloat++, true});
    else
      L.Slots.push_back({NextWord++, false});
  }
  L.NumFloats = FloatCount;
  L.NumWords = static_cast<int>(RecordTy->fields().size()) - FloatCount;
  return L;
}

namespace {

/// The conversion continuation: receives the CPS value of the expression.
using MetaK = std::function<Cexp *(CValue)>;

class Converter {
public:
  Converter(Arena &A, LtyContext &LC, const CompilerOptions &Opts)
      : A(A), LC(LC), Opts(Opts), B(A) {}

  Cexp *convertProgram(const Lexp *Program) {
    // Install the uncaught-exception handler, then run, then halt.
    CVar HFun = B.fresh();
    CVar HParam = B.fresh();
    Cexp *HBody = B.halt(CValue::intC(-1));
    HBody->Idx = 1; // exceptional halt
    CFun *H = B.fun(CFun::Kind::Cont, HFun, {HParam},
                    {Cty::ptrUnknown()}, HBody);
    Cexp *Body = conv(Program, [this](CValue V) { return B.halt(V); });
    Cexp *Install =
        B.setter(CpsOp::SetHandler, {CValue::var(HFun)}, Body);
    return B.fix({H}, Install);
  }

  CVar maxVar() const { return B.maxVar(); }

private:
  //===--------------------------------------------------------------------===//
  // LTY synthesis and argument spreading
  //===--------------------------------------------------------------------===//

  const Lty *ltyOf(const Lexp *E) {
    switch (E->K) {
    case Lexp::Kind::Var: {
      auto It = Env.find(E->Var);
      return It != Env.end() ? It->second.second : LC.rboxedTy();
    }
    case Lexp::Kind::Int:
      return LC.intTy();
    case Lexp::Kind::Real:
      return LC.realTy();
    case Lexp::Kind::String:
      return LC.boxedTy();
    case Lexp::Kind::Fn:
      return LC.arrow(E->Ty, E->Ty2);
    case Lexp::Kind::Fix:
      return ltyOf(E->A1);
    case Lexp::Kind::App: {
      const Lty *F = ltyOf(E->A1);
      return F->kind() == LtyKind::Arrow ? F->to() : LC.rboxedTy();
    }
    case Lexp::Kind::Let:
      // Good enough for the positions ltyOf is used in: the interesting
      // lets in function position wrap a literal Fn (arrow coercions).
      return ltyOf(E->A2);
    case Lexp::Kind::Record:
      return E->Ty;
    case Lexp::Kind::Select: {
      const Lty *R = ltyOf(E->A1);
      if (R->isRecordLike() &&
          E->Index < static_cast<int>(R->fields().size()))
        return R->fields()[E->Index];
      if (R->kind() == LtyKind::PRecord) {
        for (const PField &F : R->pfields())
          if (F.Index == E->Index)
            return F.Ty;
      }
      return LC.rboxedTy();
    }
    case Lexp::Kind::Con:
      return LC.boxedTy();
    case Lexp::Kind::Decon:
      return LC.rboxedTy();
    case Lexp::Kind::Switch: {
      if (!E->Cases.empty())
        return ltyOf(E->Cases[0].Body);
      return E->Default ? ltyOf(E->Default) : LC.rboxedTy();
    }
    case Lexp::Kind::Prim:
      return primResLty(LC, E->Prim);
    case Lexp::Kind::Wrap:
      return E->Ty2 ? E->Ty2 : LC.boxedTy();
    case Lexp::Kind::Unwrap:
      return E->Ty;
    case Lexp::Kind::Raise:
      return E->Ty;
    case Lexp::Kind::Handle:
      return ltyOf(E->A1);
    }
    return LC.rboxedTy();
  }

  static Cty ctyOf(const Lty *T) {
    switch (T->kind()) {
    case LtyKind::Int:
      return Cty::intTy();
    case LtyKind::Real:
      return Cty::fltTy();
    case LtyKind::Record:
    case LtyKind::SRecord:
      return Cty::ptr(static_cast<int>(T->fields().size()));
    case LtyKind::Arrow:
      return Cty::funTy();
    default:
      return Cty::ptrUnknown();
    }
  }

  /// Returns the field LTYs if calls of this parameter type use the spread
  /// convention (paper Section 5.1, footnote 6).
  bool spreads(const Lty *ParamLty, std::vector<const Lty *> &Fields) {
    if (!Opts.TypedArgSpreading)
      return false;
    if (!ParamLty->isRecordLike())
      return false;
    size_t N = ParamLty->fields().size();
    if (N < 1 || N > static_cast<size_t>(Opts.MaxSpreadArgs))
      return false;
    Fields.assign(ParamLty->fields().begin(), ParamLty->fields().end());
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Core conversion
  //===--------------------------------------------------------------------===//

  void bind(LVar V, CValue CV, const Lty *T) { Env[V] = {CV, T}; }

  Cexp *conv(const Lexp *E, const MetaK &K) {
    switch (E->K) {
    case Lexp::Kind::Var: {
      auto It = Env.find(E->Var);
      assert(It != Env.end() && "unbound LEXP variable in CPS conversion");
      return K(It->second.first);
    }
    case Lexp::Kind::Int:
      return K(CValue::intC(E->IntVal));
    case Lexp::Kind::Real:
      return K(CValue::realC(E->RealVal));
    case Lexp::Kind::String:
      return K(CValue::strC(E->StrVal));
    case Lexp::Kind::Let: {
      const Lexp *Body = E->A2;
      LVar V = E->Var;
      const Lty *RhsLty = ltyOf(E->A1);
      return conv(E->A1, [this, Body, V, RhsLty, &K](CValue RV) {
        bind(V, RV, RhsLty);
        return conv(Body, K);
      });
    }
    case Lexp::Kind::Fn: {
      CVar FV = B.fresh();
      CFun *F = convertFunction(CFun::Kind::Escape, FV, E);
      Cexp *Rest = K(CValue::var(FV));
      return B.fix({F}, Rest);
    }
    case Lexp::Kind::Fix: {
      // Bind all names first (mutual recursion).
      std::vector<CVar> Names;
      for (const FixDef &D : E->Defs) {
        CVar FV = B.fresh();
        Names.push_back(FV);
        bind(D.Name, CValue::var(FV), LC.arrow(D.ParamLty, D.RetLty));
      }
      std::vector<CFun *> Funs;
      for (size_t I = 0; I < E->Defs.size(); ++I) {
        const FixDef &D = E->Defs[I];
        Funs.push_back(convertFnPieces(CFun::Kind::Escape, Names[I],
                                       D.Param, D.ParamLty, D.RetLty,
                                       D.Body));
      }
      Cexp *Rest = conv(E->A1, K);
      return B.fix(Funs, Rest);
    }
    case Lexp::Kind::App:
      return convertApp(E, K);
    case Lexp::Kind::Record: {
      if (E->Elems.empty())
        return K(CValue::intC(0));
      const Lty *RecLty = E->Ty;
      std::vector<const Lexp *> Elems(E->Elems.begin(), E->Elems.end());
      auto Fields = std::make_shared<std::vector<CValue>>();
      return convertList(Elems, Fields, [this, RecLty, Fields, &K]() {
        return buildRecord(RecLty, *Fields, K);
      });
    }
    case Lexp::Kind::Select: {
      const Lty *ArgLty = ltyOf(E->A1);
      int Index = E->Index;
      return conv(E->A1, [this, ArgLty, Index, &K](CValue V) {
        return emitSelect(V, ArgLty, Index, K);
      });
    }
    case Lexp::Kind::Con:
      return convertCon(E, K);
    case Lexp::Kind::Decon:
      return convertDecon(E, K);
    case Lexp::Kind::Switch:
      return convertSwitch(E, K);
    case Lexp::Kind::Prim:
      return convertPrim(E, K);
    case Lexp::Kind::Wrap: {
      if (E->Ty->kind() == LtyKind::Real) {
        return conv(E->A1, [this, &K](CValue V) {
          CVar W = B.fresh();
          return B.record(RecordKind::FloatBox, {{V, true}}, W,
                          K(CValue::var(W)));
        });
      }
      return conv(E->A1, K); // pointer/int view change: free
    }
    case Lexp::Kind::Unwrap: {
      if (E->Ty->kind() == LtyKind::Real) {
        return conv(E->A1, [this, &K](CValue V) {
          CVar W = B.fresh();
          return B.select(0, /*IsFloat=*/true, V, W, Cty::fltTy(),
                          K(CValue::var(W)));
        });
      }
      return conv(E->A1, K);
    }
    case Lexp::Kind::Raise: {
      return conv(E->A1, [this](CValue V) {
        CVar H = B.fresh();
        return B.looker(CpsOp::GetHandler, {}, H, Cty::cntTy(),
                        B.app(CValue::var(H), {V}));
      });
    }
    case Lexp::Kind::Handle:
      return convertHandle(E, K);
    }
    assert(false && "unhandled LEXP node in CPS conversion");
    return B.halt(CValue::intC(0));
  }

  /// Converts a list of expressions left to right, accumulating values.
  Cexp *convertList(const std::vector<const Lexp *> &Es,
                    std::shared_ptr<std::vector<CValue>> Out,
                    const std::function<Cexp *()> &Done, size_t I = 0) {
    if (I == Es.size())
      return Done();
    return conv(Es[I], [this, &Es, Out, &Done, I](CValue V) {
      Out->push_back(V);
      return convertList(Es, Out, Done, I + 1);
    });
  }

  /// Allocates a record of the given LTY from logical-order field values.
  Cexp *buildRecord(const Lty *RecLty, const std::vector<CValue> &Logical,
                    const MetaK &K) {
    RecordLayout L = layoutOf(RecLty);
    std::vector<CField> Phys(Logical.size());
    for (size_t I = 0; I < Logical.size(); ++I)
      Phys[L.Slots[I].Phys] = CField{Logical[I], L.Slots[I].IsFloat};
    CVar W = B.fresh();
    return B.record(L.kind(), Phys, W, K(CValue::var(W)));
  }

  Cexp *emitSelect(CValue V, const Lty *ArgLty, int LogicalIdx,
                   const MetaK &K) {
    CVar W = B.fresh();
    if (ArgLty->isRecordLike()) {
      RecordLayout L = layoutOf(ArgLty);
      assert(LogicalIdx < static_cast<int>(L.Slots.size()));
      const Lty *FieldLty = ArgLty->fields()[LogicalIdx];
      return B.select(L.Slots[LogicalIdx].Phys,
                      L.Slots[LogicalIdx].IsFloat, V, W, ctyOf(FieldLty),
                      K(CValue::var(W)));
    }
    // Standard boxed / partial record: all fields are words in logical
    // order.
    return B.select(LogicalIdx, /*IsFloat=*/false, V, W, Cty::ptrUnknown(),
                    K(CValue::var(W)));
  }

  //===--------------------------------------------------------------------===//
  // Functions and calls
  //===--------------------------------------------------------------------===//

  CFun *convertFunction(CFun::Kind FK, CVar Name, const Lexp *FnExp) {
    assert(FnExp->K == Lexp::Kind::Fn);
    return convertFnPieces(FK, Name, FnExp->Var, FnExp->Ty, FnExp->Ty2,
                           FnExp->A1);
  }

  CFun *convertFnPieces(CFun::Kind FK, CVar Name, LVar ParamVar,
                        const Lty *ParamLty, const Lty *RetLty,
                        const Lexp *Body) {
    (void)RetLty;
    std::vector<CVar> Params;
    std::vector<Cty> ParamTys;
    std::vector<const Lty *> SpreadFields;
    Cexp *Entry;
    CVar KVar = 0;

    if (spreads(ParamLty, SpreadFields)) {
      // Components arrive in registers; rebuild the record lazily (the CPS
      // contracter deletes it when the body only selects from it).
      std::vector<CValue> Logical;
      for (const Lty *FT : SpreadFields) {
        CVar P = B.fresh();
        Params.push_back(P);
        ParamTys.push_back(ctyOf(FT));
        Logical.push_back(CValue::var(P));
      }
      KVar = B.fresh();
      Params.push_back(KVar);
      ParamTys.push_back(Cty::cntTy());
      Entry = buildRecord(ParamLty, Logical,
                          [this, ParamVar, ParamLty, KVar,
                           Body](CValue RV) {
                            bind(ParamVar, RV, ParamLty);
                            return convBodyWithRet(Body, KVar);
                          });
    } else {
      CVar P = B.fresh();
      Params.push_back(P);
      ParamTys.push_back(ctyOf(ParamLty));
      KVar = B.fresh();
      Params.push_back(KVar);
      ParamTys.push_back(Cty::cntTy());
      bind(ParamVar, CValue::var(P), ParamLty);
      Entry = convBodyWithRet(Body, KVar);
    }
    return B.fun(FK, Name, Params, ParamTys, Entry);
  }

  Cexp *convBodyWithRet(const Lexp *Body, CVar KVar) {
    return conv(Body, [this, KVar](CValue R) {
      return B.app(CValue::var(KVar), {R});
    });
  }

  Cexp *convertApp(const Lexp *E, const MetaK &K) {
    const Lty *FunLty = ltyOf(E->A1);
    const Lexp *ArgExp = E->A2;
    return conv(E->A1, [this, FunLty, ArgExp, &K](CValue FV) {
      return conv(ArgExp, [this, FunLty, FV, &K](CValue AV) {
        // Make the return continuation.
        const Lty *ResLty = FunLty->kind() == LtyKind::Arrow
                                ? FunLty->to()
                                : LC.rboxedTy();
        CVar KName = B.fresh();
        CVar RParam = B.fresh();
        Cexp *KBody = K(CValue::var(RParam));
        CFun *KF = B.fun(CFun::Kind::Cont, KName, {RParam},
                         {ctyOf(ResLty)}, KBody);

        std::vector<const Lty *> SpreadFields;
        const Lty *ParamLty = FunLty->kind() == LtyKind::Arrow
                                  ? FunLty->from()
                                  : LC.rboxedTy();
        Cexp *CallSite;
        if (spreads(ParamLty, SpreadFields)) {
          // Spread: pass the components in registers.
          RecordLayout L = layoutOf(ParamLty);
          std::vector<CValue> Args;
          Cexp *Call = nullptr;
          // Emit selects (contracted away when AV is a fresh record).
          std::vector<CVar> Sel(SpreadFields.size());
          for (size_t I = 0; I < SpreadFields.size(); ++I)
            Sel[I] = B.fresh();
          for (size_t I = 0; I < SpreadFields.size(); ++I)
            Args.push_back(CValue::var(Sel[I]));
          Args.push_back(CValue::var(KName));
          Call = B.app(FV, Args);
          for (size_t I = SpreadFields.size(); I-- > 0;)
            Call = B.select(L.Slots[I].Phys, L.Slots[I].IsFloat, AV,
                            Sel[I], ctyOf(SpreadFields[I]), Call);
          CallSite = Call;
        } else {
          CallSite = B.app(FV, {AV, CValue::var(KName)});
        }
        return B.fix({KF}, CallSite);
      });
    });
  }

  //===--------------------------------------------------------------------===//
  // Constructors and switches
  //===--------------------------------------------------------------------===//

  Cexp *convertCon(const Lexp *E, const MetaK &K) {
    const DataCon *DC = E->DC;
    switch (DC->Rep.K) {
    case ConRepKind::Constant:
      return K(CValue::intC(DC->Rep.Tag));
    case ConRepKind::Transparent:
      return conv(E->A1, K);
    case ConRepKind::TaggedBox:
      return conv(E->A1, [this, DC, &K](CValue V) {
        CVar W = B.fresh();
        return B.record(RecordKind::Std,
                        {{CValue::intC(DC->Rep.Tag), false}, {V, false}},
                        W, K(CValue::var(W)));
      });
    case ConRepKind::Ref:
      return conv(E->A1, [this, &K](CValue V) {
        CVar W = B.fresh();
        return B.record(RecordKind::Ref, {{V, false}}, W,
                        K(CValue::var(W)));
      });
    }
    return K(CValue::intC(0));
  }

  Cexp *convertDecon(const Lexp *E, const MetaK &K) {
    const DataCon *DC = E->DC;
    switch (DC->Rep.K) {
    case ConRepKind::Constant:
      return K(CValue::intC(0)); // no payload
    case ConRepKind::Transparent:
      return conv(E->A1, K);
    case ConRepKind::TaggedBox:
      return conv(E->A1, [this, &K](CValue V) {
        CVar W = B.fresh();
        return B.select(1, false, V, W, Cty::ptrUnknown(),
                        K(CValue::var(W)));
      });
    case ConRepKind::Ref:
      return conv(E->A1, [this, &K](CValue V) {
        CVar W = B.fresh();
        return B.looker(CpsOp::LoadCell, {V, CValue::intC(0)}, W,
                        Cty::ptrUnknown(), K(CValue::var(W)));
      });
    }
    return K(CValue::intC(0));
  }

  /// Reifies the meta-continuation as a join point so switch arms share it.
  Cexp *withJoin(const Lty *ResLty, const MetaK &K,
                 const std::function<Cexp *(const MetaK &)> &Build) {
    CVar JName = B.fresh();
    CVar JParam = B.fresh();
    Cexp *JBody = K(CValue::var(JParam));
    CFun *JF =
        B.fun(CFun::Kind::Cont, JName, {JParam}, {ctyOf(ResLty)}, JBody);
    MetaK Jump = [this, JName](CValue V) {
      return B.app(CValue::var(JName), {V});
    };
    Cexp *Body = Build(Jump);
    return B.fix({JF}, Body);
  }

  /// Emits a comparison branch directly from a comparison primitive
  /// (fusing `if a < b ...` into one BRANCH, Section 5.2's common case).
  bool isComparisonPrim(PrimId P, BranchOp &Op, bool &IsFloat) {
    IsFloat = false;
    switch (P) {
    case PrimId::ILt: Op = BranchOp::Ilt; return true;
    case PrimId::ILe: Op = BranchOp::Ile; return true;
    case PrimId::IGt: Op = BranchOp::Igt; return true;
    case PrimId::IGe: Op = BranchOp::Ige; return true;
    case PrimId::IEq: Op = BranchOp::Ieq; return true;
    case PrimId::PtrEq: Op = BranchOp::Ieq; return true;
    case PrimId::FLt: Op = BranchOp::Flt; IsFloat = true; return true;
    case PrimId::FLe: Op = BranchOp::Fle; IsFloat = true; return true;
    case PrimId::FGt: Op = BranchOp::Fgt; IsFloat = true; return true;
    case PrimId::FGe: Op = BranchOp::Fge; IsFloat = true; return true;
    case PrimId::FEq: Op = BranchOp::Feq; IsFloat = true; return true;
    default:
      return false;
    }
  }

  Cexp *convertSwitch(const Lexp *E, const MetaK &K) {
    const Lty *ResLty = ltyOf(E);
    return withJoin(ResLty, K, [this, E](const MetaK &J) {
      // Fused branch: switch-on-comparison over the two bool constants.
      if (E->SK == SwitchKind::Con && E->A1->K == Lexp::Kind::Prim &&
          E->Cases.size() == 2 && !E->Cases[0].Con->Payload &&
          !E->Cases[1].Con->Payload) {
        BranchOp Op;
        bool IsFloat;
        if (isComparisonPrim(E->A1->Prim, Op, IsFloat)) {
          const Lexp *Prim = E->A1;
          const Lexp *TrueBody = nullptr;
          const Lexp *FalseBody = nullptr;
          for (const SwitchCase &C : E->Cases) {
            if (C.Con->Rep.Tag == 1)
              TrueBody = C.Body;
            else
              FalseBody = C.Body;
          }
          if (TrueBody && FalseBody) {
            std::vector<const Lexp *> Args(Prim->Elems.begin(),
                                           Prim->Elems.end());
            auto Vals = std::make_shared<std::vector<CValue>>();
            return convertList(
                Args, Vals, [this, Op, Vals, TrueBody, FalseBody, &J]() {
                  return B.branch(Op, *Vals, conv(TrueBody, J),
                                  conv(FalseBody, J));
                });
          }
        }
      }
      const Lexp *Scrut = E->A1;
      return conv(Scrut, [this, E, &J](CValue SV) {
        switch (E->SK) {
        case SwitchKind::Int:
          return intSwitch(E, SV, J);
        case SwitchKind::Str:
          return strSwitch(E, SV, J, 0);
        case SwitchKind::Con:
          return conSwitch(E, SV, J);
        }
        return B.halt(CValue::intC(0));
      });
    });
  }

  Cexp *intSwitch(const Lexp *E, CValue SV, const MetaK &J,
                  size_t I = 0) {
    if (I == E->Cases.size())
      return conv(E->Default, J);
    const SwitchCase &C = E->Cases[I];
    return B.branch(BranchOp::Ieq, {SV, CValue::intC(C.IntKey)},
                    conv(C.Body, J), intSwitch(E, SV, J, I + 1));
  }

  Cexp *strSwitch(const Lexp *E, CValue SV, const MetaK &J, size_t I) {
    if (I == E->Cases.size())
      return conv(E->Default, J);
    const SwitchCase &C = E->Cases[I];
    CVar R = B.fresh();
    return B.ccall(CpsOp::RtStrEq, {SV, CValue::strC(C.StrKey)}, R,
                   Cty::intTy(),
                   B.branch(BranchOp::Ieq,
                            {CValue::var(R), CValue::intC(1)},
                            conv(C.Body, J), strSwitch(E, SV, J, I + 1)));
  }

  Cexp *conSwitch(const Lexp *E, CValue SV, const MetaK &J) {
    // Partition the cases by representation.
    std::vector<const SwitchCase *> Constants;
    std::vector<const SwitchCase *> Tagged;
    const SwitchCase *Transparent = nullptr;
    TyCon *DT = nullptr;
    for (const SwitchCase &C : E->Cases) {
      DT = C.Con->Owner;
      switch (C.Con->Rep.K) {
      case ConRepKind::Constant:
        Constants.push_back(&C);
        break;
      case ConRepKind::Transparent:
        Transparent = &C;
        break;
      case ConRepKind::TaggedBox:
        Tagged.push_back(&C);
        break;
      case ConRepKind::Ref:
        Transparent = &C;
        break;
      }
    }
    // Exhaustiveness: count constructor shapes in the datatype.
    int DtConstants = 0, DtCarriers = 0;
    if (DT) {
      for (const DataCon *DC : DT->Cons)
        (DC->Payload ? DtCarriers : DtConstants)++;
    }
    auto Fail = [this, E, &J]() -> Cexp * {
      if (E->Default)
        return conv(E->Default, J);
      // Unreachable by exhaustiveness; keep the program well-formed.
      return B.halt(CValue::intC(-2));
    };

    // Chain over constant tags (SV compared as a tagged int).
    std::function<Cexp *(size_t, bool)> ConstChain =
        [&](size_t I, bool Exhaustive) -> Cexp * {
      if (I == Constants.size())
        return Fail();
      if (Exhaustive && I + 1 == Constants.size())
        return conv(Constants[I]->Body, J);
      return B.branch(
          BranchOp::Ieq,
          {SV, CValue::intC(Constants[I]->Con->Rep.Tag)},
          conv(Constants[I]->Body, J), ConstChain(I + 1, Exhaustive));
    };

    bool HaveCarrierCases = Transparent || !Tagged.empty();
    if (!HaveCarrierCases && DtCarriers == 0) {
      // Pure enumeration.
      bool Exhaustive = !E->Default && static_cast<int>(Constants.size()) ==
                                           DtConstants;
      return ConstChain(0, Exhaustive);
    }

    // Boxed side.
    auto BoxedSide = [&]() -> Cexp * {
      if (Transparent)
        return conv(Transparent->Body, J);
      if (Tagged.empty())
        return Fail();
      // Select the tag, then chain.
      CVar Tag = B.fresh();
      bool Exhaustive =
          !E->Default && static_cast<int>(Tagged.size()) == DtCarriers;
      std::function<Cexp *(size_t)> TagChain = [&](size_t I) -> Cexp * {
        if (I == Tagged.size())
          return Fail();
        if (Exhaustive && I + 1 == Tagged.size())
          return conv(Tagged[I]->Body, J);
        return B.branch(BranchOp::Ieq,
                        {CValue::var(Tag),
                         CValue::intC(Tagged[I]->Con->Rep.Tag)},
                        conv(Tagged[I]->Body, J), TagChain(I + 1));
      };
      return B.select(0, false, SV, Tag, Cty::intTy(), TagChain(0));
    };

    if (Constants.empty() && DtConstants == 0)
      return BoxedSide();

    // Mixed: discriminate pointer vs tagged int first.
    bool IntExhaustive =
        static_cast<int>(Constants.size()) == DtConstants && !E->Default;
    Cexp *IntSide = Constants.empty() ? Fail() : ConstChain(0, IntExhaustive);
    return B.branch(BranchOp::IsBoxed, {SV}, BoxedSide(), IntSide);
  }

  //===--------------------------------------------------------------------===//
  // Primitives
  //===--------------------------------------------------------------------===//

  Cexp *convertPrim(const Lexp *E, const MetaK &K) {
    PrimId P = E->Prim;

    // Control primitives first.
    if (P == PrimId::Callcc)
      return convertCallcc(E, K);
    if (P == PrimId::Throw)
      return convertThrow(E, K);

    std::vector<const Lexp *> ArgExps(E->Elems.begin(), E->Elems.end());
    auto Vals = std::make_shared<std::vector<CValue>>();
    return convertList(ArgExps, Vals, [this, E, P, Vals, &K]() {
      const std::vector<CValue> &V = *Vals;
      CVar W = B.fresh();
      CValue WV = CValue::var(W);
      Cty ResT = ctyOf(primResLty(LC, P));
      switch (P) {
      case PrimId::IAdd:
        return B.arith(CpsOp::IAdd, V, W, ResT, K(WV));
      case PrimId::ISub:
        return B.arith(CpsOp::ISub, V, W, ResT, K(WV));
      case PrimId::IMul:
        return B.arith(CpsOp::IMul, V, W, ResT, K(WV));
      case PrimId::IDiv:
      case PrimId::IMod: {
        CpsOp Op = P == PrimId::IDiv ? CpsOp::IDiv : CpsOp::IMod;
        // Division by zero raises Div through the current handler. The
        // translator cannot reach the Div tag here, so the runtime traps:
        // the VM raises via the handler register.
        return B.arith(Op, V, W, ResT, K(WV));
      }
      case PrimId::INeg:
        return B.arith(CpsOp::INeg, V, W, ResT, K(WV));
      case PrimId::IAbs:
        return B.arith(CpsOp::IAbs, V, W, ResT, K(WV));
      case PrimId::FAdd:
        return B.arith(CpsOp::FAdd, V, W, ResT, K(WV));
      case PrimId::FSub:
        return B.arith(CpsOp::FSub, V, W, ResT, K(WV));
      case PrimId::FMul:
        return B.arith(CpsOp::FMul, V, W, ResT, K(WV));
      case PrimId::FDiv:
        return B.arith(CpsOp::FDiv, V, W, ResT, K(WV));
      case PrimId::FNeg:
        return B.arith(CpsOp::FNeg, V, W, ResT, K(WV));
      case PrimId::FAbs:
        return B.arith(CpsOp::FAbs, V, W, ResT, K(WV));
      case PrimId::Floor:
        return B.arith(CpsOp::Floor, V, W, ResT, K(WV));
      case PrimId::RealFromInt:
        return B.arith(CpsOp::RealFromInt, V, W, ResT, K(WV));
      case PrimId::Sqrt:
        return B.arith(CpsOp::FSqrt, V, W, ResT, K(WV));
      case PrimId::Sin:
        return B.arith(CpsOp::FSin, V, W, ResT, K(WV));
      case PrimId::Cos:
        return B.arith(CpsOp::FCos, V, W, ResT, K(WV));
      case PrimId::Atan:
        return B.arith(CpsOp::FAtan, V, W, ResT, K(WV));
      case PrimId::Exp:
        return B.arith(CpsOp::FExp, V, W, ResT, K(WV));
      case PrimId::Ln:
        return B.arith(CpsOp::FLn, V, W, ResT, K(WV));

      case PrimId::ILt: case PrimId::ILe: case PrimId::IGt:
      case PrimId::IGe: case PrimId::IEq: case PrimId::PtrEq:
      case PrimId::FLt: case PrimId::FLe: case PrimId::FGt:
      case PrimId::FGe: case PrimId::FEq: {
        BranchOp Op;
        bool IsFloat;
        isComparisonPrim(P, Op, IsFloat);
        return withJoin(LC.boxedTy(), K, [this, Op, &V](const MetaK &J) {
          return B.branch(Op, V, J(CValue::intC(1)), J(CValue::intC(0)));
        });
      }

      case PrimId::StrSize:
        return B.looker(CpsOp::SizeOf, V, W, ResT, K(WV));
      case PrimId::StrSub:
        return B.looker(CpsOp::LoadByte, V, W, ResT, K(WV));
      case PrimId::Ord:
        return B.looker(CpsOp::LoadByte, {V[0], CValue::intC(0)}, W, ResT,
                        K(WV));
      case PrimId::StrEq:
        return B.ccall(CpsOp::RtStrEq, V, W, ResT, K(WV));
      case PrimId::StrCmp:
        return B.ccall(CpsOp::RtStrCmp, V, W, ResT, K(WV));
      case PrimId::StrConcat:
        return B.ccall(CpsOp::RtConcat, V, W, ResT, K(WV));
      case PrimId::Substring:
        return B.ccall(CpsOp::RtSubstring, V, W, ResT, K(WV));
      case PrimId::Chr:
        return B.ccall(CpsOp::RtChr, V, W, ResT, K(WV));
      case PrimId::IntToString:
        return B.ccall(CpsOp::RtItos, V, W, ResT, K(WV));
      case PrimId::RealToString:
        return B.ccall(CpsOp::RtRtos, V, W, ResT, K(WV));
      case PrimId::Print:
        return B.ccall(CpsOp::RtPrint, V, W, ResT, K(WV));
      case PrimId::MakeTag:
        return B.ccall(CpsOp::RtMakeTag, V, W, ResT, K(WV));
      case PrimId::PolyEq:
        return B.ccall(CpsOp::RtPolyEq, V, W, ResT, K(WV));

      case PrimId::Deref:
        return B.looker(CpsOp::LoadCell, {V[0], CValue::intC(0)}, W, ResT,
                        K(WV));
      case PrimId::Assign:
        return B.setter(CpsOp::StoreCell,
                        {V[0], CValue::intC(0), V[1]},
                        K(CValue::intC(0)));
      case PrimId::ArrayMake:
        return B.ccall(CpsOp::RtArrayMake, V, W, ResT, K(WV));
      case PrimId::ArrayLength:
        return B.looker(CpsOp::SizeOf, V, W, ResT, K(WV));
      case PrimId::ArraySub: {
        // Bounds check, then load; out of bounds raises through the
        // handler (the VM's checked load).
        return B.looker(CpsOp::LoadCell, {V[0], V[1]}, W, ResT, K(WV));
      }
      case PrimId::ArrayUpdate:
        return B.setter(CpsOp::StoreCell, {V[0], V[1], V[2]},
                        K(CValue::intC(0)));
      default:
        assert(false && "unexpected primitive in CPS conversion");
        return B.halt(CValue::intC(0));
      }
    });
  }

  Cexp *convertCallcc(const Lexp *E, const MetaK &K) {
    // callcc f: reify the current continuation as a value and hand it to
    // f both as its argument and as its return continuation.
    return conv(E->Elems[0], [this, &K](CValue FV) {
      CVar JName = B.fresh();
      CVar JParam = B.fresh();
      Cexp *JBody = K(CValue::var(JParam));
      CFun *JF = B.fun(CFun::Kind::Cont, JName, {JParam},
                       {Cty::ptrUnknown()}, JBody);
      Cexp *Call =
          B.app(FV, {CValue::var(JName), CValue::var(JName)});
      return B.fix({JF}, Call);
    });
  }

  Cexp *convertThrow(const Lexp *E, const MetaK &K) {
    // throw k: a function value that invokes the reified continuation.
    return conv(E->Elems[0], [this, &K](CValue KV) {
      CVar FName = B.fresh();
      CVar X = B.fresh();
      CVar Dead = B.fresh(); // the never-used return continuation
      Cexp *Body = B.app(KV, {CValue::var(X)});
      CFun *F = B.fun(CFun::Kind::Escape, FName, {X, Dead},
                      {Cty::ptrUnknown(), Cty::cntTy()}, Body);
      Cexp *Rest = K(CValue::var(FName));
      return B.fix({F}, Rest);
    });
  }

  //===--------------------------------------------------------------------===//
  // Exceptions
  //===--------------------------------------------------------------------===//

  Cexp *convertHandle(const Lexp *E, const MetaK &K) {
    const Lexp *Body = E->A1;
    const Lexp *Handler = E->A2; // an Fn from exn
    assert(Handler->K == Lexp::Kind::Fn);
    const Lty *ResLty = ltyOf(Body);

    CVar H0 = B.fresh(); // saved handler
    return B.looker(
        CpsOp::GetHandler, {}, H0, Cty::cntTy(),
        withJoin(ResLty, K, [this, Body, Handler, H0](const MetaK &J) {
          // New handler: restore, then run the handler body.
          CVar HName = B.fresh();
          CVar EParam = B.fresh();
          bind(Handler->Var, CValue::var(EParam), LC.boxedTy());
          Cexp *HBody = B.setter(
              CpsOp::SetHandler, {CValue::var(H0)},
              conv(Handler->A1, J));
          CFun *HF = B.fun(CFun::Kind::Cont, HName, {EParam},
                           {Cty::ptrUnknown()}, HBody);

          Cexp *Normal = conv(Body, [this, H0, &J](CValue V) {
            return B.setter(CpsOp::SetHandler, {CValue::var(H0)}, J(V));
          });
          return B.fix(
              {HF},
              B.setter(CpsOp::SetHandler, {CValue::var(HName)}, Normal));
        }));
  }

  Arena &A;
  LtyContext &LC;
  const CompilerOptions &Opts;
  CpsBuilder B;
  std::unordered_map<LVar, std::pair<CValue, const Lty *>> Env;
};

} // namespace

CpsConvertResult smltc::convertToCps(Arena &A, LtyContext &LC,
                                     const CompilerOptions &Opts,
                                     const Lexp *Program) {
  Converter C(A, LC, Opts);
  CpsConvertResult R;
  R.Program = C.convertProgram(Program);
  R.MaxVar = C.maxVar();
  return R;
}
