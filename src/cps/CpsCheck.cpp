//===- cps/CpsCheck.cpp - CPS well-formedness checking ---------------------------===//

#include "cps/CpsCheck.h"

#include <unordered_set>

using namespace smltc;

namespace {

class Checker {
public:
  CpsCheckResult Result;

  void bindVar(CVar V) {
    if (!Bound.insert(V).second)
      fail("variable v" + std::to_string(V) + " bound twice");
  }

  void useValue(const CValue &V) {
    if (V.isVar() && !Bound.count(V.V))
      fail("variable v" + std::to_string(V.V) + " used before binding");
  }

  void check(const Cexp *E) {
    if (!Result.Ok || !E)
      return;
    ++Result.NodesChecked;
    switch (E->K) {
    case Cexp::Kind::Record:
      for (const CField &F : E->Fields)
        useValue(F.V);
      bindVar(E->W);
      check(E->C1);
      return;
    case Cexp::Kind::Select:
      useValue(E->F);
      bindVar(E->W);
      check(E->C1);
      return;
    case Cexp::Kind::App:
      useValue(E->F);
      for (const CValue &V : E->Args)
        useValue(V);
      return;
    case Cexp::Kind::Fix:
      for (const CFun *F : E->Funs)
        bindVar(F->Name);
      for (const CFun *F : E->Funs) {
        if (F->Params.size() != F->ParamTys.size()) {
          fail("function param/type arity mismatch");
          return;
        }
        for (CVar P : F->Params)
          bindVar(P);
        check(F->Body);
      }
      check(E->C1);
      return;
    case Cexp::Kind::Branch:
      for (const CValue &V : E->Args)
        useValue(V);
      check(E->C1);
      check(E->C2);
      return;
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall:
      for (const CValue &V : E->Args)
        useValue(V);
      bindVar(E->W);
      check(E->C1);
      return;
    case Cexp::Kind::Setter:
      for (const CValue &V : E->Args)
        useValue(V);
      check(E->C1);
      return;
    case Cexp::Kind::Halt:
      useValue(E->F);
      return;
    }
  }

private:
  void fail(std::string Msg) {
    if (Result.Ok) {
      Result.Ok = false;
      Result.Error = std::move(Msg);
    }
  }
  std::unordered_set<CVar> Bound;
};

} // namespace

CpsCheckResult smltc::checkCps(const Cexp *Program) {
  Checker C;
  C.check(Program);
  return C.Result;
}
