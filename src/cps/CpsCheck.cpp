//===- cps/CpsCheck.cpp - CPS well-formedness checking ---------------------------===//

#include "cps/CpsCheck.h"

#include <algorithm>
#include <unordered_set>

using namespace smltc;

namespace {

class Checker {
public:
  CpsCheckResult Result;

  void bindVar(CVar V) {
    if (!Bound.insert(V).second)
      fail("variable v" + std::to_string(V) + " bound twice");
  }

  void useValue(const CValue &V) {
    if (V.isVar() && !Bound.count(V.V))
      fail("variable v" + std::to_string(V.V) + " used before binding");
  }

  void check(const Cexp *E) {
    if (!Result.Ok || !E)
      return;
    ++Result.NodesChecked;
    switch (E->K) {
    case Cexp::Kind::Record:
      for (const CField &F : E->Fields)
        useValue(F.V);
      bindVar(E->W);
      check(E->C1);
      return;
    case Cexp::Kind::Select:
      useValue(E->F);
      bindVar(E->W);
      check(E->C1);
      return;
    case Cexp::Kind::App:
      useValue(E->F);
      for (const CValue &V : E->Args)
        useValue(V);
      return;
    case Cexp::Kind::Fix:
      for (const CFun *F : E->Funs)
        bindVar(F->Name);
      for (const CFun *F : E->Funs) {
        if (F->Params.size() != F->ParamTys.size()) {
          fail("function param/type arity mismatch");
          return;
        }
        for (CVar P : F->Params)
          bindVar(P);
        check(F->Body);
      }
      check(E->C1);
      return;
    case Cexp::Kind::Branch:
      for (const CValue &V : E->Args)
        useValue(V);
      check(E->C1);
      check(E->C2);
      return;
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall:
      for (const CValue &V : E->Args)
        useValue(V);
      bindVar(E->W);
      check(E->C1);
      return;
    case Cexp::Kind::Setter:
      for (const CValue &V : E->Args)
        useValue(V);
      check(E->C1);
      return;
    case Cexp::Kind::Halt:
      useValue(E->F);
      return;
    }
  }

private:
  void fail(std::string Msg) {
    if (Result.Ok) {
      Result.Ok = false;
      Result.Error = std::move(Msg);
    }
  }
  std::unordered_set<CVar> Bound;
};

} // namespace

CpsCheckResult smltc::checkCps(const Cexp *Program) {
  Checker C;
  C.check(Program);
  return C.Result;
}

namespace {

/// Recounts occurrences over the physical tree, resolving each value
/// through the caller's substitution first (an incrementally maintained
/// census describes the virtual, fully substituted tree).
class CensusRecounter {
public:
  CensusRecounter(size_t N, const std::function<CValue(CValue)> &Resolve)
      : Uses(N, 0), Calls(N, 0), Resolve(Resolve) {}

  std::vector<int32_t> Uses;
  std::vector<int32_t> Calls;
  size_t Nodes = 0;

  void count(const Cexp *E) {
    for (;;) {
      ++Nodes;
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          val(F.V, false);
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        val(E->F, false);
        E = E->C1;
        continue;
      case Cexp::Kind::App:
        val(E->F, true);
        for (const CValue &V : E->Args)
          val(V, false);
        return;
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs)
          count(F->Body);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args)
          val(V, false);
        count(E->C1);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          val(V, false);
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        val(E->F, false);
        return;
      }
    }
  }

private:
  void val(CValue V, bool Call) {
    if (Resolve)
      V = Resolve(V);
    if (!V.isVar() || static_cast<size_t>(V.V) >= Uses.size())
      return;
    ++Uses[V.V];
    if (Call)
      ++Calls[V.V];
  }

  const std::function<CValue(CValue)> &Resolve;
};

} // namespace

CpsCheckResult
smltc::checkCpsCensus(const Cexp *Program,
                      const std::vector<int32_t> &UseCounts,
                      const std::vector<int32_t> &CallCounts,
                      const std::function<CValue(CValue)> &Resolve) {
  CpsCheckResult R;
  if (!Program)
    return R;
  size_t N = std::min(UseCounts.size(), CallCounts.size());
  CensusRecounter C(N, Resolve);
  C.count(Program);
  R.NodesChecked = C.Nodes;
  for (size_t I = 0; I < N; ++I) {
    if (C.Uses[I] != UseCounts[I]) {
      R.Ok = false;
      R.Error = "census use count drifted for v" + std::to_string(I) +
                ": maintained " + std::to_string(UseCounts[I]) +
                ", recounted " + std::to_string(C.Uses[I]);
      return R;
    }
    if (C.Calls[I] != CallCounts[I]) {
      R.Ok = false;
      R.Error = "census call count drifted for v" + std::to_string(I) +
                ": maintained " + std::to_string(CallCounts[I]) +
                ", recounted " + std::to_string(C.Calls[I]);
      return R;
    }
  }
  return R;
}
