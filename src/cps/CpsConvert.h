//===- cps/CpsConvert.h - LEXP to CPS conversion -------------------------------===//
///
/// \file
/// Converts LEXP into CPS (paper Section 5.1). This phase takes the
/// representation decisions:
///   - record layouts: flat float records, mixed records with floats
///     reordered first (Figure 1b/1c), or standard boxed;
///   - argument-passing conventions: under typed spreading, any function
///     whose argument LTY is RECORDty[t1..tn] (n <= 10) receives its
///     components in registers, even when it escapes;
///   - WRAP/UNWRAP lower to float boxing/unboxing or to nothing;
///   - constructor representations (constant / transparent / tagged box);
///   - exceptions lower to get/set-handler, callcc reifies continuations.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CPS_CPSCONVERT_H
#define SMLTC_CPS_CPSCONVERT_H

#include "cps/Cps.h"
#include "driver/Options.h"
#include "lexp/Lexp.h"
#include "lty/Lty.h"

namespace smltc {

struct CpsConvertResult {
  Cexp *Program = nullptr;
  CVar MaxVar = 0;
};

/// Converts a whole LEXP program (as produced by the Translator) into CPS.
CpsConvertResult convertToCps(Arena &A, LtyContext &LC,
                              const CompilerOptions &Opts,
                              const Lexp *Program);

/// Physical layout of a record type: for each logical field, its physical
/// slot and whether it is stored as a raw float. Floats come first
/// (Figure 1c reordering), so the descriptor is (floatlen, wordlen).
struct RecordLayout {
  struct Slot {
    int Phys;
    bool IsFloat;
  };
  std::vector<Slot> Slots;
  int NumFloats = 0;
  int NumWords = 0;

  RecordKind kind() const {
    return NumFloats > 0 ? RecordKind::Mixed : RecordKind::Std;
  }
};

/// Computes the layout of a RECORD/SRECORD lty under the given mode
/// (Standard mode never has float fields because REAL lowers to RBOXED).
RecordLayout layoutOf(const Lty *RecordTy);

} // namespace smltc

#endif // SMLTC_CPS_CPSCONVERT_H
