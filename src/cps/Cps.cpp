//===- cps/Cps.cpp - CPS IR helpers --------------------------------------------===//

#include "cps/Cps.h"

#include <sstream>

using namespace smltc;

Cexp *CpsBuilder::record(RecordKind RK, const std::vector<CField> &Fields,
                         CVar W, Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Record);
  E->RK = RK;
  E->Fields = Span<CField>::copy(A, Fields);
  E->W = W;
  E->WTy = Cty::ptr(static_cast<int>(Fields.size()));
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::select(int Idx, bool IsFloat, CValue V, CVar W, Cty T,
                         Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Select);
  E->Idx = Idx;
  E->IsFloat = IsFloat;
  E->F = V;
  E->W = W;
  E->WTy = T;
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::app(CValue F, const std::vector<CValue> &Args) {
  Cexp *E = make(Cexp::Kind::App);
  E->F = F;
  E->Args = Span<CValue>::copy(A, Args);
  return E;
}

Cexp *CpsBuilder::fix(const std::vector<CFun *> &Funs, Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Fix);
  E->Funs = Span<CFun *>::copy(A, Funs);
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::branch(BranchOp Op, const std::vector<CValue> &Args,
                         Cexp *Then, Cexp *Else) {
  Cexp *E = make(Cexp::Kind::Branch);
  E->BOp = Op;
  E->Args = Span<CValue>::copy(A, Args);
  E->C1 = Then;
  E->C2 = Else;
  return E;
}

Cexp *CpsBuilder::arith(CpsOp Op, const std::vector<CValue> &Args, CVar W,
                        Cty T, Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Arith);
  E->Op = Op;
  E->Args = Span<CValue>::copy(A, Args);
  E->W = W;
  E->WTy = T;
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::pure(CpsOp Op, const std::vector<CValue> &Args, CVar W,
                       Cty T, Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Pure);
  E->Op = Op;
  E->Args = Span<CValue>::copy(A, Args);
  E->W = W;
  E->WTy = T;
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::looker(CpsOp Op, const std::vector<CValue> &Args, CVar W,
                         Cty T, Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Looker);
  E->Op = Op;
  E->Args = Span<CValue>::copy(A, Args);
  E->W = W;
  E->WTy = T;
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::setter(CpsOp Op, const std::vector<CValue> &Args,
                         Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::Setter);
  E->Op = Op;
  E->Args = Span<CValue>::copy(A, Args);
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::ccall(CpsOp Op, const std::vector<CValue> &Args, CVar W,
                        Cty T, Cexp *Cont) {
  Cexp *E = make(Cexp::Kind::CCall);
  E->Op = Op;
  E->Args = Span<CValue>::copy(A, Args);
  E->W = W;
  E->WTy = T;
  E->C1 = Cont;
  return E;
}

Cexp *CpsBuilder::halt(CValue V) {
  Cexp *E = make(Cexp::Kind::Halt);
  E->F = V;
  return E;
}

CFun *CpsBuilder::fun(CFun::Kind K, CVar Name,
                      const std::vector<CVar> &Params,
                      const std::vector<Cty> &ParamTys, Cexp *Body) {
  CFun *F = A.create<CFun>();
  F->K = K;
  F->Name = Name;
  F->Params = Span<CVar>::copy(A, Params);
  F->ParamTys = Span<Cty>::copy(A, ParamTys);
  F->Body = Body;
  return F;
}

namespace {

void emitValue(std::ostringstream &OS, const CValue &V) {
  switch (V.K) {
  case CValue::Kind::Var:
    OS << 'v' << V.V;
    return;
  case CValue::Kind::Int:
    OS << V.I;
    return;
  case CValue::Kind::Real:
    OS << V.R << 'f';
    return;
  case CValue::Kind::String:
    OS << '"' << V.S.str() << '"';
    return;
  case CValue::Kind::Label:
    OS << 'L' << V.I;
    return;
  }
}

void emit(std::ostringstream &OS, const Cexp *E, int Depth) {
  auto Indent = [&] {
    OS << '\n';
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  };
  Indent();
  switch (E->K) {
  case Cexp::Kind::Record:
    OS << "(record v" << E->W << " [";
    for (size_t I = 0; I < E->Fields.size(); ++I) {
      if (I)
        OS << ' ';
      emitValue(OS, E->Fields[I].V);
      if (E->Fields[I].IsFloat)
        OS << ":f";
    }
    OS << ']';
    emit(OS, E->C1, Depth);
    OS << ')';
    return;
  case Cexp::Kind::Select:
    OS << "(select v" << E->W << " = ";
    emitValue(OS, E->F);
    OS << '[' << E->Idx << (E->IsFloat ? ":f" : "") << ']';
    emit(OS, E->C1, Depth);
    OS << ')';
    return;
  case Cexp::Kind::App:
    OS << "(app ";
    emitValue(OS, E->F);
    for (const CValue &V : E->Args) {
      OS << ' ';
      emitValue(OS, V);
    }
    OS << ')';
    return;
  case Cexp::Kind::Fix:
    OS << "(fix";
    for (const CFun *F : E->Funs) {
      Indent();
      OS << " (" << (F->K == CFun::Kind::Cont
                         ? "cont"
                         : F->K == CFun::Kind::Known ? "known" : "fun")
         << " v" << F->Name << " (";
      for (size_t I = 0; I < F->Params.size(); ++I) {
        if (I)
          OS << ' ';
        OS << 'v' << F->Params[I];
      }
      OS << ')';
      emit(OS, F->Body, Depth + 1);
      OS << ')';
    }
    emit(OS, E->C1, Depth);
    OS << ')';
    return;
  case Cexp::Kind::Branch:
    OS << "(branch " << static_cast<int>(E->BOp);
    for (const CValue &V : E->Args) {
      OS << ' ';
      emitValue(OS, V);
    }
    emit(OS, E->C1, Depth + 1);
    emit(OS, E->C2, Depth + 1);
    OS << ')';
    return;
  case Cexp::Kind::Arith:
  case Cexp::Kind::Pure:
  case Cexp::Kind::Looker:
  case Cexp::Kind::CCall: {
    const char *N = E->K == Cexp::Kind::Arith
                        ? "arith"
                        : E->K == Cexp::Kind::Pure
                              ? "pure"
                              : E->K == Cexp::Kind::Looker ? "looker"
                                                           : "ccall";
    OS << '(' << N << " v" << E->W << " = " << static_cast<int>(E->Op);
    for (const CValue &V : E->Args) {
      OS << ' ';
      emitValue(OS, V);
    }
    emit(OS, E->C1, Depth);
    OS << ')';
    return;
  }
  case Cexp::Kind::Setter:
    OS << "(setter " << static_cast<int>(E->Op);
    for (const CValue &V : E->Args) {
      OS << ' ';
      emitValue(OS, V);
    }
    emit(OS, E->C1, Depth);
    OS << ')';
    return;
  case Cexp::Kind::Halt:
    OS << "(halt ";
    emitValue(OS, E->F);
    OS << ')';
    return;
  }
}

} // namespace

std::string smltc::printCps(const Cexp *E) {
  std::ostringstream OS;
  emit(OS, E, 0);
  return OS.str();
}

size_t smltc::countCpsNodes(const Cexp *E) {
  if (!E)
    return 0;
  size_t N = 1;
  N += countCpsNodes(E->C1);
  N += countCpsNodes(E->C2);
  for (const CFun *F : E->Funs)
    N += countCpsNodes(F->Body);
  return N;
}
