//===- cps/CpsOpt.cpp - CPS optimizer --------------------------------------------===//

#include "cps/CpsOpt.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace smltc;

namespace {

/// Census information gathered per round.
struct Census {
  std::unordered_map<CVar, int> Use;        ///< value uses
  std::unordered_map<CVar, int> CallCount;  ///< uses in App-function position
  std::unordered_map<CVar, const CFun *> FnOf;
  std::unordered_set<CVar> EscapingFns;     ///< fn name used as a value
  std::unordered_set<CVar> SelfRecursive;
  /// Param vars that are only used as bases of non-float Selects.
  std::unordered_map<CVar, bool> OnlyWordSelected;
  std::unordered_map<CVar, Cty> VarTy;

  void value(const CValue &V) {
    if (V.isVar())
      ++Use[V.V];
  }

  void walk(const Cexp *E, const CFun *Owner) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields) {
          value(F.V);
          if (F.V.isVar())
            OnlyWordSelected[F.V.V] = false;
        }
        VarTy[E->W] = E->WTy;
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        value(E->F);
        if (E->F.isVar() && E->IsFloat)
          OnlyWordSelected[E->F.V] = false;
        VarTy[E->W] = E->WTy;
        E = E->C1;
        continue;
      case Cexp::Kind::App: {
        if (E->F.isVar()) {
          ++Use[E->F.V];
          ++CallCount[E->F.V];
          OnlyWordSelected[E->F.V] = false;
          if (Owner && E->F.V == Owner->Name)
            SelfRecursive.insert(Owner->Name);
        }
        for (const CValue &V : E->Args) {
          value(V);
          if (V.isVar()) {
            OnlyWordSelected[V.V] = false;
            if (FnOf.count(V.V))
              EscapingFns.insert(V.V);
          }
        }
        return;
      }
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs) {
          FnOf[F->Name] = F;
          for (size_t I = 0; I < F->Params.size(); ++I) {
            VarTy[F->Params[I]] = F->ParamTys[I];
            // Optimistically true until another use kind is seen.
            if (!OnlyWordSelected.count(F->Params[I]))
              OnlyWordSelected[F->Params[I]] = true;
          }
        }
        for (const CFun *F : E->Funs)
          walk(F->Body, F);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args) {
          value(V);
          if (V.isVar())
            OnlyWordSelected[V.V] = false;
        }
        walk(E->C1, Owner);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
        for (const CValue &V : E->Args) {
          value(V);
          if (V.isVar())
            OnlyWordSelected[V.V] = false;
        }
        VarTy[E->W] = E->WTy;
        E = E->C1;
        continue;
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args) {
          value(V);
          if (V.isVar())
            OnlyWordSelected[V.V] = false;
        }
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        value(E->F);
        if (E->F.isVar())
          OnlyWordSelected[E->F.V] = false;
        return;
      }
    }
  }

  // Escape marking for values in Record fields / Setter args was done via
  // OnlyWordSelected; function escape needs Record/Setter/CCall args too.
  void markEscapes(const Cexp *E) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          if (F.V.isVar() && FnOf.count(F.V.V))
            EscapingFns.insert(F.V.V);
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          if (V.isVar() && FnOf.count(V.V))
            EscapingFns.insert(V.V);
        E = E->C1;
        continue;
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs)
          markEscapes(F->Body);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        markEscapes(E->C1);
        E = E->C2;
        continue;
      case Cexp::Kind::App:
        for (const CValue &V : E->Args)
          if (V.isVar() && FnOf.count(V.V))
            EscapingFns.insert(V.V);
        return;
      case Cexp::Kind::Halt:
        if (E->F.isVar() && FnOf.count(E->F.V))
          EscapingFns.insert(E->F.V);
        return;
      }
    }
  }
};

/// A scoped map with an undo trail (bindings dominate uses in CPS, but
/// sibling branches must not see each other's bindings).
template <typename V> class ScopedMap {
public:
  void set(CVar K, V Val) {
    Trail.push_back(K);
    Map[K] = Val;
  }
  const V *get(CVar K) const {
    auto It = Map.find(K);
    return It == Map.end() ? nullptr : &It->second;
  }
  size_t mark() const { return Trail.size(); }
  void popTo(size_t M) {
    while (Trail.size() > M) {
      Map.erase(Trail.back());
      Trail.pop_back();
    }
  }

private:
  std::unordered_map<CVar, V> Map;
  std::vector<CVar> Trail;
};

struct SelectInfo {
  CVar Base;
  int Idx;
  bool IsFloat;
};

class Optimizer {
public:
  Optimizer(Arena &A, const CompilerOptions &Opts, CVar &MaxVar,
            CpsOptStats &Stats)
      : A(A), Opts(Opts), B(A, MaxVar), MaxVar(MaxVar), Stats(Stats) {}

  Cexp *run(Cexp *Program) {
    for (int Round = 0; Round < 10; ++Round) {
      Changed = false;
      Cen = Census();
      Cen.walk(Program, nullptr);
      Cen.markEscapes(Program);
      planInlining();
      Subst.clear();
      RoundStartVar = B.maxVar(); // vars cloned this round lack census data
      Program = rewrite(Program);
      ++Stats.Rounds;
      if (!Changed)
        break;
    }
    MaxVar = B.maxVar();
    return Program;
  }

private:
  //===--------------------------------------------------------------------===//
  // Inline planning
  //===--------------------------------------------------------------------===//

  static size_t bodySize(const Cexp *E) {
    if (!E)
      return 0;
    size_t N = 1 + bodySize(E->C1) + bodySize(E->C2);
    for (const CFun *F : E->Funs)
      N += bodySize(F->Body);
    return N;
  }

  void planInlining() {
    InlineOnce.clear();
    InlineSmall.clear();
    Flatten.clear();
    for (auto &[Name, F] : Cen.FnOf) {
      int Uses = Cen.Use.count(Name) ? Cen.Use.at(Name) : 0;
      int Calls = Cen.CallCount.count(Name) ? Cen.CallCount.at(Name) : 0;
      bool Escapes = Cen.EscapingFns.count(Name) != 0;
      bool SelfRec = Cen.SelfRecursive.count(Name) != 0;
      if (Uses == 0)
        continue; // dead; dropped at its Fix
      if (!Escapes && Calls == Uses && Calls == 1 && !SelfRec) {
        InlineOnce.insert(Name);
        continue;
      }
      if (Opts.InlineSmallFns && !Escapes && Calls == Uses && !SelfRec &&
          bodySize(F->Body) <= 10 && Calls <= 6) {
        InlineSmall.insert(Name);
        continue;
      }
      // (flattening candidates are handled below)
      // Kranz-style known-function argument flattening (sml.fag): a known
      // function whose single record argument is only taken apart with
      // word selects gets its components passed directly.
      if (Opts.KnownFnFlattening && !Escapes && Calls == Uses &&
          F->K != CFun::Kind::Cont && F->Params.size() == 2) {
        Cty PT = F->ParamTys[0];
        if (PT.K == CtyKind::PtrKnown && PT.Len >= 2 &&
            PT.Len <= Opts.MaxSpreadArgs) {
          auto It = Cen.OnlyWordSelected.find(F->Params[0]);
          if (It != Cen.OnlyWordSelected.end() && It->second)
            Flatten[Name] = PT.Len;
        }
      }
    }
    pruneInlineCycles();
  }

  /// Collects the inline-candidate functions referenced anywhere in E.
  void candidateRefs(const Cexp *E, std::unordered_set<CVar> &Out) {
    if (!E)
      return;
    auto Val = [&](const CValue &V) {
      if (V.isVar() && (InlineOnce.count(V.V) || InlineSmall.count(V.V)))
        Out.insert(V.V);
    };
    Val(E->F);
    for (const CValue &V : E->Args)
      Val(V);
    for (const CField &F : E->Fields)
      Val(F.V);
    for (const CFun *F : E->Funs)
      candidateRefs(F->Body, Out);
    candidateRefs(E->C1, Out);
    candidateRefs(E->C2, Out);
  }

  /// Inlining mutually recursive candidates would never terminate; remove
  /// every candidate that participates in a reference cycle (Kahn-style
  /// elimination: whatever cannot be topologically ordered is cyclic).
  void pruneInlineCycles() {
    std::unordered_map<CVar, std::unordered_set<CVar>> Refs;
    auto Candidates = [&]() {
      std::vector<CVar> Out;
      for (CVar V : InlineOnce)
        Out.push_back(V);
      for (CVar V : InlineSmall)
        Out.push_back(V);
      return Out;
    };
    for (CVar V : Candidates())
      candidateRefs(Cen.FnOf.at(V)->Body, Refs[V]);
    bool Progress = true;
    std::unordered_set<CVar> Alive(Refs.size());
    for (auto &[V, _] : Refs)
      Alive.insert(V);
    while (Progress) {
      Progress = false;
      for (auto It = Alive.begin(); It != Alive.end();) {
        bool HasLiveRef = false;
        for (CVar R : Refs[*It])
          if (R != *It && Alive.count(R)) {
            HasLiveRef = true;
            break;
          }
        if (!HasLiveRef) {
          It = Alive.erase(It);
          Progress = true;
        } else {
          ++It;
        }
      }
    }
    // Whatever is still "alive" is part of (or depends on) a cycle.
    for (CVar V : Alive) {
      InlineOnce.erase(V);
      InlineSmall.erase(V);
    }
  }

  //===--------------------------------------------------------------------===//
  // Rewriting
  //===--------------------------------------------------------------------===//

  CValue resolve(CValue V) const {
    while (V.isVar()) {
      auto It = Subst.find(V.V);
      if (It == Subst.end())
        return V;
      V = It->second;
    }
    return V;
  }

  std::vector<CValue> resolveAll(Span<CValue> Vs) const {
    std::vector<CValue> Out;
    for (const CValue &V : Vs)
      Out.push_back(resolve(V));
    return Out;
  }

  bool used(CVar W) const {
    if (W >= RoundStartVar)
      return true; // introduced by cloning this round; no census data
    auto It = Cen.Use.find(W);
    return It != Cen.Use.end() && It->second > 0;
  }

  Cexp *rewrite(const Cexp *E) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      std::vector<CField> Fields;
      for (const CField &F : E->Fields)
        Fields.push_back(CField{resolve(F.V), F.IsFloat});
      // Float boxes are only visible to the optimizer in the type-based
      // compilers (Section 5.2); the old compilers' float arithmetic boxed
      // implicitly and unconditionally.
      bool FloatBoxOpt =
          E->RK != RecordKind::FloatBox || Opts.CpsWrapCancel;
      if (!used(E->W) && E->RK != RecordKind::Ref && FloatBoxOpt) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      // Wrap/unwrap cancellation: re-boxing a float that was just unboxed
      // from an existing box yields the original box.
      if (Opts.CpsWrapCancel && E->RK == RecordKind::FloatBox &&
          Fields.size() == 1 && Fields[0].V.isVar()) {
        if (const SelectInfo *SI = SelDefs.get(Fields[0].V.V)) {
          if (SI->IsFloat && SI->Idx == 0) {
            if (const Cexp *const *BoxDef = RecDefs.get(SI->Base)) {
              if ((*BoxDef)->RK == RecordKind::FloatBox) {
                ++Stats.FloatBoxesReused;
                Changed = true;
                Subst[E->W] = CValue::var(SI->Base);
                return rewrite(E->C1);
              }
            }
          }
        }
      }
      // Record copy elimination: building a record from in-order selects
      // of a same-sized record is the identity (Section 5.2).
      if (Opts.CpsRecordCopyElim && E->RK != RecordKind::Ref &&
          !Fields.empty()) {
        CVar Base = 0;
        bool AllSelects = true;
        for (size_t I = 0; I < Fields.size() && AllSelects; ++I) {
          if (!Fields[I].V.isVar()) {
            AllSelects = false;
            break;
          }
          const SelectInfo *SI = SelDefs.get(Fields[I].V.V);
          if (!SI || SI->Idx != static_cast<int>(I) ||
              SI->IsFloat != Fields[I].IsFloat) {
            AllSelects = false;
            break;
          }
          if (I == 0)
            Base = SI->Base;
          else if (SI->Base != Base)
            AllSelects = false;
        }
        if (AllSelects && Base != 0) {
          auto It = Cen.VarTy.find(Base);
          if (It != Cen.VarTy.end() && It->second.K == CtyKind::PtrKnown &&
              It->second.Len == static_cast<int>(Fields.size())) {
            ++Stats.RecordsCopyEliminated;
            Changed = true;
            Subst[E->W] = CValue::var(Base);
            return rewrite(E->C1);
          }
        }
      }
      Cexp *N = B.record(E->RK, Fields, E->W, nullptr);
      N->WTy = E->WTy;
      size_t M = RecDefs.mark();
      if (E->RK != RecordKind::Ref && FloatBoxOpt)
        RecDefs.set(E->W, N);
      N->C1 = rewrite(E->C1);
      RecDefs.popTo(M);
      return N;
    }

    case Cexp::Kind::Select: {
      CValue Base = resolve(E->F);
      if (Base.isVar()) {
        if (const Cexp *const *RD = RecDefs.get(Base.V)) {
          const Cexp *R = *RD;
          if (E->Idx < static_cast<int>(R->Fields.size())) {
            ++Stats.SelectsFolded;
            Changed = true;
            Subst[E->W] = resolve(R->Fields[E->Idx].V);
            return rewrite(E->C1);
          }
        }
      }
      if (!used(E->W)) {
        // A Select from a known-immutable record cannot trap; checked
        // loads are Lookers, so this is safe to drop.
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      Cexp *N = B.select(E->Idx, E->IsFloat, Base, E->W, E->WTy, nullptr);
      size_t M = SelDefs.mark();
      if (Base.isVar())
        SelDefs.set(E->W, SelectInfo{Base.V, E->Idx, E->IsFloat});
      N->C1 = rewrite(E->C1);
      SelDefs.popTo(M);
      return N;
    }

    case Cexp::Kind::App: {
      CValue F = resolve(E->F);
      std::vector<CValue> Args = resolveAll(E->Args);
      if (F.isVar()) {
        if ((InlineOnce.count(F.V) || InlineSmall.count(F.V)) &&
            !InlineStack.count(F.V)) {
          const CFun *Fn = Cen.FnOf.at(F.V);
          bool Once = InlineOnce.count(F.V) != 0;
          (Once ? Stats.InlinedOnce : Stats.InlinedSmall)++;
          Changed = true;
          InlineStack.insert(F.V);
          Cexp *R = inlineCall(Fn, Args, /*NeedsRenaming=*/!Once);
          InlineStack.erase(F.V);
          return R;
        }
        auto FlIt = Flatten.find(F.V);
        if (FlIt != Flatten.end()) {
          // Rewrite the call to pass the record's components.
          int N = FlIt->second;
          std::vector<CValue> NewArgs;
          std::vector<CVar> Sels;
          for (int I = 0; I < N; ++I) {
            CVar S = B.fresh();
            Sels.push_back(S);
            NewArgs.push_back(CValue::var(S));
          }
          NewArgs.push_back(Args[1]); // return continuation
          Cexp *Call = B.app(F, NewArgs);
          for (int I = N; I-- > 0;)
            Call = B.select(I, false, Args[0], Sels[I],
                            Cty::ptrUnknown(), Call);
          Changed = true;
          return Call;
        }
      }
      return B.app(F, Args);
    }

    case Cexp::Kind::Fix: {
      std::vector<CFun *> Funs;
      for (CFun *F : E->Funs) {
        if (!used(F->Name)) {
          ++Stats.DeadRemoved;
          Changed = true;
          continue;
        }
        // Inline candidates keep their definitions this round (calls may
        // decline to inline when a cycle is detected at rewrite time);
        // once all uses are gone, dead-function removal reaps them.
        // Eta: cont k(x) = j(x) ==> k := j.
        if (F->K == CFun::Kind::Cont && F->Params.size() == 1 &&
            F->Body->K == Cexp::Kind::App && F->Body->Args.size() == 1 &&
            F->Body->Args[0].isVar() &&
            F->Body->Args[0].V == F->Params[0] && F->Body->F.isVar() &&
            F->Body->F.V != F->Name &&
            // Redirecting uses to the target would invalidate this
            // round's single-use inlining plan for it.
            !InlineOnce.count(F->Body->F.V) &&
            !InlineSmall.count(F->Body->F.V)) {
          ++Stats.EtaConts;
          Changed = true;
          Subst[F->Name] = resolve(F->Body->F);
          continue;
        }
        Funs.push_back(F);
      }
      std::vector<CFun *> NewFuns;
      for (CFun *F : Funs) {
        // Recompute known-ness from this round's census in both
        // directions: contractions can reveal that all call sites are
        // known, and substitutions can surface new value (escaping) uses.
        CFun::Kind K = F->K;
        if (K != CFun::Kind::Cont)
          K = Cen.EscapingFns.count(F->Name) ? CFun::Kind::Escape
                                             : CFun::Kind::Known;
        auto FlIt = Flatten.find(F->Name);
        if (FlIt != Flatten.end()) {
          // Flattened entry: fresh component params, rebuild the record
          // (contracted away next round when only selects remain).
          int N = FlIt->second;
          ++Stats.KnownFnsFlattened;
          Changed = true;
          std::vector<CVar> Params;
          std::vector<Cty> Tys;
          std::vector<CField> Fields;
          for (int I = 0; I < N; ++I) {
            CVar P = B.fresh();
            Params.push_back(P);
            Tys.push_back(Cty::ptrUnknown());
            Fields.push_back(CField{CValue::var(P), false});
          }
          Params.push_back(F->Params[1]);
          Tys.push_back(F->ParamTys[1]);
          Cexp *Body = B.record(RecordKind::Std, Fields, F->Params[0],
                                rewrite(F->Body));
          NewFuns.push_back(B.fun(CFun::Kind::Known, F->Name, Params, Tys,
                                  Body));
          continue;
        }
        std::vector<CVar> Params(F->Params.begin(), F->Params.end());
        std::vector<Cty> Tys(F->ParamTys.begin(), F->ParamTys.end());
        size_t MR = RecDefs.mark(), MS = SelDefs.mark();
        Cexp *Body = rewrite(F->Body);
        RecDefs.popTo(MR);
        SelDefs.popTo(MS);
        NewFuns.push_back(B.fun(K, F->Name, Params, Tys, Body));
      }
      Cexp *Cont = rewrite(E->C1);
      if (NewFuns.empty())
        return Cont;
      return B.fix(NewFuns, Cont);
    }

    case Cexp::Kind::Branch: {
      std::vector<CValue> Args = resolveAll(E->Args);
      // Constant folding.
      if (E->BOp == BranchOp::IsBoxed && !Args[0].isVar()) {
        ++Stats.BranchesFolded;
        Changed = true;
        bool Boxed = Args[0].K != CValue::Kind::Int;
        return rewrite(Boxed ? E->C1 : E->C2);
      }
      if (Args.size() == 2 && Args[0].K == CValue::Kind::Int &&
          Args[1].K == CValue::Kind::Int) {
        int64_t X = Args[0].I, Y = Args[1].I;
        bool T;
        bool Known = true;
        switch (E->BOp) {
        case BranchOp::Ieq: T = X == Y; break;
        case BranchOp::Ine: T = X != Y; break;
        case BranchOp::Ilt: T = X < Y; break;
        case BranchOp::Ile: T = X <= Y; break;
        case BranchOp::Igt: T = X > Y; break;
        case BranchOp::Ige: T = X >= Y; break;
        case BranchOp::Ult:
          T = static_cast<uint64_t>(X) < static_cast<uint64_t>(Y);
          break;
        default:
          Known = false;
          T = false;
        }
        if (Known) {
          ++Stats.BranchesFolded;
          Changed = true;
          return rewrite(T ? E->C1 : E->C2);
        }
      }
      size_t MR = RecDefs.mark(), MS = SelDefs.mark();
      Cexp *Then = rewrite(E->C1);
      RecDefs.popTo(MR);
      SelDefs.popTo(MS);
      Cexp *Else = rewrite(E->C2);
      RecDefs.popTo(MR);
      SelDefs.popTo(MS);
      return B.branch(E->BOp, Args, Then, Else);
    }

    case Cexp::Kind::Arith: {
      std::vector<CValue> Args = resolveAll(E->Args);
      bool CanTrap = E->Op == CpsOp::IDiv || E->Op == CpsOp::IMod;
      if (!used(E->W) && !CanTrap) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      // Integer constant folding.
      if (Args.size() == 2 && Args[0].K == CValue::Kind::Int &&
          Args[1].K == CValue::Kind::Int) {
        int64_t X = Args[0].I, Y = Args[1].I;
        int64_t R;
        bool Known = true;
        switch (E->Op) {
        case CpsOp::IAdd: R = X + Y; break;
        case CpsOp::ISub: R = X - Y; break;
        case CpsOp::IMul: R = X * Y; break;
        case CpsOp::IDiv:
        case CpsOp::IMod: {
          // SML div/mod round toward negative infinity (match the VM).
          Known = Y != 0;
          if (!Known) {
            R = 0;
            break;
          }
          int64_t Q = X / Y;
          int64_t Rm = X % Y;
          if (Rm != 0 && ((Rm < 0) != (Y < 0))) {
            Q -= 1;
            Rm += Y;
          }
          R = E->Op == CpsOp::IDiv ? Q : Rm;
          break;
        }
        default: Known = false; R = 0;
        }
        if (Known) {
          ++Stats.ConstantsFolded;
          Changed = true;
          Subst[E->W] = CValue::intC(R);
          return rewrite(E->C1);
        }
      }
      if (Args.size() == 1 && Args[0].K == CValue::Kind::Int &&
          (E->Op == CpsOp::INeg || E->Op == CpsOp::IAbs)) {
        int64_t X = Args[0].I;
        ++Stats.ConstantsFolded;
        Changed = true;
        Subst[E->W] = CValue::intC(E->Op == CpsOp::INeg ? -X
                                                        : (X < 0 ? -X : X));
        return rewrite(E->C1);
      }
      Cexp *N = B.arith(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Pure: {
      std::vector<CValue> Args = resolveAll(E->Args);
      if (E->Op == CpsOp::Copy) {
        Changed = true;
        Subst[E->W] = Args[0];
        return rewrite(E->C1);
      }
      if (!used(E->W)) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      Cexp *N = B.pure(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Looker: {
      std::vector<CValue> Args = resolveAll(E->Args);
      bool CanTrap =
          E->Op == CpsOp::LoadCell || E->Op == CpsOp::LoadByte;
      if (!used(E->W) && !CanTrap) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      Cexp *N = B.looker(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Setter: {
      Cexp *N = B.setter(E->Op, resolveAll(E->Args), nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::CCall: {
      Cexp *N = B.ccall(E->Op, resolveAll(E->Args), E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Halt: {
      Cexp *N = B.halt(resolve(E->F));
      N->Idx = E->Idx;
      return N;
    }
    }
    assert(false && "unknown CPS node");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Inlining
  //===--------------------------------------------------------------------===//

  Cexp *inlineCall(const CFun *Fn, const std::vector<CValue> &Args,
                   bool NeedsRenaming) {
    assert(Fn->Params.size() == Args.size() && "inline arity mismatch");
    // Renaming is needed even for once-used functions: the call site may
    // itself live inside cloned (multi-inlined) code, in which case the
    // body would otherwise be spliced twice with the same binders.
    (void)NeedsRenaming;
    std::unordered_map<CVar, CValue> Rename;
    for (size_t I = 0; I < Args.size(); ++I)
      Rename[Fn->Params[I]] = Args[I];
    Cexp *Cloned = clone(Fn->Body, Rename);
    return rewrite(Cloned);
  }

  CValue renameValue(const CValue &V,
                     const std::unordered_map<CVar, CValue> &Rn) {
    if (!V.isVar())
      return V;
    auto It = Rn.find(V.V);
    return It == Rn.end() ? V : It->second;
  }

  CVar freshBinder(CVar Old, std::unordered_map<CVar, CValue> &Rn) {
    CVar N = B.fresh();
    Rn[Old] = CValue::var(N);
    return N;
  }

  /// Alpha-renaming deep copy (for multi-site inlining).
  Cexp *clone(const Cexp *E, std::unordered_map<CVar, CValue> &Rn) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      std::vector<CField> Fields;
      for (const CField &F : E->Fields)
        Fields.push_back(CField{renameValue(F.V, Rn), F.IsFloat});
      CVar W = freshBinder(E->W, Rn);
      Cexp *N = B.record(E->RK, Fields, W, nullptr);
      N->WTy = E->WTy;
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Select: {
      CValue Base = renameValue(E->F, Rn);
      CVar W = freshBinder(E->W, Rn);
      Cexp *N = B.select(E->Idx, E->IsFloat, Base, W, E->WTy, nullptr);
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::App: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      return B.app(renameValue(E->F, Rn), Args);
    }
    case Cexp::Kind::Fix: {
      std::vector<CFun *> Funs;
      for (const CFun *F : E->Funs)
        freshBinder(F->Name, Rn);
      for (const CFun *F : E->Funs) {
        std::vector<CVar> Params;
        std::vector<Cty> Tys(F->ParamTys.begin(), F->ParamTys.end());
        for (CVar P : F->Params)
          Params.push_back(freshBinder(P, Rn));
        Cexp *Body = clone(F->Body, Rn);
        Funs.push_back(
            B.fun(F->K, Rn.at(F->Name).V, Params, Tys, Body));
      }
      return B.fix(Funs, clone(E->C1, Rn));
    }
    case Cexp::Kind::Branch: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      Cexp *Then = clone(E->C1, Rn);
      Cexp *Else = clone(E->C2, Rn);
      return B.branch(E->BOp, Args, Then, Else);
    }
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      CVar W = freshBinder(E->W, Rn);
      Cexp *N;
      if (E->K == Cexp::Kind::Arith)
        N = B.arith(E->Op, Args, W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Pure)
        N = B.pure(E->Op, Args, W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Looker)
        N = B.looker(E->Op, Args, W, E->WTy, nullptr);
      else
        N = B.ccall(E->Op, Args, W, E->WTy, nullptr);
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Setter: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      Cexp *N = B.setter(E->Op, Args, nullptr);
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Halt: {
      Cexp *N = B.halt(renameValue(E->F, Rn));
      N->Idx = E->Idx;
      return N;
    }
    }
    assert(false && "unknown CPS node in clone");
    return nullptr;
  }

  Arena &A;
  const CompilerOptions &Opts;
  CpsBuilder B;
  CVar &MaxVar;
  CpsOptStats &Stats;
  Census Cen;
  CVar RoundStartVar = 0;
  bool Changed = false;
  std::unordered_map<CVar, CValue> Subst;
  ScopedMap<const Cexp *> RecDefs;
  ScopedMap<SelectInfo> SelDefs;
  std::unordered_set<CVar> InlineOnce;
  std::unordered_set<CVar> InlineSmall;
  std::unordered_set<CVar> InlineStack; ///< functions being inlined now
  std::unordered_map<CVar, int> Flatten;
};

} // namespace

Cexp *smltc::optimizeCps(Arena &A, const CompilerOptions &Opts,
                         Cexp *Program, CVar &MaxVar, CpsOptStats &Stats) {
  Optimizer O(A, Opts, MaxVar, Stats);
  return O.run(Program);
}
