//===- cps/CpsOpt.cpp - CPS optimizer --------------------------------------------===//
//
// Two engines implement the Section 5.2 reductions:
//
//  - Optimizer ("rounds"): the legacy fixpoint loop. Up to 10 rounds, each
//    taking a fresh census and rebuilding the entire tree in the arena.
//    Kept behind --cps-opt=rounds as a differential-testing oracle.
//
//  - ShrinkOptimizer ("shrink", default): one up-front census over dense
//    CVar-indexed tables, incrementally maintained as each contraction
//    fires, with in-place tree splicing instead of per-round rebuilds.
//    Each phase plans the non-shrinking expansions (inline-small, Kranz
//    flattening) from phase-entry counts, then makes one top-down sweep
//    applying the shrinking reductions (dead code, select folding,
//    constant and branch folding, eta-cont, beta of once-used functions)
//    together with the planned expansions.
//
//    The sweep cadence deliberately mirrors the rounds engine
//    decision-for-decision — one sweep per phase, dead bindings removed
//    only when the sweep reaches them with a zero count, kinds and clone
//    sources frozen at phase entry — so both engines walk through the
//    same sequence of program states and normal forms. That makes the
//    engines differentially testable down to exact VM instruction counts
//    (including programs where the round cap stops contraction midway);
//    the speedup comes purely from eliminating the per-round full census
//    walk and the full arena tree rebuild, not from different decisions.
//
// Both engines share the dense census representation: every per-variable
// table is a flat vector indexed by CVar (CpsCheck guarantees unique
// binders and def-dominates-use, so one global table is sound).
//
//===----------------------------------------------------------------------===//

#include "cps/CpsOpt.h"

#include "cps/CpsCheck.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace smltc;

namespace {

std::atomic<bool> AuditEnabled{false};

/// Phases a fixpoint-mode shrink run may take before the optimizer gives
/// up and reports non-convergence. Contraction rules provably shrink and
/// expansion plans are bounded, so reaching this is a rule bug, not a
/// program property; the driver turns it into a compile error instead of
/// letting the process spin.
constexpr int kPhaseSafetyCeiling = 1000;

/// Process-wide histogram of phases-to-normal-form per shrink run,
/// registered into the obs registry by registerCpsOptMetrics.
std::shared_ptr<obs::Histogram> &shrinkPhaseHistogram() {
  static std::shared_ptr<obs::Histogram> H =
      std::make_shared<obs::Histogram>(std::vector<double>{
          1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 64, 128});
  return H;
}

void bodySizeUpTo(const Cexp *E, size_t Cap, size_t &N) {
  if (!E || N > Cap)
    return;
  ++N;
  bodySizeUpTo(E->C1, Cap, N);
  bodySizeUpTo(E->C2, Cap, N);
  for (const CFun *F : E->Funs)
    bodySizeUpTo(F->Body, Cap, N);
}

/// Whether E has at most Cap nodes; bails out of the walk as soon as the
/// cap is exceeded, so probing a large function for the inline-small
/// threshold costs O(Cap), not O(|body|) — this runs once per candidate
/// per round in both engines' planners.
bool bodyAtMost(const Cexp *E, size_t Cap) {
  size_t N = 0;
  bodySizeUpTo(E, Cap, N);
  return N <= Cap;
}

/// A dense CVar-keyed map with O(1) epoch-based clear. Grows on demand so
/// variables minted mid-round (cloned binders) can be keyed too.
template <typename V> class DenseVarMap {
public:
  void clear() { ++Epoch; }
  bool has(CVar K) const {
    return K >= 0 && static_cast<size_t>(K) < Stamp.size() &&
           Stamp[K] == Epoch;
  }
  const V *get(CVar K) const { return has(K) ? &Val[K] : nullptr; }
  void set(CVar K, const V &X) {
    grow(K);
    Val[K] = X;
    Stamp[K] = Epoch;
  }
  void erase(CVar K) {
    if (has(K))
      Stamp[K] = 0;
  }

private:
  void grow(CVar K) {
    if (static_cast<size_t>(K) >= Stamp.size()) {
      size_t N = std::max<size_t>(
          64, std::max(static_cast<size_t>(K) + 1, Stamp.size() * 2));
      Val.resize(N);
      Stamp.resize(N, 0);
    }
  }
  std::vector<V> Val;
  std::vector<uint32_t> Stamp;
  uint32_t Epoch = 1;
};

//===----------------------------------------------------------------------===//
// Rounds engine (legacy oracle)
//===----------------------------------------------------------------------===//

/// Census information gathered per round, over dense var-indexed tables.
struct Census {
  CVar Cap = 0; ///< exclusive bound of vars with census slots
  std::vector<int32_t> UseV;      ///< value uses
  std::vector<int32_t> CallV;     ///< uses in App-function position
  std::vector<const CFun *> FnV;  ///< fn name -> definition
  std::vector<uint8_t> EscV;      ///< fn name used as a value
  std::vector<uint8_t> SelfRecV;
  /// Tri-state "only used as base of non-float Selects": 0 unseen,
  /// 1 true (param, no disqualifying use yet), 2 false.
  std::vector<uint8_t> OwsV;
  std::vector<Cty> TyV;
  std::vector<CVar> FnList; ///< all fn names, in definition order

  void init(CVar NewCap) {
    Cap = NewCap;
    size_t N = static_cast<size_t>(Cap);
    UseV.assign(N, 0);
    CallV.assign(N, 0);
    FnV.assign(N, nullptr);
    EscV.assign(N, 0);
    SelfRecV.assign(N, 0);
    OwsV.assign(N, 0);
    TyV.assign(N, Cty());
    FnList.clear();
  }

  bool inCap(CVar V) const { return V >= 0 && V < Cap; }
  int use(CVar V) const { return inCap(V) ? UseV[V] : 0; }
  int calls(CVar V) const { return inCap(V) ? CallV[V] : 0; }
  const CFun *fn(CVar V) const { return inCap(V) ? FnV[V] : nullptr; }
  bool escapes(CVar V) const { return inCap(V) && EscV[V]; }
  bool selfRec(CVar V) const { return inCap(V) && SelfRecV[V]; }
  bool onlyWordSelected(CVar V) const { return inCap(V) && OwsV[V] == 1; }
  bool hasTy(CVar V) const { return inCap(V); }
  Cty ty(CVar V) const { return inCap(V) ? TyV[V] : Cty(); }

  void value(const CValue &V) {
    if (V.isVar() && inCap(V.V))
      ++UseV[V.V];
  }
  void notOws(const CValue &V) {
    if (V.isVar() && inCap(V.V))
      OwsV[V.V] = 2;
  }

  void walk(const Cexp *E, const CFun *Owner) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields) {
          value(F.V);
          notOws(F.V);
        }
        if (inCap(E->W))
          TyV[E->W] = E->WTy;
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        value(E->F);
        if (E->IsFloat)
          notOws(E->F);
        if (inCap(E->W))
          TyV[E->W] = E->WTy;
        E = E->C1;
        continue;
      case Cexp::Kind::App: {
        if (E->F.isVar() && inCap(E->F.V)) {
          ++UseV[E->F.V];
          ++CallV[E->F.V];
          OwsV[E->F.V] = 2;
          if (Owner && E->F.V == Owner->Name && inCap(Owner->Name))
            SelfRecV[Owner->Name] = 1;
        }
        for (const CValue &V : E->Args) {
          value(V);
          notOws(V);
          if (V.isVar() && fn(V.V))
            EscV[V.V] = 1;
        }
        return;
      }
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs) {
          if (inCap(F->Name)) {
            FnV[F->Name] = F;
            FnList.push_back(F->Name);
          }
          for (size_t I = 0; I < F->Params.size(); ++I) {
            CVar P = F->Params[I];
            if (inCap(P)) {
              TyV[P] = F->ParamTys[I];
              // Optimistically true until another use kind is seen.
              if (OwsV[P] == 0)
                OwsV[P] = 1;
            }
          }
        }
        for (const CFun *F : E->Funs)
          walk(F->Body, F);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args) {
          value(V);
          notOws(V);
        }
        walk(E->C1, Owner);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
        for (const CValue &V : E->Args) {
          value(V);
          notOws(V);
        }
        if (inCap(E->W))
          TyV[E->W] = E->WTy;
        E = E->C1;
        continue;
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args) {
          value(V);
          notOws(V);
        }
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        value(E->F);
        notOws(E->F);
        return;
      }
    }
  }

  // Function escape marking needs Record/Setter/CCall args too.
  void markEscapes(const Cexp *E) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          if (F.V.isVar() && fn(F.V.V))
            EscV[F.V.V] = 1;
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          if (V.isVar() && fn(V.V))
            EscV[V.V] = 1;
        E = E->C1;
        continue;
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs)
          markEscapes(F->Body);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        markEscapes(E->C1);
        E = E->C2;
        continue;
      case Cexp::Kind::App:
        for (const CValue &V : E->Args)
          if (V.isVar() && fn(V.V))
            EscV[V.V] = 1;
        return;
      case Cexp::Kind::Halt:
        if (E->F.isVar() && fn(E->F.V))
          EscV[E->F.V] = 1;
        return;
      }
    }
  }
};

/// A scoped map with an undo trail (bindings dominate uses in CPS, but
/// sibling branches must not see each other's bindings).
template <typename V> class ScopedMap {
public:
  void set(CVar K, V Val) {
    Trail.push_back(K);
    Map.set(K, Val);
  }
  const V *get(CVar K) const { return Map.get(K); }
  size_t mark() const { return Trail.size(); }
  void popTo(size_t M) {
    while (Trail.size() > M) {
      Map.erase(Trail.back());
      Trail.pop_back();
    }
  }

private:
  DenseVarMap<V> Map;
  std::vector<CVar> Trail;
};

struct SelectInfo {
  CVar Base;
  int Idx;
  bool IsFloat;
};

/// Phase tracing: SMLTC_CPSOPT_TRACE=<dir> writes one CPS dump
/// per optimizer round so engine cadences can be diffed round-by-round.
static bool tracingPhases() { return getenv("SMLTC_CPSOPT_TRACE") != nullptr; }

static void tracePhase(const char *Engine, int Round, const Cexp *Program,
                       const std::string &Plan) {
  const char *Dir = getenv("SMLTC_CPSOPT_TRACE");
  if (!Dir)
    return;
  std::string Path =
      std::string(Dir) + "/" + Engine + "_" + std::to_string(Round) + ".txt";
  if (FILE *F = fopen(Path.c_str(), "w")) {
    std::string S = printCps(Program);
    fprintf(F, "PLAN %s\n%s", Plan.c_str(), S.c_str());
    fclose(F);
  }
}

class Optimizer {
public:
  Optimizer(Arena &A, const CompilerOptions &Opts, CVar &MaxVar,
            CpsOptStats &Stats)
      : A(A), Opts(Opts), B(A, MaxVar), MaxVar(MaxVar), Stats(Stats) {}

  Cexp *run(Cexp *Program) {
    int Round = 0;
    for (; Round < 10; ++Round) {
      SMLTC_SPAN("cps_opt_round", "compile");
      Changed = false;
      Cen.init(B.maxVar());
      Cen.walk(Program, nullptr);
      Cen.markEscapes(Program);
      planInlining();
      Subst.clear();
      Program = rewrite(Program);
      ++Stats.Rounds;
      if (tracingPhases()) {
        std::string Plan;
        for (CVar V = 0; V < Cen.Cap; ++V) {
          if (OnceV[V])
            Plan += " o" + std::to_string(V);
          if (SmallV[V])
            Plan += " s" + std::to_string(V);
          if (FlattenV[V])
            Plan += " f" + std::to_string(V);
        }
        tracePhase("rounds", Round, Program, Plan);
      }
      if (!Changed) {
        ++Round;
        break;
      }
    }
    // Stopping at the cap with reductions still firing was previously a
    // silent non-convergence.
    Stats.HitRoundCap = (Round > 10) || (Round == 10 && Changed);
    MaxVar = B.maxVar();
    return Program;
  }

private:
  //===--------------------------------------------------------------------===//
  // Inline planning
  //===--------------------------------------------------------------------===//

  bool isOnce(CVar V) const { return Cen.inCap(V) && OnceV[V]; }
  bool isSmall(CVar V) const { return Cen.inCap(V) && SmallV[V]; }
  int flattenLen(CVar V) const { return Cen.inCap(V) ? FlattenV[V] : 0; }

  void planInlining() {
    size_t N = static_cast<size_t>(Cen.Cap);
    OnceV.assign(N, 0);
    SmallV.assign(N, 0);
    FlattenV.assign(N, 0);
    for (CVar Name : Cen.FnList) {
      const CFun *F = Cen.fn(Name);
      int Uses = Cen.use(Name);
      int Calls = Cen.calls(Name);
      bool Escapes = Cen.escapes(Name);
      bool SelfRec = Cen.selfRec(Name);
      if (Uses == 0)
        continue; // dead; dropped at its Fix
      if (!Escapes && Calls == Uses && Calls == 1 && !SelfRec) {
        OnceV[Name] = 1;
        continue;
      }
      if (Opts.InlineSmallFns && !Escapes && Calls == Uses && !SelfRec &&
          bodyAtMost(F->Body, 10) && Calls <= 6) {
        SmallV[Name] = 1;
        continue;
      }
      // Kranz-style known-function argument flattening (sml.fag): a known
      // function whose single record argument is only taken apart with
      // word selects gets its components passed directly.
      if (Opts.KnownFnFlattening && !Escapes && Calls == Uses &&
          F->K != CFun::Kind::Cont && F->Params.size() == 2) {
        Cty PT = F->ParamTys[0];
        if (PT.K == CtyKind::PtrKnown && PT.Len >= 2 &&
            PT.Len <= Opts.MaxSpreadArgs &&
            Cen.onlyWordSelected(F->Params[0]))
          FlattenV[Name] = PT.Len;
      }
    }
    pruneInlineCycles();
  }

  /// Collects the inline-candidate functions referenced anywhere in E.
  void candidateRefs(const Cexp *E, std::unordered_set<CVar> &Out) {
    if (!E)
      return;
    auto Val = [&](const CValue &V) {
      if (V.isVar() && (isOnce(V.V) || isSmall(V.V)))
        Out.insert(V.V);
    };
    Val(E->F);
    for (const CValue &V : E->Args)
      Val(V);
    for (const CField &F : E->Fields)
      Val(F.V);
    for (const CFun *F : E->Funs)
      candidateRefs(F->Body, Out);
    candidateRefs(E->C1, Out);
    candidateRefs(E->C2, Out);
  }

  /// Inlining mutually recursive candidates would never terminate; remove
  /// every candidate that participates in a reference cycle (Kahn-style
  /// elimination: whatever cannot be topologically ordered is cyclic).
  void pruneInlineCycles() {
    std::vector<CVar> Candidates;
    for (CVar Name : Cen.FnList)
      if (OnceV[Name] || SmallV[Name])
        Candidates.push_back(Name);
    std::unordered_map<CVar, std::unordered_set<CVar>> Refs;
    for (CVar V : Candidates)
      candidateRefs(Cen.fn(V)->Body, Refs[V]);
    bool Progress = true;
    std::unordered_set<CVar> Alive(Refs.size());
    for (auto &[V, _] : Refs)
      Alive.insert(V);
    while (Progress) {
      Progress = false;
      for (auto It = Alive.begin(); It != Alive.end();) {
        bool HasLiveRef = false;
        for (CVar R : Refs[*It])
          if (R != *It && Alive.count(R)) {
            HasLiveRef = true;
            break;
          }
        if (!HasLiveRef) {
          It = Alive.erase(It);
          Progress = true;
        } else {
          ++It;
        }
      }
    }
    // Whatever is still "alive" is part of (or depends on) a cycle.
    for (CVar V : Alive) {
      OnceV[V] = 0;
      SmallV[V] = 0;
    }
  }

  //===--------------------------------------------------------------------===//
  // Rewriting
  //===--------------------------------------------------------------------===//

  CValue resolve(CValue V) const {
    while (V.isVar()) {
      const CValue *S = Subst.get(V.V);
      if (!S)
        return V;
      V = *S;
    }
    return V;
  }

  std::vector<CValue> resolveAll(Span<CValue> Vs) const {
    std::vector<CValue> Out;
    for (const CValue &V : Vs)
      Out.push_back(resolve(V));
    return Out;
  }

  bool used(CVar W) const {
    // Vars at/above the census cap were introduced by cloning this round
    // and have no census data; conservatively treat them as used.
    return !Cen.inCap(W) || Cen.UseV[W] > 0;
  }

  Cexp *rewrite(const Cexp *E) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      std::vector<CField> Fields;
      for (const CField &F : E->Fields)
        Fields.push_back(CField{resolve(F.V), F.IsFloat});
      // Float boxes are only visible to the optimizer in the type-based
      // compilers (Section 5.2); the old compilers' float arithmetic boxed
      // implicitly and unconditionally.
      bool FloatBoxOpt =
          E->RK != RecordKind::FloatBox || Opts.CpsWrapCancel;
      if (!used(E->W) && E->RK != RecordKind::Ref && FloatBoxOpt) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      // Wrap/unwrap cancellation: re-boxing a float that was just unboxed
      // from an existing box yields the original box.
      if (Opts.CpsWrapCancel && E->RK == RecordKind::FloatBox &&
          Fields.size() == 1 && Fields[0].V.isVar()) {
        if (const SelectInfo *SI = SelDefs.get(Fields[0].V.V)) {
          if (SI->IsFloat && SI->Idx == 0) {
            if (const Cexp *const *BoxDef = RecDefs.get(SI->Base)) {
              if ((*BoxDef)->RK == RecordKind::FloatBox) {
                ++Stats.FloatBoxesReused;
                Changed = true;
                Subst.set(E->W, CValue::var(SI->Base));
                return rewrite(E->C1);
              }
            }
          }
        }
      }
      // Record copy elimination: building a record from in-order selects
      // of a same-sized record is the identity (Section 5.2).
      if (Opts.CpsRecordCopyElim && E->RK != RecordKind::Ref &&
          !Fields.empty()) {
        CVar Base = 0;
        bool AllSelects = true;
        for (size_t I = 0; I < Fields.size() && AllSelects; ++I) {
          if (!Fields[I].V.isVar()) {
            AllSelects = false;
            break;
          }
          const SelectInfo *SI = SelDefs.get(Fields[I].V.V);
          if (!SI || SI->Idx != static_cast<int>(I) ||
              SI->IsFloat != Fields[I].IsFloat) {
            AllSelects = false;
            break;
          }
          if (I == 0)
            Base = SI->Base;
          else if (SI->Base != Base)
            AllSelects = false;
        }
        if (AllSelects && Base != 0 && Cen.hasTy(Base)) {
          Cty BT = Cen.ty(Base);
          if (BT.K == CtyKind::PtrKnown &&
              BT.Len == static_cast<int>(Fields.size())) {
            ++Stats.RecordsCopyEliminated;
            Changed = true;
            Subst.set(E->W, CValue::var(Base));
            return rewrite(E->C1);
          }
        }
      }
      Cexp *N = B.record(E->RK, Fields, E->W, nullptr);
      N->WTy = E->WTy;
      size_t M = RecDefs.mark();
      if (E->RK != RecordKind::Ref && FloatBoxOpt)
        RecDefs.set(E->W, N);
      N->C1 = rewrite(E->C1);
      RecDefs.popTo(M);
      return N;
    }

    case Cexp::Kind::Select: {
      CValue Base = resolve(E->F);
      if (Base.isVar()) {
        if (const Cexp *const *RD = RecDefs.get(Base.V)) {
          const Cexp *R = *RD;
          if (E->Idx < static_cast<int>(R->Fields.size())) {
            ++Stats.SelectsFolded;
            Changed = true;
            Subst.set(E->W, resolve(R->Fields[E->Idx].V));
            return rewrite(E->C1);
          }
        }
      }
      if (!used(E->W)) {
        // A Select from a known-immutable record cannot trap; checked
        // loads are Lookers, so this is safe to drop.
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      Cexp *N = B.select(E->Idx, E->IsFloat, Base, E->W, E->WTy, nullptr);
      size_t M = SelDefs.mark();
      if (Base.isVar())
        SelDefs.set(E->W, SelectInfo{Base.V, E->Idx, E->IsFloat});
      N->C1 = rewrite(E->C1);
      SelDefs.popTo(M);
      return N;
    }

    case Cexp::Kind::App: {
      CValue F = resolve(E->F);
      std::vector<CValue> Args = resolveAll(E->Args);
      if (F.isVar()) {
        if ((isOnce(F.V) || isSmall(F.V)) && !InlineStack.count(F.V)) {
          const CFun *Fn = Cen.fn(F.V);
          bool Once = isOnce(F.V);
          (Once ? Stats.InlinedOnce : Stats.InlinedSmall)++;
          Changed = true;
          InlineStack.insert(F.V);
          Cexp *R = inlineCall(Fn, Args);
          InlineStack.erase(F.V);
          return R;
        }
        int FlN = flattenLen(F.V);
        if (FlN > 0) {
          // Rewrite the call to pass the record's components.
          std::vector<CValue> NewArgs;
          std::vector<CVar> Sels;
          for (int I = 0; I < FlN; ++I) {
            CVar S = B.fresh();
            Sels.push_back(S);
            NewArgs.push_back(CValue::var(S));
          }
          NewArgs.push_back(Args[1]); // return continuation
          Cexp *Call = B.app(F, NewArgs);
          for (int I = FlN; I-- > 0;)
            Call = B.select(I, false, Args[0], Sels[I],
                            Cty::ptrUnknown(), Call);
          Changed = true;
          return Call;
        }
      }
      return B.app(F, Args);
    }

    case Cexp::Kind::Fix: {
      std::vector<CFun *> Funs;
      for (CFun *F : E->Funs) {
        if (!used(F->Name)) {
          ++Stats.DeadRemoved;
          Changed = true;
          continue;
        }
        // Eta: cont k(x) = j(x) ==> k := j.
        if (F->K == CFun::Kind::Cont && F->Params.size() == 1 &&
            F->Body->K == Cexp::Kind::App && F->Body->Args.size() == 1 &&
            F->Body->Args[0].isVar() &&
            F->Body->Args[0].V == F->Params[0] && F->Body->F.isVar() &&
            F->Body->F.V != F->Name &&
            // Redirecting uses to the target would invalidate this
            // round's single-use inlining plan for it.
            !isOnce(F->Body->F.V) && !isSmall(F->Body->F.V)) {
          CValue J = resolve(F->Body->F);
          // A mutual eta pair in one bundle would otherwise produce a
          // self-substitution (k := k) and an unresolvable cycle.
          if (!(J.isVar() && J.V == F->Name)) {
            ++Stats.EtaConts;
            Changed = true;
            Subst.set(F->Name, J);
            continue;
          }
        }
        Funs.push_back(F);
      }
      std::vector<CFun *> NewFuns;
      for (CFun *F : Funs) {
        // Recompute known-ness from this round's census in both
        // directions: contractions can reveal that all call sites are
        // known, and substitutions can surface new value (escaping) uses.
        CFun::Kind K = F->K;
        if (K != CFun::Kind::Cont)
          K = Cen.escapes(F->Name) ? CFun::Kind::Escape : CFun::Kind::Known;
        int FlN = flattenLen(F->Name);
        if (FlN > 0) {
          // Flattened entry: fresh component params, rebuild the record
          // (contracted away next round when only selects remain).
          ++Stats.KnownFnsFlattened;
          Changed = true;
          std::vector<CVar> Params;
          std::vector<Cty> Tys;
          std::vector<CField> Fields;
          for (int I = 0; I < FlN; ++I) {
            CVar P = B.fresh();
            Params.push_back(P);
            Tys.push_back(Cty::ptrUnknown());
            Fields.push_back(CField{CValue::var(P), false});
          }
          Params.push_back(F->Params[1]);
          Tys.push_back(F->ParamTys[1]);
          Cexp *Body = B.record(RecordKind::Std, Fields, F->Params[0],
                                rewrite(F->Body));
          NewFuns.push_back(B.fun(CFun::Kind::Known, F->Name, Params, Tys,
                                  Body));
          continue;
        }
        std::vector<CVar> Params(F->Params.begin(), F->Params.end());
        std::vector<Cty> Tys(F->ParamTys.begin(), F->ParamTys.end());
        size_t MR = RecDefs.mark(), MS = SelDefs.mark();
        Cexp *Body = rewrite(F->Body);
        RecDefs.popTo(MR);
        SelDefs.popTo(MS);
        NewFuns.push_back(B.fun(K, F->Name, Params, Tys, Body));
      }
      Cexp *Cont = rewrite(E->C1);
      if (NewFuns.empty())
        return Cont;
      return B.fix(NewFuns, Cont);
    }

    case Cexp::Kind::Branch: {
      std::vector<CValue> Args = resolveAll(E->Args);
      // Constant folding.
      if (E->BOp == BranchOp::IsBoxed && !Args[0].isVar()) {
        ++Stats.BranchesFolded;
        Changed = true;
        bool Boxed = Args[0].K != CValue::Kind::Int;
        return rewrite(Boxed ? E->C1 : E->C2);
      }
      if (Args.size() == 2 && Args[0].K == CValue::Kind::Int &&
          Args[1].K == CValue::Kind::Int) {
        int64_t X = Args[0].I, Y = Args[1].I;
        bool T;
        bool Known = true;
        switch (E->BOp) {
        case BranchOp::Ieq: T = X == Y; break;
        case BranchOp::Ine: T = X != Y; break;
        case BranchOp::Ilt: T = X < Y; break;
        case BranchOp::Ile: T = X <= Y; break;
        case BranchOp::Igt: T = X > Y; break;
        case BranchOp::Ige: T = X >= Y; break;
        case BranchOp::Ult:
          T = static_cast<uint64_t>(X) < static_cast<uint64_t>(Y);
          break;
        default:
          Known = false;
          T = false;
        }
        if (Known) {
          ++Stats.BranchesFolded;
          Changed = true;
          return rewrite(T ? E->C1 : E->C2);
        }
      }
      size_t MR = RecDefs.mark(), MS = SelDefs.mark();
      Cexp *Then = rewrite(E->C1);
      RecDefs.popTo(MR);
      SelDefs.popTo(MS);
      Cexp *Else = rewrite(E->C2);
      RecDefs.popTo(MR);
      SelDefs.popTo(MS);
      return B.branch(E->BOp, Args, Then, Else);
    }

    case Cexp::Kind::Arith: {
      std::vector<CValue> Args = resolveAll(E->Args);
      bool CanTrap = E->Op == CpsOp::IDiv || E->Op == CpsOp::IMod;
      if (!used(E->W) && !CanTrap) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      // Integer constant folding.
      if (Args.size() == 2 && Args[0].K == CValue::Kind::Int &&
          Args[1].K == CValue::Kind::Int) {
        int64_t X = Args[0].I, Y = Args[1].I;
        int64_t R;
        bool Known = true;
        switch (E->Op) {
        case CpsOp::IAdd: R = X + Y; break;
        case CpsOp::ISub: R = X - Y; break;
        case CpsOp::IMul: R = X * Y; break;
        case CpsOp::IDiv:
        case CpsOp::IMod: {
          // SML div/mod round toward negative infinity (match the VM).
          Known = Y != 0;
          if (!Known) {
            R = 0;
            break;
          }
          int64_t Q = X / Y;
          int64_t Rm = X % Y;
          if (Rm != 0 && ((Rm < 0) != (Y < 0))) {
            Q -= 1;
            Rm += Y;
          }
          R = E->Op == CpsOp::IDiv ? Q : Rm;
          break;
        }
        default: Known = false; R = 0;
        }
        if (Known) {
          ++Stats.ConstantsFolded;
          Changed = true;
          Subst.set(E->W, CValue::intC(R));
          return rewrite(E->C1);
        }
      }
      if (Args.size() == 1 && Args[0].K == CValue::Kind::Int &&
          (E->Op == CpsOp::INeg || E->Op == CpsOp::IAbs)) {
        int64_t X = Args[0].I;
        ++Stats.ConstantsFolded;
        Changed = true;
        Subst.set(E->W, CValue::intC(E->Op == CpsOp::INeg ? -X
                                                          : (X < 0 ? -X : X)));
        return rewrite(E->C1);
      }
      Cexp *N = B.arith(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Pure: {
      std::vector<CValue> Args = resolveAll(E->Args);
      if (E->Op == CpsOp::Copy) {
        Changed = true;
        Subst.set(E->W, Args[0]);
        return rewrite(E->C1);
      }
      if (!used(E->W)) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      Cexp *N = B.pure(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Looker: {
      std::vector<CValue> Args = resolveAll(E->Args);
      bool CanTrap =
          E->Op == CpsOp::LoadCell || E->Op == CpsOp::LoadByte;
      if (!used(E->W) && !CanTrap) {
        ++Stats.DeadRemoved;
        Changed = true;
        return rewrite(E->C1);
      }
      Cexp *N = B.looker(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Setter: {
      Cexp *N = B.setter(E->Op, resolveAll(E->Args), nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::CCall: {
      Cexp *N = B.ccall(E->Op, resolveAll(E->Args), E->W, E->WTy, nullptr);
      N->C1 = rewrite(E->C1);
      return N;
    }

    case Cexp::Kind::Halt: {
      Cexp *N = B.halt(resolve(E->F));
      N->Idx = E->Idx;
      return N;
    }
    }
    assert(false && "unknown CPS node");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Inlining
  //===--------------------------------------------------------------------===//

  Cexp *inlineCall(const CFun *Fn, const std::vector<CValue> &Args) {
    assert(Fn->Params.size() == Args.size() && "inline arity mismatch");
    // Renaming is needed even for once-used functions: the call site may
    // itself live inside cloned (multi-inlined) code, in which case the
    // body would otherwise be spliced twice with the same binders.
    std::unordered_map<CVar, CValue> Rename;
    for (size_t I = 0; I < Args.size(); ++I)
      Rename[Fn->Params[I]] = Args[I];
    Cexp *Cloned = clone(Fn->Body, Rename);
    return rewrite(Cloned);
  }

  CValue renameValue(const CValue &V,
                     const std::unordered_map<CVar, CValue> &Rn) {
    if (!V.isVar())
      return V;
    auto It = Rn.find(V.V);
    return It == Rn.end() ? V : It->second;
  }

  CVar freshBinder(CVar Old, std::unordered_map<CVar, CValue> &Rn) {
    CVar N = B.fresh();
    Rn[Old] = CValue::var(N);
    return N;
  }

  /// Alpha-renaming deep copy (for multi-site inlining).
  Cexp *clone(const Cexp *E, std::unordered_map<CVar, CValue> &Rn) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      std::vector<CField> Fields;
      for (const CField &F : E->Fields)
        Fields.push_back(CField{renameValue(F.V, Rn), F.IsFloat});
      CVar W = freshBinder(E->W, Rn);
      Cexp *N = B.record(E->RK, Fields, W, nullptr);
      N->WTy = E->WTy;
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Select: {
      CValue Base = renameValue(E->F, Rn);
      CVar W = freshBinder(E->W, Rn);
      Cexp *N = B.select(E->Idx, E->IsFloat, Base, W, E->WTy, nullptr);
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::App: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      return B.app(renameValue(E->F, Rn), Args);
    }
    case Cexp::Kind::Fix: {
      std::vector<CFun *> Funs;
      for (const CFun *F : E->Funs)
        freshBinder(F->Name, Rn);
      for (const CFun *F : E->Funs) {
        std::vector<CVar> Params;
        std::vector<Cty> Tys(F->ParamTys.begin(), F->ParamTys.end());
        for (CVar P : F->Params)
          Params.push_back(freshBinder(P, Rn));
        Cexp *Body = clone(F->Body, Rn);
        Funs.push_back(
            B.fun(F->K, Rn.at(F->Name).V, Params, Tys, Body));
      }
      return B.fix(Funs, clone(E->C1, Rn));
    }
    case Cexp::Kind::Branch: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      Cexp *Then = clone(E->C1, Rn);
      Cexp *Else = clone(E->C2, Rn);
      return B.branch(E->BOp, Args, Then, Else);
    }
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      CVar W = freshBinder(E->W, Rn);
      Cexp *N;
      if (E->K == Cexp::Kind::Arith)
        N = B.arith(E->Op, Args, W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Pure)
        N = B.pure(E->Op, Args, W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Looker)
        N = B.looker(E->Op, Args, W, E->WTy, nullptr);
      else
        N = B.ccall(E->Op, Args, W, E->WTy, nullptr);
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Setter: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args)
        Args.push_back(renameValue(V, Rn));
      Cexp *N = B.setter(E->Op, Args, nullptr);
      N->C1 = clone(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Halt: {
      Cexp *N = B.halt(renameValue(E->F, Rn));
      N->Idx = E->Idx;
      return N;
    }
    }
    assert(false && "unknown CPS node in clone");
    return nullptr;
  }

  Arena &A;
  const CompilerOptions &Opts;
  CpsBuilder B;
  CVar &MaxVar;
  CpsOptStats &Stats;
  Census Cen;
  bool Changed = false;
  DenseVarMap<CValue> Subst;
  ScopedMap<const Cexp *> RecDefs;
  ScopedMap<SelectInfo> SelDefs;
  std::vector<uint8_t> OnceV;   ///< dense inline-once plan
  std::vector<uint8_t> SmallV;  ///< dense inline-small plan
  std::vector<int32_t> FlattenV; ///< dense flatten plan (0 = none)
  std::unordered_set<CVar> InlineStack; ///< functions being inlined now
};

//===----------------------------------------------------------------------===//
// Shrink engine (default)
//===----------------------------------------------------------------------===//

/// Worklist shrinking reductions over an incrementally maintained census.
///
/// One census walk populates dense CVar-indexed tables (use/call counts,
/// def nodes, fn defs); every contraction then updates the counts for
/// exactly the occurrences it adds or removes, so the census always
/// describes the *virtual* tree (the physical tree with the pending
/// substitution applied). Contractions splice the tree in place
/// (`*E = *E->C1`), so unchanged subtrees are never re-cloned; a worklist
/// of vars whose use count hit zero cascades dead-code removal.
///
/// Shrinking reductions (monotonically decrease tree size, run to
/// fixpoint): dead bindings/functions, select-from-known-record, constant
/// and branch folding, wrap/unwrap cancellation, record-copy elimination,
/// eta-cont, beta of once-used functions. Non-shrinking expansions
/// (inline-small, Kranz flattening) run as planned phases between shrink
/// phases, bounded by the same cap of 10 the rounds engine uses.
class ShrinkOptimizer {
public:
  ShrinkOptimizer(Arena &A, const CompilerOptions &Opts, CVar &MaxVar,
                  CpsOptStats &Stats)
      : A(A), Opts(Opts), B(A, MaxVar), MaxVar(MaxVar), Stats(Stats) {}

  Cexp *run(Cexp *Program) {
    ensure(B.maxVar());
    {
      SMLTC_SPAN("cps_shrink_census", "compile");
      census(Program, nullptr);
    }
    bool Audit = AuditEnabled.load(std::memory_order_relaxed);
    // Phase cadence deliberately mirrors the rounds engine decision for
    // decision — plan expansions on phase-entry counts, one contraction
    // sweep per phase, dead bindings removed only when the sweep reaches
    // them — so both engines converge on the same normal form (the
    // differential suite asserts identical dynamic instruction counts).
    // The throughput win comes from what each phase no longer does: no
    // from-scratch census walk (counts are maintained incrementally) and
    // no arena rebuild of the whole tree (contractions splice in place).
    //
    // Fixpoint mode (CpsOptMaxPhases == 0, the default) keeps that
    // cadence but runs until a whole phase fires nothing, behind a
    // safety ceiling. The fixpoint-era rules — generalized eta,
    // census-driven argument flattening, wrap-cancellation breadth,
    // loop-invariant alloc hoisting — are active only here, so any
    // bounded --cps-opt-max-phases=N reproduces the legacy cadence
    // bit-for-bit (N=10 matches the rounds oracle exactly).
    bool Fixpoint = Opts.CpsOptMaxPhases <= 0;
    int Cap = Fixpoint ? kPhaseSafetyCeiling : Opts.CpsOptMaxPhases;
    EtaOn = Fixpoint && !(Opts.CpsOptDisable & kCpsRuleEta);
    FagOn = Fixpoint && !(Opts.CpsOptDisable & kCpsRuleFag) &&
            Opts.KnownFnFlattening;
    WrapOn = Fixpoint && !(Opts.CpsOptDisable & kCpsRuleWrapCancel) &&
             Opts.CpsWrapCancel;
    HoistOn = Fixpoint && !(Opts.CpsOptDisable & kCpsRuleHoist);
    int Phase = 0;
    bool Progressed = true;
    for (; Phase < Cap; ++Phase) {
      bool HavePlan;
      {
        SMLTC_SPAN("cps_expand_plan", "compile");
        HavePlan = planExpand(Program);
      }
      uint64_t PhaseStart = Contractions;
      {
        SMLTC_SPAN(HavePlan ? "cps_expand" : "cps_shrink", "compile");
        PlanActive = HavePlan;
        PhaseFloor = B.maxVar();
        NewRuleFired = false;
        WrapBoxOf.popTo(0);
        UnwrapOf.popTo(0);
        RecordsOf.popTo(0);
        WrapDepth = 0;
        visit(Program);
        PlanActive = false;
        ++Stats.WorklistPasses;
        if (Audit)
          auditCensus(Program);
      }
#ifndef NDEBUG
      if (NewRuleFired) {
        CpsCheckResult CR = checkCps(Program);
        assert(CR.Ok && "CPS check failed after a fixpoint-era rule");
        (void)CR;
      }
#endif
      if (HavePlan)
        ++Stats.ExpandPasses;
      ++Stats.Rounds;
      if (tracingPhases()) {
        std::string Plan;
        for (size_t V = 0; V < PlanOnceV.size(); ++V) {
          if (PlanOnceV[V])
            Plan += " o" + std::to_string(V);
          if (PlanSmallV[V])
            Plan += " s" + std::to_string(V);
          if (PlanFlattenV[V])
            Plan += " f" + std::to_string(V);
        }
        tracePhase("shrink", Phase, Program, Plan);
      }
      Progressed = Contractions != PhaseStart;
      if (!Progressed) {
        ++Phase;
        break;
      }
    }
    if (Fixpoint)
      Stats.HitSafetyCeiling = Phase == Cap && Progressed;
    else
      Stats.HitRoundCap = Phase == Cap && Progressed;
    // At a true fixpoint every kept occurrence has been rewritten to its
    // resolved form, so the maintained census must equal a raw recount;
    // verify with the census half of CpsCheck in audit mode and in debug
    // builds.
    bool DebugBuild = false;
#ifndef NDEBUG
    DebugBuild = true;
#endif
    if (Fixpoint && !Progressed && (Audit || DebugBuild)) {
      CpsCheckResult CR = checkCpsCensus(
          Program, UseV, CallsV, [this](CValue V) { return rv(V); });
      if (!CR.Ok)
        ++Stats.CensusAuditFailures;
    }
    shrinkPhaseHistogram()->observe(static_cast<double>(Phase));
    MaxVar = B.maxVar();
    return Program;
  }

private:
  //===--------------------------------------------------------------------===//
  // Dense incremental census
  //===--------------------------------------------------------------------===//

  void ensure(CVar Hi) {
    if (Hi >= 0 && static_cast<size_t>(Hi) < UseV.size())
      return;
    size_t N = std::max<size_t>(
        64, std::max(static_cast<size_t>(Hi) + 1, UseV.size() * 2));
    UseV.resize(N, 0);
    CallsV.resize(N, 0);
    DefNodeV.resize(N, nullptr);
    FnDefV.resize(N, nullptr);
    FixNodeV.resize(N, nullptr);
    VarTyV.resize(N, Cty());
    SubstV.resize(N, CValue());
    HasSubstV.resize(N, 0);
    InlineOnV.resize(N, 0);
    PlanOnceV.resize(N, 0);
    PlanSmallV.resize(N, 0);
    PlanFlattenV.resize(N, 0);
    OwsV.resize(N, 0);
    SelfRecPV.resize(N, 0);
    LoopNestPV.resize(N, 0);
    EscPV.resize(N, 0);
    AdoptableV.resize(N, 0);
    SnapBodyV.resize(N, nullptr);
    FagLenV.resize(N, 0);
    SelMaskV.resize(N, 0);
    PlanFagV.resize(N, 0);
  }

  /// Resolves a value through the pending substitution.
  CValue rv(CValue V) const {
    while (V.isVar() && HasSubstV[V.V])
      V = SubstV[V.V];
    return V;
  }

  void addUse(CValue V, bool Call = false) {
    V = rv(V);
    if (!V.isVar())
      return;
    ++UseV[V.V];
    if (Call)
      ++CallsV[V.V];
  }

  void dropUse(CValue V, bool Call = false) {
    V = rv(V);
    if (!V.isVar())
      return;
    CVar X = V.V;
    if (UseV[X] > 0)
      --UseV[X];
    if (Call && CallsV[X] > 0)
      --CallsV[X];
  }

  /// A binding is removable only once the sweep reaches it with a zero
  /// count, and never in the phase that created it — the rounds engine's
  /// `used()` treats vars above the census cap as used, so mirroring that
  /// keeps the two engines' removal timing (and thus their expand plans)
  /// in lockstep.
  bool liveOrFresh(CVar W) const { return W >= PhaseFloor || UseV[W] > 0; }

  /// Substitutes \p Target (already resolved) for every remaining use of
  /// \p X, transferring X's counts so the census keeps describing the
  /// virtual tree.
  void bindSubst(CVar X, CValue Target) {
    HasSubstV[X] = 1;
    SubstV[X] = Target;
    if (Target.isVar()) {
      UseV[Target.V] += UseV[X];
      CallsV[Target.V] += CallsV[X];
    }
    UseV[X] = 0;
    CallsV[X] = 0;
  }

  void defineVar(CVar W, Cty T, Cexp *Node) {
    VarTyV[W] = T;
    DefNodeV[W] = Node;
  }

  /// The up-front census: counts every occurrence and records def nodes.
  void census(Cexp *E, const CFun *Owner) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          addUse(F.V);
        defineVar(E->W, E->WTy, E);
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        addUse(E->F);
        defineVar(E->W, E->WTy, E);
        E = E->C1;
        continue;
      case Cexp::Kind::App:
        addUse(E->F, /*Call=*/true);
        for (const CValue &V : E->Args)
          addUse(V);
        return;
      case Cexp::Kind::Fix:
        for (CFun *F : E->Funs) {
          FnDefV[F->Name] = F;
          FixNodeV[F->Name] = E;
          for (size_t I = 0; I < F->Params.size(); ++I)
            VarTyV[F->Params[I]] = F->ParamTys[I];
        }
        for (CFun *F : E->Funs)
          census(F->Body, F);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args)
          addUse(V);
        census(E->C1, Owner);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
        for (const CValue &V : E->Args)
          addUse(V);
        defineVar(E->W, E->WTy, E);
        E = E->C1;
        continue;
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          addUse(V);
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        addUse(E->F);
        return;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // In-place splicing
  //===--------------------------------------------------------------------===//

  /// After `*E = *C`, def tables pointing at C's content must point at E.
  void reanchor(Cexp *E) {
    switch (E->K) {
    case Cexp::Kind::Record:
    case Cexp::Kind::Select:
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall:
      if (DefNodeV[E->W])
        DefNodeV[E->W] = E;
      break;
    case Cexp::Kind::Fix:
      for (CFun *F : E->Funs)
        if (FnDefV[F->Name] == F)
          FixNodeV[F->Name] = E;
      break;
    default:
      break;
    }
  }

  void replaceWith(Cexp *E, Cexp *C) {
    *E = *C;
    reanchor(E);
  }

  /// Removes a straight-line node by replacing it with its continuation.
  void spliceOut(Cexp *E) { replaceWith(E, E->C1); }

  bool deadRemovable(const Cexp *D) const {
    switch (D->K) {
    case Cexp::Kind::Record:
      return D->RK != RecordKind::Ref &&
             (D->RK != RecordKind::FloatBox || Opts.CpsWrapCancel);
    case Cexp::Kind::Select:
    case Cexp::Kind::Pure:
      return true;
    case Cexp::Kind::Arith:
      return D->Op != CpsOp::IDiv && D->Op != CpsOp::IMod;
    case Cexp::Kind::Looker:
      return D->Op != CpsOp::LoadCell && D->Op != CpsOp::LoadByte;
    default:
      return false;
    }
  }

  /// Removes a dead value-binding node, dropping its operand uses.
  void removeValueNode(Cexp *D) {
    switch (D->K) {
    case Cexp::Kind::Record:
      for (const CField &F : D->Fields)
        dropUse(F.V);
      break;
    case Cexp::Kind::Select:
      dropUse(D->F);
      break;
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
      for (const CValue &V : D->Args)
        dropUse(V);
      break;
    default:
      return;
    }
    DefNodeV[D->W] = nullptr;
    ++Stats.DeadRemoved;
    ++Contractions;
    spliceOut(D);
  }

  /// Drops every census count contributed by a subtree being deleted.
  void censusRemove(Cexp *E) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          dropUse(F.V);
        DefNodeV[E->W] = nullptr;
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        dropUse(E->F);
        DefNodeV[E->W] = nullptr;
        E = E->C1;
        continue;
      case Cexp::Kind::App:
        dropUse(E->F, /*Call=*/true);
        for (const CValue &V : E->Args)
          dropUse(V);
        return;
      case Cexp::Kind::Fix:
        for (CFun *F : E->Funs) {
          if (FnDefV[F->Name] != F)
            continue; // already unlinked elsewhere
          FnDefV[F->Name] = nullptr;
          FixNodeV[F->Name] = nullptr;
          censusRemove(F->Body);
        }
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args)
          dropUse(V);
        censusRemove(E->C1);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
        for (const CValue &V : E->Args)
          dropUse(V);
        DefNodeV[E->W] = nullptr;
        E = E->C1;
        continue;
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          dropUse(V);
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        dropUse(E->F);
        return;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Contraction sweep
  //===--------------------------------------------------------------------===//

  void resolveArgs(Cexp *E) {
    CValue *Vs = E->Args.mutableBegin();
    for (size_t I = 0, N = E->Args.size(); I < N; ++I)
      Vs[I] = rv(Vs[I]);
  }

  void resolveFields(Cexp *E) {
    CField *Fs = E->Fields.mutableBegin();
    for (size_t I = 0, N = E->Fields.size(); I < N; ++I)
      Fs[I].V = rv(Fs[I].V);
  }

  void visit(Cexp *E) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record: {
        resolveFields(E);
        bool FloatBoxOpt =
            E->RK != RecordKind::FloatBox || Opts.CpsWrapCancel;
        if (!liveOrFresh(E->W) && E->RK != RecordKind::Ref && FloatBoxOpt) {
          removeValueNode(E);
          continue;
        }
        // Wrap/unwrap cancellation (Section 5.2).
        if (Opts.CpsWrapCancel && E->RK == RecordKind::FloatBox &&
            E->Fields.size() == 1 && E->Fields[0].V.isVar()) {
          const Cexp *SD = DefNodeV[E->Fields[0].V.V];
          if (SD && SD->K == Cexp::Kind::Select && SD->IsFloat &&
              SD->Idx == 0) {
            CValue Base = rv(SD->F);
            if (Base.isVar()) {
              const Cexp *BD = DefNodeV[Base.V];
              if (BD && BD->K == Cexp::Kind::Record &&
                  BD->RK == RecordKind::FloatBox) {
                ++Stats.FloatBoxesReused;
                ++Contractions;
                dropUse(E->Fields[0].V);
                DefNodeV[E->W] = nullptr;
                bindSubst(E->W, Base);
                spliceOut(E);
                continue;
              }
            }
          }
        }
        // Fixpoint-era breadth: a float re-boxed under a dominating box
        // of the same raw value reuses that box, however many bindings
        // separate the two wraps (the adjacent rule above only cancels
        // box-of-unwrap-of-box shapes).
        if (WrapOn && E->RK == RecordKind::FloatBox &&
            E->Fields.size() == 1 && E->Fields[0].V.isVar()) {
          const WrapEntry *Box = WrapBoxOf.get(E->Fields[0].V.V);
          // Same-depth reuse is free. Cross-depth reuse makes the outer
          // box a captured free variable of this function, so it only
          // pays when the saved allocation outweighs the capture: when
          // this is the raw float's last remaining use (closures swap
          // raw for box, slot for slot), or inside a self-recursive
          // body, where the cancelled alloc ran per iteration but the
          // capture costs once per loop entry. Unconditional cross-depth
          // reuse regressed BHut in measurement; these two cases carry
          // all of the MBrot/Ray loop wins.
          CValue RawV = rv(E->Fields[0].V);
          bool LastRawUse = RawV.isVar() && UseV[RawV.V] == 1;
          if (Box &&
              (Box->Depth == WrapDepth || LastRawUse || InLoopBody)) {
            ++Stats.WrapCancelChains;
            if (Box->Depth != WrapDepth && !LastRawUse)
              ++Stats.WrapCancelLoopCarried;
            ++Contractions;
            NewRuleFired = true;
            dropUse(E->Fields[0].V);
            DefNodeV[E->W] = nullptr;
            bindSubst(E->W, rv(CValue::var(Box->V)));
            spliceOut(E);
            continue;
          }
          WrapBoxOf.set(E->Fields[0].V.V, {E->W, WrapDepth});
        }
        // Fixpoint-era breadth, general-record side: an immutable record
        // whose fields are identical to a dominating allocation reuses it
        // (records are arena values with no observable identity; Select is
        // the only reader of non-Ref records). Same cross-depth gate as
        // the float-box rule: reuse across a function boundary trades a
        // per-call allocation for a closure capture, which only pays
        // inside a loop nest.
        if (WrapOn && E->RK != RecordKind::Ref &&
            E->RK != RecordKind::FloatBox && !E->Fields.empty()) {
          CVar Key = 0;
          for (const CField &Fd : E->Fields)
            if (Fd.V.isVar()) {
              Key = Fd.V.V;
              break;
            }
          if (Key != 0) {
            const RecCseList *L = RecordsOf.get(Key);
            const Cexp *Hit = nullptr;
            int HitDepth = 0;
            if (L)
              for (uint8_t I = 0; I < L->N && !Hit; ++I) {
                const Cexp *R = L->E[I].R;
                if (R->RK != E->RK ||
                    R->Fields.size() != E->Fields.size() ||
                    !(L->E[I].Depth == WrapDepth || InLoopBody))
                  continue;
                bool Same = true;
                for (size_t J = 0; J < E->Fields.size() && Same; ++J)
                  Same = E->Fields[J].IsFloat == R->Fields[J].IsFloat &&
                         sameValue(E->Fields[J].V, rv(R->Fields[J].V));
                if (Same) {
                  Hit = R;
                  HitDepth = L->E[I].Depth;
                }
              }
            if (Hit) {
              ++Stats.WrapCancelChains;
              if (HitDepth != WrapDepth)
                ++Stats.WrapCancelLoopCarried;
              ++Contractions;
              NewRuleFired = true;
              for (const CField &Fd : E->Fields)
                dropUse(Fd.V);
              DefNodeV[E->W] = nullptr;
              bindSubst(E->W, rv(CValue::var(Hit->W)));
              spliceOut(E);
              continue;
            }
            RecCseList NL = L ? *L : RecCseList{};
            if (NL.N < RecCseList::kMax) {
              NL.E[NL.N++] = {E, WrapDepth};
              RecordsOf.set(Key, NL);
            }
          }
        }
        // Record copy elimination (Section 5.2).
        if (Opts.CpsRecordCopyElim && E->RK != RecordKind::Ref &&
            !E->Fields.empty()) {
          CVar Base = 0;
          bool AllSelects = true;
          for (size_t I = 0; I < E->Fields.size() && AllSelects; ++I) {
            const CField &Fd = E->Fields[I];
            if (!Fd.V.isVar()) {
              AllSelects = false;
              break;
            }
            const Cexp *SD = DefNodeV[Fd.V.V];
            if (!SD || SD->K != Cexp::Kind::Select ||
                SD->Idx != static_cast<int>(I) ||
                SD->IsFloat != Fd.IsFloat) {
              AllSelects = false;
              break;
            }
            CValue SB = rv(SD->F);
            if (!SB.isVar()) {
              AllSelects = false;
              break;
            }
            if (I == 0)
              Base = SB.V;
            else if (SB.V != Base)
              AllSelects = false;
          }
          // Fresh bases (introduced this phase) have no census type in the
          // rounds engine, which therefore never eliminates through them
          // until the next round; keep the same timing.
          if (AllSelects && Base != 0 && Base < PhaseFloor) {
            Cty BT = VarTyV[Base];
            if (BT.K == CtyKind::PtrKnown &&
                BT.Len == static_cast<int>(E->Fields.size())) {
              ++Stats.RecordsCopyEliminated;
              ++Contractions;
              for (const CField &Fd : E->Fields)
                dropUse(Fd.V);
              DefNodeV[E->W] = nullptr;
              bindSubst(E->W, CValue::var(Base));
              spliceOut(E);
              continue;
            }
          }
        }
        E = E->C1;
        continue;
      }

      case Cexp::Kind::Select: {
        E->F = rv(E->F);
        if (E->F.isVar()) {
          const Cexp *RD = DefNodeV[E->F.V];
          if (RD && RD->K == Cexp::Kind::Record &&
              RD->RK != RecordKind::Ref &&
              (RD->RK != RecordKind::FloatBox || Opts.CpsWrapCancel) &&
              E->Idx < static_cast<int>(RD->Fields.size())) {
            ++Stats.SelectsFolded;
            ++Contractions;
            CValue Repl = rv(RD->Fields[E->Idx].V);
            DefNodeV[E->W] = nullptr;
            bindSubst(E->W, Repl);
            dropUse(E->F);
            spliceOut(E);
            continue;
          }
        }
        if (!liveOrFresh(E->W)) {
          // Selects from known-immutable records cannot trap.
          removeValueNode(E);
          continue;
        }
        // Fixpoint-era breadth: identical selects of the same
        // (unknown-definition) base CSE to the dominating one — Select
        // only ever reads immutable records (refs and arrays go through
        // Looker), so same base and index is the same value. Float
        // unwraps are the wrap-cancellation case the rule is named for;
        // word selects from shared parameter/closure records cancel the
        // same way, and the wrap-dedup above then collapses re-wraps of
        // either copy. Same-depth only, like the wrap rule.
        if (WrapOn && E->F.isVar()) {
          const SelCseList *L = UnwrapOf.get(E->F.V);
          const SelCseEntry *Hit = nullptr;
          // Cross-depth CSE swaps a captured base for a captured field;
          // as with wrap-dedup above, that is gated to the cases that
          // cannot lose: last remaining use of the base, or a loop nest
          // (select per iteration vs capture per entry).
          bool LastBaseUse = UseV[E->F.V] == 1;
          if (L)
            for (uint8_t I = 0; I < L->N; ++I)
              if (L->E[I].Idx == E->Idx &&
                  L->E[I].IsFloat == static_cast<uint8_t>(E->IsFloat) &&
                  (L->E[I].Depth == WrapDepth || LastBaseUse || InLoopBody))
                Hit = &L->E[I];
          if (Hit) {
            ++Stats.WrapCancelChains;
            if (Hit->Depth != WrapDepth && !LastBaseUse)
              ++Stats.WrapCancelLoopCarried;
            ++Contractions;
            NewRuleFired = true;
            dropUse(E->F);
            DefNodeV[E->W] = nullptr;
            bindSubst(E->W, rv(CValue::var(Hit->W)));
            spliceOut(E);
            continue;
          }
          SelCseList NL = L ? *L : SelCseList{};
          if (NL.N < SelCseList::kMax) {
            NL.E[NL.N++] = {E->Idx, static_cast<uint8_t>(E->IsFloat), E->W,
                            WrapDepth};
            UnwrapOf.set(E->F.V, NL);
          }
        }
        E = E->C1;
        continue;
      }

      case Cexp::Kind::App: {
        E->F = rv(E->F);
        resolveArgs(E);
        if (!E->F.isVar())
          return;
        CVar Fv = E->F.V;
        CFun *Fn = FnDefV[Fv];
        if (!Fn)
          return;
        // Planned inlining: beta of once-used functions and clone-inline
        // of small ones, decided at phase entry exactly like the rounds
        // engine plans them at round entry. The inline-on guard plays the
        // role of the rounds engine's InlineStack: a body never expands
        // into its own clone.
        if (PlanActive && (PlanOnceV[Fv] || PlanSmallV[Fv]) &&
            !InlineOnV[Fv]) {
          inlineCallAt(E, Fn, Fv, PlanOnceV[Fv] != 0);
          InlineOnV[Fv] = 1;
          visit(E);
          InlineOnV[Fv] = 0;
          return;
        }
        if (PlanActive && PlanFlattenV[Fv] > 0 && E->Args.size() == 2) {
          // The fresh selects are not revisited this phase (the rounds
          // engine emits them unrewritten); they fold next phase.
          flattenCallAt(E, Fv);
          return;
        }
        return;
      }

      case Cexp::Kind::Fix: {
        // Fixpoint-era loop-invariant hoisting: a closed allocation in a
        // self-recursive known function's straight-line prefix moves
        // above the Fix (once per loop instead of once per iteration).
        // The node E becomes the hoisted binding; reprocess it in place.
        if (HoistOn && hoistFromFix(E))
          continue;
        // Pass 1: dead functions and eta-conts.
        CFun **Fs = E->Funs.mutableBegin();
        size_t N = E->Funs.size(), J = 0;
        for (size_t I = 0; I < N; ++I) {
          CFun *F = Fs[I];
          CVar Name = F->Name;
          if (FnDefV[Name] != F)
            continue; // unlinked earlier (stale entry)
          if (!liveOrFresh(Name)) {
            FnDefV[Name] = nullptr;
            FixNodeV[Name] = nullptr;
            censusRemove(F->Body);
            ++Stats.DeadRemoved;
            ++Contractions;
            continue;
          }
          // Eta: cont k(x) = j(x) ==> k := j. The plan guard tests the
          // as-written head, before substitution, exactly as the rounds
          // engine's !isOnce/!isSmall eta guard does: redirecting uses
          // onto a function planned for inlining would invalidate the
          // plan's use counts.
          if (F->K == CFun::Kind::Cont && F->Params.size() == 1 &&
              F->Body->K == Cexp::Kind::App &&
              F->Body->Args.size() == 1 && F->Body->Args[0].isVar() &&
              F->Body->Args[0].V == F->Params[0] && F->Body->F.isVar() &&
              F->Body->F.V != Name && !PlanOnceV[F->Body->F.V] &&
              !PlanSmallV[F->Body->F.V]) {
            CValue J2 = rv(F->Body->F);
            // Guard self-substitution through a mutual eta pair.
            if (!(J2.isVar() && J2.V == Name)) {
              ++Stats.EtaConts;
              ++Contractions;
              dropUse(F->Body->F, /*Call=*/true);
              dropUse(F->Body->Args[0]);
              FnDefV[Name] = nullptr;
              FixNodeV[Name] = nullptr;
              bindSubst(Name, J2);
              continue;
            }
          }
          // Fixpoint-era eta: fun/cont k(x...) = g(x...) ==> k := g for
          // any arity and kind (the legacy rule above covers only
          // one-parameter continuations, and fires first so its stat
          // attribution is unchanged).
          if (EtaOn && etaReduceFun(F, Name))
            continue;
          Fs[J++] = F;
        }
        E->Funs.truncate(J);
        if (J == 0) {
          spliceOut(E);
          continue;
        }
        // Pass 2: kinds, entry flattening, bodies. Every member kept by
        // pass 1 is visited — the rounds engine rewrites all of them even
        // if a sibling's rewrite dropped their last use this round. A
        // flattened entry wraps the body in its rebuild record only after
        // the body's sweep, so the body's selects fold against it next
        // phase, not this one (the rounds engine constructs the record
        // around the already-rewritten body).
        for (size_t I = 0; I < E->Funs.size(); ++I) {
          CFun *F = E->Funs.mutableBegin()[I];
          CVar Name = F->Name;
          if (FnDefV[Name] != F)
            continue; // unlinked elsewhere (stale entry)
          size_t MB = WrapBoxOf.mark(), MU = UnwrapOf.mark(),
                 MR = RecordsOf.mark();
          ++WrapDepth;
          bool SaveLoop = InLoopBody;
          // Inherited through the nest: continuations and helpers defined
          // inside a loop body run per iteration too.
          InLoopBody = SaveLoop || (Name < PhaseFloor &&
                                    (SelfRecPV[Name] || LoopNestPV[Name]));
          if (PlanActive && PlanFlattenV[Name] > 0 &&
              F->Params.size() == 2) {
            visit(F->Body);
            InLoopBody = SaveLoop;
            --WrapDepth;
            WrapBoxOf.popTo(MB);
            UnwrapOf.popTo(MU);
            RecordsOf.popTo(MR);
            flattenEntry(F, PlanFlattenV[Name]);
            continue;
          }
          if (F->K != CFun::Kind::Cont)
            // Phase-entry escape status, not the live counts: mid-phase
            // count transfers (eta substitution) must not flip a kind the
            // phase-entry census had already settled. Functions created
            // this phase have no entry census and default to Known.
            F->K = (Name < PhaseFloor && EscPV[Name]) ? CFun::Kind::Escape
                                                      : CFun::Kind::Known;
          visit(F->Body);
          InLoopBody = SaveLoop;
          --WrapDepth;
          WrapBoxOf.popTo(MB);
          UnwrapOf.popTo(MU);
          RecordsOf.popTo(MR);
        }
        E = E->C1;
        continue;
      }

      case Cexp::Kind::Branch: {
        resolveArgs(E);
        Cexp *Live = nullptr;
        if (E->BOp == BranchOp::IsBoxed && !E->Args[0].isVar())
          Live = E->Args[0].K != CValue::Kind::Int ? E->C1 : E->C2;
        else if (E->Args.size() == 2 &&
                 E->Args[0].K == CValue::Kind::Int &&
                 E->Args[1].K == CValue::Kind::Int) {
          int64_t X = E->Args[0].I, Y = E->Args[1].I;
          bool T;
          bool Known = true;
          switch (E->BOp) {
          case BranchOp::Ieq: T = X == Y; break;
          case BranchOp::Ine: T = X != Y; break;
          case BranchOp::Ilt: T = X < Y; break;
          case BranchOp::Ile: T = X <= Y; break;
          case BranchOp::Igt: T = X > Y; break;
          case BranchOp::Ige: T = X >= Y; break;
          case BranchOp::Ult:
            T = static_cast<uint64_t>(X) < static_cast<uint64_t>(Y);
            break;
          default:
            Known = false;
            T = false;
          }
          if (Known)
            Live = T ? E->C1 : E->C2;
        }
        if (Live) {
          ++Stats.BranchesFolded;
          ++Contractions;
          Cexp *Dead = Live == E->C1 ? E->C2 : E->C1;
          censusRemove(Dead);
          replaceWith(E, Live);
          continue;
        }
        {
          size_t MB = WrapBoxOf.mark(), MU = UnwrapOf.mark(),
                 MR = RecordsOf.mark();
          visit(E->C1);
          WrapBoxOf.popTo(MB);
          UnwrapOf.popTo(MU);
          RecordsOf.popTo(MR);
        }
        E = E->C2;
        continue;
      }

      case Cexp::Kind::Arith: {
        resolveArgs(E);
        bool CanTrap = E->Op == CpsOp::IDiv || E->Op == CpsOp::IMod;
        if (!liveOrFresh(E->W) && !CanTrap) {
          removeValueNode(E);
          continue;
        }
        if (E->Args.size() == 2 && E->Args[0].K == CValue::Kind::Int &&
            E->Args[1].K == CValue::Kind::Int) {
          int64_t X = E->Args[0].I, Y = E->Args[1].I;
          int64_t R;
          bool Known = true;
          switch (E->Op) {
          case CpsOp::IAdd: R = X + Y; break;
          case CpsOp::ISub: R = X - Y; break;
          case CpsOp::IMul: R = X * Y; break;
          case CpsOp::IDiv:
          case CpsOp::IMod: {
            // SML div/mod round toward negative infinity (match the VM).
            Known = Y != 0;
            if (!Known) {
              R = 0;
              break;
            }
            int64_t Q = X / Y;
            int64_t Rm = X % Y;
            if (Rm != 0 && ((Rm < 0) != (Y < 0))) {
              Q -= 1;
              Rm += Y;
            }
            R = E->Op == CpsOp::IDiv ? Q : Rm;
            break;
          }
          default: Known = false; R = 0;
          }
          if (Known) {
            ++Stats.ConstantsFolded;
            ++Contractions;
            DefNodeV[E->W] = nullptr;
            bindSubst(E->W, CValue::intC(R));
            spliceOut(E);
            continue;
          }
        }
        if (E->Args.size() == 1 && E->Args[0].K == CValue::Kind::Int &&
            (E->Op == CpsOp::INeg || E->Op == CpsOp::IAbs)) {
          int64_t X = E->Args[0].I;
          ++Stats.ConstantsFolded;
          ++Contractions;
          DefNodeV[E->W] = nullptr;
          bindSubst(E->W, CValue::intC(E->Op == CpsOp::INeg
                                           ? -X
                                           : (X < 0 ? -X : X)));
          spliceOut(E);
          continue;
        }
        E = E->C1;
        continue;
      }

      case Cexp::Kind::Pure: {
        resolveArgs(E);
        if (E->Op == CpsOp::Copy) {
          ++Contractions;
          CValue Repl = E->Args[0];
          DefNodeV[E->W] = nullptr;
          bindSubst(E->W, Repl);
          dropUse(Repl);
          spliceOut(E);
          continue;
        }
        if (!liveOrFresh(E->W)) {
          removeValueNode(E);
          continue;
        }
        E = E->C1;
        continue;
      }

      case Cexp::Kind::Looker: {
        resolveArgs(E);
        bool CanTrap =
            E->Op == CpsOp::LoadCell || E->Op == CpsOp::LoadByte;
        if (!liveOrFresh(E->W) && !CanTrap) {
          removeValueNode(E);
          continue;
        }
        E = E->C1;
        continue;
      }

      case Cexp::Kind::Setter:
      case Cexp::Kind::CCall:
        resolveArgs(E);
        E = E->C1;
        continue;

      case Cexp::Kind::Halt:
        E->F = rv(E->F);
        return;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Beta / inline / flatten
  //===--------------------------------------------------------------------===//

  CValue cloneVal(const CValue &V,
                  const std::unordered_map<CVar, CValue> &Rn) const {
    if (!V.isVar())
      return V;
    auto It = Rn.find(V.V);
    return It == Rn.end() ? rv(V) : It->second;
  }

  CVar freshBinder(CVar Old, std::unordered_map<CVar, CValue> &Rn) {
    CVar N = B.fresh();
    ensure(N);
    Rn[Old] = CValue::var(N);
    return N;
  }

  /// Alpha-renaming deep copy that also registers every cloned occurrence
  /// and binder in the census.
  Cexp *cloneCounted(const Cexp *E, std::unordered_map<CVar, CValue> &Rn) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      std::vector<CField> Fields;
      for (const CField &F : E->Fields) {
        CValue V = cloneVal(F.V, Rn);
        addUse(V);
        Fields.push_back(CField{V, F.IsFloat});
      }
      CVar W = freshBinder(E->W, Rn);
      Cexp *N = B.record(E->RK, Fields, W, nullptr);
      N->WTy = E->WTy;
      defineVar(W, E->WTy, N);
      N->C1 = cloneCounted(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Select: {
      CValue Base = cloneVal(E->F, Rn);
      addUse(Base);
      CVar W = freshBinder(E->W, Rn);
      Cexp *N = B.select(E->Idx, E->IsFloat, Base, W, E->WTy, nullptr);
      defineVar(W, E->WTy, N);
      N->C1 = cloneCounted(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::App: {
      CValue F = cloneVal(E->F, Rn);
      addUse(F, /*Call=*/true);
      std::vector<CValue> Args;
      for (const CValue &V : E->Args) {
        CValue A2 = cloneVal(V, Rn);
        addUse(A2);
        Args.push_back(A2);
      }
      return B.app(F, Args);
    }
    case Cexp::Kind::Fix: {
      std::vector<CFun *> Funs;
      for (const CFun *F : E->Funs)
        freshBinder(F->Name, Rn);
      for (const CFun *F : E->Funs) {
        std::vector<CVar> Params;
        std::vector<Cty> Tys(F->ParamTys.begin(), F->ParamTys.end());
        for (CVar P : F->Params)
          Params.push_back(freshBinder(P, Rn));
        for (size_t I = 0; I < Params.size(); ++I)
          VarTyV[Params[I]] = Tys[I];
        Cexp *Body = cloneCounted(F->Body, Rn);
        Funs.push_back(B.fun(F->K, Rn.at(F->Name).V, Params, Tys, Body));
      }
      Cexp *N = B.fix(Funs, nullptr);
      for (CFun *F : Funs) {
        FnDefV[F->Name] = F;
        FixNodeV[F->Name] = N;
      }
      N->C1 = cloneCounted(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Branch: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args) {
        CValue A2 = cloneVal(V, Rn);
        addUse(A2);
        Args.push_back(A2);
      }
      Cexp *Then = cloneCounted(E->C1, Rn);
      Cexp *Else = cloneCounted(E->C2, Rn);
      return B.branch(E->BOp, Args, Then, Else);
    }
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args) {
        CValue A2 = cloneVal(V, Rn);
        addUse(A2);
        Args.push_back(A2);
      }
      CVar W = freshBinder(E->W, Rn);
      Cexp *N;
      if (E->K == Cexp::Kind::Arith)
        N = B.arith(E->Op, Args, W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Pure)
        N = B.pure(E->Op, Args, W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Looker)
        N = B.looker(E->Op, Args, W, E->WTy, nullptr);
      else
        N = B.ccall(E->Op, Args, W, E->WTy, nullptr);
      defineVar(W, E->WTy, N);
      N->C1 = cloneCounted(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Setter: {
      std::vector<CValue> Args;
      for (const CValue &V : E->Args) {
        CValue A2 = cloneVal(V, Rn);
        addUse(A2);
        Args.push_back(A2);
      }
      Cexp *N = B.setter(E->Op, Args, nullptr);
      N->C1 = cloneCounted(E->C1, Rn);
      return N;
    }
    case Cexp::Kind::Halt: {
      CValue V = cloneVal(E->F, Rn);
      addUse(V);
      Cexp *N = B.halt(V);
      N->Idx = E->Idx;
      return N;
    }
    }
    assert(false && "unknown CPS node in cloneCounted");
    return nullptr;
  }

  /// In-place variant of cloneCounted for a clone source that will never
  /// be read again (a once-inline's body snapshot): renames every binder
  /// to a fresh variable, resolves every occurrence, and registers both
  /// in the census — without allocating a second copy of the tree.
  void adoptCounted(Cexp *E, std::unordered_map<CVar, CValue> &Rn) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record: {
        CField *Fs = E->Fields.mutableBegin();
        for (size_t I = 0; I < E->Fields.size(); ++I) {
          Fs[I].V = cloneVal(Fs[I].V, Rn);
          addUse(Fs[I].V);
        }
        E->W = freshBinder(E->W, Rn);
        defineVar(E->W, E->WTy, E);
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Select: {
        E->F = cloneVal(E->F, Rn);
        addUse(E->F);
        E->W = freshBinder(E->W, Rn);
        defineVar(E->W, E->WTy, E);
        E = E->C1;
        continue;
      }
      case Cexp::Kind::App: {
        E->F = cloneVal(E->F, Rn);
        addUse(E->F, /*Call=*/true);
        CValue *Vs = E->Args.mutableBegin();
        for (size_t I = 0; I < E->Args.size(); ++I) {
          Vs[I] = cloneVal(Vs[I], Rn);
          addUse(Vs[I]);
        }
        return;
      }
      case Cexp::Kind::Fix: {
        // Sibling member names must all be renamed before any body is
        // adopted (mutual references resolve through Rn).
        for (CFun *F : E->Funs)
          freshBinder(F->Name, Rn);
        CFun **Fns = E->Funs.mutableBegin();
        for (size_t I = 0; I < E->Funs.size(); ++I) {
          CFun *F = Fns[I];
          CVar *Ps = F->Params.mutableBegin();
          for (size_t J = 0; J < F->Params.size(); ++J) {
            Ps[J] = freshBinder(Ps[J], Rn);
            VarTyV[Ps[J]] = F->ParamTys.begin()[J];
          }
          adoptCounted(F->Body, Rn);
          F->Name = Rn.at(F->Name).V;
          FnDefV[F->Name] = F;
          FixNodeV[F->Name] = E;
        }
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Branch: {
        CValue *Vs = E->Args.mutableBegin();
        for (size_t I = 0; I < E->Args.size(); ++I) {
          Vs[I] = cloneVal(Vs[I], Rn);
          addUse(Vs[I]);
        }
        adoptCounted(E->C1, Rn);
        E = E->C2;
        continue;
      }
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall: {
        CValue *Vs = E->Args.mutableBegin();
        for (size_t I = 0; I < E->Args.size(); ++I) {
          Vs[I] = cloneVal(Vs[I], Rn);
          addUse(Vs[I]);
        }
        E->W = freshBinder(E->W, Rn);
        defineVar(E->W, E->WTy, E);
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Setter: {
        CValue *Vs = E->Args.mutableBegin();
        for (size_t I = 0; I < E->Args.size(); ++I) {
          Vs[I] = cloneVal(Vs[I], Rn);
          addUse(Vs[I]);
        }
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Halt: {
        E->F = cloneVal(E->F, Rn);
        addUse(E->F);
        return;
      }
      }
      assert(false && "unknown CPS node in adoptCounted");
      return;
    }
  }

  /// Verbatim deep copy: no renaming, no census registration. Freezes a
  /// planned function's body exactly as it stands at phase entry; inline
  /// sites clone from the frozen copy so mid-phase contractions of the
  /// original body cannot leak into the clones (the rounds engine inlines
  /// from the immutable pre-rewrite tree).
  Cexp *snapCopy(const Cexp *E) {
    switch (E->K) {
    case Cexp::Kind::Record: {
      std::vector<CField> Fields(E->Fields.begin(), E->Fields.end());
      Cexp *N = B.record(E->RK, Fields, E->W, nullptr);
      N->WTy = E->WTy;
      N->C1 = snapCopy(E->C1);
      return N;
    }
    case Cexp::Kind::Select: {
      Cexp *N = B.select(E->Idx, E->IsFloat, E->F, E->W, E->WTy, nullptr);
      N->C1 = snapCopy(E->C1);
      return N;
    }
    case Cexp::Kind::App:
      return B.app(E->F,
                   std::vector<CValue>(E->Args.begin(), E->Args.end()));
    case Cexp::Kind::Fix: {
      std::vector<CFun *> Funs;
      for (const CFun *F : E->Funs)
        Funs.push_back(
            B.fun(F->K, F->Name,
                  std::vector<CVar>(F->Params.begin(), F->Params.end()),
                  std::vector<Cty>(F->ParamTys.begin(), F->ParamTys.end()),
                  snapCopy(F->Body)));
      Cexp *N = B.fix(Funs, nullptr);
      N->C1 = snapCopy(E->C1);
      return N;
    }
    case Cexp::Kind::Branch:
      return B.branch(E->BOp,
                      std::vector<CValue>(E->Args.begin(), E->Args.end()),
                      snapCopy(E->C1), snapCopy(E->C2));
    case Cexp::Kind::Arith:
    case Cexp::Kind::Pure:
    case Cexp::Kind::Looker:
    case Cexp::Kind::CCall: {
      std::vector<CValue> Args(E->Args.begin(), E->Args.end());
      Cexp *N;
      if (E->K == Cexp::Kind::Arith)
        N = B.arith(E->Op, Args, E->W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Pure)
        N = B.pure(E->Op, Args, E->W, E->WTy, nullptr);
      else if (E->K == Cexp::Kind::Looker)
        N = B.looker(E->Op, Args, E->W, E->WTy, nullptr);
      else
        N = B.ccall(E->Op, Args, E->W, E->WTy, nullptr);
      N->C1 = snapCopy(E->C1);
      return N;
    }
    case Cexp::Kind::Setter: {
      std::vector<CValue> Args(E->Args.begin(), E->Args.end());
      Cexp *N = B.setter(E->Op, Args, nullptr);
      N->C1 = snapCopy(E->C1);
      return N;
    }
    case Cexp::Kind::Halt: {
      Cexp *N = B.halt(E->F);
      N->Idx = E->Idx;
      return N;
    }
    }
    assert(false && "unknown CPS node in snapCopy");
    return nullptr;
  }

  /// Inline-expands a planned function at one call site (clone + splice;
  /// the original binding dies through the count cascade once its last
  /// call site is consumed). Clones from the phase-entry snapshot.
  void inlineCallAt(Cexp *E, const CFun *Fn, CVar Fv, bool Once) {
    assert(Fn->Params.size() == E->Args.size() && "inline arity mismatch");
    assert(SnapBodyV[Fv] && "planned function has no body snapshot");
    ++(Once ? Stats.InlinedOnce : Stats.InlinedSmall);
    ++Contractions;
    std::unordered_map<CVar, CValue> Rn;
    for (size_t I = 0; I < E->Args.size(); ++I)
      Rn[Fn->Params[I]] = E->Args[I];
    Cexp *Cl;
    if (Once && AdoptableV[Fv]) {
      // Provably the last materialization of this body: rename/register
      // the snapshot in place instead of copying it a second time.
      Cl = SnapBodyV[Fv];
      adoptCounted(Cl, Rn);
      SnapBodyV[Fv] = nullptr;
    } else {
      Cl = cloneCounted(SnapBodyV[Fv], Rn);
    }
    dropUse(E->F, /*Call=*/true);
    for (const CValue &V : E->Args)
      dropUse(V);
    replaceWith(E, Cl);
  }

  /// Rewrites one flattened call site: N fresh selects feed a spread call.
  void flattenCallAt(Cexp *E, CVar Fv) {
    int N = PlanFlattenV[Fv];
    ++Contractions;
    CValue RecV = E->Args[0];
    CValue K = E->Args[1];
    std::vector<CValue> NewArgs;
    std::vector<CVar> Sels;
    for (int I = 0; I < N; ++I) {
      CVar S = B.fresh();
      ensure(S);
      Sels.push_back(S);
      NewArgs.push_back(CValue::var(S));
    }
    NewArgs.push_back(K);
    Cexp *Call = B.app(E->F, NewArgs);
    for (int I = N; I-- > 0;) {
      Call = B.select(I, false, RecV, Sels[I], Cty::ptrUnknown(), Call);
      defineVar(Sels[I], Cty::ptrUnknown(), Call);
      UseV[Sels[I]] = 1; // one occurrence, in the new arg list
      addUse(RecV);
    }
    dropUse(RecV); // the old direct record argument occurrence
    replaceWith(E, Call);
  }

  /// Rewrites a flattened function's entry: fresh component params and a
  /// record rebuild the original parameter (folded away by the next
  /// shrink phase once only selects remain).
  void flattenEntry(CFun *F, int N) {
    ++Stats.KnownFnsFlattened;
    if (PlanFagV[F->Name]) {
      ++Stats.CensusFlattened;
      NewRuleFired = true;
    }
    ++Contractions;
    CVar OldRec = F->Params[0];
    CVar OldK = F->Params[1];
    Cty OldKTy = F->ParamTys[1];
    std::vector<CVar> Params;
    std::vector<Cty> Tys;
    std::vector<CField> Fields;
    for (int I = 0; I < N; ++I) {
      CVar P = B.fresh();
      ensure(P);
      Params.push_back(P);
      Tys.push_back(Cty::ptrUnknown());
      VarTyV[P] = Cty::ptrUnknown();
      UseV[P] = 1; // one occurrence, in the rebuild record
      Fields.push_back(CField{CValue::var(P), false});
    }
    Params.push_back(OldK);
    Tys.push_back(OldKTy);
    Cexp *Rec = B.record(RecordKind::Std, Fields, OldRec, F->Body);
    defineVar(OldRec, Rec->WTy, Rec);
    F->K = CFun::Kind::Known;
    F->Params = Span<CVar>::copy(A, Params);
    F->ParamTys = Span<Cty>::copy(A, Tys);
    F->Body = Rec;
  }

  //===--------------------------------------------------------------------===//
  // Fixpoint-era rules (eta of functions, loop-invariant hoisting)
  //===--------------------------------------------------------------------===//

  /// Generalized eta: a function or continuation whose body is exactly a
  /// forwarding call of its own parameters, in order, renames to the
  /// target. The body being a single App node means the target's binding
  /// necessarily dominates this Fix, so redirecting every use of the
  /// forwarder is scope-safe. Same plan guards and mutual-pair guard as
  /// the legacy cont-eta, plus a guard against redirecting onto a
  /// function planned for flattening this phase (its call sites were
  /// vetted at phase entry; inherited sites were not).
  bool etaReduceFun(CFun *F, CVar Name) {
    Cexp *Bd = F->Body;
    if (Bd->K != Cexp::Kind::App || !Bd->F.isVar() || Bd->F.V == Name ||
        Bd->Args.size() != F->Params.size())
      return false;
    if (PlanOnceV[Bd->F.V] || PlanSmallV[Bd->F.V] ||
        PlanFlattenV[Bd->F.V] > 0)
      return false;
    for (size_t I = 0; I < F->Params.size(); ++I)
      if (!(Bd->Args[I].isVar() && Bd->Args[I].V == F->Params[I]))
        return false;
    CValue J2 = rv(Bd->F);
    if (!J2.isVar() || J2.V == Name)
      return false;
    CVar G = J2.V;
    if (PlanOnceV[G] || PlanSmallV[G] || PlanFlattenV[G] > 0)
      return false;
    // The target must not be one of F's own params: that binding is not
    // in scope at F's other use sites.
    for (CVar P : F->Params)
      if (P == G)
        return false;
    if (const CFun *GF = FnDefV[G]) {
      if ((GF->K == CFun::Kind::Cont) != (F->K == CFun::Kind::Cont))
        return false;
      if (GF->Params.size() != F->Params.size())
        return false;
    } else {
      // No definition in sight (a parameter or closure value): allow
      // only targets whose CTY proves the same calling species.
      CtyKind TK = VarTyV[G].K;
      if (F->K == CFun::Kind::Cont ? TK != CtyKind::Cnt
                                   : TK != CtyKind::Fun)
        return false;
    }
    ++Stats.EtaFuns;
    ++Contractions;
    NewRuleFired = true;
    dropUse(Bd->F, /*Call=*/true);
    for (const CValue &V : Bd->Args)
      dropUse(V);
    FnDefV[Name] = nullptr;
    FixNodeV[Name] = nullptr;
    bindSubst(Name, J2);
    return true;
  }

  /// Finds a hoistable allocation in F's straight-line body prefix: a
  /// non-Ref Record whose fields are all constants or variables bound
  /// outside the function (so the value is loop-invariant). The scan
  /// stops at the first control or effect node; a Ref allocation is a
  /// barrier too — it is observably fresh per iteration.
  Cexp *findHoistable(const Cexp *Fx, const CFun *F) {
    HoistSeen.clear();
    for (const CFun *G : Fx->Funs)
      HoistSeen.set(G->Name, 1); // bundle names are not in scope above
    for (CVar P : F->Params)
      HoistSeen.set(P, 1);
    return hoistScan(F->Body, F->Name, /*BranchBudget=*/0);
  }

  /// Does any App under \p N (including nested function bodies — loops
  /// commonly recurse through an inner continuation) call \p Name?
  bool containsCall(const Cexp *N, CVar Name) {
    for (;;) {
      switch (N->K) {
      case Cexp::Kind::App: {
        CValue F = rv(N->F);
        return F.isVar() && F.V == Name;
      }
      case Cexp::Kind::Fix:
        for (const CFun *G : N->Funs)
          if (containsCall(G->Body, Name))
            return true;
        N = N->C1;
        continue;
      case Cexp::Kind::Branch:
        if (containsCall(N->C1, Name))
          return true;
        N = N->C2;
        continue;
      case Cexp::Kind::Halt:
        return false;
      default:
        N = N->C1;
        continue;
      }
    }
  }

  /// The scan behind findHoistable. At budget 0 it walks only the part
  /// of the body that runs unconditionally on every iteration — the
  /// straight-line prefix — so moving a closed alloc above the Fix is
  /// guaranteed non-increasing (once per loop entry <= once per
  /// iteration). A positive budget additionally descends, at each
  /// branch, into the arm that leads back to the recursive call when
  /// the other arm does not (the `if done then k(r) else <body;
  /// loop(...)>` rotation). Both relaxations were measured and lost:
  /// descending into both arms regressed KB-C 4% (cold exit-path allocs
  /// made unconditional), and backedge-only descent regressed Simple
  /// (+36) and VLIW (+232) on loops that exit after their first test.
  /// The budget stays 0 until a profile says otherwise. Fix nodes
  /// execute nothing at this IR level; the scan steps over them after
  /// marking their names loop-local. Binders seen stay in HoistSeen
  /// across the walk, which can only make the closed check more
  /// conservative, never wrong.
  Cexp *hoistScan(Cexp *N, CVar LoopName, int BranchBudget) {
    for (;;) {
      switch (N->K) {
      case Cexp::Kind::Record: {
        if (N->RK == RecordKind::Ref)
          return nullptr; // observably fresh per iteration: a barrier
        if (N->RK != RecordKind::FloatBox || Opts.CpsWrapCancel) {
          bool Closed = true;
          for (const CField &Fd : N->Fields) {
            CValue V = rv(Fd.V);
            if (V.isVar() && HoistSeen.has(V.V)) {
              Closed = false;
              break;
            }
          }
          if (Closed)
            return N;
        }
        HoistSeen.set(N->W, 1);
        N = N->C1;
        continue;
      }
      case Cexp::Kind::Select:
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
        HoistSeen.set(N->W, 1);
        N = N->C1;
        continue;
      case Cexp::Kind::Fix:
        for (const CFun *G : N->Funs)
          HoistSeen.set(G->Name, 1);
        N = N->C1;
        continue;
      case Cexp::Kind::Branch: {
        if (BranchBudget == 0)
          return nullptr;
        --BranchBudget;
        bool InC1 = containsCall(N->C1, LoopName);
        bool InC2 = containsCall(N->C2, LoopName);
        if (InC1 == InC2)
          return nullptr; // no backedge below, or one on each arm
        N = InC1 ? N->C1 : N->C2;
        continue;
      }
      default:
        return nullptr; // control/effect: end of the hoistable region
      }
    }
  }

  /// Hoists one closed allocation out of one self-recursive known
  /// function of this Fix. Returns true if the Fix node was rewritten
  /// (it now holds the hoisted Record; the caller reprocesses it).
  /// Census counts are unchanged — the binding and all its uses survive,
  /// only the binding's position moves (its def still dominates every
  /// use, now from above the Fix).
  bool hoistFromFix(Cexp *Fx) {
    for (CFun *F : Fx->Funs) {
      CVar Name = F->Name;
      if (FnDefV[Name] != F)
        continue;
      if (!(Name < PhaseFloor && (SelfRecPV[Name] || LoopNestPV[Name]) &&
            !EscPV[Name]))
        continue;
      Cexp *R = findHoistable(Fx, F);
      if (!R)
        continue;
      ++Stats.HoistedAllocs;
      ++Contractions;
      NewRuleFired = true;
      // The Fix node's contents migrate to a fresh node, R's contents
      // take over the Fix node's slot (its parent now sees the Record),
      // and R's old position splices to its own tail.
      Cexp *FixCopy = A.create<Cexp>();
      *FixCopy = *Fx;
      reanchor(FixCopy);
      Cexp *Tail = R->C1;
      *Fx = *R;
      Fx->C1 = FixCopy;
      reanchor(Fx);
      replaceWith(R, Tail);
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Expand planning
  //===--------------------------------------------------------------------===//

  /// Recomputes the expand-phase facts the incremental census does not
  /// track (only-word-selected params, self-recursion) and plans the
  /// bounded non-shrinking passes. Returns true if any plan was made.
  bool planExpand(const Cexp *Root) {
    std::fill(PlanOnceV.begin(), PlanOnceV.end(), 0);
    std::fill(PlanSmallV.begin(), PlanSmallV.end(), 0);
    std::fill(PlanFlattenV.begin(), PlanFlattenV.end(), 0);
    if (FagOn) {
      std::fill(FagLenV.begin(), FagLenV.end(), 0);
      std::fill(SelMaskV.begin(), SelMaskV.end(), 0);
      std::fill(PlanFagV.begin(), PlanFagV.end(), 0);
    }
    std::fill(OwsV.begin(), OwsV.end(), 0);
    std::fill(SelfRecPV.begin(), SelfRecPV.end(), 0);
    std::fill(LoopNestPV.begin(), LoopNestPV.end(), 0);
    AliveFns.clear();
    CallEdges.clear();
    PlanParentOf.clear();
    {
      SMLTC_SPAN("cps_plan_walk", "compile");
      planWalk(Root, nullptr);
    }
    bool Any = false;
    for (CVar Name : AliveFns) {
      const CFun *F = FnDefV[Name];
      if (!F)
        continue;
      int U = UseV[Name], C = CallsV[Name];
      if (U == 0 || U != C)
        continue; // dead, or escapes (some use is not a call)
      bool SelfRec = SelfRecPV[Name] != 0;
      if (C == 1 && !SelfRec) {
        PlanOnceV[Name] = 1;
        Any = true;
        continue;
      }
      if (Opts.InlineSmallFns && !SelfRec && bodyAtMost(F->Body, 10) &&
          C <= 6) {
        PlanSmallV[Name] = 1;
        Any = true;
        continue;
      }
      if (Opts.KnownFnFlattening && F->K != CFun::Kind::Cont &&
          F->Params.size() == 2) {
        Cty PT = F->ParamTys[0];
        if (PT.K == CtyKind::PtrKnown && PT.Len >= 2 &&
            PT.Len <= Opts.MaxSpreadArgs && OwsV[F->Params[0]] == 1) {
          PlanFlattenV[Name] = PT.Len;
          Any = true;
        } else if (FagOn && OwsV[F->Params[0]] == 1 && FagLenV[Name] >= 2 &&
                   SelMaskV[F->Params[0]] ==
                       (1u << FagLenV[Name]) - 1u) {
          // Census-driven sml.fag: the record's shape is proven by its
          // construction at every call site rather than by the parameter
          // type. Requiring the body to select every component keeps the
          // rewrite a win — otherwise a k-of-N select pattern would turn
          // into N argument moves.
          PlanFlattenV[Name] = FagLenV[Name];
          PlanFagV[Name] = 1;
          Any = true;
        }
      }
    }
    if (Any) {
      SMLTC_SPAN("cps_plan_prune", "compile");
      Any = prunePlanCycles() || anyFlatten();
    }
    SMLTC_SPAN("cps_plan_snap", "compile");
    // Freeze phase-entry state: escape bits for every live function (kind
    // recompute in pass 2 must not see mid-phase count transfers), and body
    // snapshots for the planned inline survivors (clone sources must not see
    // mid-phase contractions of the original body).
    for (CVar Name : AliveFns) {
      EscPV[Name] = UseV[Name] != CallsV[Name] ? 1 : 0;
      AdoptableV[Name] = PlanOnceV[Name];
      SnapBodyV[Name] =
          (Any && (PlanOnceV[Name] || PlanSmallV[Name]) && FnDefV[Name])
              ? snapCopy(FnDefV[Name]->Body)
              : nullptr;
    }
    // A once-planned function's snapshot can be adopted (renamed in place,
    // no second copy) only if its single call cannot be duplicated this
    // phase — i.e. no OTHER surviving planned function holds a call to it
    // inside its own snapshot. Such a call lives in the body of some
    // candidate on the edge owner's nesting-ancestor chain.
    for (const auto &[O, T] : CallEdges) {
      if (!PlanOnceV[T])
        continue;
      for (CVar A = O;;) {
        if (A != T && (PlanOnceV[A] || PlanSmallV[A])) {
          AdoptableV[T] = 0;
          break;
        }
        const CVar *P = PlanParentOf.get(A);
        if (!P)
          break;
        A = *P;
      }
    }
    return Any;
  }

  bool anyFlatten() const {
    for (CVar Name : AliveFns)
      if (PlanFlattenV[Name] > 0)
        return true;
    return false;
  }

  void planWalk(const Cexp *E, const CFun *Owner) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          notOws(F.V);
        E = E->C1;
        continue;
      case Cexp::Kind::Select: {
        if (E->IsFloat) {
          notOws(E->F);
        } else if (FagOn) {
          CValue Bv = rv(E->F);
          if (Bv.isVar() && E->Idx >= 0 && E->Idx < 31)
            SelMaskV[Bv.V] |= 1u << E->Idx;
        }
        E = E->C1;
        continue;
      }
      case Cexp::Kind::App: {
        CValue F = rv(E->F);
        if (F.isVar()) {
          OwsV[F.V] = 2;
          if (Owner && F.V == Owner->Name)
            SelfRecPV[Owner->Name] = 1;
          // Loop-nest detection for the fixpoint-era rules: a call to a
          // lexical ancestor re-enters it, so everything between the
          // call and that ancestor runs per iteration. SelfRecPV stays
          // immediate-self-calls-only — it feeds the inline plan, whose
          // cadence must keep mirroring the rounds engine.
          if (Owner && FnDefV[F.V])
            for (CVar Anc = Owner->Name;;) {
              if (Anc == F.V) {
                LoopNestPV[F.V] = 1;
                break;
              }
              const CVar *Up = PlanParentOf.get(Anc);
              if (!Up)
                break;
              Anc = *Up;
            }
          // Call edge for cycle pruning. Only App heads can reference an
          // inline candidate (candidates have Uses == Calls, so a value
          // occurrence would have disqualified them), which lets the
          // pruner reuse this walk instead of re-walking candidate bodies.
          if (Owner && FnDefV[F.V])
            CallEdges.emplace_back(Owner->Name, F.V);
          // Census-driven flattening vets every call site, including
          // top-level ones outside any function.
          if (FagOn && FnDefV[F.V])
            noteFagSite(F.V, E);
        }
        for (const CValue &V : E->Args)
          notOws(V);
        return;
      }
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs) {
          AliveFns.push_back(F->Name);
          if (Owner)
            PlanParentOf.set(F->Name, Owner->Name);
          for (CVar P : F->Params)
            if (OwsV[P] == 0)
              OwsV[P] = 1; // optimistic until a disqualifying use
        }
        for (const CFun *F : E->Funs)
          planWalk(F->Body, F);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args)
          notOws(V);
        planWalk(E->C1, Owner);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          notOws(V);
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        notOws(E->F);
        return;
      }
    }
  }

  void notOws(const CValue &V) {
    CValue R = rv(V);
    if (R.isVar())
      OwsV[R.V] = 2;
  }

  /// Census-driven flattening facts: a function qualifies only when every
  /// call site passes a record proven (by its construction) to be a Std
  /// all-word record of one consistent length within MaxSpreadArgs — the
  /// paper's sml.fag discipline without needing a PtrKnown parameter
  /// type. -1 marks the function disqualified.
  void noteFagSite(CVar Fn, const Cexp *Site) {
    int32_t &L = FagLenV[Fn];
    if (L < 0)
      return;
    int N = -1;
    if (Site->Args.size() == 2) {
      CValue A0 = rv(Site->Args[0]);
      if (A0.isVar()) {
        const Cexp *D = DefNodeV[A0.V];
        if (D && D->K == Cexp::Kind::Record && D->RK == RecordKind::Std) {
          int Len = static_cast<int>(D->Fields.size());
          if (Len >= 2 && Len <= Opts.MaxSpreadArgs && Len < 31) {
            N = Len;
            for (const CField &Fd : D->Fields)
              if (Fd.IsFloat) {
                N = -1;
                break;
              }
          }
        }
      }
    }
    if (N < 0 || (L > 0 && L != N))
      L = -1;
    else
      L = N;
  }

  /// Mirrors the rounds engine's Kahn-style cycle pruning for the
  /// inline-small plan (mutually recursive candidates must keep their
  /// calls, identically in both engines). Returns true if any small
  /// candidate survives.
  ///
  /// A candidate's references to other candidates are reconstructed from
  /// the call edges planWalk collected, not by re-walking its body: a
  /// candidate has Uses == Calls, so every occurrence is an App head and
  /// planWalk has already resolved it. A candidate's body spans its own
  /// call edges plus those of every transitively nested function, so the
  /// per-candidate ref set is the edge union over its nesting subtree.
  bool prunePlanCycles() {
    std::vector<CVar> Candidates;
    for (CVar Name : AliveFns)
      if (PlanOnceV[Name] || PlanSmallV[Name])
        Candidates.push_back(Name);
    if (Candidates.empty())
      return false;
    std::unordered_map<CVar, std::unordered_set<CVar>> Refs;
    for (CVar V : Candidates)
      Refs[V];
    // An edge in function O's body belongs to every candidate whose body
    // encloses O — i.e. every candidate on O's nesting-ancestor chain
    // (including O itself).
    for (const auto &[O, T] : CallEdges) {
      if (!(PlanOnceV[T] || PlanSmallV[T]))
        continue;
      for (CVar A = O;;) {
        if (PlanOnceV[A] || PlanSmallV[A])
          Refs[A].insert(T);
        const CVar *P = PlanParentOf.get(A);
        if (!P)
          break;
        A = *P;
      }
    }
    bool Progress = true;
    std::unordered_set<CVar> Alive(Refs.size());
    for (auto &[V, _] : Refs)
      Alive.insert(V);
    while (Progress) {
      Progress = false;
      for (auto It = Alive.begin(); It != Alive.end();) {
        bool HasLiveRef = false;
        for (CVar R : Refs[*It])
          if (R != *It && Alive.count(R)) {
            HasLiveRef = true;
            break;
          }
        if (!HasLiveRef) {
          It = Alive.erase(It);
          Progress = true;
        } else {
          ++It;
        }
      }
    }
    for (CVar V : Alive) {
      PlanOnceV[V] = 0;
      PlanSmallV[V] = 0;
    }
    return Candidates.size() > Alive.size();
  }

  //===--------------------------------------------------------------------===//
  // Census audit (test hook)
  //===--------------------------------------------------------------------===//

  void auditCount(const Cexp *E, std::vector<int32_t> &U,
                  std::vector<int32_t> &C) const {
    auto Val = [&](const CValue &V, bool Call) {
      CValue R = rv(V);
      if (!R.isVar())
        return;
      if (static_cast<size_t>(R.V) < U.size()) {
        ++U[R.V];
        if (Call)
          ++C[R.V];
      }
    };
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record:
        for (const CField &F : E->Fields)
          Val(F.V, false);
        E = E->C1;
        continue;
      case Cexp::Kind::Select:
        Val(E->F, false);
        E = E->C1;
        continue;
      case Cexp::Kind::App:
        Val(E->F, true);
        for (const CValue &V : E->Args)
          Val(V, false);
        return;
      case Cexp::Kind::Fix:
        for (const CFun *F : E->Funs)
          auditCount(F->Body, U, C);
        E = E->C1;
        continue;
      case Cexp::Kind::Branch:
        for (const CValue &V : E->Args)
          Val(V, false);
        auditCount(E->C1, U, C);
        E = E->C2;
        continue;
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure:
      case Cexp::Kind::Looker:
      case Cexp::Kind::CCall:
      case Cexp::Kind::Setter:
        for (const CValue &V : E->Args)
          Val(V, false);
        E = E->C1;
        continue;
      case Cexp::Kind::Halt:
        Val(E->F, false);
        return;
      }
    }
  }

  void auditCensus(const Cexp *Root) {
    std::vector<int32_t> U(UseV.size(), 0), C(UseV.size(), 0);
    auditCount(Root, U, C);
    for (size_t I = 0; I < U.size(); ++I)
      if (U[I] != UseV[I] || C[I] != CallsV[I])
        ++Stats.CensusAuditFailures;
  }

  Arena &A;
  const CompilerOptions &Opts;
  CpsBuilder B;
  CVar &MaxVar;
  CpsOptStats &Stats;

  // Dense var-indexed census tables, grown together by ensure().
  std::vector<int32_t> UseV;
  std::vector<int32_t> CallsV;
  std::vector<Cexp *> DefNodeV;  ///< binder -> defining node
  std::vector<CFun *> FnDefV;    ///< fn name -> definition
  std::vector<Cexp *> FixNodeV;  ///< fn name -> its Fix node
  std::vector<Cty> VarTyV;
  std::vector<CValue> SubstV;
  std::vector<uint8_t> HasSubstV;
  std::vector<uint8_t> InlineOnV; ///< fns being clone-inlined right now
  std::vector<uint8_t> PlanOnceV;
  std::vector<uint8_t> PlanSmallV;
  std::vector<int32_t> PlanFlattenV;
  std::vector<uint8_t> OwsV; ///< 0 unseen, 1 only-word-selected, 2 not
  std::vector<uint8_t> SelfRecPV;
  /// Called from somewhere inside its own lexical nest (recursion through
  /// inner continuations, which SelfRecPV's immediate-self-call test
  /// misses). Drives the fixpoint-era loop heuristics only, never plans.
  std::vector<uint8_t> LoopNestPV;
  std::vector<uint8_t> EscPV; ///< phase-entry escape status per function
  /// Once-planned functions whose snapshot may be adopted in place (no
  /// other surviving candidate's snapshot can re-materialize their call).
  std::vector<uint8_t> AdoptableV;
  /// Phase-entry body snapshots for planned once/small functions: inline
  /// sites clone from these, never from the live (possibly already
  /// contracted this phase) body — the rounds engine inlines from the
  /// pre-rewrite tree, and plan parity requires the same clone contents.
  std::vector<Cexp *> SnapBodyV;

  std::vector<CVar> AliveFns;
  /// Call-graph facts planWalk collects for prunePlanCycles: resolved App
  /// heads that target a live function, and the function nesting tree.
  std::vector<std::pair<CVar, CVar>> CallEdges; ///< (owner fn, callee fn)
  DenseVarMap<CVar> PlanParentOf;               ///< nested fn -> enclosing fn

  // Fixpoint-era rule state (all unused when CpsOptMaxPhases > 0).
  /// Census-driven flattening: per-function consistent call-site record
  /// length (0 unseen, -1 disqualified), per-var bitmap of non-float
  /// select indices, and which flatten plans came from the census rule.
  std::vector<int32_t> FagLenV;
  std::vector<uint32_t> SelMaskV;
  std::vector<uint8_t> PlanFagV;
  /// Wrap-cancellation breadth: dominating FloatBox binder per raw float
  /// var, and dominating sel.f(box, 0) binder per box var. Scoped like
  /// the rounds engine's RecDefs/SelDefs (popped at branch arms and
  /// function-body boundaries). Each entry remembers the function-nesting
  /// depth it was bound at: reuse fires only at the same depth, because
  /// resurrecting a binder from an enclosing function turns it into a
  /// captured free variable and can grow closures past what the cancelled
  /// allocation saved (observed as a dynamic-instruction regression).
  struct WrapEntry {
    CVar V;
    int Depth;
  };
  /// Dominating selects per base var, a few entries each (the common
  /// record is selected at 2-4 distinct indices). A shadowing inner-scope
  /// set erases the whole per-base list on popTo — a missed CSE, never a
  /// wrong one.
  struct SelCseEntry {
    int32_t Idx;
    uint8_t IsFloat;
    CVar W;
    int Depth;
  };
  struct SelCseList {
    static constexpr uint8_t kMax = 4;
    SelCseEntry E[kMax];
    uint8_t N = 0;
  };
  /// Dominating general-record allocations, keyed by the first variable
  /// field (identical records share it by construction). Matching
  /// re-resolves the stored node's fields, so entries stay valid across
  /// later substitutions.
  struct RecCseEntry {
    const Cexp *R;
    int Depth;
  };
  struct RecCseList {
    static constexpr uint8_t kMax = 4;
    RecCseEntry E[kMax];
    uint8_t N = 0;
  };
  /// Field equality for record CSE. Conservatively only var and int
  /// fields compare equal: reals carry NaN and pad-slot encodings, and
  /// strings/labels never appear duplicated enough to matter.
  static bool sameValue(const CValue &A, const CValue &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case CValue::Kind::Var:
      return A.V == B.V;
    case CValue::Kind::Int:
      return A.I == B.I;
    default:
      return false;
    }
  }
  ScopedMap<WrapEntry> WrapBoxOf;
  ScopedMap<SelCseList> UnwrapOf;
  ScopedMap<RecCseList> RecordsOf;
  int WrapDepth = 0;       ///< current function-nesting depth in the sweep
  bool InLoopBody = false; ///< innermost enclosing function self-recurses
  DenseVarMap<uint8_t> HoistSeen; ///< loop-local binders during hoist scan
  bool EtaOn = false, FagOn = false, WrapOn = false, HoistOn = false;
  bool NewRuleFired = false; ///< a fixpoint-era rule fired this phase

  uint64_t Contractions = 0;
  bool PlanActive = false;
  CVar PhaseFloor = 0; ///< Vars at/above this were created this phase.
};

} // namespace

Cexp *smltc::optimizeCps(Arena &A, const CompilerOptions &Opts,
                         Cexp *Program, CVar &MaxVar, CpsOptStats &Stats) {
  Stats.ArenaBytesBefore = A.bytesAllocated();
  if (Opts.CpsOpt == CpsOptEngine::Rounds) {
    Optimizer O(A, Opts, MaxVar, Stats);
    Program = O.run(Program);
  } else {
    ShrinkOptimizer O(A, Opts, MaxVar, Stats);
    Program = O.run(Program);
  }
  Stats.ArenaBytesAfter = A.bytesAllocated();

  CpsOptTotals &T = cpsOptTotals();
  T.Runs.fetch_add(1, std::memory_order_relaxed);
  T.DeadRemoved.fetch_add(Stats.DeadRemoved, std::memory_order_relaxed);
  T.SelectsFolded.fetch_add(Stats.SelectsFolded, std::memory_order_relaxed);
  T.RecordsCopyEliminated.fetch_add(Stats.RecordsCopyEliminated,
                                    std::memory_order_relaxed);
  T.FloatBoxesReused.fetch_add(Stats.FloatBoxesReused,
                               std::memory_order_relaxed);
  T.BranchesFolded.fetch_add(Stats.BranchesFolded, std::memory_order_relaxed);
  T.ConstantsFolded.fetch_add(Stats.ConstantsFolded,
                              std::memory_order_relaxed);
  T.InlinedOnce.fetch_add(Stats.InlinedOnce, std::memory_order_relaxed);
  T.InlinedSmall.fetch_add(Stats.InlinedSmall, std::memory_order_relaxed);
  T.EtaConts.fetch_add(Stats.EtaConts, std::memory_order_relaxed);
  T.KnownFnsFlattened.fetch_add(Stats.KnownFnsFlattened,
                                std::memory_order_relaxed);
  T.EtaFuns.fetch_add(Stats.EtaFuns, std::memory_order_relaxed);
  T.CensusFlattened.fetch_add(Stats.CensusFlattened,
                              std::memory_order_relaxed);
  T.WrapCancelChains.fetch_add(Stats.WrapCancelChains,
                               std::memory_order_relaxed);
  T.WrapCancelLoopCarried.fetch_add(Stats.WrapCancelLoopCarried,
                                    std::memory_order_relaxed);
  T.HoistedAllocs.fetch_add(Stats.HoistedAllocs, std::memory_order_relaxed);
  T.Rounds.fetch_add(Stats.Rounds, std::memory_order_relaxed);
  T.WorklistPasses.fetch_add(Stats.WorklistPasses, std::memory_order_relaxed);
  T.ExpandPasses.fetch_add(Stats.ExpandPasses, std::memory_order_relaxed);
  T.ArenaBytes.fetch_add(Stats.ArenaBytesAfter - Stats.ArenaBytesBefore,
                         std::memory_order_relaxed);
  if (Stats.HitRoundCap)
    T.RoundCapHits.fetch_add(1, std::memory_order_relaxed);
  if (Stats.HitSafetyCeiling)
    T.SafetyCeilingHits.fetch_add(1, std::memory_order_relaxed);
  return Program;
}

CpsOptTotals &smltc::cpsOptTotals() {
  static CpsOptTotals T;
  return T;
}

void smltc::setCpsOptAudit(bool Enabled) {
  AuditEnabled.store(Enabled, std::memory_order_relaxed);
}

void smltc::registerCpsOptMetrics(obs::Registry &R) {
  CpsOptTotals &T = cpsOptTotals();
  auto C = [&R](const char *Name, const std::atomic<uint64_t> &A,
                const char *Help) {
    R.counterFn(Name, [&A] { return A.load(std::memory_order_relaxed); },
                Help);
  };
  C("smltcc_cps_opt_runs_total", T.Runs, "optimizeCps invocations");
  C("smltcc_cps_opt_dead_removed_total", T.DeadRemoved,
    "dead bindings and functions removed");
  C("smltcc_cps_opt_selects_folded_total", T.SelectsFolded,
    "selects folded from known records");
  C("smltcc_cps_opt_record_copies_elim_total", T.RecordsCopyEliminated,
    "record copies eliminated (Section 5.2)");
  C("smltcc_cps_opt_float_boxes_reused_total", T.FloatBoxesReused,
    "wrap/unwrap pairs cancelled (Section 5.2)");
  C("smltcc_cps_opt_branches_folded_total", T.BranchesFolded,
    "branches folded on constants");
  C("smltcc_cps_opt_constants_folded_total", T.ConstantsFolded,
    "arith constants folded");
  C("smltcc_cps_opt_inlined_once_total", T.InlinedOnce,
    "once-used functions beta-reduced");
  C("smltcc_cps_opt_inlined_small_total", T.InlinedSmall,
    "small functions inline-expanded");
  C("smltcc_cps_opt_eta_conts_total", T.EtaConts,
    "continuations eta-reduced");
  C("smltcc_cps_opt_fns_flattened_total", T.KnownFnsFlattened,
    "known functions argument-flattened");
  C("smltcc_cps_opt_eta_funs_total", T.EtaFuns,
    "forwarding functions eta-reduced (fixpoint rule)");
  C("smltcc_cps_opt_census_flattened_total", T.CensusFlattened,
    "functions flattened by the census-driven fag rule");
  C("smltcc_cps_opt_wrap_cancel_chains_total", T.WrapCancelChains,
    "non-adjacent wrap dedups and unwrap CSEs (fixpoint rule)");
  C("smltcc_cps_opt_wrap_cancel_loop_carried_total", T.WrapCancelLoopCarried,
    "wrap cancellations of per-iteration allocations in loop nests");
  C("smltcc_cps_opt_hoisted_allocs_total", T.HoistedAllocs,
    "closed allocations hoisted out of known-function loops");
  C("smltcc_cps_opt_rounds_total", T.Rounds,
    "rounds-engine census+rewrite rounds");
  C("smltcc_cps_opt_worklist_passes_total", T.WorklistPasses,
    "shrink-engine contraction sweeps");
  C("smltcc_cps_opt_expand_passes_total", T.ExpandPasses,
    "shrink-engine inline/flatten phases");
  C("smltcc_cps_opt_arena_bytes_total", T.ArenaBytes,
    "arena bytes allocated while optimizing");
  C("smltcc_cps_opt_round_cap_hits_total", T.RoundCapHits,
    "optimizations stopped at the round/phase cap");
  C("smltcc_cps_opt_safety_ceiling_hits_total", T.SafetyCeilingHits,
    "fixpoint runs aborted at the phase safety ceiling");
  R.registerHistogram("smltcc_cps_opt_fixpoint_phases",
                      shrinkPhaseHistogram(),
                      "shrink-engine phases to reach normal form");
}
