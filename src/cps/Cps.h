//===- cps/Cps.h - Continuation-passing-style IR with CTYs --------------------===//
///
/// \file
/// The CPS intermediate representation (paper Section 5). Every variable is
/// annotated at its binding occurrence with a CPS type (CTY):
///
///   CTY ::= INTt | FLTt | PTRt(known n | unknown) | FUNt | CNTt
///
/// Representation decisions have been taken by the time CPS exists: records
/// carry explicit per-field float/word layout (Figure 1's flat, mixed, and
/// reordered layouts), functions have explicit (possibly spread) argument
/// lists, and the coercion operators have been lowered to float boxing /
/// unboxing and plain moves.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CPS_CPS_H
#define SMLTC_CPS_CPS_H

#include "support/Arena.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>

namespace smltc {

using CVar = int32_t;

enum class CtyKind : uint8_t {
  Int,        ///< tagged integer (31-bit payload)
  Flt,        ///< raw float (lives in float registers)
  PtrKnown,   ///< pointer to a record of known length
  PtrUnknown, ///< pointer to a record of unknown length
  Fun,        ///< function closure
  Cnt,        ///< continuation
};

struct Cty {
  CtyKind K = CtyKind::PtrUnknown;
  int Len = 0; ///< PtrKnown: record length (logical fields)

  static Cty intTy() { return {CtyKind::Int, 0}; }
  static Cty fltTy() { return {CtyKind::Flt, 0}; }
  static Cty ptr(int Len) { return {CtyKind::PtrKnown, Len}; }
  static Cty ptrUnknown() { return {CtyKind::PtrUnknown, 0}; }
  static Cty funTy() { return {CtyKind::Fun, 0}; }
  static Cty cntTy() { return {CtyKind::Cnt, 0}; }

  bool isFloat() const { return K == CtyKind::Flt; }
};

/// A CPS value: a variable, an immediate constant, or (after closure
/// conversion) a code label.
struct CValue {
  enum class Kind : uint8_t { Var, Int, Real, String, Label };
  Kind K = Kind::Int;
  CVar V = 0;
  int64_t I = 0;
  double R = 0;
  Symbol S;

  static CValue var(CVar V) {
    CValue X;
    X.K = Kind::Var;
    X.V = V;
    return X;
  }
  static CValue label(int FnIndex) {
    CValue X;
    X.K = Kind::Label;
    X.I = FnIndex;
    return X;
  }
  /// An unused callee-save/padding slot: no move is emitted for it
  /// (callee-save registers cost nothing when they carry nothing).
  static CValue pad() {
    CValue X;
    X.K = Kind::Label;
    X.I = -1;
    return X;
  }
  /// A padding slot in a float register position.
  static CValue padF() {
    CValue X;
    X.K = Kind::Real;
    X.I = -1;
    return X;
  }
  bool isPad() const {
    return (K == Kind::Label || K == Kind::Real) && I < 0;
  }
  bool isFloatPad() const { return K == Kind::Real && I < 0; }
  static CValue intC(int64_t I) {
    CValue X;
    X.K = Kind::Int;
    X.I = I;
    return X;
  }
  static CValue realC(double R) {
    CValue X;
    X.K = Kind::Real;
    X.R = R;
    return X;
  }
  static CValue strC(Symbol S) {
    CValue X;
    X.K = Kind::String;
    X.S = S;
    return X;
  }
  bool isVar() const { return K == Kind::Var; }
};

/// A record field at its physical position.
struct CField {
  CValue V;
  bool IsFloat = false; ///< stored as a raw (2-word) float
};

/// What a Record allocates.
enum class RecordKind : uint8_t {
  Std,      ///< all one-word fields, plain descriptor
  Mixed,    ///< floats first, then words; (floatlen, wordlen) descriptor
  FloatBox, ///< a single raw float (the fwrap box)
  Ref,      ///< mutable one-word cell
  Closure,  ///< function/continuation closure record
  Spill,    ///< spill record introduced by the spill phase
};

/// Branch comparisons.
enum class BranchOp : uint8_t {
  Ieq, Ine, Ilt, Ile, Igt, Ige,
  Feq, Flt, Fle, Fgt, Fge,
  IsBoxed, ///< one arg: true if the value is a pointer (not a tagged int)
  Ult,     ///< unsigned compare (array bounds)
};

/// Non-branching operators.
enum class CpsOp : uint8_t {
  // Arith (Arith nodes; IDiv/IMod can trap).
  IAdd, ISub, IMul, IDiv, IMod, INeg, IAbs,
  FAdd, FSub, FMul, FDiv, FNeg, FAbs,
  Floor, RealFromInt,
  FSqrt, FSin, FCos, FAtan, FExp, FLn,
  // Pure moves.
  Copy,
  // Lookers.
  LoadCell,   ///< (ptr, index) -> word   (ref contents / array element)
  LoadByte,   ///< (string, index) -> int
  SizeOf,     ///< (ptr) -> length from descriptor (string bytes / array len)
  GetHandler, ///< () -> current exception handler
  // Setters.
  StoreCell,  ///< (ptr, index, word)
  SetHandler, ///< (handler)
  // Runtime calls (CCall nodes).
  RtPolyEq, RtStrEq, RtStrCmp, RtConcat, RtSubstring, RtChr,
  RtItos, RtRtos, RtPrint, RtMakeTag, RtArrayMake,
};

struct Cexp;

/// One function of a FIX bundle.
struct CFun {
  enum class Kind : uint8_t {
    Escape, ///< may be called from unknown sites (standard convention)
    Known,  ///< all call sites known (flexible convention)
    Cont,   ///< continuation
  };
  Kind K = Kind::Escape;
  CVar Name = 0;
  Span<CVar> Params;
  Span<Cty> ParamTys;
  Cexp *Body = nullptr;
};

struct CBranchArm; // forward

struct Cexp {
  enum class Kind : uint8_t {
    Record, ///< W := alloc RK [Fields]; Cont
    Select, ///< W := Fields? no: W := V[Idx] (IsFloat selects a raw float)
    App,    ///< call F (Args)
    Fix,    ///< define Funs; Cont
    Branch, ///< if BOp(Args) then A1 else A2
    Arith,  ///< W := Op(Args); Cont
    Pure,   ///< W := Op(Args); Cont (no effects, removable)
    Looker, ///< W := Op(Args); Cont (reads state, removable if unused)
    Setter, ///< Op(Args); Cont
    CCall,  ///< W := runtime Op(Args); Cont
    Halt,   ///< program result := Args[0]
  };
  Kind K;

  RecordKind RK = RecordKind::Std;
  Span<CField> Fields;   // Record
  int Idx = 0;           // Select (physical field index)
  bool IsFloat = false;  // Select: raw float field
  CValue F;              // App fun; Select base; Halt value (in F)
  Span<CValue> Args;     // App, Branch, Arith/Pure/Looker/Setter/CCall
  CVar W = 0;            // result binder
  Cty WTy;               // result cty
  Span<CFun *> Funs;     // Fix
  BranchOp BOp = BranchOp::Ieq;
  CpsOp Op = CpsOp::Copy;
  Cexp *C1 = nullptr;    // continuation / then
  Cexp *C2 = nullptr;    // else
};

/// Convenience constructors.
class CpsBuilder {
public:
  explicit CpsBuilder(Arena &A, CVar FirstVar = 1)
      : A(A), NextVar(FirstVar) {}

  Arena &arena() { return A; }
  CVar fresh() { return NextVar++; }
  CVar maxVar() const { return NextVar; }

  Cexp *record(RecordKind RK, const std::vector<CField> &Fields, CVar W,
               Cexp *Cont);
  Cexp *select(int Idx, bool IsFloat, CValue V, CVar W, Cty T, Cexp *Cont);
  Cexp *app(CValue F, const std::vector<CValue> &Args);
  Cexp *fix(const std::vector<CFun *> &Funs, Cexp *Cont);
  Cexp *branch(BranchOp Op, const std::vector<CValue> &Args, Cexp *Then,
               Cexp *Else);
  Cexp *arith(CpsOp Op, const std::vector<CValue> &Args, CVar W, Cty T,
              Cexp *Cont);
  Cexp *pure(CpsOp Op, const std::vector<CValue> &Args, CVar W, Cty T,
             Cexp *Cont);
  Cexp *looker(CpsOp Op, const std::vector<CValue> &Args, CVar W, Cty T,
               Cexp *Cont);
  Cexp *setter(CpsOp Op, const std::vector<CValue> &Args, Cexp *Cont);
  Cexp *ccall(CpsOp Op, const std::vector<CValue> &Args, CVar W, Cty T,
              Cexp *Cont);
  Cexp *halt(CValue V);
  CFun *fun(CFun::Kind K, CVar Name, const std::vector<CVar> &Params,
            const std::vector<Cty> &ParamTys, Cexp *Body);

private:
  Cexp *make(Cexp::Kind K) {
    Cexp *E = A.create<Cexp>();
    E->K = K;
    return E;
  }
  Arena &A;
  CVar NextVar;
};

/// Renders CPS as s-expressions.
std::string printCps(const Cexp *E);

/// Number of CPS nodes (compile-effort / code-size proxy before codegen).
size_t countCpsNodes(const Cexp *E);

} // namespace smltc

#endif // SMLTC_CPS_CPS_H
