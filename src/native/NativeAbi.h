//===- native/NativeAbi.h - C ABI between host and AOT-compiled modules ------------===//
///
/// \file
/// The contract between the smltc host and a `dlopen`ed native module.
/// The module exports one symbol,
///
///   const NtModule *smltc_native_entry_v1(void);
///
/// whose Funs table holds one C function per TM function. Execution is a
/// trampoline: each function returns the index of the next function to
/// run (CPS calls are tail transfers), or -1 when the program is done.
///
/// The generated C re-declares these structs textually (it cannot
/// include C++ headers), so the layout here is pinned: plain C types,
/// fixed field order, and offset static_asserts in NativeBackend.cpp.
/// Bump NT_ABI_VERSION whenever anything in this file changes — the
/// loader rejects modules with a different version, and the version is
/// part of the content hash so stale cached objects are never reused.
///
/// Register protocol: word registers live in a per-frame local array the
/// generated code publishes to the heap's shadow stack (vm/Heap.h), so
/// the GC can scan and update them; float registers live in the shared
/// F file (floats are unboxed and invisible to the GC, and the
/// interpreters never clear F between calls, so sharing one file keeps
/// stale-read behavior identical). W0 is the only word register that
/// survives transfers; it is mirrored through the context.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_NATIVE_NATIVEABI_H
#define SMLTC_NATIVE_NATIVEABI_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define NT_ABI_VERSION 1

/// Must match smltc::ShadowFrame (vm/Heap.h) bit for bit: the generated
/// code pushes frames straight onto the heap's shadow stack.
typedef struct NtFrame {
  uint64_t *Base;
  uint64_t Count;
} NtFrame;

typedef struct NtCtx NtCtx;

/// Host services callable from generated code. All of them may observe
/// and mutate the machine state; Alloc and Rt may run the garbage
/// collector, so generated code spills its registers to the published
/// frame before the call and reloads after.
struct NtCtx {
  /* Shared machine state (host-owned storage). */
  uint64_t *ArgW;       /* staged word arguments (GC roots)            */
  double *ArgF;         /* staged float arguments                      */
  double *F;            /* the float register file (shared, 256)       */
  uint64_t *Handler;    /* exception handler register (GC root)        */
  uint64_t *StrPtrs;    /* interned string pool pointers (GC roots)    */
  NtFrame *Frames;      /* heap shadow stack base                      */
  uint64_t *FrameDepth; /* live frame count                            */
  uint64_t *MajorMem;   /* major semispace base; refreshed after GC    */
  uint64_t *NurseryMem; /* nursery base; refreshed after GC            */
  uint64_t *Instructions; /* executed-instruction counter              */
  uint64_t *Cycles;       /* cycle counter (cost model)                */
  uint64_t MaxCycles;     /* budget: trap when Cycles exceeds it       */
  /* Transfer state. */
  uint64_t W0;    /* word register 0, persists across transfers        */
  int32_t CallNW; /* staged word-arg count for the next entry          */
  int32_t CallNF; /* staged float-arg count for the next entry         */
  int32_t MaxW;   /* highest SetArg slot seen since the last call      */
  int32_t MaxF;   /* highest SetArgF slot seen since the last call     */
  int64_t NextFn; /* set by host transfers (raise); -1 = done          */
  /* Open-allocation cursor (AllocStart .. AllocEnd). */
  uint64_t *AllocPtr; /* next field slot of the pending object         */
  uint64_t AllocRef;  /* tagged pointer to the pending object          */
  /* Host callbacks. */
  void *Host;
  void (*Alloc)(NtCtx *, uint32_t NWords, uint32_t NFloats, int32_t IsRef);
  void (*StoreBarrier)(NtCtx *, uint64_t Slot, uint64_t V);
  int32_t (*Rt)(NtCtx *, int32_t Service, int32_t Rd); /* 1 = exit frame */
  void (*Raise)(NtCtx *, int32_t Tag);
  void (*Trap)(NtCtx *, const char *Msg);
  void (*Halt)(NtCtx *, int64_t Result);
  void (*HaltExn)(NtCtx *);
};

typedef int64_t (*NtFun)(NtCtx *);

typedef struct NtModule {
  int32_t Abi; /* NT_ABI_VERSION of the emitting compiler */
  int32_t NumFuns;
  const NtFun *Funs;
} NtModule;

#ifdef __cplusplus
} // extern "C"
#endif

#endif // SMLTC_NATIVE_NATIVEABI_H
