//===- native/NativeEmit.cpp - TM -> C source emission -----------------------------===//
//
// One C function per TM function, driven by a trampoline in the host
// (NativeBackend.cpp). The contract with the interpreters is bit-exact
// observable state: results, output, instruction and cycle counts,
// allocation statistics, and GC copy counts all match the decoded
// interpreter loops across every program the emitter accepts. The
// executable comments below cite the corresponding interpreter behavior
// (vm/InterpLoop.inc) wherever parity is subtle.
//
// Register protocol (see NativeAbi.h): word registers are C locals
// `w0..wN-1`, shadowed by a frame array `fr[]` that is published on the
// heap's shadow stack for the whole activation. Around every host call
// that can run the collector (Alloc, Rt) the code spills locals to fr,
// lets GC update them in place, and reloads. Float registers share the
// host's F file directly — floats are unboxed, invisible to GC, and the
// interpreters never clear F between calls, so stale-read behavior is
// preserved by construction.
//
// Cycle accounting: instructions and cycles accumulate in locals (ni,
// cy) flushed to the shared counters at every control transfer, so the
// counters are exact whenever the host (or another function) can see
// them. The budget check runs at function entry and on taken backward
// branches rather than per fetch; a straight-line run can therefore
// overshoot the budget by a bounded amount before trapping, which is
// observable only for programs that exhaust the budget (documented in
// EXPERIMENTS.md; the differential corpus never trips it).
//
//===----------------------------------------------------------------------===//

#include "native/NativeEmit.h"

#include "native/NativeAbi.h"
#include "vm/Decode.h"
#include "vm/Runtime.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace smltc;
using namespace smltc::native;

namespace {

std::string fmt(const char *F, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, F);
  vsnprintf(Buf, sizeof(Buf), F, Ap);
  va_end(Ap);
  return Buf;
}

std::string wreg(int R) { return "w" + std::to_string(R); }
std::string freg(int R) { return "Fv[" + std::to_string(R) + "]"; }

/// The C text of the ABI structs. Field order must match NativeAbi.h
/// exactly; NativeBackend.cpp pins the layout with offsetof asserts
/// against a mirror compiled from this same text.
const char *AbiDecls = R"c(
typedef struct NtFrame { uint64_t *Base; uint64_t Count; } NtFrame;
typedef struct NtCtx NtCtx;
struct NtCtx {
  uint64_t *ArgW;
  double *ArgF;
  double *F;
  uint64_t *Handler;
  uint64_t *StrPtrs;
  NtFrame *Frames;
  uint64_t *FrameDepth;
  uint64_t *MajorMem;
  uint64_t *NurseryMem;
  uint64_t *Instructions;
  uint64_t *Cycles;
  uint64_t MaxCycles;
  uint64_t W0;
  int32_t CallNW;
  int32_t CallNF;
  int32_t MaxW;
  int32_t MaxF;
  int64_t NextFn;
  uint64_t *AllocPtr;
  uint64_t AllocRef;
  void *Host;
  void (*Alloc)(NtCtx *, uint32_t, uint32_t, int32_t);
  void (*StoreBarrier)(NtCtx *, uint64_t, uint64_t);
  int32_t (*Rt)(NtCtx *, int32_t, int32_t);
  void (*Raise)(NtCtx *, int32_t);
  void (*Trap)(NtCtx *, const char *);
  void (*Halt)(NtCtx *, int64_t);
  void (*HaltExn)(NtCtx *);
};
typedef int64_t (*NtFun)(NtCtx *);
typedef struct NtModule { int32_t Abi; int32_t NumFuns; const NtFun *Funs; } NtModule;
)c";

const char *Macros = R"c(
#define NT_TAG0 1ULL
#define NT_TAG(n) ((((uint64_t)(n)) << 1) | 1ULL)
#define NT_UNTAG(x) (((int64_t)(x)) >> 1)
#define NT_ISPTR(x) ((x) != 0 && ((x) & 1ULL) == 0)
#define NT_NB (((uint64_t)1) << 32)
#define NT_AT(i) (*((i) >= NT_NB ? ctx->NurseryMem + ((i) - NT_NB) : ctx->MajorMem + (i)))
#define NT_KIND(d) ((uint64_t)(d) >> 56)
#define NT_LEN1(d) ((uint64_t)(((d) >> 28) & 0xFFFFFFFULL))
#define NT_LEN2(d) ((uint64_t)((d) & 0xFFFFFFFULL))
#define NT_FLUSH() do { *ctx->Instructions += ni; *ctx->Cycles += cy; ni = 0; cy = 0; } while (0)
)c";

class FnEmitter {
public:
  FnEmitter(std::string &O, const DecodedFunction &F, int FnIdx, int NumFuns)
      : O(O), F(F), FnIdx(FnIdx), NumFuns(NumFuns), N(F.NumRegsUsed) {}

  bool emit(std::string &Err);

private:
  std::string &O;
  const DecodedFunction &F;
  int FnIdx;
  int NumFuns;
  int N; ///< word registers used (fr[] size, spill width)
  std::vector<bool> IsTarget;

  bool refuse(std::string &Err, size_t Pc, const std::string &Why) {
    Err = fmt("native: fn %d pc %zu: ", FnIdx, Pc) + Why;
    return false;
  }

  /// Registers synced, counters flushed, then a host trap; never returns
  /// to straight-line code. MaxW/MaxF are synced for completeness (a
  /// trap ends the run, but keeping the mirror exact costs nothing).
  std::string trapSeq(const std::string &Msg) {
    return "NT_SPILL(); NT_FLUSH(); ctx->MaxW = mw; ctx->MaxF = mf; "
           "ctx->Trap(ctx, \"" + Msg + "\"); goto nt_exit;";
  }
  /// Raise persists MaxW/MaxF into the context: the interpreters do not
  /// reset MaxWSeen on a raise, and the handler's later calls stage
  /// MaxWSeen+1 arguments, so the watermark must survive the transfer.
  std::string raiseSeq(int Tag) {
    return fmt("NT_SPILL(); NT_FLUSH(); ctx->MaxW = mw; ctx->MaxF = mf; "
               "ctx->Raise(ctx, %d); goto nt_exit;", Tag);
  }

  void ln(const std::string &S) { O += "  " + S + "\n"; }
  void emitSpillReloadMacros();
  void emitPrologue();
  bool emitInsn(const DInsn &I, size_t Pc, std::string &Err);
  void emitBranchTail(const DInsn &I, size_t Pc);
};

void FnEmitter::emitSpillReloadMacros() {
  std::string Spill = "#define NT_SPILL() do { ";
  std::string Reload = "#define NT_RELOAD() do { ";
  for (int R = 0; R < N; ++R) {
    Spill += fmt("fr[%d] = w%d; ", R, R);
    Reload += fmt("w%d = fr[%d]; ", R, R);
    if (R % 8 == 7 && R + 1 < N) {
      Spill += "\\\n    ";
      Reload += "\\\n    ";
    }
  }
  Spill += "} while (0)\n";
  Reload += "} while (0)\n";
  O += Spill;
  O += Reload;
}

void FnEmitter::emitPrologue() {
  O += fmt("static int64_t nt_f%d(NtCtx *ctx) {\n", FnIdx);
  ln(fmt("uint64_t fr[%d];", N));
  ln("double *const Fv = ctx->F;");
  ln("uint64_t ni = 0, cy = 0;");
  ln("int32_t mw, mf;");
  // Word-register locals, 8 declarations per line.
  for (int R = 0; R < N; R += 8) {
    std::string D = "uint64_t ";
    for (int C = R; C < N && C < R + 8; ++C)
      D += (C > R ? ", " : "") + wreg(C);
    ln(D + ";");
  }
  // Publish the frame before anything can allocate. The slots hold junk
  // until the first NT_SPILL, but the collector can only run inside the
  // Alloc/Rt callbacks, and every call site spills first.
  ln("{ NtFrame *sf = ctx->Frames + *ctx->FrameDepth;");
  ln("  sf->Base = fr; sf->Count = " + std::to_string(N) +
     "; *ctx->FrameDepth += 1; }");
  ln("mw = ctx->MaxW; mf = ctx->MaxF;");
  ln("w0 = ctx->W0;");
  // Parameter staging, exactly jumpIntoDecoded: W[1+i] gets ArgW[i] when
  // the caller staged that many, else tagged zero; same for floats.
  if (F.NumWordParams > 0 || F.NumFloatParams > 0) {
    ln("{ int32_t nw = ctx->CallNW, nf = ctx->CallNF; (void)nw; (void)nf;");
    for (int I = 0; I < F.NumWordParams; ++I)
      ln(fmt("  w%d = %d < nw ? ctx->ArgW[%d] : NT_TAG0;", 1 + I, I, I));
    for (int I = 0; I < F.NumFloatParams; ++I)
      ln(fmt("  Fv[%d] = %d < nf ? ctx->ArgF[%d] : 0.0;", 1 + I, I, I));
    ln("}");
  }
  for (int R = 1 + F.NumWordParams; R < N; ++R)
    ln(wreg(R) + " = NT_TAG0;");
  // Entry budget check: the interpreters test before every fetch, so on
  // entry this runs before instruction 0, with flushed exact counters.
  ln("if (*ctx->Cycles > ctx->MaxCycles) {");
  ln("  " + trapSeq("cycle budget exhausted"));
  ln("}");
}

/// Taken-branch tail: the +1 surcharge, a budget check on backward edges
/// (the only way a function can run unboundedly without a transfer), and
/// the goto.
void FnEmitter::emitBranchTail(const DInsn &I, size_t Pc) {
  ln("  cy += 1;");
  if (I.Imm <= static_cast<int32_t>(Pc)) {
    ln("  if (*ctx->Cycles + cy > ctx->MaxCycles) {");
    ln("    " + trapSeq("cycle budget exhausted"));
    ln("  }");
  }
  ln(fmt("  goto L%d;", I.Imm));
}

bool FnEmitter::emitInsn(const DInsn &I, size_t Pc, std::string &Err) {
  const std::string Rd = wreg(I.Rd), Rs1 = wreg(I.Rs1), Rs2 = wreg(I.Rs2);
  const std::string Fd = freg(I.Rd), Fs1 = freg(I.Rs1), Fs2 = freg(I.Rs2);
  // Fetch accounting first, as in the decoded loops; ops that can trap
  // or raise before charging emit `ni` here and defer `cy` to the
  // success path (the interpreters refund the fused cost on those paths).
  auto Charge = [&]() { ln(fmt("ni += 1; cy += %u;", I.Cost)); };
  auto CountOnly = [&]() { ln("ni += 1;"); };
  auto ChargeCy = [&]() { ln(fmt("  cy += %u;", I.Cost)); };

  switch (I.Op) {
  case DOp::MovI:
  case DOp::LoadLabel:
    Charge();
    ln(fmt("%s = 0x%llxULL;", Rd.c_str(),
           (unsigned long long)(uint64_t)I.IVal));
    return true;
  case DOp::MovR:
    Charge();
    ln(Rd + " = " + Rs1 + ";");
    return true;
  case DOp::MovFI: {
    Charge();
    uint64_t Bits;
    std::memcpy(&Bits, &I.FVal, 8);
    ln(fmt("{ uint64_t b = 0x%llxULL; memcpy(&%s, &b, 8); }",
           (unsigned long long)Bits, Fd.c_str()));
    return true;
  }
  case DOp::MovFR:
    Charge();
    ln(Fd + " = " + Fs1 + ";");
    return true;
  case DOp::LoadStr:
    Charge();
    ln(fmt("%s = ctx->StrPtrs[%d];", Rd.c_str(), I.Imm));
    return true;

  case DOp::Add:
    Charge();
    ln(Rd + " = NT_TAG(NT_UNTAG(" + Rs1 + ") + NT_UNTAG(" + Rs2 + "));");
    return true;
  case DOp::Sub:
    Charge();
    ln(Rd + " = NT_TAG(NT_UNTAG(" + Rs1 + ") - NT_UNTAG(" + Rs2 + "));");
    return true;
  case DOp::Mul:
    Charge();
    ln(Rd + " = NT_TAG(NT_UNTAG(" + Rs1 + ") * NT_UNTAG(" + Rs2 + "));");
    return true;
  case DOp::Div:
    CountOnly();
    ln("{ int64_t d = NT_UNTAG(" + Rs2 + ");");
    ln("  if (d == 0) {");
    ln("    " + raiseSeq(vmdetail::TagDiv));
    ln("  }");
    ChargeCy();
    ln("  { int64_t n = NT_UNTAG(" + Rs1 + ");");
    ln("    int64_t q = n / d, rm = n % d;");
    ln("    if (rm != 0 && ((rm < 0) != (d < 0))) q -= 1;"); // SML floor div
    ln("    " + Rd + " = NT_TAG(q); } }");
    return true;
  case DOp::Mod:
    CountOnly();
    ln("{ int64_t d = NT_UNTAG(" + Rs2 + ");");
    ln("  if (d == 0) {");
    ln("    " + raiseSeq(vmdetail::TagDiv));
    ln("  }");
    ChargeCy();
    ln("  { int64_t rm = NT_UNTAG(" + Rs1 + ") % d;");
    ln("    if (rm != 0 && ((rm < 0) != (d < 0))) rm += d;");
    ln("    " + Rd + " = NT_TAG(rm); } }");
    return true;
  case DOp::Neg:
    Charge();
    ln(Rd + " = NT_TAG(-NT_UNTAG(" + Rs1 + "));");
    return true;
  case DOp::Abs:
    Charge();
    ln("{ int64_t v = NT_UNTAG(" + Rs1 + "); " + Rd +
       " = NT_TAG(v < 0 ? -v : v); }");
    return true;

  case DOp::FAdd:
    Charge();
    ln(Fd + " = " + Fs1 + " + " + Fs2 + ";");
    return true;
  case DOp::FSub:
    Charge();
    ln(Fd + " = " + Fs1 + " - " + Fs2 + ";");
    return true;
  case DOp::FMul:
    Charge();
    ln(Fd + " = " + Fs1 + " * " + Fs2 + ";");
    return true;
  case DOp::FDiv:
    Charge();
    ln(Fd + " = " + Fs1 + " / " + Fs2 + ";");
    return true;
  case DOp::FNeg:
    Charge();
    ln(Fd + " = -" + Fs1 + ";");
    return true;
  case DOp::FAbs:
    Charge();
    ln(Fd + " = fabs(" + Fs1 + ");");
    return true;
  case DOp::FSqrt:
    Charge();
    ln(Fd + " = sqrt(" + Fs1 + ");");
    return true;
  case DOp::FSin:
    Charge();
    ln(Fd + " = sin(" + Fs1 + ");");
    return true;
  case DOp::FCos:
    Charge();
    ln(Fd + " = cos(" + Fs1 + ");");
    return true;
  case DOp::FAtan:
    Charge();
    ln(Fd + " = atan(" + Fs1 + ");");
    return true;
  case DOp::FExp:
    Charge();
    ln(Fd + " = exp(" + Fs1 + ");");
    return true;
  case DOp::FLn:
    Charge();
    ln(Fd + " = log(" + Fs1 + ");");
    return true;
  case DOp::Floor:
    Charge();
    ln(Rd + " = NT_TAG((int64_t)floor(" + Fs1 + "));");
    return true;
  case DOp::IToF:
    Charge();
    ln(Fd + " = (double)NT_UNTAG(" + Rs1 + ");");
    return true;

  case DOp::Br: {
    Charge();
    static const char *CondOp[] = {"==", "!=", "<", "<=", ">", ">="};
    TmCond C = static_cast<TmCond>(I.Aux);
    std::string Cmp;
    if (C == TmCond::Ult)
      Cmp = Rs1 + " < " + Rs2; // raw words are already uint64
    else if (C == TmCond::Eq || C == TmCond::Ne)
      Cmp = Rs1 + " " + CondOp[(int)C] + " " + Rs2;
    else
      Cmp = "(int64_t)" + Rs1 + " " + CondOp[(int)C] + " (int64_t)" + Rs2;
    ln("if (" + Cmp + ") {");
    emitBranchTail(I, Pc);
    ln("}");
    return true;
  }
  case DOp::BrF: {
    Charge();
    static const char *CondOp[] = {"==", "!=", "<", "<=", ">", ">="};
    // Ult on floats decodes to TrapInvalid, refused below.
    ln("if (" + Fs1 + " " + CondOp[(int)I.Aux] + " " + Fs2 + ") {");
    emitBranchTail(I, Pc);
    ln("}");
    return true;
  }
  case DOp::BrBoxed:
    Charge();
    ln("if (NT_ISPTR(" + Rs1 + ")) {");
    emitBranchTail(I, Pc);
    ln("}");
    return true;
  case DOp::Jmp:
    Charge();
    if (I.Imm <= static_cast<int32_t>(Pc)) {
      ln("if (*ctx->Cycles + cy > ctx->MaxCycles) {");
      ln("  " + trapSeq("cycle budget exhausted"));
      ln("}");
    }
    ln(fmt("goto L%d;", I.Imm));
    return true;

  case DOp::Load:
    CountOnly();
    ln("{ uint64_t b = " + Rs1 + ";");
    ln("  if (!NT_ISPTR(b)) {");
    ln("    " + trapSeq(fmt("load from a non-pointer (fn %d pc %zu)",
                            FnIdx, Pc)));
    ln("  }");
    ChargeCy();
    ln(fmt("  %s = NT_AT((b >> 3) + %dULL); }", Rd.c_str(), 1 + I.Imm));
    return true;
  case DOp::Store:
    CountOnly();
    ln("{ uint64_t b = " + Rs1 + ";");
    ln("  if (!NT_ISPTR(b)) {");
    ln("    " + trapSeq("store to a non-pointer"));
    ln("  }");
    ChargeCy();
    ln(fmt("  { uint64_t s = (b >> 3) + %dULL, v = %s;", 1 + I.Imm,
           Rd.c_str()));
    ln("    NT_AT(s) = v;");
    // Heap::storeField's generational barrier, inlined: only an
    // old-space slot receiving a nursery pointer needs recording.
    ln("    if (s < NT_NB && NT_ISPTR(v) && (v >> 3) >= NT_NB)");
    ln("      ctx->StoreBarrier(ctx, s, v); } }");
    return true;
  case DOp::LoadF:
    CountOnly();
    ln("{ uint64_t b = " + Rs1 + ";");
    ln("  if (!NT_ISPTR(b)) {");
    ln("    " + trapSeq("float load from a non-pointer"));
    ln("  }");
    ChargeCy();
    ln(fmt("  { uint64_t bits = NT_AT((b >> 3) + %dULL);", 1 + I.Imm));
    ln("    memcpy(&" + Fd + ", &bits, 8); } }");
    return true;
  case DOp::LoadIdx:
    CountOnly();
    ln("{ uint64_t b = " + Rs1 + ";");
    ln("  if (!NT_ISPTR(b)) {");
    ln("    " + trapSeq("indexed load from a non-pointer"));
    ln("  }");
    ln("  { int64_t ix = NT_UNTAG(" + Rs2 + ");");
    ln("    uint64_t bi = b >> 3, d = NT_AT(bi);");
    ln("    int64_t len = NT_KIND(d) == 3 ? 1 : (int64_t)NT_LEN2(d);");
    ln("    if (ix < 0 || ix >= len) {");
    ln("      " + raiseSeq(vmdetail::TagSubscript));
    ln("    }");
    ln(fmt("    cy += %u;", I.Cost));
    ln(fmt("    %s = NT_AT(bi + 1 + (uint64_t)ix); } }", Rd.c_str()));
    return true;
  case DOp::StoreIdx:
    CountOnly();
    ln("{ uint64_t b = " + Rs1 + ";");
    ln("  if (!NT_ISPTR(b)) {");
    ln("    " + trapSeq("indexed store to a non-pointer"));
    ln("  }");
    ln("  { int64_t ix = NT_UNTAG(" + Rs2 + ");");
    ln("    uint64_t bi = b >> 3, d = NT_AT(bi);");
    ln("    int64_t len = NT_KIND(d) == 3 ? 1 : (int64_t)NT_LEN2(d);");
    ln("    if (ix < 0 || ix >= len) {");
    ln("      " + raiseSeq(vmdetail::TagSubscript));
    ln("    }");
    ln(fmt("    cy += %u;", I.Cost));
    ln(fmt("    { uint64_t s = bi + 1 + (uint64_t)ix, v = %s;", Rd.c_str()));
    ln("      NT_AT(s) = v;");
    ln("      if (s < NT_NB && NT_ISPTR(v) && (v >> 3) >= NT_NB)");
    ln("        ctx->StoreBarrier(ctx, s, v); } } }");
    return true;
  case DOp::LoadByte:
    // The interpreter reads the descriptor without a pointer check
    // (bytesData); codegen only emits LoadByte on strings.
    CountOnly();
    ln("{ uint64_t bi = " + Rs1 + " >> 3, d = NT_AT(bi);");
    ln("  int64_t ix = NT_UNTAG(" + Rs2 + ");");
    ln("  if (ix < 0 || (uint64_t)ix >= NT_LEN1(d)) {");
    ln("    " + raiseSeq(vmdetail::TagSubscript));
    ln("  }");
    ChargeCy();
    ln(fmt("  %s = NT_TAG((int64_t)*((const unsigned char *)&NT_AT(bi + 1) "
           "+ ix)); }",
           Rd.c_str()));
    return true;
  case DOp::SizeOfOp:
    Charge();
    ln("{ uint64_t d = NT_AT(" + Rs1 + " >> 3);");
    ln("  uint64_t k = NT_KIND(d);");
    ln("  int64_t n = k == 2 ? (int64_t)NT_LEN1(d)");
    ln("            : k == 4 ? (int64_t)NT_LEN2(d)");
    ln("            : k == 3 ? 1");
    ln("            : (int64_t)NT_LEN1(d) + (int64_t)NT_LEN2(d);");
    ln("  " + Rd + " = NT_TAG(n); }");
    return true;

  case DOp::AllocStart:
    Charge();
    ln("NT_SPILL(); NT_FLUSH();");
    ln(fmt("ctx->Alloc(ctx, %uu, %uu, %d);", (unsigned)I.Rs1,
           (unsigned)I.Rs2,
           static_cast<RecordKind>(I.Aux) == RecordKind::Ref ? 1 : 0));
    ln("NT_RELOAD();");
    return true;
  case DOp::AllocWord:
    Charge();
    ln("*ctx->AllocPtr++ = " + Rs1 + ";");
    return true;
  case DOp::AllocFloat:
    Charge();
    ln("memcpy(ctx->AllocPtr, &" + Fs1 + ", 8); ctx->AllocPtr += 1;");
    return true;
  case DOp::AllocEnd:
    Charge();
    ln(Rd + " = ctx->AllocRef;");
    return true;

  case DOp::GetHdlr:
    Charge();
    ln(Rd + " = *ctx->Handler;");
    return true;
  case DOp::SetHdlr:
    Charge();
    ln("*ctx->Handler = " + Rs1 + ";");
    return true;

  case DOp::SetArg:
    Charge();
    ln(fmt("ctx->ArgW[%d] = %s; if (%d > mw) mw = %d;", I.Imm, Rs1.c_str(),
           I.Imm, I.Imm));
    return true;
  case DOp::SetArgF:
    Charge();
    ln(fmt("ctx->ArgF[%d] = %s; if (%d > mf) mf = %d;", I.Imm, Fs1.c_str(),
           I.Imm, I.Imm));
    return true;

  case DOp::CallL:
    Charge();
    if (I.Imm < 0 || I.Imm >= NumFuns) {
      // Statically invalid label: the interpreters trap at call time.
      ln(trapSeq("jump to invalid label"));
      return true;
    }
    ln("ctx->CallNW = mw + 1; ctx->CallNF = mf + 1;");
    ln("ctx->MaxW = -1; ctx->MaxF = -1;");
    ln("NT_FLUSH();");
    ln("ctx->W0 = w0;");
    ln("*ctx->FrameDepth -= 1;");
    ln(fmt("return %d;", I.Imm));
    return true;
  case DOp::CallR:
    // Legacy charges the call cost before the tag check: no refund.
    Charge();
    ln("{ uint64_t c = " + Rs1 + ";");
    ln("  if (!(c & 1ULL)) {");
    ln("    " + trapSeq(fmt("indirect call through a non-label value "
                            "(fn %d pc %zu reg %d)",
                            FnIdx, Pc, (int)I.Rs1)));
    ln("  }");
    ln("  { int64_t t = NT_UNTAG(c);");
    ln(fmt("    if (t < 0 || t >= %d) {", NumFuns));
    ln("      " + trapSeq("jump to invalid label"));
    ln("    }");
    ln("    ctx->CallNW = mw + 1; ctx->CallNF = mf + 1;");
    ln("    ctx->MaxW = -1; ctx->MaxF = -1;");
    ln("    NT_FLUSH();");
    ln("    ctx->W0 = w0;");
    ln("    *ctx->FrameDepth -= 1;");
    ln("    return t; } }");
    return true;

  case DOp::CCallRt:
    Charge();
    ln("NT_SPILL(); NT_FLUSH();");
    // Rt returns 1 when the service ended the run or transferred control
    // (a raise into a handler): exit through the trampoline. Either way
    // the interpreters reset the arg watermark after the service.
    ln(fmt("if (ctx->Rt(ctx, %d, %d)) {", I.Imm, (int)I.Rd));
    ln("  ctx->MaxW = -1; ctx->MaxF = -1;");
    ln("  goto nt_exit;");
    ln("}");
    ln("ctx->MaxW = -1; ctx->MaxF = -1; mw = -1; mf = -1;");
    ln("NT_RELOAD();");
    return true;

  case DOp::HaltOp:
    Charge();
    ln("NT_SPILL(); NT_FLUSH(); ctx->MaxW = mw; ctx->MaxF = mf;");
    ln("ctx->Halt(ctx, NT_UNTAG(" + Rs1 + "));");
    ln("goto nt_exit;");
    return true;
  case DOp::HaltExnOp:
    Charge();
    ln("NT_SPILL(); NT_FLUSH(); ctx->MaxW = mw; ctx->MaxF = mf;");
    ln("ctx->HaltExn(ctx);");
    ln("goto nt_exit;");
    return true;

  case DOp::TrapEnd:
  case DOp::TrapInvalid:
    break; // handled (refused) by the caller
  }
  return refuse(Err, Pc, fmt("unsupported opcode %d", (int)I.Op));
}

bool FnEmitter::emit(std::string &Err) {
  // The decoder appends one TrapEnd pad; everything before it is real.
  const size_t PadIdx = F.Code.size() - 1;
  if (PadIdx == 0)
    return refuse(Err, 0, "empty function (reachable end-of-function pad)");

  IsTarget.assign(F.Code.size(), false);
  for (size_t Pc = 0; Pc < PadIdx; ++Pc) {
    const DInsn &I = F.Code[Pc];
    switch (I.Op) {
    case DOp::TrapInvalid:
      return refuse(Err, Pc, std::string("statically invalid instruction (") +
                                 dtrapMessage(I.Imm) + ")");
    case DOp::TrapEnd:
      return refuse(Err, Pc, "unexpected trap pad inside function body");
    case DOp::Br:
    case DOp::BrF:
    case DOp::BrBoxed:
    case DOp::Jmp:
      // Targets are decode-validated (clamped to the pad when out of
      // range); a pad target means the original target was invalid and
      // must keep trapping through the interpreters.
      if (static_cast<size_t>(I.Imm) >= PadIdx)
        return refuse(Err, Pc, "branch to end-of-function trap pad");
      IsTarget[I.Imm] = true;
      break;
    default:
      break;
    }
  }
  // The pad is also reachable by falling through the last instruction.
  const DOp LastOp = F.Code[PadIdx - 1].Op;
  if (LastOp != DOp::Jmp && LastOp != DOp::CallL && LastOp != DOp::CallR &&
      LastOp != DOp::HaltOp && LastOp != DOp::HaltExnOp)
    return refuse(Err, PadIdx - 1,
                  "function can fall through its last instruction");

  emitSpillReloadMacros();
  emitPrologue();
  for (size_t Pc = 0; Pc < PadIdx; ++Pc) {
    if (IsTarget[Pc])
      O += fmt("L%zu:;\n", Pc);
    if (!emitInsn(F.Code[Pc], Pc, Err))
      return false;
  }
  O += "nt_exit:\n";
  ln("*ctx->Instructions += ni; *ctx->Cycles += cy;");
  // fr[0] (not the local) is W0's live value here: every path to
  // nt_exit spilled first, and GC may have moved what w0 pointed at.
  ln("ctx->W0 = fr[0];");
  ln("*ctx->FrameDepth -= 1;");
  ln("return ctx->NextFn;");
  O += "}\n#undef NT_SPILL\n#undef NT_RELOAD\n\n";
  return true;
}

} // namespace

bool smltc::native::emitNativeC(const TmProgram &Program, bool UnalignedFloats,
                                std::string &Out, std::string &Err) {
  DecodedProgram DP = decodeProgram(Program, UnalignedFloats);
  if (DP.Funs.empty()) {
    Err = "native: empty program";
    return false;
  }

  std::string O;
  O.reserve(1 << 16);
  O += "/* smltc native module (generated) */\n";
  O += "#include <stdint.h>\n#include <string.h>\n#include <math.h>\n";
  O += AbiDecls;
  O += Macros;
  O += "\n";
  for (size_t FI = 0; FI < DP.Funs.size(); ++FI)
    O += fmt("static int64_t nt_f%zu(NtCtx *ctx);\n", FI);
  O += "\n";

  for (size_t FI = 0; FI < DP.Funs.size(); ++FI) {
    FnEmitter E(O, DP.Funs[FI], static_cast<int>(FI),
                static_cast<int>(DP.Funs.size()));
    if (!E.emit(Err))
      return false;
  }

  O += "static const NtFun nt_funs[] = {\n";
  for (size_t FI = 0; FI < DP.Funs.size(); ++FI)
    O += fmt("  nt_f%zu,\n", FI);
  O += "};\n";
  O += fmt("static const NtModule nt_module = { %d, %d, nt_funs };\n",
           NT_ABI_VERSION, (int)DP.Funs.size());
  O += "const NtModule *smltc_native_entry_v1(void) { return &nt_module; }\n";

  Out = std::move(O);
  return true;
}
