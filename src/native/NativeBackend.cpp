//===- native/NativeBackend.cpp - AOT compile, cache, load, and run ----------------===//
//
// Pipeline: emitNativeC -> content hash -> in-process module cache ->
// disk cache (<hash>.so under $SMLTCC_NATIVE_CACHE or
// /tmp/smltcc-native-<uid>) -> system C compiler -> dlopen. Modules are
// never dlclosed: function pointers from them may outlive any single
// run, and a process compiles a bounded set of programs.
//
// The content hash covers the deterministic TM serialization
// (programBytes), the ABI version, the emitter's cost-relevant options
// (UnalignedFloats), and the compiler command, so a cached .so can never
// be reused across an ABI or codegen change.
//
//===----------------------------------------------------------------------===//

#include "native/NativeBackend.h"

#include "driver/CompileCache.h"
#include "native/NativeAbi.h"
#include "native/NativeEmit.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "vm/Decode.h"
#include "vm/Runtime.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

using namespace smltc;
using namespace smltc::native;
using namespace smltc::vmdetail;

//===----------------------------------------------------------------------===//
// ABI layout pins
//
// The generated C re-declares NtCtx textually, so the layout must be
// frozen: these asserts pin every field to its LP64 offset. If one
// fires, the struct changed — bump NT_ABI_VERSION and update the text
// in NativeEmit.cpp to match.
//===----------------------------------------------------------------------===//

static_assert(sizeof(NtFrame) == 16 && sizeof(ShadowFrame) == 16 &&
                  offsetof(NtFrame, Count) == offsetof(ShadowFrame, Count),
              "NtFrame must mirror ShadowFrame");
static_assert(offsetof(NtCtx, ArgW) == 0, "ABI drift");
static_assert(offsetof(NtCtx, F) == 16, "ABI drift");
static_assert(offsetof(NtCtx, Handler) == 24, "ABI drift");
static_assert(offsetof(NtCtx, StrPtrs) == 32, "ABI drift");
static_assert(offsetof(NtCtx, Frames) == 40, "ABI drift");
static_assert(offsetof(NtCtx, FrameDepth) == 48, "ABI drift");
static_assert(offsetof(NtCtx, MajorMem) == 56, "ABI drift");
static_assert(offsetof(NtCtx, NurseryMem) == 64, "ABI drift");
static_assert(offsetof(NtCtx, Instructions) == 72, "ABI drift");
static_assert(offsetof(NtCtx, Cycles) == 80, "ABI drift");
static_assert(offsetof(NtCtx, MaxCycles) == 88, "ABI drift");
static_assert(offsetof(NtCtx, W0) == 96, "ABI drift");
static_assert(offsetof(NtCtx, CallNW) == 104, "ABI drift");
static_assert(offsetof(NtCtx, CallNF) == 108, "ABI drift");
static_assert(offsetof(NtCtx, MaxW) == 112, "ABI drift");
static_assert(offsetof(NtCtx, MaxF) == 116, "ABI drift");
static_assert(offsetof(NtCtx, NextFn) == 120, "ABI drift");
static_assert(offsetof(NtCtx, AllocPtr) == 128, "ABI drift");
static_assert(offsetof(NtCtx, AllocRef) == 136, "ABI drift");
static_assert(offsetof(NtCtx, Host) == 144, "ABI drift");
static_assert(offsetof(NtCtx, Alloc) == 152, "ABI drift");
static_assert(offsetof(NtCtx, HaltExn) == 200, "ABI drift");
static_assert(sizeof(NtCtx) == 208, "ABI drift");

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

NativeTotals &smltc::native::nativeTotals() {
  static NativeTotals T;
  return T;
}

void smltc::native::registerNativeMetrics(obs::Registry &R) {
  NativeTotals &T = nativeTotals();
  auto C = [&R](const char *Name, const std::atomic<uint64_t> &A,
                const char *Help) {
    R.counterFn(Name, [&A] { return A.load(std::memory_order_relaxed); },
                Help);
  };
  C("smltcc_native_compiles_total", T.Compiles,
    "native modules built cold (emit + cc + dlopen)");
  C("smltcc_native_cache_hits_total", T.MemHits,
    "native module reuses from the in-process cache");
  C("smltcc_native_disk_hits_total", T.DiskHits,
    "native modules loaded from the on-disk artifact cache");
  C("smltcc_native_refusals_total", T.Refusals,
    "programs the native emitter refused (trap-path constructs)");
  C("smltcc_native_cc_failures_total", T.CcFailures,
    "C compiler or loader failures");
  C("smltcc_native_runs_total", T.Runs, "native executions");
}

//===----------------------------------------------------------------------===//
// Toolchain probing and artifact cache
//===----------------------------------------------------------------------===//

namespace {

std::string ccCommand() {
  const char *Env = std::getenv("SMLTCC_CC");
  return Env && *Env ? Env : "cc";
}

std::string cacheDir() {
  if (const char *Env = std::getenv("SMLTCC_NATIVE_CACHE"))
    if (*Env)
      return Env;
  return "/tmp/smltcc-native-" + std::to_string(static_cast<long>(getuid()));
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

bool writeFile(const std::string &Path, const std::string &Data) {
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  Os.write(Data.data(), static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Os);
}

std::string readFileTail(const std::string &Path, size_t MaxBytes) {
  std::ifstream Is(Path, std::ios::binary);
  std::string S((std::istreambuf_iterator<char>(Is)),
                std::istreambuf_iterator<char>());
  if (S.size() > MaxBytes)
    S = "..." + S.substr(S.size() - MaxBytes);
  return S;
}

struct LoadedModule {
  const NtModule *Mod = nullptr;
};

/// In-process module cache; modules stay mapped for the process
/// lifetime. Guarded because the compile server runs jobs concurrently.
std::mutex ModulesMu;
std::map<uint64_t, LoadedModule> Modules;

bool loadModule(const std::string &SoPath, const NtModule *&Mod,
                std::string &Err) {
  void *Dl = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Dl) {
    Err = std::string("native: dlopen failed: ") + ::dlerror();
    return false;
  }
  using EntryFn = const NtModule *(*)(void);
  EntryFn Entry =
      reinterpret_cast<EntryFn>(::dlsym(Dl, "smltc_native_entry_v1"));
  if (!Entry) {
    Err = "native: module lacks smltc_native_entry_v1";
    return false;
  }
  Mod = Entry();
  if (!Mod || Mod->Abi != NT_ABI_VERSION) {
    Err = "native: module ABI version mismatch";
    return false;
  }
  return true;
}

/// Emits, compiles (or reuses), loads. Returns null with Err set on any
/// failure; bumps the corresponding counter.
const NtModule *compileNative(const TmProgram &P, const VmOptions &Opts,
                              std::string &Err) {
  NativeTotals &T = nativeTotals();
  obs::Span CompileSpan("native_compile", "native");

  std::string CSrc, EmitErr;
  if (!emitNativeC(P, Opts.UnalignedFloats, CSrc, EmitErr)) {
    T.Refusals.fetch_add(1, std::memory_order_relaxed);
    Err = EmitErr;
    return nullptr;
  }

  const std::string Cc = ccCommand();
  std::string KeyBytes = programBytes(P);
  KeyBytes += "|ntabi=" + std::to_string(NT_ABI_VERSION);
  KeyBytes += "|uf=" + std::to_string(Opts.UnalignedFloats ? 1 : 0);
  KeyBytes += "|cc=" + Cc;
  const uint64_t Key = fnv1a64(KeyBytes);
  CompileSpan.arg("key", static_cast<uint64_t>(Key));

  {
    std::lock_guard<std::mutex> Lock(ModulesMu);
    auto It = Modules.find(Key);
    if (It != Modules.end()) {
      T.MemHits.fetch_add(1, std::memory_order_relaxed);
      return It->second.Mod;
    }
  }

  char Hex[32];
  std::snprintf(Hex, sizeof(Hex), "%016llx", (unsigned long long)Key);
  const std::string Dir = cacheDir();
  ::mkdir(Dir.c_str(), 0700);
  const std::string SoPath = Dir + "/" + Hex + ".so";
  const std::string CPath = Dir + "/" + Hex + ".c";

  bool FromDisk = fileExists(SoPath);
  if (!FromDisk) {
    if (!writeFile(CPath, CSrc)) {
      T.CcFailures.fetch_add(1, std::memory_order_relaxed);
      Err = "native: cannot write " + CPath;
      return nullptr;
    }
    // -w: generated code trips pedantic warnings (unused labels) by
    // design. No -ffast-math ever: float results must stay bit-exact
    // against the interpreters.
    const std::string Tmp = SoPath + ".tmp." + std::to_string(::getpid());
    const std::string ErrPath = CPath + ".err";
    const std::string Cmd = Cc + " -O2 -fPIC -shared -w -o '" + Tmp + "' '" +
                            CPath + "' -lm 2> '" + ErrPath + "'";
    if (std::system(Cmd.c_str()) != 0) {
      T.CcFailures.fetch_add(1, std::memory_order_relaxed);
      Err = "native: C compiler failed: " + readFileTail(ErrPath, 512);
      std::remove(Tmp.c_str());
      return nullptr;
    }
    if (std::rename(Tmp.c_str(), SoPath.c_str()) != 0) {
      T.CcFailures.fetch_add(1, std::memory_order_relaxed);
      Err = "native: cannot move artifact into cache";
      std::remove(Tmp.c_str());
      return nullptr;
    }
  }

  const NtModule *Mod = nullptr;
  if (!loadModule(SoPath, Mod, Err)) {
    T.CcFailures.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (Mod->NumFuns != static_cast<int32_t>(P.Funs.size())) {
    T.CcFailures.fetch_add(1, std::memory_order_relaxed);
    Err = "native: cached module function count mismatch";
    return nullptr;
  }
  if (FromDisk)
    T.DiskHits.fetch_add(1, std::memory_order_relaxed);
  else
    T.Compiles.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> Lock(ModulesMu);
  Modules.emplace(Key, LoadedModule{Mod});
  return Mod;
}

//===----------------------------------------------------------------------===//
// NativeHost: VmRuntime driving a loaded module
//===----------------------------------------------------------------------===//

class NativeHost final : public VmRuntime {
public:
  NativeHost(const TmProgram &P, const VmOptions &Opts) : VmRuntime(P, Opts) {
    std::memset(F, 0, sizeof(F));
    // No register-file root range: native frames publish their word
    // registers through the heap shadow stack instead.
    initRuntime(nullptr, nullptr);
  }

  ExecResult run(const NtModule *M);

protected:
  /// A runtime-service result lands in the calling frame's register
  /// slot; during a service the caller's frame is the top of the shadow
  /// stack.
  Word &regOut(Reg Rd) override {
    return Hp.shadowFrames()[Hp.shadowDepthNow() - 1].Base[Rd];
  }

  /// Transfers from host services (raise into a handler): record the
  /// target for the trampoline. Invalid labels trap exactly like
  /// jumpIntoDecoded.
  void enterFunction(int Label, int NW, int NF) override {
    if (Label < 0 || Label >= Mod->NumFuns) {
      trap("jump to invalid label");
      return;
    }
    Ctx.NextFn = Label;
    Ctx.CallNW = NW;
    Ctx.CallNF = NF;
    Transferred = true;
  }

private:
  double F[NumFloatRegs];
  NtCtx Ctx{};
  const NtModule *Mod = nullptr;
  bool Transferred = false;

  /// Heap storage moves on GC or growth; re-publish the raw bases after
  /// every callback that can allocate.
  void refreshHeapPtrs() {
    Ctx.MajorMem = Hp.majorData();
    Ctx.NurseryMem = Hp.nurseryData();
  }

  void setupCtx() {
    Ctx.ArgW = ArgW;
    Ctx.ArgF = ArgF;
    Ctx.F = F;
    Ctx.Handler = &Handler;
    Ctx.StrPtrs = StrPtrs.data();
    Ctx.Frames = reinterpret_cast<NtFrame *>(Hp.shadowFrames());
    Ctx.FrameDepth = Hp.shadowDepth();
    Ctx.Instructions = &R.Instructions;
    Ctx.Cycles = &R.Cycles;
    Ctx.MaxCycles = Opts.MaxCycles;
    Ctx.W0 = 0; // the interpreters never stage W[0]; it starts raw zero
    Ctx.CallNW = 0;
    Ctx.CallNF = 0;
    Ctx.MaxW = -1;
    Ctx.MaxF = -1;
    Ctx.NextFn = -1;
    Ctx.Host = this;
    Ctx.Alloc = &ntAlloc;
    Ctx.StoreBarrier = &ntStoreBarrier;
    Ctx.Rt = &ntRt;
    Ctx.Raise = &ntRaise;
    Ctx.Trap = &ntTrap;
    Ctx.Halt = &ntHalt;
    Ctx.HaltExn = &ntHaltExn;
    refreshHeapPtrs();
  }

  static void ntAlloc(NtCtx *C, uint32_t NWords, uint32_t NFloats,
                      int32_t IsRef) {
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    size_t Payload = static_cast<size_t>(NWords) + NFloats;
    size_t At = H.allocObject(ObjKind::Record, NFloats, NWords, Payload);
    if (IsRef)
      H.Hp.at(At) = makeDesc(ObjKind::Cell, 0, 1);
    H.AllocWords32 += 1 + NWords + 2 * static_cast<uint64_t>(NFloats);
    C->AllocPtr = &H.Hp.at(At + 1);
    C->AllocRef = makePointer(At);
    H.refreshHeapPtrs();
  }

  static void ntStoreBarrier(NtCtx *C, uint64_t Slot, uint64_t V) {
    // Idempotent re-store: generated code already wrote the slot;
    // storeField records it on the barrier list and counts the store.
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    H.Hp.storeField(static_cast<size_t>(Slot), V);
  }

  static int32_t ntRt(NtCtx *C, int32_t Service, int32_t Rd) {
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    H.Transferred = false;
    C->NextFn = -1;
    H.runtimeCall(static_cast<CpsOp>(Service), static_cast<Reg>(Rd));
    H.refreshHeapPtrs();
    return (H.Transferred || H.Done) ? 1 : 0;
  }

  static void ntRaise(NtCtx *C, int32_t Tag) {
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    H.Transferred = false;
    C->NextFn = -1;
    H.raiseBuiltin(Tag); // allocates the exception record: may GC
    H.refreshHeapPtrs();
  }

  static void ntTrap(NtCtx *C, const char *Msg) {
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    C->NextFn = -1;
    H.trap(Msg);
  }

  static void ntHalt(NtCtx *C, int64_t Result) {
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    C->NextFn = -1;
    H.R.Result = Result;
    H.Done = true;
  }

  static void ntHaltExn(NtCtx *C) {
    NativeHost &H = *static_cast<NativeHost *>(C->Host);
    C->NextFn = -1;
    H.R.UncaughtException = true;
    H.R.Result = -1;
    H.Done = true;
  }
};

ExecResult NativeHost::run(const NtModule *M) {
  using Clock = std::chrono::steady_clock;
  Mod = M;

  obs::Span RunSpan("native_run", "native");
  R.Metrics.Dispatch = "native";

  if (const char *VErr = validateRegisters(P)) {
    trap(VErr);
  } else if (P.Funs.empty()) {
    trap("jump to invalid label"); // what jumpInto(0,..) reports
  } else {
    setupCtx();
    auto T0 = Clock::now();
    int64_t FnI = 0;
    while (FnI >= 0 && !Done)
      FnI = M->Funs[FnI](&Ctx);
    R.Metrics.ExecSec =
        std::chrono::duration<double>(Clock::now() - T0).count();
  }

  // Result epilogue, mirroring Machine::run.
  R.Ok = !R.Trapped;
  R.AllocWords32 = AllocWords32;
  R.AllocObjects = Hp.allocatedObjects();
  R.GcCopiedWords = Hp.copiedWords();
  R.Collections = Hp.collections();

  const HeapStats &HS = Hp.stats();
  VmMetrics &VM = R.Metrics;
  VM.NurseryKb = Hp.nurseryWords() * sizeof(Word) / 1024;
  VM.GcSec = HS.GcSec;
  VM.Instructions = R.Instructions;
  VM.Cycles = R.Cycles;
  VM.AllocObjects = Hp.allocatedObjects();
  VM.NurseryAllocObjects = HS.NurseryAllocObjects;
  VM.AllocWords32 = AllocWords32;
  VM.MinorCollections = HS.MinorCollections;
  VM.MajorCollections = HS.MajorCollections;
  VM.CopiedWords = Hp.copiedWords();
  VM.PromotedWords = HS.PromotedWords;
  VM.MajorCopiedWords = HS.MajorCopiedWords;
  VM.MaxMinorPauseWords = HS.MaxMinorPauseWords;
  VM.MaxMajorPauseWords = HS.MaxMajorPauseWords;
  VM.BarrierStores = HS.BarrierStores;
  RunSpan.arg("dispatch", std::string("native"));
  RunSpan.arg("instructions", VM.Instructions);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

bool smltc::native::nativeAvailable() {
  static int Cached = -1;
  if (Cached < 0) {
    std::string Cmd = ccCommand() + " --version > /dev/null 2>&1";
    Cached = std::system(Cmd.c_str()) == 0 ? 1 : 0;
  }
  return Cached == 1;
}

bool smltc::native::executeNative(const TmProgram &Program,
                                  const VmOptions &Opts, ExecResult &Out,
                                  std::string &Err) {
  if (!nativeAvailable()) {
    Err = "native: no C compiler available (set SMLTCC_CC)";
    return false;
  }
  const NtModule *Mod = compileNative(Program, Opts, Err);
  if (!Mod)
    return false;
  nativeTotals().Runs.fetch_add(1, std::memory_order_relaxed);
  NativeHost Host(Program, Opts);
  Out = Host.run(Mod);
  return true;
}
