//===- native/NativeBackend.h - AOT compile, cache, load, and run ------------------===//
///
/// \file
/// The host side of the native backend: emits C for a TM program
/// (NativeEmit), compiles it with the system C compiler into a shared
/// object, caches the artifact content-addressed on disk and per-process
/// in memory, `dlopen`s it, and drives it over the shared VmRuntime
/// (heap, runtime services, exceptions) through the trampoline protocol
/// in NativeAbi.h. Observable results are bit-identical to the three
/// interpreter engines for every program the emitter accepts; the
/// differential tests assert this across the whole corpus.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_NATIVE_NATIVEBACKEND_H
#define SMLTC_NATIVE_NATIVEBACKEND_H

#include "vm/Vm.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace smltc {

namespace obs {
class Registry;
}

namespace native {

/// True when a working C compiler is reachable (probed once per process;
/// override the compiler with SMLTCC_CC, default `cc`).
bool nativeAvailable();

/// Process-lifetime counters for the native backend, exported through
/// the metrics registry (registerNativeMetrics).
struct NativeTotals {
  std::atomic<uint64_t> Compiles{0};   ///< emit+cc+dlopen cold builds
  std::atomic<uint64_t> MemHits{0};    ///< in-process module cache hits
  std::atomic<uint64_t> DiskHits{0};   ///< cached .so reused from disk
  std::atomic<uint64_t> Refusals{0};   ///< programs the emitter refused
  std::atomic<uint64_t> CcFailures{0}; ///< C compiler / loader failures
  std::atomic<uint64_t> Runs{0};       ///< native executions
};
NativeTotals &nativeTotals();
void registerNativeMetrics(obs::Registry &R);

/// Compiles (or reuses a cached build of) Program and runs it natively.
/// Returns false with a diagnostic in Err when the backend cannot take
/// the program (emitter refusal, no C compiler, cc failure): no silent
/// interpreter fallback — callers decide. On success Out carries the
/// same ExecResult an interpreter engine would produce, with
/// Metrics.Dispatch == "native".
bool executeNative(const TmProgram &Program, const VmOptions &Opts,
                   ExecResult &Out, std::string &Err);

} // namespace native
} // namespace smltc

#endif // SMLTC_NATIVE_NATIVEBACKEND_H
