//===- native/NativeEmit.h - TM -> C source emission -------------------------------===//
///
/// \file
/// Translates a TM program (via the pre-decoded DInsn form, so operands
/// are resolved, branch targets validated, and the cost model's static
/// charges fused) into one C translation unit implementing the ABI in
/// NativeAbi.h. Emission is refused — never silently degraded — for
/// programs containing the decoder's synthetic trap instructions or a
/// reachable end-of-function pad: those must keep trapping through the
/// interpreters, and the differential tests assert the refusal.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_NATIVE_NATIVEEMIT_H
#define SMLTC_NATIVE_NATIVEEMIT_H

#include "codegen/Machine.h"

#include <string>

namespace smltc {
namespace native {

/// Emits the complete C source for Program into Out. Returns true on
/// success; on refusal returns false with a diagnostic in Err (Out is
/// left unspecified). UnalignedFloats selects the LoadF cost, exactly as
/// in VmOptions.
bool emitNativeC(const TmProgram &Program, bool UnalignedFloats,
                 std::string &Out, std::string &Err);

} // namespace native
} // namespace smltc

#endif // SMLTC_NATIVE_NATIVEEMIT_H
