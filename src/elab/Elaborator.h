//===- elab/Elaborator.h - Elaboration and type checking -------------------===//
///
/// \file
/// The Elaborator/Type-checker: Damas-Milner inference for the core
/// language plus module elaboration (signatures, structures, functors).
/// Produces typed Absyn where every polymorphic occurrence carries its
/// instantiation and every module abstraction/instantiation carries a
/// thinning function — the inputs the paper's Lambda Translator needs
/// (Sections 3 and 4).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_ELAB_ELABORATOR_H
#define SMLTC_ELAB_ELABORATOR_H

#include "ast/Ast.h"
#include "elab/Absyn.h"
#include "elab/Env.h"
#include "support/Diagnostics.h"
#include "types/Type.h"
#include "types/Unify.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace smltc {

/// Resolution of a (possibly qualified) value identifier.
struct ResolvedVal {
  enum class Kind : uint8_t {
    None,
    LocalVal,
    LocalCon,
    LocalExn,
    LocalPrim,
    PathVal, ///< value component reached through structure slots
    PathExn, ///< exception component reached through structure slots
  };
  Kind K = Kind::None;
  ValBinding Local;            // Local*
  DataCon *Con = nullptr;      // LocalCon (also for path-resolved cons)
  StrInfo *Root = nullptr;     // Path*
  std::vector<int> Slots;      // Path*
  TypeScheme PathScheme;       // PathVal
  Type *ExnPayload = nullptr;  // PathExn / LocalExn
  ExnInfo *Exn = nullptr;      // LocalExn
};

/// Everything a derived Elaborator needs to resume where a frozen one
/// (the prelude snapshot's) left off: the elaborated environment to layer
/// on, the builtin-exception handles, and the binding-id counters — the
/// counters make snapshot-mode elaboration number new bindings exactly as
/// the inline (concatenated-prelude) pipeline would, which is what keeps
/// the generated code bit-identical between the two modes.
struct ElabSeed {
  const Env *BaseEnv = nullptr;
  ExnInfo *Match = nullptr;
  ExnInfo *Bind = nullptr;
  ExnInfo *Div = nullptr;
  ExnInfo *Overflow = nullptr;
  ExnInfo *Subscript = nullptr;
  ExnInfo *Size = nullptr;
  ExnInfo *Chr = nullptr;
  int NextValId = 1;
  int NextExnId = 1;
  int NextStrId = 1;
  int NextFctId = 1;
};

class Elaborator {
public:
  Elaborator(Arena &A, TypeContext &Types, StringInterner &Interner,
             DiagnosticEngine &Diags);

  /// Seeded construction: layers a fresh overlay environment over
  /// \p Seed.BaseEnv instead of rebuilding the builtins, adopts the
  /// seed's exception handles, and resumes its counters. \p Types must
  /// be derived from the context the seed was elaborated under.
  Elaborator(Arena &A, TypeContext &Types, StringInterner &Interner,
             DiagnosticEngine &Diags, const ElabSeed &Seed);

  /// Elaborates a program (prelude declarations should be part of it).
  AProgram elaborate(const ast::Program &P);

  /// Exports the post-elaboration state a derived Elaborator resumes
  /// from (prelude snapshot construction).
  ElabSeed exportSeed() const;
  /// The elaborated environment (kept alive by the snapshot).
  std::shared_ptr<Env> environment() const { return E; }

  // Builtin exceptions (referenced by the translator for match failure,
  // division by zero, and array bounds).
  ExnInfo *MatchExn;
  ExnInfo *BindExn;
  ExnInfo *DivExn;
  ExnInfo *OverflowExn;
  ExnInfo *SubscriptExn;
  ExnInfo *SizeExn;
  ExnInfo *ChrExn;

  TypeContext &types() { return Types; }

private:
  friend struct CompCollector;

  using TyVarMap = std::unordered_map<Symbol, Type *>;

  // --- core expressions/patterns/declarations (Elaborator.cpp) ---
  AExp *elabExp(const ast::Exp *E);
  APat *elabPat(const ast::Pat *P, std::vector<ValInfo *> &Bound);
  void elabDec(const ast::Dec *D, std::vector<ADec *> &Out,
               struct CompCollector *CC);
  Type *elabTy(const ast::Ty *T, TyVarMap *TyVars);

  ResolvedVal resolveLongVal(const ast::LongId &Id, SourceLoc Loc);
  TyCon *resolveLongTycon(const ast::LongId &Id, SourceLoc Loc);

  AExp *varOccurrence(ValInfo *V, SourceLoc Loc);
  AExp *pathOccurrence(StrInfo *Root, const std::vector<int> &Slots,
                       const TypeScheme &S, SourceLoc Loc);
  AExp *conOccurrence(DataCon *C, SourceLoc Loc);
  AExp *primOccurrence(const PrimDesc &P, SourceLoc Loc);
  AExp *exnConExp(AExp *TagExp, Type *Payload, SourceLoc Loc);

  void elabDatatypeDec(const ast::Dec *D, CompCollector *CC);
  void elabDatBinds(Span<ast::DatBind> Binds, CompCollector *CC);
  void elabFunDec(const ast::Dec *D, std::vector<ADec *> &Out,
                  CompCollector *CC);
  void elabValRec(Span<Symbol> Names, Span<ast::Exp *> Exps, SourceLoc Loc,
                  std::vector<ADec *> &Out, CompCollector *CC);

  /// Generalizes the given (ValInfo, type) pairs at the current depth.
  void finishGeneralize(std::vector<std::pair<ValInfo *, Type *>> &Binds,
                        bool CanGeneralize);
  void resolveOverloads(size_t From);
  bool isSyntacticValue(const ast::Exp *E);

  void unifyOrDiag(Type *T1, Type *T2, SourceLoc Loc, const char *Ctx);

  ValInfo *makeValInfo(Symbol Name, Type *Ty);
  ExnInfo *makeExn(Symbol Name, Type *Payload, bool Builtin = false);

  // --- modules (ElabModule.cpp) ---
  AStrExp *elabStrExp(const ast::StrExp *S);
  /// Elaborates a signature to fresh ("most abstract") statics: type specs
  /// become flexible tycons, datatype specs fresh datatypes.
  StrStatic *elabSigStatic(const ast::SigExp *S);
  StrStatic *elabSigStaticInEnv(const ast::SigExp *S, Env &E);
  void elabSpecs(Span<ast::Spec *> Specs, Env &SigEnv,
                 struct CompCollector &CC);
  /// Matches Source against Target (an elaborated signature's statics),
  /// accumulating the realization of Target's flexible tycons and building
  /// the thinning function.
  Thinning *matchAgainstStatic(const StrStatic *Source,
                               const StrStatic *Target,
                               std::unordered_map<TyCon *, TyCon *> &Real,
                               SourceLoc Loc);
  /// Substitutes realized tycons throughout a statics tree.
  StrStatic *realizeStatic(const StrStatic *S,
                           const std::unordered_map<TyCon *, TyCon *> &Real);
  Type *realizeType(Type *T,
                    const std::unordered_map<TyCon *, TyCon *> &Real);
  TypeScheme realizeScheme(const TypeScheme &S,
                           const std::unordered_map<TyCon *, TyCon *> &Real);
  Thinning *
  realizeThinningDst(const Thinning *T,
                     const std::unordered_map<TyCon *, TyCon *> &Real);
  void elabStructureDec(const ast::Dec *D, std::vector<ADec *> &Out,
                        CompCollector *CC);
  void elabFunctorDec(const ast::Dec *D, std::vector<ADec *> &Out,
                      CompCollector *CC);
  /// Demotes Exported on source bindings hidden by the thinning (for MTD).
  void demoteHidden(const StrStatic *Source, const Thinning *Thin);

  void setupBuiltins();

  Arena &A;
  TypeContext &Types;
  StringInterner &Interner;
  DiagnosticEngine &Diags;
  std::shared_ptr<Env> E; ///< shared so signatures can snapshot it
  int Depth = 0;
  /// Nesting depth of `let` expressions: bindings made at LetDepth > 0 are
  /// non-exported (minimum-typing-derivation candidates).
  int LetDepth = 0;
  int NextValId = 1;
  int NextExnId = 1;
  int NextStrId = 1;
  int NextFctId = 1;
  std::vector<AExp *> PendingOverloads;

  Symbol SymMain;
};

} // namespace smltc

#endif // SMLTC_ELAB_ELABORATOR_H
