//===- elab/Mtd.h - Minimum typing derivations ------------------------------===//
///
/// \file
/// Minimum typing derivations (paper Section 3.1, after Bjorner's algorithm
/// M): non-exported polymorphic bindings are re-assigned the least general
/// type scheme that generalizes all of their recorded instantiations. When
/// every use of a bound variable resolves to the same ground monotype, the
/// variable is instantiated in place, monomorphizing the binding's body —
/// which lets the translator use, e.g., primitive equality instead of the
/// slow polymorphic equality (the paper's 10x Life anecdote).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_ELAB_MTD_H
#define SMLTC_ELAB_MTD_H

#include "elab/Absyn.h"
#include "support/Arena.h"
#include "types/Type.h"

namespace smltc {

struct MtdStats {
  unsigned VarsGrounded = 0;   ///< scheme variables instantiated in place
  unsigned BindingsNarrowed = 0; ///< bindings whose scheme lost variables
};

/// Runs minimum typing derivations over an elaborated program, mutating
/// type schemes in place. Returns statistics for reporting.
MtdStats runMtd(AProgram &Prog, TypeContext &Types, Arena &A);

} // namespace smltc

#endif // SMLTC_ELAB_MTD_H
