//===- elab/Internal.h - Elaborator private helpers ------------------------===//
///
/// \file
/// Private helpers shared between Elaborator.cpp and ElabModule.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_ELAB_INTERNAL_H
#define SMLTC_ELAB_INTERNAL_H

#include "elab/Absyn.h"
#include "support/Arena.h"

#include <vector>

namespace smltc {

/// Accumulates the components of a structure body as its declarations are
/// elaborated; later converted into a StrStatic plus the slot references
/// needed to build the runtime record.
struct CompCollector {
  std::vector<StrComp> Comps;
  std::vector<StrTyComp> TyComps;
  std::vector<StrConComp> ConComps;
  std::vector<SlotRef> Slots;

  void addVal(Symbol Name, ValInfo *V) {
    StrComp C;
    C.K = StrComp::Kind::Val;
    C.Name = Name;
    C.Slot = static_cast<int>(Comps.size());
    C.Scheme = V->Scheme;
    C.Val = V;
    Comps.push_back(C);
    SlotRef R;
    R.K = StrComp::Kind::Val;
    R.Val = V;
    R.CompScheme = V->Scheme;
    Slots.push_back(R);
  }

  void addExn(Symbol Name, ExnInfo *X) {
    StrComp C;
    C.K = StrComp::Kind::Exn;
    C.Name = Name;
    C.Slot = static_cast<int>(Comps.size());
    C.Exn = X;
    C.ExnPayload = X->Payload;
    Comps.push_back(C);
    SlotRef R;
    R.K = StrComp::Kind::Exn;
    R.Exn = X;
    Slots.push_back(R);
  }

  void addStr(Symbol Name, StrInfo *S) {
    StrComp C;
    C.K = StrComp::Kind::Str;
    C.Name = Name;
    C.Slot = static_cast<int>(Comps.size());
    C.Str = S->Static;
    Comps.push_back(C);
    SlotRef R;
    R.K = StrComp::Kind::Str;
    R.Str = S;
    Slots.push_back(R);
  }

  // Spec variants (signature elaboration): no runtime bindings exist, so
  // the slot references are placeholders.
  void addValScheme(Symbol Name, TypeScheme S) {
    StrComp C;
    C.K = StrComp::Kind::Val;
    C.Name = Name;
    C.Slot = static_cast<int>(Comps.size());
    C.Scheme = S;
    Comps.push_back(C);
    SlotRef R;
    R.K = StrComp::Kind::Val;
    R.CompScheme = S;
    Slots.push_back(R);
  }

  void addExnSpec(Symbol Name, Type *Payload) {
    StrComp C;
    C.K = StrComp::Kind::Exn;
    C.Name = Name;
    C.Slot = static_cast<int>(Comps.size());
    C.ExnPayload = Payload;
    Comps.push_back(C);
    SlotRef R;
    R.K = StrComp::Kind::Exn;
    Slots.push_back(R);
  }

  void addStrSpec(Symbol Name, StrStatic *S) {
    StrComp C;
    C.K = StrComp::Kind::Str;
    C.Name = Name;
    C.Slot = static_cast<int>(Comps.size());
    C.Str = S;
    Comps.push_back(C);
    SlotRef R;
    R.K = StrComp::Kind::Str;
    Slots.push_back(R);
  }

  void addTycon(Symbol Name, TyCon *T) {
    TyComps.push_back(StrTyComp{Name, T});
  }
  void addCon(Symbol Name, DataCon *C) {
    ConComps.push_back(StrConComp{Name, C});
  }

  StrStatic *finish(Arena &A) const {
    StrStatic *S = A.create<StrStatic>();
    S->Comps = Span<StrComp>::copy(A, Comps);
    S->TyComps = Span<StrTyComp>::copy(A, TyComps);
    S->ConComps = Span<StrConComp>::copy(A, ConComps);
    return S;
  }
};

} // namespace smltc

#endif // SMLTC_ELAB_INTERNAL_H
