//===- elab/Env.h - Static environments ------------------------------------===//
///
/// \file
/// Scoped static environments for elaboration: value identifiers (variables,
/// data constructors, exception constructors, primitives), type
/// constructors, structures, signatures, and functors.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_ELAB_ENV_H
#define SMLTC_ELAB_ENV_H

#include "ast/Ast.h"
#include "elab/Absyn.h"
#include "types/Type.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace smltc {

/// The overload family of a builtin operator occurrence (resolved to a
/// concrete PrimId after the enclosing top-level declaration).
enum class OverloadClass : uint8_t {
  None,
  Arith2, ///< v * v -> v      (+ - *)
  Cmp2,   ///< v * v -> bool   (< <= > >=)
  Neg,    ///< v -> v          (~ abs)
};

/// A builtin primitive's environment entry.
struct PrimDesc {
  PrimId Id;
  TypeScheme Scheme;          ///< ignored for overloaded entries
  OverloadClass Overload = OverloadClass::None;
};

/// What a value identifier denotes.
struct ValBinding {
  enum class Kind : uint8_t { None, Val, Con, Exn, Prim };
  Kind K = Kind::None;
  ValInfo *Val = nullptr;
  DataCon *Con = nullptr;
  ExnInfo *Exn = nullptr;
  PrimDesc Prim;

  bool isValid() const { return K != Kind::None; }
};

/// A named signature: elaborated lazily at each use to get generative
/// semantics; captures its definition environment.
struct SigInfo {
  Symbol Name;
  const ast::SigExp *Def = nullptr;
  /// Snapshot of the environment the signature was declared in.
  std::shared_ptr<class Env> DefEnv;
};

/// Read-only visitor over every binding of an Env (all scopes, outermost
/// first; the base env, if any, is not visited). Used by the prelude
/// snapshot's freeze pass to reach every type the environment retains.
class EnvVisitor {
public:
  virtual ~EnvVisitor() = default;
  virtual void val(Symbol S, const ValBinding &B) = 0;
  virtual void tycon(Symbol S, TyCon *T) = 0;
  virtual void str(Symbol S, StrInfo *I) = 0;
  virtual void sig(Symbol S, const SigInfo &I) = 0;
  virtual void fct(Symbol S, FctInfo *F) = 0;
};

/// A lexically scoped environment. Scopes are pushed/popped as a stack;
/// copying an Env snapshots it (used for signature definitions).
///
/// An Env may layer on an immutable *base* env: lookups that miss every
/// local scope fall through to the base (the prelude snapshot's top-level
/// environment), so a job's elaborator sees the prelude bindings without
/// copying them. Local bindings shadow base bindings exactly as a later
/// scope shadows an earlier one. The base is never mutated and must
/// outlive this env; copies (signature snapshots) keep the base pointer.
class Env {
public:
  Env() { push(); }

  void push() { Scopes.emplace_back(); }
  void pop() { Scopes.pop_back(); }

  void bindVal(Symbol S, ValBinding B) { Scopes.back().Vals[S] = B; }
  void bindVar(Symbol S, ValInfo *V) {
    ValBinding B;
    B.K = ValBinding::Kind::Val;
    B.Val = V;
    bindVal(S, B);
  }
  void bindCon(Symbol S, DataCon *C) {
    ValBinding B;
    B.K = ValBinding::Kind::Con;
    B.Con = C;
    bindVal(S, B);
  }
  void bindExn(Symbol S, ExnInfo *E) {
    ValBinding B;
    B.K = ValBinding::Kind::Exn;
    B.Exn = E;
    bindVal(S, B);
  }
  void bindPrim(Symbol S, PrimDesc P) {
    ValBinding B;
    B.K = ValBinding::Kind::Prim;
    B.Prim = P;
    bindVal(S, B);
  }
  void bindTycon(Symbol S, TyCon *T) { Scopes.back().Tycons[S] = T; }
  void bindStr(Symbol S, StrInfo *I) { Scopes.back().Strs[S] = I; }
  void bindSig(Symbol S, std::shared_ptr<SigInfo> I) {
    Scopes.back().Sigs[S] = std::move(I);
  }
  void bindFct(Symbol S, FctInfo *F) { Scopes.back().Fcts[S] = F; }

  ValBinding lookupVal(Symbol S) const;
  TyCon *lookupTycon(Symbol S) const;
  StrInfo *lookupStr(Symbol S) const;
  std::shared_ptr<SigInfo> lookupSig(Symbol S) const;
  FctInfo *lookupFct(Symbol S) const;

  void setBase(const Env *B) { Base = B; }
  const Env *base() const { return Base; }

  /// Visits every local binding (not the base's).
  void visit(EnvVisitor &V) const;

private:
  struct Scope {
    std::unordered_map<Symbol, ValBinding> Vals;
    std::unordered_map<Symbol, TyCon *> Tycons;
    std::unordered_map<Symbol, StrInfo *> Strs;
    std::unordered_map<Symbol, std::shared_ptr<SigInfo>> Sigs;
    std::unordered_map<Symbol, FctInfo *> Fcts;
  };
  const Env *Base = nullptr;
  std::vector<Scope> Scopes;
};

} // namespace smltc

#endif // SMLTC_ELAB_ENV_H
