//===- elab/Mtd.cpp - Minimum typing derivations ----------------------------===//

#include "elab/Mtd.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace smltc;

namespace {

/// Collects instantiation evidence for scheme-bound variables across the
/// whole program.
class MtdAnalysis {
public:
  explicit MtdAnalysis(TypeContext &Types) : Types(Types) {}

  std::unordered_map<Type *, std::vector<Type *>> Instances;
  std::unordered_set<Type *> Poisoned;
  std::vector<ValInfo *> PolyBindings;

  void walkProgram(const AProgram &P) {
    for (ADec *D : P.Decs)
      walkDec(D);
    if (P.Result)
      walkExp(P.Result);
  }

private:
  void poisonScheme(const TypeScheme &S) {
    for (Type *B : S.BoundVars)
      Poisoned.insert(B);
  }

  void recordBinding(ValInfo *V) {
    if (V->Scheme.BoundVars.empty())
      return;
    PolyBindings.push_back(V);
    if (V->Exported)
      poisonScheme(V->Scheme);
  }

  void walkDec(ADec *D) {
    switch (D->K) {
    case ADec::Kind::Val:
      walkPat(D->Pat);
      walkExp(D->Exp);
      return;
    case ADec::Kind::ValRec:
      for (ValInfo *V : D->RecVars)
        recordBinding(V);
      for (AExp *E : D->RecExps)
        walkExp(E);
      return;
    case ADec::Kind::Exception:
      return;
    case ADec::Kind::Structure:
      walkStrExp(D->StrExp);
      return;
    case ADec::Kind::Functor:
      walkStrExp(D->Fct->Body);
      return;
    case ADec::Kind::Empty:
      return;
    }
  }

  void walkStrExp(AStrExp *S) {
    if (!S)
      return;
    switch (S->K) {
    case AStrExp::Kind::Struct:
      for (ADec *D : S->Decs)
        walkDec(D);
      return;
    case AStrExp::Kind::Var:
      return;
    case AStrExp::Kind::FctApp:
      walkStrExp(S->Arg);
      return;
    case AStrExp::Kind::Thinned:
      walkStrExp(S->Inner);
      return;
    }
  }

  void walkPat(APat *P) {
    if (!P)
      return;
    if (P->K == APat::Kind::Var || P->K == APat::Kind::Layered)
      recordBinding(P->Var);
    for (APat *E : P->Elems)
      walkPat(E);
    if (P->Arg)
      walkPat(P->Arg);
    if (P->ExnTag)
      walkExp(P->ExnTag);
  }

  void walkExp(AExp *E) {
    if (!E)
      return;
    switch (E->K) {
    case AExp::Kind::Var: {
      const TypeScheme &S = E->Var->Scheme;
      if (S.BoundVars.empty())
        return;
      if (E->TypeArgs.empty())
        return; // monomorphic recursive occurrence: unconstraining
      if (E->Var->Exported) {
        // Handled by recordBinding, but occurrences through rebound
        // schemes are poisoned here for safety.
        for (Type *B : S.BoundVars)
          Poisoned.insert(B);
        return;
      }
      size_t N = std::min(S.BoundVars.size(), E->TypeArgs.size());
      for (size_t I = 0; I < N; ++I)
        Instances[S.BoundVars[I]].push_back(E->TypeArgs[I]);
      return;
    }
    case AExp::Kind::Path:
      // Slot accesses denote exported components; never narrow them.
      for (Type *B : E->PathScheme.BoundVars)
        Poisoned.insert(B);
      return;
    default:
      break;
    }
    walkExp(E->TagExp);
    walkExp(E->Fun);
    walkExp(E->Arg);
    walkExp(E->Scrut);
    walkExp(E->Body);
    for (AExp *X : E->Elems)
      walkExp(X);
    for (const ARule &R : E->Rules) {
      walkPat(R.P);
      walkExp(R.E);
    }
    for (ADec *D : E->Decs)
      walkDec(D);
  }

  TypeContext &Types;
};

bool isGround(Type *T) {
  T = TypeContext::resolve(T);
  switch (T->K) {
  case Type::Kind::Var:
    return false;
  case Type::Kind::Con:
    for (Type *A : T->Args)
      if (!isGround(A))
        return false;
    return true;
  case Type::Kind::Tuple:
    for (Type *E : T->Elems)
      if (!isGround(E))
        return false;
    return true;
  case Type::Kind::Arrow:
    return isGround(T->From) && isGround(T->To);
  }
  return false;
}

} // namespace

MtdStats smltc::runMtd(AProgram &Prog, TypeContext &Types, Arena &A) {
  MtdStats Stats;
  MtdAnalysis An(Types);
  An.walkProgram(Prog);

  // Fixpoint: grounding one binding's variable can make another binding's
  // instances ground.
  bool Changed = true;
  int Guard = 0;
  while (Changed && Guard++ < 32) {
    Changed = false;
    for (auto &[BoundVar, Insts] : An.Instances) {
      if (BoundVar->Link || An.Poisoned.count(BoundVar))
        continue;
      if (Insts.empty())
        continue;
      Type *First = TypeContext::resolve(Insts[0]);
      if (!isGround(First))
        continue;
      bool AllSame = true;
      for (size_t I = 1; I < Insts.size(); ++I) {
        Type *T = TypeContext::resolve(Insts[I]);
        if (!isGround(T) || !Types.sameType(First, T)) {
          AllSame = false;
          break;
        }
      }
      if (!AllSame)
        continue;
      // Least general scheme: this variable is always used at First.
      BoundVar->Link = First;
      ++Stats.VarsGrounded;
      Changed = true;
    }
  }

  // Rebuild schemes, dropping grounded variables.
  std::unordered_set<ValInfo *> Seen;
  for (ValInfo *V : An.PolyBindings) {
    if (!Seen.insert(V).second)
      continue;
    bool Narrowed = false;
    std::vector<Type *> Kept;
    for (Type *B : V->Scheme.BoundVars) {
      if (B->Link)
        Narrowed = true;
      else
        Kept.push_back(B);
    }
    if (!Narrowed)
      continue;
    V->Scheme.BoundVars = Span<Type *>::copy(A, Kept);
    ++Stats.BindingsNarrowed;
  }
  return Stats;
}
