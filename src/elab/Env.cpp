//===- elab/Env.cpp - Static environments ----------------------------------===//

#include "elab/Env.h"

using namespace smltc;

ValBinding Env::lookupVal(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Vals.find(S);
    if (F != It->Vals.end())
      return F->second;
  }
  return ValBinding();
}

TyCon *Env::lookupTycon(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Tycons.find(S);
    if (F != It->Tycons.end())
      return F->second;
  }
  return nullptr;
}

StrInfo *Env::lookupStr(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Strs.find(S);
    if (F != It->Strs.end())
      return F->second;
  }
  return nullptr;
}

std::shared_ptr<SigInfo> Env::lookupSig(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Sigs.find(S);
    if (F != It->Sigs.end())
      return F->second;
  }
  return nullptr;
}

FctInfo *Env::lookupFct(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Fcts.find(S);
    if (F != It->Fcts.end())
      return F->second;
  }
  return nullptr;
}
