//===- elab/Env.cpp - Static environments ----------------------------------===//

#include "elab/Env.h"

using namespace smltc;

ValBinding Env::lookupVal(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Vals.find(S);
    if (F != It->Vals.end())
      return F->second;
  }
  return Base ? Base->lookupVal(S) : ValBinding();
}

TyCon *Env::lookupTycon(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Tycons.find(S);
    if (F != It->Tycons.end())
      return F->second;
  }
  return Base ? Base->lookupTycon(S) : nullptr;
}

StrInfo *Env::lookupStr(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Strs.find(S);
    if (F != It->Strs.end())
      return F->second;
  }
  return Base ? Base->lookupStr(S) : nullptr;
}

std::shared_ptr<SigInfo> Env::lookupSig(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Sigs.find(S);
    if (F != It->Sigs.end())
      return F->second;
  }
  return Base ? Base->lookupSig(S) : nullptr;
}

FctInfo *Env::lookupFct(Symbol S) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Fcts.find(S);
    if (F != It->Fcts.end())
      return F->second;
  }
  return Base ? Base->lookupFct(S) : nullptr;
}

void Env::visit(EnvVisitor &V) const {
  for (const Scope &Sc : Scopes) {
    for (const auto &[S, B] : Sc.Vals)
      V.val(S, B);
    for (const auto &[S, T] : Sc.Tycons)
      V.tycon(S, T);
    for (const auto &[S, I] : Sc.Strs)
      V.str(S, I);
    for (const auto &[S, I] : Sc.Sigs)
      V.sig(S, *I);
    for (const auto &[S, F] : Sc.Fcts)
      V.fct(S, F);
  }
}
