//===- elab/ElabModule.cpp - Module-language elaboration -------------------===//
//
// Implements the paper's Section 3: structures, signatures, transparent
// signature matching, opaque abstraction, functors, and functor application,
// recording thinning functions and realizations for the Lambda Translator.
//
//===----------------------------------------------------------------------===//

#include "elab/Elaborator.h"
#include "elab/Internal.h"

#include <cassert>

using namespace smltc;

//===----------------------------------------------------------------------===//
// Signature elaboration ("most abstract" instantiation)
//===----------------------------------------------------------------------===//

void Elaborator::elabSpecs(Span<ast::Spec *> Specs, Env &SigEnv,
                           CompCollector &CC) {
  // SigEnv is the *current* E (already pushed); specs bind into it so later
  // specs can refer to earlier ones.
  (void)SigEnv;
  for (const ast::Spec *Sp : Specs) {
    switch (Sp->K) {
    case ast::Spec::Kind::Val: {
      TyVarMap TyVars;
      Type *T = elabTy(Sp->ValTy, &TyVars);
      std::vector<Type *> Bound;
      for (auto &[Name, V] : TyVars) {
        V->IsBound = true;
        Bound.push_back(V);
      }
      TypeScheme S{Span<Type *>::copy(A, Bound), T};
      CC.addValScheme(Sp->Name, S);
      break;
    }
    case ast::Spec::Kind::Type:
    case ast::Spec::Kind::EqType: {
      if (Sp->Manifest) {
        TyVarMap Formals;
        std::vector<Type *> FormalVars;
        for (Symbol S : Sp->TyVars) {
          Type *F = Types.freshVar(0);
          F->IsBound = true;
          Formals[S] = F;
          FormalVars.push_back(F);
        }
        Type *Body = elabTy(Sp->Manifest, &Formals);
        TyCon *TC = Types.makeAbbrev(Sp->Name,
                                     Span<Type *>::copy(A, FormalVars), Body);
        E->bindTycon(Sp->Name, TC);
        CC.addTycon(Sp->Name, TC);
      } else {
        bool Eq = Sp->K == ast::Spec::Kind::EqType;
        TyCon *TC = Types.makeFlexible(
            Sp->Name, static_cast<int>(Sp->TyVars.size()), Eq);
        E->bindTycon(Sp->Name, TC);
        CC.addTycon(Sp->Name, TC);
      }
      break;
    }
    case ast::Spec::Kind::Datatype: {
      ast::DatBind DB = Sp->DatB;
      elabDatBinds(Span<ast::DatBind>(A.copyArray(&DB, 1), 1), &CC);
      break;
    }
    case ast::Spec::Kind::Exception: {
      Type *Payload = Sp->ExnOfTy ? elabTy(Sp->ExnOfTy, nullptr) : nullptr;
      CC.addExnSpec(Sp->Name, Payload);
      break;
    }
    case ast::Spec::Kind::Structure: {
      StrStatic *Sub = elabSigStaticInEnv(Sp->StrSig, *E);
      CC.addStrSpec(Sp->Name, Sub);
      // Bind a placeholder StrInfo so later specs can say `val x : S.t`.
      StrInfo *SI = A.create<StrInfo>();
      SI->Name = Sp->Name;
      SI->Static = Sub;
      SI->Id = NextStrId++;
      E->bindStr(Sp->Name, SI);
      break;
    }
    }
  }
}

StrStatic *Elaborator::elabSigStaticInEnv(const ast::SigExp *S, Env &DefEnv) {
  if (S->K == ast::SigExp::Kind::Var) {
    std::shared_ptr<SigInfo> Info = E->lookupSig(S->Name);
    if (!Info) {
      // Also try the definition environment (for nested references).
      Info = DefEnv.lookupSig(S->Name);
    }
    if (!Info) {
      Diags.error(S->Loc, "unbound signature '" +
                              std::string(S->Name.str()) + "'");
      return A.create<StrStatic>();
    }
    return elabSigStaticInEnv(Info->Def, *Info->DefEnv);
  }
  std::shared_ptr<Env> Saved = E;
  E = std::make_shared<Env>(DefEnv);
  E->push();
  CompCollector CC;
  elabSpecs(S->Specs, *E, CC);
  E = Saved;
  return CC.finish(A);
}

StrStatic *Elaborator::elabSigStatic(const ast::SigExp *S) {
  return elabSigStaticInEnv(S, *E);
}

//===----------------------------------------------------------------------===//
// Realization
//===----------------------------------------------------------------------===//

Type *Elaborator::realizeType(
    Type *T, const std::unordered_map<TyCon *, TyCon *> &Real) {
  T = TypeContext::resolve(T);
  switch (T->K) {
  case Type::Kind::Var:
    return T;
  case Type::Kind::Con: {
    auto It = Real.find(T->Con);
    TyCon *NewCon = It == Real.end() ? T->Con : It->second;
    bool Changed = NewCon != T->Con;
    std::vector<Type *> Args;
    for (Type *Arg : T->Args) {
      Type *NA = realizeType(Arg, Real);
      Changed |= NA != TypeContext::resolve(Arg);
      Args.push_back(NA);
    }
    if (!Changed)
      return T;
    return Types.con(NewCon, std::move(Args));
  }
  case Type::Kind::Tuple: {
    std::vector<Type *> Elems;
    bool Changed = false;
    for (Type *El : T->Elems) {
      Type *NE = realizeType(El, Real);
      Changed |= NE != TypeContext::resolve(El);
      Elems.push_back(NE);
    }
    if (!Changed)
      return T;
    return Types.tuple(std::move(Elems));
  }
  case Type::Kind::Arrow: {
    Type *F = realizeType(T->From, Real);
    Type *R = realizeType(T->To, Real);
    if (F == TypeContext::resolve(T->From) &&
        R == TypeContext::resolve(T->To))
      return T;
    return Types.arrow(F, R);
  }
  }
  return T;
}

TypeScheme Elaborator::realizeScheme(
    const TypeScheme &S, const std::unordered_map<TyCon *, TyCon *> &Real) {
  TypeScheme R;
  R.BoundVars = S.BoundVars;
  R.Body = realizeType(S.Body, Real);
  return R;
}

StrStatic *Elaborator::realizeStatic(
    const StrStatic *S, const std::unordered_map<TyCon *, TyCon *> &Real) {
  StrStatic *R = A.create<StrStatic>();
  std::vector<StrComp> Comps;
  for (const StrComp &C : S->Comps) {
    StrComp NC = C;
    switch (C.K) {
    case StrComp::Kind::Val:
      NC.Scheme = realizeScheme(C.Scheme, Real);
      break;
    case StrComp::Kind::Exn:
      if (C.ExnPayload)
        NC.ExnPayload = realizeType(C.ExnPayload, Real);
      break;
    case StrComp::Kind::Str:
      NC.Str = realizeStatic(C.Str, Real);
      break;
    }
    Comps.push_back(NC);
  }
  R->Comps = Span<StrComp>::copy(A, Comps);

  std::vector<StrTyComp> TyComps;
  for (const StrTyComp &C : S->TyComps) {
    StrTyComp NC = C;
    auto It = Real.find(C.Tycon);
    if (It != Real.end())
      NC.Tycon = It->second;
    TyComps.push_back(NC);
  }
  R->TyComps = Span<StrTyComp>::copy(A, TyComps);

  std::vector<StrConComp> ConComps;
  for (const StrConComp &C : S->ConComps) {
    StrConComp NC = C;
    auto It = Real.find(C.Con->Owner);
    if (It != Real.end() && It->second->K == TyCon::Kind::Datatype) {
      // Map to the actual datatype's constructor of the same name.
      for (DataCon *DC : It->second->Cons)
        if (DC->Name == C.Con->Name)
          NC.Con = DC;
    }
    ConComps.push_back(NC);
  }
  R->ConComps = Span<StrConComp>::copy(A, ConComps);
  return R;
}

Thinning *Elaborator::realizeThinningDst(
    const Thinning *T, const std::unordered_map<TyCon *, TyCon *> &Real) {
  std::vector<ThinComp> Comps;
  for (const ThinComp &C : T->Comps) {
    ThinComp NC = C;
    if (C.DstScheme.Body)
      NC.DstScheme = realizeScheme(C.DstScheme, Real);
    if (C.Sub)
      NC.Sub = realizeThinningDst(C.Sub, Real);
    Comps.push_back(NC);
  }
  Thinning *R = A.create<Thinning>();
  R->Comps = Span<ThinComp>::copy(A, Comps);
  return R;
}

//===----------------------------------------------------------------------===//
// Signature matching (paper Section 3, Figure 5)
//===----------------------------------------------------------------------===//

Thinning *Elaborator::matchAgainstStatic(
    const StrStatic *Source, const StrStatic *Target,
    std::unordered_map<TyCon *, TyCon *> &Real, SourceLoc Loc) {
  // Phase 1: realize the target's type components from the source.
  for (const StrTyComp &TC : Target->TyComps) {
    const StrTyComp *Src = Source->findTy(TC.Name);
    if (!Src) {
      Diags.error(Loc, "signature matching: missing type component '" +
                           std::string(TC.Name.str()) + "'");
      continue;
    }
    TyCon *TT = TC.Tycon;
    TyCon *ST = Src->Tycon;
    if (TT->Arity != ST->Arity) {
      Diags.error(Loc, "signature matching: arity mismatch for type '" +
                           std::string(TC.Name.str()) + "'");
      continue;
    }
    switch (TT->K) {
    case TyCon::Kind::Flexible:
      if (TT->AdmitsEq && !ST->AdmitsEq)
        Diags.error(Loc, "signature matching: type '" +
                             std::string(TC.Name.str()) +
                             "' must admit equality");
      Real[TT] = ST;
      break;
    case TyCon::Kind::Datatype: {
      if (ST->K != TyCon::Kind::Datatype) {
        Diags.error(Loc, "signature matching: '" +
                             std::string(TC.Name.str()) +
                             "' must be a datatype");
        break;
      }
      if (TT->Cons.size() != ST->Cons.size()) {
        Diags.error(Loc, "signature matching: datatype '" +
                             std::string(TC.Name.str()) +
                             "' has a different constructor list");
        break;
      }
      for (size_t I = 0; I < TT->Cons.size(); ++I) {
        DataCon *DT = TT->Cons[I];
        DataCon *DS = ST->Cons[I];
        if (DT->Name != DS->Name ||
            (DT->Payload == nullptr) != (DS->Payload == nullptr) ||
            DT->Rep.K != DS->Rep.K || DT->Rep.Tag != DS->Rep.Tag) {
          Diags.error(Loc,
                      "signature matching: constructor '" +
                          std::string(DT->Name.str()) +
                          "' of datatype '" + std::string(TC.Name.str()) +
                          "' does not match (name/arity/representation)");
        }
      }
      Real[TT] = ST;
      break;
    }
    case TyCon::Kind::Abbrev:
      // Manifest spec: accept if the source is reachable; a full
      // equivalence check would compare expansions.
      break;
    case TyCon::Kind::Prim:
      break;
    }
  }

  // Phase 2: value, exception, and substructure components.
  std::vector<ThinComp> Comps;
  for (const StrComp &C : Target->Comps) {
    const StrComp *Src = Source->findComp(C.Name);
    if (!Src || Src->K != C.K) {
      Diags.error(Loc, "signature matching: missing component '" +
                           std::string(C.Name.str()) + "'");
      continue;
    }
    ThinComp TC;
    TC.K = C.K;
    TC.SrcSlot = Src->Slot;
    switch (C.K) {
    case StrComp::Kind::Val: {
      // Instance check: the source scheme must generalize the (realized)
      // spec type. The spec's bound variables act as skolems.
      Type *SpecBody = realizeType(C.Scheme.Body, Real);
      std::vector<Type *> Inst;
      Type *SrcInst = Types.instantiate(Src->Scheme, Depth + 1, Inst);
      UnifyResult R = unify(Types, SrcInst, SpecBody);
      if (!R.Ok)
        Diags.error(Loc, "signature matching: value '" +
                             std::string(C.Name.str()) +
                             "' does not match its specification: " +
                             R.Message);
      TC.SrcScheme = Src->Scheme;
      TC.DstScheme = C.Scheme;
      break;
    }
    case StrComp::Kind::Exn: {
      Type *SpecPayload =
          C.ExnPayload ? realizeType(C.ExnPayload, Real) : nullptr;
      bool Ok = (SpecPayload == nullptr) == (Src->ExnPayload == nullptr);
      if (Ok && SpecPayload)
        Ok = Types.sameType(SpecPayload, Src->ExnPayload);
      if (!Ok)
        Diags.error(Loc, "signature matching: exception '" +
                             std::string(C.Name.str()) +
                             "' does not match its specification");
      TC.SrcScheme = TypeScheme{Span<Type *>(), Types.ExnType};
      TC.DstScheme = TC.SrcScheme;
      break;
    }
    case StrComp::Kind::Str: {
      TC.Sub = matchAgainstStatic(Src->Str, C.Str, Real, Loc);
      break;
    }
    }
    Comps.push_back(TC);
  }

  // Constructors specified via datatype specs must exist in the source.
  for (const StrConComp &C : Target->ConComps) {
    if (!Source->findCon(C.Name))
      Diags.error(Loc, "signature matching: missing constructor '" +
                           std::string(C.Name.str()) + "'");
  }

  Thinning *T = A.create<Thinning>();
  T->Comps = Span<ThinComp>::copy(A, Comps);
  return T;
}

void Elaborator::demoteHidden(const StrStatic *Source, const Thinning *Thin) {
  // Mark everything hidden, then re-export what the thinning keeps. Used
  // by minimum typing derivations (paper Section 3.1: "variables hidden by
  // signature matching").
  for (const StrComp &C : Source->Comps)
    if (C.K == StrComp::Kind::Val && C.Val)
      C.Val->Exported = false;
  for (const ThinComp &C : Thin->Comps) {
    if (C.K == StrComp::Kind::Val) {
      for (const StrComp &SC : Source->Comps)
        if (SC.Slot == C.SrcSlot && SC.Val)
          SC.Val->Exported = true;
    } else if (C.K == StrComp::Kind::Str && C.Sub) {
      for (const StrComp &SC : Source->Comps)
        if (SC.Slot == C.SrcSlot && SC.K == StrComp::Kind::Str)
          demoteHidden(SC.Str, C.Sub);
    }
  }
}

//===----------------------------------------------------------------------===//
// Structure expressions and declarations
//===----------------------------------------------------------------------===//

AStrExp *Elaborator::elabStrExp(const ast::StrExp *S) {
  AStrExp *X = A.create<AStrExp>();
  X->Loc = S->Loc;
  switch (S->K) {
  case ast::StrExp::Kind::Struct: {
    X->K = AStrExp::Kind::Struct;
    E->push();
    CompCollector CC;
    std::vector<ADec *> Decs;
    for (const ast::Dec *D : S->Decs)
      elabDec(D, Decs, &CC);
    E->pop();
    X->Decs = Span<ADec *>::copy(A, Decs);
    X->Slots = Span<SlotRef>::copy(A, CC.Slots);
    X->Static = CC.finish(A);
    return X;
  }
  case ast::StrExp::Kind::Var: {
    X->K = AStrExp::Kind::Var;
    StrInfo *Root = E->lookupStr(S->Name.Parts[0]);
    if (!Root) {
      Diags.error(S->Loc, "unbound structure '" +
                              std::string(S->Name.Parts[0].str()) + "'");
      X->Static = A.create<StrStatic>();
      return X;
    }
    const StrStatic *Cur = Root->Static;
    std::vector<int> Slots;
    for (size_t I = 1; I < S->Name.Parts.size(); ++I) {
      const StrComp *C = Cur->findComp(S->Name.Parts[I]);
      if (!C || C->K != StrComp::Kind::Str) {
        Diags.error(S->Loc, "unbound substructure '" +
                                std::string(S->Name.Parts[I].str()) + "'");
        X->Static = A.create<StrStatic>();
        return X;
      }
      Slots.push_back(C->Slot);
      Cur = C->Str;
    }
    X->Root = Root;
    X->Path = Span<int>::copy(A, Slots);
    X->Static = const_cast<StrStatic *>(Cur);
    return X;
  }
  case ast::StrExp::Kind::App: {
    X->K = AStrExp::Kind::FctApp;
    FctInfo *F = E->lookupFct(S->FctName);
    if (!F) {
      Diags.error(S->Loc, "unbound functor '" +
                              std::string(S->FctName.str()) + "'");
      X->Static = A.create<StrStatic>();
      return X;
    }
    AStrExp *Arg = elabStrExp(S->Arg);
    std::unordered_map<TyCon *, TyCon *> Real;
    Thinning *T =
        matchAgainstStatic(Arg->Static, F->ParamStatic, Real, S->Loc);
    X->Fct = F;
    X->Arg = Arg;
    X->ArgThin = T;
    X->ArgSigStatic = F->ParamStatic;
    X->AbstractResult = F->BodyStatic;
    X->Static = realizeStatic(F->BodyStatic, Real);
    return X;
  }
  }
  X->K = AStrExp::Kind::Struct;
  X->Static = A.create<StrStatic>();
  return X;
}

void Elaborator::elabStructureDec(const ast::Dec *D, std::vector<ADec *> &Out,
                                  CompCollector *CC) {
  AStrExp *Body = elabStrExp(D->StrBody);
  AStrExp *Final = Body;
  if (D->StrConstraint != ast::SigConstraintKind::None) {
    StrStatic *SigStd = elabSigStatic(D->StrSig);
    std::unordered_map<TyCon *, TyCon *> Real;
    Thinning *T = matchAgainstStatic(Body->Static, SigStd, Real, D->Loc);
    StrStatic *ResultStatic;
    Thinning *Used;
    if (D->StrConstraint == ast::SigConstraintKind::Opaque) {
      // Abstraction: the result keeps the abstract types (paper Figure 5,
      // "abstraction matching is opaque").
      ResultStatic = SigStd;
      Used = T;
    } else {
      // Transparent matching: the result sees the realized types.
      ResultStatic = realizeStatic(SigStd, Real);
      Used = realizeThinningDst(T, Real);
    }
    if (D->StrBody->K == ast::StrExp::Kind::Struct)
      demoteHidden(Body->Static, T);
    AStrExp *Thinned = A.create<AStrExp>();
    Thinned->K = AStrExp::Kind::Thinned;
    Thinned->Loc = D->Loc;
    Thinned->Inner = Body;
    Thinned->Thin = Used;
    Thinned->Static = ResultStatic;
    Final = Thinned;
  }
  StrInfo *SI = A.create<StrInfo>();
  SI->Name = D->StrName;
  SI->Static = Final->Static;
  SI->Id = NextStrId++;
  E->bindStr(D->StrName, SI);
  if (CC)
    CC->addStr(D->StrName, SI);
  ADec *AD = A.create<ADec>();
  AD->K = ADec::Kind::Structure;
  AD->Loc = D->Loc;
  AD->Str = SI;
  AD->StrExp = Final;
  Out.push_back(AD);
}

void Elaborator::elabFunctorDec(const ast::Dec *D, std::vector<ADec *> &Out,
                                CompCollector *CC) {
  (void)CC; // functors are not structure components in this subset
  StrStatic *ParamStatic = elabSigStatic(D->FctArgSig);
  StrInfo *Param = A.create<StrInfo>();
  Param->Name = D->FctArgName;
  Param->Static = ParamStatic;
  Param->Id = NextStrId++;

  E->push();
  E->bindStr(D->FctArgName, Param);
  AStrExp *Body = elabStrExp(D->FctBody);
  AStrExp *Final = Body;
  if (D->FctConstraint != ast::SigConstraintKind::None) {
    StrStatic *SigStd = elabSigStatic(D->FctResultSig);
    std::unordered_map<TyCon *, TyCon *> Real;
    Thinning *T = matchAgainstStatic(Body->Static, SigStd, Real, D->Loc);
    StrStatic *ResultStatic;
    Thinning *Used;
    if (D->FctConstraint == ast::SigConstraintKind::Opaque) {
      ResultStatic = SigStd;
      Used = T;
    } else {
      ResultStatic = realizeStatic(SigStd, Real);
      Used = realizeThinningDst(T, Real);
    }
    if (D->FctBody->K == ast::StrExp::Kind::Struct)
      demoteHidden(Body->Static, T);
    AStrExp *Thinned = A.create<AStrExp>();
    Thinned->K = AStrExp::Kind::Thinned;
    Thinned->Loc = D->Loc;
    Thinned->Inner = Body;
    Thinned->Thin = Used;
    Thinned->Static = ResultStatic;
    Final = Thinned;
  }
  E->pop();

  FctInfo *F = A.create<FctInfo>();
  F->Name = D->FctName;
  F->Id = NextFctId++;
  F->Param = Param;
  F->Body = Final;
  F->ParamStatic = ParamStatic;
  F->BodyStatic = Final->Static;
  E->bindFct(D->FctName, F);

  ADec *AD = A.create<ADec>();
  AD->K = ADec::Kind::Functor;
  AD->Loc = D->Loc;
  AD->Fct = F;
  Out.push_back(AD);
}
