//===- elab/Elaborator.cpp - Core-language elaboration ---------------------===//

#include "elab/Elaborator.h"

#include "elab/Internal.h"

#include <cassert>

using namespace smltc;

Elaborator::Elaborator(Arena &A, TypeContext &Types, StringInterner &Interner,
                       DiagnosticEngine &Diags)
    : A(A), Types(Types), Interner(Interner), Diags(Diags),
      E(std::make_shared<Env>()) {
  SymMain = Interner.intern("main");
  setupBuiltins();
}

Elaborator::Elaborator(Arena &A, TypeContext &Types, StringInterner &Interner,
                       DiagnosticEngine &Diags, const ElabSeed &Seed)
    : A(A), Types(Types), Interner(Interner), Diags(Diags),
      E(std::make_shared<Env>()) {
  SymMain = Interner.intern("main");
  E->setBase(Seed.BaseEnv);
  MatchExn = Seed.Match;
  BindExn = Seed.Bind;
  DivExn = Seed.Div;
  OverflowExn = Seed.Overflow;
  SubscriptExn = Seed.Subscript;
  SizeExn = Seed.Size;
  ChrExn = Seed.Chr;
  NextValId = Seed.NextValId;
  NextExnId = Seed.NextExnId;
  NextStrId = Seed.NextStrId;
  NextFctId = Seed.NextFctId;
}

ElabSeed Elaborator::exportSeed() const {
  ElabSeed S;
  S.BaseEnv = E.get();
  S.Match = MatchExn;
  S.Bind = BindExn;
  S.Div = DivExn;
  S.Overflow = OverflowExn;
  S.Subscript = SubscriptExn;
  S.Size = SizeExn;
  S.Chr = ChrExn;
  S.NextValId = NextValId;
  S.NextExnId = NextExnId;
  S.NextStrId = NextStrId;
  S.NextFctId = NextFctId;
  return S;
}

ValInfo *Elaborator::makeValInfo(Symbol Name, Type *Ty) {
  ValInfo *V = A.create<ValInfo>();
  V->Name = Name;
  V->Scheme = TypeScheme{Span<Type *>(), Ty};
  V->Id = NextValId++;
  return V;
}

ExnInfo *Elaborator::makeExn(Symbol Name, Type *Payload, bool Builtin) {
  ExnInfo *X = A.create<ExnInfo>();
  X->Name = Name;
  X->Payload = Payload;
  X->Id = NextExnId++;
  X->Builtin = Builtin;
  return X;
}

void Elaborator::unifyOrDiag(Type *T1, Type *T2, SourceLoc Loc,
                             const char *Ctx) {
  UnifyResult R = unify(Types, T1, T2);
  if (!R.Ok)
    Diags.error(Loc, std::string(Ctx) + ": " + R.Message);
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

void Elaborator::setupBuiltins() {
  Env &Env = *E;
  Env.bindTycon(Interner.intern("int"), Types.IntTycon);
  Env.bindTycon(Interner.intern("real"), Types.RealTycon);
  Env.bindTycon(Interner.intern("string"), Types.StringTycon);
  Env.bindTycon(Interner.intern("unit"), Types.UnitTycon);
  Env.bindTycon(Interner.intern("bool"), Types.BoolTycon);
  Env.bindTycon(Interner.intern("list"), Types.ListTycon);
  Env.bindTycon(Interner.intern("ref"), Types.RefTycon);
  Env.bindTycon(Interner.intern("array"), Types.ArrayTycon);
  Env.bindTycon(Interner.intern("exn"), Types.ExnTycon);
  Env.bindTycon(Interner.intern("cont"), Types.ContTycon);

  Env.bindCon(Interner.intern("true"), Types.TrueCon);
  Env.bindCon(Interner.intern("false"), Types.FalseCon);
  Env.bindCon(Interner.intern("nil"), Types.NilCon);
  Env.bindCon(Interner.intern("::"), Types.ConsCon);
  Env.bindCon(Interner.intern("ref"), Types.RefCon);

  // Helper: a 1-bound-var scheme. The bound var is created flagged IsBound.
  auto BV = [&](bool IsEq = false) {
    Type *V = Types.freshVar(0, IsEq);
    V->IsBound = true;
    return V;
  };
  auto Scheme0 = [&](Type *Body) {
    return TypeScheme{Span<Type *>(), Body};
  };
  auto Scheme1 = [&](Type *V, Type *Body) {
    Type **Mem = A.copyArray(&V, 1);
    return TypeScheme{Span<Type *>(Mem, 1), Body};
  };
  auto Scheme2 = [&](Type *V1, Type *V2, Type *Body) {
    Type *Vs[2] = {V1, V2};
    return TypeScheme{Span<Type *>(A.copyArray(Vs, 2), 2), Body};
  };
  auto Bind = [&](const char *Name, PrimId Id, TypeScheme S) {
    Env.bindPrim(Interner.intern(Name), PrimDesc{Id, S, OverloadClass::None});
  };
  auto BindOv = [&](const char *Name, PrimId Placeholder, OverloadClass C) {
    Env.bindPrim(Interner.intern(Name),
                 PrimDesc{Placeholder, TypeScheme(), C});
  };

  Type *I = Types.IntType, *R = Types.RealType, *S = Types.StringType,
       *U = Types.UnitType, *B = Types.BoolType;

  BindOv("+", PrimId::OvAdd, OverloadClass::Arith2);
  BindOv("-", PrimId::OvSub, OverloadClass::Arith2);
  BindOv("*", PrimId::OvMul, OverloadClass::Arith2);
  BindOv("<", PrimId::OvLt, OverloadClass::Cmp2);
  BindOv("<=", PrimId::OvLe, OverloadClass::Cmp2);
  BindOv(">", PrimId::OvGt, OverloadClass::Cmp2);
  BindOv(">=", PrimId::OvGe, OverloadClass::Cmp2);
  BindOv("~", PrimId::OvNeg, OverloadClass::Neg);
  BindOv("abs", PrimId::OvAbs, OverloadClass::Neg);

  Bind("/", PrimId::FDiv, Scheme0(Types.arrow(Types.tuple({R, R}), R)));
  Bind("div", PrimId::IDiv, Scheme0(Types.arrow(Types.tuple({I, I}), I)));
  Bind("mod", PrimId::IMod, Scheme0(Types.arrow(Types.tuple({I, I}), I)));

  {
    Type *V = BV(/*IsEq=*/true);
    Bind("=", PrimId::GenericEq,
         Scheme1(V, Types.arrow(Types.tuple({V, V}), B)));
  }
  {
    Type *V = BV(/*IsEq=*/true);
    Bind("<>", PrimId::GenericNe,
         Scheme1(V, Types.arrow(Types.tuple({V, V}), B)));
  }
  {
    Type *V = BV();
    Bind(":=", PrimId::Assign,
         Scheme1(V, Types.arrow(Types.tuple({Types.refOf(V), V}), U)));
  }
  {
    Type *V = BV();
    Bind("!", PrimId::Deref, Scheme1(V, Types.arrow(Types.refOf(V), V)));
  }

  Bind("print", PrimId::Print, Scheme0(Types.arrow(S, U)));
  Bind("size", PrimId::StrSize, Scheme0(Types.arrow(S, I)));
  Bind("strsub", PrimId::StrSub,
       Scheme0(Types.arrow(Types.tuple({S, I}), I)));
  Bind("^", PrimId::StrConcat,
       Scheme0(Types.arrow(Types.tuple({S, S}), S)));
  Bind("substring", PrimId::Substring,
       Scheme0(Types.arrow(Types.tuple({S, I, I}), S)));
  Bind("strcmp", PrimId::StrCmp,
       Scheme0(Types.arrow(Types.tuple({S, S}), I)));
  Bind("chr", PrimId::Chr, Scheme0(Types.arrow(I, S)));
  Bind("ord", PrimId::Ord, Scheme0(Types.arrow(S, I)));
  Bind("itos", PrimId::IntToString, Scheme0(Types.arrow(I, S)));
  Bind("rtos", PrimId::RealToString, Scheme0(Types.arrow(R, S)));
  Bind("real", PrimId::RealFromInt, Scheme0(Types.arrow(I, R)));
  Bind("floor", PrimId::Floor, Scheme0(Types.arrow(R, I)));
  Bind("sqrt", PrimId::Sqrt, Scheme0(Types.arrow(R, R)));
  Bind("sin", PrimId::Sin, Scheme0(Types.arrow(R, R)));
  Bind("cos", PrimId::Cos, Scheme0(Types.arrow(R, R)));
  Bind("atan", PrimId::Atan, Scheme0(Types.arrow(R, R)));
  Bind("exp", PrimId::Exp, Scheme0(Types.arrow(R, R)));
  Bind("ln", PrimId::Ln, Scheme0(Types.arrow(R, R)));

  {
    Type *V = BV();
    Bind("array", PrimId::ArrayMake,
         Scheme1(V, Types.arrow(Types.tuple({I, V}), Types.arrayOf(V))));
  }
  {
    Type *V = BV();
    Bind("asub", PrimId::ArraySub,
         Scheme1(V, Types.arrow(Types.tuple({Types.arrayOf(V), I}), V)));
  }
  {
    Type *V = BV();
    Bind("aupdate", PrimId::ArrayUpdate,
         Scheme1(V,
                 Types.arrow(Types.tuple({Types.arrayOf(V), I, V}), U)));
  }
  {
    Type *V = BV();
    Bind("alength", PrimId::ArrayLength,
         Scheme1(V, Types.arrow(Types.arrayOf(V), I)));
  }
  {
    Type *V = BV();
    Bind("callcc", PrimId::Callcc,
         Scheme1(V, Types.arrow(Types.arrow(Types.contOf(V), V), V)));
  }
  {
    Type *V1 = BV(), *V2 = BV();
    Bind("throw", PrimId::Throw,
         Scheme2(V1, V2,
                 Types.arrow(Types.contOf(V1), Types.arrow(V1, V2))));
  }

  // Builtin exceptions.
  MatchExn = makeExn(Interner.intern("Match"), nullptr, true);
  BindExn = makeExn(Interner.intern("Bind"), nullptr, true);
  DivExn = makeExn(Interner.intern("Div"), nullptr, true);
  OverflowExn = makeExn(Interner.intern("Overflow"), nullptr, true);
  SubscriptExn = makeExn(Interner.intern("Subscript"), nullptr, true);
  SizeExn = makeExn(Interner.intern("Size"), nullptr, true);
  ChrExn = makeExn(Interner.intern("Chr"), nullptr, true);
  for (ExnInfo *X :
       {MatchExn, BindExn, DivExn, OverflowExn, SubscriptExn, SizeExn,
        ChrExn})
    E->bindExn(X->Name, X);
}

//===----------------------------------------------------------------------===//
// Identifier resolution
//===----------------------------------------------------------------------===//

ResolvedVal Elaborator::resolveLongVal(const ast::LongId &Id,
                                       SourceLoc Loc) {
  ResolvedVal R;
  if (!Id.isQualified()) {
    ValBinding B = E->lookupVal(Id.name());
    if (!B.isValid())
      return R;
    switch (B.K) {
    case ValBinding::Kind::Val:
      R.K = ResolvedVal::Kind::LocalVal;
      break;
    case ValBinding::Kind::Con:
      R.K = ResolvedVal::Kind::LocalCon;
      R.Con = B.Con;
      break;
    case ValBinding::Kind::Exn:
      R.K = ResolvedVal::Kind::LocalExn;
      R.Exn = B.Exn;
      R.ExnPayload = B.Exn->Payload;
      break;
    case ValBinding::Kind::Prim:
      R.K = ResolvedVal::Kind::LocalPrim;
      break;
    case ValBinding::Kind::None:
      break;
    }
    R.Local = B;
    return R;
  }

  // Qualified: walk the structure path.
  StrInfo *Root = E->lookupStr(Id.Parts[0]);
  if (!Root) {
    Diags.error(Loc, "unbound structure '" +
                         std::string(Id.Parts[0].str()) + "'");
    return R;
  }
  const StrStatic *Cur = Root->Static;
  std::vector<int> Slots;
  for (size_t I = 1; I + 1 < Id.Parts.size(); ++I) {
    const StrComp *C = Cur->findComp(Id.Parts[I]);
    if (!C || C->K != StrComp::Kind::Str) {
      Diags.error(Loc, "unbound substructure '" +
                           std::string(Id.Parts[I].str()) + "'");
      return R;
    }
    Slots.push_back(C->Slot);
    Cur = C->Str;
  }
  Symbol Last = Id.name();
  if (const StrConComp *CC = Cur->findCon(Last)) {
    R.K = ResolvedVal::Kind::LocalCon; // constructors are static
    R.Con = CC->Con;
    return R;
  }
  const StrComp *C = Cur->findComp(Last);
  if (!C) {
    Diags.error(Loc, "unbound component '" + std::string(Last.str()) + "'");
    return R;
  }
  Slots.push_back(C->Slot);
  if (C->K == StrComp::Kind::Val) {
    R.K = ResolvedVal::Kind::PathVal;
    R.Root = Root;
    R.Slots = std::move(Slots);
    R.PathScheme = C->Scheme;
    return R;
  }
  if (C->K == StrComp::Kind::Exn) {
    R.K = ResolvedVal::Kind::PathExn;
    R.Root = Root;
    R.Slots = std::move(Slots);
    R.ExnPayload = C->ExnPayload;
    return R;
  }
  Diags.error(Loc, "'" + std::string(Last.str()) +
                       "' is a structure, not a value");
  return R;
}

TyCon *Elaborator::resolveLongTycon(const ast::LongId &Id, SourceLoc Loc) {
  if (!Id.isQualified()) {
    TyCon *T = E->lookupTycon(Id.name());
    if (!T)
      Diags.error(Loc, "unbound type constructor '" +
                           std::string(Id.name().str()) + "'");
    return T;
  }
  StrInfo *Root = E->lookupStr(Id.Parts[0]);
  if (!Root) {
    Diags.error(Loc, "unbound structure '" +
                         std::string(Id.Parts[0].str()) + "'");
    return nullptr;
  }
  const StrStatic *Cur = Root->Static;
  for (size_t I = 1; I + 1 < Id.Parts.size(); ++I) {
    const StrComp *C = Cur->findComp(Id.Parts[I]);
    if (!C || C->K != StrComp::Kind::Str) {
      Diags.error(Loc, "unbound substructure '" +
                           std::string(Id.Parts[I].str()) + "'");
      return nullptr;
    }
    Cur = C->Str;
  }
  const StrTyComp *TC = Cur->findTy(Id.name());
  if (!TC) {
    Diags.error(Loc, "unbound type component '" +
                         std::string(Id.name().str()) + "'");
    return nullptr;
  }
  return TC->Tycon;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Type *Elaborator::elabTy(const ast::Ty *T, TyVarMap *TyVars) {
  switch (T->K) {
  case ast::Ty::Kind::Var: {
    if (!TyVars) {
      Diags.error(T->Loc, "type variable not allowed here");
      return Types.freshVar(Depth);
    }
    auto It = TyVars->find(T->VarName);
    if (It != TyVars->end())
      return It->second;
    Type *V = Types.freshVar(Depth, T->IsEqVar);
    (*TyVars)[T->VarName] = V;
    return V;
  }
  case ast::Ty::Kind::Con: {
    TyCon *TC = resolveLongTycon(T->ConName, T->Loc);
    if (!TC)
      return Types.freshVar(Depth);
    if (static_cast<int>(T->Args.size()) != TC->Arity) {
      Diags.error(T->Loc, "type constructor '" +
                              std::string(TC->Name.str()) + "' expects " +
                              std::to_string(TC->Arity) + " argument(s)");
      return Types.freshVar(Depth);
    }
    std::vector<Type *> Args;
    for (const ast::Ty *Arg : T->Args)
      Args.push_back(elabTy(Arg, TyVars));
    return Types.con(TC, std::move(Args));
  }
  case ast::Ty::Kind::Tuple: {
    std::vector<Type *> Elems;
    for (const ast::Ty *El : T->Elems)
      Elems.push_back(elabTy(El, TyVars));
    return Types.tuple(std::move(Elems));
  }
  case ast::Ty::Kind::Arrow:
    return Types.arrow(elabTy(T->From, TyVars), elabTy(T->To, TyVars));
  }
  return Types.freshVar(Depth);
}

//===----------------------------------------------------------------------===//
// Occurrences
//===----------------------------------------------------------------------===//

AExp *Elaborator::varOccurrence(ValInfo *V, SourceLoc Loc) {
  AExp *X = A.create<AExp>();
  X->K = AExp::Kind::Var;
  X->Loc = Loc;
  X->Var = V;
  if (V->Scheme.isMonomorphic()) {
    X->Ty = V->Scheme.Body;
    return X;
  }
  std::vector<Type *> InstVars;
  X->Ty = Types.instantiate(V->Scheme, Depth, InstVars);
  X->TypeArgs = Span<Type *>::copy(A, InstVars);
  return X;
}

AExp *Elaborator::pathOccurrence(StrInfo *Root, const std::vector<int> &Slots,
                                 const TypeScheme &S, SourceLoc Loc) {
  AExp *X = A.create<AExp>();
  X->K = AExp::Kind::Path;
  X->Loc = Loc;
  X->Root = Root;
  X->Slots = Span<int>::copy(A, Slots);
  X->PathScheme = S;
  std::vector<Type *> InstVars;
  X->Ty = Types.instantiate(S, Depth, InstVars);
  X->TypeArgs = Span<Type *>::copy(A, InstVars);
  return X;
}

AExp *Elaborator::conOccurrence(DataCon *C, SourceLoc Loc) {
  AExp *X = A.create<AExp>();
  X->K = AExp::Kind::Con;
  X->Loc = Loc;
  X->Con = C;
  TyCon *Owner = C->Owner;
  std::vector<Type *> Fresh;
  for (size_t I = 0; I < Owner->Formals.size(); ++I)
    Fresh.push_back(Types.freshVar(Depth));
  Span<Type *> FreshSpan = Span<Type *>::copy(A, Fresh);
  X->TypeArgs = FreshSpan;
  Type *DT = Types.con(Owner, FreshSpan);
  if (C->Payload) {
    Type *Payload = Types.substitute(C->Payload, Owner->Formals, FreshSpan);
    X->Ty = Types.arrow(Payload, DT);
  } else {
    X->Ty = DT;
  }
  return X;
}

AExp *Elaborator::primOccurrence(const PrimDesc &P, SourceLoc Loc) {
  AExp *X = A.create<AExp>();
  X->K = AExp::Kind::Prim;
  X->Loc = Loc;
  X->Prim = P.Id;
  Type *B = Types.BoolType;
  switch (P.Overload) {
  case OverloadClass::None: {
    std::vector<Type *> InstVars;
    X->Ty = Types.instantiate(P.Scheme, Depth, InstVars);
    X->TypeArgs = Span<Type *>::copy(A, InstVars);
    return X;
  }
  case OverloadClass::Arith2: {
    Type *V = Types.freshOverloadVar(Depth);
    X->Ty = Types.arrow(Types.tuple({V, V}), V);
    Type **Mem = A.copyArray(&V, 1);
    X->TypeArgs = Span<Type *>(Mem, 1);
    PendingOverloads.push_back(X);
    return X;
  }
  case OverloadClass::Cmp2: {
    Type *V = Types.freshOverloadVar(Depth);
    X->Ty = Types.arrow(Types.tuple({V, V}), B);
    Type **Mem = A.copyArray(&V, 1);
    X->TypeArgs = Span<Type *>(Mem, 1);
    PendingOverloads.push_back(X);
    return X;
  }
  case OverloadClass::Neg: {
    Type *V = Types.freshOverloadVar(Depth);
    X->Ty = Types.arrow(V, V);
    Type **Mem = A.copyArray(&V, 1);
    X->TypeArgs = Span<Type *>(Mem, 1);
    PendingOverloads.push_back(X);
    return X;
  }
  }
  return X;
}

AExp *Elaborator::exnConExp(AExp *TagExp, Type *Payload, SourceLoc Loc) {
  AExp *X = A.create<AExp>();
  X->K = AExp::Kind::ExnCon;
  X->Loc = Loc;
  X->TagExp = TagExp;
  X->ExnPayload = Payload;
  X->Ty = Payload ? Types.arrow(Payload, Types.ExnType) : Types.ExnType;
  return X;
}

void Elaborator::resolveOverloads(size_t From) {
  for (size_t I = From; I < PendingOverloads.size(); ++I) {
    AExp *X = PendingOverloads[I];
    assert(X->K == AExp::Kind::Prim && !X->TypeArgs.empty());
    Type *V = Types.headNormalize(X->TypeArgs[0]);
    bool IsReal =
        V->K == Type::Kind::Con && V->Con == Types.RealTycon;
    if (V->K == Type::Kind::Var) {
      // Default to int.
      unifyOrDiag(V, Types.IntType, X->Loc, "overload defaulting");
      IsReal = false;
    } else if (!IsReal &&
               !(V->K == Type::Kind::Con && V->Con == Types.IntTycon)) {
      Diags.error(X->Loc, "overloaded operator used at type " +
                              Types.toString(V));
    }
    switch (X->Prim) {
    case PrimId::OvAdd: X->Prim = IsReal ? PrimId::FAdd : PrimId::IAdd; break;
    case PrimId::OvSub: X->Prim = IsReal ? PrimId::FSub : PrimId::ISub; break;
    case PrimId::OvMul: X->Prim = IsReal ? PrimId::FMul : PrimId::IMul; break;
    case PrimId::OvNeg: X->Prim = IsReal ? PrimId::FNeg : PrimId::INeg; break;
    case PrimId::OvAbs: X->Prim = IsReal ? PrimId::FAbs : PrimId::IAbs; break;
    case PrimId::OvLt: X->Prim = IsReal ? PrimId::FLt : PrimId::ILt; break;
    case PrimId::OvLe: X->Prim = IsReal ? PrimId::FLe : PrimId::ILe; break;
    case PrimId::OvGt: X->Prim = IsReal ? PrimId::FGt : PrimId::IGt; break;
    case PrimId::OvGe: X->Prim = IsReal ? PrimId::FGe : PrimId::IGe; break;
    default:
      break;
    }
  }
  PendingOverloads.resize(From);
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

APat *Elaborator::elabPat(const ast::Pat *P, std::vector<ValInfo *> &Bound) {
  APat *R = A.create<APat>();
  R->Loc = P->Loc;
  switch (P->K) {
  case ast::Pat::Kind::Wild:
    R->K = APat::Kind::Wild;
    R->Ty = Types.freshVar(Depth);
    return R;
  case ast::Pat::Kind::Int:
    R->K = APat::Kind::Int;
    R->IntValue = P->IntValue;
    R->Ty = Types.IntType;
    return R;
  case ast::Pat::Kind::String:
    R->K = APat::Kind::String;
    R->StrValue = P->StrValue;
    R->Ty = Types.StringType;
    return R;
  case ast::Pat::Kind::Tuple: {
    R->K = APat::Kind::Tuple;
    std::vector<APat *> Elems;
    std::vector<Type *> Tys;
    for (const ast::Pat *El : P->Elems) {
      APat *AE = elabPat(El, Bound);
      Elems.push_back(AE);
      Tys.push_back(AE->Ty);
    }
    R->Elems = Span<APat *>::copy(A, Elems);
    R->Ty = Tys.empty() ? Types.UnitType : Types.tuple(std::move(Tys));
    return R;
  }
  case ast::Pat::Kind::Ident: {
    ResolvedVal RV = resolveLongVal(P->Name, P->Loc);
    if (RV.K == ResolvedVal::Kind::LocalCon) {
      DataCon *C = RV.Con;
      if (C->Payload) {
        Diags.error(P->Loc, "constructor '" + std::string(C->Name.str()) +
                                "' requires an argument pattern");
      }
      R->K = APat::Kind::Con;
      R->Con = C;
      std::vector<Type *> Fresh;
      for (size_t I = 0; I < C->Owner->Formals.size(); ++I)
        Fresh.push_back(Types.freshVar(Depth));
      R->TypeArgs = Span<Type *>::copy(A, Fresh);
      R->Ty = Types.con(C->Owner, R->TypeArgs);
      return R;
    }
    if (RV.K == ResolvedVal::Kind::LocalExn ||
        RV.K == ResolvedVal::Kind::PathExn) {
      if (RV.ExnPayload)
        Diags.error(P->Loc, "exception constructor requires an argument "
                            "pattern");
      R->K = APat::Kind::ExnCon;
      R->ExnPayload = nullptr;
      if (RV.K == ResolvedVal::Kind::LocalExn) {
        AExp *Tag = A.create<AExp>();
        Tag->K = AExp::Kind::ExnTag;
        Tag->Loc = P->Loc;
        Tag->Exn = RV.Exn;
        Tag->Ty = Types.ExnType;
        R->ExnTag = Tag;
      } else {
        R->ExnTag = pathOccurrence(
            RV.Root, RV.Slots,
            TypeScheme{Span<Type *>(), Types.ExnType}, P->Loc);
      }
      R->Ty = Types.ExnType;
      return R;
    }
    if (P->Name.isQualified()) {
      Diags.error(P->Loc, "qualified identifier in pattern is not a "
                          "constructor");
      R->K = APat::Kind::Wild;
      R->Ty = Types.freshVar(Depth);
      return R;
    }
    // A fresh variable binding.
    R->K = APat::Kind::Var;
    R->Ty = Types.freshVar(Depth);
    R->Var = makeValInfo(P->Name.name(), R->Ty);
    Bound.push_back(R->Var);
    return R;
  }
  case ast::Pat::Kind::App: {
    ResolvedVal RV = resolveLongVal(P->Name, P->Loc);
    if (RV.K == ResolvedVal::Kind::LocalCon && RV.Con->Payload) {
      DataCon *C = RV.Con;
      R->K = APat::Kind::Con;
      R->Con = C;
      std::vector<Type *> Fresh;
      for (size_t I = 0; I < C->Owner->Formals.size(); ++I)
        Fresh.push_back(Types.freshVar(Depth));
      R->TypeArgs = Span<Type *>::copy(A, Fresh);
      Type *Payload =
          Types.substitute(C->Payload, C->Owner->Formals, R->TypeArgs);
      R->Arg = elabPat(P->Arg, Bound);
      unifyOrDiag(R->Arg->Ty, Payload, P->Loc, "constructor pattern");
      R->Ty = Types.con(C->Owner, R->TypeArgs);
      return R;
    }
    if ((RV.K == ResolvedVal::Kind::LocalExn ||
         RV.K == ResolvedVal::Kind::PathExn) &&
        RV.ExnPayload) {
      R->K = APat::Kind::ExnCon;
      R->ExnPayload = RV.ExnPayload;
      if (RV.K == ResolvedVal::Kind::LocalExn) {
        AExp *Tag = A.create<AExp>();
        Tag->K = AExp::Kind::ExnTag;
        Tag->Loc = P->Loc;
        Tag->Exn = RV.Exn;
        Tag->Ty = Types.ExnType;
        R->ExnTag = Tag;
      } else {
        R->ExnTag = pathOccurrence(
            RV.Root, RV.Slots,
            TypeScheme{Span<Type *>(), Types.ExnType}, P->Loc);
      }
      R->Arg = elabPat(P->Arg, Bound);
      unifyOrDiag(R->Arg->Ty, RV.ExnPayload, P->Loc, "exception pattern");
      R->Ty = Types.ExnType;
      return R;
    }
    Diags.error(P->Loc, "'" + std::string(P->Name.name().str()) +
                            "' is not a value-carrying constructor");
    R->K = APat::Kind::Wild;
    R->Ty = Types.freshVar(Depth);
    return R;
  }
  case ast::Pat::Kind::Typed: {
    APat *Inner = elabPat(P->Arg, Bound);
    TyVarMap Local;
    Type *T = elabTy(P->Annot, &Local);
    unifyOrDiag(Inner->Ty, T, P->Loc, "pattern type annotation");
    return Inner;
  }
  case ast::Pat::Kind::Layered: {
    R->K = APat::Kind::Layered;
    R->Arg = elabPat(P->Arg, Bound);
    R->Ty = R->Arg->Ty;
    R->Var = makeValInfo(P->AsVar, R->Ty);
    Bound.push_back(R->Var);
    return R;
  }
  }
  R->K = APat::Kind::Wild;
  R->Ty = Types.freshVar(Depth);
  return R;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

AExp *Elaborator::elabExp(const ast::Exp *Ex) {
  AExp *X = A.create<AExp>();
  X->Loc = Ex->Loc;
  switch (Ex->K) {
  case ast::Exp::Kind::Int:
    X->K = AExp::Kind::Int;
    X->IntValue = Ex->IntValue;
    X->Ty = Types.IntType;
    return X;
  case ast::Exp::Kind::Real:
    X->K = AExp::Kind::Real;
    X->RealValue = Ex->RealValue;
    X->Ty = Types.RealType;
    return X;
  case ast::Exp::Kind::String:
    X->K = AExp::Kind::String;
    X->StrValue = Ex->StrValue;
    X->Ty = Types.StringType;
    return X;
  case ast::Exp::Kind::Ident: {
    ResolvedVal RV = resolveLongVal(Ex->Name, Ex->Loc);
    switch (RV.K) {
    case ResolvedVal::Kind::LocalVal:
      return varOccurrence(RV.Local.Val, Ex->Loc);
    case ResolvedVal::Kind::LocalCon:
      return conOccurrence(RV.Con, Ex->Loc);
    case ResolvedVal::Kind::LocalPrim:
      return primOccurrence(RV.Local.Prim, Ex->Loc);
    case ResolvedVal::Kind::PathVal:
      return pathOccurrence(RV.Root, RV.Slots, RV.PathScheme, Ex->Loc);
    case ResolvedVal::Kind::LocalExn: {
      AExp *Tag = A.create<AExp>();
      Tag->K = AExp::Kind::ExnTag;
      Tag->Loc = Ex->Loc;
      Tag->Exn = RV.Exn;
      Tag->Ty = Types.ExnType;
      return exnConExp(Tag, RV.ExnPayload, Ex->Loc);
    }
    case ResolvedVal::Kind::PathExn: {
      AExp *Tag = pathOccurrence(
          RV.Root, RV.Slots, TypeScheme{Span<Type *>(), Types.ExnType},
          Ex->Loc);
      return exnConExp(Tag, RV.ExnPayload, Ex->Loc);
    }
    case ResolvedVal::Kind::None:
      Diags.error(Ex->Loc, "unbound identifier '" +
                               std::string(Ex->Name.name().str()) + "'");
      X->K = AExp::Kind::Int;
      X->Ty = Types.freshVar(Depth);
      return X;
    }
    break;
  }
  case ast::Exp::Kind::Tuple: {
    X->K = AExp::Kind::Tuple;
    std::vector<AExp *> Elems;
    std::vector<Type *> Tys;
    for (const ast::Exp *El : Ex->Elems) {
      AExp *AE = elabExp(El);
      Elems.push_back(AE);
      Tys.push_back(AE->Ty);
    }
    X->Elems = Span<AExp *>::copy(A, Elems);
    X->Ty = Tys.empty() ? Types.UnitType : Types.tuple(std::move(Tys));
    return X;
  }
  case ast::Exp::Kind::Select: {
    AExp *Arg = elabExp(Ex->Arg);
    Type *T = Types.headNormalize(Arg->Ty);
    int Index = Ex->SelectIndex - 1;
    if (T->K != Type::Kind::Tuple ||
        Index < 0 || Index >= static_cast<int>(T->Elems.size())) {
      Diags.error(Ex->Loc, "#" + std::to_string(Ex->SelectIndex) +
                               " applied to non-tuple type " +
                               Types.toString(T));
      X->K = AExp::Kind::Int;
      X->Ty = Types.freshVar(Depth);
      return X;
    }
    X->K = AExp::Kind::Select;
    X->SelectIndex = Index;
    X->Arg = Arg;
    X->Ty = T->Elems[Index];
    return X;
  }
  case ast::Exp::Kind::App: {
    AExp *Fun = elabExp(Ex->Fun);
    AExp *Arg = elabExp(Ex->Arg);
    // Merge constructor applications so the translator can inject directly.
    if (Fun->K == AExp::Kind::Con && !Fun->Arg && Fun->Con->Payload) {
      Type *FT = Types.headNormalize(Fun->Ty);
      assert(FT->K == Type::Kind::Arrow);
      unifyOrDiag(FT->From, Arg->Ty, Ex->Loc, "constructor application");
      Fun->Arg = Arg;
      Fun->Ty = FT->To;
      return Fun;
    }
    if (Fun->K == AExp::Kind::ExnCon && !Fun->Arg && Fun->ExnPayload) {
      unifyOrDiag(Fun->ExnPayload, Arg->Ty, Ex->Loc,
                  "exception application");
      Fun->Arg = Arg;
      Fun->Ty = Types.ExnType;
      return Fun;
    }
    X->K = AExp::Kind::App;
    X->Fun = Fun;
    X->Arg = Arg;
    Type *Res = Types.freshVar(Depth);
    unifyOrDiag(Fun->Ty, Types.arrow(Arg->Ty, Res), Ex->Loc,
                "function application");
    X->Ty = Res;
    return X;
  }
  case ast::Exp::Kind::Fn: {
    X->K = AExp::Kind::Fn;
    Type *ArgTy = Types.freshVar(Depth);
    Type *ResTy = Types.freshVar(Depth);
    std::vector<ARule> Rules;
    for (const ast::Rule &R : Ex->Rules) {
      E->push();
      std::vector<ValInfo *> Bound;
      APat *P = elabPat(R.P, Bound);
      unifyOrDiag(P->Ty, ArgTy, R.P->Loc, "fn parameter");
      for (ValInfo *V : Bound)
        E->bindVar(V->Name, V);
      AExp *Body = elabExp(R.E);
      unifyOrDiag(Body->Ty, ResTy, R.E->Loc, "fn body");
      E->pop();
      Rules.push_back(ARule{P, Body});
    }
    X->Rules = Span<ARule>::copy(A, Rules);
    X->Ty = Types.arrow(ArgTy, ResTy);
    return X;
  }
  case ast::Exp::Kind::Case: {
    X->K = AExp::Kind::Case;
    X->Scrut = elabExp(Ex->Scrut);
    Type *ResTy = Types.freshVar(Depth);
    std::vector<ARule> Rules;
    for (const ast::Rule &R : Ex->Rules) {
      E->push();
      std::vector<ValInfo *> Bound;
      APat *P = elabPat(R.P, Bound);
      unifyOrDiag(P->Ty, X->Scrut->Ty, R.P->Loc, "case pattern");
      for (ValInfo *V : Bound)
        E->bindVar(V->Name, V);
      AExp *Body = elabExp(R.E);
      unifyOrDiag(Body->Ty, ResTy, R.E->Loc, "case arm");
      E->pop();
      Rules.push_back(ARule{P, Body});
    }
    X->Rules = Span<ARule>::copy(A, Rules);
    X->Ty = ResTy;
    return X;
  }
  case ast::Exp::Kind::If:
  case ast::Exp::Kind::Andalso:
  case ast::Exp::Kind::Orelse: {
    // Desugar to a case on bool.
    X->K = AExp::Kind::Case;
    AExp *Cond;
    AExp *ThenE;
    AExp *ElseE;
    if (Ex->K == ast::Exp::Kind::If) {
      Cond = elabExp(Ex->Scrut);
      ThenE = elabExp(Ex->Then);
      ElseE = elabExp(Ex->Else);
    } else if (Ex->K == ast::Exp::Kind::Andalso) {
      // a andalso b ==> case a of true => b | false => false
      Cond = elabExp(Ex->Then);
      ThenE = elabExp(Ex->Else);
      ElseE = conOccurrence(Types.FalseCon, Ex->Loc);
    } else {
      // a orelse b ==> case a of true => true | false => b
      Cond = elabExp(Ex->Then);
      ThenE = conOccurrence(Types.TrueCon, Ex->Loc);
      ElseE = elabExp(Ex->Else);
    }
    unifyOrDiag(Cond->Ty, Types.BoolType, Ex->Loc, "condition");
    unifyOrDiag(ThenE->Ty, ElseE->Ty, Ex->Loc, "conditional branches");
    auto MakeBoolPat = [&](DataCon *C) {
      APat *P = A.create<APat>();
      P->K = APat::Kind::Con;
      P->Loc = Ex->Loc;
      P->Con = C;
      P->Ty = Types.BoolType;
      return P;
    };
    ARule Rules[2] = {ARule{MakeBoolPat(Types.TrueCon), ThenE},
                      ARule{MakeBoolPat(Types.FalseCon), ElseE}};
    X->Scrut = Cond;
    X->Rules = Span<ARule>(A.copyArray(Rules, 2), 2);
    X->Ty = ThenE->Ty;
    return X;
  }
  case ast::Exp::Kind::Let: {
    X->K = AExp::Kind::Let;
    E->push();
    ++LetDepth;
    std::vector<ADec *> Decs;
    for (const ast::Dec *D : Ex->Decs)
      elabDec(D, Decs, nullptr);
    --LetDepth;
    AExp *Body;
    if (Ex->Elems.size() == 1) {
      Body = elabExp(Ex->Elems[0]);
    } else {
      Body = A.create<AExp>();
      Body->K = AExp::Kind::Seq;
      Body->Loc = Ex->Loc;
      std::vector<AExp *> Elems;
      for (const ast::Exp *El : Ex->Elems)
        Elems.push_back(elabExp(El));
      Body->Elems = Span<AExp *>::copy(A, Elems);
      Body->Ty = Elems.back()->Ty;
    }
    E->pop();
    X->Decs = Span<ADec *>::copy(A, Decs);
    X->Body = Body;
    X->Ty = Body->Ty;
    return X;
  }
  case ast::Exp::Kind::Seq: {
    X->K = AExp::Kind::Seq;
    std::vector<AExp *> Elems;
    for (const ast::Exp *El : Ex->Elems)
      Elems.push_back(elabExp(El));
    X->Elems = Span<AExp *>::copy(A, Elems);
    X->Ty = Elems.back()->Ty;
    return X;
  }
  case ast::Exp::Kind::Raise: {
    X->K = AExp::Kind::Raise;
    X->Arg = elabExp(Ex->Arg);
    unifyOrDiag(X->Arg->Ty, Types.ExnType, Ex->Loc, "raise");
    X->Ty = Types.freshVar(Depth);
    return X;
  }
  case ast::Exp::Kind::Handle: {
    X->K = AExp::Kind::Handle;
    X->Arg = elabExp(Ex->Arg);
    std::vector<ARule> Rules;
    for (const ast::Rule &R : Ex->Rules) {
      E->push();
      std::vector<ValInfo *> Bound;
      APat *P = elabPat(R.P, Bound);
      unifyOrDiag(P->Ty, Types.ExnType, R.P->Loc, "handler pattern");
      for (ValInfo *V : Bound)
        E->bindVar(V->Name, V);
      AExp *Body = elabExp(R.E);
      unifyOrDiag(Body->Ty, X->Arg->Ty, R.E->Loc, "handler arm");
      E->pop();
      Rules.push_back(ARule{P, Body});
    }
    X->Rules = Span<ARule>::copy(A, Rules);
    X->Ty = X->Arg->Ty;
    return X;
  }
  case ast::Exp::Kind::Typed: {
    AExp *Inner = elabExp(Ex->Arg);
    TyVarMap Local;
    Type *T = elabTy(Ex->Annot, &Local);
    unifyOrDiag(Inner->Ty, T, Ex->Loc, "type annotation");
    return Inner;
  }
  }
  X->K = AExp::Kind::Int;
  X->Ty = Types.IntType;
  return X;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Elaborator::isSyntacticValue(const ast::Exp *Ex) {
  switch (Ex->K) {
  case ast::Exp::Kind::Int:
  case ast::Exp::Kind::Real:
  case ast::Exp::Kind::String:
  case ast::Exp::Kind::Ident:
  case ast::Exp::Kind::Fn:
    return true;
  case ast::Exp::Kind::Tuple:
    for (const ast::Exp *El : Ex->Elems)
      if (!isSyntacticValue(El))
        return false;
    return true;
  case ast::Exp::Kind::Typed:
    return isSyntacticValue(Ex->Arg);
  default:
    return false;
  }
}

void Elaborator::finishGeneralize(
    std::vector<std::pair<ValInfo *, Type *>> &Binds, bool CanGeneralize) {
  if (!CanGeneralize) {
    for (auto &[V, T] : Binds)
      V->Scheme = TypeScheme{Span<Type *>(), T};
    return;
  }
  // Collect generalizable variables across all bindings at once (they may
  // share variables), then give each binding a scheme quantifying them all;
  // unused quantified variables are harmless.
  if (Binds.empty())
    return;
  std::vector<Type *> AllTys;
  for (auto &[V, T] : Binds)
    AllTys.push_back(T);
  Type *Combined =
      AllTys.size() == 1 ? AllTys[0] : Types.tuple(std::move(AllTys));
  TypeScheme S = Types.generalize(Combined, Depth);
  for (auto &[V, T] : Binds) {
    if (S.BoundVars.empty())
      V->Scheme = TypeScheme{Span<Type *>(), T};
    else
      V->Scheme = TypeScheme{S.BoundVars, T};
  }
}

void Elaborator::elabValRec(Span<Symbol> Names, Span<ast::Exp *> Exps,
                            SourceLoc Loc, std::vector<ADec *> &Out,
                            CompCollector *CC) {
  size_t OvMark = PendingOverloads.size();
  ++Depth;
  std::vector<ValInfo *> Vars;
  std::vector<Type *> Tys;
  for (Symbol N : Names) {
    Type *T = Types.freshVar(Depth);
    ValInfo *V = makeValInfo(N, T);
    V->Exported = LetDepth == 0;
    Vars.push_back(V);
    Tys.push_back(T);
    E->bindVar(N, V);
  }
  std::vector<AExp *> Bodies;
  for (size_t I = 0; I < Exps.size(); ++I) {
    if (Exps[I]->K != ast::Exp::Kind::Fn)
      Diags.error(Exps[I]->Loc, "val rec right-hand side must be a fn "
                                "expression");
    AExp *B = elabExp(Exps[I]);
    unifyOrDiag(Tys[I], B->Ty, Exps[I]->Loc, "val rec binding");
    Bodies.push_back(B);
  }
  // Overloads default at the outermost declaration, once the whole
  // declaration's constraints are known (nested lets must not force int).
  if (LetDepth == 0)
    resolveOverloads(OvMark);
  --Depth;
  std::vector<std::pair<ValInfo *, Type *>> Binds;
  for (size_t I = 0; I < Vars.size(); ++I)
    Binds.emplace_back(Vars[I], Tys[I]);
  finishGeneralize(Binds, /*CanGeneralize=*/true);
  // Rebind with the generalized schemes (same ValInfo objects).
  for (ValInfo *V : Vars)
    E->bindVar(V->Name, V);
  if (CC)
    for (ValInfo *V : Vars)
      CC->addVal(V->Name, V);

  ADec *D = A.create<ADec>();
  D->K = ADec::Kind::ValRec;
  D->Loc = Loc;
  D->RecVars = Span<ValInfo *>::copy(A, Vars);
  D->RecExps = Span<AExp *>::copy(A, Bodies);
  Out.push_back(D);
}

void Elaborator::elabFunDec(const ast::Dec *D, std::vector<ADec *> &Out,
                            CompCollector *CC) {
  // Desugar clausal function bindings into val rec of nested fn/case.
  std::vector<Symbol> Names;
  std::vector<ast::Exp *> Exps;
  for (const ast::FunBind &FB : D->FunBinds) {
    Names.push_back(FB.Name);
    size_t NumParams = FB.Clauses[0].Params.size();
    for (const ast::FunClause &C : FB.Clauses)
      if (C.Params.size() != NumParams)
        Diags.error(FB.Loc, "clauses of '" + std::string(FB.Name.str()) +
                                "' have different numbers of parameters");

    auto MakeFn = [&](ast::Pat *P, ast::Exp *Body) {
      ast::Exp *Fn = A.create<ast::Exp>();
      Fn->K = ast::Exp::Kind::Fn;
      Fn->Loc = FB.Loc;
      ast::Rule R{P, Body};
      Fn->Rules = Span<ast::Rule>(A.copyArray(&R, 1), 1);
      return Fn;
    };
    auto Annotate = [&](ast::Exp *Body, ast::Ty *T) -> ast::Exp * {
      if (!T)
        return Body;
      ast::Exp *X = A.create<ast::Exp>();
      X->K = ast::Exp::Kind::Typed;
      X->Loc = Body->Loc;
      X->Arg = Body;
      X->Annot = T;
      return X;
    };

    ast::Exp *FnExp;
    if (FB.Clauses.size() == 1) {
      const ast::FunClause &C = FB.Clauses[0];
      ast::Exp *Body = Annotate(C.Body, C.ResultAnnot);
      for (size_t I = C.Params.size(); I-- > 0;)
        Body = MakeFn(C.Params[I], Body);
      FnExp = Body;
    } else {
      // fn a1 => ... => case (a1,...,an) of (p11,...,p1n) => e1 | ...
      std::vector<Symbol> ArgNames;
      for (size_t I = 0; I < NumParams; ++I) {
        std::string Nm = "a$" + std::to_string(NextValId) + "$" +
                         std::to_string(I);
        ArgNames.push_back(Interner.intern(Nm));
      }
      auto IdentE = [&](Symbol S) {
        ast::Exp *X = A.create<ast::Exp>();
        X->K = ast::Exp::Kind::Ident;
        X->Loc = FB.Loc;
        Symbol *Mem = A.copyArray(&S, 1);
        X->Name = ast::LongId{Span<Symbol>(Mem, 1)};
        return X;
      };
      ast::Exp *Scrut;
      if (NumParams == 1) {
        Scrut = IdentE(ArgNames[0]);
      } else {
        Scrut = A.create<ast::Exp>();
        Scrut->K = ast::Exp::Kind::Tuple;
        Scrut->Loc = FB.Loc;
        std::vector<ast::Exp *> Elems;
        for (Symbol S : ArgNames)
          Elems.push_back(IdentE(S));
        Scrut->Elems = Span<ast::Exp *>::copy(A, Elems);
      }
      std::vector<ast::Rule> Rules;
      for (const ast::FunClause &C : FB.Clauses) {
        ast::Pat *P;
        if (NumParams == 1) {
          P = C.Params[0];
        } else {
          P = A.create<ast::Pat>();
          P->K = ast::Pat::Kind::Tuple;
          P->Loc = FB.Loc;
          P->Elems = C.Params;
        }
        Rules.push_back(ast::Rule{P, Annotate(C.Body, C.ResultAnnot)});
      }
      ast::Exp *CaseE = A.create<ast::Exp>();
      CaseE->K = ast::Exp::Kind::Case;
      CaseE->Loc = FB.Loc;
      CaseE->Scrut = Scrut;
      CaseE->Rules = Span<ast::Rule>::copy(A, Rules);
      ast::Exp *Body = CaseE;
      for (size_t I = NumParams; I-- > 0;) {
        ast::Pat *VP = A.create<ast::Pat>();
        VP->K = ast::Pat::Kind::Ident;
        VP->Loc = FB.Loc;
        Symbol S = ArgNames[I];
        Symbol *Mem = A.copyArray(&S, 1);
        VP->Name = ast::LongId{Span<Symbol>(Mem, 1)};
        Body = MakeFn(VP, Body);
      }
      FnExp = Body;
    }
    Exps.push_back(FnExp);
  }
  elabValRec(Span<Symbol>::copy(A, Names), Span<ast::Exp *>::copy(A, Exps),
             D->Loc, Out, CC);
}

void Elaborator::elabDatatypeDec(const ast::Dec *D, CompCollector *CC) {
  elabDatBinds(D->DatBinds, CC);
}

void Elaborator::elabDatBinds(Span<ast::DatBind> DatBinds,
                              CompCollector *CC) {
  // First create all tycons (so mutually recursive payloads resolve).
  std::vector<TyCon *> Tycons;
  for (const ast::DatBind &DB : DatBinds) {
    TyCon *TC = Types.makeDatatype(DB.Name,
                                   static_cast<int>(DB.TyVars.size()));
    std::vector<Type *> Formals;
    for (size_t I = 0; I < DB.TyVars.size(); ++I) {
      Type *F = Types.freshVar(0);
      F->IsBound = true;
      Formals.push_back(F);
    }
    TC->Formals = Span<Type *>::copy(A, Formals);
    Tycons.push_back(TC);
    E->bindTycon(DB.Name, TC);
    if (CC)
      CC->addTycon(DB.Name, TC);
  }
  // Then the constructors.
  for (size_t BI = 0; BI < DatBinds.size(); ++BI) {
    const ast::DatBind &DB = DatBinds[BI];
    TyCon *TC = Tycons[BI];
    TyVarMap Formals;
    for (size_t I = 0; I < DB.TyVars.size(); ++I)
      Formals[DB.TyVars[I]] = TC->Formals[I];
    std::vector<DataCon *> Cons;
    for (size_t CI = 0; CI < DB.Cons.size(); ++CI) {
      const ast::ConBind &CB = DB.Cons[CI];
      DataCon *DC = A.create<DataCon>();
      DC->Name = CB.Name;
      DC->Owner = TC;
      DC->Index = static_cast<int>(CI);
      DC->Payload = CB.OfTy ? elabTy(CB.OfTy, &Formals) : nullptr;
      Cons.push_back(DC);
    }
    TC->Cons = Span<DataCon *>::copy(A, Cons);
    Types.assignConReps(TC);
    for (DataCon *DC : Cons) {
      E->bindCon(DC->Name, DC);
      if (CC)
        CC->addCon(DC->Name, DC);
    }
  }
  // Equality admission: optimistic, then a fixpoint over the group.
  for (int Iter = 0; Iter < 2; ++Iter) {
    for (TyCon *TC : Tycons) {
      bool Eq = true;
      for (DataCon *DC : TC->Cons)
        if (DC->Payload && !Types.admitsEquality(DC->Payload))
          Eq = false;
      TC->AdmitsEq = Eq;
    }
  }
}

void Elaborator::elabDec(const ast::Dec *D, std::vector<ADec *> &Out,
                         CompCollector *CC) {
  switch (D->K) {
  case ast::Dec::Kind::Val: {
    size_t OvMark = PendingOverloads.size();
    ++Depth;
    AExp *RHS = elabExp(D->ValExp);
    std::vector<ValInfo *> Bound;
    APat *P = elabPat(D->ValPat, Bound);
    unifyOrDiag(P->Ty, RHS->Ty, D->Loc, "val binding");
    if (LetDepth == 0)
      resolveOverloads(OvMark);
    --Depth;
    std::vector<std::pair<ValInfo *, Type *>> Binds;
    for (ValInfo *V : Bound) {
      V->Exported = LetDepth == 0;
      Binds.emplace_back(V, V->Scheme.Body);
    }
    finishGeneralize(Binds, isSyntacticValue(D->ValExp));
    for (ValInfo *V : Bound)
      E->bindVar(V->Name, V);
    if (CC)
      for (ValInfo *V : Bound)
        CC->addVal(V->Name, V);
    ADec *AD = A.create<ADec>();
    AD->K = ADec::Kind::Val;
    AD->Loc = D->Loc;
    AD->Pat = P;
    AD->Exp = RHS;
    Out.push_back(AD);
    return;
  }
  case ast::Dec::Kind::ValRec:
    elabValRec(D->RecNames, D->RecExps, D->Loc, Out, CC);
    return;
  case ast::Dec::Kind::Fun:
    elabFunDec(D, Out, CC);
    return;
  case ast::Dec::Kind::Datatype:
    elabDatatypeDec(D, CC);
    return;
  case ast::Dec::Kind::TypeAbbrev: {
    TyVarMap Formals;
    std::vector<Type *> FormalVars;
    for (Symbol S : D->TyVars) {
      Type *F = Types.freshVar(0);
      F->IsBound = true;
      Formals[S] = F;
      FormalVars.push_back(F);
    }
    Type *Body = elabTy(D->TypeBody, &Formals);
    TyCon *TC = Types.makeAbbrev(D->TypeName,
                                 Span<Type *>::copy(A, FormalVars), Body);
    E->bindTycon(D->TypeName, TC);
    if (CC)
      CC->addTycon(D->TypeName, TC);
    return;
  }
  case ast::Dec::Kind::Exception: {
    Type *Payload = nullptr;
    if (D->ExnOfTy)
      Payload = elabTy(D->ExnOfTy, nullptr);
    ExnInfo *X = makeExn(D->ExnName, Payload);
    E->bindExn(D->ExnName, X);
    if (CC)
      CC->addExn(D->ExnName, X);
    ADec *AD = A.create<ADec>();
    AD->K = ADec::Kind::Exception;
    AD->Loc = D->Loc;
    AD->Exn = X;
    Out.push_back(AD);
    return;
  }
  case ast::Dec::Kind::Structure:
    elabStructureDec(D, Out, CC);
    return;
  case ast::Dec::Kind::Signature: {
    auto Info = std::make_shared<SigInfo>();
    Info->Name = D->SigName;
    Info->Def = D->SigBody;
    Info->DefEnv = std::make_shared<Env>(*E);
    E->bindSig(D->SigName, std::move(Info));
    return;
  }
  case ast::Dec::Kind::Functor:
    elabFunctorDec(D, Out, CC);
    return;
  case ast::Dec::Kind::Open:
    Diags.error(D->Loc, "'open' is not supported");
    return;
  }
}

AProgram Elaborator::elaborate(const ast::Program &P) {
  std::vector<ADec *> Decs;
  for (const ast::Dec *D : P.Decs)
    elabDec(D, Decs, nullptr);

  AProgram Prog;
  Prog.Decs = Span<ADec *>::copy(A, Decs);
  Prog.Result = nullptr;

  // Convention: if the program defines `main : unit -> int` at top level
  // (or `Main.main`), the program's value is `main ()`.
  ValBinding B = E->lookupVal(SymMain);
  AExp *MainFn = nullptr;
  SourceLoc Loc;
  if (B.K == ValBinding::Kind::Val) {
    MainFn = varOccurrence(B.Val, Loc);
  } else if (StrInfo *S = E->lookupStr(Interner.intern("Main"))) {
    if (const StrComp *C = S->Static->findComp(SymMain)) {
      if (C->K == StrComp::Kind::Val)
        MainFn = pathOccurrence(S, {C->Slot}, C->Scheme, Loc);
    }
  }
  if (MainFn) {
    AExp *Unit = A.create<AExp>();
    Unit->K = AExp::Kind::Tuple;
    Unit->Ty = Types.UnitType;
    AExp *Call = A.create<AExp>();
    Call->K = AExp::Kind::App;
    Call->Fun = MainFn;
    Call->Arg = Unit;
    Type *Res = Types.freshVar(0);
    unifyOrDiag(MainFn->Ty, Types.arrow(Types.UnitType, Res), Loc,
                "main must have type unit -> int");
    unifyOrDiag(Res, Types.IntType, Loc, "main must return int");
    Call->Ty = Types.IntType;
    Prog.Result = Call;
  }
  return Prog;
}
