//===- types/Unify.cpp - Unification ---------------------------------------===//

#include "types/Unify.h"

using namespace smltc;

namespace {

/// True if Var occurs in T; also lowers depths in T to Var's depth so that
/// generalization stays sound, and propagates the equality constraint.
bool occursAdjust(Type *Var, Type *T, bool MakeEq) {
  T = TypeContext::resolve(T);
  switch (T->K) {
  case Type::Kind::Var:
    if (T == Var)
      return true;
    if (T->Depth > Var->Depth)
      T->Depth = Var->Depth;
    if (MakeEq)
      T->IsEq = true;
    return false;
  case Type::Kind::Con:
    for (Type *Arg : T->Args)
      if (occursAdjust(Var, Arg, MakeEq))
        return true;
    return false;
  case Type::Kind::Tuple:
    for (Type *E : T->Elems)
      if (occursAdjust(Var, E, MakeEq))
        return true;
    return false;
  case Type::Kind::Arrow:
    return occursAdjust(Var, T->From, MakeEq) ||
           occursAdjust(Var, T->To, MakeEq);
  }
  return false;
}

UnifyResult bindVar(TypeContext &Ctx, Type *Var, Type *T) {
  assert(Var->K == Type::Kind::Var && !Var->Link);
  if (Var->IsBound)
    return UnifyResult::failure("cannot instantiate a generalized type "
                                "variable (type is less polymorphic)");
  T = TypeContext::resolve(T);
  if (T == Var)
    return UnifyResult::success();
  if (Var->IsOverload) {
    Type *H = Ctx.headNormalize(T);
    if (!(H->K == Type::Kind::Var ||
          (H->K == Type::Kind::Con &&
           (H->Con == Ctx.IntTycon || H->Con == Ctx.RealTycon))))
      return UnifyResult::failure(
          "overloaded operator used at type " + Ctx.toString(T) +
          " (must be int or real)");
    if (H->K == Type::Kind::Var)
      H->IsOverload = true;
  }
  if (Var->IsEq && !Ctx.admitsEquality(T))
    return UnifyResult::failure("type " + Ctx.toString(T) +
                                " does not admit equality");
  if (occursAdjust(Var, T, Var->IsEq))
    return UnifyResult::failure("circular type (occurs check failed)");
  Var->Link = T;
  return UnifyResult::success();
}

} // namespace

UnifyResult smltc::unify(TypeContext &Ctx, Type *T1, Type *T2) {
  T1 = Ctx.headNormalize(T1);
  T2 = Ctx.headNormalize(T2);
  if (T1 == T2)
    return UnifyResult::success();

  if (T1->K == Type::Kind::Var)
    return bindVar(Ctx, T1, T2);
  if (T2->K == Type::Kind::Var)
    return bindVar(Ctx, T2, T1);

  if (T1->K != T2->K)
    return UnifyResult::failure("type mismatch: " + Ctx.toString(T1) +
                                " vs " + Ctx.toString(T2));

  switch (T1->K) {
  case Type::Kind::Con: {
    if (T1->Con != T2->Con)
      return UnifyResult::failure("type mismatch: " + Ctx.toString(T1) +
                                  " vs " + Ctx.toString(T2));
    for (size_t I = 0; I < T1->Args.size(); ++I) {
      UnifyResult R = unify(Ctx, T1->Args[I], T2->Args[I]);
      if (!R.Ok)
        return R;
    }
    return UnifyResult::success();
  }
  case Type::Kind::Tuple: {
    if (T1->Elems.size() != T2->Elems.size())
      return UnifyResult::failure(
          "tuple size mismatch: " + Ctx.toString(T1) + " vs " +
          Ctx.toString(T2));
    for (size_t I = 0; I < T1->Elems.size(); ++I) {
      UnifyResult R = unify(Ctx, T1->Elems[I], T2->Elems[I]);
      if (!R.Ok)
        return R;
    }
    return UnifyResult::success();
  }
  case Type::Kind::Arrow: {
    UnifyResult R = unify(Ctx, T1->From, T2->From);
    if (!R.Ok)
      return R;
    return unify(Ctx, T1->To, T2->To);
  }
  case Type::Kind::Var:
    break;
  }
  return UnifyResult::failure("unexpected unification case");
}
