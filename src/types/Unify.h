//===- types/Unify.h - Unification -----------------------------------------===//
///
/// \file
/// Destructive unification over the mutable type graph, with occurs check,
/// rank (depth) propagation for sound generalization, equality-variable
/// constraints, and overloaded-variable constraints ({int, real}).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_TYPES_UNIFY_H
#define SMLTC_TYPES_UNIFY_H

#include "types/Type.h"

#include <string>

namespace smltc {

/// Result of a unification attempt. On failure, Message describes the
/// mismatch.
struct UnifyResult {
  bool Ok = true;
  std::string Message;

  static UnifyResult success() { return UnifyResult{}; }
  static UnifyResult failure(std::string Msg) {
    return UnifyResult{false, std::move(Msg)};
  }
};

/// Unifies T1 and T2 in place. Expands abbreviations as needed.
UnifyResult unify(TypeContext &Ctx, Type *T1, Type *T2);

} // namespace smltc

#endif // SMLTC_TYPES_UNIFY_H
