//===- types/Type.cpp - ML semantic types ----------------------------------===//

#include "types/Type.h"

#include <sstream>
#include <unordered_map>

using namespace smltc;

TypeContext::TypeContext(Arena &A, StringInterner &Interner)
    : A(A), Interner(Interner) {
  auto MakePrim = [&](const char *Name, int Arity, bool Eq) {
    TyCon *TC = A.create<TyCon>();
    TC->K = TyCon::Kind::Prim;
    TC->Name = Interner.intern(Name);
    TC->Arity = Arity;
    TC->AdmitsEq = Eq;
    TC->Stamp = NextStamp++;
    return TC;
  };
  IntTycon = MakePrim("int", 0, true);
  // Real admits equality in SML'90 (the paper's setting).
  RealTycon = MakePrim("real", 0, true);
  StringTycon = MakePrim("string", 0, true);
  UnitTycon = MakePrim("unit", 0, true);
  RefTycon = MakePrim("ref", 1, true);
  ArrayTycon = MakePrim("array", 1, true);
  ExnTycon = MakePrim("exn", 0, false);
  ContTycon = MakePrim("cont", 1, false);

  IntType = con(IntTycon);
  RealType = con(RealTycon);
  StringType = con(StringTycon);
  UnitType = con(UnitTycon);
  ExnType = con(ExnTycon);

  // bool as a datatype with two constant constructors (false=0, true=1).
  BoolTycon = makeDatatype(Interner.intern("bool"), 0);
  {
    DataCon *F = A.create<DataCon>();
    F->Name = Interner.intern("false");
    F->Owner = BoolTycon;
    F->Index = 0;
    DataCon *T = A.create<DataCon>();
    T->Name = Interner.intern("true");
    T->Owner = BoolTycon;
    T->Index = 1;
    DataCon *Cons[2] = {F, T};
    BoolTycon->Cons = Span<DataCon *>(A.copyArray(Cons, 2), 2);
    assignConReps(BoolTycon);
    FalseCon = F;
    TrueCon = T;
  }
  BoolType = con(BoolTycon);

  // 'a list = nil | :: of 'a * 'a list.
  ListTycon = makeDatatype(Interner.intern("list"), 1);
  {
    Type *Formal = freshVar(0);
    Type *Formals[1] = {Formal};
    ListTycon->Formals = Span<Type *>(A.copyArray(Formals, 1), 1);
    DataCon *Nil = A.create<DataCon>();
    Nil->Name = Interner.intern("nil");
    Nil->Owner = ListTycon;
    Nil->Index = 0;
    DataCon *C = A.create<DataCon>();
    C->Name = Interner.intern("::");
    C->Owner = ListTycon;
    C->Index = 1;
    C->Payload = tuple({Formal, listOf(Formal)});
    DataCon *Cons[2] = {Nil, C};
    ListTycon->Cons = Span<DataCon *>(A.copyArray(Cons, 2), 2);
    assignConReps(ListTycon);
    NilCon = Nil;
    ConsCon = C;
  }

  // ref constructor (builtin special representation): ref : 'a -> 'a ref.
  {
    Type *Formal = freshVar(0);
    Formal->IsBound = true;
    Type *Formals[1] = {Formal};
    RefTycon->Formals = Span<Type *>(A.copyArray(Formals, 1), 1);
    RefCon = A.create<DataCon>();
    RefCon->Name = Interner.intern("ref");
    RefCon->Owner = RefTycon;
    RefCon->Index = 0;
    RefCon->Payload = Formal;
    RefCon->Rep = ConRep{ConRepKind::Ref, 0};
    DataCon *Cons[1] = {RefCon};
    RefTycon->Cons = Span<DataCon *>(A.copyArray(Cons, 1), 1);
  }
}

TypeContext::TypeContext(Arena &A, StringInterner &Interner,
                         const TypeContext &Base)
    : A(A), Interner(Interner) {
  IntTycon = Base.IntTycon;
  RealTycon = Base.RealTycon;
  StringTycon = Base.StringTycon;
  UnitTycon = Base.UnitTycon;
  BoolTycon = Base.BoolTycon;
  ListTycon = Base.ListTycon;
  RefTycon = Base.RefTycon;
  ArrayTycon = Base.ArrayTycon;
  ExnTycon = Base.ExnTycon;
  ContTycon = Base.ContTycon;
  TrueCon = Base.TrueCon;
  FalseCon = Base.FalseCon;
  NilCon = Base.NilCon;
  ConsCon = Base.ConsCon;
  RefCon = Base.RefCon;
  IntType = Base.IntType;
  RealType = Base.RealType;
  StringType = Base.StringType;
  UnitType = Base.UnitType;
  BoolType = Base.BoolType;
  ExnType = Base.ExnType;
  NextVarId = Base.NextVarId;
  NextStamp = Base.NextStamp;
}

Type *TypeContext::freshVar(int Depth, bool IsEq) {
  Type *T = A.create<Type>();
  T->K = Type::Kind::Var;
  T->VarId = NextVarId++;
  T->IsEq = IsEq;
  T->Depth = Depth;
  return T;
}

Type *TypeContext::freshOverloadVar(int Depth) {
  Type *T = freshVar(Depth);
  T->IsOverload = true;
  return T;
}

Type *TypeContext::con(TyCon *TC, Span<Type *> Args) {
  assert(TC && static_cast<int>(Args.size()) == TC->Arity &&
         "tycon arity mismatch");
  Type *T = A.create<Type>();
  T->K = Type::Kind::Con;
  T->Con = TC;
  T->Args = Args;
  return T;
}

Type *TypeContext::con(TyCon *TC, std::vector<Type *> Args) {
  return con(TC, Span<Type *>::copy(A, Args));
}

Type *TypeContext::tuple(std::vector<Type *> Elems) {
  assert(Elems.size() != 1 && "1-tuples do not exist");
  Type *T = A.create<Type>();
  T->K = Type::Kind::Tuple;
  T->Elems = Span<Type *>::copy(A, Elems);
  return T;
}

Type *TypeContext::arrow(Type *From, Type *To) {
  Type *T = A.create<Type>();
  T->K = Type::Kind::Arrow;
  T->From = From;
  T->To = To;
  return T;
}

Type *TypeContext::resolve(Type *T) {
  while (T->K == Type::Kind::Var && T->Link) {
    if (T->Link->K == Type::Kind::Var && T->Link->Link)
      T->Link = T->Link->Link; // path compression
    T = T->Link;
  }
  return T;
}

Type *TypeContext::headNormalize(Type *T) {
  T = resolve(T);
  while (T->K == Type::Kind::Con && T->Con->K == TyCon::Kind::Abbrev) {
    T = substitute(T->Con->AbbrevBody, T->Con->Formals, T->Args);
    T = resolve(T);
  }
  return T;
}

Type *TypeContext::substitute(Type *T, Span<Type *> Formals,
                              Span<Type *> Actuals) {
  assert(Formals.size() == Actuals.size());
  T = resolve(T);
  switch (T->K) {
  case Type::Kind::Var:
    for (size_t I = 0; I < Formals.size(); ++I)
      if (T == resolve(const_cast<Type *>(Formals[I])))
        return Actuals[I];
    return T;
  case Type::Kind::Con: {
    if (T->Args.empty())
      return T;
    std::vector<Type *> NewArgs;
    bool Changed = false;
    for (Type *Arg : T->Args) {
      Type *NA = substitute(Arg, Formals, Actuals);
      Changed |= (NA != resolve(Arg));
      NewArgs.push_back(NA);
    }
    if (!Changed)
      return T;
    return con(T->Con, std::move(NewArgs));
  }
  case Type::Kind::Tuple: {
    std::vector<Type *> NewElems;
    bool Changed = false;
    for (Type *E : T->Elems) {
      Type *NE = substitute(E, Formals, Actuals);
      Changed |= (NE != resolve(E));
      NewElems.push_back(NE);
    }
    if (!Changed)
      return T;
    return tuple(std::move(NewElems));
  }
  case Type::Kind::Arrow: {
    Type *NF = substitute(T->From, Formals, Actuals);
    Type *NT = substitute(T->To, Formals, Actuals);
    if (NF == resolve(T->From) && NT == resolve(T->To))
      return T;
    return arrow(NF, NT);
  }
  }
  return T;
}

Type *TypeContext::instantiate(const TypeScheme &S, int Depth,
                               std::vector<Type *> &InstVars) {
  if (S.BoundVars.empty())
    return S.Body;
  std::vector<Type *> Fresh;
  for (Type *BV : S.BoundVars) {
    Type *V = freshVar(Depth, BV->IsEq);
    Fresh.push_back(V);
    InstVars.push_back(V);
  }
  return substitute(S.Body, S.BoundVars,
                    Span<Type *>(Fresh.data(), Fresh.size()));
}

namespace {
void collectGeneralizable(Type *T, int Depth, std::vector<Type *> &Out) {
  T = TypeContext::resolve(T);
  switch (T->K) {
  case Type::Kind::Var:
    if (!T->IsBound && !T->IsOverload && T->Depth > Depth) {
      for (Type *Seen : Out)
        if (Seen == T)
          return;
      Out.push_back(T);
    }
    return;
  case Type::Kind::Con:
    for (Type *Arg : T->Args)
      collectGeneralizable(Arg, Depth, Out);
    return;
  case Type::Kind::Tuple:
    for (Type *E : T->Elems)
      collectGeneralizable(E, Depth, Out);
    return;
  case Type::Kind::Arrow:
    collectGeneralizable(T->From, Depth, Out);
    collectGeneralizable(T->To, Depth, Out);
    return;
  }
}
} // namespace

TypeScheme TypeContext::generalize(Type *T, int Depth) {
  std::vector<Type *> Vars;
  collectGeneralizable(T, Depth, Vars);
  for (Type *V : Vars)
    V->IsBound = true;
  TypeScheme S;
  S.BoundVars = Span<Type *>::copy(A, Vars);
  S.Body = T;
  return S;
}

bool TypeContext::admitsEquality(Type *T) {
  T = headNormalize(T);
  switch (T->K) {
  case Type::Kind::Var:
    // Unbound var: unification will constrain it later; allow (the caller
    // turns it into an equality variable).
    return true;
  case Type::Kind::Con:
    if (T->Con == RefTycon || T->Con == ArrayTycon)
      return true; // ref/array admit (pointer) equality regardless of arg
    if (!T->Con->AdmitsEq)
      return false;
    if (T->Con->K == TyCon::Kind::Datatype) {
      // AdmitsEq on the tycon was computed at declaration; args must too.
      for (Type *Arg : T->Args)
        if (!admitsEquality(Arg))
          return false;
      return true;
    }
    for (Type *Arg : T->Args)
      if (!admitsEquality(Arg))
        return false;
    return true;
  case Type::Kind::Tuple:
    for (Type *E : T->Elems)
      if (!admitsEquality(E))
        return false;
    return true;
  case Type::Kind::Arrow:
    return false;
  }
  return false;
}

bool TypeContext::sameType(Type *T1, Type *T2) {
  T1 = headNormalize(T1);
  T2 = headNormalize(T2);
  if (T1 == T2)
    return true;
  if (T1->K != T2->K)
    return false;
  switch (T1->K) {
  case Type::Kind::Var:
    return false; // distinct var nodes
  case Type::Kind::Con: {
    if (T1->Con != T2->Con)
      return false;
    for (size_t I = 0; I < T1->Args.size(); ++I)
      if (!sameType(T1->Args[I], T2->Args[I]))
        return false;
    return true;
  }
  case Type::Kind::Tuple: {
    if (T1->Elems.size() != T2->Elems.size())
      return false;
    for (size_t I = 0; I < T1->Elems.size(); ++I)
      if (!sameType(T1->Elems[I], T2->Elems[I]))
        return false;
    return true;
  }
  case Type::Kind::Arrow:
    return sameType(T1->From, T2->From) && sameType(T1->To, T2->To);
  }
  return false;
}

TyCon *TypeContext::makeDatatype(Symbol Name, int Arity) {
  TyCon *TC = A.create<TyCon>();
  TC->K = TyCon::Kind::Datatype;
  TC->Name = Name;
  TC->Arity = Arity;
  TC->AdmitsEq = true; // refined by the elaborator after payloads are known
  TC->Stamp = NextStamp++;
  return TC;
}

TyCon *TypeContext::makeFlexible(Symbol Name, int Arity, bool AdmitsEq) {
  TyCon *TC = A.create<TyCon>();
  TC->K = TyCon::Kind::Flexible;
  TC->Name = Name;
  TC->Arity = Arity;
  TC->AdmitsEq = AdmitsEq;
  TC->Stamp = NextStamp++;
  return TC;
}

TyCon *TypeContext::makeAbbrev(Symbol Name, Span<Type *> Formals,
                               Type *Body) {
  TyCon *TC = A.create<TyCon>();
  TC->K = TyCon::Kind::Abbrev;
  TC->Name = Name;
  TC->Arity = static_cast<int>(Formals.size());
  TC->Formals = Formals;
  TC->AbbrevBody = Body;
  TC->Stamp = NextStamp++;
  return TC;
}

bool TypeContext::isStaticallyBoxed(Type *T) {
  T = headNormalize(T);
  if (T->K == Type::Kind::Tuple && T->Elems.size() >= 2)
    return true;
  if (T->K == Type::Kind::Con && T->Con == StringTycon)
    return true;
  return false;
}

void TypeContext::assignConReps(TyCon *Datatype) {
  assert(Datatype->K == TyCon::Kind::Datatype);
  int NumCarrying = 0;
  DataCon *Carrier = nullptr;
  for (DataCon *DC : Datatype->Cons) {
    if (DC->Payload) {
      ++NumCarrying;
      Carrier = DC;
    }
  }
  // Constant constructors get consecutive small-int tags.
  int ConstTag = 0;
  for (DataCon *DC : Datatype->Cons)
    if (!DC->Payload)
      DC->Rep = ConRep{ConRepKind::Constant, ConstTag++};

  if (NumCarrying == 0)
    return;
  if (NumCarrying == 1 && isStaticallyBoxed(Carrier->Payload)) {
    // The payload is always a pointer, so the value can be the payload
    // itself; constants are distinguishable as tagged ints.
    Carrier->Rep = ConRep{ConRepKind::Transparent, 0};
    return;
  }
  int BoxTag = 0;
  for (DataCon *DC : Datatype->Cons)
    if (DC->Payload)
      DC->Rep = ConRep{ConRepKind::TaggedBox, BoxTag++};
}

Type *TypeContext::listOf(Type *Elem) { return con(ListTycon, {Elem}); }
Type *TypeContext::refOf(Type *Elem) { return con(RefTycon, {Elem}); }
Type *TypeContext::arrayOf(Type *Elem) { return con(ArrayTycon, {Elem}); }
Type *TypeContext::contOf(Type *Elem) { return con(ContTycon, {Elem}); }

namespace {
void emitType(std::ostringstream &OS, Type *T,
              std::unordered_map<const Type *, std::string> &VarNames) {
  T = TypeContext::resolve(T);
  switch (T->K) {
  case Type::Kind::Var: {
    auto It = VarNames.find(T);
    if (It == VarNames.end()) {
      std::string Name = (T->IsEq ? "''" : "'");
      Name += static_cast<char>('a' + (VarNames.size() % 26));
      It = VarNames.emplace(T, Name).first;
    }
    OS << It->second;
    return;
  }
  case Type::Kind::Con: {
    if (T->Args.size() == 1) {
      emitType(OS, T->Args[0], VarNames);
      OS << ' ';
    } else if (T->Args.size() > 1) {
      OS << '(';
      for (size_t I = 0; I < T->Args.size(); ++I) {
        if (I)
          OS << ", ";
        emitType(OS, T->Args[I], VarNames);
      }
      OS << ") ";
    }
    OS << T->Con->Name.str();
    return;
  }
  case Type::Kind::Tuple: {
    if (T->Elems.empty()) {
      OS << "unit";
      return;
    }
    OS << '(';
    for (size_t I = 0; I < T->Elems.size(); ++I) {
      if (I)
        OS << " * ";
      emitType(OS, T->Elems[I], VarNames);
    }
    OS << ')';
    return;
  }
  case Type::Kind::Arrow:
    OS << '(';
    emitType(OS, T->From, VarNames);
    OS << " -> ";
    emitType(OS, T->To, VarNames);
    OS << ')';
    return;
  }
}
} // namespace

std::string TypeContext::toString(Type *T) {
  std::ostringstream OS;
  std::unordered_map<const Type *, std::string> VarNames;
  emitType(OS, T, VarNames);
  return OS.str();
}

std::string TypeContext::toString(const TypeScheme &S) {
  std::ostringstream OS;
  std::unordered_map<const Type *, std::string> VarNames;
  if (!S.BoundVars.empty()) {
    OS << "forall";
    for (Type *BV : S.BoundVars) {
      OS << ' ';
      emitType(OS, BV, VarNames);
    }
    OS << ". ";
  }
  emitType(OS, S.Body, VarNames);
  return OS.str();
}
