//===- types/Type.h - ML semantic types ------------------------------------===//
///
/// \file
/// Semantic types for the elaborator: a mutable type graph with union-find
/// type variables (Damas-Milner style), type constructors (primitive,
/// datatype, abbreviation, and *flexible* — i.e. abstract types arising from
/// signature matching and functor parameters, which the paper's Section 4.3
/// treats specially), data constructors with their runtime representations,
/// and type schemes with rank-based generalization.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_TYPES_TYPE_H
#define SMLTC_TYPES_TYPE_H

#include "support/Arena.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace smltc {

struct TyCon;
struct DataCon;

/// Runtime representation of a data constructor, decided at declaration
/// time from the shape of the constructor list (Section 5: "concrete data
/// types are compiled into tagged data records or constants").
enum class ConRepKind : uint8_t {
  Constant,    ///< constant constructor: a tagged small integer
  Transparent, ///< sole value-carrying constructor whose payload is
               ///< statically boxed (a tuple): represented by the payload
               ///< pointer itself (like ::)
  TaggedBox,   ///< heap record [tag, payload]
  Ref,         ///< the builtin ref/array constructors (mutable cell)
};

struct ConRep {
  ConRepKind K = ConRepKind::Constant;
  int Tag = 0;
};

/// A semantic type. Nodes are arena-allocated and mutated by unification
/// (Var nodes carry union-find links).
struct Type {
  enum class Kind : uint8_t { Var, Con, Tuple, Arrow };
  Kind K;

  // --- Var ---
  int VarId = 0;
  bool IsEq = false;     ///< equality type variable (''a)
  bool IsBound = false;  ///< generalized into a scheme; never unified
  bool IsOverload = false; ///< overloaded-operator variable {int, real}
  int Depth = 0;         ///< let-depth (rank) for generalization
  Type *Link = nullptr;  ///< instantiation (union-find)

  // --- Con ---
  TyCon *Con = nullptr;
  Span<Type *> Args;

  // --- Tuple ---
  Span<Type *> Elems;

  // --- Arrow ---
  Type *From = nullptr;
  Type *To = nullptr;

  bool isVar() const { return K == Kind::Var; }
};

/// A polymorphic type scheme: forall BoundVars. Body. BoundVars are the
/// original Var nodes, flagged IsBound; instantiation substitutes fresh
/// variables for them via a copy of Body.
struct TypeScheme {
  Span<Type *> BoundVars;
  Type *Body = nullptr;

  bool isMonomorphic() const { return BoundVars.empty(); }
};

/// A type constructor.
struct TyCon {
  enum class Kind : uint8_t {
    Prim,     ///< int, real, string, bool(datatype-ish but primitive rep),
              ///< unit, ref, array, exn, cont
    Datatype, ///< user (or builtin list/bool) datatype
    Abbrev,   ///< type abbreviation
    Flexible, ///< abstract: from an opaque signature match or a functor
              ///< parameter; paper Section 4.3 forces RBOXED representations
  };
  Kind K;
  Symbol Name;
  int Arity = 0;
  bool AdmitsEq = true;
  int Stamp = 0; ///< unique identity for datatypes/flexible tycons

  // Datatype: constructor descriptors (indexes match declaration order).
  Span<DataCon *> Cons;
  /// Formal parameter variables used in constructor payload templates.
  Span<Type *> Formals;

  // Abbrev: Formals + Body.
  Type *AbbrevBody = nullptr;

  // Flexible: when a functor is applied or an abstraction is analyzed, the
  // *translator* consults the realization recorded in the thinning; the
  // tycon itself stays abstract.
};

/// A data constructor belonging to a datatype TyCon.
struct DataCon {
  Symbol Name;
  TyCon *Owner = nullptr;
  int Index = 0;
  /// Payload type in terms of Owner->Formals; null for constants.
  Type *Payload = nullptr;
  ConRep Rep;
};

/// Creation and interning context for semantic types. Owns the builtin
/// type constructors.
class TypeContext {
public:
  /// Fresh-variable and tycon-stamp counters; exported by a frozen
  /// context so a derived context can resume the exact numbering the
  /// inline (concatenated-prelude) pipeline would have reached.
  struct Counters {
    int NextVarId = 1;
    int NextStamp = 1;
  };

  TypeContext(Arena &A, StringInterner &Interner);

  /// Derives a context that *shares* an immutable base context (the
  /// prelude snapshot's): the builtin tycon/type pointers are the base's
  /// (so tycon identity holds across the boundary) and the counters
  /// resume from the base's post-elaboration values. The base is never
  /// mutated — everything new is allocated in \p A — and must outlive
  /// this context.
  TypeContext(Arena &A, StringInterner &Interner, const TypeContext &Base);

  Arena &arena() { return A; }

  Counters counters() const { return {NextVarId, NextStamp}; }

  // --- construction ---
  Type *freshVar(int Depth, bool IsEq = false);
  Type *freshOverloadVar(int Depth);
  Type *con(TyCon *TC, Span<Type *> Args = {});
  Type *con(TyCon *TC, std::vector<Type *> Args);
  Type *tuple(std::vector<Type *> Elems);
  Type *arrow(Type *From, Type *To);

  /// Follows union-find links (with path compression).
  static Type *resolve(Type *T);

  /// Expands top-level abbreviations (after resolve).
  Type *headNormalize(Type *T);

  /// Substitutes Formals[i] |-> Actuals[i] in T (used to instantiate
  /// datatype constructor payloads and abbreviation bodies).
  Type *substitute(Type *T, Span<Type *> Formals, Span<Type *> Actuals);

  /// Instantiates a scheme with fresh variables at \p Depth; the fresh
  /// variables (one per bound var) are appended to \p InstVars.
  Type *instantiate(const TypeScheme &S, int Depth,
                    std::vector<Type *> &InstVars);

  /// Generalizes variables of depth > Depth occurring in T. The affected
  /// var nodes are flagged IsBound.
  TypeScheme generalize(Type *T, int Depth);

  /// True if T admits equality (for equality type variables).
  bool admitsEquality(Type *T);

  /// Structural equality of two resolved types (no unification).
  bool sameType(Type *T1, Type *T2);

  /// Creates a fresh datatype tycon (constructors attached by caller).
  TyCon *makeDatatype(Symbol Name, int Arity);
  /// Creates a fresh flexible (abstract) tycon.
  TyCon *makeFlexible(Symbol Name, int Arity, bool AdmitsEq);
  /// Creates a type abbreviation.
  TyCon *makeAbbrev(Symbol Name, Span<Type *> Formals, Type *Body);

  /// Decides constructor representations for a datatype whose constructors
  /// are attached. Mirrors SML/NJ's policy (see DESIGN.md Section 5).
  void assignConReps(TyCon *Datatype);

  /// Renders a type for diagnostics.
  std::string toString(Type *T);
  std::string toString(const TypeScheme &S);

  // --- builtins ---
  TyCon *IntTycon;
  TyCon *RealTycon;
  TyCon *StringTycon;
  TyCon *UnitTycon;
  TyCon *BoolTycon;
  TyCon *ListTycon;
  TyCon *RefTycon;
  TyCon *ArrayTycon;
  TyCon *ExnTycon;
  TyCon *ContTycon;

  DataCon *TrueCon;
  DataCon *FalseCon;
  DataCon *NilCon;
  DataCon *ConsCon;
  DataCon *RefCon;

  Type *IntType;
  Type *RealType;
  Type *StringType;
  Type *UnitType;
  Type *BoolType;
  Type *ExnType;

  Type *listOf(Type *Elem);
  Type *refOf(Type *Elem);
  Type *arrayOf(Type *Elem);
  Type *contOf(Type *Elem);

private:
  /// True if payload type is statically always a pointer (tuple with >= 1
  /// fields, or string); decides Transparent eligibility.
  bool isStaticallyBoxed(Type *T);

  Arena &A;
  StringInterner &Interner;
  int NextVarId = 1;
  int NextStamp = 1;
};

} // namespace smltc

#endif // SMLTC_TYPES_TYPE_H
