//===- ast/Parser.cpp - MiniML parser --------------------------------------===//

#include "ast/Parser.h"

#include <cassert>
#include <string>

using namespace smltc;
using namespace smltc::ast;

/// Fixed SML default fixities. Returns precedence or 0 if not infix.
/// RightAssoc is set for the right-associative list operators.
static int infixPrec(std::string_view Name, bool &RightAssoc) {
  RightAssoc = false;
  if (Name == "*" || Name == "/" || Name == "div" || Name == "mod" ||
      Name == "quot" || Name == "rem")
    return 7;
  if (Name == "+" || Name == "-" || Name == "^")
    return 6;
  if (Name == "::" || Name == "@") {
    RightAssoc = true;
    return 5;
  }
  if (Name == "=" || Name == "<>" || Name == "<" || Name == ">" ||
      Name == "<=" || Name == ">=")
    return 4;
  if (Name == ":=" || Name == "o")
    return 3;
  return 0;
}

void Parser::expect(TokKind K, const char *Ctx) {
  if (at(K)) {
    bump();
    return;
  }
  Diags.error(Tok.Loc, std::string("expected ") + tokKindName(K) + " in " +
                           Ctx + ", found " + tokKindName(Tok.Kind));
}

Symbol Parser::expectIdent(const char *Ctx) {
  if (at(TokKind::Ident)) {
    Symbol S = Tok.Text;
    bump();
    return S;
  }
  Diags.error(Tok.Loc, std::string("expected identifier in ") + Ctx +
                           ", found " + tokKindName(Tok.Kind));
  return Interner.intern("<error>");
}

LongId Parser::makeLongId(Symbol S) {
  Symbol *Mem = A.copyArray(&S, 1);
  return LongId{Span<Symbol>(Mem, 1)};
}

LongId Parser::parseLongId() {
  std::vector<Symbol> Parts;
  Parts.push_back(expectIdent("long identifier"));
  while (at(TokKind::Dot)) {
    bump();
    Parts.push_back(expectIdent("long identifier"));
  }
  return LongId{Span<Symbol>::copy(A, Parts)};
}

Span<Symbol> Parser::parseTyVarSeq() {
  std::vector<Symbol> Vars;
  if (at(TokKind::TyVar) || at(TokKind::EqTyVar)) {
    Vars.push_back(Tok.Text);
    bump();
  } else if (at(TokKind::LParen) &&
             (Ahead.Kind == TokKind::TyVar || Ahead.Kind == TokKind::EqTyVar)) {
    bump();
    for (;;) {
      if (!at(TokKind::TyVar) && !at(TokKind::EqTyVar)) {
        Diags.error(Tok.Loc, "expected type variable");
        break;
      }
      Vars.push_back(Tok.Text);
      bump();
      if (!eat(TokKind::Comma))
        break;
    }
    expect(TokKind::RParen, "type variable sequence");
  }
  return Span<Symbol>::copy(A, Vars);
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Ty *Parser::parseTy() {
  Ty *Lhs = parseTupleTy();
  if (at(TokKind::Arrow)) {
    bump();
    Ty *Rhs = parseTy(); // right associative
    Ty *T = A.create<Ty>();
    T->K = Ty::Kind::Arrow;
    T->Loc = Lhs->Loc;
    T->From = Lhs;
    T->To = Rhs;
    return T;
  }
  return Lhs;
}

Ty *Parser::parseTupleTy() {
  Ty *First = parseConTy();
  if (!atIdent("*"))
    return First;
  std::vector<Ty *> Elems{First};
  while (atIdent("*")) {
    bump();
    Elems.push_back(parseConTy());
  }
  Ty *T = A.create<Ty>();
  T->K = Ty::Kind::Tuple;
  T->Loc = First->Loc;
  T->Elems = Span<Ty *>::copy(A, Elems);
  return T;
}

Ty *Parser::parseConTy() {
  Ty *Base = parseAtTy();
  // Postfix type constructor application: `int list`, `int list list`.
  while (at(TokKind::Ident) && !atIdent("*")) {
    bool RA;
    if (infixPrec(Tok.Text.str(), RA) != 0)
      break; // an infix operator cannot be a postfix tycon here
    SourceLoc Loc = Tok.Loc;
    LongId Name = parseLongId();
    Ty *T = A.create<Ty>();
    T->K = Ty::Kind::Con;
    T->Loc = Loc;
    Ty **ArgMem = A.copyArray(&Base, 1);
    T->Args = Span<Ty *>(ArgMem, 1);
    T->ConName = Name;
    Base = T;
  }
  return Base;
}

Ty *Parser::parseAtTy() {
  SourceLoc Loc = Tok.Loc;
  if (at(TokKind::TyVar) || at(TokKind::EqTyVar)) {
    Ty *T = A.create<Ty>();
    T->K = Ty::Kind::Var;
    T->Loc = Loc;
    T->VarName = Tok.Text;
    T->IsEqVar = at(TokKind::EqTyVar);
    bump();
    return T;
  }
  if (at(TokKind::LParen)) {
    bump();
    std::vector<Ty *> Elems;
    Elems.push_back(parseTy());
    while (eat(TokKind::Comma))
      Elems.push_back(parseTy());
    expect(TokKind::RParen, "parenthesized type");
    if (Elems.size() == 1)
      return Elems[0];
    // (t1, ..., tn) must be followed by a type constructor name.
    LongId Name = parseLongId();
    Ty *T = A.create<Ty>();
    T->K = Ty::Kind::Con;
    T->Loc = Loc;
    T->Args = Span<Ty *>::copy(A, Elems);
    T->ConName = Name;
    return T;
  }
  if (at(TokKind::Ident)) {
    LongId Name = parseLongId();
    Ty *T = A.create<Ty>();
    T->K = Ty::Kind::Con;
    T->Loc = Loc;
    T->ConName = Name;
    return T;
  }
  Diags.error(Loc, std::string("expected type, found ") +
                       tokKindName(Tok.Kind));
  bump();
  Ty *T = A.create<Ty>();
  T->K = Ty::Kind::Con;
  T->Loc = Loc;
  T->ConName = makeLongId(Interner.intern("unit"));
  return T;
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

bool Parser::startsAtPat() const {
  switch (Tok.Kind) {
  case TokKind::Underscore:
  case TokKind::IntLit:
  case TokKind::StringLit:
  case TokKind::LParen:
  case TokKind::LBracket:
    return true;
  case TokKind::Ident: {
    // An infix operator (e.g. ::) does not start an atomic pattern.
    bool RA;
    return infixPrec(Tok.Text.str(), RA) == 0;
  }
  default:
    return false;
  }
}

Pat *Parser::parsePat() {
  Pat *P = parseConsPat();
  while (at(TokKind::Colon)) {
    bump();
    Ty *T = parseTy();
    Pat *Typed = A.create<Pat>();
    Typed->K = Pat::Kind::Typed;
    Typed->Loc = P->Loc;
    Typed->Arg = P;
    Typed->Annot = T;
    P = Typed;
  }
  return P;
}

Pat *Parser::parseConsPat() {
  Pat *Lhs = parseAppPat();
  if (!atIdent("::"))
    return Lhs;
  SourceLoc Loc = Tok.Loc;
  Symbol Cons = Tok.Text;
  bump();
  Pat *Rhs = parseConsPat(); // right associative
  Pat *Pair = A.create<Pat>();
  Pair->K = Pat::Kind::Tuple;
  Pair->Loc = Loc;
  Pat *Elems[2] = {Lhs, Rhs};
  Pair->Elems = Span<Pat *>(A.copyArray(Elems, 2), 2);
  Pat *P = A.create<Pat>();
  P->K = Pat::Kind::App;
  P->Loc = Loc;
  P->Name = makeLongId(Cons);
  P->Arg = Pair;
  return P;
}

Pat *Parser::parseAppPat() {
  if (!at(TokKind::Ident))
    return parseAtPat();
  bool RA;
  if (infixPrec(Tok.Text.str(), RA) != 0)
    return parseAtPat();
  // An identifier: maybe a constructor application, maybe a layered pattern.
  SourceLoc Loc = Tok.Loc;
  LongId Name = parseLongId();
  if (!Name.isQualified() && atIdent("as")) {
    bump();
    Pat *Inner = parsePat();
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Layered;
    P->Loc = Loc;
    P->AsVar = Name.name();
    P->Arg = Inner;
    return P;
  }
  if (startsAtPat() && !atIdent("as")) {
    Pat *Arg = parseAtPat();
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::App;
    P->Loc = Loc;
    P->Name = Name;
    P->Arg = Arg;
    return P;
  }
  Pat *P = A.create<Pat>();
  P->K = Pat::Kind::Ident;
  P->Loc = Loc;
  P->Name = Name;
  return P;
}

Pat *Parser::parseAtPat() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokKind::Underscore: {
    bump();
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Wild;
    P->Loc = Loc;
    return P;
  }
  case TokKind::IntLit: {
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Int;
    P->Loc = Loc;
    P->IntValue = Tok.IntValue;
    bump();
    return P;
  }
  case TokKind::StringLit: {
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::String;
    P->Loc = Loc;
    P->StrValue = Interner.intern(Tok.StrValue);
    bump();
    return P;
  }
  case TokKind::Ident: {
    LongId Name = parseLongId();
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Ident;
    P->Loc = Loc;
    P->Name = Name;
    return P;
  }
  case TokKind::LParen: {
    bump();
    if (eat(TokKind::RParen)) {
      Pat *P = A.create<Pat>();
      P->K = Pat::Kind::Tuple;
      P->Loc = Loc;
      return P; // unit pattern
    }
    std::vector<Pat *> Elems;
    Elems.push_back(parsePat());
    while (eat(TokKind::Comma))
      Elems.push_back(parsePat());
    expect(TokKind::RParen, "parenthesized pattern");
    if (Elems.size() == 1)
      return Elems[0];
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Tuple;
    P->Loc = Loc;
    P->Elems = Span<Pat *>::copy(A, Elems);
    return P;
  }
  case TokKind::LBracket: {
    bump();
    std::vector<Pat *> Elems;
    if (!at(TokKind::RBracket)) {
      Elems.push_back(parsePat());
      while (eat(TokKind::Comma))
        Elems.push_back(parsePat());
    }
    expect(TokKind::RBracket, "list pattern");
    // Desugar to p1 :: ... :: nil.
    Pat *Acc = A.create<Pat>();
    Acc->K = Pat::Kind::Ident;
    Acc->Loc = Loc;
    Acc->Name = makeLongId(Interner.intern("nil"));
    for (size_t I = Elems.size(); I-- > 0;) {
      Pat *Pair = A.create<Pat>();
      Pair->K = Pat::Kind::Tuple;
      Pair->Loc = Loc;
      Pat *Two[2] = {Elems[I], Acc};
      Pair->Elems = Span<Pat *>(A.copyArray(Two, 2), 2);
      Pat *ConsP = A.create<Pat>();
      ConsP->K = Pat::Kind::App;
      ConsP->Loc = Loc;
      ConsP->Name = makeLongId(Interner.intern("::"));
      ConsP->Arg = Pair;
      Acc = ConsP;
    }
    return Acc;
  }
  default:
    Diags.error(Loc, std::string("expected pattern, found ") +
                         tokKindName(Tok.Kind));
    bump();
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Wild;
    P->Loc = Loc;
    return P;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

bool Parser::startsAtExp() const {
  switch (Tok.Kind) {
  case TokKind::IntLit:
  case TokKind::RealLit:
  case TokKind::StringLit:
  case TokKind::LParen:
  case TokKind::LBracket:
  case TokKind::KwLet:
  case TokKind::KwOp:
  case TokKind::Hash:
    return true;
  case TokKind::Ident: {
    // An infix operator is not the start of an (atomic) operand.
    bool RA;
    return infixPrec(Tok.Text.str(), RA) == 0;
  }
  default:
    return false;
  }
}

Exp *Parser::identExp(Symbol S, SourceLoc Loc) {
  Exp *E = A.create<Exp>();
  E->K = Exp::Kind::Ident;
  E->Loc = Loc;
  E->Name = makeLongId(S);
  return E;
}

Span<Rule> Parser::parseMatch() {
  std::vector<Rule> Rules;
  for (;;) {
    Pat *P = parsePat();
    expect(TokKind::DArrow, "match rule");
    Exp *E = parseExp();
    Rules.push_back(Rule{P, E});
    if (!eat(TokKind::Bar))
      break;
  }
  return Span<Rule>::copy(A, Rules);
}

Exp *Parser::parseExp() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokKind::KwRaise: {
    bump();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Raise;
    E->Loc = Loc;
    E->Arg = parseExp();
    return E;
  }
  case TokKind::KwIf: {
    bump();
    Exp *C = parseExp();
    expect(TokKind::KwThen, "if expression");
    Exp *T = parseExp();
    expect(TokKind::KwElse, "if expression");
    Exp *F = parseExp();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::If;
    E->Loc = Loc;
    E->Scrut = C;
    E->Then = T;
    E->Else = F;
    return E;
  }
  case TokKind::KwCase: {
    bump();
    Exp *S = parseExp();
    expect(TokKind::KwOf, "case expression");
    Span<Rule> Rules = parseMatch();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Case;
    E->Loc = Loc;
    E->Scrut = S;
    E->Rules = Rules;
    return E;
  }
  case TokKind::KwFn: {
    bump();
    Span<Rule> Rules = parseMatch();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Fn;
    E->Loc = Loc;
    E->Rules = Rules;
    return E;
  }
  default:
    break;
  }
  Exp *E = parseOrelse();
  while (at(TokKind::KwHandle)) {
    bump();
    Span<Rule> Rules = parseMatch();
    Exp *H = A.create<Exp>();
    H->K = Exp::Kind::Handle;
    H->Loc = Loc;
    H->Arg = E;
    H->Rules = Rules;
    E = H;
  }
  return E;
}

Exp *Parser::parseOrelse() {
  Exp *L = parseAndalso();
  while (at(TokKind::KwOrelse)) {
    SourceLoc Loc = Tok.Loc;
    bump();
    Exp *R = parseAndalso();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Orelse;
    E->Loc = Loc;
    E->Then = L;
    E->Else = R;
    L = E;
  }
  return L;
}

Exp *Parser::parseAndalso() {
  Exp *L = parseTypedExp();
  while (at(TokKind::KwAndalso)) {
    SourceLoc Loc = Tok.Loc;
    bump();
    Exp *R = parseTypedExp();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Andalso;
    E->Loc = Loc;
    E->Then = L;
    E->Else = R;
    L = E;
  }
  return L;
}

Exp *Parser::parseTypedExp() {
  Exp *L = parseInfixExp(1);
  while (at(TokKind::Colon)) {
    bump();
    Ty *T = parseTy();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Typed;
    E->Loc = L->Loc;
    E->Arg = L;
    E->Annot = T;
    L = E;
  }
  return L;
}

Exp *Parser::parseInfixExp(int MinPrec) {
  Exp *Lhs = parseAppExp();
  for (;;) {
    Symbol OpName;
    if (at(TokKind::Ident)) {
      OpName = Tok.Text;
    } else if (at(TokKind::Equal)) {
      OpName = Interner.intern("=");
    } else {
      break;
    }
    bool RightAssoc;
    int Prec = infixPrec(OpName.str(), RightAssoc);
    if (Prec == 0 || Prec < MinPrec)
      break;
    SourceLoc Loc = Tok.Loc;
    bump();
    Exp *Rhs = parseInfixExp(RightAssoc ? Prec : Prec + 1);
    Exp *Pair = A.create<Exp>();
    Pair->K = Exp::Kind::Tuple;
    Pair->Loc = Loc;
    Exp *Two[2] = {Lhs, Rhs};
    Pair->Elems = Span<Exp *>(A.copyArray(Two, 2), 2);
    Exp *Call = A.create<Exp>();
    Call->K = Exp::Kind::App;
    Call->Loc = Loc;
    Call->Fun = identExp(OpName, Loc);
    Call->Arg = Pair;
    Lhs = Call;
  }
  return Lhs;
}

Exp *Parser::parseAppExp() {
  Exp *F = parseAtExp();
  while (startsAtExp()) {
    Exp *Arg = parseAtExp();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::App;
    E->Loc = F->Loc;
    E->Fun = F;
    E->Arg = Arg;
    F = E;
  }
  return F;
}

Exp *Parser::parseAtExp() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokKind::IntLit: {
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Int;
    E->Loc = Loc;
    E->IntValue = Tok.IntValue;
    bump();
    return E;
  }
  case TokKind::RealLit: {
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Real;
    E->Loc = Loc;
    E->RealValue = Tok.RealValue;
    bump();
    return E;
  }
  case TokKind::StringLit: {
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::String;
    E->Loc = Loc;
    E->StrValue = Interner.intern(Tok.StrValue);
    bump();
    return E;
  }
  case TokKind::KwOp: {
    // `op +` names an infix operator as a value.
    bump();
    Symbol Name;
    if (at(TokKind::Ident)) {
      Name = Tok.Text;
      bump();
    } else if (at(TokKind::Equal)) {
      Name = Interner.intern("=");
      bump();
    } else {
      Diags.error(Tok.Loc, "expected operator after 'op'");
      Name = Interner.intern("<error>");
    }
    return identExp(Name, Loc);
  }
  case TokKind::Hash: {
    bump();
    if (!at(TokKind::IntLit)) {
      Diags.error(Tok.Loc, "expected integer after '#'");
      return identExp(Interner.intern("<error>"), Loc);
    }
    int Index = static_cast<int>(Tok.IntValue);
    bump();
    Exp *Arg = parseAtExp();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Select;
    E->Loc = Loc;
    E->SelectIndex = Index;
    E->Arg = Arg;
    return E;
  }
  case TokKind::Ident: {
    LongId Name = parseLongId();
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Ident;
    E->Loc = Loc;
    E->Name = Name;
    return E;
  }
  case TokKind::LParen: {
    bump();
    if (eat(TokKind::RParen)) {
      Exp *E = A.create<Exp>();
      E->K = Exp::Kind::Tuple;
      E->Loc = Loc;
      return E; // unit
    }
    Exp *First = parseExp();
    if (at(TokKind::Comma)) {
      std::vector<Exp *> Elems{First};
      while (eat(TokKind::Comma))
        Elems.push_back(parseExp());
      expect(TokKind::RParen, "tuple expression");
      Exp *E = A.create<Exp>();
      E->K = Exp::Kind::Tuple;
      E->Loc = Loc;
      E->Elems = Span<Exp *>::copy(A, Elems);
      return E;
    }
    if (at(TokKind::Semi)) {
      std::vector<Exp *> Elems{First};
      while (eat(TokKind::Semi))
        Elems.push_back(parseExp());
      expect(TokKind::RParen, "sequence expression");
      Exp *E = A.create<Exp>();
      E->K = Exp::Kind::Seq;
      E->Loc = Loc;
      E->Elems = Span<Exp *>::copy(A, Elems);
      return E;
    }
    expect(TokKind::RParen, "parenthesized expression");
    return First;
  }
  case TokKind::LBracket: {
    bump();
    std::vector<Exp *> Elems;
    if (!at(TokKind::RBracket)) {
      Elems.push_back(parseExp());
      while (eat(TokKind::Comma))
        Elems.push_back(parseExp());
    }
    expect(TokKind::RBracket, "list expression");
    // Desugar to e1 :: ... :: nil.
    Exp *Acc = identExp(Interner.intern("nil"), Loc);
    for (size_t I = Elems.size(); I-- > 0;) {
      Exp *Pair = A.create<Exp>();
      Pair->K = Exp::Kind::Tuple;
      Pair->Loc = Loc;
      Exp *Two[2] = {Elems[I], Acc};
      Pair->Elems = Span<Exp *>(A.copyArray(Two, 2), 2);
      Exp *Call = A.create<Exp>();
      Call->K = Exp::Kind::App;
      Call->Loc = Loc;
      Call->Fun = identExp(Interner.intern("::"), Loc);
      Call->Arg = Pair;
      Acc = Call;
    }
    return Acc;
  }
  case TokKind::KwLet: {
    bump();
    std::vector<Dec *> Decs;
    while (startsDec())
      Decs.push_back(parseDec());
    expect(TokKind::KwIn, "let expression");
    std::vector<Exp *> Body;
    Body.push_back(parseExp());
    while (eat(TokKind::Semi))
      Body.push_back(parseExp());
    expect(TokKind::KwEnd, "let expression");
    Exp *E = A.create<Exp>();
    E->K = Exp::Kind::Let;
    E->Loc = Loc;
    E->Decs = Span<Dec *>::copy(A, Decs);
    E->Elems = Span<Exp *>::copy(A, Body);
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokKindName(Tok.Kind));
    bump();
    return identExp(Interner.intern("<error>"), Loc);
  }
}

//===----------------------------------------------------------------------===//
// Declarations and modules
//===----------------------------------------------------------------------===//

bool Parser::startsDec() const {
  switch (Tok.Kind) {
  case TokKind::KwVal:
  case TokKind::KwFun:
  case TokKind::KwDatatype:
  case TokKind::KwType:
  case TokKind::KwException:
  case TokKind::KwStructure:
  case TokKind::KwSignature:
  case TokKind::KwFunctor:
  case TokKind::KwAbstraction:
    return true;
  default:
    return false;
  }
}

DatBind Parser::parseDatBind() {
  DatBind DB;
  DB.TyVars = parseTyVarSeq();
  DB.Name = expectIdent("datatype binding");
  expect(TokKind::Equal, "datatype binding");
  std::vector<ConBind> Cons;
  for (;;) {
    ConBind CB;
    CB.Name = expectIdent("constructor binding");
    CB.OfTy = nullptr;
    if (at(TokKind::KwOf)) {
      bump();
      CB.OfTy = parseTy();
    }
    Cons.push_back(CB);
    if (!eat(TokKind::Bar))
      break;
  }
  DB.Cons = Span<ConBind>::copy(A, Cons);
  return DB;
}

Dec *Parser::parseDec() {
  SourceLoc Loc = Tok.Loc;
  Dec *D = A.create<Dec>();
  D->Loc = Loc;
  switch (Tok.Kind) {
  case TokKind::KwVal: {
    bump();
    if (at(TokKind::KwRec)) {
      bump();
      D->K = Dec::Kind::ValRec;
      std::vector<Symbol> Names;
      std::vector<Exp *> Exps;
      for (;;) {
        Names.push_back(expectIdent("val rec binding"));
        expect(TokKind::Equal, "val rec binding");
        Exps.push_back(parseExp());
        if (!eat(TokKind::KwAnd))
          break;
      }
      D->RecNames = Span<Symbol>::copy(A, Names);
      D->RecExps = Span<Exp *>::copy(A, Exps);
      return D;
    }
    D->K = Dec::Kind::Val;
    D->ValPat = parsePat();
    expect(TokKind::Equal, "val binding");
    D->ValExp = parseExp();
    return D;
  }
  case TokKind::KwFun: {
    bump();
    D->K = Dec::Kind::Fun;
    std::vector<FunBind> Binds;
    for (;;) {
      FunBind FB;
      FB.Loc = Tok.Loc;
      eat(TokKind::KwOp); // `fun op @ (...) = ...`
      FB.Name = expectIdent("fun binding");
      std::vector<FunClause> Clauses;
      for (;;) {
        FunClause C;
        std::vector<Pat *> Params;
        while (startsAtPat())
          Params.push_back(parseAtPat());
        if (Params.empty())
          Diags.error(Tok.Loc, "function clause has no parameters");
        C.Params = Span<Pat *>::copy(A, Params);
        C.ResultAnnot = nullptr;
        if (at(TokKind::Colon)) {
          bump();
          C.ResultAnnot = parseTy();
        }
        expect(TokKind::Equal, "fun clause");
        C.Body = parseExp();
        Clauses.push_back(C);
        if (!at(TokKind::Bar))
          break;
        bump();
        eat(TokKind::KwOp);
        Symbol Again = expectIdent("fun clause");
        if (Again != FB.Name)
          Diags.error(Tok.Loc, "clauses of a fun binding must repeat the "
                               "function name");
      }
      FB.Clauses = Span<FunClause>::copy(A, Clauses);
      Binds.push_back(FB);
      if (!eat(TokKind::KwAnd))
        break;
    }
    D->FunBinds = Span<FunBind>::copy(A, Binds);
    return D;
  }
  case TokKind::KwDatatype: {
    bump();
    D->K = Dec::Kind::Datatype;
    std::vector<DatBind> Binds;
    Binds.push_back(parseDatBind());
    while (eat(TokKind::KwAnd))
      Binds.push_back(parseDatBind());
    D->DatBinds = Span<DatBind>::copy(A, Binds);
    return D;
  }
  case TokKind::KwType: {
    bump();
    D->K = Dec::Kind::TypeAbbrev;
    D->TyVars = parseTyVarSeq();
    D->TypeName = expectIdent("type abbreviation");
    expect(TokKind::Equal, "type abbreviation");
    D->TypeBody = parseTy();
    return D;
  }
  case TokKind::KwException: {
    bump();
    D->K = Dec::Kind::Exception;
    D->ExnName = expectIdent("exception declaration");
    if (at(TokKind::KwOf)) {
      bump();
      D->ExnOfTy = parseTy();
    }
    return D;
  }
  case TokKind::KwStructure:
  case TokKind::KwAbstraction: {
    bool IsAbstraction = at(TokKind::KwAbstraction);
    bump();
    D->K = Dec::Kind::Structure;
    D->StrName = expectIdent("structure declaration");
    D->StrConstraint = SigConstraintKind::None;
    if (at(TokKind::Colon) || at(TokKind::ColonGt)) {
      bool Opaque = at(TokKind::ColonGt) || IsAbstraction;
      bump();
      D->StrConstraint = Opaque ? SigConstraintKind::Opaque
                                : SigConstraintKind::Transparent;
      D->StrSig = parseSigExp();
    } else if (IsAbstraction) {
      Diags.error(Tok.Loc, "abstraction declaration requires a signature");
    }
    expect(TokKind::Equal, "structure declaration");
    D->StrBody = parseStrExp();
    return D;
  }
  case TokKind::KwSignature: {
    bump();
    D->K = Dec::Kind::Signature;
    D->SigName = expectIdent("signature declaration");
    expect(TokKind::Equal, "signature declaration");
    D->SigBody = parseSigExp();
    return D;
  }
  case TokKind::KwFunctor: {
    bump();
    D->K = Dec::Kind::Functor;
    D->FctName = expectIdent("functor declaration");
    expect(TokKind::LParen, "functor declaration");
    D->FctArgName = expectIdent("functor parameter");
    expect(TokKind::Colon, "functor parameter");
    D->FctArgSig = parseSigExp();
    expect(TokKind::RParen, "functor declaration");
    D->FctConstraint = SigConstraintKind::None;
    if (at(TokKind::Colon) || at(TokKind::ColonGt)) {
      D->FctConstraint = at(TokKind::ColonGt) ? SigConstraintKind::Opaque
                                              : SigConstraintKind::Transparent;
      bump();
      D->FctResultSig = parseSigExp();
    }
    expect(TokKind::Equal, "functor declaration");
    D->FctBody = parseStrExp();
    return D;
  }
  default:
    Diags.error(Loc, std::string("expected declaration, found ") +
                         tokKindName(Tok.Kind));
    bump();
    D->K = Dec::Kind::Val;
    Pat *P = A.create<Pat>();
    P->K = Pat::Kind::Wild;
    P->Loc = Loc;
    D->ValPat = P;
    D->ValExp = identExp(Interner.intern("<error>"), Loc);
    return D;
  }
}

StrExp *Parser::parseStrExp() {
  SourceLoc Loc = Tok.Loc;
  StrExp *S = A.create<StrExp>();
  S->Loc = Loc;
  if (at(TokKind::KwStruct)) {
    bump();
    S->K = StrExp::Kind::Struct;
    std::vector<Dec *> Decs;
    while (startsDec())
      Decs.push_back(parseDec());
    expect(TokKind::KwEnd, "struct expression");
    S->Decs = Span<Dec *>::copy(A, Decs);
    return S;
  }
  if (at(TokKind::Ident)) {
    // Either a structure path or a functor application F(strexp).
    if (Ahead.Kind == TokKind::LParen) {
      S->K = StrExp::Kind::App;
      S->FctName = Tok.Text;
      bump();
      expect(TokKind::LParen, "functor application");
      S->Arg = parseStrExp();
      expect(TokKind::RParen, "functor application");
      return S;
    }
    S->K = StrExp::Kind::Var;
    S->Name = parseLongId();
    return S;
  }
  Diags.error(Loc, std::string("expected structure expression, found ") +
                       tokKindName(Tok.Kind));
  bump();
  S->K = StrExp::Kind::Struct;
  return S;
}

SigExp *Parser::parseSigExp() {
  SourceLoc Loc = Tok.Loc;
  SigExp *S = A.create<SigExp>();
  S->Loc = Loc;
  if (at(TokKind::KwSig)) {
    bump();
    S->K = SigExp::Kind::Sig;
    std::vector<Spec *> Specs;
    while (!at(TokKind::KwEnd) && !at(TokKind::Eof)) {
      Specs.push_back(parseSpec());
      eat(TokKind::Semi);
    }
    expect(TokKind::KwEnd, "signature expression");
    S->Specs = Span<Spec *>::copy(A, Specs);
    return S;
  }
  if (at(TokKind::Ident)) {
    S->K = SigExp::Kind::Var;
    S->Name = Tok.Text;
    bump();
    return S;
  }
  Diags.error(Loc, std::string("expected signature expression, found ") +
                       tokKindName(Tok.Kind));
  bump();
  S->K = SigExp::Kind::Sig;
  return S;
}

Spec *Parser::parseSpec() {
  SourceLoc Loc = Tok.Loc;
  Spec *Sp = A.create<Spec>();
  Sp->Loc = Loc;
  switch (Tok.Kind) {
  case TokKind::KwVal: {
    bump();
    Sp->K = Spec::Kind::Val;
    Sp->Name = expectIdent("value specification");
    expect(TokKind::Colon, "value specification");
    Sp->ValTy = parseTy();
    return Sp;
  }
  case TokKind::KwType: {
    bump();
    Sp->K = Spec::Kind::Type;
    Sp->TyVars = parseTyVarSeq();
    Sp->Name = expectIdent("type specification");
    if (at(TokKind::Equal)) {
      bump();
      Sp->Manifest = parseTy();
    }
    return Sp;
  }
  case TokKind::KwDatatype: {
    bump();
    Sp->K = Spec::Kind::Datatype;
    Sp->DatB = parseDatBind();
    Sp->Name = Sp->DatB.Name;
    return Sp;
  }
  case TokKind::KwException: {
    bump();
    Sp->K = Spec::Kind::Exception;
    Sp->Name = expectIdent("exception specification");
    if (at(TokKind::KwOf)) {
      bump();
      Sp->ExnOfTy = parseTy();
    }
    return Sp;
  }
  case TokKind::KwStructure: {
    bump();
    Sp->K = Spec::Kind::Structure;
    Sp->Name = expectIdent("structure specification");
    expect(TokKind::Colon, "structure specification");
    Sp->StrSig = parseSigExp();
    return Sp;
  }
  default:
    Diags.error(Loc, std::string("expected specification, found ") +
                         tokKindName(Tok.Kind));
    bump();
    Sp->K = Spec::Kind::Type;
    Sp->Name = Interner.intern("<error>");
    return Sp;
  }
}

Program Parser::parseProgram() {
  std::vector<Dec *> Decs;
  while (!at(TokKind::Eof)) {
    if (at(TokKind::Semi)) {
      bump();
      continue;
    }
    if (!startsDec()) {
      Diags.error(Tok.Loc,
                  std::string("expected top-level declaration, found ") +
                      tokKindName(Tok.Kind));
      bump();
      continue;
    }
    Decs.push_back(parseDec());
  }
  return Program{Span<Dec *>::copy(A, Decs)};
}
