//===- ast/Token.h - Token definitions ------------------------------------===//
///
/// \file
/// Tokens for the MiniML (Standard ML subset) lexer. Reserved words and
/// reserved symbolic tokens follow the SML Definition; symbolic identifiers
/// (`::`, `:=`, `<=`, ...) lex as Ident with maximal munch.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_AST_TOKEN_H
#define SMLTC_AST_TOKEN_H

#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>

namespace smltc {

enum class TokKind : uint8_t {
  Eof,
  // Literals.
  IntLit,   ///< 4, ~3
  RealLit,  ///< 3.14, 1e~7
  StringLit,
  // Identifiers.
  Ident,    ///< alphanumeric or symbolic identifier
  TyVar,    ///< 'a
  EqTyVar,  ///< ''a
  // Reserved words.
  KwAbstraction, KwAnd, KwAndalso, KwCase, KwDatatype, KwElse, KwEnd,
  KwException, KwFn, KwFun, KwFunctor, KwHandle, KwIf, KwIn, KwLet, KwOf,
  KwOp, KwOrelse, KwRaise, KwRec, KwSig, KwSignature, KwStruct, KwStructure,
  KwThen, KwType, KwVal,
  // Reserved punctuation / symbolic tokens.
  LParen, RParen, LBracket, RBracket, Comma, Semi, Underscore, Dot,
  Bar,        ///< |
  Equal,      ///< =
  DArrow,     ///< =>
  Arrow,      ///< ->
  Colon,      ///< :
  ColonGt,    ///< :>
  Hash,       ///< #
};

/// One lexed token. Text-bearing kinds carry an interned Symbol; literals
/// carry their decoded value.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  Symbol Text;           ///< Ident / TyVar / EqTyVar name.
  int64_t IntValue = 0;  ///< IntLit.
  double RealValue = 0;  ///< RealLit.
  std::string StrValue;  ///< StringLit (decoded escapes).
};

/// Returns a printable name for a token kind (for diagnostics).
const char *tokKindName(TokKind K);

} // namespace smltc

#endif // SMLTC_AST_TOKEN_H
