//===- ast/Lexer.cpp - MiniML lexer ----------------------------------------===//

#include "ast/Lexer.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

using namespace smltc;

const char *smltc::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "end of input";
  case TokKind::IntLit: return "integer literal";
  case TokKind::RealLit: return "real literal";
  case TokKind::StringLit: return "string literal";
  case TokKind::Ident: return "identifier";
  case TokKind::TyVar: return "type variable";
  case TokKind::EqTyVar: return "equality type variable";
  case TokKind::KwAbstraction: return "'abstraction'";
  case TokKind::KwAnd: return "'and'";
  case TokKind::KwAndalso: return "'andalso'";
  case TokKind::KwCase: return "'case'";
  case TokKind::KwDatatype: return "'datatype'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwEnd: return "'end'";
  case TokKind::KwException: return "'exception'";
  case TokKind::KwFn: return "'fn'";
  case TokKind::KwFun: return "'fun'";
  case TokKind::KwFunctor: return "'functor'";
  case TokKind::KwHandle: return "'handle'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwIn: return "'in'";
  case TokKind::KwLet: return "'let'";
  case TokKind::KwOf: return "'of'";
  case TokKind::KwOp: return "'op'";
  case TokKind::KwOrelse: return "'orelse'";
  case TokKind::KwRaise: return "'raise'";
  case TokKind::KwRec: return "'rec'";
  case TokKind::KwSig: return "'sig'";
  case TokKind::KwSignature: return "'signature'";
  case TokKind::KwStruct: return "'struct'";
  case TokKind::KwStructure: return "'structure'";
  case TokKind::KwThen: return "'then'";
  case TokKind::KwType: return "'type'";
  case TokKind::KwVal: return "'val'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Comma: return "','";
  case TokKind::Semi: return "';'";
  case TokKind::Underscore: return "'_'";
  case TokKind::Dot: return "'.'";
  case TokKind::Bar: return "'|'";
  case TokKind::Equal: return "'='";
  case TokKind::DArrow: return "'=>'";
  case TokKind::Arrow: return "'->'";
  case TokKind::Colon: return "':'";
  case TokKind::ColonGt: return "':>'";
  case TokKind::Hash: return "'#'";
  }
  return "<unknown token>";
}

char Lexer::advance() {
  assert(Pos < Src.size());
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

static bool isSymbolicChar(char C) {
  switch (C) {
  case '!': case '%': case '&': case '$': case '+': case '-': case '/':
  case ':': case '<': case '=': case '>': case '?': case '@': case '\\':
  case '~': case '`': case '^': case '|': case '*': case '#':
    return true;
  default:
    return false;
  }
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '(' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      int Depth = 1;
      while (Depth > 0) {
        if (Pos >= Src.size()) {
          Diags.error(Start, "unterminated comment");
          return;
        }
        char D = advance();
        if (D == '(' && peek() == '*') {
          advance();
          ++Depth;
        } else if (D == '*' && peek() == ')') {
          advance();
          --Depth;
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexNumber(bool Negative) {
  std::string Digits;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits.push_back(advance());
  bool IsReal = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsReal = true;
    Digits.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
  }
  if ((peek() == 'e' || peek() == 'E') &&
      (std::isdigit(static_cast<unsigned char>(peek(1))) ||
       (peek(1) == '~' &&
        std::isdigit(static_cast<unsigned char>(peek(2)))))) {
    IsReal = true;
    advance();
    Digits.push_back('e');
    if (peek() == '~') {
      advance();
      Digits.push_back('-');
    }
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
  }
  if (IsReal) {
    Token T = make(TokKind::RealLit);
    T.RealValue = std::strtod(Digits.c_str(), nullptr);
    if (Negative)
      T.RealValue = -T.RealValue;
    return T;
  }
  Token T = make(TokKind::IntLit);
  T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
  if (Negative)
    T.IntValue = -T.IntValue;
  return T;
}

Token Lexer::lexString() {
  advance(); // consume opening quote
  std::string Value;
  for (;;) {
    if (Pos >= Src.size()) {
      Diags.error(TokStart, "unterminated string literal");
      break;
    }
    char C = advance();
    if (C == '"')
      break;
    if (C != '\\') {
      Value.push_back(C);
      continue;
    }
    if (Pos >= Src.size()) {
      Diags.error(TokStart, "unterminated string escape");
      break;
    }
    char E = advance();
    switch (E) {
    case 'n': Value.push_back('\n'); break;
    case 't': Value.push_back('\t'); break;
    case '\\': Value.push_back('\\'); break;
    case '"': Value.push_back('"'); break;
    default:
      Diags.error(here(), std::string("unknown string escape '\\") + E + "'");
      break;
    }
  }
  Token T = make(TokKind::StringLit);
  T.StrValue = std::move(Value);
  return T;
}

Token Lexer::lexTyVar() {
  advance(); // first '
  bool Eq = false;
  if (peek() == '\'') {
    advance();
    Eq = true;
  }
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Name.push_back(advance());
  if (Name.empty())
    Diags.error(TokStart, "expected type variable name after '");
  Token T = make(Eq ? TokKind::EqTyVar : TokKind::TyVar);
  T.Text = Interner.intern(Name);
  return T;
}

Token Lexer::lexAlphaIdent() {
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '\'')
    Name.push_back(advance());

  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"abstraction", TokKind::KwAbstraction},
      {"and", TokKind::KwAnd},
      {"andalso", TokKind::KwAndalso},
      {"case", TokKind::KwCase},
      {"datatype", TokKind::KwDatatype},
      {"else", TokKind::KwElse},
      {"end", TokKind::KwEnd},
      {"exception", TokKind::KwException},
      {"fn", TokKind::KwFn},
      {"fun", TokKind::KwFun},
      {"functor", TokKind::KwFunctor},
      {"handle", TokKind::KwHandle},
      {"if", TokKind::KwIf},
      {"in", TokKind::KwIn},
      {"let", TokKind::KwLet},
      {"of", TokKind::KwOf},
      {"op", TokKind::KwOp},
      {"orelse", TokKind::KwOrelse},
      {"raise", TokKind::KwRaise},
      {"rec", TokKind::KwRec},
      {"sig", TokKind::KwSig},
      {"signature", TokKind::KwSignature},
      {"struct", TokKind::KwStruct},
      {"structure", TokKind::KwStructure},
      {"then", TokKind::KwThen},
      {"type", TokKind::KwType},
      {"val", TokKind::KwVal},
  };
  auto It = Keywords.find(Name);
  if (It != Keywords.end())
    return make(It->second);
  Token T = make(TokKind::Ident);
  T.Text = Interner.intern(Name);
  return T;
}

Token Lexer::lexSymbolicIdent() {
  std::string Name;
  while (isSymbolicChar(peek()))
    Name.push_back(advance());
  // Reserved symbolic tokens.
  if (Name == "=")
    return make(TokKind::Equal);
  if (Name == "=>")
    return make(TokKind::DArrow);
  if (Name == "->")
    return make(TokKind::Arrow);
  if (Name == ":")
    return make(TokKind::Colon);
  if (Name == ":>")
    return make(TokKind::ColonGt);
  if (Name == "|")
    return make(TokKind::Bar);
  if (Name == "#")
    return make(TokKind::Hash);
  Token T = make(TokKind::Ident);
  T.Text = Interner.intern(Name);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  TokStart = here();
  if (Pos >= Src.size())
    return make(TokKind::Eof);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(/*Negative=*/false);
  // ~ directly followed by a digit is a negative literal; otherwise it is
  // the symbolic identifier "~" (unary negation function).
  if (C == '~' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    return lexNumber(/*Negative=*/true);
  }
  if (C == '"')
    return lexString();
  if (C == '\'')
    return lexTyVar();
  if (std::isalpha(static_cast<unsigned char>(C)))
    return lexAlphaIdent();
  if (isSymbolicChar(C))
    return lexSymbolicIdent();

  switch (C) {
  case '(': advance(); return make(TokKind::LParen);
  case ')': advance(); return make(TokKind::RParen);
  case '[': advance(); return make(TokKind::LBracket);
  case ']': advance(); return make(TokKind::RBracket);
  case ',': advance(); return make(TokKind::Comma);
  case ';': advance(); return make(TokKind::Semi);
  case '_': advance(); return make(TokKind::Underscore);
  case '.': advance(); return make(TokKind::Dot);
  default:
    Diags.error(here(), std::string("unexpected character '") + C + "'");
    advance();
    return next();
  }
}
