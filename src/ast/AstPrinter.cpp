//===- ast/AstPrinter.cpp - S-expression AST dumper ------------------------===//

#include "ast/AstPrinter.h"

#include <sstream>

using namespace smltc;
using namespace smltc::ast;

namespace {

void printLongId(std::ostringstream &OS, const LongId &Id) {
  for (size_t I = 0; I < Id.Parts.size(); ++I) {
    if (I)
      OS << '.';
    OS << Id.Parts[I].str();
  }
}

void emitTy(std::ostringstream &OS, const Ty *T);
void emitPat(std::ostringstream &OS, const Pat *P);
void emitExp(std::ostringstream &OS, const Exp *E);
void emitDec(std::ostringstream &OS, const Dec *D);

void emitTy(std::ostringstream &OS, const Ty *T) {
  switch (T->K) {
  case Ty::Kind::Var:
    OS << '\'' << T->VarName.str();
    return;
  case Ty::Kind::Con:
    if (!T->Args.empty()) {
      OS << "(";
      for (size_t I = 0; I < T->Args.size(); ++I) {
        if (I)
          OS << ' ';
        emitTy(OS, T->Args[I]);
      }
      OS << ") ";
    }
    printLongId(OS, T->ConName);
    return;
  case Ty::Kind::Tuple:
    OS << "(tuple";
    for (const Ty *E : T->Elems) {
      OS << ' ';
      emitTy(OS, E);
    }
    OS << ')';
    return;
  case Ty::Kind::Arrow:
    OS << "(-> ";
    emitTy(OS, T->From);
    OS << ' ';
    emitTy(OS, T->To);
    OS << ')';
    return;
  }
}

void emitPat(std::ostringstream &OS, const Pat *P) {
  switch (P->K) {
  case Pat::Kind::Wild:
    OS << '_';
    return;
  case Pat::Kind::Ident:
    printLongId(OS, P->Name);
    return;
  case Pat::Kind::Int:
    OS << P->IntValue;
    return;
  case Pat::Kind::String:
    OS << '"' << P->StrValue.str() << '"';
    return;
  case Pat::Kind::Tuple:
    OS << "(ptuple";
    for (const Pat *E : P->Elems) {
      OS << ' ';
      emitPat(OS, E);
    }
    OS << ')';
    return;
  case Pat::Kind::App:
    OS << "(pcon ";
    printLongId(OS, P->Name);
    OS << ' ';
    emitPat(OS, P->Arg);
    OS << ')';
    return;
  case Pat::Kind::Typed:
    OS << "(ptyped ";
    emitPat(OS, P->Arg);
    OS << ' ';
    emitTy(OS, P->Annot);
    OS << ')';
    return;
  case Pat::Kind::Layered:
    OS << "(as " << P->AsVar.str() << ' ';
    emitPat(OS, P->Arg);
    OS << ')';
    return;
  }
}

void emitExp(std::ostringstream &OS, const Exp *E) {
  switch (E->K) {
  case Exp::Kind::Int:
    OS << E->IntValue;
    return;
  case Exp::Kind::Real:
    OS << E->RealValue;
    return;
  case Exp::Kind::String:
    OS << '"' << E->StrValue.str() << '"';
    return;
  case Exp::Kind::Ident:
    printLongId(OS, E->Name);
    return;
  case Exp::Kind::Tuple:
    OS << "(tuple";
    for (const Exp *X : E->Elems) {
      OS << ' ';
      emitExp(OS, X);
    }
    OS << ')';
    return;
  case Exp::Kind::Select:
    OS << "(#" << E->SelectIndex << ' ';
    emitExp(OS, E->Arg);
    OS << ')';
    return;
  case Exp::Kind::App:
    OS << "(app ";
    emitExp(OS, E->Fun);
    OS << ' ';
    emitExp(OS, E->Arg);
    OS << ')';
    return;
  case Exp::Kind::Fn:
    OS << "(fn";
    for (const Rule &R : E->Rules) {
      OS << " (";
      emitPat(OS, R.P);
      OS << " => ";
      emitExp(OS, R.E);
      OS << ')';
    }
    OS << ')';
    return;
  case Exp::Kind::Case:
    OS << "(case ";
    emitExp(OS, E->Scrut);
    for (const Rule &R : E->Rules) {
      OS << " (";
      emitPat(OS, R.P);
      OS << " => ";
      emitExp(OS, R.E);
      OS << ')';
    }
    OS << ')';
    return;
  case Exp::Kind::If:
    OS << "(if ";
    emitExp(OS, E->Scrut);
    OS << ' ';
    emitExp(OS, E->Then);
    OS << ' ';
    emitExp(OS, E->Else);
    OS << ')';
    return;
  case Exp::Kind::Andalso:
    OS << "(andalso ";
    emitExp(OS, E->Then);
    OS << ' ';
    emitExp(OS, E->Else);
    OS << ')';
    return;
  case Exp::Kind::Orelse:
    OS << "(orelse ";
    emitExp(OS, E->Then);
    OS << ' ';
    emitExp(OS, E->Else);
    OS << ')';
    return;
  case Exp::Kind::Let:
    OS << "(let (";
    for (size_t I = 0; I < E->Decs.size(); ++I) {
      if (I)
        OS << ' ';
      emitDec(OS, E->Decs[I]);
    }
    OS << ')';
    for (const Exp *X : E->Elems) {
      OS << ' ';
      emitExp(OS, X);
    }
    OS << ')';
    return;
  case Exp::Kind::Seq:
    OS << "(seq";
    for (const Exp *X : E->Elems) {
      OS << ' ';
      emitExp(OS, X);
    }
    OS << ')';
    return;
  case Exp::Kind::Raise:
    OS << "(raise ";
    emitExp(OS, E->Arg);
    OS << ')';
    return;
  case Exp::Kind::Handle:
    OS << "(handle ";
    emitExp(OS, E->Arg);
    for (const Rule &R : E->Rules) {
      OS << " (";
      emitPat(OS, R.P);
      OS << " => ";
      emitExp(OS, R.E);
      OS << ')';
    }
    OS << ')';
    return;
  case Exp::Kind::Typed:
    OS << "(typed ";
    emitExp(OS, E->Arg);
    OS << ' ';
    emitTy(OS, E->Annot);
    OS << ')';
    return;
  }
}

void emitDec(std::ostringstream &OS, const Dec *D) {
  switch (D->K) {
  case Dec::Kind::Val:
    OS << "(val ";
    emitPat(OS, D->ValPat);
    OS << ' ';
    emitExp(OS, D->ValExp);
    OS << ')';
    return;
  case Dec::Kind::ValRec:
    OS << "(valrec";
    for (size_t I = 0; I < D->RecNames.size(); ++I) {
      OS << " (" << D->RecNames[I].str() << ' ';
      emitExp(OS, D->RecExps[I]);
      OS << ')';
    }
    OS << ')';
    return;
  case Dec::Kind::Fun:
    OS << "(fun";
    for (const FunBind &FB : D->FunBinds) {
      OS << " (" << FB.Name.str();
      for (const FunClause &C : FB.Clauses) {
        OS << " (";
        for (size_t I = 0; I < C.Params.size(); ++I) {
          if (I)
            OS << ' ';
          emitPat(OS, C.Params[I]);
        }
        OS << " = ";
        emitExp(OS, C.Body);
        OS << ')';
      }
      OS << ')';
    }
    OS << ')';
    return;
  case Dec::Kind::Datatype:
    OS << "(datatype";
    for (const DatBind &DB : D->DatBinds) {
      OS << " (" << DB.Name.str();
      for (const ConBind &CB : DB.Cons) {
        OS << ' ' << CB.Name.str();
        if (CB.OfTy) {
          OS << ":";
          emitTy(OS, CB.OfTy);
        }
      }
      OS << ')';
    }
    OS << ')';
    return;
  case Dec::Kind::TypeAbbrev:
    OS << "(type " << D->TypeName.str() << ' ';
    emitTy(OS, D->TypeBody);
    OS << ')';
    return;
  case Dec::Kind::Exception:
    OS << "(exception " << D->ExnName.str();
    if (D->ExnOfTy) {
      OS << " of ";
      emitTy(OS, D->ExnOfTy);
    }
    OS << ')';
    return;
  case Dec::Kind::Structure:
    OS << "(structure " << D->StrName.str() << ')';
    return;
  case Dec::Kind::Signature:
    OS << "(signature " << D->SigName.str() << ')';
    return;
  case Dec::Kind::Functor:
    OS << "(functor " << D->FctName.str() << ')';
    return;
  case Dec::Kind::Open:
    OS << "(open)";
    return;
  }
}

} // namespace

std::string smltc::printExp(const Exp *E) {
  std::ostringstream OS;
  emitExp(OS, E);
  return OS.str();
}

std::string smltc::printPat(const Pat *P) {
  std::ostringstream OS;
  emitPat(OS, P);
  return OS.str();
}

std::string smltc::printTy(const Ty *T) {
  std::ostringstream OS;
  emitTy(OS, T);
  return OS.str();
}

std::string smltc::printDec(const Dec *D) {
  std::ostringstream OS;
  emitDec(OS, D);
  return OS.str();
}

std::string smltc::printProgram(const Program &P) {
  std::ostringstream OS;
  for (size_t I = 0; I < P.Decs.size(); ++I) {
    if (I)
      OS << '\n';
    emitDec(OS, P.Decs[I]);
  }
  return OS.str();
}
