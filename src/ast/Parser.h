//===- ast/Parser.h - MiniML parser ----------------------------------------===//
///
/// \file
/// Recursive-descent parser for the SML subset, with a fixed infix operator
/// table (standard SML default fixities; no user `infix` declarations).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_AST_PARSER_H
#define SMLTC_AST_PARSER_H

#include "ast/Ast.h"
#include "ast/Lexer.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"

#include <vector>

namespace smltc {

class Parser {
public:
  Parser(std::string_view Source, Arena &A, StringInterner &Interner,
         DiagnosticEngine &Diags)
      : Lex(Source, Interner, Diags), A(A), Interner(Interner), Diags(Diags) {
    Tok = Lex.next();
    Ahead = Lex.next();
  }

  /// Parses a whole program. On syntax errors, diagnostics are reported and
  /// a best-effort partial program is returned; callers must check
  /// Diags.hasErrors().
  ast::Program parseProgram();

  /// Parses a single expression (used by tests and the quickstart example).
  ast::Exp *parseExpression() { return parseExp(); }

private:
  // Token plumbing.
  void bump() {
    Tok = Ahead;
    Ahead = Lex.next();
  }
  bool at(TokKind K) const { return Tok.Kind == K; }
  bool atIdent(std::string_view S) const {
    return Tok.Kind == TokKind::Ident && Tok.Text.str() == S;
  }
  bool eat(TokKind K) {
    if (!at(K))
      return false;
    bump();
    return true;
  }
  void expect(TokKind K, const char *Ctx);
  Symbol expectIdent(const char *Ctx);

  // Helpers.
  ast::LongId parseLongId();
  ast::LongId makeLongId(Symbol S);
  ast::Exp *identExp(Symbol S, SourceLoc Loc);
  Span<Symbol> parseTyVarSeq();

  // Types.
  ast::Ty *parseTy();
  ast::Ty *parseTupleTy();
  ast::Ty *parseConTy();
  ast::Ty *parseAtTy();

  // Patterns.
  ast::Pat *parsePat();
  ast::Pat *parseConsPat();
  ast::Pat *parseAppPat();
  ast::Pat *parseAtPat();
  bool startsAtPat() const;

  // Expressions.
  ast::Exp *parseExp();
  ast::Exp *parseOrelse();
  ast::Exp *parseAndalso();
  ast::Exp *parseTypedExp();
  ast::Exp *parseInfixExp(int MinPrec);
  ast::Exp *parseAppExp();
  ast::Exp *parseAtExp();
  bool startsAtExp() const;
  Span<ast::Rule> parseMatch();

  // Declarations and modules.
  ast::Dec *parseDec();
  bool startsDec() const;
  ast::DatBind parseDatBind();
  ast::StrExp *parseStrExp();
  ast::SigExp *parseSigExp();
  ast::Spec *parseSpec();

  Lexer Lex;
  Arena &A;
  StringInterner &Interner;
  DiagnosticEngine &Diags;
  Token Tok;
  Token Ahead;
};

} // namespace smltc

#endif // SMLTC_AST_PARSER_H
