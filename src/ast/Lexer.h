//===- ast/Lexer.h - MiniML lexer ------------------------------------------===//
///
/// \file
/// Hand-written lexer for the SML subset. Handles nested (* *) comments,
/// SML-style negative literals (~3), real literals with e-notation, string
/// escapes, alphanumeric and symbolic identifiers, and type variables.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_AST_LEXER_H
#define SMLTC_AST_LEXER_H

#include "ast/Token.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <string_view>

namespace smltc {

class Lexer {
public:
  Lexer(std::string_view Source, StringInterner &Interner,
        DiagnosticEngine &Diags)
      : Src(Source), Interner(Interner), Diags(Diags) {}

  /// Lexes and returns the next token. Returns Eof forever at end of input.
  Token next();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance();
  SourceLoc here() const { return {Line, Col, static_cast<uint32_t>(Pos)}; }
  void skipWhitespaceAndComments();
  Token lexNumber(bool Negative);
  Token lexString();
  Token lexAlphaIdent();
  Token lexSymbolicIdent();
  Token lexTyVar();
  Token make(TokKind K) {
    Token T;
    T.Kind = K;
    T.Loc = TokStart;
    return T;
  }

  std::string_view Src;
  StringInterner &Interner;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  SourceLoc TokStart;
};

} // namespace smltc

#endif // SMLTC_AST_LEXER_H
