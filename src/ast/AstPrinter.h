//===- ast/AstPrinter.h - S-expression AST dumper --------------------------===//
///
/// \file
/// Renders raw AST nodes as compact s-expressions for tests and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_AST_ASTPRINTER_H
#define SMLTC_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace smltc {

std::string printExp(const ast::Exp *E);
std::string printPat(const ast::Pat *P);
std::string printTy(const ast::Ty *T);
std::string printDec(const ast::Dec *D);
std::string printProgram(const ast::Program &P);

} // namespace smltc

#endif // SMLTC_AST_ASTPRINTER_H
