//===- ast/Ast.h - Raw abstract syntax ------------------------------------===//
///
/// \file
/// The raw abstract syntax produced by the parser, before elaboration. Nodes
/// are arena-allocated, kind-tagged structs. Identifiers in expressions and
/// patterns are unresolved long identifiers (the elaborator classifies them
/// as variables vs. data constructors).
///
/// Desugarings done by the parser so later phases never see them:
///   - list literals [e1,...,en] become e1 :: ... :: nil
///   - infix operator applications become App(Ident op, Tuple(l, r))
///   - `fun f p1 p2 = e` clauses become curried `fn` matches (in elaboration)
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_AST_AST_H
#define SMLTC_AST_AST_H

#include "support/Arena.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cstdint>

namespace smltc {
namespace ast {

/// A possibly-qualified identifier: Quals.back() is the name, preceding
/// symbols are structure qualifiers (e.g. S.T.x).
struct LongId {
  Span<Symbol> Parts;
  Symbol name() const { return Parts.back(); }
  bool isQualified() const { return Parts.size() > 1; }
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

struct Ty {
  enum class Kind : uint8_t { Var, Con, Tuple, Arrow };
  Kind K;
  SourceLoc Loc;

  // Var
  Symbol VarName;
  bool IsEqVar = false;
  // Con: Args applied to a (possibly qualified) type constructor.
  Span<Ty *> Args;
  LongId ConName;
  // Tuple
  Span<Ty *> Elems;
  // Arrow
  Ty *From = nullptr;
  Ty *To = nullptr;
};

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

struct Pat {
  enum class Kind : uint8_t {
    Wild,   ///< _
    Ident,  ///< variable or nullary constructor (resolved in elaboration)
    Int,
    String,
    Tuple,
    App,    ///< constructor applied to an argument pattern
    Typed,  ///< pat : ty
    Layered ///< x as pat
  };
  Kind K;
  SourceLoc Loc;

  LongId Name;              // Ident, App (constructor)
  int64_t IntValue = 0;     // Int
  Symbol StrValue;          // String (interned)
  Span<Pat *> Elems;        // Tuple
  Pat *Arg = nullptr;       // App, Typed, Layered
  Ty *Annot = nullptr;      // Typed
  Symbol AsVar;             // Layered
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Dec;

struct Exp;

/// One `pat => exp` arm of a match.
struct Rule {
  Pat *P;
  Exp *E;
};

struct Exp {
  enum class Kind : uint8_t {
    Int,
    Real,
    String,
    Ident,
    Tuple,   ///< (e1, ..., en); () is the 0-tuple (unit)
    Select,  ///< #i e  (tuple field selection)
    App,
    Fn,      ///< fn match
    Case,
    If,
    Andalso,
    Orelse,
    Let,     ///< let decs in e1; ...; en end
    Seq,     ///< (e1; ...; en)
    Raise,
    Handle,
    Typed,   ///< e : ty
  };
  Kind K;
  SourceLoc Loc;

  int64_t IntValue = 0;
  double RealValue = 0;
  Symbol StrValue;
  LongId Name;             // Ident
  Span<Exp *> Elems;       // Tuple, Seq, Let body
  int SelectIndex = 0;     // Select (1-based, as written)
  Exp *Fun = nullptr;      // App
  Exp *Arg = nullptr;      // App, Select, Raise, Typed, Handle(scrutinee)
  Span<Rule> Rules;        // Fn, Case, Handle
  Exp *Scrut = nullptr;    // Case, If(cond)
  Exp *Then = nullptr;     // If, Andalso/Orelse lhs
  Exp *Else = nullptr;     // If, Andalso/Orelse rhs
  Span<Dec *> Decs;        // Let
  Ty *Annot = nullptr;     // Typed
};

//===----------------------------------------------------------------------===//
// Declarations (core and module)
//===----------------------------------------------------------------------===//

struct ConBind {
  Symbol Name;
  Ty *OfTy; ///< null for constant constructors
};

struct DatBind {
  Span<Symbol> TyVars;
  Symbol Name;
  Span<ConBind> Cons;
};

/// One clause of a clausal `fun` binding: f p1 ... pn = body.
struct FunClause {
  Span<Pat *> Params;
  Ty *ResultAnnot; ///< optional
  Exp *Body;
};

struct FunBind {
  Symbol Name;
  SourceLoc Loc;
  Span<FunClause> Clauses;
};

struct SigExp;
struct StrExp;
struct Spec;

/// How a structure expression is constrained by a signature.
enum class SigConstraintKind : uint8_t { None, Transparent, Opaque };

struct Dec {
  enum class Kind : uint8_t {
    Val,       ///< val pat = exp
    ValRec,    ///< val rec f = fn ...
    Fun,       ///< fun f p = e | ... and g ...
    Datatype,
    TypeAbbrev,
    Exception,
    Structure,
    Signature,
    Functor,
    Open,      ///< open S (unsupported; parser rejects)
  };
  Kind K;
  SourceLoc Loc;

  // Val
  Pat *ValPat = nullptr;
  Exp *ValExp = nullptr;
  // ValRec: parallel arrays of names and fn-expressions.
  Span<Symbol> RecNames;
  Span<Exp *> RecExps;
  // Fun
  Span<FunBind> FunBinds;
  // Datatype
  Span<DatBind> DatBinds;
  // TypeAbbrev
  Span<Symbol> TyVars;
  Symbol TypeName;
  Ty *TypeBody = nullptr;
  // Exception
  Symbol ExnName;
  Ty *ExnOfTy = nullptr; ///< null for constant exceptions
  // Structure
  Symbol StrName;
  SigConstraintKind StrConstraint = SigConstraintKind::None;
  SigExp *StrSig = nullptr;
  StrExp *StrBody = nullptr;
  // Signature
  Symbol SigName;
  SigExp *SigBody = nullptr;
  // Functor
  Symbol FctName;
  Symbol FctArgName;
  SigExp *FctArgSig = nullptr;
  SigConstraintKind FctConstraint = SigConstraintKind::None;
  SigExp *FctResultSig = nullptr;
  StrExp *FctBody = nullptr;
};

struct StrExp {
  enum class Kind : uint8_t {
    Struct, ///< struct decs end
    Var,    ///< longid
    App,    ///< F (strexp)
  };
  Kind K;
  SourceLoc Loc;

  Span<Dec *> Decs;    // Struct
  LongId Name;         // Var
  Symbol FctName;      // App
  StrExp *Arg = nullptr;
};

struct Spec {
  enum class Kind : uint8_t {
    Val,       ///< val x : ty
    Type,      ///< type ('a,...) t [= ty]
    EqType,    ///< eqtype t (treated as Type with equality flag)
    Datatype,
    Exception,
    Structure,
  };
  Kind K;
  SourceLoc Loc;

  Symbol Name;
  Ty *ValTy = nullptr;        // Val
  Span<Symbol> TyVars;        // Type
  Ty *Manifest = nullptr;     // Type (optional `= ty`)
  DatBind DatB;               // Datatype
  Ty *ExnOfTy = nullptr;      // Exception (optional)
  SigExp *StrSig = nullptr;   // Structure
};

struct SigExp {
  enum class Kind : uint8_t { Sig, Var };
  Kind K;
  SourceLoc Loc;

  Span<Spec *> Specs; // Sig
  Symbol Name;        // Var
};

/// A full program: a sequence of top-level declarations.
struct Program {
  Span<Dec *> Decs;
};

} // namespace ast
} // namespace smltc

#endif // SMLTC_AST_AST_H
