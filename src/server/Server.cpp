//===- server/Server.cpp - The smltcc compile daemon -------------------------===//

#include "server/Server.h"

#include "cps/CpsOpt.h"
#include "driver/PreludeSnapshot.h"
#include "farm/Http.h"
#include "farm/Net.h"
#include "native/NativeBackend.h"
#include "driver/CompileCache.h"
#include "obs/Json.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "vm/Heap.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace smltc;
using namespace smltc::server;

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Signal-handler target (process-global; installSignalHandlers).
CompileServer *volatile GSignalServer = nullptr;

void onStopSignal(int) {
  if (CompileServer *S = GSignalServer)
    S->requestStop();
}

} // namespace

std::string ServerMetrics::toJson(size_t QueueDepthNow,
                                  const DiskCache *Disk) const {
  // Field names, order, and numeric formats are frozen: existing
  // `--remote-stats` consumers parse this shape byte for byte.
  obs::JsonWriter W;
  W.beginObject()
      .field("connections", Connections)
      .field("connections_rejected", ConnectionsRejected)
      .field("requests", Requests)
      .field("ping_requests", PingRequests)
      .field("compile_requests", CompileRequests)
      .field("stats_requests", StatsRequests)
      .field("shutdown_requests", ShutdownRequests)
      .field("compile_ok", CompileOk)
      .field("compile_errors", CompileErrors)
      .field("queue_full_rejects", QueueFullRejects)
      .field("deadline_misses", DeadlineMisses)
      .field("draining_rejects", DrainingRejects)
      .field("protocol_errors", ProtocolErrors)
      .field("cache_memory_hits", MemoryHits)
      .field("cache_disk_hits", DiskHits)
      .field("cache_misses", CacheMisses)
      .field("bytes_in", BytesIn)
      .field("bytes_out", BytesOut)
      .field("queue_depth", QueueDepthNow)
      .field("queue_depth_peak", QueueDepthPeak)
      .field("auth_requests", AuthRequests)
      .field("auth_rejects", AuthRejects)
      .field("tenant_quota_rejects", TenantQuotaRejects)
      .field("scrape_requests", ScrapeRequests);
  if (Disk)
    W.fieldRaw("disk_cache", Disk->statsJson());
  W.endObject();
  return W.take();
}

CompileServer::CompileServer(ServerOptions Options)
    : Opts(std::move(Options)) {}

CompileServer::~CompileServer() {
  for (auto &KV : Conns)
    if (KV.second.Fd >= 0)
      ::close(KV.second.Fd);
  Conns.clear();
  // The pool must die before the completion queue: its destructor joins
  // the workers, after which no Done callback can touch `Completions`.
  Pool.reset();
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (TcpListenFd >= 0)
    ::close(TcpListenFd);
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
  if (Started && !Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

bool CompileServer::start(std::string &Err) {
  if (Opts.SocketPath.empty() && Opts.ListenAddr.empty()) {
    Err = "server needs a Unix socket path or a TCP listen address";
    return false;
  }
  sockaddr_un Addr;
  if (!Opts.SocketPath.empty() &&
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long (max " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return false;
  }

  // Tenancy: token file -> registry -> one fair-share queue per tenant.
  // Without a token file the farm degenerates to a single implicit
  // tenant with no per-tenant quotas, which reproduces the old
  // single-bounded-queue admission behavior exactly.
  if (!Opts.TokenFile.empty()) {
    if (!Tenants.loadFile(Opts.TokenFile, Err))
      return false;
    AuthRequired = true;
  }
  Sched = std::make_unique<farm::FairShareScheduler>(Opts.MaxQueue);
  if (AuthRequired) {
    for (const farm::TenantConfig &T : Tenants.tenants())
      Sched->addTenant(T);
  } else {
    farm::TenantConfig Def;
    Def.Name = "default";
    Def.MaxInFlight = 0;
    Def.MaxQueued = 0;
    Sched->addTenant(Def);
  }

  Cache = std::make_unique<CompileCache>();
  Cache->setMaxEntries(Opts.MaxMemCacheEntries);
  if (!Opts.DiskCachePath.empty()) {
    DiskCacheOptions DO;
    DO.Root = Opts.DiskCachePath;
    DO.CapacityBytes = Opts.DiskCacheCapBytes;
    Disk = std::make_unique<DiskCache>(DO);
    if (!Disk->init(Err))
      return false;
    Cache->setBackingStore(Disk.get());
  }
  BatchOptions BO;
  BO.NumThreads = Opts.NumWorkers;
  BO.Cache = Cache.get();
  // Admission control moved up a layer: the fair-share scheduler bounds
  // what gets in (Opts.MaxQueue globally, MaxQueued per tenant) and
  // releases jobs only as workers free up, so the pool queue itself
  // stays near-empty and unbounded is safe.
  BO.MaxQueue = 0;
  Pool = std::make_unique<BatchCompiler>(BO);
  PoolTargetInFlight = std::max<size_t>(1, Pool->numThreads());

  if (::pipe(WakePipe) != 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);

  if (!Opts.SocketPath.empty()) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    // A previous daemon that crashed leaves a stale socket file behind;
    // binding over it needs the unlink. A *live* daemon on the same
    // path is the operator's error — first bind wins after the unlink.
    ::unlink(Opts.SocketPath.c_str());
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      Err = "bind '" + Opts.SocketPath + "': " + std::strerror(errno);
      return false;
    }
    if (::listen(ListenFd, 64) != 0) {
      Err = std::string("listen: ") + std::strerror(errno);
      return false;
    }
    setNonBlocking(ListenFd);
  }
  if (!Opts.ListenAddr.empty()) {
    TcpListenFd = farm::listenTcp(Opts.ListenAddr, Err);
    if (TcpListenFd < 0)
      return false;
    setNonBlocking(TcpListenFd);
    BoundTcpAddr = farm::localAddr(TcpListenFd);
  }
  StartTime = std::chrono::steady_clock::now();
  registerMetrics();
  Started = true;
  return true;
}

void CompileServer::registerMetrics() {
  obs::registerProcessInfo(Reg, compilerVersion(),
                           std::to_string(optionsSchemaVersion()),
                           kProtocolVersion);
  registerCpsOptMetrics(Reg);
  native::registerNativeMetrics(Reg);
  // The VM's process-global GC histograms; label pairs registered
  // back-to-back so each family renders one HELP/TYPE header.
  Reg.registerHistogram("smltcc_vm_gc_pause_seconds", gcPauseHistogram(false),
                        "Stop-the-world GC pause duration", "gc", "minor");
  Reg.registerHistogram("smltcc_vm_gc_pause_seconds", gcPauseHistogram(true),
                        "Stop-the-world GC pause duration", "gc", "major");
  Reg.registerHistogram("smltcc_vm_gc_copied_words",
                        gcCopiedWordsHistogram(false),
                        "Words promoted (minor) or copied (major) per "
                        "collection",
                        "gc", "minor");
  Reg.registerHistogram("smltcc_vm_gc_copied_words",
                        gcCopiedWordsHistogram(true),
                        "Words promoted (minor) or copied (major) per "
                        "collection",
                        "gc", "major");
  auto C = [this](const char *Name, const uint64_t &Field,
                  const char *Help) {
    Reg.counterFn(Name, [&Field] { return Field; }, Help);
  };
  C("smltcc_server_connections_total", Metrics.Connections,
    "Client connections accepted");
  C("smltcc_server_connections_rejected_total", Metrics.ConnectionsRejected,
    "Connections refused at the MaxConnections cap");
  C("smltcc_server_requests_total", Metrics.Requests,
    "Frames handled, all message types");
  C("smltcc_server_compile_requests_total", Metrics.CompileRequests,
    "Compile requests received");
  C("smltcc_server_compile_ok_total", Metrics.CompileOk,
    "Compile requests answered with a program");
  C("smltcc_server_compile_errors_total", Metrics.CompileErrors,
    "Compile requests whose program failed to compile");
  C("smltcc_server_queue_full_rejects_total", Metrics.QueueFullRejects,
    "Compile requests rejected by admission control");
  C("smltcc_server_deadline_misses_total", Metrics.DeadlineMisses,
    "Compile requests answered past their deadline");
  C("smltcc_server_draining_rejects_total", Metrics.DrainingRejects,
    "Compile requests rejected during shutdown drain");
  C("smltcc_server_protocol_errors_total", Metrics.ProtocolErrors,
    "Malformed or out-of-order frames");
  C("smltcc_server_cache_memory_hits_total", Metrics.MemoryHits,
    "Compile responses served from the in-memory cache");
  C("smltcc_server_cache_disk_hits_total", Metrics.DiskHits,
    "Compile responses served from the persistent disk cache");
  C("smltcc_server_cache_misses_total", Metrics.CacheMisses,
    "Compile responses that required a real compile");
  C("smltcc_server_bytes_in_total", Metrics.BytesIn,
    "Bytes received from clients");
  C("smltcc_server_bytes_out_total", Metrics.BytesOut,
    "Bytes sent to clients");
  C("smltcc_server_auth_requests_total", Metrics.AuthRequests,
    "TenantAuth handshake frames handled");
  C("smltcc_server_auth_rejects_total", Metrics.AuthRejects,
    "Requests refused for a bad token or missing authentication");
  C("smltcc_server_tenant_quota_rejects_total", Metrics.TenantQuotaRejects,
    "Compile requests bounced on a per-tenant MaxQueued quota");
  C("smltcc_server_scrape_requests_total", Metrics.ScrapeRequests,
    "HTTP GET/HEAD /metrics scrapes served");

  // Persistent-cache accounting straight from the DiskCache atomics
  // (safe to read from any thread).
  if (Disk) {
    DiskCache *D = Disk.get();
    Reg.counterFn(
        "smltcc_disk_cache_load_calls_total", [D] { return D->loadCalls(); },
        "Disk-cache lookup attempts");
    Reg.counterFn(
        "smltcc_disk_cache_load_hits_total", [D] { return D->loadHits(); },
        "Disk-cache lookups that returned a stored entry");
    Reg.counterFn(
        "smltcc_disk_cache_store_calls_total", [D] { return D->storeCalls(); },
        "Disk-cache store attempts");
    Reg.counterFn(
        "smltcc_disk_cache_evicted_files_total",
        [D] { return D->evictedFiles(); },
        "Disk-cache entries evicted to stay under the byte capacity");
    Reg.counterFn(
        "smltcc_disk_cache_corrupt_dropped_total",
        [D] { return D->corruptDropped(); },
        "Disk-cache entries unlinked because their payload failed "
        "verification");
    Reg.gaugeFn(
        "smltcc_disk_cache_bytes",
        [D] { return static_cast<double>(D->currentBytes()); },
        "Bytes currently resident in the disk cache");
  }
  Reg.counterFn(
      "smltcc_compile_cache_evictions_total",
      [this] { return Cache ? Cache->evictedCount() : 0; },
      "In-memory compile cache entries dropped at the entry cap");

  // Prelude-snapshot accounting: process-wide (the snapshot is shared by
  // every worker), read straight from the atomic counters.
  Reg.counterFn(
      "smltcc_prelude_snapshot_hits_total",
      [] { return preludeStats().SnapshotHits.load(std::memory_order_relaxed); },
      "Compiles served by the pre-elaborated prelude snapshot");
  Reg.counterFn(
      "smltcc_prelude_snapshot_builds_total",
      [] {
        return preludeStats().SnapshotBuilds.load(std::memory_order_relaxed);
      },
      "Prelude snapshot constructions (0 or 1 per process)");
  Reg.counterFn(
      "smltcc_prelude_inline_fallbacks_total",
      [] {
        return preludeStats().InlineFallbacks.load(std::memory_order_relaxed);
      },
      "Compiles that fell back to inline prelude concatenation");
  Reg.gaugeFn(
      "smltcc_prelude_snapshot_build_seconds",
      [] {
        const PreludeSnapshot *S = PreludeSnapshot::get();
        return S ? S->buildSeconds() : 0.0;
      },
      "One-time prelude snapshot construction seconds");

  Reg.gaugeFn(
      "smltcc_server_uptime_seconds",
      [this] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - StartTime)
            .count();
      },
      "Seconds since the server started");
  Reg.gaugeFn(
      "smltcc_server_queue_depth",
      [this] {
        size_t D = Sched ? Sched->totalQueued() : 0;
        if (Pool)
          D += Pool->pendingJobs();
        return static_cast<double>(D);
      },
      "Compile jobs queued (fair-share + pool), not yet on a worker");
  Reg.gaugeFn(
      "smltcc_server_queue_depth_peak",
      [this] { return static_cast<double>(Metrics.QueueDepthPeak); },
      "High-water mark of the compile queue");

  // The three tier series share one family name, so they must be
  // registered back to back (renderPrometheus emits one header per
  // consecutive family run).
  static const char *const Tiers[3] = {"memory", "disk", "miss"};
  for (int I = 0; I < 3; ++I)
    TierHist[I] = &Reg.histogram(
        "smltcc_server_request_seconds", obs::Histogram::latencyBuckets(),
        "Compile request latency from frame decode to response, by cache "
        "tier",
        "tier", Tiers[I]);

  // Per-tenant series. Each family loops over every tenant so the
  // same-name entries stay consecutive (one HELP/TYPE header per run);
  // the instrument pointers go into the scheduler's Tenant records so
  // the hot path increments without a registry lookup.
  if (Sched) {
    for (auto &T : Sched->tenants())
      T->ReqCounter =
          &Reg.counter("smltcc_tenant_requests_total",
                       "Compile requests per tenant (cache hits included)",
                       "tenant", T->Cfg.Name);
    for (auto &T : Sched->tenants())
      T->RejCounter = &Reg.counter(
          "smltcc_tenant_rejects_total",
          "Per-tenant admission rejections (quota or global queue cap)",
          "tenant", T->Cfg.Name);
    for (auto &T : Sched->tenants())
      Reg.gaugeFn(
          "smltcc_tenant_inflight",
          [TP = T.get()] { return static_cast<double>(TP->InFlight); },
          "Jobs released to the worker pool per tenant", "tenant",
          T->Cfg.Name);
    for (auto &T : Sched->tenants())
      T->LatencyHist = &Reg.histogram(
          "smltcc_tenant_request_seconds", obs::Histogram::latencyBuckets(),
          "Compile request latency by tenant", "tenant", T->Cfg.Name);
  }
}

void CompileServer::recordRequestDone(
    std::chrono::steady_clock::time_point Arrival, uint64_t RequestId,
    const char *Tier, obs::Histogram *TenantHist,
    const obs::TraceContext &Ctx, uint64_t ServerSpanId,
    const std::string &Tenant, std::string PhasesJson) {
  auto Now = std::chrono::steady_clock::now();
  double Sec = std::chrono::duration<double>(Now - Arrival).count();
  int TierIdx = std::strcmp(Tier, "memory") == 0 ? 0
                : std::strcmp(Tier, "disk") == 0 ? 1
                                                 : 2;
  if (TierHist[TierIdx])
    TierHist[TierIdx]->observe(Sec);
  if (TenantHist)
    TenantHist->observe(Sec);
  obs::Tracer &T = obs::Tracer::instance();
  if (obs::Tracer::enabled()) {
    std::string Args = "\"request_id\":" + std::to_string(RequestId) +
                       ",\"tier\":\"" + Tier + "\"";
    // Ctx.SpanId is the remote sender's span (the wire ParentSpanId);
    // the request span we emit here carries its own minted id so
    // job-side spans can parent under it.
    T.emitComplete("request", "server", T.toUs(Arrival),
                   static_cast<uint64_t>(Sec * 1e6), std::move(Args), Ctx,
                   ServerSpanId, Ctx.SpanId);
  }
  obs::RequestSample S;
  S.RequestId = RequestId;
  S.TraceIdHi = Ctx.TraceIdHi;
  S.TraceIdLo = Ctx.TraceIdLo;
  S.TsUs = T.toUs(Arrival);
  S.Sec = Sec;
  S.Kind = Tier;
  S.Tenant = Tenant;
  S.PhasesJson = std::move(PhasesJson);
  obs::RequestLog::instance().record(std::move(S));
  // Stamp the log line with the request's trace id, not whatever
  // context the poll thread happens to carry.
  obs::ScopedTraceContext LogCtx(Ctx);
  SMLTC_LOG(obs::LogLevel::Info, "server", "request_done",
            obs::LogFields()
                .add("request_id", RequestId)
                .add("tier", Tier)
                .add("sec", Sec)
                .add("tenant", Tenant)
                .take());
}

std::string CompileServer::renderStatusz() const {
  double Uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - StartTime)
                      .count();
  obs::JsonWriter W;
  W.beginObject();
  W.field("role", "shard");
  W.key("build")
      .beginObject()
      .field("version", compilerVersion())
      .field("cache_schema", optionsSchemaVersion())
      .field("protocol", static_cast<int>(kProtocolVersion))
      .endObject();
  W.field("uptime_sec", Uptime, 1);
  W.field("draining", Draining);
  W.field("connections", static_cast<uint64_t>(Conns.size()));
  W.field("in_flight", static_cast<uint64_t>(InFlightTotal));
  W.field("queue_depth",
          static_cast<uint64_t>((Sched ? Sched->totalQueued() : 0) +
                                (Pool ? Pool->pendingJobs() : 0)));
  W.field("compile_requests", Metrics.CompileRequests);
  W.field("auth_required", AuthRequired);
  W.key("tenants").beginArray();
  if (Sched) {
    for (const auto &T : Sched->tenants()) {
      W.beginObject()
          .field("name", T->Cfg.Name)
          .field("weight", static_cast<uint64_t>(T->Cfg.Weight))
          .field("queued", static_cast<uint64_t>(T->Q.size()))
          .field("max_queued", static_cast<uint64_t>(T->Cfg.MaxQueued))
          .field("in_flight", static_cast<uint64_t>(T->InFlight))
          .field("max_in_flight",
                 static_cast<uint64_t>(T->Cfg.MaxInFlight))
          .field("requests", T->Requests)
          .field("quota_rejects", T->QuotaRejects)
          .endObject();
    }
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string CompileServer::renderHumanStats() const {
  const ServerMetrics &M = Metrics;
  double Uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - StartTime)
                      .count();
  size_t Depth =
      (Sched ? Sched->totalQueued() : 0) + (Pool ? Pool->pendingJobs() : 0);
  char Buf[512];
  std::string S = "smltcc compile server\n";
  std::snprintf(Buf, sizeof(Buf), "  uptime_sec:        %.1f\n", Uptime);
  S += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  queue_depth:       %zu (peak %zu)\n", Depth,
                M.QueueDepthPeak);
  S += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  connections:       %llu (%llu rejected)\n",
                static_cast<unsigned long long>(M.Connections),
                static_cast<unsigned long long>(M.ConnectionsRejected));
  S += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  compile_requests:  %llu (ok %llu, errors %llu)\n",
                static_cast<unsigned long long>(M.CompileRequests),
                static_cast<unsigned long long>(M.CompileOk),
                static_cast<unsigned long long>(M.CompileErrors));
  S += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "  rejects:           queue_full %llu, deadline %llu, draining "
      "%llu\n",
      static_cast<unsigned long long>(M.QueueFullRejects),
      static_cast<unsigned long long>(M.DeadlineMisses),
      static_cast<unsigned long long>(M.DrainingRejects));
  S += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  cache:             memory %llu, disk %llu, miss %llu\n",
                static_cast<unsigned long long>(M.MemoryHits),
                static_cast<unsigned long long>(M.DiskHits),
                static_cast<unsigned long long>(M.CacheMisses));
  S += Buf;
  S += "  request latency (sec, by cache tier):\n";
  static const char *const Tiers[3] = {"memory", "disk", "miss"};
  for (int I = 0; I < 3; ++I) {
    const obs::Histogram *H = TierHist[I];
    if (!H)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "    %-7s count=%llu p50=%.6f p99=%.6f\n", Tiers[I],
                  static_cast<unsigned long long>(H->count()),
                  H->percentile(0.50), H->percentile(0.99));
    S += Buf;
  }
  if (AuthRequired && Sched) {
    S += "  tenants (weight | requests admitted rejects inflight):\n";
    for (const auto &T : Sched->tenants()) {
      std::snprintf(Buf, sizeof(Buf),
                    "    %-16s w=%u | %llu %llu %llu %u\n",
                    T->Cfg.Name.c_str(), T->Cfg.Weight,
                    static_cast<unsigned long long>(T->Requests),
                    static_cast<unsigned long long>(T->Admitted),
                    static_cast<unsigned long long>(T->QuotaRejects),
                    T->InFlight);
      S += Buf;
    }
  }
  return S;
}

void CompileServer::requestStop() {
  StopRequested.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 's';
    // Best effort: if the pipe is full the loop is waking up anyway.
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void CompileServer::installSignalHandlers(CompileServer *S) {
  GSignalServer = S;
  struct sigaction Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sa_handler = onStopSignal;
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);
}

std::string CompileServer::metricsJson() const {
  size_t Depth =
      (Sched ? Sched->totalQueued() : 0) + (Pool ? Pool->pendingJobs() : 0);
  return Metrics.toJson(Depth, Disk.get());
}

void CompileServer::send(Conn &C, MsgType Type, const std::string &Payload) {
  std::string F = encodeFrame(Type, Payload);
  Metrics.BytesOut += F.size();
  C.OutBuf.append(F);
  flushClient(C);
}

void CompileServer::sendError(Conn &C, Status St, const std::string &Msg) {
  ErrorMsg E;
  E.St = St;
  E.Message = Msg;
  send(C, MsgType::Error, encodeError(E));
}

void CompileServer::sendCompileStatus(Conn &C, Status St,
                                      const std::string &Msg,
                                      uint64_t RequestId) {
  CompileResponse Resp;
  Resp.St = St;
  Resp.RequestId = RequestId;
  Resp.Errors = Msg;
  send(C, MsgType::CompileResp, encodeCompileResponse(Resp));
}

void CompileServer::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  SMLTC_LOG(obs::LogLevel::Info, "server", "drain_begin",
            obs::LogFields()
                .add("pending", static_cast<uint64_t>(Pending.size()))
                .add("in_flight", static_cast<uint64_t>(InFlightTotal))
                .take());
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (TcpListenFd >= 0) {
    ::close(TcpListenFd);
    TcpListenFd = -1;
  }
  // Jobs still waiting in tenant queues were never released to a
  // worker, so no completion will arrive for them: answer each with
  // Draining right now. (In-flight jobs keep running and drain through
  // the normal completion path.)
  if (Sched) {
    for (farm::QueuedJob &J : Sched->drainAll()) {
      auto PIt = Pending.find(std::make_pair(J.ConnId, J.Seq));
      uint64_t RequestId = 0;
      bool Responded = false;
      if (PIt != Pending.end()) {
        RequestId = PIt->second.RequestId;
        Responded = PIt->second.Responded;
        Pending.erase(PIt);
      }
      auto CIt = Conns.find(J.ConnId);
      if (CIt == Conns.end())
        continue;
      if (CIt->second.InFlight > 0)
        --CIt->second.InFlight;
      if (!Responded) {
        ++Metrics.DrainingRejects;
        sendCompileStatus(CIt->second, Status::Draining,
                          "server is draining", RequestId);
      }
    }
  }
}

bool CompileServer::drainComplete() const {
  if (InFlightTotal > 0)
    return false;
  if (Sched && Sched->totalQueued() > 0)
    return false;
  for (const auto &KV : Conns)
    if (KV.second.OutPos < KV.second.OutBuf.size())
      return false;
  return true;
}

void CompileServer::acceptClients(int ListenerFd) {
  for (;;) {
    int Fd = ::accept(ListenerFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient error: poll again
    if (Conns.size() >= Opts.MaxConnections) {
      ++Metrics.ConnectionsRejected;
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    if (ListenerFd == TcpListenFd) {
      // Responses are one write each; don't let Nagle sit on them.
      int One = 1;
      (void)::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    }
    Conn C;
    C.Fd = Fd;
    C.Id = NextConnId++;
    ++Metrics.Connections;
    Conns.emplace(C.Id, std::move(C));
  }
}

void CompileServer::closeConn(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  if (It->second.Fd >= 0)
    ::close(It->second.Fd);
  // Pending compile entries for this connection stay in `Pending`; the
  // completion path drops their results on the floor when it finds the
  // connection gone.
  Conns.erase(It);
}

void CompileServer::handleCompile(Conn &C, const Frame &F) {
  ++Metrics.CompileRequests;
  auto Arrival = std::chrono::steady_clock::now();
  CompileRequest Req;
  std::string DecodeErr;
  if (!decodeCompileRequest(F.Payload, Req, DecodeErr)) {
    ++Metrics.ProtocolErrors;
    sendError(C, Status::BadFrame, DecodeErr);
    C.Closing = true;
    return;
  }
  if (!C.Tenant) {
    ++Metrics.AuthRejects;
    sendCompileStatus(C, Status::Unauthorized,
                      "tenant authentication required before compiling",
                      Req.RequestId);
    return;
  }
  ++C.Tenant->Requests;
  if (C.Tenant->ReqCounter)
    C.Tenant->ReqCounter->inc();
  if (Draining) {
    ++Metrics.DrainingRejects;
    sendCompileStatus(C, Status::Draining, "server is draining",
                      Req.RequestId);
    return;
  }

  // Distributed trace context off the wire (v4), plus the span id this
  // server's "request" span will carry — the parent for everything the
  // job does here.
  obs::TraceContext WireCtx{Req.TraceIdHi, Req.TraceIdLo,
                            Req.ParentSpanId};
  uint64_t ServerSpanId = WireCtx.valid() ? obs::mintSpanId() : 0;
  const std::string &TenantName = C.Tenant->Cfg.Name;

  // Fast path: cache hits (memory or disk tier) are answered straight
  // from the poll loop — no worker handoff, no admission charge. A disk
  // probe is one bounded small-file read, cheap enough to keep inline;
  // only true compiles go to the pool.
  {
    CacheTier Tier = CacheTier::Miss;
    std::shared_ptr<const CompileOutput> Hit =
        Cache->lookup(Req.Source, Req.Opts, Req.WithPrelude, Tier);
    if (Hit) {
      const char *TierName = Tier == CacheTier::Disk ? "disk" : "memory";
      if (!Hit->Ok) {
        ++Metrics.CompileErrors;
        sendCompileStatus(C, Status::CompileFailed, Hit->Errors,
                          Req.RequestId);
        recordRequestDone(Arrival, Req.RequestId, TierName,
                          C.Tenant->LatencyHist, WireCtx, ServerSpanId,
                          TenantName);
        return;
      }
      ++Metrics.CompileOk;
      if (Tier == CacheTier::Disk)
        ++Metrics.DiskHits;
      else
        ++Metrics.MemoryHits;
      CompileResponse Resp;
      Resp.St = Status::Ok;
      Resp.Tier =
          Tier == CacheTier::Disk ? WireTier::Disk : WireTier::Memory;
      Resp.RequestId = Req.RequestId;
      send(C, MsgType::CompileResp,
           encodeCompileResponse(Resp, Hit->Program));
      recordRequestDone(Arrival, Req.RequestId, TierName,
                        C.Tenant->LatencyHist, WireCtx, ServerSpanId,
                        TenantName);
      return;
    }
  }

  uint64_t ConnId = C.Id;
  uint64_t Seq = C.NextSeq++;
  farm::QueuedJob QJ;
  QJ.ConnId = ConnId;
  QJ.Seq = Seq;
  QJ.Job.Source = std::move(Req.Source);
  QJ.Job.Opts = Req.Opts;
  QJ.Job.WithPrelude = Req.WithPrelude;
  QJ.Job.TraceRequestId = Req.RequestId;
  // The worker installs this context for the job's scope: compile_job
  // and the phase spans under it parent into the server's request span.
  QJ.Job.TraceIdHi = Req.TraceIdHi;
  QJ.Job.TraceIdLo = Req.TraceIdLo;
  QJ.Job.ParentSpanId = ServerSpanId;
  QJ.DeadlineMs = Req.DeadlineMs;

  farm::FairShareScheduler::Verdict V =
      Sched->enqueue(*C.Tenant, std::move(QJ));
  if (V != farm::FairShareScheduler::Verdict::Queued) {
    ++Metrics.QueueFullRejects;
    if (V == farm::FairShareScheduler::Verdict::TenantQueueFull)
      ++Metrics.TenantQuotaRejects;
    if (C.Tenant->RejCounter)
      C.Tenant->RejCounter->inc();
    sendCompileStatus(
        C, Status::QueueFull,
        V == farm::FairShareScheduler::Verdict::TenantQueueFull
            ? "tenant queue quota at capacity; retry later"
            : "compile queue at capacity; retry later",
        Req.RequestId);
    return;
  }

  PendingReq P;
  P.Arrival = Arrival;
  P.RequestId = Req.RequestId;
  P.TraceIdHi = Req.TraceIdHi;
  P.TraceIdLo = Req.TraceIdLo;
  P.WireParentSpanId = Req.ParentSpanId;
  P.ServerSpanId = ServerSpanId;
  P.Tenant = C.Tenant;
  if (Req.DeadlineMs) {
    P.HasDeadline = true;
    P.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Req.DeadlineMs);
  }
  Pending.emplace(std::make_pair(ConnId, Seq), P);
  ++C.InFlight;
  size_t Depth = Sched->totalQueued();
  if (Depth > Metrics.QueueDepthPeak)
    Metrics.QueueDepthPeak = Depth;
  pumpScheduler();
}

void CompileServer::pumpScheduler() {
  if (!Sched || !Pool)
    return;
  while (InFlightTotal < PoolTargetInFlight) {
    farm::QueuedJob J;
    farm::FairShareScheduler::Tenant *Owner = nullptr;
    if (!Sched->popNext(J, Owner))
      return;
    auto PIt = Pending.find(std::make_pair(J.ConnId, J.Seq));
    auto CIt = Conns.find(J.ConnId);
    if (PIt == Pending.end() || PIt->second.Responded ||
        CIt == Conns.end()) {
      // The deadline sweep already answered it, or the client left:
      // the job never runs, so settle the tenant's in-flight charge
      // here instead of in the completion path.
      Sched->onComplete(*Owner);
      if (PIt != Pending.end())
        Pending.erase(PIt);
      if (CIt != Conns.end() && CIt->second.InFlight > 0)
        --CIt->second.InFlight;
      continue;
    }
    uint64_t RequestId = PIt->second.RequestId;
    PIt->second.Submitted = true;
    if (!submitToPool(std::move(J))) {
      // Pool is shutting down; nothing further will be accepted.
      Sched->onComplete(*Owner);
      Pending.erase(PIt);
      if (CIt->second.InFlight > 0)
        --CIt->second.InFlight;
      ++Metrics.DrainingRejects;
      sendCompileStatus(CIt->second, Status::Draining,
                        "server is shutting down", RequestId);
      continue;
    }
    ++InFlightTotal;
  }
}

bool CompileServer::submitToPool(farm::QueuedJob J) {
  uint64_t ConnId = J.ConnId;
  uint64_t Seq = J.Seq;
  uint32_t DeadlineMs = J.DeadlineMs;
  SubmitStatus St = Pool->submitJob(
      std::move(J.Job),
      [this, ConnId, Seq](AsyncCompileResult R) {
        {
          std::lock_guard<std::mutex> Lock(CompMutex);
          Completions.push_back(Completion{ConnId, Seq, std::move(R)});
        }
        char B = 'c';
        (void)!::write(WakePipe[1], &B, 1);
      },
      DeadlineMs);
  return St == SubmitStatus::Accepted;
}

void CompileServer::handleTenantAuth(Conn &C, const Frame &F) {
  ++Metrics.AuthRequests;
  TenantAuthMsg M;
  if (!decodeTenantAuth(F.Payload, M)) {
    ++Metrics.ProtocolErrors;
    sendError(C, Status::BadFrame, "malformed tenant auth");
    C.Closing = true;
    return;
  }
  if (AuthRequired) {
    const farm::TenantConfig *T = Tenants.byToken(M.Token);
    if (!T) {
      ++Metrics.AuthRejects;
      SMLTC_LOG(obs::LogLevel::Warn, "server", "auth_reject",
                obs::LogFields().add("conn_id", C.Id).take());
      sendError(C, Status::Unauthorized, "unknown tenant token");
      C.Closing = true;
      return;
    }
    C.Tenant = Sched->byName(T->Name);
  }
  // Without a token file C.Tenant is already the implicit default
  // (assigned at Hello); answer AuthOk anyway so clients can send a
  // token unconditionally.
  AuthOkMsg Ok;
  Ok.Tenant = C.Tenant->Cfg.Name;
  Ok.Weight = C.Tenant->Cfg.Weight;
  Ok.MaxInFlight = C.Tenant->Cfg.MaxInFlight;
  Ok.MaxQueued = C.Tenant->Cfg.MaxQueued;
  send(C, MsgType::AuthOk, encodeAuthOk(Ok));
}

void CompileServer::handleHttp(Conn &C) {
  std::string Method, Path;
  farm::HttpParse R = farm::parseHttpRequest(C.In, Method, Path);
  if (R == farm::HttpParse::NeedMore)
    return;
  ++Metrics.Requests;
  std::string Resp;
  if (R == farm::HttpParse::Bad) {
    ++Metrics.ProtocolErrors;
    Resp = farm::httpResponse(400, "text/plain; charset=utf-8",
                              "bad request\n");
  } else if (Method != "GET" && Method != "HEAD") {
    Resp = farm::httpResponse(405, "text/plain; charset=utf-8",
                              "method not allowed\n");
  } else if (Path == "/metrics") {
    ++Metrics.ScrapeRequests;
    Resp = farm::httpResponse(200, farm::kPromContentType,
                              Reg.renderPrometheus(), Method == "HEAD");
  } else if (Path == "/healthz") {
    // Readiness: a draining server answers 503 so a farm front door
    // stops routing to it before the socket actually closes.
    Resp = Draining
               ? farm::httpResponse(503, "text/plain; charset=utf-8",
                                    "draining\n", Method == "HEAD")
               : farm::httpResponse(200, "text/plain; charset=utf-8",
                                    "ok\n", Method == "HEAD");
  } else if (Path == "/statusz") {
    Resp = farm::httpResponse(200, "application/json; charset=utf-8",
                              renderStatusz(), Method == "HEAD");
  } else if (Path == "/tracez") {
    Resp = farm::httpResponse(200, "application/json; charset=utf-8",
                              obs::renderTracezJson(), Method == "HEAD");
  } else {
    Resp = farm::httpResponse(
        404, "text/plain; charset=utf-8",
        "not found; try /metrics, /healthz, /statusz, /tracez\n");
  }
  Metrics.BytesOut += Resp.size();
  C.OutBuf.append(Resp);
  C.In.clear();
  C.Closing = true; // one request per connection
  flushClient(C);
}

void CompileServer::handleFrame(Conn &C, const Frame &F) {
  ++Metrics.Requests;
  if (!C.GotHello && F.Type != MsgType::Hello) {
    ++Metrics.ProtocolErrors;
    sendError(C, Status::BadFrame, "expected hello handshake first");
    C.Closing = true;
    return;
  }
  switch (F.Type) {
  case MsgType::Hello: {
    HelloMsg H;
    if (!decodeHello(F.Payload, H)) {
      ++Metrics.ProtocolErrors;
      sendError(C, Status::BadFrame, "malformed hello");
      C.Closing = true;
      return;
    }
    if (kProtocolVersion < H.MinVersion || kProtocolVersion > H.MaxVersion) {
      ++Metrics.ProtocolErrors;
      sendError(C, Status::BadVersion,
                "server speaks protocol version " +
                    std::to_string(kProtocolVersion));
      C.Closing = true;
      return;
    }
    C.GotHello = true;
    if (!AuthRequired)
      C.Tenant = Sched->byName("default");
    HelloOkMsg Ok;
    Ok.ServerName = "smltccd";
    send(C, MsgType::HelloOk, encodeHelloOk(Ok));
    return;
  }
  case MsgType::TenantAuth:
    handleTenantAuth(C, F);
    return;
  case MsgType::Ping: {
    ++Metrics.PingRequests;
    if (F.Payload.size() > kMaxPingPayload) {
      ++Metrics.ProtocolErrors;
      sendError(C, Status::BadFrame, "ping payload too large");
      C.Closing = true;
      return;
    }
    send(C, MsgType::Pong, F.Payload);
    return;
  }
  case MsgType::CompileReq:
    handleCompile(C, F);
    return;
  case MsgType::StatsReq: {
    ++Metrics.StatsRequests;
    WireWriter W;
    W.str(metricsJson());
    send(C, MsgType::StatsResp, W.take());
    return;
  }
  case MsgType::StatsTextReq: {
    ++Metrics.StatsRequests;
    StatsTextRequest Req;
    if (!decodeStatsTextRequest(F.Payload, Req)) {
      ++Metrics.ProtocolErrors;
      sendError(C, Status::BadFrame, "malformed stats-text request");
      C.Closing = true;
      return;
    }
    StatsTextResponse Resp;
    Resp.Format = Req.Format;
    Resp.Text = Req.Format == StatsFormat::Prometheus
                    ? Reg.renderPrometheus()
                    : renderHumanStats();
    send(C, MsgType::StatsTextResp, encodeStatsTextResponse(Resp));
    return;
  }
  case MsgType::ShutdownReq: {
    if (AuthRequired && !C.Tenant) {
      ++Metrics.AuthRejects;
      sendError(C, Status::Unauthorized,
                "tenant authentication required to shut the server down");
      C.Closing = true;
      return;
    }
    ++Metrics.ShutdownRequests;
    send(C, MsgType::ShutdownOk, std::string());
    C.Closing = true;
    beginDrain();
    return;
  }
  default:
    ++Metrics.ProtocolErrors;
    sendError(C, Status::UnknownType,
              "unknown message type " +
                  std::to_string(static_cast<unsigned>(F.Type)));
    C.Closing = true;
    return;
  }
}

void CompileServer::readClient(Conn &C) {
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Metrics.BytesIn += static_cast<uint64_t>(N);
      C.In.append(Buf, static_cast<size_t>(N));
      if (N < static_cast<ssize_t>(sizeof(Buf)))
        break;
      continue;
    }
    if (N == 0) {
      // Peer closed: nothing more can be answered on this connection.
      C.Closing = true;
      C.OutBuf.clear();
      C.OutPos = 0;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      break;
    C.Closing = true; // hard error
    C.OutBuf.clear();
    C.OutPos = 0;
    break;
  }

  // The TCP listener doubles as a Prometheus scrape target: bytes that
  // start like an HTTP request line are routed to the tiny HTTP
  // handler instead of the frame parser (the frame magic can never
  // collide with a method name).
  if (!C.Http && !C.GotHello && farm::looksLikeHttp(C.In))
    C.Http = true;
  if (C.Http) {
    if (!C.Closing)
      handleHttp(C);
    return;
  }

  while (!C.Closing && !C.In.empty()) {
    Frame F;
    size_t Consumed = 0;
    Status Err;
    std::string ErrMsg;
    ParseResult R = parseFrame(C.In.data(), C.In.size(), F, Consumed, Err,
                               ErrMsg);
    if (R == ParseResult::NeedMore)
      break;
    if (R == ParseResult::Bad) {
      ++Metrics.ProtocolErrors;
      sendError(C, Err, ErrMsg);
      C.Closing = true;
      break;
    }
    C.In.erase(0, Consumed);
    handleFrame(C, F);
  }
}

void CompileServer::flushClient(Conn &C) {
  while (C.OutPos < C.OutBuf.size()) {
    ssize_t N = ::send(C.Fd, C.OutBuf.data() + C.OutPos,
                       C.OutBuf.size() - C.OutPos, MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
      return; // poll for POLLOUT
    // Hard write error: the peer is gone.
    C.Closing = true;
    C.OutBuf.clear();
    C.OutPos = 0;
    return;
  }
  C.OutBuf.clear();
  C.OutPos = 0;
}

void CompileServer::drainCompletions() {
  std::vector<Completion> Done;
  {
    std::lock_guard<std::mutex> Lock(CompMutex);
    Done.swap(Completions);
  }
  for (Completion &Cm : Done) {
    if (InFlightTotal > 0)
      --InFlightTotal;
    auto PIt = Pending.find(std::make_pair(Cm.ConnId, Cm.Seq));
    bool AlreadyResponded = PIt != Pending.end() && PIt->second.Responded;
    bool PastDeadline =
        PIt != Pending.end() && PIt->second.HasDeadline &&
        std::chrono::steady_clock::now() >= PIt->second.Deadline;
    uint64_t RequestId = PIt != Pending.end() ? PIt->second.RequestId : 0;
    auto Arrival = PIt != Pending.end()
                       ? PIt->second.Arrival
                       : std::chrono::steady_clock::now();
    obs::TraceContext ReqCtx;
    uint64_t ServerSpanId = 0;
    std::string TenantName;
    obs::Histogram *TenantHist = nullptr;
    if (PIt != Pending.end()) {
      ReqCtx = obs::TraceContext{PIt->second.TraceIdHi,
                                 PIt->second.TraceIdLo,
                                 PIt->second.WireParentSpanId};
      ServerSpanId = PIt->second.ServerSpanId;
    }
    if (PIt != Pending.end() && PIt->second.Tenant) {
      // Return the fair-share in-flight slot; the tenant record
      // outlives every connection, so this is safe even when the
      // client is gone.
      Sched->onComplete(*PIt->second.Tenant);
      TenantHist = PIt->second.Tenant->LatencyHist;
      TenantName = PIt->second.Tenant->Cfg.Name;
    }
    if (PIt != Pending.end())
      Pending.erase(PIt);

    auto CIt = Conns.find(Cm.ConnId);
    if (CIt == Conns.end())
      continue; // client went away; drop the result
    Conn &C = CIt->second;
    if (C.InFlight > 0)
      --C.InFlight;
    if (AlreadyResponded)
      continue; // the deadline sweep answered this one

    const CompileOutput &Out = Cm.R.Out;
    if (Cm.R.DeadlineExpired || PastDeadline) {
      ++Metrics.DeadlineMisses;
      sendCompileStatus(C, Status::DeadlineExceeded,
                        Cm.R.DeadlineExpired
                            ? "deadline exceeded while queued"
                            : "deadline exceeded during compilation",
                        RequestId);
      continue;
    }
    const char *TierName = Out.Metrics.CacheDiskHit ? "disk"
                           : Out.Metrics.CacheHit   ? "memory"
                                                    : "miss";
    // Per-phase breakdown for /tracez (a true compile has real phase
    // timings; cache hits report zeros and get no breakdown).
    std::string Phases;
    if (!Out.Metrics.CacheHit && Out.Metrics.TotalSec > 0) {
      Phases = "\"queue_wait_sec\":" +
               obs::jsonDouble(Out.Metrics.QueueWaitSec, 6) +
               ",\"front_sec\":" + obs::jsonDouble(Out.Metrics.FrontSec, 6) +
               ",\"translate_sec\":" +
               obs::jsonDouble(Out.Metrics.TranslateSec, 6) +
               ",\"back_sec\":" + obs::jsonDouble(Out.Metrics.BackSec, 6) +
               ",\"total_sec\":" + obs::jsonDouble(Out.Metrics.TotalSec, 6);
    }
    if (!Out.Ok) {
      ++Metrics.CompileErrors;
      sendCompileStatus(C, Status::CompileFailed, Out.Errors, RequestId);
      recordRequestDone(Arrival, RequestId, TierName, TenantHist, ReqCtx,
                        ServerSpanId, TenantName, std::move(Phases));
      continue;
    }
    ++Metrics.CompileOk;
    if (Out.Metrics.CacheDiskHit)
      ++Metrics.DiskHits;
    else if (Out.Metrics.CacheHit)
      ++Metrics.MemoryHits;
    else
      ++Metrics.CacheMisses;

    CompileResponse Resp;
    Resp.St = Status::Ok;
    Resp.Tier = Out.Metrics.CacheDiskHit
                    ? WireTier::Disk
                    : (Out.Metrics.CacheHit ? WireTier::Memory
                                            : WireTier::Miss);
    Resp.RequestId = RequestId;
    Resp.CompileSec = Out.Metrics.CacheHit ? 0.0 : Out.Metrics.TotalSec;
    Resp.Program = Out.Program;
    send(C, MsgType::CompileResp, encodeCompileResponse(Resp));
    recordRequestDone(Arrival, RequestId, TierName, TenantHist, ReqCtx,
                      ServerSpanId, TenantName, std::move(Phases));
  }
  // Workers freed up: release the next fair-share picks.
  pumpScheduler();
}

void CompileServer::sweepDeadlines() {
  auto Now = std::chrono::steady_clock::now();
  for (auto &KV : Pending) {
    PendingReq &P = KV.second;
    if (P.Responded || !P.HasDeadline || Now < P.Deadline)
      continue;
    P.Responded = true;
    ++Metrics.DeadlineMisses;
    auto CIt = Conns.find(KV.first.first);
    if (CIt == Conns.end())
      continue;
    // The job may still be queued or even mid-compile; the client gets
    // its answer now and the eventual result is dropped.
    sendCompileStatus(CIt->second, Status::DeadlineExceeded,
                      "deadline exceeded", P.RequestId);
  }
}

uint64_t CompileServer::run() {
  obs::Tracer::setThreadName("server-poll");
  std::vector<pollfd> Fds;
  std::vector<uint64_t> ConnIds;
  while (true) {
    if (StopRequested.load(std::memory_order_acquire))
      beginDrain();
    if (Draining && drainComplete())
      break;

    Fds.clear();
    ConnIds.clear();
    Fds.push_back(pollfd{WakePipe[0], POLLIN, 0});
    size_t UnixIdx = SIZE_MAX, TcpIdx = SIZE_MAX;
    if (ListenFd >= 0) {
      UnixIdx = Fds.size();
      Fds.push_back(pollfd{ListenFd, POLLIN, 0});
    }
    if (TcpListenFd >= 0) {
      TcpIdx = Fds.size();
      Fds.push_back(pollfd{TcpListenFd, POLLIN, 0});
    }
    size_t ConnBase = Fds.size();
    for (auto &KV : Conns) {
      short Ev = POLLIN;
      if (KV.second.OutPos < KV.second.OutBuf.size())
        Ev |= POLLOUT;
      Fds.push_back(pollfd{KV.second.Fd, Ev, 0});
      ConnIds.push_back(KV.first);
    }

    int PR = ::poll(Fds.data(), Fds.size(), Opts.PollIntervalMs);
    if (PR < 0 && errno != EINTR)
      break; // fatal

    // Drain the wake pipe (completions and/or stop requests).
    if (Fds[0].revents & POLLIN) {
      char Sink[256];
      while (::read(WakePipe[0], Sink, sizeof(Sink)) > 0) {
      }
    }
    drainCompletions();
    sweepDeadlines();

    if (UnixIdx != SIZE_MAX && ListenFd >= 0 &&
        (Fds[UnixIdx].revents & POLLIN))
      acceptClients(ListenFd);
    if (TcpIdx != SIZE_MAX && TcpListenFd >= 0 &&
        (Fds[TcpIdx].revents & POLLIN))
      acceptClients(TcpListenFd);

    for (size_t I = 0; I < ConnIds.size(); ++I) {
      auto It = Conns.find(ConnIds[I]);
      if (It == Conns.end())
        continue;
      Conn &C = It->second;
      short Rev = Fds[ConnBase + I].revents;
      if (Rev & (POLLIN | POLLHUP | POLLERR))
        readClient(C);
      if (!C.Closing && (Rev & POLLOUT))
        flushClient(C);
    }

    // Close connections that asked to close and have flushed (or died).
    std::vector<uint64_t> ToClose;
    for (auto &KV : Conns)
      if (KV.second.Closing && KV.second.OutPos >= KV.second.OutBuf.size())
        ToClose.push_back(KV.first);
    for (uint64_t Id : ToClose)
      closeConn(Id);
  }

  // Drained: everything answered and flushed; drop remaining links.
  std::vector<uint64_t> All;
  for (auto &KV : Conns)
    All.push_back(KV.first);
  for (uint64_t Id : All)
    closeConn(Id);
  // Force-record any span still open on any thread (workers parked
  // mid-span, a job the drain abandoned): the --trace-json file written
  // after run() returns must never be missing in-flight work.
  obs::Tracer::instance().flushActive();
  SMLTC_LOG(obs::LogLevel::Info, "server", "drain_complete",
            obs::LogFields()
                .add("compile_requests", Metrics.CompileRequests)
                .take());
  return Metrics.CompileRequests;
}
