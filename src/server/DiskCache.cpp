//===- server/DiskCache.cpp - Persistent content-addressed compile cache -----===//

#include "server/DiskCache.h"

#include "obs/Json.h"
#include "server/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <vector>

using namespace smltc;
using namespace smltc::server;

namespace {

constexpr uint32_t kFileMagic = 0x31434353u; // "SCC1" little-endian
constexpr uint32_t kFileVersion = 1;
/// magic + version + checksum
constexpr size_t kFileHeaderBytes = 16;

std::string hex16(uint64_t H) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

bool readWholeFile(const std::string &Path, std::string &Bytes) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In)
    return false;
  std::streamoff Size = In.tellg();
  if (Size < 0)
    return false;
  std::string S(static_cast<size_t>(Size), '\0');
  In.seekg(0);
  if (Size > 0 && !In.read(&S[0], Size))
    return false;
  Bytes = std::move(S);
  return true;
}

bool ensureDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
    return true;
  return false;
}

struct ScanEntry {
  std::string Path;
  uint64_t Size = 0;
  time_t Mtime = 0;
};

/// Walks root/<hh>/*.scc, calling Fn for every entry.
template <typename FnT> void scanEntries(const std::string &Root, FnT Fn) {
  DIR *Top = ::opendir(Root.c_str());
  if (!Top)
    return;
  while (dirent *Shard = ::readdir(Top)) {
    if (Shard->d_name[0] == '.')
      continue;
    std::string ShardPath = Root + "/" + Shard->d_name;
    DIR *D = ::opendir(ShardPath.c_str());
    if (!D)
      continue;
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() < 4 || Name.substr(Name.size() - 4) != ".scc")
        continue;
      std::string Path = ShardPath + "/" + Name;
      struct stat St;
      if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
        continue;
      Fn(ScanEntry{Path, static_cast<uint64_t>(St.st_size), St.st_mtime});
    }
    ::closedir(D);
  }
  ::closedir(Top);
}

} // namespace

DiskCache::DiskCache(DiskCacheOptions Options) : Opts(std::move(Options)) {}

bool DiskCache::init(std::string &Err) {
  if (Opts.Root.empty()) {
    Err = "disk cache root path is empty";
    return false;
  }
  if (!ensureDir(Opts.Root)) {
    Err = "cannot create disk cache root '" + Opts.Root +
          "': " + std::strerror(errno);
    return false;
  }
  uint64_t Total = 0;
  scanEntries(Opts.Root, [&](const ScanEntry &E) { Total += E.Size; });
  Bytes.store(Total, std::memory_order_relaxed);
  return true;
}

std::string DiskCache::entryPath(uint64_t KeyHash) const {
  char Shard[3];
  std::snprintf(Shard, sizeof(Shard), "%02x",
                static_cast<unsigned>(KeyHash & 0xff));
  return Opts.Root + "/" + Shard + "/" + hex16(KeyHash) + ".scc";
}

std::shared_ptr<const CompileOutput>
DiskCache::load(uint64_t KeyHash, const std::string &Key) {
  Loads.fetch_add(1, std::memory_order_relaxed);
  std::string Path = entryPath(KeyHash);
  std::string Raw;
  if (!readWholeFile(Path, Raw))
    return nullptr; // plain miss: no entry on disk

  // Validate header + checksum; treat every failure mode as corruption:
  // drop the file so it is rebuilt, and report a miss.
  bool Valid = false;
  auto Out = std::make_shared<CompileOutput>();
  std::string StoredKey;
  if (Raw.size() >= kFileHeaderBytes) {
    WireReader Hdr(Raw.data(), kFileHeaderBytes);
    uint32_t Magic = Hdr.u32();
    uint32_t Version = Hdr.u32();
    uint64_t Checksum = Hdr.u64();
    if (Magic == kFileMagic && Version == kFileVersion &&
        Checksum == fnv1a64(Raw.substr(kFileHeaderBytes))) {
      WireReader Body(Raw.data() + kFileHeaderBytes,
                      Raw.size() - kFileHeaderBytes);
      StoredKey = Body.str();
      if (!Body.failed() && decodeCompileOutput(Body, *Out) &&
          Body.atEndOk())
        Valid = true;
    }
  }
  if (!Valid) {
    Corrupt.fetch_add(1, std::memory_order_relaxed);
    if (::unlink(Path.c_str()) == 0 &&
        Bytes.load(std::memory_order_relaxed) >= Raw.size())
      Bytes.fetch_sub(Raw.size(), std::memory_order_relaxed);
    return nullptr;
  }
  // A 64-bit hash collision must degrade to a miss, never a wrong
  // program: the full canonical key is stored and re-compared.
  if (StoredKey != Key)
    return nullptr;

  if (Opts.TouchOnHit) {
    // Refresh mtime so the LRU directory scan sees this entry as young.
    struct timespec Ts[2];
    Ts[0].tv_sec = 0;
    Ts[0].tv_nsec = UTIME_NOW;
    Ts[1].tv_sec = 0;
    Ts[1].tv_nsec = UTIME_NOW;
    ::utimensat(AT_FDCWD, Path.c_str(), Ts, 0);
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return Out;
}

void DiskCache::store(uint64_t KeyHash, const std::string &Key,
                      const CompileOutput &Out) {
  Stores.fetch_add(1, std::memory_order_relaxed);
  std::string Path = entryPath(KeyHash);
  std::string Dir = Path.substr(0, Path.rfind('/'));
  if (!ensureDir(Dir))
    return; // cache is best-effort: a failed store is just a future miss

  WireWriter Body;
  Body.str(Key);
  encodeCompileOutput(Body, Out);

  WireWriter File;
  File.u32(kFileMagic);
  File.u32(kFileVersion);
  File.u64(fnv1a64(Body.bytes()));
  File.raw(Body.bytes().data(), Body.bytes().size());
  const std::string &Blob = File.bytes();

  // Atomic publish: write a unique temp file in the same directory,
  // then rename over the final path. Readers see old, new, or nothing.
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpSeq.fetch_add(1));
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF || !OutF.write(Blob.data(),
                             static_cast<std::streamsize>(Blob.size()))) {
      ::unlink(Tmp.c_str());
      return;
    }
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return;
  }
  Bytes.fetch_add(Blob.size(), std::memory_order_relaxed);
  if (Bytes.load(std::memory_order_relaxed) > Opts.CapacityBytes)
    evictIfOver();
}

void DiskCache::evictIfOver() {
  // One scan at a time; concurrent writers that also trip the cap just
  // skip — the next store re-checks.
  std::unique_lock<std::mutex> Lock(EvictMutex, std::try_to_lock);
  if (!Lock.owns_lock())
    return;

  std::vector<ScanEntry> Entries;
  uint64_t Total = 0;
  scanEntries(Opts.Root, [&](const ScanEntry &E) {
    Total += E.Size;
    Entries.push_back(E);
  });
  Bytes.store(Total, std::memory_order_relaxed); // resync accounting
  if (Total <= Opts.CapacityBytes)
    return;

  std::sort(Entries.begin(), Entries.end(),
            [](const ScanEntry &A, const ScanEntry &B) {
              return A.Mtime < B.Mtime;
            });
  uint64_t Target = Opts.CapacityBytes - Opts.CapacityBytes / 10;
  for (const ScanEntry &E : Entries) {
    if (Total <= Target)
      break;
    if (::unlink(E.Path.c_str()) == 0) {
      Total -= E.Size;
      Evicted.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Bytes.store(Total, std::memory_order_relaxed);
}

std::string DiskCache::statsJson() const {
  obs::JsonWriter W;
  W.beginObject()
      .field("loads", loadCalls())
      .field("hits", loadHits())
      .field("corrupt_dropped", corruptDropped())
      .field("stores", storeCalls())
      .field("evicted_files", evictedFiles())
      .field("current_bytes", currentBytes())
      .endObject();
  return W.take();
}
