//===- server/DiskCache.h - Persistent content-addressed compile cache -------===//
///
/// \file
/// An on-disk, content-addressed store of `CompileOutput`s, layered
/// under the in-memory `CompileCache` via the `CacheBackingStore`
/// interface — a daemon restart keeps a warm cache.
///
/// Layout: `<root>/<hh>/<16-hex-key-hash>.scc`, sharded by the low byte
/// of the salted canonical-key hash. Each file is:
///
///     u32 magic "SCC1"    u32 format version
///     u64 fnv1a64 checksum of everything after this field
///     body: str canonical-key ; CompileOutput (server/Protocol codec)
///
/// Guarantees:
///  - Writes are atomic: temp file in the same directory + rename(2),
///    so readers (including concurrent daemons sharing the directory)
///    never observe a half-written entry.
///  - Reads are checksum-validated and the stored canonical key is
///    re-compared; any mismatch, short file, or decode failure counts
///    as corruption — the entry is unlinked and the lookup is a miss.
///  - The canonical key is salted with the compiler version and options
///    schema (driver/CompileCache), so entries written by older builds
///    can never be served: their hash never matches a new key.
///  - The store is size-capped: after a write pushes the running total
///    over `CapacityBytes`, the oldest entries by mtime are evicted
///    (directory scan, LRU approximation; hits refresh mtime) down to
///    90% of the cap.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SERVER_DISKCACHE_H
#define SMLTC_SERVER_DISKCACHE_H

#include "driver/CompileCache.h"

#include <atomic>
#include <mutex>
#include <string>

namespace smltc {
namespace server {

struct DiskCacheOptions {
  std::string Root;
  /// Total bytes of cache files kept on disk; eviction trims to 90%.
  uint64_t CapacityBytes = 256ull << 20;
  /// Refresh an entry's mtime on every hit so eviction approximates LRU
  /// rather than FIFO.
  bool TouchOnHit = true;
};

class DiskCache : public CacheBackingStore {
public:
  explicit DiskCache(DiskCacheOptions Options);

  /// Creates the root directory and scans existing entries into the
  /// size accounting. Returns false (with a reason) when the root
  /// cannot be created or opened.
  bool init(std::string &Err);

  std::shared_ptr<const CompileOutput>
  load(uint64_t KeyHash, const std::string &Key) override;
  void store(uint64_t KeyHash, const std::string &Key,
             const CompileOutput &Out) override;

  uint64_t loadCalls() const { return Loads.load(std::memory_order_relaxed); }
  uint64_t loadHits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t corruptDropped() const {
    return Corrupt.load(std::memory_order_relaxed);
  }
  uint64_t storeCalls() const { return Stores.load(std::memory_order_relaxed); }
  uint64_t evictedFiles() const {
    return Evicted.load(std::memory_order_relaxed);
  }
  uint64_t currentBytes() const {
    return Bytes.load(std::memory_order_relaxed);
  }

  /// Counters as a JSON object (for ServerMetrics embedding).
  std::string statsJson() const;

private:
  std::string entryPath(uint64_t KeyHash) const;
  void evictIfOver();

  DiskCacheOptions Opts;
  std::mutex EvictMutex; ///< one eviction scan at a time
  std::atomic<uint64_t> Loads{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Corrupt{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> Evicted{0};
  std::atomic<uint64_t> Bytes{0};
  std::atomic<uint64_t> TmpSeq{0};
};

} // namespace server
} // namespace smltc

#endif // SMLTC_SERVER_DISKCACHE_H
