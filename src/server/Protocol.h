//===- server/Protocol.h - Compile-server wire protocol ----------------------===//
///
/// \file
/// The length-prefixed binary frame format spoken between `smltcc
/// --connect` clients and the `smltcc --daemon` compile server over a
/// Unix-domain socket.
///
/// Every frame is a fixed 12-byte header followed by a payload:
///
///     offset  size  field
///     0       4     magic       0x53544C43 ("CLTS" on the wire, LE)
///     4       4     payload length (bytes; <= kMaxFramePayload)
///     8       1     message type (MsgType)
///     9       1     protocol version (kProtocolVersion)
///     10      2     reserved, must be zero
///
/// All multi-byte integers are little-endian and written byte-by-byte
/// (no struct punning), so the format is independent of host padding.
/// A connection starts with a Hello / HelloOk version handshake; any
/// frame with a bad magic, unsupported version, nonzero reserved bits,
/// or an over-limit declared length is answered with an Error frame and
/// the connection is closed — the server never reads unbounded input on
/// the say-so of a length field.
///
/// Payload encoding uses WireWriter / WireReader: bounds-checked,
/// deterministic, with explicit per-field serialization (the same
/// discipline as driver/CompileCache's canonical job keys). The
/// TmProgram codec here is also the disk-cache on-disk body format.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SERVER_PROTOCOL_H
#define SMLTC_SERVER_PROTOCOL_H

#include "driver/Compiler.h"
#include "driver/Options.h"

#include <cstdint>
#include <string>

namespace smltc {
namespace server {

constexpr uint32_t kFrameMagic = 0x53544C43u;
/// v2: CompileReq/CompileResp carry a client-assigned request id
/// (propagated into server-side trace spans), and StatsTextReq /
/// StatsTextResp expose the metrics registry as Prometheus text or a
/// human-readable summary.
/// v3: multi-tenant build farm. TenantAuth / AuthOk authenticate a
/// connection against the server's token file (Status::Unauthorized on
/// mismatch), and CompileReq carries the client-computed
/// content-addressed cache-key hash so a FarmRouter front door can
/// consistent-hash requests onto shard daemons without recompiling the
/// canonical key server-side.
/// v4: distributed tracing. CompileReq carries the client-minted
/// 128-bit trace id plus the sender's span id (TraceIdHi / TraceIdLo /
/// ParentSpanId), so router and shard spans for one routed compile link
/// into a single trace; the router rewrites ParentSpanId with its
/// forward span when re-encoding.
constexpr uint8_t kProtocolVersion = 4;
constexpr size_t kFrameHeaderBytes = 12;
/// Hard cap on any frame payload; a declared length above this is a
/// protocol error before a single payload byte is read.
constexpr uint32_t kMaxFramePayload = 64u << 20;
/// Cap on a compile request's source text, enforced after decode.
constexpr uint32_t kMaxSourceBytes = 16u << 20;
/// Ping payloads are echoed back; cap what we are willing to echo.
constexpr uint32_t kMaxPingPayload = 4096;

enum class MsgType : uint8_t {
  // Requests (client -> server).
  Hello = 1,
  Ping = 2,
  CompileReq = 3,
  StatsReq = 4,
  ShutdownReq = 5,
  StatsTextReq = 6, ///< rendered stats (Prometheus / human text), v2
  TenantAuth = 7,   ///< per-tenant token presented after Hello, v3
  // Responses (server -> client).
  HelloOk = 64,
  Pong = 65,
  CompileResp = 66,
  StatsResp = 67,
  ShutdownOk = 68,
  Error = 69,
  StatsTextResp = 70,
  AuthOk = 71, ///< TenantAuth accepted; carries the tenant's quotas, v3
};

/// Render format carried by StatsTextReq.
enum class StatsFormat : uint8_t { Prometheus = 0, Human = 1 };

/// Status codes carried by Error frames and CompileResp headers. These
/// are the documented error codes the tests assert on.
enum class Status : uint8_t {
  Ok = 0,
  BadMagic = 1,         ///< frame header magic mismatch
  BadVersion = 2,       ///< unsupported protocol version
  BadFrame = 3,         ///< malformed header or undecodable payload
  FrameTooLarge = 4,    ///< declared payload length over the cap
  UnknownType = 5,      ///< unrecognized message type
  QueueFull = 6,        ///< admission control: compile queue at capacity
  DeadlineExceeded = 7, ///< request deadline passed before completion
  CompileFailed = 8,    ///< the program itself failed to compile
  Draining = 9,         ///< server is shutting down, not accepting work
  Internal = 10,        ///< server-side invariant failure
  Unauthorized = 11,    ///< missing/unknown tenant token (v3 auth)
};

/// Highest valid Status value; decode-side range checks use this so a
/// new code only needs to be added in one place.
constexpr uint8_t kMaxStatus = static_cast<uint8_t>(Status::Unauthorized);

const char *statusName(Status S);

/// Mirrors driver CacheTier on the wire (values identical).
enum class WireTier : uint8_t { Miss = 0, Memory = 1, Disk = 2 };

//===----------------------------------------------------------------------===//
// Bounds-checked payload encoding
//===----------------------------------------------------------------------===//

class WireWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u16(uint16_t V);
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V);
  /// Length-prefixed (u32) byte string.
  void str(const std::string &S);
  void raw(const void *P, size_t N);

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Reads the formats WireWriter writes. Any out-of-bounds read latches
/// `failed()` and returns zeros/empties; callers check once at the end
/// (or at natural checkpoints) instead of after every field.
class WireReader {
public:
  WireReader(const char *Data, size_t Len) : P(Data), N(Len) {}
  explicit WireReader(const std::string &S) : P(S.data()), N(S.size()) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64();
  /// Length-prefixed string; fails if the prefix exceeds `MaxLen` or
  /// runs past the buffer.
  std::string str(uint32_t MaxLen = kMaxFramePayload);
  bool raw(void *Out, size_t Len);

  bool failed() const { return Failed; }
  /// True when every byte has been consumed and nothing failed — frame
  /// decoders require this so trailing garbage is rejected.
  bool atEndOk() const { return !Failed && Pos == N; }
  size_t remaining() const { return N - Pos; }

private:
  const char *P;
  size_t N;
  size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

struct Frame {
  MsgType Type = MsgType::Error;
  std::string Payload;
};

/// Renders a complete wire frame (header + payload).
std::string encodeFrame(MsgType Type, const std::string &Payload);

enum class ParseResult : uint8_t {
  NeedMore, ///< fewer bytes than one complete frame; read more
  Ok,       ///< `Out` holds a frame; `Consumed` bytes were used
  Bad,      ///< malformed header: `Err`/`ErrMsg` say why; close the link
};

/// Incremental frame parser over a receive buffer. Never reads past
/// `Len`; never asks for more input when the declared length is already
/// over the cap.
ParseResult parseFrame(const char *Data, size_t Len, Frame &Out,
                       size_t &Consumed, Status &Err, std::string &ErrMsg);

//===----------------------------------------------------------------------===//
// Message payloads
//===----------------------------------------------------------------------===//

struct HelloMsg {
  uint8_t MinVersion = kProtocolVersion;
  uint8_t MaxVersion = kProtocolVersion;
  std::string ClientName;
};

struct HelloOkMsg {
  uint8_t Version = kProtocolVersion;
  std::string ServerName;
};

struct CompileRequest {
  /// Client-assigned id, echoed in the response and attached to every
  /// server-side trace span for this request (0 = unassigned; the
  /// client fills one in before sending).
  uint64_t RequestId = 0;
  /// Client-computed fnv1a64 of the canonical job key (v3). A routing
  /// hint only: the FarmRouter consistent-hashes it onto a shard so the
  /// same source lands on the same daemon's cache, but every daemon
  /// still derives its own key from the request body — a wrong hash can
  /// cost a cache miss, never a wrong answer. 0 = not computed.
  uint64_t CacheKeyHash = 0;
  /// Distributed trace context (v4). The client mints a random 128-bit
  /// trace id per request — even when its own tracing is off, so
  /// downstream nodes still share one trace — and each hop stamps its
  /// own span id into ParentSpanId before forwarding. All-zero means
  /// "no trace context".
  uint64_t TraceIdHi = 0;
  uint64_t TraceIdLo = 0;
  uint64_t ParentSpanId = 0;
  uint32_t DeadlineMs = 0; ///< 0 = no deadline
  bool WithPrelude = true;
  CompilerOptions Opts;
  std::string Source;
};

struct CompileResponse {
  Status St = Status::Ok;
  WireTier Tier = WireTier::Miss;
  uint64_t RequestId = 0; ///< echo of CompileRequest::RequestId
  double CompileSec = 0; ///< server-side compile seconds (0 on cache hit)
  std::string Errors;    ///< diagnostics when St != Ok
  TmProgram Program;     ///< valid only when St == Ok
};

struct StatsTextRequest {
  StatsFormat Format = StatsFormat::Prometheus;
};

struct StatsTextResponse {
  StatsFormat Format = StatsFormat::Prometheus;
  std::string Text;
};

struct ErrorMsg {
  Status St = Status::Internal;
  std::string Message;
};

/// Presented once per connection, after Hello. The token is the only
/// credential; tenant identity is derived from it server-side.
struct TenantAuthMsg {
  std::string Token;
};

/// Acknowledges TenantAuth and tells the client what it bought.
struct AuthOkMsg {
  std::string Tenant;      ///< tenant name the token resolved to
  uint32_t Weight = 1;     ///< fair-share weight
  uint32_t MaxInFlight = 0; ///< per-tenant in-flight cap (0 = unlimited)
  uint32_t MaxQueued = 0;   ///< per-tenant queued cap (0 = unlimited)
};

std::string encodeHello(const HelloMsg &M);
bool decodeHello(const std::string &Payload, HelloMsg &M);
std::string encodeHelloOk(const HelloOkMsg &M);
bool decodeHelloOk(const std::string &Payload, HelloOkMsg &M);

std::string encodeCompileRequest(const CompileRequest &Req);
/// Fails (returns false, fills Err) on truncated/trailing bytes, enum
/// values out of range, or source text over kMaxSourceBytes.
bool decodeCompileRequest(const std::string &Payload, CompileRequest &Req,
                          std::string &Err);

std::string encodeCompileResponse(const CompileResponse &Resp);
/// As above, but encodes `Program` in place of `Resp.Program` — lets a
/// cache-hit response serialize straight from the cached entry without
/// a deep copy of the program.
std::string encodeCompileResponse(const CompileResponse &Resp,
                                  const TmProgram &Program);
bool decodeCompileResponse(const std::string &Payload, CompileResponse &Resp,
                           std::string &Err);

std::string encodeError(const ErrorMsg &M);
bool decodeError(const std::string &Payload, ErrorMsg &M);

std::string encodeTenantAuth(const TenantAuthMsg &M);
bool decodeTenantAuth(const std::string &Payload, TenantAuthMsg &M);
std::string encodeAuthOk(const AuthOkMsg &M);
bool decodeAuthOk(const std::string &Payload, AuthOkMsg &M);

std::string encodeStatsTextRequest(const StatsTextRequest &M);
bool decodeStatsTextRequest(const std::string &Payload, StatsTextRequest &M);
std::string encodeStatsTextResponse(const StatsTextResponse &M);
bool decodeStatsTextResponse(const std::string &Payload,
                             StatsTextResponse &M);

//===----------------------------------------------------------------------===//
// TmProgram / CompileOutput codecs (shared with server/DiskCache)
//===----------------------------------------------------------------------===//

void encodeProgram(WireWriter &W, const TmProgram &P);
/// Validates every enum and count against the TM instruction set while
/// decoding; a hostile or corrupt byte stream fails rather than
/// producing out-of-range opcodes.
bool decodeProgram(WireReader &R, TmProgram &P);

void encodeCompileOutput(WireWriter &W, const CompileOutput &Out);
bool decodeCompileOutput(WireReader &R, CompileOutput &Out);

} // namespace server
} // namespace smltc

#endif // SMLTC_SERVER_PROTOCOL_H
