//===- server/Server.h - The smltcc compile daemon ---------------------------===//
///
/// \file
/// A long-lived compile server: accepts concurrent clients on a
/// Unix-domain socket, speaks the server/Protocol frame format, and
/// dispatches compile requests onto the existing `BatchCompiler`
/// persistent worker pool. The in-memory `CompileCache` is layered over
/// an optional persistent `DiskCache`, so a daemon restart keeps a warm
/// cache (memory/disk/miss hit tiers are reported per response and in
/// the stats JSON).
///
/// Concurrency model: one poll(2) loop owns all sockets and every piece
/// of per-connection state; compile workers never touch a socket. A
/// finished job is handed back to the loop through a locked completion
/// queue plus a self-pipe wakeup. Admission control is the batch
/// engine's bounded queue: when it is full, the request is answered
/// with `Status::QueueFull` instead of being buffered. Each request may
/// carry a deadline; requests that exceed it (while queued or while
/// compiling) are answered with `Status::DeadlineExceeded` — the sweep
/// runs every poll tick, so a deadline response is never blocked behind
/// the compile that is starving it.
///
/// Shutdown (SIGTERM/SIGINT via `installSignalHandlers`, or a client
/// ShutdownReq) is drain-then-exit: stop accepting, reject new compiles
/// with `Status::Draining`, let in-flight jobs finish, flush every
/// response, then return from run().
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SERVER_SERVER_H
#define SMLTC_SERVER_SERVER_H

#include "driver/Batch.h"
#include "farm/FairShare.h"
#include "farm/Tenant.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "server/DiskCache.h"
#include "server/Protocol.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace smltc {
namespace server {

struct ServerOptions {
  /// Unix-domain socket path; may be empty when ListenAddr is set.
  std::string SocketPath;
  /// TCP listen address "HOST:PORT" ("[::1]:PORT" for IPv6 literals;
  /// port 0 = kernel-assigned, see tcpAddr()). Empty = no TCP listener.
  /// The same frame protocol and caps apply on both transports, and the
  /// TCP listener additionally answers HTTP `GET /metrics` scrapes.
  std::string ListenAddr;
  /// Tenant token file (farm/Tenant.h format). When set, every compile
  /// must be preceded by a TenantAuth frame or it is answered with
  /// Status::Unauthorized. Empty = single implicit "default" tenant, no
  /// auth required.
  std::string TokenFile;
  /// Compile workers (BatchCompiler pool); 0 = hardware concurrency.
  size_t NumWorkers = 0;
  /// Admission cap: compile jobs queued (not yet running) before new
  /// requests are rejected with Status::QueueFull. This is the
  /// farm-wide bound; per-tenant MaxQueued quotas apply underneath it.
  size_t MaxQueue = 64;
  /// Persistent cache directory; empty = in-memory cache only.
  std::string DiskCachePath;
  uint64_t DiskCacheCapBytes = 256ull << 20;
  /// In-memory compile cache entry cap (0 = unbounded). Farm shards set
  /// this so a daemon's resident set tracks its consistent-hash slice.
  size_t MaxMemCacheEntries = 0;
  /// Poll-loop tick; bounds deadline-sweep latency.
  int PollIntervalMs = 20;
  size_t MaxConnections = 128;
};

/// Counters the daemon reports via StatsReq / `metricsJson()`. Owned by
/// the poll thread; read externally only after run() returns.
struct ServerMetrics {
  uint64_t Connections = 0;
  uint64_t ConnectionsRejected = 0;
  uint64_t Requests = 0;
  uint64_t PingRequests = 0;
  uint64_t CompileRequests = 0;
  uint64_t StatsRequests = 0;
  uint64_t ShutdownRequests = 0;
  uint64_t CompileOk = 0;
  uint64_t CompileErrors = 0;
  uint64_t QueueFullRejects = 0;
  uint64_t DeadlineMisses = 0;
  uint64_t DrainingRejects = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t MemoryHits = 0; ///< compile responses served from memory tier
  uint64_t DiskHits = 0;   ///< ... from the persistent disk tier
  uint64_t CacheMisses = 0; ///< ... compiled for real
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  size_t QueueDepthPeak = 0;
  uint64_t AuthRequests = 0;       ///< TenantAuth frames handled
  uint64_t AuthRejects = 0;        ///< bad token / missing auth
  uint64_t TenantQuotaRejects = 0; ///< per-tenant MaxQueued bounces
  uint64_t ScrapeRequests = 0;     ///< HTTP GET/HEAD /metrics hits

  /// Renders the counters (plus live queue depth and disk-cache stats
  /// when attached) as one JSON object.
  std::string toJson(size_t QueueDepthNow,
                     const DiskCache *Disk = nullptr) const;
};

class CompileServer {
public:
  explicit CompileServer(ServerOptions Options);
  ~CompileServer();
  CompileServer(const CompileServer &) = delete;
  CompileServer &operator=(const CompileServer &) = delete;

  /// Binds the socket and starts the worker pool + caches. On failure
  /// returns false with a reason; run() must not be called.
  bool start(std::string &Err);

  /// Serves until a shutdown request, requestStop(), or a fatal socket
  /// error. Returns the number of compile requests served.
  uint64_t run();

  /// Asks the poll loop to begin the graceful drain. Safe to call from
  /// other threads and from signal handlers (lock-free: atomic flag +
  /// self-pipe write).
  void requestStop();

  /// Routes SIGTERM/SIGINT to `requestStop` of this server. Call from
  /// the daemon main() only (process-global).
  static void installSignalHandlers(CompileServer *S);

  /// Metrics snapshot; meaningful once run() has returned (the poll
  /// thread owns the counters while running — use a StatsReq for live
  /// numbers).
  const ServerMetrics &metrics() const { return Metrics; }
  std::string metricsJson() const;

  const std::string &socketPath() const { return Opts.SocketPath; }
  /// The TCP address actually bound ("HOST:PORT", numeric), resolved
  /// after start() — meaningful when Opts.ListenAddr was set; kernel-
  /// assigned ephemeral ports show their real number here.
  const std::string &tcpAddr() const { return BoundTcpAddr; }

private:
  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    std::string In;     ///< bytes received, not yet parsed
    std::string OutBuf; ///< bytes queued to send
    size_t OutPos = 0;
    bool GotHello = false;
    bool Closing = false; ///< close once OutBuf is flushed
    bool Http = false;    ///< first bytes looked like HTTP, not frames
    size_t InFlight = 0;  ///< compile requests awaiting a response
    uint64_t NextSeq = 0;
    /// Resolved tenant (after TenantAuth; the implicit default tenant
    /// when no token file is loaded). Null = not yet authenticated.
    farm::FairShareScheduler::Tenant *Tenant = nullptr;
  };

  /// One compile request awaiting completion; keyed by (ConnId, Seq).
  struct PendingReq {
    std::chrono::steady_clock::time_point Arrival{};
    std::chrono::steady_clock::time_point Deadline{};
    uint64_t RequestId = 0; ///< client-assigned; echoed in the response
    /// Trace context carried by the request frame (v4; zeros = none)
    /// and the span id minted for this server's "request" span — the
    /// parent every job-side span links under.
    uint64_t TraceIdHi = 0;
    uint64_t TraceIdLo = 0;
    uint64_t WireParentSpanId = 0;
    uint64_t ServerSpanId = 0;
    bool HasDeadline = false;
    bool Responded = false; ///< deadline sweep already answered it
    bool Submitted = false; ///< released to the worker pool already
    /// Owning tenant; scheduler tenants are heap-allocated and live for
    /// the server's lifetime, so the pointer stays valid.
    farm::FairShareScheduler::Tenant *Tenant = nullptr;
  };

  /// A finished job travelling from a worker to the poll loop.
  struct Completion {
    uint64_t ConnId = 0;
    uint64_t Seq = 0;
    AsyncCompileResult R;
  };

  void acceptClients(int Fd);
  void readClient(Conn &C);
  void handleFrame(Conn &C, const Frame &F);
  void handleCompile(Conn &C, const Frame &F);
  void handleTenantAuth(Conn &C, const Frame &F);
  void handleHttp(Conn &C);
  /// Releases fair-share-queued jobs to the pool while workers have
  /// headroom; called after enqueue and after every completion drain.
  void pumpScheduler();
  /// Submits one released job to the pool; false only when the pool is
  /// shutting down.
  bool submitToPool(farm::QueuedJob J);
  void drainCompletions();
  void sweepDeadlines();
  void flushClient(Conn &C);
  void closeConn(uint64_t Id);
  void send(Conn &C, MsgType Type, const std::string &Payload);
  void sendError(Conn &C, Status St, const std::string &Msg);
  void sendCompileStatus(Conn &C, Status St, const std::string &Msg,
                         uint64_t RequestId = 0);
  void beginDrain();
  bool drainComplete() const;

  /// Publishes the counters, uptime/queue gauges, and per-tier latency
  /// histograms into `Reg` (start() calls this once).
  void registerMetrics();
  /// Records one answered compile request: latency histograms for its
  /// cache tier and tenant, a "request" trace span linked into the
  /// request's distributed trace (`Ctx` = wire context with the remote
  /// parent span id, `ServerSpanId` = this request's own span), and a
  /// RequestLog sample for /tracez (always, even with tracing off).
  void recordRequestDone(std::chrono::steady_clock::time_point Arrival,
                         uint64_t RequestId, const char *Tier,
                         obs::Histogram *TenantHist = nullptr,
                         const obs::TraceContext &Ctx = obs::TraceContext(),
                         uint64_t ServerSpanId = 0,
                         const std::string &Tenant = std::string(),
                         std::string PhasesJson = std::string());
  /// The human-readable stats page (StatsTextReq, format=human).
  std::string renderHumanStats() const;
  /// The /statusz JSON document: build identity, uptime, drain state,
  /// queue/connection gauges, and per-tenant quota usage.
  std::string renderStatusz() const;

  ServerOptions Opts;
  ServerMetrics Metrics;
  std::unique_ptr<CompileCache> Cache;
  std::unique_ptr<DiskCache> Disk;
  std::unique_ptr<BatchCompiler> Pool;

  /// Tenancy: token registry (immutable after start) and the fair-share
  /// scheduler (poll-thread-owned, like every Conn).
  farm::TenantRegistry Tenants;
  std::unique_ptr<farm::FairShareScheduler> Sched;
  bool AuthRequired = false;
  /// Jobs released to the pool concurrently; matches the worker count
  /// so fair-share decisions are made as late as possible while workers
  /// never starve.
  size_t PoolTargetInFlight = 1;

  /// Prometheus/JSON metric registry (StatsTextReq). Callback
  /// instruments read the ServerMetrics counters; rendering happens on
  /// the poll thread, which also owns every counter write, so the
  /// callbacks never race. The per-tier histograms are atomic.
  obs::Registry Reg;
  std::chrono::steady_clock::time_point StartTime{};
  /// Request-latency histograms split by cache tier; indexed memory=0,
  /// disk=1, miss=2. Owned by `Reg`.
  obs::Histogram *TierHist[3] = {nullptr, nullptr, nullptr};

  int ListenFd = -1;    ///< Unix-domain listener (-1 = none)
  int TcpListenFd = -1; ///< TCP listener (-1 = none)
  std::string BoundTcpAddr;
  int WakePipe[2] = {-1, -1};
  bool Started = false;
  bool Draining = false;
  std::atomic<bool> StopRequested{false};

  uint64_t NextConnId = 1;
  std::unordered_map<uint64_t, Conn> Conns;
  std::map<std::pair<uint64_t, uint64_t>, PendingReq> Pending;
  size_t InFlightTotal = 0; ///< accepted compiles not yet completed

  std::mutex CompMutex;
  std::vector<Completion> Completions;
};

} // namespace server
} // namespace smltc

#endif // SMLTC_SERVER_SERVER_H
