//===- server/Protocol.cpp - Compile-server wire protocol --------------------===//

#include "server/Protocol.h"

#include <cstring>
#include <type_traits>

using namespace smltc;
using namespace smltc::server;

const char *smltc::server::statusName(Status S) {
  switch (S) {
  case Status::Ok: return "ok";
  case Status::BadMagic: return "bad_magic";
  case Status::BadVersion: return "bad_version";
  case Status::BadFrame: return "bad_frame";
  case Status::FrameTooLarge: return "frame_too_large";
  case Status::UnknownType: return "unknown_type";
  case Status::QueueFull: return "queue_full";
  case Status::DeadlineExceeded: return "deadline_exceeded";
  case Status::CompileFailed: return "compile_failed";
  case Status::Draining: return "draining";
  case Status::Internal: return "internal";
  case Status::Unauthorized: return "unauthorized";
  }
  return "invalid";
}

//===----------------------------------------------------------------------===//
// WireWriter / WireReader
//===----------------------------------------------------------------------===//

void WireWriter::u16(uint16_t V) {
  u8(static_cast<uint8_t>(V));
  u8(static_cast<uint8_t>(V >> 8));
}

void WireWriter::u32(uint32_t V) {
  u16(static_cast<uint16_t>(V));
  u16(static_cast<uint16_t>(V >> 16));
}

void WireWriter::u64(uint64_t V) {
  u32(static_cast<uint32_t>(V));
  u32(static_cast<uint32_t>(V >> 32));
}

void WireWriter::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void WireWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.append(S);
}

void WireWriter::raw(const void *P, size_t N) {
  Buf.append(static_cast<const char *>(P), N);
}

uint8_t WireReader::u8() {
  if (Failed || Pos + 1 > N) {
    Failed = true;
    return 0;
  }
  return static_cast<uint8_t>(P[Pos++]);
}

uint16_t WireReader::u16() {
  uint16_t Lo = u8();
  uint16_t Hi = u8();
  return static_cast<uint16_t>(Lo | (Hi << 8));
}

uint32_t WireReader::u32() {
  uint32_t Lo = u16();
  uint32_t Hi = u16();
  return Lo | (Hi << 16);
}

uint64_t WireReader::u64() {
  uint64_t Lo = u32();
  uint64_t Hi = u32();
  return Lo | (Hi << 32);
}

double WireReader::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string WireReader::str(uint32_t MaxLen) {
  uint32_t Len = u32();
  if (Failed || Len > MaxLen || Pos + Len > N) {
    Failed = true;
    return std::string();
  }
  std::string S(P + Pos, Len);
  Pos += Len;
  return S;
}

bool WireReader::raw(void *Out, size_t Len) {
  if (Failed || Pos + Len > N) {
    Failed = true;
    return false;
  }
  std::memcpy(Out, P + Pos, Len);
  Pos += Len;
  return true;
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

std::string smltc::server::encodeFrame(MsgType Type,
                                       const std::string &Payload) {
  WireWriter W;
  W.u32(kFrameMagic);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u8(static_cast<uint8_t>(Type));
  W.u8(kProtocolVersion);
  W.u16(0);
  W.raw(Payload.data(), Payload.size());
  return W.take();
}

ParseResult smltc::server::parseFrame(const char *Data, size_t Len,
                                      Frame &Out, size_t &Consumed,
                                      Status &Err, std::string &ErrMsg) {
  if (Len < kFrameHeaderBytes)
    return ParseResult::NeedMore;
  WireReader R(Data, kFrameHeaderBytes);
  uint32_t Magic = R.u32();
  uint32_t PayloadLen = R.u32();
  uint8_t Type = R.u8();
  uint8_t Ver = R.u8();
  uint16_t Reserved = R.u16();
  if (Magic != kFrameMagic) {
    Err = Status::BadMagic;
    ErrMsg = "bad frame magic";
    return ParseResult::Bad;
  }
  // Reject the declared length *before* waiting for payload bytes: a
  // hostile header cannot make the server buffer unbounded input.
  if (PayloadLen > kMaxFramePayload) {
    Err = Status::FrameTooLarge;
    ErrMsg = "declared payload length " + std::to_string(PayloadLen) +
             " exceeds cap " + std::to_string(kMaxFramePayload);
    return ParseResult::Bad;
  }
  if (Ver != kProtocolVersion) {
    Err = Status::BadVersion;
    ErrMsg = "unsupported protocol version " + std::to_string(Ver);
    return ParseResult::Bad;
  }
  if (Reserved != 0) {
    Err = Status::BadFrame;
    ErrMsg = "nonzero reserved header bits";
    return ParseResult::Bad;
  }
  if (Len < kFrameHeaderBytes + PayloadLen)
    return ParseResult::NeedMore;
  Out.Type = static_cast<MsgType>(Type);
  Out.Payload.assign(Data + kFrameHeaderBytes, PayloadLen);
  Consumed = kFrameHeaderBytes + PayloadLen;
  return ParseResult::Ok;
}

//===----------------------------------------------------------------------===//
// Hello / Error
//===----------------------------------------------------------------------===//

std::string smltc::server::encodeHello(const HelloMsg &M) {
  WireWriter W;
  W.u8(M.MinVersion);
  W.u8(M.MaxVersion);
  W.str(M.ClientName);
  return W.take();
}

bool smltc::server::decodeHello(const std::string &Payload, HelloMsg &M) {
  WireReader R(Payload);
  M.MinVersion = R.u8();
  M.MaxVersion = R.u8();
  M.ClientName = R.str(256);
  return R.atEndOk();
}

std::string smltc::server::encodeHelloOk(const HelloOkMsg &M) {
  WireWriter W;
  W.u8(M.Version);
  W.str(M.ServerName);
  return W.take();
}

bool smltc::server::decodeHelloOk(const std::string &Payload, HelloOkMsg &M) {
  WireReader R(Payload);
  M.Version = R.u8();
  M.ServerName = R.str(256);
  return R.atEndOk();
}

std::string smltc::server::encodeError(const ErrorMsg &M) {
  WireWriter W;
  W.u8(static_cast<uint8_t>(M.St));
  W.str(M.Message);
  return W.take();
}

bool smltc::server::decodeError(const std::string &Payload, ErrorMsg &M) {
  WireReader R(Payload);
  uint8_t St = R.u8();
  M.Message = R.str(65536);
  if (!R.atEndOk() || St > kMaxStatus)
    return false;
  M.St = static_cast<Status>(St);
  return true;
}

/// Tenant tokens are short shared secrets, not documents; cap well
/// below any frame limit so a hostile TenantAuth cannot buffer much.
static constexpr uint32_t kMaxTokenBytes = 512;

std::string smltc::server::encodeTenantAuth(const TenantAuthMsg &M) {
  WireWriter W;
  W.str(M.Token);
  return W.take();
}

bool smltc::server::decodeTenantAuth(const std::string &Payload,
                                     TenantAuthMsg &M) {
  WireReader R(Payload);
  M.Token = R.str(kMaxTokenBytes);
  return R.atEndOk() && !M.Token.empty();
}

std::string smltc::server::encodeAuthOk(const AuthOkMsg &M) {
  WireWriter W;
  W.str(M.Tenant);
  W.u32(M.Weight);
  W.u32(M.MaxInFlight);
  W.u32(M.MaxQueued);
  return W.take();
}

bool smltc::server::decodeAuthOk(const std::string &Payload, AuthOkMsg &M) {
  WireReader R(Payload);
  M.Tenant = R.str(256);
  M.Weight = R.u32();
  M.MaxInFlight = R.u32();
  M.MaxQueued = R.u32();
  return R.atEndOk();
}

std::string smltc::server::encodeStatsTextRequest(const StatsTextRequest &M) {
  WireWriter W;
  W.u8(static_cast<uint8_t>(M.Format));
  return W.take();
}

bool smltc::server::decodeStatsTextRequest(const std::string &Payload,
                                           StatsTextRequest &M) {
  WireReader R(Payload);
  uint8_t F = R.u8();
  if (!R.atEndOk() || F > static_cast<uint8_t>(StatsFormat::Human))
    return false;
  M.Format = static_cast<StatsFormat>(F);
  return true;
}

std::string
smltc::server::encodeStatsTextResponse(const StatsTextResponse &M) {
  WireWriter W;
  W.u8(static_cast<uint8_t>(M.Format));
  W.str(M.Text);
  return W.take();
}

bool smltc::server::decodeStatsTextResponse(const std::string &Payload,
                                            StatsTextResponse &M) {
  WireReader R(Payload);
  uint8_t F = R.u8();
  M.Text = R.str(4u << 20);
  if (!R.atEndOk() || F > static_cast<uint8_t>(StatsFormat::Human))
    return false;
  M.Format = static_cast<StatsFormat>(F);
  return true;
}

//===----------------------------------------------------------------------===//
// CompilerOptions codec
//===----------------------------------------------------------------------===//

namespace {

/// Number of serialized option fields below; bumped together with the
/// cache options-schema version so an old client cannot silently send a
/// truncated option set.
constexpr uint8_t kNumOptionFields = 19;

void encodeOptions(WireWriter &W, const CompilerOptions &O) {
  W.u8(kNumOptionFields);
  W.str(O.VariantName ? std::string(O.VariantName) : std::string());
  W.u8(static_cast<uint8_t>(O.CpsOpt));
  W.u8(static_cast<uint8_t>(O.Repr));
  W.u8(O.Mtd);
  W.u8(O.KnownFnFlattening);
  W.u8(O.TypedArgSpreading);
  W.i32(O.FloatCalleeSaves);
  W.u8(O.HashConsLty);
  W.u8(O.MemoCoercions);
  W.u8(O.CpsWrapCancel);
  W.u8(O.CpsRecordCopyElim);
  W.u8(O.InlineSmallFns);
  W.u8(O.UnalignedFloats);
  W.u8(O.KeepDumps);
  W.i32(O.MaxSpreadArgs);
  W.i32(O.GpCalleeSaves);
  W.u8(static_cast<uint8_t>(O.Prelude));
  W.i32(O.CpsOptMaxPhases);
  W.u8(O.CpsOptDisable);
}

bool decodeOptions(WireReader &R, CompilerOptions &O, std::string &Err) {
  uint8_t NumFields = R.u8();
  if (NumFields != kNumOptionFields) {
    Err = "options schema mismatch (got " + std::to_string(NumFields) +
          " fields, expected " + std::to_string(kNumOptionFields) + ")";
    return false;
  }
  std::string Variant = R.str(64);
  uint8_t Engine = R.u8();
  uint8_t Repr = R.u8();
  O.Mtd = R.u8() != 0;
  O.KnownFnFlattening = R.u8() != 0;
  O.TypedArgSpreading = R.u8() != 0;
  O.FloatCalleeSaves = R.i32();
  O.HashConsLty = R.u8() != 0;
  O.MemoCoercions = R.u8() != 0;
  O.CpsWrapCancel = R.u8() != 0;
  O.CpsRecordCopyElim = R.u8() != 0;
  O.InlineSmallFns = R.u8() != 0;
  O.UnalignedFloats = R.u8() != 0;
  O.KeepDumps = R.u8() != 0;
  O.MaxSpreadArgs = R.i32();
  O.GpCalleeSaves = R.i32();
  uint8_t Prelude = R.u8();
  int32_t MaxPhases = R.i32();
  uint8_t Disable = R.u8();
  if (R.failed()) {
    Err = "truncated options";
    return false;
  }
  // Same bounds the CLI enforces: reject rather than clamp, so a
  // misbehaving client cannot smuggle an absurd phase budget (or an
  // unknown ablation bit) into the farm.
  if (MaxPhases < 0 || MaxPhases > 100000) {
    Err = "cps-opt-max-phases out of range";
    return false;
  }
  if (Disable > kCpsRuleAll) {
    Err = "cps-opt-disable has unknown rule bits";
    return false;
  }
  O.CpsOptMaxPhases = MaxPhases;
  O.CpsOptDisable = Disable;
  if (Prelude > static_cast<uint8_t>(PreludeMode::Inline)) {
    Err = "prelude mode out of range";
    return false;
  }
  O.Prelude = static_cast<PreludeMode>(Prelude);
  if (Repr > static_cast<uint8_t>(ReprMode::FullFloat)) {
    Err = "representation mode out of range";
    return false;
  }
  O.Repr = static_cast<ReprMode>(Repr);
  if (Engine > static_cast<uint8_t>(CpsOptEngine::Shrink)) {
    Err = "cps-opt engine out of range";
    return false;
  }
  O.CpsOpt = static_cast<CpsOptEngine>(Engine);
  // VariantName is a non-owning const char*: point it at the matching
  // static variant name, or a generic label for custom option sets.
  O.VariantName = "remote";
  size_t N;
  const CompilerOptions *Vs = CompilerOptions::allVariants(N);
  for (size_t I = 0; I < N; ++I)
    if (Variant == Vs[I].VariantName)
      O.VariantName = Vs[I].VariantName;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Compile request / response
//===----------------------------------------------------------------------===//

std::string smltc::server::encodeCompileRequest(const CompileRequest &Req) {
  WireWriter W;
  W.u64(Req.RequestId);
  W.u64(Req.CacheKeyHash);
  W.u64(Req.TraceIdHi);
  W.u64(Req.TraceIdLo);
  W.u64(Req.ParentSpanId);
  W.u32(Req.DeadlineMs);
  W.u8(Req.WithPrelude);
  encodeOptions(W, Req.Opts);
  W.str(Req.Source);
  return W.take();
}

bool smltc::server::decodeCompileRequest(const std::string &Payload,
                                         CompileRequest &Req,
                                         std::string &Err) {
  WireReader R(Payload);
  Req.RequestId = R.u64();
  Req.CacheKeyHash = R.u64();
  Req.TraceIdHi = R.u64();
  Req.TraceIdLo = R.u64();
  Req.ParentSpanId = R.u64();
  Req.DeadlineMs = R.u32();
  Req.WithPrelude = R.u8() != 0;
  if (R.failed()) {
    Err = "truncated compile request";
    return false;
  }
  if (!decodeOptions(R, Req.Opts, Err))
    return false;
  Req.Source = R.str(kMaxSourceBytes);
  if (!R.atEndOk()) {
    Err = "malformed compile request (truncated source or trailing bytes)";
    return false;
  }
  return true;
}

std::string smltc::server::encodeCompileResponse(const CompileResponse &Resp) {
  return encodeCompileResponse(Resp, Resp.Program);
}

std::string smltc::server::encodeCompileResponse(const CompileResponse &Resp,
                                                 const TmProgram &Program) {
  WireWriter W;
  W.u8(static_cast<uint8_t>(Resp.St));
  W.u8(static_cast<uint8_t>(Resp.Tier));
  W.u64(Resp.RequestId);
  W.f64(Resp.CompileSec);
  W.str(Resp.Errors);
  if (Resp.St == Status::Ok)
    encodeProgram(W, Program);
  return W.take();
}

bool smltc::server::decodeCompileResponse(const std::string &Payload,
                                          CompileResponse &Resp,
                                          std::string &Err) {
  WireReader R(Payload);
  uint8_t St = R.u8();
  uint8_t Tier = R.u8();
  Resp.RequestId = R.u64();
  Resp.CompileSec = R.f64();
  Resp.Errors = R.str(1u << 20);
  if (R.failed() || St > kMaxStatus ||
      Tier > static_cast<uint8_t>(WireTier::Disk)) {
    Err = "malformed compile response header";
    return false;
  }
  Resp.St = static_cast<Status>(St);
  Resp.Tier = static_cast<WireTier>(Tier);
  if (Resp.St == Status::Ok) {
    if (!decodeProgram(R, Resp.Program)) {
      Err = "malformed program in compile response";
      return false;
    }
  }
  if (!R.atEndOk()) {
    Err = "trailing bytes in compile response";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// TmProgram / CompileOutput codecs
//===----------------------------------------------------------------------===//

namespace {

// Decode-side sanity caps: a valid compile of even the largest corpus
// program is far below these; a corrupt or hostile length field fails
// fast instead of triggering a giant allocation.
constexpr uint64_t kMaxFunctions = 1u << 20;
constexpr uint64_t kMaxTotalInsns = 1u << 24;
constexpr uint64_t kMaxPoolStrings = 1u << 20;

constexpr uint8_t kMaxTmOp = static_cast<uint8_t>(TmOp::HaltExnOp);
constexpr uint8_t kMaxTmCond = static_cast<uint8_t>(TmCond::Ult);
constexpr uint8_t kMaxCpsOp = static_cast<uint8_t>(CpsOp::RtArrayMake);
constexpr uint8_t kMaxRecordKind = static_cast<uint8_t>(RecordKind::Spill);

} // namespace

void smltc::server::encodeProgram(WireWriter &W, const TmProgram &P) {
  W.u64(P.Funs.size());
  for (const TmFunction &F : P.Funs) {
    W.i32(F.NumWordParams);
    W.i32(F.NumFloatParams);
    W.u64(F.Code.size());
    for (const Insn &I : F.Code) {
      W.u8(static_cast<uint8_t>(I.Op));
      W.u16(static_cast<uint16_t>(I.Rd));
      W.u16(static_cast<uint16_t>(I.Rs1));
      W.u16(static_cast<uint16_t>(I.Rs2));
      W.i32(I.Imm);
      W.i64(I.IVal);
      W.f64(I.FVal);
      W.u8(static_cast<uint8_t>(I.Cond));
      W.u8(static_cast<uint8_t>(I.Rt));
      W.u8(static_cast<uint8_t>(I.RK));
    }
  }
  W.u64(P.StringPool.size());
  for (const std::string &S : P.StringPool)
    W.str(S);
}

bool smltc::server::decodeProgram(WireReader &R, TmProgram &P) {
  uint64_t NumFuns = R.u64();
  if (R.failed() || NumFuns > kMaxFunctions)
    return false;
  P.Funs.clear();
  P.Funs.reserve(NumFuns);
  uint64_t TotalInsns = 0;
  for (uint64_t FI = 0; FI < NumFuns; ++FI) {
    TmFunction F;
    F.NumWordParams = R.i32();
    F.NumFloatParams = R.i32();
    uint64_t NumInsns = R.u64();
    TotalInsns += NumInsns;
    if (R.failed() || TotalInsns > kMaxTotalInsns)
      return false;
    F.Code.reserve(NumInsns);
    for (uint64_t II = 0; II < NumInsns; ++II) {
      Insn I;
      uint8_t Op = R.u8();
      I.Rd = static_cast<Reg>(R.u16());
      I.Rs1 = static_cast<Reg>(R.u16());
      I.Rs2 = static_cast<Reg>(R.u16());
      I.Imm = R.i32();
      I.IVal = R.i64();
      I.FVal = R.f64();
      uint8_t Cond = R.u8();
      uint8_t Rt = R.u8();
      uint8_t RK = R.u8();
      if (R.failed() || Op > kMaxTmOp || Cond > kMaxTmCond ||
          Rt > kMaxCpsOp || RK > kMaxRecordKind)
        return false;
      I.Op = static_cast<TmOp>(Op);
      I.Cond = static_cast<TmCond>(Cond);
      I.Rt = static_cast<CpsOp>(Rt);
      I.RK = static_cast<RecordKind>(RK);
      F.Code.push_back(I);
    }
    P.Funs.push_back(std::move(F));
  }
  uint64_t NumStrings = R.u64();
  if (R.failed() || NumStrings > kMaxPoolStrings)
    return false;
  P.StringPool.clear();
  P.StringPool.reserve(NumStrings);
  for (uint64_t SI = 0; SI < NumStrings; ++SI) {
    P.StringPool.push_back(R.str());
    if (R.failed())
      return false;
  }
  return true;
}

void smltc::server::encodeCompileOutput(WireWriter &W,
                                        const CompileOutput &Out) {
  static_assert(std::is_trivially_copyable<CompileMetrics>::value,
                "CompileMetrics must stay a plain value type to be "
                "serialized as a sized blob");
  W.u8(Out.Ok);
  W.str(Out.Errors);
  W.str(Out.LexpDump);
  W.str(Out.CpsDump);
  W.u32(static_cast<uint32_t>(sizeof(CompileMetrics)));
  W.raw(&Out.Metrics, sizeof(CompileMetrics));
  encodeProgram(W, Out.Program);
}

bool smltc::server::decodeCompileOutput(WireReader &R, CompileOutput &Out) {
  Out.Ok = R.u8() != 0;
  Out.Errors = R.str(1u << 20);
  Out.LexpDump = R.str();
  Out.CpsDump = R.str();
  uint32_t MetricsSize = R.u32();
  // A metrics blob from a build with a different CompileMetrics layout
  // is unreadable; callers treat the failure as a cache miss. (The
  // salted cache key should have prevented this from ever matching.)
  if (R.failed() || MetricsSize != sizeof(CompileMetrics))
    return false;
  if (!R.raw(&Out.Metrics, sizeof(CompileMetrics)))
    return false;
  return decodeProgram(R, Out.Program);
}
