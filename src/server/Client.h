//===- server/Client.h - Blocking compile-server client ----------------------===//
///
/// \file
/// The client half of the compile-server protocol: a blocking
/// request/response connection over the daemon's Unix-domain socket or,
/// with a `tcp://HOST:PORT` target, over TCP to a farm daemon/router.
/// `connect()` performs the Hello/HelloOk version handshake and retries
/// transient connect failures (ECONNREFUSED while the daemon is still
/// binding, a not-yet-created socket file) with bounded, jittered
/// exponential backoff; after that, each call sends one frame and reads
/// frames until the matching response arrives. Used by `smltcc
/// --connect`, the farm router, and the server tests.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SERVER_CLIENT_H
#define SMLTC_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <string>

namespace smltc {
namespace server {

/// Bounded retry policy for `Client::connect`. Only *transient* connect
/// errors (refused / missing socket file / timeout) are retried; real
/// failures (bad address, permission) surface immediately.
struct ConnectPolicy {
  int Attempts = 3;     ///< total tries, >= 1
  int BaseDelayMs = 40; ///< first retry delay; doubles per attempt
  bool Jitter = true;   ///< add up to BaseDelayMs/2 of random skew
};

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;

  /// Connects to `Target` — a Unix socket path, or "tcp://HOST:PORT" —
  /// and runs the version handshake, retrying transient connect
  /// failures per `Policy`.
  bool connect(const std::string &Target, std::string &Err,
               const ConnectPolicy &Policy = ConnectPolicy());
  bool connected() const { return Fd >= 0; }
  void close();

  /// Presents a tenant token (TenantAuth/AuthOk). Required before
  /// compiling when the daemon runs with --token-file; harmless (the
  /// implicit default tenant answers) when it does not.
  bool authenticate(const std::string &Token, AuthOkMsg &Ok,
                    std::string &Err);

  /// The Status carried by the last Error frame a round trip saw
  /// (Status::Ok when the last call succeeded or failed below the
  /// protocol level). Lets callers map e.g. Unauthorized to a distinct
  /// exit code without string-matching `Err`.
  Status lastErrorStatus() const { return LastErrorStatus; }

  /// One compile round trip. Returns false only on transport/protocol
  /// failure; compile-level outcomes (QueueFull, DeadlineExceeded,
  /// CompileFailed, Draining) come back as `Resp.St`. When
  /// `Req.RequestId` is 0 the client assigns one (unique within this
  /// process) before sending, so every request is traceable; the id
  /// actually sent is echoed back in `Resp.RequestId` either way.
  bool compile(const CompileRequest &Req, CompileResponse &Resp,
               std::string &Err);

  /// Fetches the server's metrics JSON.
  bool stats(std::string &Json, std::string &Err);

  /// Fetches the rendered stats page: Prometheus text exposition or the
  /// human-readable summary (protocol v2).
  bool statsText(StatsFormat Format, std::string &Text, std::string &Err);

  /// Round-trips an opaque payload; true when the echo matches.
  bool ping(const std::string &Payload, std::string &Err);

  /// Asks the daemon to drain and exit. Returns once ShutdownOk arrives.
  bool shutdownServer(std::string &Err);

  /// Transport-level escape hatch for protocol tests: sends raw bytes
  /// as-is (no framing) and reads one response frame.
  bool sendRaw(const std::string &Bytes, std::string &Err);
  bool recvFrame(Frame &F, std::string &Err);

private:
  bool sendFrame(MsgType Type, const std::string &Payload, std::string &Err);
  /// Sends a request and reads frames until one of `Expect` or Error
  /// arrives.
  bool roundTrip(MsgType ReqType, const std::string &Payload,
                 MsgType Expect, Frame &Resp, std::string &Err);

  /// One raw connect attempt; on failure fills Err and the errno seen.
  bool connectOnce(const std::string &Target, std::string &Err,
                   int &ErrnoOut);

  int Fd = -1;
  std::string In; ///< received bytes not yet parsed into frames
  Status LastErrorStatus = Status::Ok;
};

} // namespace server
} // namespace smltc

#endif // SMLTC_SERVER_CLIENT_H
