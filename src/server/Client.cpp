//===- server/Client.cpp - Blocking compile-server client --------------------===//

#include "server/Client.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace smltc;
using namespace smltc::server;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept
    : Fd(Other.Fd), In(std::move(Other.In)) {
  Other.Fd = -1;
}

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    In = std::move(Other.In);
    Other.Fd = -1;
  }
  return *this;
}

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  In.clear();
}

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "bad socket path";
    return false;
  }
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect '" + SocketPath + "': " + std::strerror(errno);
    close();
    return false;
  }

  HelloMsg H;
  H.ClientName = "smltcc";
  Frame Resp;
  if (!roundTrip(MsgType::Hello, encodeHello(H), MsgType::HelloOk, Resp,
                 Err)) {
    close();
    return false;
  }
  HelloOkMsg Ok;
  if (!decodeHelloOk(Resp.Payload, Ok)) {
    Err = "malformed hello-ok from server";
    close();
    return false;
  }
  return true;
}

bool Client::sendRaw(const std::string &Bytes, std::string &Err) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::sendFrame(MsgType Type, const std::string &Payload,
                       std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  return sendRaw(encodeFrame(Type, Payload), Err);
}

bool Client::recvFrame(Frame &F, std::string &Err) {
  char Buf[65536];
  for (;;) {
    size_t Consumed = 0;
    Status St;
    std::string Msg;
    ParseResult R = parseFrame(In.data(), In.size(), F, Consumed, St, Msg);
    if (R == ParseResult::Ok) {
      In.erase(0, Consumed);
      return true;
    }
    if (R == ParseResult::Bad) {
      Err = "protocol error from server: " + Msg;
      return false;
    }
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      In.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = N == 0 ? "server closed the connection"
                 : std::string("recv: ") + std::strerror(errno);
    return false;
  }
}

bool Client::roundTrip(MsgType ReqType, const std::string &Payload,
                       MsgType Expect, Frame &Resp, std::string &Err) {
  if (!sendFrame(ReqType, Payload, Err))
    return false;
  for (;;) {
    if (!recvFrame(Resp, Err))
      return false;
    if (Resp.Type == Expect)
      return true;
    if (Resp.Type == MsgType::Error) {
      ErrorMsg E;
      if (decodeError(Resp.Payload, E))
        Err = std::string("server error (") + statusName(E.St) +
              "): " + E.Message;
      else
        Err = "malformed error frame from server";
      return false;
    }
    // Any other frame type here is a protocol violation: the client
    // sends one request at a time, so responses cannot interleave.
    Err = "unexpected frame type " +
          std::to_string(static_cast<unsigned>(Resp.Type));
    return false;
  }
}

bool Client::compile(const CompileRequest &Req, CompileResponse &Resp,
                     std::string &Err) {
  // Process-wide id sequence so concurrent clients in one process (the
  // server bench, test fixtures) never collide.
  static std::atomic<uint64_t> NextRequestId{1};
  CompileRequest Sent = Req;
  if (Sent.RequestId == 0)
    Sent.RequestId = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  Frame F;
  if (!roundTrip(MsgType::CompileReq, encodeCompileRequest(Sent),
                 MsgType::CompileResp, F, Err))
    return false;
  std::string DecodeErr;
  if (!decodeCompileResponse(F.Payload, Resp, DecodeErr)) {
    Err = "malformed compile response: " + DecodeErr;
    return false;
  }
  return true;
}

bool Client::stats(std::string &Json, std::string &Err) {
  Frame F;
  if (!roundTrip(MsgType::StatsReq, std::string(), MsgType::StatsResp, F,
                 Err))
    return false;
  WireReader R(F.Payload);
  Json = R.str();
  if (!R.atEndOk()) {
    Err = "malformed stats response";
    return false;
  }
  return true;
}

bool Client::statsText(StatsFormat Format, std::string &Text,
                       std::string &Err) {
  StatsTextRequest Req;
  Req.Format = Format;
  Frame F;
  if (!roundTrip(MsgType::StatsTextReq, encodeStatsTextRequest(Req),
                 MsgType::StatsTextResp, F, Err))
    return false;
  StatsTextResponse Resp;
  if (!decodeStatsTextResponse(F.Payload, Resp)) {
    Err = "malformed stats-text response";
    return false;
  }
  Text = Resp.Text;
  return true;
}

bool Client::ping(const std::string &Payload, std::string &Err) {
  Frame F;
  if (!roundTrip(MsgType::Ping, Payload, MsgType::Pong, F, Err))
    return false;
  if (F.Payload != Payload) {
    Err = "pong payload mismatch";
    return false;
  }
  return true;
}

bool Client::shutdownServer(std::string &Err) {
  Frame F;
  return roundTrip(MsgType::ShutdownReq, std::string(), MsgType::ShutdownOk,
                   F, Err);
}
