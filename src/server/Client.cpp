//===- server/Client.cpp - Blocking compile-server client --------------------===//

#include "server/Client.h"

#include "driver/CompileCache.h"
#include "farm/Net.h"
#include "obs/Log.h"
#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace smltc;
using namespace smltc::server;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept
    : Fd(Other.Fd), In(std::move(Other.In)) {
  Other.Fd = -1;
}

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    In = std::move(Other.In);
    Other.Fd = -1;
  }
  return *this;
}

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  In.clear();
}

namespace {

/// Connect errors worth retrying: the daemon may simply not have bound
/// its socket yet, or is briefly over its accept backlog.
bool transientConnectErrno(int E) {
  return E == ECONNREFUSED || E == ENOENT || E == EAGAIN ||
         E == ETIMEDOUT || E == ECONNRESET;
}

} // namespace

bool Client::connectOnce(const std::string &Target, std::string &Err,
                         int &ErrnoOut) {
  ErrnoOut = 0;
  if (farm::isTcpTarget(Target)) {
    Fd = farm::connectTcp(farm::stripTcpScheme(Target), Err);
    if (Fd < 0) {
      ErrnoOut = errno;
      return false;
    }
    return true;
  }
  sockaddr_un Addr;
  if (Target.empty() || Target.size() >= sizeof(Addr.sun_path)) {
    Err = "bad socket path";
    return false;
  }
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Target.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ErrnoOut = errno;
    Err = "connect '" + Target + "': " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connect(const std::string &Target, std::string &Err,
                     const ConnectPolicy &Policy) {
  close();
  int Attempts = std::max(1, Policy.Attempts);
  // Cheap deterministic-enough jitter: decorrelates a burst of clients
  // all retrying after the same failure, no PRNG state to carry.
  uint64_t JitterSeed =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (static_cast<uint64_t>(::getpid()) << 32);
  for (int A = 0;; ++A) {
    int E = 0;
    if (connectOnce(Target, Err, E))
      break;
    if (A + 1 >= Attempts || !transientConnectErrno(E))
      return false;
    int Delay = Policy.BaseDelayMs << A;
    if (Policy.Jitter && Policy.BaseDelayMs > 1) {
      JitterSeed = JitterSeed * 6364136223846793005ull + 1442695040888963407ull;
      Delay += static_cast<int>((JitterSeed >> 33) %
                                (static_cast<uint64_t>(Policy.BaseDelayMs) / 2 +
                                 1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
  }

  HelloMsg H;
  H.ClientName = "smltcc";
  Frame Resp;
  if (!roundTrip(MsgType::Hello, encodeHello(H), MsgType::HelloOk, Resp,
                 Err)) {
    close();
    return false;
  }
  HelloOkMsg Ok;
  if (!decodeHelloOk(Resp.Payload, Ok)) {
    Err = "malformed hello-ok from server";
    close();
    return false;
  }
  return true;
}

bool Client::authenticate(const std::string &Token, AuthOkMsg &Ok,
                          std::string &Err) {
  TenantAuthMsg M;
  M.Token = Token;
  Frame F;
  if (!roundTrip(MsgType::TenantAuth, encodeTenantAuth(M), MsgType::AuthOk,
                 F, Err))
    return false;
  if (!decodeAuthOk(F.Payload, Ok)) {
    Err = "malformed auth-ok from server";
    return false;
  }
  return true;
}

bool Client::sendRaw(const std::string &Bytes, std::string &Err) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::sendFrame(MsgType Type, const std::string &Payload,
                       std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  return sendRaw(encodeFrame(Type, Payload), Err);
}

bool Client::recvFrame(Frame &F, std::string &Err) {
  char Buf[65536];
  for (;;) {
    size_t Consumed = 0;
    Status St;
    std::string Msg;
    ParseResult R = parseFrame(In.data(), In.size(), F, Consumed, St, Msg);
    if (R == ParseResult::Ok) {
      In.erase(0, Consumed);
      return true;
    }
    if (R == ParseResult::Bad) {
      Err = "protocol error from server: " + Msg;
      return false;
    }
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      In.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = N == 0 ? "server closed the connection"
                 : std::string("recv: ") + std::strerror(errno);
    return false;
  }
}

bool Client::roundTrip(MsgType ReqType, const std::string &Payload,
                       MsgType Expect, Frame &Resp, std::string &Err) {
  LastErrorStatus = Status::Ok;
  if (!sendFrame(ReqType, Payload, Err))
    return false;
  for (;;) {
    if (!recvFrame(Resp, Err))
      return false;
    if (Resp.Type == Expect)
      return true;
    if (Resp.Type == MsgType::Error) {
      ErrorMsg E;
      if (decodeError(Resp.Payload, E)) {
        LastErrorStatus = E.St;
        Err = std::string("server error (") + statusName(E.St) +
              "): " + E.Message;
      } else {
        Err = "malformed error frame from server";
      }
      return false;
    }
    // Any other frame type here is a protocol violation: the client
    // sends one request at a time, so responses cannot interleave.
    Err = "unexpected frame type " +
          std::to_string(static_cast<unsigned>(Resp.Type));
    return false;
  }
}

bool Client::compile(const CompileRequest &Req, CompileResponse &Resp,
                     std::string &Err) {
  // Process-wide id sequence so concurrent clients in one process (the
  // server bench, test fixtures) never collide.
  static std::atomic<uint64_t> NextRequestId{1};
  CompileRequest Sent = Req;
  if (Sent.RequestId == 0)
    Sent.RequestId = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  // The routing hint lets a farm router shard without re-hashing the
  // (possibly megabytes of) source; daemons still derive their own key.
  if (Sent.CacheKeyHash == 0)
    Sent.CacheKeyHash = fnv1a64(
        canonicalJobKey(Sent.Source, Sent.Opts, Sent.WithPrelude));
  // Distributed trace context (v4). The rpc span records locally when
  // tracing is on; the wire fields are filled either way — minted here
  // if no context is installed — so router and shard spans downstream
  // still share one trace id even when the client itself records
  // nothing.
  obs::Span Rpc("rpc_compile", "client");
  Rpc.arg("request_id", Sent.RequestId);
  if ((Sent.TraceIdHi | Sent.TraceIdLo) == 0) {
    obs::TraceContext Ctx = Rpc.context(); // valid when inside a trace
    if (!Ctx.valid()) {
      // This rpc is the trace root: mint the 128-bit id and re-parent
      // the rpc span under it so its own record carries the id too.
      obs::TraceContext Minted = obs::mintTraceContext();
      Rpc.adopt(obs::TraceContext{Minted.TraceIdHi, Minted.TraceIdLo, 0});
      Ctx = Rpc.context();
      if (!Ctx.valid()) // tracing off: the wire still gets the mint
        Ctx = Minted;
    }
    Sent.TraceIdHi = Ctx.TraceIdHi;
    Sent.TraceIdLo = Ctx.TraceIdLo;
    Sent.ParentSpanId = Ctx.SpanId;
  }
  Frame F;
  if (!roundTrip(MsgType::CompileReq, encodeCompileRequest(Sent),
                 MsgType::CompileResp, F, Err)) {
    SMLTC_LOG(obs::LogLevel::Warn, "client", "compile_rpc_failed",
              obs::LogFields()
                  .add("request_id", Sent.RequestId)
                  .add("error", Err)
                  .take());
    return false;
  }
  std::string DecodeErr;
  if (!decodeCompileResponse(F.Payload, Resp, DecodeErr)) {
    Err = "malformed compile response: " + DecodeErr;
    return false;
  }
  return true;
}

bool Client::stats(std::string &Json, std::string &Err) {
  Frame F;
  if (!roundTrip(MsgType::StatsReq, std::string(), MsgType::StatsResp, F,
                 Err))
    return false;
  WireReader R(F.Payload);
  Json = R.str();
  if (!R.atEndOk()) {
    Err = "malformed stats response";
    return false;
  }
  return true;
}

bool Client::statsText(StatsFormat Format, std::string &Text,
                       std::string &Err) {
  StatsTextRequest Req;
  Req.Format = Format;
  Frame F;
  if (!roundTrip(MsgType::StatsTextReq, encodeStatsTextRequest(Req),
                 MsgType::StatsTextResp, F, Err))
    return false;
  StatsTextResponse Resp;
  if (!decodeStatsTextResponse(F.Payload, Resp)) {
    Err = "malformed stats-text response";
    return false;
  }
  Text = Resp.Text;
  return true;
}

bool Client::ping(const std::string &Payload, std::string &Err) {
  Frame F;
  if (!roundTrip(MsgType::Ping, Payload, MsgType::Pong, F, Err))
    return false;
  if (F.Payload != Payload) {
    Err = "pong payload mismatch";
    return false;
  }
  return true;
}

bool Client::shutdownServer(std::string &Err) {
  Frame F;
  return roundTrip(MsgType::ShutdownReq, std::string(), MsgType::ShutdownOk,
                   F, Err);
}
