//===- codegen/Machine.h - The TM abstract RISC target ---------------------------===//
///
/// \file
/// A DECstation-5000-flavoured abstract RISC target. 32 "fast" general
/// registers and 16 float registers; virtual registers above 32 model
/// spilled values (the VM charges extra cycles for them, standing in for
/// the spill records a production back end would emit). There is no stack:
/// calls are jumps with arguments staged through an argument buffer (the
/// CPS machine model), and the heap is allocated by pointer bumping with a
/// Cheney two-space collector behind it.
///
/// Heap objects carry one descriptor word: (kind, floatlen, wordlen) for
/// records with raw floats stored first — the paper's Figure 1c layout
/// whose "descriptor is just two short integers".
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CODEGEN_MACHINE_H
#define SMLTC_CODEGEN_MACHINE_H

#include "cps/Cps.h"

#include <cstdint>
#include <string>
#include <vector>

namespace smltc {

using Reg = int16_t;

enum class TmOp : uint8_t {
  // Moves and constants.
  MovI,      ///< rd := imm (tagged integer)
  MovR,      ///< rd := rs
  MovFI,     ///< fd := float imm
  MovFR,     ///< fd := fs
  LoadLabel, ///< rd := code label Imm
  LoadStr,   ///< rd := string-pool pointer Imm
  // Integer ALU (rd, rs1, rs2).
  Add, Sub, Mul, Div, Mod, Neg, Abs,
  // Float ALU (fd, fs1, fs2 / fd, fs).
  FAdd, FSub, FMul, FDiv, FNeg, FAbs,
  FSqrt, FSin, FCos, FAtan, FExp, FLn,
  Floor, ///< rd := floor(fs)
  IToF,  ///< fd := float(rs)
  // Control (Target = instruction index within the function).
  Br,      ///< if cond(rs1, rs2) goto Target
  BrF,     ///< float compare-and-branch
  BrBoxed, ///< if rs is a pointer goto Target
  Jmp,     ///< goto Target
  // Memory (Off = physical slot; floats first in mixed records).
  Load,     ///< rd := mem[rbase + Off]
  Store,    ///< mem[rbase + Off] := rs
  LoadF,    ///< fd := floatmem[rbase + Off]
  LoadIdx,  ///< rd := mem[rbase + ridx], bounds-checked (arrays/refs)
  StoreIdx, ///< mem[rbase + ridx] := rs, bounds-checked
  LoadByte, ///< rd := byte of string rbase at ridx
  SizeOfOp, ///< rd := object length from descriptor
  // Allocation: AllocStart (Kind, NWords, NFloats), fields, AllocEnd(rd).
  AllocStart,
  AllocWord,  ///< next word field := rs
  AllocFloat, ///< next float field := fs
  AllocEnd,   ///< rd := new object
  // Exception handler register.
  GetHdlr, SetHdlr,
  // Calls: stage args, then jump. SetArg/SetArgF index word/float slots.
  SetArg, SetArgF,
  CallL, ///< jump to code label Imm with staged args
  CallR, ///< jump to code address in rs with staged args
  // Runtime services (args staged like a call; result in rd).
  CCallRt,
  // Termination.
  HaltOp,    ///< result := rs
  HaltExnOp, ///< uncaught exception
};

enum class TmCond : uint8_t { Eq, Ne, Lt, Le, Gt, Ge, Ult };

struct Insn {
  TmOp Op;
  Reg Rd = 0;
  Reg Rs1 = 0;
  Reg Rs2 = 0;
  int32_t Imm = 0;      ///< label / pool index / field offset / target
  int64_t IVal = 0;     ///< integer immediate
  double FVal = 0;      ///< float immediate
  TmCond Cond = TmCond::Eq;
  CpsOp Rt = CpsOp::Copy; ///< CCallRt: which runtime service
  RecordKind RK = RecordKind::Std; ///< AllocStart
};

/// One compiled function: straight-line code with internal branches.
struct TmFunction {
  std::vector<Insn> Code;
  int NumWordParams = 0;
  int NumFloatParams = 0;
};

/// A whole compiled program.
struct TmProgram {
  std::vector<TmFunction> Funs; ///< entry is Funs[0]
  std::vector<std::string> StringPool;
  size_t codeSize() const {
    size_t N = 0;
    for (const TmFunction &F : Funs)
      N += F.Code.size();
    return N;
  }
};

} // namespace smltc

#endif // SMLTC_CODEGEN_MACHINE_H
