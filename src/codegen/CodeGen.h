//===- codegen/CodeGen.h - Closed CPS to TM code ----------------------------------===//
///
/// \file
/// The machine code generator: compiles closed (closure-converted) CPS
/// functions to TM code with a simple per-path register allocator.
/// Parameters arrive in consecutive word/float registers; temporaries are
/// allocated past them; register state is restored per branch arm so
/// register pressure tracks one control path, and pressure above 32
/// models spilling (the VM charges for it).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_CODEGEN_CODEGEN_H
#define SMLTC_CODEGEN_CODEGEN_H

#include "closure/Closure.h"
#include "codegen/Machine.h"
#include "cps/Cps.h"

namespace smltc {

struct CodeGenStats {
  int MaxWordRegs = 0;
  int MaxFloatRegs = 0;
};

TmProgram generateCode(const ClosureResult &Closed, CodeGenStats &Stats);

} // namespace smltc

#endif // SMLTC_CODEGEN_CODEGEN_H
