//===- codegen/CodeGen.cpp - Closed CPS to TM code ---------------------------------===//

#include "codegen/CodeGen.h"

#include <cassert>
#include <unordered_map>

using namespace smltc;

namespace {

class FunCompiler {
public:
  FunCompiler(TmFunction &Out, std::vector<std::string> &Pool,
              std::unordered_map<std::string, int> &PoolIndex,
              CodeGenStats &Stats)
      : Out(Out), Pool(Pool), PoolIndex(PoolIndex), Stats(Stats) {}

  void compile(const CFun *F) {
    RegState S;
    Reg NextW = 1, NextF = 1;
    for (size_t I = 0; I < F->Params.size(); ++I) {
      if (F->ParamTys[I].isFloat())
        S.FloatOf[F->Params[I]] = NextF++;
      else
        S.WordOf[F->Params[I]] = NextW++;
    }
    S.NextWord = NextW;
    S.NextFloat = NextF;
    Out.NumWordParams = NextW - 1;
    Out.NumFloatParams = NextF - 1;
    gen(F->Body, S);
  }

private:
  struct RegState {
    std::unordered_map<CVar, Reg> WordOf;
    std::unordered_map<CVar, Reg> FloatOf;
    Reg NextWord = 1;
    Reg NextFloat = 1;
  };

  size_t emit(Insn I) {
    Out.Code.push_back(I);
    return Out.Code.size() - 1;
  }

  Reg freshWord(RegState &S) {
    Reg R = S.NextWord++;
    if (S.NextWord > Stats.MaxWordRegs)
      Stats.MaxWordRegs = S.NextWord;
    return R;
  }
  Reg freshFloat(RegState &S) {
    Reg R = S.NextFloat++;
    if (S.NextFloat > Stats.MaxFloatRegs)
      Stats.MaxFloatRegs = S.NextFloat;
    return R;
  }

  int poolIdx(Symbol Sym) {
    std::string S(Sym.str());
    auto It = PoolIndex.find(S);
    if (It != PoolIndex.end())
      return It->second;
    int Idx = static_cast<int>(Pool.size());
    Pool.push_back(S);
    PoolIndex[S] = Idx;
    return Idx;
  }

  /// True if this value lives in a float register.
  bool isFloatVal(const CValue &V, const RegState &S) const {
    if (V.K == CValue::Kind::Real)
      return true;
    if (V.isVar())
      return S.FloatOf.count(V.V) != 0;
    return false;
  }

  Reg wordReg(const CValue &V, RegState &S) {
    switch (V.K) {
    case CValue::Kind::Var: {
      auto It = S.WordOf.find(V.V);
      assert(It != S.WordOf.end() && "word value not in a register");
      return It->second;
    }
    case CValue::Kind::Int: {
      Reg R = freshWord(S);
      Insn I{TmOp::MovI};
      I.Rd = R;
      I.IVal = V.I;
      emit(I);
      return R;
    }
    case CValue::Kind::Label: {
      Reg R = freshWord(S);
      Insn I{TmOp::LoadLabel};
      I.Rd = R;
      I.Imm = static_cast<int32_t>(V.I);
      emit(I);
      return R;
    }
    case CValue::Kind::String: {
      Reg R = freshWord(S);
      Insn I{TmOp::LoadStr};
      I.Rd = R;
      I.Imm = poolIdx(V.S);
      emit(I);
      return R;
    }
    case CValue::Kind::Real:
      assert(false && "float value in word position");
      return 0;
    }
    return 0;
  }

  Reg floatReg(const CValue &V, RegState &S) {
    if (V.K == CValue::Kind::Real) {
      Reg R = freshFloat(S);
      Insn I{TmOp::MovFI};
      I.Rd = R;
      I.FVal = V.R;
      emit(I);
      return R;
    }
    assert(V.isVar());
    auto It = S.FloatOf.find(V.V);
    assert(It != S.FloatOf.end() && "float value not in a register");
    return It->second;
  }

  void stageArgs(Span<CValue> Args, RegState &S) {
    int WIdx = 0, FIdx = 0;
    for (const CValue &V : Args) {
      if (V.isPad()) {
        // Unused callee-save slot: the register's current content is
        // irrelevant and no move is needed.
        (V.isFloatPad() ? FIdx : WIdx)++;
        continue;
      }
      if (isFloatVal(V, S)) {
        Reg R = floatReg(V, S);
        Insn I{TmOp::SetArgF};
        I.Imm = FIdx++;
        I.Rs1 = R;
        emit(I);
      } else {
        Reg R = wordReg(V, S);
        Insn I{TmOp::SetArg};
        I.Imm = WIdx++;
        I.Rs1 = R;
        emit(I);
      }
    }
  }

  static TmOp arithOp(CpsOp Op) {
    switch (Op) {
    case CpsOp::IAdd: return TmOp::Add;
    case CpsOp::ISub: return TmOp::Sub;
    case CpsOp::IMul: return TmOp::Mul;
    case CpsOp::IDiv: return TmOp::Div;
    case CpsOp::IMod: return TmOp::Mod;
    case CpsOp::INeg: return TmOp::Neg;
    case CpsOp::IAbs: return TmOp::Abs;
    case CpsOp::FAdd: return TmOp::FAdd;
    case CpsOp::FSub: return TmOp::FSub;
    case CpsOp::FMul: return TmOp::FMul;
    case CpsOp::FDiv: return TmOp::FDiv;
    case CpsOp::FNeg: return TmOp::FNeg;
    case CpsOp::FAbs: return TmOp::FAbs;
    case CpsOp::FSqrt: return TmOp::FSqrt;
    case CpsOp::FSin: return TmOp::FSin;
    case CpsOp::FCos: return TmOp::FCos;
    case CpsOp::FAtan: return TmOp::FAtan;
    case CpsOp::FExp: return TmOp::FExp;
    case CpsOp::FLn: return TmOp::FLn;
    case CpsOp::Floor: return TmOp::Floor;
    case CpsOp::RealFromInt: return TmOp::IToF;
    default:
      assert(false && "not an arith op");
      return TmOp::Add;
    }
  }

  static bool isFloatArith(CpsOp Op) {
    switch (Op) {
    case CpsOp::FAdd: case CpsOp::FSub: case CpsOp::FMul:
    case CpsOp::FDiv: case CpsOp::FNeg: case CpsOp::FAbs:
    case CpsOp::FSqrt: case CpsOp::FSin: case CpsOp::FCos:
    case CpsOp::FAtan: case CpsOp::FExp: case CpsOp::FLn:
      return true;
    default:
      return false;
    }
  }

  void gen(const Cexp *E, RegState S) {
    for (;;) {
      switch (E->K) {
      case Cexp::Kind::Record: {
        int NW = 0, NF = 0;
        for (const CField &F : E->Fields)
          (F.IsFloat ? NF : NW)++;
        // Materialize field registers first (allocation must not be
        // interleaved with other allocations).
        std::vector<std::pair<Reg, bool>> FieldRegs;
        for (const CField &F : E->Fields) {
          if (F.IsFloat)
            FieldRegs.push_back({floatReg(F.V, S), true});
          else
            FieldRegs.push_back({wordReg(F.V, S), false});
        }
        Insn A{TmOp::AllocStart};
        A.RK = E->RK;
        A.Rs1 = static_cast<Reg>(NW);
        A.Rs2 = static_cast<Reg>(NF);
        emit(A);
        for (auto [R, IsF] : FieldRegs) {
          Insn FI{IsF ? TmOp::AllocFloat : TmOp::AllocWord};
          FI.Rs1 = R;
          emit(FI);
        }
        Reg Rd = freshWord(S);
        Insn End{TmOp::AllocEnd};
        End.Rd = Rd;
        emit(End);
        S.WordOf[E->W] = Rd;
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Select: {
        Reg Base = wordReg(E->F, S);
        if (E->IsFloat) {
          Reg Rd = freshFloat(S);
          Insn I{TmOp::LoadF};
          I.Rd = Rd;
          I.Rs1 = Base;
          I.Imm = E->Idx;
          emit(I);
          S.FloatOf[E->W] = Rd;
        } else {
          Reg Rd = freshWord(S);
          Insn I{TmOp::Load};
          I.Rd = Rd;
          I.Rs1 = Base;
          I.Imm = E->Idx;
          emit(I);
          S.WordOf[E->W] = Rd;
        }
        E = E->C1;
        continue;
      }
      case Cexp::Kind::App: {
        stageArgs(E->Args, S);
        if (E->F.K == CValue::Kind::Label) {
          Insn I{TmOp::CallL};
          I.Imm = static_cast<int32_t>(E->F.I);
          emit(I);
        } else {
          Reg R = wordReg(E->F, S);
          Insn I{TmOp::CallR};
          I.Rs1 = R;
          emit(I);
        }
        return;
      }
      case Cexp::Kind::Fix:
        assert(false && "FIX survived closure conversion");
        return;
      case Cexp::Kind::Branch: {
        TmCond C;
        bool FloatCmp = false;
        switch (E->BOp) {
        case BranchOp::Ieq: C = TmCond::Eq; break;
        case BranchOp::Ine: C = TmCond::Ne; break;
        case BranchOp::Ilt: C = TmCond::Lt; break;
        case BranchOp::Ile: C = TmCond::Le; break;
        case BranchOp::Igt: C = TmCond::Gt; break;
        case BranchOp::Ige: C = TmCond::Ge; break;
        case BranchOp::Ult: C = TmCond::Ult; break;
        case BranchOp::Feq: C = TmCond::Eq; FloatCmp = true; break;
        case BranchOp::Flt: C = TmCond::Lt; FloatCmp = true; break;
        case BranchOp::Fle: C = TmCond::Le; FloatCmp = true; break;
        case BranchOp::Fgt: C = TmCond::Gt; FloatCmp = true; break;
        case BranchOp::Fge: C = TmCond::Ge; FloatCmp = true; break;
        case BranchOp::IsBoxed: {
          Reg R = wordReg(E->Args[0], S);
          Insn I{TmOp::BrBoxed};
          I.Rs1 = R;
          size_t BrIdx = emit(I);
          gen(E->C2, S); // not boxed: fall through to else
          Out.Code[BrIdx].Imm = static_cast<int32_t>(Out.Code.size());
          gen(E->C1, S);
          return;
        }
        }
        size_t BrIdx;
        if (FloatCmp) {
          Reg A = floatReg(E->Args[0], S);
          Reg Bv = floatReg(E->Args[1], S);
          Insn I{TmOp::BrF};
          I.Cond = C;
          I.Rs1 = A;
          I.Rs2 = Bv;
          BrIdx = emit(I);
        } else {
          Reg A = wordReg(E->Args[0], S);
          Reg Bv = wordReg(E->Args[1], S);
          Insn I{TmOp::Br};
          I.Cond = C;
          I.Rs1 = A;
          I.Rs2 = Bv;
          BrIdx = emit(I);
        }
        gen(E->C2, S); // else falls through
        Out.Code[BrIdx].Imm = static_cast<int32_t>(Out.Code.size());
        gen(E->C1, S);
        return;
      }
      case Cexp::Kind::Arith:
      case Cexp::Kind::Pure: {
        if (E->Op == CpsOp::Copy) {
          if (isFloatVal(E->Args[0], S)) {
            Reg Rs = floatReg(E->Args[0], S);
            Reg Rd = freshFloat(S);
            Insn I{TmOp::MovFR};
            I.Rd = Rd;
            I.Rs1 = Rs;
            emit(I);
            S.FloatOf[E->W] = Rd;
          } else {
            Reg Rs = wordReg(E->Args[0], S);
            Reg Rd = freshWord(S);
            Insn I{TmOp::MovR};
            I.Rd = Rd;
            I.Rs1 = Rs;
            emit(I);
            S.WordOf[E->W] = Rd;
          }
          E = E->C1;
          continue;
        }
        bool FRes = E->WTy.isFloat();
        bool FArgs = isFloatArith(E->Op) || E->Op == CpsOp::Floor;
        Insn I{arithOp(E->Op)};
        if (E->Op == CpsOp::RealFromInt)
          FArgs = false;
        if (FArgs) {
          I.Rs1 = floatReg(E->Args[0], S);
          if (E->Args.size() > 1)
            I.Rs2 = floatReg(E->Args[1], S);
        } else {
          I.Rs1 = wordReg(E->Args[0], S);
          if (E->Args.size() > 1)
            I.Rs2 = wordReg(E->Args[1], S);
        }
        Reg Rd = FRes ? freshFloat(S) : freshWord(S);
        I.Rd = Rd;
        emit(I);
        if (FRes)
          S.FloatOf[E->W] = Rd;
        else
          S.WordOf[E->W] = Rd;
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Looker: {
        Reg Rd;
        switch (E->Op) {
        case CpsOp::LoadCell: {
          Reg Base = wordReg(E->Args[0], S);
          Reg Idx = wordReg(E->Args[1], S);
          Rd = freshWord(S);
          Insn I{TmOp::LoadIdx};
          I.Rd = Rd;
          I.Rs1 = Base;
          I.Rs2 = Idx;
          emit(I);
          break;
        }
        case CpsOp::LoadByte: {
          Reg Base = wordReg(E->Args[0], S);
          Reg Idx = wordReg(E->Args[1], S);
          Rd = freshWord(S);
          Insn I{TmOp::LoadByte};
          I.Rd = Rd;
          I.Rs1 = Base;
          I.Rs2 = Idx;
          emit(I);
          break;
        }
        case CpsOp::SizeOf: {
          Reg Base = wordReg(E->Args[0], S);
          Rd = freshWord(S);
          Insn I{TmOp::SizeOfOp};
          I.Rd = Rd;
          I.Rs1 = Base;
          emit(I);
          break;
        }
        case CpsOp::GetHandler: {
          Rd = freshWord(S);
          Insn I{TmOp::GetHdlr};
          I.Rd = Rd;
          emit(I);
          break;
        }
        default:
          assert(false && "unknown looker");
          Rd = freshWord(S);
        }
        S.WordOf[E->W] = Rd;
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Setter: {
        if (E->Op == CpsOp::StoreCell) {
          Reg Base = wordReg(E->Args[0], S);
          Reg Idx = wordReg(E->Args[1], S);
          Reg Val = wordReg(E->Args[2], S);
          Insn I{TmOp::StoreIdx};
          I.Rs1 = Base;
          I.Rs2 = Idx;
          I.Rd = Val; // value register carried in Rd
          emit(I);
        } else {
          assert(E->Op == CpsOp::SetHandler);
          Reg V = wordReg(E->Args[0], S);
          Insn I{TmOp::SetHdlr};
          I.Rs1 = V;
          emit(I);
        }
        E = E->C1;
        continue;
      }
      case Cexp::Kind::CCall: {
        stageArgs(E->Args, S);
        bool FRes = E->WTy.isFloat();
        Reg Rd = FRes ? freshFloat(S) : freshWord(S);
        Insn I{TmOp::CCallRt};
        I.Rt = E->Op;
        I.Rd = Rd;
        emit(I);
        if (FRes)
          S.FloatOf[E->W] = Rd;
        else
          S.WordOf[E->W] = Rd;
        E = E->C1;
        continue;
      }
      case Cexp::Kind::Halt: {
        Reg R = wordReg(E->F, S);
        Insn I{E->Idx == 1 ? TmOp::HaltExnOp : TmOp::HaltOp};
        I.Rs1 = R;
        emit(I);
        return;
      }
      }
    }
  }

  TmFunction &Out;
  std::vector<std::string> &Pool;
  std::unordered_map<std::string, int> &PoolIndex;
  CodeGenStats &Stats;
};

} // namespace

TmProgram smltc::generateCode(const ClosureResult &Closed,
                              CodeGenStats &Stats) {
  TmProgram P;
  P.Funs.resize(Closed.Funs.size());
  std::unordered_map<std::string, int> PoolIndex;
  for (size_t I = 0; I < Closed.Funs.size(); ++I) {
    assert(Closed.Funs[I] && "missing function for label");
    FunCompiler FC(P.Funs[I], P.StringPool, PoolIndex, Stats);
    FC.compile(Closed.Funs[I]);
  }
  return P;
}
