//===- driver/PreludeSnapshot.cpp - Elaborate-once prelude sharing ---------===//

#include "driver/PreludeSnapshot.h"

#include "ast/Parser.h"
#include "driver/CompileCache.h"
#include "driver/Compiler.h"
#include "lty/TypeToLty.h"
#include "obs/Trace.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

using namespace smltc;

PreludeStats &smltc::preludeStats() {
  static PreludeStats Stats;
  return Stats;
}

const std::string &PreludeSnapshot::sourceText() {
  static const std::string Text(Compiler::prelude());
  return Text;
}

namespace {

//===----------------------------------------------------------------------===//
// Freeze pass
//===----------------------------------------------------------------------===//

/// Walks every type reachable from a layer's environment and typed
/// program. Two jobs: (1) fully compress union-find links, so job-side
/// `TypeContext::resolve` on shared nodes is write-free (lock-free
/// sharing stays TSan-clean); (2) verify that no unbound, un-generalized
/// type variable is reachable — those are the only nodes job-side
/// unification could mutate. Tycon formal variables and constructor
/// payload templates are visited in *template* mode where raw formals
/// are legal: they are substituted away, never unified against.
class TypeFreezer : public EnvVisitor {
public:
  bool Ok = true;
  std::string Error;

  void type(Type *T, bool Template = false) {
    if (!T || !Visited.insert(T).second)
      return;
    switch (T->K) {
    case Type::Kind::Var:
      if (T->Link) {
        Type *R = TypeContext::resolve(T);
        T->Link = R; // chain length 1: job-side resolve never writes
        type(R, Template);
      } else if (!T->IsBound && !Template) {
        fail("unbound type variable reachable from the prelude snapshot");
      }
      return;
    case Type::Kind::Con:
      tycon(T->Con);
      for (Type *Arg : T->Args)
        type(Arg, Template);
      return;
    case Type::Kind::Tuple:
      for (Type *E : T->Elems)
        type(E, Template);
      return;
    case Type::Kind::Arrow:
      type(T->From, Template);
      type(T->To, Template);
      return;
    }
  }

  void scheme(const TypeScheme &S) {
    for (Type *B : S.BoundVars)
      type(B, /*Template=*/true);
    if (S.Body)
      type(S.Body);
  }

  void tycon(TyCon *TC) {
    if (!TC || !Visited.insert(TC).second)
      return;
    for (Type *F : TC->Formals)
      type(F, /*Template=*/true);
    if (TC->AbbrevBody)
      type(TC->AbbrevBody, /*Template=*/true);
    for (DataCon *DC : TC->Cons)
      datacon(DC);
  }

  void datacon(DataCon *DC) {
    if (!DC || !Visited.insert(DC).second)
      return;
    if (DC->Payload)
      type(DC->Payload, /*Template=*/true);
    tycon(DC->Owner);
  }

  void valinfo(ValInfo *V) {
    if (!V || !Visited.insert(V).second)
      return;
    scheme(V->Scheme);
  }

  void exninfo(ExnInfo *X) {
    if (!X || !Visited.insert(X).second)
      return;
    if (X->Payload)
      type(X->Payload);
  }

  void strstatic(const StrStatic *S) {
    if (!S || !Visited.insert(S).second)
      return;
    for (const StrComp &C : S->Comps) {
      scheme(C.Scheme);
      valinfo(C.Val);
      exninfo(C.Exn);
      if (C.ExnPayload)
        type(C.ExnPayload);
      strstatic(C.Str);
    }
    for (const StrTyComp &C : S->TyComps)
      tycon(C.Tycon);
    for (const StrConComp &C : S->ConComps)
      datacon(C.Con);
  }

  void strinfo(StrInfo *I) {
    if (!I || !Visited.insert(I).second)
      return;
    strstatic(I->Static);
  }

  void thinning(const Thinning *T) {
    if (!T || !Visited.insert(T).second)
      return;
    for (const ThinComp &C : T->Comps) {
      scheme(C.SrcScheme);
      scheme(C.DstScheme);
      thinning(C.Sub);
    }
  }

  void fctinfo(FctInfo *F) {
    if (!F || !Visited.insert(F).second)
      return;
    strinfo(F->Param);
    strexp(F->Body);
    strstatic(F->ParamStatic);
    strstatic(F->BodyStatic);
  }

  void pat(APat *P) {
    if (!P || !Visited.insert(P).second)
      return;
    if (P->Ty)
      type(P->Ty);
    valinfo(P->Var);
    for (Type *T : P->TypeArgs)
      type(T);
    datacon(P->Con);
    for (APat *E : P->Elems)
      pat(E);
    pat(P->Arg);
    exp(P->ExnTag);
    if (P->ExnPayload)
      type(P->ExnPayload);
  }

  void exp(AExp *E) {
    if (!E || !Visited.insert(E).second)
      return;
    if (E->Ty)
      type(E->Ty);
    for (Type *T : E->TypeArgs)
      type(T);
    valinfo(E->Var);
    strinfo(E->Root);
    scheme(E->PathScheme);
    exninfo(E->Exn);
    exp(E->TagExp);
    if (E->ExnPayload)
      type(E->ExnPayload);
    datacon(E->Con);
    for (AExp *X : E->Elems)
      exp(X);
    exp(E->Fun);
    exp(E->Arg);
    exp(E->Scrut);
    exp(E->Body);
    for (const ARule &R : E->Rules) {
      pat(R.P);
      exp(R.E);
    }
    for (ADec *D : E->Decs)
      dec(D);
  }

  void strexp(AStrExp *S) {
    if (!S || !Visited.insert(S).second)
      return;
    strstatic(S->Static);
    for (ADec *D : S->Decs)
      dec(D);
    for (const SlotRef &R : S->Slots) {
      valinfo(R.Val);
      scheme(R.CompScheme);
      exninfo(R.Exn);
      strinfo(R.Str);
    }
    strinfo(S->Root);
    fctinfo(S->Fct);
    strexp(S->Arg);
    thinning(S->ArgThin);
    strstatic(S->ArgSigStatic);
    strstatic(S->AbstractResult);
    strexp(S->Inner);
    thinning(S->Thin);
  }

  void dec(ADec *D) {
    if (!D || !Visited.insert(D).second)
      return;
    pat(D->Pat);
    exp(D->Exp);
    for (ValInfo *V : D->RecVars)
      valinfo(V);
    for (AExp *E : D->RecExps)
      exp(E);
    exninfo(D->Exn);
    strinfo(D->Str);
    strexp(D->StrExp);
    fctinfo(D->Fct);
  }

  void env(const Env &E) {
    if (!Visited.insert(&E).second)
      return;
    E.visit(*this);
  }

  // EnvVisitor
  void val(Symbol, const ValBinding &B) override {
    switch (B.K) {
    case ValBinding::Kind::Val:
      valinfo(B.Val);
      return;
    case ValBinding::Kind::Con:
      datacon(B.Con);
      return;
    case ValBinding::Kind::Exn:
      exninfo(B.Exn);
      return;
    case ValBinding::Kind::Prim:
      scheme(B.Prim.Scheme);
      return;
    case ValBinding::Kind::None:
      return;
    }
  }
  void tycon(Symbol, TyCon *T) override { tycon(T); }
  void str(Symbol, StrInfo *I) override { strinfo(I); }
  void sig(Symbol, const SigInfo &I) override {
    if (I.DefEnv)
      env(*I.DefEnv);
  }
  void fct(Symbol, FctInfo *F) override { fctinfo(F); }

private:
  void fail(const char *Msg) {
    if (Ok) {
      Ok = false;
      Error = Msg;
    }
  }

  std::unordered_set<const void *> Visited;
};

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

bool buildLayer(PreludeLayer &L, StringInterner &Interner, bool Mtd,
                std::string &Err) {
  L.A = std::make_unique<Arena>();
  L.Types = std::make_unique<TypeContext>(*L.A, Interner);
  DiagnosticEngine Diags;
  Parser P(PreludeSnapshot::sourceText(), *L.A, Interner, Diags);
  ast::Program Raw = P.parseProgram();
  Elaborator Elab(*L.A, *L.Types, Interner, Diags);
  L.Prog = Elab.elaborate(Raw);
  if (Diags.hasErrors()) {
    Err = "prelude does not elaborate: " + Diags.render();
    return false;
  }
  if (L.Prog.Result) {
    // The prelude must not define `main`; a Result expression would be
    // evaluated twice once jobs concatenate their own declarations.
    Err = "prelude unexpectedly produced a program result";
    return false;
  }
  if (Mtd)
    L.Mtd = runMtd(L.Prog, *L.Types, *L.A);
  L.Seed = Elab.exportSeed();
  L.E = Elab.environment();
  L.TypeSeed = L.Types->counters();

  TypeFreezer F;
  F.env(*L.E);
  for (ADec *D : L.Prog.Decs)
    F.dec(D);
  if (!F.Ok) {
    Err = F.Error;
    return false;
  }
  return true;
}

/// FNV-1a over the exported typed interface of the plain layer plus the
/// post-elaboration counter state. The counters make the fingerprint
/// sensitive to prelude *shape* changes (added/removed/reordered
/// bindings, edited bodies shifting variable allocation), while the
/// lowered LTY strings capture the interface the paper's pipeline treats
/// as the modular-compilation boundary.
uint64_t computeFingerprint(const PreludeSnapshot &Snap,
                            const PreludeLayer &Plain,
                            const PreludeLayer &MtdL) {
  struct Collect : EnvVisitor {
    std::vector<std::pair<Symbol, const ValInfo *>> Vals;
    void val(Symbol S, const ValBinding &B) override {
      if (B.K == ValBinding::Kind::Val && B.Val->Exported)
        Vals.emplace_back(S, B.Val);
    }
    void tycon(Symbol, TyCon *) override {}
    void str(Symbol, StrInfo *) override {}
    void sig(Symbol, const SigInfo &) override {}
    void fct(Symbol, FctInfo *) override {}
  } C;
  Plain.E->visit(C);
  std::sort(C.Vals.begin(), C.Vals.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  std::string Bytes;
  Arena FA;
  LtyContext FLC(FA, /*HashCons=*/true);
  for (const auto &[Name, V] : C.Vals) {
    Bytes += Name.str();
    Bytes += '\0';
    for (ReprMode Mode :
         {ReprMode::Standard, ReprMode::RecordsOnly, ReprMode::FullFloat}) {
      TypeLowering Lower(FLC, *Plain.Types, Mode);
      Bytes += FLC.toString(Lower.lowerScheme(V->Scheme));
      Bytes += ';';
    }
    Bytes += '\n';
  }
  Bytes += "ids=" + std::to_string(Plain.Seed.NextValId) + ',' +
           std::to_string(Plain.Seed.NextExnId) + ',' +
           std::to_string(Plain.TypeSeed.NextVarId) + ',' +
           std::to_string(Plain.TypeSeed.NextStamp) + ";mtd=" +
           std::to_string(MtdL.Mtd.VarsGrounded) + ',' +
           std::to_string(MtdL.Mtd.BindingsNarrowed) + '\n';
  (void)Snap;
  return fnv1a64(Bytes);
}

} // namespace

std::unique_ptr<const PreludeSnapshot> PreludeSnapshot::build() {
  auto T0 = std::chrono::steady_clock::now();
  obs::Span BuildSpan("prelude_snapshot", "compile");
  std::unique_ptr<PreludeSnapshot> Snap(new PreludeSnapshot());
  std::string Err;
  if (!buildLayer(Snap->PlainLayer, Snap->Interner, /*Mtd=*/false, Err) ||
      !buildLayer(Snap->MtdLayer, Snap->Interner, /*Mtd=*/true, Err)) {
    BuildSpan.arg("error", Err);
    return nullptr;
  }
  Snap->Fingerprint =
      computeFingerprint(*Snap, Snap->PlainLayer, Snap->MtdLayer);
  Snap->BuildSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  preludeStats().SnapshotBuilds.fetch_add(1, std::memory_order_relaxed);
  return Snap;
}

const PreludeSnapshot *PreludeSnapshot::get() {
  static const std::unique_ptr<const PreludeSnapshot> Snap = build();
  return Snap.get();
}

uint64_t PreludeSnapshot::cacheFingerprint() {
  if (const PreludeSnapshot *S = get())
    return S->interfaceFingerprint();
  return fnv1a64(sourceText());
}
