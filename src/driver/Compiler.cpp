//===- driver/Compiler.cpp - The full compiler pipeline ------------------------------===//

#include "driver/Compiler.h"

#include "ast/Parser.h"
#include "closure/Closure.h"
#include "cps/CpsCheck.h"
#include "cps/CpsConvert.h"
#include "driver/PreludeSnapshot.h"
#include "elab/Elaborator.h"
#include "lexp/LexpCheck.h"
#include "lexp/Translate.h"
#include "native/NativeBackend.h"
#include "obs/Trace.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <chrono>
#include <functional>
#include <optional>
#include <pthread.h>
#include <vector>

using namespace smltc;

namespace {

/// CPS trees for whole programs are deep and the optimizer's rewriting is
/// recursive; run compilation on a thread with a generous stack. Returns
/// false when the big-stack thread could not be created and \p Fn ran on
/// the caller's own stack instead.
bool runWithBigStack(const std::function<void()> &Fn) {
  pthread_attr_t Attr;
  pthread_attr_init(&Attr);
  pthread_attr_setstacksize(&Attr, 1ull << 30); // 1 GiB
  struct Ctx {
    const std::function<void()> *Fn;
  } C{&Fn};
  pthread_t Tid;
  auto Trampoline = [](void *P) -> void * {
    (*static_cast<Ctx *>(P)->Fn)();
    return nullptr;
  };
  bool BigStack = pthread_create(&Tid, &Attr, Trampoline, &C) == 0;
  if (BigStack)
    pthread_join(Tid, nullptr);
  else
    Fn(); // fall back to the current stack
  pthread_attr_destroy(&Attr);
  return BigStack;
}

} // namespace

const char *Compiler::prelude() {
  return R"PRELUDE(
fun not b = if b then false else true
fun rev l = let fun re (nil, a) = a | re (x :: r, a) = re (r, x :: a)
            in re (l, nil) end
fun map f l = case l of nil => nil | x :: r => f x :: map f r
fun app f l = case l of nil => () | x :: r => (f x; app f r)
fun foldl f b l = case l of nil => b | x :: r => foldl f (f (x, b)) r
fun foldr f b l = case l of nil => b | x :: r => f (x, foldr f b r)
fun length l = let fun n (nil, k) = k | n (_ :: r, k) = n (r, k + 1)
               in n (l, 0) end
fun exists p l = case l of nil => false
                         | x :: r => if p x then true else exists p r
fun all p l = case l of nil => true
                      | x :: r => if p x then all p r else false
fun filter p l = case l of nil => nil
                         | x :: r => if p x then x :: filter p r
                                     else filter p r
fun hd l = case l of x :: _ => x | nil => raise Match
fun tl l = case l of _ :: r => r | nil => raise Match
fun null l = case l of nil => true | _ => false
fun op @ (l1, l2) = case l1 of nil => l2 | x :: r => x :: (r @ l2)
fun op o (f, g) = fn x => f (g x)
fun tabulate (n, f) =
  let fun go i = if i >= n then nil else f i :: go (i + 1) in go 0 end
fun nth (l, n) = if n = 0 then hd l else nth (tl l, n - 1)
)PRELUDE";
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

CompileOutput Compiler::compile(const std::string &Source,
                                const CompilerOptions &Opts,
                                bool WithPrelude) {
  CompileOutput Out;
  bool BigStack =
      runWithBigStack([&]() { Out = compileImpl(Source, Opts, WithPrelude); });
  if (!BigStack)
    Out.Metrics.BigStackUnavailable = true;
  return Out;
}

CompileOutput Compiler::compileOnThisThread(const std::string &Source,
                                            const CompilerOptions &Opts,
                                            bool WithPrelude) {
  return compileImpl(Source, Opts, WithPrelude);
}

CompileOutput Compiler::compileImpl(const std::string &Source,
                                    const CompilerOptions &Opts,
                                    bool WithPrelude) {
  CompileOutput Out;
  auto TStart = std::chrono::steady_clock::now();
  obs::Span PipelineSpan("compile", "compile");
  PipelineSpan.arg("variant", Opts.VariantName);

  Arena A;
  StringInterner Interner;
  DiagnosticEngine Diags;

  // Prelude delivery: layer on the process-wide snapshot (default), or
  // fall back to the legacy source-text concatenation when the caller
  // asked for the inline oracle or the snapshot failed verification.
  const PreludeSnapshot *Snap = nullptr;
  const PreludeLayer *Layer = nullptr;
  if (WithPrelude && Opts.Prelude == PreludeMode::Snapshot) {
    auto TSnap = std::chrono::steady_clock::now();
    Snap = PreludeSnapshot::get();
    Out.Metrics.PreludeElabSec = secondsSince(TSnap);
    if (Snap) {
      Layer = &Snap->layer(Opts.Mtd);
      Out.Metrics.PreludeSnapshotHit = true;
      preludeStats().SnapshotHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      preludeStats().InlineFallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::optional<TypeContext> TypesOpt;
  if (Layer) {
    Interner.setBase(&Snap->interner());
    TypesOpt.emplace(A, Interner, *Layer->Types);
  } else {
    TypesOpt.emplace(A, Interner);
  }
  TypeContext &Types = *TypesOpt;

  // Under the snapshot the job parses only its own source, so
  // diagnostics carry user-relative line numbers; the inline oracle
  // keeps the historical prelude-offset positions byte-for-byte.
  std::string Full;
  const std::string *ParseInput = &Source;
  if (WithPrelude && !Layer) {
    Full = PreludeSnapshot::sourceText() + Source;
    ParseInput = &Full;
  }

  // --- Front end: parse + elaborate (+ MTD) ---
  auto TFront = std::chrono::steady_clock::now();
  Parser P(*ParseInput, A, Interner, Diags);
  ast::Program Raw;
  {
    SMLTC_SPAN("parse", "compile");
    Raw = P.parseProgram();
  }
  Out.Metrics.ParseSec = secondsSince(TFront);
  auto TElab = std::chrono::steady_clock::now();
  std::optional<Elaborator> ElabOpt;
  if (Layer)
    ElabOpt.emplace(A, Types, Interner, Diags, Layer->Seed);
  else
    ElabOpt.emplace(A, Types, Interner, Diags);
  Elaborator &Elab = *ElabOpt;
  AProgram Prog;
  {
    SMLTC_SPAN("elaborate", "compile");
    Prog = Elab.elaborate(Raw);
  }
  Out.Metrics.ElabSec = secondsSince(TElab);
  if (Diags.hasErrors()) {
    Out.Errors = Diags.render();
    Out.Metrics.FrontSec = secondsSince(TFront);
    Out.Metrics.TotalSec = secondsSince(TStart);
    return Out;
  }
  if (Opts.Mtd) {
    // Under the snapshot the user program is analyzed alone; the
    // prelude's own MTD pass ran at snapshot construction (the split is
    // exact: prelude top-levels are Exported/poisoned and prelude inner
    // bindings only see prelude-internal evidence), so adding the stored
    // stats reproduces the fused pass's numbers.
    auto TMtd = std::chrono::steady_clock::now();
    SMLTC_SPAN("mtd", "compile");
    Out.Metrics.Mtd = runMtd(Prog, Types, A);
    if (Layer) {
      Out.Metrics.Mtd.VarsGrounded += Layer->Mtd.VarsGrounded;
      Out.Metrics.Mtd.BindingsNarrowed += Layer->Mtd.BindingsNarrowed;
    }
    Out.Metrics.MtdSec = secondsSince(TMtd);
  }
  if (Layer) {
    // The job's typed program is the snapshot's declarations followed by
    // its own — exactly the sequence the inline path elaborates.
    std::vector<ADec *> All;
    All.reserve(Layer->Prog.Decs.size() + Prog.Decs.size());
    for (ADec *D : Layer->Prog.Decs)
      All.push_back(D);
    for (ADec *D : Prog.Decs)
      All.push_back(D);
    Prog.Decs = Span<ADec *>::copy(A, All);
  }
  Out.Metrics.FrontSec = secondsSince(TFront);

  // --- Middle end: Absyn -> LEXP ---
  auto TTrans = std::chrono::steady_clock::now();
  LtyContext LC(A, Opts.HashConsLty);
  BuiltinExns Exns;
  Exns.Match = Elab.MatchExn;
  Exns.Bind = Elab.BindExn;
  Exns.Div = Elab.DivExn;
  Exns.Subscript = Elab.SubscriptExn;
  Exns.Size = Elab.SizeExn;
  Exns.Overflow = Elab.OverflowExn;
  Exns.Chr = Elab.ChrExn;
  Translator Trans(A, Types, LC, Opts, Exns, Diags);
  Lexp *Lambda;
  {
    SMLTC_SPAN("translate", "compile");
    Lambda = Trans.translate(Prog);
  }
  if (Diags.hasErrors()) {
    Out.Errors = Diags.render();
    Out.Metrics.TranslateSec = secondsSince(TTrans);
    Out.Metrics.TotalSec = secondsSince(TStart);
    return Out;
  }
  Out.Metrics.TranslateSec = secondsSince(TTrans);
  Out.Metrics.LexpNodes = countLexpNodes(Lambda);
  Out.Metrics.LtyInterned = LC.internedCount();
  Out.Metrics.LtyAllocated = LC.allocatedCount();
  Out.Metrics.CoerceMemoHits = Trans.coercer().memoHits();
  Out.Metrics.CoerceMemoMisses = Trans.coercer().memoMisses();

  if (Opts.KeepDumps)
    Out.LexpDump = printLexp(Lambda);

  LexpCheckResult LCheck = checkLexp(Lambda, LC);
  if (!LCheck.Ok) {
    Out.Errors = "internal: LEXP check failed: " + LCheck.Error;
    Out.Metrics.TotalSec = secondsSince(TStart);
    return Out;
  }

  // --- Back end: CPS -> optimize -> closure -> code ---
  auto TBack = std::chrono::steady_clock::now();
  CpsConvertResult Cps;
  CpsCheckResult CCheck;
  {
    SMLTC_SPAN("cps_convert", "compile");
    Cps = convertToCps(A, LC, Opts, Lambda);
    Out.Metrics.CpsNodesBeforeOpt = countCpsNodes(Cps.Program);
    CCheck = checkCps(Cps.Program);
  }
  Out.Metrics.CpsConvertSec = secondsSince(TBack);
  if (!CCheck.Ok) {
    Out.Errors = "internal: CPS check failed: " + CCheck.Error;
    Out.Metrics.BackSec = secondsSince(TBack);
    Out.Metrics.TotalSec = secondsSince(TStart);
    return Out;
  }
  CVar MaxVar = Cps.MaxVar;
  auto TOpt = std::chrono::steady_clock::now();
  Cexp *Optimized;
  {
    SMLTC_SPAN("cps_opt", "compile");
    Optimized = optimizeCps(A, Opts, Cps.Program, MaxVar, Out.Metrics.Opt);
    Out.Metrics.CpsNodesAfterOpt = countCpsNodes(Optimized);
    if (Opts.KeepDumps)
      Out.CpsDump = printCps(Optimized);
    CCheck = checkCps(Optimized);
  }
  Out.Metrics.CpsOptSec = secondsSince(TOpt);
  if (!CCheck.Ok) {
    Out.Errors = "internal: CPS check failed after optimization: " +
                 CCheck.Error;
    Out.Metrics.BackSec = secondsSince(TBack);
    Out.Metrics.TotalSec = secondsSince(TStart);
    return Out;
  }
  if (Out.Metrics.Opt.HitSafetyCeiling) {
    // Contraction rules provably shrink the term, so a fixpoint run that
    // is still firing at the ceiling is an optimizer bug, not a program
    // property. Fail loudly rather than ship a half-contracted program.
    Out.Errors =
        "internal: CPS optimizer failed to converge within " +
        std::to_string(Out.Metrics.Opt.Rounds) +
        " phases (safety ceiling); rerun with --cps-opt-max-phases=10 "
        "to restore the bounded legacy cadence and report this program";
    Out.Metrics.BackSec = secondsSince(TBack);
    Out.Metrics.TotalSec = secondsSince(TStart);
    return Out;
  }
  auto TClosure = std::chrono::steady_clock::now();
  ClosureResult Closed;
  {
    SMLTC_SPAN("closure", "compile");
    Closed = closureConvert(A, Opts, Optimized, MaxVar);
    Out.Metrics.ClosuresBuilt = Closed.ClosuresBuilt;
  }
  Out.Metrics.ClosureSec = secondsSince(TClosure);
  auto TCodegen = std::chrono::steady_clock::now();
  {
    SMLTC_SPAN("codegen", "compile");
    Out.Program = generateCode(Closed, Out.Metrics.Codegen);
    Out.Metrics.CodeSize = Out.Program.codeSize();
  }
  Out.Metrics.CodegenSec = secondsSince(TCodegen);
  Out.Metrics.BackSec = secondsSince(TBack);
  Out.Metrics.TotalSec = secondsSince(TStart);
  Out.Ok = true;
  return Out;
}

ExecResult Compiler::compileAndRun(const std::string &Source,
                                   const CompilerOptions &Opts,
                                   bool WithPrelude, VmOptions VmOpts) {
  CompileOutput C = compile(Source, Opts, WithPrelude);
  if (!C.Ok) {
    ExecResult R;
    R.Trapped = true;
    R.TrapMessage = C.Errors;
    return R;
  }
  VmOpts.UnalignedFloats = Opts.UnalignedFloats;
  if (Opts.Backend == ExecBackend::Native) {
    ExecResult R;
    std::string Err;
    if (!native::executeNative(C.Program, VmOpts, R, Err)) {
      // No silent interpreter fallback: a native-selection caller wants
      // native numbers or an explicit error.
      R = ExecResult();
      R.Trapped = true;
      R.TrapMessage = Err;
    }
    return R;
  }
  return execute(C.Program, VmOpts);
}

const CompilerOptions *CompilerOptions::allVariants(size_t &Count) {
  static const CompilerOptions Variants[6] = {nrp(), fag(), rep(),
                                              mtd(), ffb(), fp3()};
  Count = 6;
  return Variants;
}
