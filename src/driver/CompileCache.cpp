//===- driver/CompileCache.cpp - Content-addressed compile cache -------------===//

#include "driver/CompileCache.h"

#include <cstring>
#include <type_traits>

using namespace smltc;

uint64_t smltc::fnv1a64(const std::string &Bytes) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

void appendRaw(std::string &Key, const void *P, size_t N) {
  Key.append(static_cast<const char *>(P), N);
}

template <typename T> void appendPod(std::string &Key, T V) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  appendRaw(Key, &V, sizeof(V));
}

} // namespace

std::string smltc::canonicalJobKey(const std::string &Source,
                                   const CompilerOptions &Opts,
                                   bool WithPrelude) {
  std::string Key;
  Key.reserve(Source.size() + 64);
  // Every field of CompilerOptions that can influence the generated
  // program (or the retained dumps) is serialized explicitly — the
  // struct is never memcpy'd wholesale, so padding bytes and the
  // VariantName pointer can't leak into the key.
  appendPod(Key, static_cast<uint8_t>(WithPrelude));
  appendPod(Key, static_cast<uint8_t>(Opts.Repr));
  appendPod(Key, static_cast<uint8_t>(Opts.Mtd));
  appendPod(Key, static_cast<uint8_t>(Opts.KnownFnFlattening));
  appendPod(Key, static_cast<uint8_t>(Opts.TypedArgSpreading));
  appendPod(Key, static_cast<int32_t>(Opts.FloatCalleeSaves));
  appendPod(Key, static_cast<uint8_t>(Opts.HashConsLty));
  appendPod(Key, static_cast<uint8_t>(Opts.MemoCoercions));
  appendPod(Key, static_cast<uint8_t>(Opts.CpsWrapCancel));
  appendPod(Key, static_cast<uint8_t>(Opts.CpsRecordCopyElim));
  appendPod(Key, static_cast<uint8_t>(Opts.InlineSmallFns));
  appendPod(Key, static_cast<uint8_t>(Opts.UnalignedFloats));
  appendPod(Key, static_cast<uint8_t>(Opts.KeepDumps));
  appendPod(Key, static_cast<int32_t>(Opts.MaxSpreadArgs));
  appendPod(Key, static_cast<int32_t>(Opts.GpCalleeSaves));
  Key += '\0';
  Key += Source;
  return Key;
}

std::string smltc::programBytes(const TmProgram &Program) {
  std::string Bytes;
  appendPod(Bytes, static_cast<uint64_t>(Program.Funs.size()));
  for (const TmFunction &F : Program.Funs) {
    appendPod(Bytes, static_cast<int32_t>(F.NumWordParams));
    appendPod(Bytes, static_cast<int32_t>(F.NumFloatParams));
    appendPod(Bytes, static_cast<uint64_t>(F.Code.size()));
    for (const Insn &I : F.Code) {
      appendPod(Bytes, static_cast<uint8_t>(I.Op));
      appendPod(Bytes, I.Rd);
      appendPod(Bytes, I.Rs1);
      appendPod(Bytes, I.Rs2);
      appendPod(Bytes, I.Imm);
      appendPod(Bytes, I.IVal);
      appendPod(Bytes, I.FVal);
      appendPod(Bytes, static_cast<uint8_t>(I.Cond));
      appendPod(Bytes, static_cast<uint8_t>(I.Rt));
      appendPod(Bytes, static_cast<uint8_t>(I.RK));
    }
  }
  appendPod(Bytes, static_cast<uint64_t>(Program.StringPool.size()));
  for (const std::string &S : Program.StringPool) {
    appendPod(Bytes, static_cast<uint64_t>(S.size()));
    Bytes += S;
  }
  return Bytes;
}

std::shared_ptr<const CompileOutput>
CompileCache::lookup(const std::string &Source, const CompilerOptions &Opts,
                     bool WithPrelude) {
  std::string Key = canonicalJobKey(Source, Opts, WithPrelude);
  uint64_t H = fnv1a64(Key);
  Shard &S = Shards[H % NumShards];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(H);
    if (It != S.Map.end() && It->second.first == Key) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second.second;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void CompileCache::insert(const std::string &Source,
                          const CompilerOptions &Opts, bool WithPrelude,
                          std::shared_ptr<const CompileOutput> Out) {
  std::string Key = canonicalJobKey(Source, Opts, WithPrelude);
  uint64_t H = fnv1a64(Key);
  Shard &S = Shards[H % NumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  S.Map.emplace(H, std::make_pair(std::move(Key), std::move(Out)));
}

void CompileCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
}

size_t CompileCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Map.size();
  }
  return N;
}

CompileCache &CompileCache::global() {
  static CompileCache C;
  return C;
}
