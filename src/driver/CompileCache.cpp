//===- driver/CompileCache.cpp - Content-addressed compile cache -------------===//

#include "driver/CompileCache.h"

#include "driver/PreludeSnapshot.h"

#include <cstring>
#include <type_traits>

using namespace smltc;

uint64_t smltc::fnv1a64(const std::string &Bytes) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

void appendRaw(std::string &Key, const void *P, size_t N) {
  Key.append(static_cast<const char *>(P), N);
}

template <typename T> void appendPod(std::string &Key, T V) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  appendRaw(Key, &V, sizeof(V));
}

/// Bump when canonicalJobKey gains, loses, or reorders a field — the
/// salt is part of every key, so persisted entries written under the old
/// layout can never alias entries under the new one.
constexpr int kOptionsSchemaVersion = 6;
/// Bump on releases that change generated code for identical inputs, or
/// the layout of the persisted CompileOutput blob (CompileMetrics is
/// stored as a sized memcpy, so growing it invalidates old entries).
/// 0.8.0: the shrink engine runs to fixpoint by default, so optimized
/// programs differ from every 0.7.x build.
constexpr const char *kCompilerVersion = "smltc-0.8.0";

} // namespace

const char *smltc::compilerVersion() { return kCompilerVersion; }

int smltc::optionsSchemaVersion() { return kOptionsSchemaVersion; }

const char *smltc::compileCacheSalt() {
  static const std::string Salt = std::string(kCompilerVersion) +
                                  ";optschema=" +
                                  std::to_string(kOptionsSchemaVersion) + ";";
  return Salt.c_str();
}

std::string smltc::canonicalJobKey(const std::string &Source,
                                   const CompilerOptions &Opts,
                                   bool WithPrelude) {
  std::string Key;
  Key.reserve(Source.size() + 96);
  // Version + schema salt first: entries persisted by an older build (or
  // an older key layout) can never be served by this one.
  Key += compileCacheSalt();
  Key += '\0';
  // Every field of CompilerOptions that can influence the generated
  // program (or the retained dumps) is serialized explicitly — the
  // struct is never memcpy'd wholesale, so padding bytes and the
  // VariantName pointer can't leak into the key.
  appendPod(Key, static_cast<uint8_t>(WithPrelude));
  appendPod(Key, static_cast<uint8_t>(Opts.Prelude));
  // Prelude-sensitive keying without hashing the prelude text per job:
  // the snapshot's interface fingerprint covers the exported names, their
  // lowered LTY interfaces under every representation mode, and the
  // post-elaboration counter state, so any prelude edit that could change
  // generated code changes every WithPrelude key (schema v5).
  if (WithPrelude)
    appendPod(Key, PreludeSnapshot::cacheFingerprint());
  appendPod(Key, static_cast<uint8_t>(Opts.CpsOpt));
  // The backend does not change the generated TM program, but it is a
  // declared compile option, and conflating entries across it would let
  // a cached CompileOutput mask a backend-selection bug; keep the keys
  // disjoint (schema v4).
  appendPod(Key, static_cast<uint8_t>(Opts.Backend));
  appendPod(Key, static_cast<uint8_t>(Opts.Repr));
  appendPod(Key, static_cast<uint8_t>(Opts.Mtd));
  appendPod(Key, static_cast<uint8_t>(Opts.KnownFnFlattening));
  appendPod(Key, static_cast<uint8_t>(Opts.TypedArgSpreading));
  appendPod(Key, static_cast<int32_t>(Opts.FloatCalleeSaves));
  appendPod(Key, static_cast<uint8_t>(Opts.HashConsLty));
  appendPod(Key, static_cast<uint8_t>(Opts.MemoCoercions));
  appendPod(Key, static_cast<uint8_t>(Opts.CpsWrapCancel));
  appendPod(Key, static_cast<uint8_t>(Opts.CpsRecordCopyElim));
  appendPod(Key, static_cast<uint8_t>(Opts.InlineSmallFns));
  appendPod(Key, static_cast<uint8_t>(Opts.UnalignedFloats));
  appendPod(Key, static_cast<uint8_t>(Opts.KeepDumps));
  appendPod(Key, static_cast<int32_t>(Opts.MaxSpreadArgs));
  appendPod(Key, static_cast<int32_t>(Opts.GpCalleeSaves));
  // Fixpoint-era optimizer knobs (schema v6): both change the optimized
  // program, so entries must not alias across them.
  appendPod(Key, static_cast<int32_t>(Opts.CpsOptMaxPhases));
  appendPod(Key, static_cast<uint8_t>(Opts.CpsOptDisable));
  Key += '\0';
  Key += Source;
  return Key;
}

std::string smltc::programBytes(const TmProgram &Program) {
  std::string Bytes;
  appendPod(Bytes, static_cast<uint64_t>(Program.Funs.size()));
  for (const TmFunction &F : Program.Funs) {
    appendPod(Bytes, static_cast<int32_t>(F.NumWordParams));
    appendPod(Bytes, static_cast<int32_t>(F.NumFloatParams));
    appendPod(Bytes, static_cast<uint64_t>(F.Code.size()));
    for (const Insn &I : F.Code) {
      appendPod(Bytes, static_cast<uint8_t>(I.Op));
      appendPod(Bytes, I.Rd);
      appendPod(Bytes, I.Rs1);
      appendPod(Bytes, I.Rs2);
      appendPod(Bytes, I.Imm);
      appendPod(Bytes, I.IVal);
      appendPod(Bytes, I.FVal);
      appendPod(Bytes, static_cast<uint8_t>(I.Cond));
      appendPod(Bytes, static_cast<uint8_t>(I.Rt));
      appendPod(Bytes, static_cast<uint8_t>(I.RK));
    }
  }
  appendPod(Bytes, static_cast<uint64_t>(Program.StringPool.size()));
  for (const std::string &S : Program.StringPool) {
    appendPod(Bytes, static_cast<uint64_t>(S.size()));
    Bytes += S;
  }
  return Bytes;
}

std::shared_ptr<const CompileOutput>
CompileCache::lookup(const std::string &Source, const CompilerOptions &Opts,
                     bool WithPrelude) {
  CacheTier Tier;
  return lookup(Source, Opts, WithPrelude, Tier);
}

std::shared_ptr<const CompileOutput>
CompileCache::lookup(const std::string &Source, const CompilerOptions &Opts,
                     bool WithPrelude, CacheTier &Tier) {
  std::string Key = canonicalJobKey(Source, Opts, WithPrelude);
  uint64_t H = fnv1a64(Key);
  Shard &S = Shards[H % NumShards];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(H);
    if (It != S.Map.end() && It->second.first == Key) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      Tier = CacheTier::Memory;
      return It->second.second;
    }
  }
  if (CacheBackingStore *Store = Backing.load(std::memory_order_acquire)) {
    if (std::shared_ptr<const CompileOutput> FromDisk = Store->load(H, Key)) {
      insertMemory(H, std::move(Key), FromDisk);
      Hits.fetch_add(1, std::memory_order_relaxed);
      DiskHits.fetch_add(1, std::memory_order_relaxed);
      Tier = CacheTier::Disk;
      return FromDisk;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  Tier = CacheTier::Miss;
  return nullptr;
}

void CompileCache::insertMemory(uint64_t H, std::string Key,
                                std::shared_ptr<const CompileOutput> Out) {
  Shard &S = Shards[H % NumShards];
  size_t Max = MaxEntries.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(S.M);
  auto Ins =
      S.Map.emplace(H, std::make_pair(std::move(Key), std::move(Out)));
  if (!Ins.second)
    return; // duplicate insert: first one wins, nothing new to track
  S.Order.push_back(H);
  uint64_t Total = Count.fetch_add(1, std::memory_order_relaxed) + 1;
  // FIFO-evict from this shard while the whole map is over the cap.
  // Only this shard's lock is held; inserts land across shards, so the
  // total stays within a shard's worth of the cap in the steady state.
  while (Max != 0 && Total > Max && S.Order.size() > 1) {
    uint64_t Old = S.Order.front();
    S.Order.pop_front();
    if (Old == H) { // never evict the entry just inserted
      S.Order.push_back(Old);
      continue;
    }
    if (S.Map.erase(Old)) {
      Total = Count.fetch_sub(1, std::memory_order_relaxed) - 1;
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CompileCache::insert(const std::string &Source,
                          const CompilerOptions &Opts, bool WithPrelude,
                          std::shared_ptr<const CompileOutput> Out) {
  std::string Key = canonicalJobKey(Source, Opts, WithPrelude);
  uint64_t H = fnv1a64(Key);
  if (CacheBackingStore *Store = Backing.load(std::memory_order_acquire))
    Store->store(H, Key, *Out);
  insertMemory(H, std::move(Key), std::move(Out));
}

void CompileCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
    S.Order.clear();
  }
  Count.store(0, std::memory_order_relaxed);
  Evictions.store(0, std::memory_order_relaxed);
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
  DiskHits.store(0, std::memory_order_relaxed);
}

size_t CompileCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Map.size();
  }
  return N;
}

CompileCache &CompileCache::global() {
  static CompileCache C;
  return C;
}
