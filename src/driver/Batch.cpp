//===- driver/Batch.cpp - Parallel batch-compilation engine ------------------===//

#include "driver/Batch.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <thread>

using namespace smltc;

std::string BatchMetrics::toJson() const {
  obs::JsonWriter W;
  W.beginObject()
      .field("jobs", Jobs)
      .field("succeeded", Succeeded)
      .field("failed", Failed)
      .field("cache_hits", CacheHits)
      .field("cache_disk_hits", CacheDiskHits)
      .field("cache_misses", CacheMisses)
      .field("threads", Threads)
      .field("wall_sec", WallSec)
      .field("total_compile_sec", TotalCompileSec)
      .field("front_sec", FrontSec)
      .field("translate_sec", TranslateSec)
      .field("back_sec", BackSec)
      .field("queue_wait_sec", QueueWaitSec)
      .field("programs_per_sec", programsPerSec(), 2)
      .field("speedup_vs_serial", speedupVsSerial(), 2)
      .endObject();
  return W.take();
}

std::string smltc::compileMetricsJson(const CompileMetrics &M) {
  obs::JsonWriter W;
  W.beginObject()
      .field("total_sec", M.TotalSec)
      .field("front_sec", M.FrontSec)
      .field("translate_sec", M.TranslateSec)
      .field("back_sec", M.BackSec)
      .field("parse_sec", M.ParseSec)
      .field("elab_sec", M.ElabSec)
      .field("mtd_sec", M.MtdSec)
      .field("cps_convert_sec", M.CpsConvertSec)
      .field("cps_opt_sec", M.CpsOptSec)
      .field("closure_sec", M.ClosureSec)
      .field("codegen_sec", M.CodegenSec)
      .field("queue_wait_sec", M.QueueWaitSec)
      .field("worker_id", M.WorkerId)
      .field("cache_hit", M.CacheHit)
      .field("cache_disk_hit", M.CacheDiskHit)
      .field("big_stack_unavailable", M.BigStackUnavailable)
      .field("prelude_snapshot_hit", M.PreludeSnapshotHit)
      .field("prelude_elab_sec", M.PreludeElabSec)
      .field("lexp_nodes", M.LexpNodes)
      .field("cps_nodes_before_opt", M.CpsNodesBeforeOpt)
      .field("cps_nodes_after_opt", M.CpsNodesAfterOpt)
      .field("code_size", M.CodeSize)
      .field("lty_interned", M.LtyInterned)
      .field("lty_allocated", M.LtyAllocated)
      .field("closures_built", M.ClosuresBuilt)
      .key("cps_opt")
      .beginObject()
      .field("rounds", static_cast<uint64_t>(M.Opt.Rounds))
      .field("worklist_passes", static_cast<uint64_t>(M.Opt.WorklistPasses))
      .field("expand_passes", static_cast<uint64_t>(M.Opt.ExpandPasses))
      .field("dead_removed", static_cast<uint64_t>(M.Opt.DeadRemoved))
      .field("selects_folded", static_cast<uint64_t>(M.Opt.SelectsFolded))
      .field("records_copy_eliminated",
             static_cast<uint64_t>(M.Opt.RecordsCopyEliminated))
      .field("float_boxes_reused",
             static_cast<uint64_t>(M.Opt.FloatBoxesReused))
      .field("branches_folded", static_cast<uint64_t>(M.Opt.BranchesFolded))
      .field("constants_folded",
             static_cast<uint64_t>(M.Opt.ConstantsFolded))
      .field("inlined_once", static_cast<uint64_t>(M.Opt.InlinedOnce))
      .field("inlined_small", static_cast<uint64_t>(M.Opt.InlinedSmall))
      .field("eta_conts", static_cast<uint64_t>(M.Opt.EtaConts))
      .field("known_fns_flattened",
             static_cast<uint64_t>(M.Opt.KnownFnsFlattened))
      .field("arena_bytes",
             static_cast<uint64_t>(M.Opt.ArenaBytesAfter -
                                   M.Opt.ArenaBytesBefore))
      .field("hit_round_cap", M.Opt.HitRoundCap)
      .endObject()
      .endObject();
  return W.take();
}

BatchCompiler::BatchCompiler(BatchOptions Options)
    : StackBytes(Options.StackBytes), Cache(Options.Cache),
      MaxQueue(Options.MaxQueue) {
  NThreads = Options.NumThreads;
  if (NThreads == 0) {
    NThreads = std::thread::hardware_concurrency();
    if (NThreads == 0)
      NThreads = 1;
  }
  // WorkerBigStack is sized once here and never resized again: running
  // workers read their own slot, so any later reallocation would race.
  WorkerBigStack.assign(NThreads, 1);
  Workers.reserve(NThreads);

  struct StartCtx {
    BatchCompiler *Self;
    size_t WorkerId;
  };
  auto Entry = [](void *P) -> void * {
    StartCtx *C = static_cast<StartCtx *>(P);
    BatchCompiler *Self = C->Self;
    size_t Id = C->WorkerId;
    delete C;
    Self->workerLoop(Id);
    return nullptr;
  };

  for (size_t I = 0; I < NThreads; ++I) {
    pthread_attr_t Attr;
    pthread_attr_init(&Attr);
    pthread_attr_setstacksize(&Attr, StackBytes);
    StartCtx *C = new StartCtx{this, I};
    pthread_t Tid;
    if (pthread_create(&Tid, &Attr, Entry, C) != 0) {
      // Big stack unavailable (e.g. RLIMIT_AS): run this worker on a
      // default-sized stack and record the degradation per-job.
      WorkerBigStack[I] = 0;
      pthread_attr_destroy(&Attr);
      pthread_attr_init(&Attr);
      if (pthread_create(&Tid, &Attr, Entry, C) != 0) {
        delete C;
        pthread_attr_destroy(&Attr);
        break;
      }
    }
    Workers.push_back(Tid);
    pthread_attr_destroy(&Attr);
  }
  // The effective pool is whatever actually started; if not even one
  // worker could be created, compileAll compiles inline on the caller.
  NThreads = Workers.size();
}

BatchCompiler::~BatchCompiler() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  // Workers drain the queue before exiting, so every accepted async
  // job's Done callback fires even through a shutdown.
  for (pthread_t T : Workers)
    pthread_join(T, nullptr);
}

void BatchCompiler::runItem(WorkItem &Item, int WorkerId, bool BigStack) {
  auto Now = std::chrono::steady_clock::now();
  double QueueWait =
      std::chrono::duration<double>(Now - Item.Enqueued).count();
  const CompileJob &Job = Item.Job;

  // Install the request's propagated context (if any) for the job's
  // scope: the compile_job span and all phase spans under it then
  // parent into the originating client's trace.
  obs::TraceContext WireCtx{Job.TraceIdHi, Job.TraceIdLo,
                            Job.ParentSpanId};
  obs::ScopedTraceContext CtxScope(WireCtx.valid()
                                       ? WireCtx
                                       : obs::Tracer::currentContext());
  if (obs::Tracer::enabled()) {
    // The span for the time the job sat queued, recorded retroactively on
    // the worker that picked it up (the enqueuing thread has moved on).
    obs::Tracer &T = obs::Tracer::instance();
    T.emitComplete("queue_wait", "batch", T.toUs(Item.Enqueued),
                   static_cast<uint64_t>(QueueWait * 1e6),
                   std::string(), WireCtx, 0, WireCtx.SpanId);
  }
  obs::Span JobSpan("compile_job", "batch");
  JobSpan.arg("variant", Job.Opts.VariantName);
  JobSpan.arg("worker_id", static_cast<int64_t>(WorkerId));
  if (Job.TraceRequestId)
    JobSpan.arg("request_id", Job.TraceRequestId);

  AsyncCompileResult R;
  if (Item.HasDeadline && Now >= Item.Deadline) {
    // Expired while queued: don't burn a worker on a result nobody can
    // use any more.
    R.DeadlineExpired = true;
    R.Out.Ok = false;
    R.Out.Errors = "compile deadline exceeded while queued";
  } else if (Cache) {
    CacheTier Tier = CacheTier::Miss;
    if (std::shared_ptr<const CompileOutput> Hit =
            Cache->lookup(Job.Source, Job.Opts, Job.WithPrelude, Tier)) {
      R.Out = *Hit;
      // The cached entry carries the phase timings of the compile that
      // produced it; serving them as this job's timings would corrupt
      // per-phase aggregates (a cache hit "compiles" in ~0). Zero every
      // phase field; size/statistic fields still describe the program.
      CompileMetrics &CM = R.Out.Metrics;
      CM.TotalSec = CM.FrontSec = CM.TranslateSec = CM.BackSec = 0;
      CM.ParseSec = CM.ElabSec = CM.MtdSec = 0;
      CM.CpsConvertSec = CM.CpsOptSec = CM.ClosureSec = CM.CodegenSec = 0;
      CM.CacheHit = true;
      CM.CacheDiskHit = Tier == CacheTier::Disk;
    } else {
      R.Out = WorkerId < 0
                  ? Compiler::compile(Job.Source, Job.Opts, Job.WithPrelude)
                  : Compiler::compileOnThisThread(Job.Source, Job.Opts,
                                                  Job.WithPrelude);
      Cache->insert(Job.Source, Job.Opts, Job.WithPrelude,
                    std::make_shared<CompileOutput>(R.Out));
    }
  } else {
    // WorkerId < 0 is the inline (no-pool) path: use the big-stack
    // trampoline of Compiler::compile since the caller's stack is small.
    R.Out = WorkerId < 0
                ? Compiler::compile(Job.Source, Job.Opts, Job.WithPrelude)
                : Compiler::compileOnThisThread(Job.Source, Job.Opts,
                                                Job.WithPrelude);
  }
  R.Out.Metrics.WorkerId = WorkerId;
  R.Out.Metrics.QueueWaitSec = QueueWait;
  if (WorkerId >= 0 && !BigStack)
    R.Out.Metrics.BigStackUnavailable = true;
  JobSpan.arg("cache", R.DeadlineExpired          ? "expired"
                       : R.Out.Metrics.CacheDiskHit ? "disk"
                       : R.Out.Metrics.CacheHit     ? "memory"
                                                    : "miss");
  Item.Done(std::move(R));
}

void BatchCompiler::workerLoop(size_t WorkerId) {
  obs::Tracer::setThreadName("worker-" + std::to_string(WorkerId));
  for (;;) {
    WorkItem Item;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      WorkReady.wait(Lock, [&] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and fully drained
      Item = std::move(Queue.front());
      Queue.pop_front();
    }
    runItem(Item, static_cast<int>(WorkerId), WorkerBigStack[WorkerId] != 0);
  }
}

SubmitStatus BatchCompiler::submitJob(CompileJob Job, CompileDoneFn Done,
                                      uint32_t DeadlineMs) {
  WorkItem W;
  W.Job = std::move(Job);
  W.Done = std::move(Done);
  W.Enqueued = std::chrono::steady_clock::now();
  if (DeadlineMs) {
    W.HasDeadline = true;
    W.Deadline = W.Enqueued + std::chrono::milliseconds(DeadlineMs);
  }
  if (Workers.empty()) {
    // Degenerate 0-worker pool: run synchronously on the caller.
    runItem(W, /*WorkerId=*/-1, /*BigStack=*/false);
    return SubmitStatus::Accepted;
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (ShuttingDown)
      return SubmitStatus::ShuttingDown;
    if (MaxQueue && Queue.size() >= MaxQueue)
      return SubmitStatus::QueueFull;
    Queue.push_back(std::move(W));
  }
  WorkReady.notify_one();
  return SubmitStatus::Accepted;
}

size_t BatchCompiler::pendingJobs() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size();
}

std::vector<CompileOutput>
BatchCompiler::compileAll(const std::vector<CompileJob> &Jobs) {
  std::vector<CompileOutput> Results(Jobs.size());
  auto T0 = std::chrono::steady_clock::now();

  if (Jobs.empty()) {
    Last = BatchMetrics();
    Last.Threads = NThreads;
    return Results;
  }

  if (Workers.empty()) {
    // Degenerate fallback: no worker threads — compile inline (still via
    // the big-stack trampoline of Compiler::compile).
    for (size_t I = 0; I < Jobs.size(); ++I)
      Results[I] =
          Compiler::compile(Jobs[I].Source, Jobs[I].Opts, Jobs[I].WithPrelude);
  } else {
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      BatchRemaining = Jobs.size();
      for (size_t I = 0; I < Jobs.size(); ++I) {
        WorkItem W;
        W.Job = Jobs[I];
        W.Enqueued = T0;
        // Batch jobs bypass the MaxQueue admission cap on purpose: the
        // caller is synchronous and bounded by construction.
        W.Done = [this, &Results, I](AsyncCompileResult R) {
          Results[I] = std::move(R.Out);
          bool AllDone;
          {
            std::lock_guard<std::mutex> L(QueueMutex);
            AllDone = --BatchRemaining == 0;
          }
          if (AllDone)
            BatchDone.notify_all();
        };
        Queue.push_back(std::move(W));
      }
    }
    WorkReady.notify_all();
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      BatchDone.wait(Lock, [&] { return BatchRemaining == 0; });
    }
  }

  BatchMetrics M;
  M.Jobs = Jobs.size();
  M.Threads = NThreads ? NThreads : 1;
  M.WallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  for (const CompileOutput &Out : Results) {
    if (Out.Ok)
      ++M.Succeeded;
    else
      ++M.Failed;
    M.QueueWaitSec += Out.Metrics.QueueWaitSec;
    if (Out.Metrics.CacheHit) {
      ++M.CacheHits;
      if (Out.Metrics.CacheDiskHit)
        ++M.CacheDiskHits;
      continue; // phase work was paid for by the original compile
    }
    ++M.CacheMisses;
    M.TotalCompileSec += Out.Metrics.TotalSec;
    M.FrontSec += Out.Metrics.FrontSec;
    M.TranslateSec += Out.Metrics.TranslateSec;
    M.BackSec += Out.Metrics.BackSec;
  }
  Last = M;
  return Results;
}
