//===- driver/PreludeSnapshot.h - Elaborate-once prelude sharing -----------===//
///
/// \file
/// The prelude snapshot: the standard prelude, parsed and elaborated
/// exactly once per process into an immutable, shareable front-end state.
/// Per-job compilation *layers* on the snapshot instead of re-doing it:
/// the job's StringInterner, Env, and TypeContext each gain an
/// immutable-base + mutable-overlay split, the job's Elaborator is seeded
/// with the snapshot's counters and builtin-exception handles, and the
/// final typed program is the snapshot's declarations concatenated with
/// the job's — bit-identical to the legacy path that prepends the prelude
/// source text (`--prelude=inline`, kept as a differential oracle).
///
/// Two independently elaborated layers are kept, because minimum typing
/// derivations (elab/Mtd.cpp) rewrite type schemes in place: a plain
/// layer for the non-MTD variants and an MTD-processed layer for the
/// rest. MTD distributes over the prelude/user split — prelude top-level
/// bindings are Exported and therefore poisoned, and prelude-internal
/// bindings only ever see prelude-internal instantiation evidence — so
/// running the prelude's pass at snapshot build time and the user's pass
/// per job grounds exactly the vars the fused pass would.
///
/// Safety of lock-free sharing: after construction a *freeze* pass walks
/// every type reachable from a layer (environment and typed program),
/// fully compresses union-find links so job-side `TypeContext::resolve`
/// never writes to snapshot nodes, and verifies that no un-generalized
/// unbound type variable is reachable (job-side unification can only
/// mutate unbound vars, and `bindVar` rejects generalized ones). If
/// verification fails, `get()` returns null and callers fall back to the
/// inline path — a robustness valve, not an expected outcome.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_DRIVER_PRELUDESNAPSHOT_H
#define SMLTC_DRIVER_PRELUDESNAPSHOT_H

#include "elab/Elaborator.h"
#include "elab/Mtd.h"

#include <atomic>
#include <memory>
#include <string>

namespace smltc {

/// One immutable elaborated-prelude layer (plain or MTD-processed). Owns
/// its arena, type context, and environment; everything it exposes is
/// read-only after the snapshot freeze.
struct PreludeLayer {
  std::unique_ptr<Arena> A;
  std::unique_ptr<TypeContext> Types;
  std::shared_ptr<Env> E; ///< top-level env; jobs layer overlays on it
  AProgram Prog;          ///< elaborated prelude declarations (no Result)
  ElabSeed Seed;          ///< overlay seed: env base, exns, id counters
  TypeContext::Counters TypeSeed; ///< var/stamp counters to resume from
  MtdStats Mtd; ///< the prelude's own MTD stats (zero for the plain layer)
};

/// Process-wide prelude accounting, exposed as `smltcc_prelude_*` in the
/// obs registry and summed across all threads sharing the snapshot.
struct PreludeStats {
  std::atomic<uint64_t> SnapshotHits{0};   ///< compiles served by the snapshot
  std::atomic<uint64_t> SnapshotBuilds{0}; ///< constructions (0 or 1)
  std::atomic<uint64_t> InlineFallbacks{0}; ///< snapshot unavailable
};
PreludeStats &preludeStats();

class PreludeSnapshot {
public:
  /// The process-wide snapshot, built on first use (thread-safe; batch
  /// workers and the compile server share the one instance lock-free).
  /// Returns null when construction failed its safety verification;
  /// callers must then fall back to `--prelude=inline` behavior.
  static const PreludeSnapshot *get();

  /// The layer matching the job's MTD setting.
  const PreludeLayer &layer(bool Mtd) const {
    return Mtd ? MtdLayer : PlainLayer;
  }

  /// The frozen intern table both layers share; job interners set it as
  /// their base so prelude names keep pointer-equal Symbols.
  const StringInterner &interner() const { return Interner; }

  /// Fingerprint of the prelude's exported typed interface: a 64-bit
  /// FNV-1a over the exported top-level binding names, their lowered LTY
  /// interfaces under all three representation modes, and the
  /// post-elaboration counter state. Cache keys fold this in instead of
  /// the prelude source text.
  uint64_t interfaceFingerprint() const { return Fingerprint; }

  /// Wall seconds the one-time construction took (both layers plus the
  /// freeze and fingerprint passes).
  double buildSeconds() const { return BuildSec; }

  /// The prelude source text (stable storage, identical to
  /// `Compiler::prelude()`).
  static const std::string &sourceText();

  /// The fingerprint for cache keys: the snapshot's interface
  /// fingerprint, or — when the snapshot could not be built — a hash of
  /// the prelude source text, so keys stay prelude-sensitive either way.
  static uint64_t cacheFingerprint();

private:
  PreludeSnapshot() = default;
  static std::unique_ptr<const PreludeSnapshot> build();

  StringInterner Interner;
  PreludeLayer PlainLayer;
  PreludeLayer MtdLayer;
  uint64_t Fingerprint = 0;
  double BuildSec = 0;
};

} // namespace smltc

#endif // SMLTC_DRIVER_PRELUDESNAPSHOT_H
