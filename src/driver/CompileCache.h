//===- driver/CompileCache.h - Content-addressed compile cache ---------------===//
///
/// \file
/// A thread-safe, content-addressed cache of compilation results. The key
/// is a 64-bit FNV-1a hash of the full source text plus every
/// `CompilerOptions` field (canonicalized into a byte string, which is also
/// stored and compared on lookup so hash collisions cannot alias two
/// different jobs). The value is the complete `CompileOutput`, including
/// the generated `TmProgram`. Re-compiles of an identical (source, variant)
/// pair — which the ablation benches and the test suite perform constantly —
/// become a hash lookup instead of a full pipeline run.
///
/// Internally the map is sharded 16 ways by key hash so concurrent batch
/// workers rarely contend on the same mutex. Hit/miss counters are atomics
/// and may be read while compiles are in flight.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_DRIVER_COMPILECACHE_H
#define SMLTC_DRIVER_COMPILECACHE_H

#include "driver/Compiler.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace smltc {

/// The version + options-schema salt mixed into every canonical job key.
/// Cached outputs are only valid for the exact compiler build and
/// options layout that produced them: bump `kOptionsSchemaVersion` (in
/// CompileCache.cpp) whenever a field is added to / removed from /
/// reordered in the canonical serialization, and the release version
/// whenever codegen changes. A persistent store (server/DiskCache) keyed
/// by the salted hash can therefore never serve an entry written by an
/// older build — the key simply never matches.
const char *compileCacheSalt();

/// The two salt components individually — what `smltcc_build_info`
/// reports on every node's /metrics, so a fleet scrape can spot a shard
/// running a stale build or schema before it poisons a shared cache.
const char *compilerVersion();
int optionsSchemaVersion();

/// Serializes every semantically relevant field of a compile job into a
/// deterministic byte string, prefixed with `compileCacheSalt()`. Two
/// jobs with equal canonical keys are guaranteed to produce identical
/// `CompileOutput`s under this compiler build.
std::string canonicalJobKey(const std::string &Source,
                            const CompilerOptions &Opts, bool WithPrelude);

/// 64-bit FNV-1a over an arbitrary byte string.
uint64_t fnv1a64(const std::string &Bytes);

/// Which layer of the cache hierarchy served a lookup.
enum class CacheTier : uint8_t { Miss = 0, Memory = 1, Disk = 2 };

/// A second-level store consulted on in-memory misses and written
/// through on inserts (the compile server plugs `server::DiskCache` in
/// here). Implementations must be safe to call from concurrent batch
/// workers. `KeyHash` is fnv1a64 of the canonical key; `Key` is the full
/// canonical key and must be stored and re-compared so a hash collision
/// degrades to a miss, never to a wrong program.
class CacheBackingStore {
public:
  virtual ~CacheBackingStore() = default;
  virtual std::shared_ptr<const CompileOutput>
  load(uint64_t KeyHash, const std::string &Key) = 0;
  virtual void store(uint64_t KeyHash, const std::string &Key,
                     const CompileOutput &Out) = 0;
};

/// Serializes a generated TM program (code bytes and string pool) into a
/// deterministic byte string — used by tests and benches to assert that
/// two compiles produced bit-identical code.
std::string programBytes(const TmProgram &Program);

class CompileCache {
public:
  CompileCache() = default;
  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Returns the cached output for the job, or nullptr on miss.
  /// Counts one hit or one miss.
  std::shared_ptr<const CompileOutput>
  lookup(const std::string &Source, const CompilerOptions &Opts,
         bool WithPrelude);

  /// As above, but also reports which tier served the lookup: Memory,
  /// Disk (backing store; the entry is promoted into memory), or Miss.
  std::shared_ptr<const CompileOutput>
  lookup(const std::string &Source, const CompilerOptions &Opts,
         bool WithPrelude, CacheTier &Tier);

  /// Inserts a compile result. First insertion wins; a concurrent
  /// duplicate insert of the same key is dropped (both are identical by
  /// construction of the canonical key). Written through to the backing
  /// store when one is attached.
  void insert(const std::string &Source, const CompilerOptions &Opts,
              bool WithPrelude, std::shared_ptr<const CompileOutput> Out);

  /// Attaches / detaches the second-level store. Attach before handing
  /// the cache to concurrent consumers; the store must outlive the cache
  /// (or be detached first).
  void setBackingStore(CacheBackingStore *Store) {
    Backing.store(Store, std::memory_order_release);
  }

  /// Bounds the in-memory map to roughly `Max` entries (0 = unbounded,
  /// the default). When over the cap, the oldest-inserted entries in
  /// the shard being written are dropped (FIFO). This is what makes a
  /// farm shard daemon's memory footprint proportional to the slice of
  /// the key space the router sends it: with consistent-hash routing
  /// each shard's working set fits its cap and stays resident, while a
  /// single daemon serving the whole key space churns.
  void setMaxEntries(size_t Max) {
    MaxEntries.store(Max, std::memory_order_relaxed);
  }
  size_t maxEntries() const {
    return MaxEntries.load(std::memory_order_relaxed);
  }
  /// Entries dropped by the cap since construction / last clear().
  uint64_t evictedCount() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// Drops every in-memory entry and resets the hit/miss counters. The
  /// backing store is not touched.
  void clear();

  uint64_t hitCount() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t missCount() const {
    return Misses.load(std::memory_order_relaxed);
  }
  /// Lookups served by the backing store (a subset of hitCount).
  uint64_t diskHitCount() const {
    return DiskHits.load(std::memory_order_relaxed);
  }
  size_t size() const;

  /// A process-wide cache instance, shared by any consumer that wants
  /// cross-batch reuse (the benches and `smltcc --all` use their own
  /// local instances; the global one is for library embedders).
  static CompileCache &global();

private:
  static constexpr size_t NumShards = 16;

  struct Shard {
    mutable std::mutex M;
    /// key-hash -> (canonical key, cached output). The canonical key is
    /// re-compared on lookup so a 64-bit hash collision degrades to a
    /// miss, never to a wrong program.
    std::unordered_map<uint64_t,
                       std::pair<std::string,
                                 std::shared_ptr<const CompileOutput>>>
        Map;
    /// Insertion order of live keys, for FIFO eviction under a cap.
    std::deque<uint64_t> Order;
  };

  /// Inserts into the in-memory map only (promotion from the backing
  /// store must not write the entry straight back out).
  void insertMemory(uint64_t H, std::string Key,
                    std::shared_ptr<const CompileOutput> Out);

  Shard Shards[NumShards];
  std::atomic<CacheBackingStore *> Backing{nullptr};
  std::atomic<size_t> MaxEntries{0};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> DiskHits{0};
};

} // namespace smltc

#endif // SMLTC_DRIVER_COMPILECACHE_H
