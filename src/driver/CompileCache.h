//===- driver/CompileCache.h - Content-addressed compile cache ---------------===//
///
/// \file
/// A thread-safe, content-addressed cache of compilation results. The key
/// is a 64-bit FNV-1a hash of the full source text plus every
/// `CompilerOptions` field (canonicalized into a byte string, which is also
/// stored and compared on lookup so hash collisions cannot alias two
/// different jobs). The value is the complete `CompileOutput`, including
/// the generated `TmProgram`. Re-compiles of an identical (source, variant)
/// pair — which the ablation benches and the test suite perform constantly —
/// become a hash lookup instead of a full pipeline run.
///
/// Internally the map is sharded 16 ways by key hash so concurrent batch
/// workers rarely contend on the same mutex. Hit/miss counters are atomics
/// and may be read while compiles are in flight.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_DRIVER_COMPILECACHE_H
#define SMLTC_DRIVER_COMPILECACHE_H

#include "driver/Compiler.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace smltc {

/// Serializes every semantically relevant field of a compile job into a
/// deterministic byte string. Two jobs with equal canonical keys are
/// guaranteed to produce identical `CompileOutput`s.
std::string canonicalJobKey(const std::string &Source,
                            const CompilerOptions &Opts, bool WithPrelude);

/// 64-bit FNV-1a over an arbitrary byte string.
uint64_t fnv1a64(const std::string &Bytes);

/// Serializes a generated TM program (code bytes and string pool) into a
/// deterministic byte string — used by tests and benches to assert that
/// two compiles produced bit-identical code.
std::string programBytes(const TmProgram &Program);

class CompileCache {
public:
  CompileCache() = default;
  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Returns the cached output for the job, or nullptr on miss.
  /// Counts one hit or one miss.
  std::shared_ptr<const CompileOutput>
  lookup(const std::string &Source, const CompilerOptions &Opts,
         bool WithPrelude);

  /// Inserts a compile result. First insertion wins; a concurrent
  /// duplicate insert of the same key is dropped (both are identical by
  /// construction of the canonical key).
  void insert(const std::string &Source, const CompilerOptions &Opts,
              bool WithPrelude, std::shared_ptr<const CompileOutput> Out);

  /// Drops every entry and resets the hit/miss counters.
  void clear();

  uint64_t hitCount() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t missCount() const {
    return Misses.load(std::memory_order_relaxed);
  }
  size_t size() const;

  /// A process-wide cache instance, shared by any consumer that wants
  /// cross-batch reuse (the benches and `smltcc --all` use their own
  /// local instances; the global one is for library embedders).
  static CompileCache &global();

private:
  static constexpr size_t NumShards = 16;

  struct Shard {
    mutable std::mutex M;
    /// key-hash -> (canonical key, cached output). The canonical key is
    /// re-compared on lookup so a 64-bit hash collision degrades to a
    /// miss, never to a wrong program.
    std::unordered_map<uint64_t,
                       std::pair<std::string,
                                 std::shared_ptr<const CompileOutput>>>
        Map;
  };

  Shard Shards[NumShards];
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace smltc

#endif // SMLTC_DRIVER_COMPILECACHE_H
