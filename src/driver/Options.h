//===- driver/Options.h - Compiler variant configuration --------------------===//
///
/// \file
/// Options selecting between the six measured compilers of the paper's
/// Section 6, plus the ablation switches of Sections 4.5 and 5.2.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_DRIVER_OPTIONS_H
#define SMLTC_DRIVER_OPTIONS_H

#include "lty/TypeToLty.h"

#include <cstdint>

namespace smltc {

/// Which CPS-optimizer engine drives contraction (Section 5.2).
enum class CpsOptEngine : uint8_t {
  Rounds, ///< legacy: up to 10 census + full-rebuild fixpoint rounds
  Shrink, ///< worklist shrinking reductions with an incremental census
};

/// How compiled TM programs are executed (--backend=).
enum class ExecBackend : uint8_t {
  Vm,     ///< one of the three interpreter engines (--vm-dispatch=)
  Native, ///< AOT TM -> C -> shared object (src/native/)
};

/// How the standard prelude reaches a compile job (--prelude=).
enum class PreludeMode : uint8_t {
  Snapshot, ///< layer on the process-wide pre-elaborated snapshot
  Inline,   ///< legacy: prepend the prelude source text to the job
};

/// Individually ablatable fixpoint-era contraction rules of the shrink
/// engine (--cps-opt-disable=). These rules are active only in fixpoint
/// mode (CpsOptMaxPhases == 0): a bounded phase cap reproduces the legacy
/// cadence bit-for-bit, so the new rules disengage there.
enum CpsOptRule : uint8_t {
  kCpsRuleEta = 1,        ///< eta reduction of forwarding functions/conts
  kCpsRuleFag = 2,        ///< census-driven known-fn argument flattening
  kCpsRuleWrapCancel = 4, ///< wrap/unwrap cancellation breadth (dedup)
  kCpsRuleHoist = 8,      ///< invariant alloc hoisting out of known loops
  kCpsRuleAll = 0xF,
};

struct CompilerOptions {
  const char *VariantName = "custom";

  /// CPS optimizer engine; `shrink` is the default, `rounds` is kept as a
  /// differential-testing escape hatch (--cps-opt=rounds).
  CpsOptEngine CpsOpt = CpsOptEngine::Shrink;

  /// Execution backend. `vm` interprets; `native` AOT-compiles the TM
  /// program to C, loads the shared object, and runs it over the same
  /// heap and runtime services with bit-identical observable results.
  ExecBackend Backend = ExecBackend::Vm;

  /// Prelude delivery. `snapshot` (default) elaborates the prelude once
  /// per process and layers jobs on the immutable result; `inline` is
  /// the legacy concatenation path, kept as a differential oracle — the
  /// two produce bit-identical programs. Ignored when compiling without
  /// a prelude.
  PreludeMode Prelude = PreludeMode::Snapshot;

  /// Representation mode for the LTY lowering (Figure 6).
  ReprMode Repr = ReprMode::Standard;
  /// Minimum typing derivations (Section 3.1).
  bool Mtd = false;
  /// Kranz-style argument flattening for known functions (sml.fag).
  bool KnownFnFlattening = false;
  /// Type-based argument spreading for *all* calls, from RECORDty argument
  /// types (Section 5.1) — requires Repr != Standard.
  bool TypedArgSpreading = false;
  /// Number of floating-point callee-save registers (sml.fp3 uses 3).
  int FloatCalleeSaves = 0;

  // --- ablation switches ---
  bool HashConsLty = true;      ///< Section 4.5 (global static hash-consing)
  bool MemoCoercions = true;    ///< Section 4.5 (memo-ized module coercions)
  /// Section 5.2's two *new* CPS optimizations, available only to the
  /// type-based compilers (the old compiler's implicit float boxing was
  /// not visible to its optimizer): wrap/unwrap pair cancellation and
  /// record-copy elimination.
  bool CpsWrapCancel = false;
  bool CpsRecordCopyElim = false;
  bool InlineSmallFns = true;   ///< CPS optimizer inline expansion
  /// Paper footnote 7: the 1.03z runtime does not align reals, so float
  /// memory traffic costs two single-word accesses.
  bool UnalignedFloats = true;

  /// Retain printable LEXP/CPS dumps in the CompileOutput (debugging).
  bool KeepDumps = false;

  /// Maximum argument registers for spread calls (Section 5.1 footnote 6).
  int MaxSpreadArgs = 10;
  /// General-purpose callee-save registers (all variants use 3, after
  /// Appel & Shao [6]).
  int GpCalleeSaves = 3;

  /// Shrink-engine phase budget (--cps-opt-max-phases=). 0 (the default)
  /// runs contraction to a true fixpoint behind a large safety ceiling
  /// that turns non-convergence into a compile error instead of a hang.
  /// N > 0 caps the cadence; 10 reproduces the legacy PR 5 cadence
  /// bit-for-bit (the fixpoint-era rules below disengage). Ignored by
  /// the `rounds` oracle engine, which always runs the legacy cadence.
  int CpsOptMaxPhases = 0;
  /// Bitmask of CpsOptRule values disabled for ablation
  /// (--cps-opt-disable=eta,fag,wrapcancel,hoist). Only meaningful in
  /// fixpoint mode.
  uint8_t CpsOptDisable = 0;

  static CompilerOptions nrp() {
    CompilerOptions O;
    O.VariantName = "sml.nrp";
    return O;
  }
  static CompilerOptions fag() {
    CompilerOptions O = nrp();
    O.VariantName = "sml.fag";
    O.KnownFnFlattening = true;
    return O;
  }
  static CompilerOptions rep() {
    CompilerOptions O = fag();
    O.VariantName = "sml.rep";
    O.Repr = ReprMode::RecordsOnly;
    O.TypedArgSpreading = true;
    O.CpsWrapCancel = true;
    O.CpsRecordCopyElim = true;
    return O;
  }
  static CompilerOptions mtd() {
    CompilerOptions O = rep();
    O.VariantName = "sml.mtd";
    O.Mtd = true;
    return O;
  }
  static CompilerOptions ffb() {
    CompilerOptions O = mtd();
    O.VariantName = "sml.ffb";
    O.Repr = ReprMode::FullFloat;
    return O;
  }
  static CompilerOptions fp3() {
    CompilerOptions O = ffb();
    O.VariantName = "sml.fp3";
    O.FloatCalleeSaves = 3;
    return O;
  }

  /// All six variants in the paper's order.
  static const CompilerOptions *allVariants(size_t &Count);
};

} // namespace smltc

#endif // SMLTC_DRIVER_OPTIONS_H
