//===- driver/Compiler.h - The full compiler pipeline ------------------------------===//
///
/// \file
/// Wires the phases of Figure 3 together: parse -> elaborate/type-check
/// [-> minimum typing derivations] -> translate to LEXP with coercions ->
/// CPS convert -> CPS optimize -> closure convert -> generate TM code.
/// Collects per-phase compile-time and size metrics (the paper's Figure 8
/// compile-time row and the Section 4.5 ablations).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_DRIVER_COMPILER_H
#define SMLTC_DRIVER_COMPILER_H

#include "codegen/CodeGen.h"
#include "codegen/Machine.h"
#include "cps/CpsOpt.h"
#include "driver/Options.h"
#include "elab/Mtd.h"
#include "vm/Vm.h"

#include <memory>
#include <string>

namespace smltc {

struct CompileMetrics {
  double TotalSec = 0;
  double FrontSec = 0;     ///< parse + elaborate (+ MTD)
  double TranslateSec = 0; ///< Absyn -> LEXP
  double BackSec = 0;      ///< CPS convert + optimize + closure + codegen

  // Fine-grained phase seconds (the spans `--trace-json` records carry
  // the same names). FrontSec and BackSec above stay as the lumped
  // aggregates existing consumers read.
  double ParseSec = 0;
  double ElabSec = 0;
  double MtdSec = 0;        ///< 0 when the variant runs without MTD
  double CpsConvertSec = 0; ///< includes the post-convert CPS check
  double CpsOptSec = 0;     ///< includes the post-optimize CPS check
  double ClosureSec = 0;
  double CodegenSec = 0;

  size_t LexpNodes = 0;
  size_t CpsNodesBeforeOpt = 0;
  size_t CpsNodesAfterOpt = 0;
  size_t CodeSize = 0; ///< TM instructions (the paper's code-size metric)

  MtdStats Mtd;
  CpsOptStats Opt;
  CodeGenStats Codegen;
  size_t LtyInterned = 0;
  size_t LtyAllocated = 0;
  size_t CoerceMemoHits = 0;
  size_t CoerceMemoMisses = 0;
  size_t ClosuresBuilt = 0;

  // --- batch-engine accounting (driver/Batch.h) ---
  double QueueWaitSec = 0; ///< time the job sat queued before a worker
  int WorkerId = -1;       ///< batch worker that ran the job (-1: direct)
  bool CacheHit = false;   ///< output came from the CompileCache
  /// The hit was served by the persistent backing store (server disk
  /// cache) rather than the in-memory map. Implies CacheHit.
  bool CacheDiskHit = false;
  /// The 1 GiB compile stack could not be created and compilation fell
  /// back to the caller's (or a default-sized worker's) stack.
  bool BigStackUnavailable = false;

  // --- prelude snapshot (driver/PreludeSnapshot.h) ---
  /// This compile layered on the pre-elaborated prelude snapshot
  /// instead of re-parsing and re-elaborating the prelude source.
  bool PreludeSnapshotHit = false;
  /// Seconds this compile spent obtaining the snapshot: ~0 once built,
  /// the one-time construction cost for the compile that built it, and
  /// 0 under `--prelude=inline` or `--no-prelude`.
  double PreludeElabSec = 0;
};

struct CompileOutput {
  bool Ok = false;
  std::string Errors;
  TmProgram Program;
  CompileMetrics Metrics;
  /// Filled when CompilerOptions::KeepDumps is set: the typed lambda
  /// program and the optimized CPS program, rendered as s-expressions.
  std::string LexpDump;
  std::string CpsDump;
};

class Compiler {
public:
  /// The standard prelude (list utilities etc.), compiled with every
  /// program, written in MiniML itself.
  static const char *prelude();

  /// Compiles a MiniML source program under the given compiler variant.
  /// When \p WithPrelude, the prelude is layered on (via the process-wide
  /// pre-elaborated snapshot by default, or by prepending its source
  /// text under `CompilerOptions::Prelude == PreludeMode::Inline`; the
  /// two modes produce bit-identical programs).
  static CompileOutput compile(const std::string &Source,
                               const CompilerOptions &Opts,
                               bool WithPrelude = true);

  /// Convenience: compile and execute.
  static ExecResult compileAndRun(const std::string &Source,
                                  const CompilerOptions &Opts,
                                  bool WithPrelude = true,
                                  VmOptions VmOpts = VmOptions());

  /// Runs the pipeline directly on the calling thread, with no big-stack
  /// trampoline. Callers (the batch engine's persistent workers) must
  /// guarantee a generous stack themselves: CPS trees for whole programs
  /// are deep and the optimizer recurses over them.
  static CompileOutput compileOnThisThread(const std::string &Source,
                                           const CompilerOptions &Opts,
                                           bool WithPrelude = true);

private:
  static CompileOutput compileImpl(const std::string &Source,
                                   const CompilerOptions &Opts,
                                   bool WithPrelude);
};

} // namespace smltc

#endif // SMLTC_DRIVER_COMPILER_H
