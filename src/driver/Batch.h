//===- driver/Batch.h - Parallel batch-compilation engine --------------------===//
///
/// \file
/// A fixed pool of persistent worker threads, each created once with a
/// large stack (replacing the per-compile 1 GiB pthread spawned by
/// `Compiler::compile`), pulling `CompileJob`s off a shared queue and
/// producing `CompileOutput`s in deterministic input order. Each
/// `compileImpl` run is shared-nothing (its own Arena, StringInterner,
/// TypeContext, LtyContext), so jobs parallelize without any compiler-side
/// locking; the only shared state is the work queue and the optional
/// content-addressed `CompileCache`.
///
/// This is the substrate for everything batch-shaped in the repo: the
/// Figure 7/8 benches compile their 12-benchmark x 6-variant matrix
/// through it, `smltcc --all --jobs N` fans the six variants out over it,
/// and `bench/compile_throughput` measures its scaling.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_DRIVER_BATCH_H
#define SMLTC_DRIVER_BATCH_H

#include "driver/CompileCache.h"
#include "driver/Compiler.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <pthread.h>
#include <string>
#include <vector>

namespace smltc {

/// One unit of batch work: a source program compiled under one variant.
struct CompileJob {
  std::string Source;
  CompilerOptions Opts;
  bool WithPrelude = true;
  /// Client-assigned request id (compile-server jobs); 0 when the job
  /// has no originating request. Carried into the job's trace span so a
  /// server-side trace can be joined against client logs.
  uint64_t TraceRequestId = 0;
  /// Distributed trace context the originating request carried
  /// (protocol v4): the worker installs it for the job's scope so the
  /// compile_job span and every phase span under it parent into the
  /// remote caller's trace. All-zero = no context.
  uint64_t TraceIdHi = 0;
  uint64_t TraceIdLo = 0;
  uint64_t ParentSpanId = 0;
};

/// Completion of an asynchronously submitted job (`submitJob`).
struct AsyncCompileResult {
  CompileOutput Out;
  /// The job's deadline expired while it was still queued; the compile
  /// was never run (Out.Ok is false, Out.Errors explains). Jobs that
  /// *start* before their deadline run to completion — callers decide
  /// what to do with a late result.
  bool DeadlineExpired = false;
};

/// Invoked on a worker thread when an async job finishes. Must not block
/// for long (it occupies a compile worker) and must not re-enter the
/// BatchCompiler.
using CompileDoneFn = std::function<void(AsyncCompileResult)>;

enum class SubmitStatus : uint8_t {
  Accepted = 0,
  QueueFull,     ///< admission control: MaxQueue jobs already waiting
  ShuttingDown,  ///< the pool is being destroyed
};

/// Aggregate metrics for one `compileAll` batch — the phase-level
/// throughput numbers the driver reports (programs/sec, where the wall
/// time went, how much the cache saved, and the implied speedup over a
/// serial run).
struct BatchMetrics {
  size_t Jobs = 0;
  size_t Succeeded = 0;
  size_t Failed = 0;
  size_t CacheHits = 0;
  size_t CacheDiskHits = 0; ///< hits served by the persistent store
  size_t CacheMisses = 0; ///< jobs compiled for real (cache off counts here)
  size_t Threads = 0;

  double WallSec = 0; ///< batch wall-clock time
  /// Phase seconds summed over the jobs that actually compiled (cache
  /// hits contribute nothing — their work was already paid for).
  double TotalCompileSec = 0;
  double FrontSec = 0;
  double TranslateSec = 0;
  double BackSec = 0;
  double QueueWaitSec = 0; ///< total time jobs sat queued before a worker

  double programsPerSec() const {
    return WallSec > 0 ? static_cast<double>(Jobs) / WallSec : 0;
  }
  /// CPU seconds of compilation retired per wall second — the effective
  /// parallel speedup versus running the same compiles back-to-back on
  /// one thread.
  double speedupVsSerial() const {
    return WallSec > 0 ? TotalCompileSec / WallSec : 0;
  }

  /// Renders the aggregate as a single JSON object (no trailing newline).
  std::string toJson() const;
};

/// Renders one job's CompileMetrics as a single JSON object — the
/// per-program companion to BatchMetrics::toJson.
std::string compileMetricsJson(const CompileMetrics &M);

struct BatchOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency().
  size_t NumThreads = 0;
  /// Per-worker stack size. CPS trees for whole programs are deep and
  /// the optimizer's rewriting is recursive, so workers get the same
  /// generous stack `Compiler::compile` uses.
  size_t StackBytes = 1ull << 30;
  /// Optional content-addressed cache consulted before compiling and
  /// populated after. May be shared across batches and BatchCompilers.
  CompileCache *Cache = nullptr;
  /// Admission cap for `submitJob`: when this many async jobs are
  /// already queued (not yet picked up by a worker), further submissions
  /// are rejected with SubmitStatus::QueueFull so callers (the compile
  /// server) can push backpressure instead of queueing unboundedly.
  /// 0 = unbounded. `compileAll` batches are never subject to the cap.
  size_t MaxQueue = 0;
};

class BatchCompiler {
public:
  explicit BatchCompiler(BatchOptions Options = BatchOptions());
  ~BatchCompiler();
  BatchCompiler(const BatchCompiler &) = delete;
  BatchCompiler &operator=(const BatchCompiler &) = delete;

  /// Compiles every job, in parallel, returning outputs in input order
  /// (Results[i] corresponds to Jobs[i] regardless of completion order).
  /// Not reentrant: one compileAll at a time per BatchCompiler. Async
  /// jobs (`submitJob`) may be in flight concurrently; they share the
  /// same workers and queue.
  std::vector<CompileOutput> compileAll(const std::vector<CompileJob> &Jobs);

  /// Asynchronous single-job submission — the compile-server path.
  /// `Done` is invoked exactly once, on a worker thread, when the job
  /// completes (or when its deadline expires while still queued).
  /// `DeadlineMs` of 0 means no deadline. Subject to the MaxQueue
  /// admission cap; on QueueFull / ShuttingDown, `Done` is never called.
  /// With no worker threads available the job runs synchronously on the
  /// caller before submitJob returns.
  SubmitStatus submitJob(CompileJob Job, CompileDoneFn Done,
                         uint32_t DeadlineMs = 0);

  /// Jobs sitting in the queue, not yet picked up by a worker.
  size_t pendingJobs() const;

  /// Metrics for the most recent compileAll.
  const BatchMetrics &lastBatch() const { return Last; }

  size_t numThreads() const { return NThreads; }

private:
  /// One queued unit of work; both compileAll and submitJob enqueue
  /// these. `Done` receives the finished output on the worker thread.
  struct WorkItem {
    CompileJob Job;
    CompileDoneFn Done;
    std::chrono::steady_clock::time_point Enqueued;
    std::chrono::steady_clock::time_point Deadline{};
    bool HasDeadline = false;
  };

  static void *workerEntry(void *Self);
  void workerLoop(size_t WorkerId);
  /// Runs one item to completion on the current thread (cache lookup,
  /// compile, bookkeeping, Done callback).
  void runItem(WorkItem &Item, int WorkerId, bool BigStack);

  size_t NThreads = 0;
  size_t StackBytes = 0;
  CompileCache *Cache = nullptr;
  size_t MaxQueue = 0;

  std::vector<pthread_t> Workers;
  /// Per-worker: 0 when the big-stack pthread could not be created and
  /// this worker runs on a default-sized stack; recorded into each job's
  /// CompileMetrics::BigStackUnavailable. Written before the worker
  /// starts, read-only afterwards.
  std::vector<char> WorkerBigStack;

  // Queue state (guarded by QueueMutex).
  mutable std::mutex QueueMutex;
  std::condition_variable WorkReady;  ///< workers wait for items / shutdown
  std::condition_variable BatchDone;  ///< compileAll waits for completion
  std::deque<WorkItem> Queue;
  size_t BatchRemaining = 0; ///< outstanding jobs of the current compileAll
  bool ShuttingDown = false;

  BatchMetrics Last;
};

} // namespace smltc

#endif // SMLTC_DRIVER_BATCH_H
