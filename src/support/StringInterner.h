//===- support/StringInterner.h - Interned identifiers --------------------===//
///
/// \file
/// Identifiers are interned once per compiler instance; a Symbol is a stable
/// pointer to the unique copy, so symbol equality is pointer equality. This
/// is the same trick the paper applies to LTYs (hash-consing) applied to
/// names.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SUPPORT_STRINGINTERNER_H
#define SMLTC_SUPPORT_STRINGINTERNER_H

#include <string>
#include <string_view>
#include <unordered_set>

namespace smltc {

/// An interned identifier. Compare with ==; the empty Symbol() is "no name".
class Symbol {
public:
  Symbol() = default;

  std::string_view str() const { return Ptr ? *Ptr : std::string_view(); }
  bool empty() const { return Ptr == nullptr; }

  friend bool operator==(Symbol A, Symbol B) { return A.Ptr == B.Ptr; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Ptr != B.Ptr; }
  friend bool operator<(Symbol A, Symbol B) {
    // Deterministic order: lexicographic on the text, not the pointer.
    if (A.Ptr == B.Ptr)
      return false;
    if (!A.Ptr)
      return true;
    if (!B.Ptr)
      return false;
    return *A.Ptr < *B.Ptr;
  }

  size_t hash() const { return std::hash<const std::string *>()(Ptr); }

private:
  friend class StringInterner;
  explicit Symbol(const std::string *P) : Ptr(P) {}
  const std::string *Ptr = nullptr;
};

/// The intern table. One per Compiler; Symbols are valid for its lifetime.
///
/// An interner may layer on an immutable *base* interner (the prelude
/// snapshot's): `intern` first consults the base read-only, so names that
/// were interned when the snapshot was built resolve to the snapshot's
/// Symbol pointers and symbol equality keeps working across the
/// snapshot/job boundary. New names go into this table. The base must be
/// frozen (never interned into again) and must outlive this interner.
class StringInterner {
public:
  Symbol intern(std::string_view S);

  void setBase(const StringInterner *B) { Base = B; }

private:
  /// Read-only probe used for base lookups; no insertion.
  const std::string *find(std::string_view S) const;

  const StringInterner *Base = nullptr;
  std::unordered_set<std::string> Table;
};

} // namespace smltc

template <> struct std::hash<smltc::Symbol> {
  size_t operator()(smltc::Symbol S) const { return S.hash(); }
};

#endif // SMLTC_SUPPORT_STRINGINTERNER_H
