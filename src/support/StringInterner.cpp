//===- support/StringInterner.cpp - Interned identifiers ------------------===//

#include "support/StringInterner.h"

using namespace smltc;

const std::string *StringInterner::find(std::string_view S) const {
  auto It = Table.find(std::string(S));
  return It == Table.end() ? nullptr : &*It;
}

Symbol StringInterner::intern(std::string_view S) {
  if (Base)
    if (const std::string *P = Base->find(S))
      return Symbol(P);
  auto It = Table.emplace(S).first;
  return Symbol(&*It);
}
