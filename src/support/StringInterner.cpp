//===- support/StringInterner.cpp - Interned identifiers ------------------===//

#include "support/StringInterner.h"

using namespace smltc;

Symbol StringInterner::intern(std::string_view S) {
  auto It = Table.emplace(S).first;
  return Symbol(&*It);
}
