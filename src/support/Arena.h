//===- support/Arena.h - Bump-pointer arena allocator ---------------------===//
//
// Part of the smltc project: a reproduction of Shao & Appel, "A Type-Based
// Compiler for Standard ML" (PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena. All IR nodes (AST, Absyn, LEXP, CPS) are
/// allocated here and freed wholesale when the arena dies, which matches the
/// per-compilation-unit lifetime of compiler IRs and avoids per-node
/// ownership bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SUPPORT_ARENA_H
#define SMLTC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace smltc {

/// A bump-pointer arena allocating from geometrically growing slabs.
///
/// Objects allocated with create<T>() must be trivially destructible (their
/// destructors are never run); this is asserted at compile time. IR node
/// types therefore hold only scalars, pointers, and arena-allocated arrays.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    size_t P = (Cur + Align - 1) & ~(Align - 1);
    if (P + Size > End) {
      newSlab(Size + Align);
      P = (Cur + Align - 1) & ~(Align - 1);
    }
    Cur = P + Size;
    BytesUsed += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Constructs a T in the arena. T must be trivially destructible.
  template <typename T, typename... Args> T *create(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(As)...);
  }

  /// Copies [Begin, Begin+N) into a fresh arena array; returns its start.
  template <typename T> T *copyArray(const T *Begin, size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays are never destroyed");
    if (N == 0)
      return nullptr;
    T *Mem = static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
    for (size_t I = 0; I != N; ++I)
      new (Mem + I) T(Begin[I]);
    return Mem;
  }

  template <typename T> T *copyArray(const std::vector<T> &V) {
    return copyArray(V.data(), V.size());
  }

  /// Total payload bytes handed out (excludes slab slack).
  size_t bytesAllocated() const { return BytesUsed; }

private:
  void newSlab(size_t AtLeast);

  std::vector<std::unique_ptr<char[]>> Slabs;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t NextSlabSize = 1 << 14;
  size_t BytesUsed = 0;
};

/// A lightweight (pointer, length) view over an arena-allocated array.
/// Mirrors llvm::ArrayRef in spirit: cheap to copy, never owns.
template <typename T> class Span {
public:
  Span() = default;
  Span(const T *Data, size_t Size) : Data(Data), Count(Size) {}

  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  const T &operator[](size_t I) const { return Data[I]; }
  const T &front() const { return Data[0]; }
  const T &back() const { return Data[Count - 1]; }

  /// Materializes a Span from a vector, copying into \p A.
  static Span<T> copy(Arena &A, const std::vector<T> &V) {
    return Span<T>(A.copyArray(V), V.size());
  }

  /// Mutable access for in-place IR rewriting (the shrink optimizer edits
  /// operand arrays it owns instead of re-copying subtrees).
  T *mutableBegin() const { return const_cast<T *>(Data); }
  /// Drops elements past \p N (never grows).
  void truncate(size_t N) {
    if (N < Count)
      Count = N;
  }

private:
  const T *Data = nullptr;
  size_t Count = 0;
};

} // namespace smltc

#endif // SMLTC_SUPPORT_ARENA_H
