//===- support/Diagnostics.cpp - Diagnostic collection --------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace smltc;

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Col << ": ";
    switch (D.Severity) {
    case Diagnostic::Level::Error:
      OS << "error: ";
      break;
    case Diagnostic::Level::Warning:
      OS << "warning: ";
      break;
    case Diagnostic::Level::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
