//===- support/Diagnostics.h - Diagnostic collection ----------------------===//
///
/// \file
/// A diagnostic engine collecting errors with source locations. Library code
/// never throws or exits; phases report here and callers check hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SUPPORT_DIAGNOSTICS_H
#define SMLTC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace smltc {

/// One reported problem. Messages follow the LLVM style: start lowercase,
/// no trailing period.
struct Diagnostic {
  enum class Level { Error, Warning, Note };
  Level Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for one compilation.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Level::Error, Loc, std::move(Msg)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Level::Warning, Loc, std::move(Msg)});
  }
  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Level::Note, Loc, std::move(Msg)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic as "line:col: level: message\n".
  std::string render() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace smltc

#endif // SMLTC_SUPPORT_DIAGNOSTICS_H
