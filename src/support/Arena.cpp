//===- support/Arena.cpp - Bump-pointer arena allocator -------------------===//

#include "support/Arena.h"

#include <algorithm>

using namespace smltc;

void Arena::newSlab(size_t AtLeast) {
  size_t Size = std::max(NextSlabSize, AtLeast);
  NextSlabSize = std::min<size_t>(NextSlabSize * 2, 1 << 22);
  Slabs.push_back(std::make_unique<char[]>(Size));
  Cur = reinterpret_cast<uintptr_t>(Slabs.back().get());
  End = Cur + Size;
}
