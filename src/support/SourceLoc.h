//===- support/SourceLoc.h - Source locations -----------------------------===//
///
/// \file
/// Line/column source locations for diagnostics. Compilation units in this
/// reproduction are single in-memory strings, so a location is just a
/// (line, column) pair plus a byte offset.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_SUPPORT_SOURCELOC_H
#define SMLTC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace smltc {

/// A position in the source text. Line and column are 1-based; a zero line
/// means "unknown location" (used for synthesized nodes).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;
  uint32_t Offset = 0;

  bool isValid() const { return Line != 0; }
};

} // namespace smltc

#endif // SMLTC_SUPPORT_SOURCELOC_H
