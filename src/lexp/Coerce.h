//===- lexp/Coerce.h - Representation coercions (paper Section 4.2) ---------===//
///
/// \file
/// coerce(t1, t2) builds a LEXP expression converting a value from LTY t1
/// to LTY t2, generalizing Leroy's wrap/unwrap: unlike Leroy's, it does not
/// require one type to be an instantiation of the other, which is what lets
/// it translate the ML module language (thinning functions).
///
/// Module-level (SRECORD) coercions can be memo-ized and emitted as shared
/// top-level functions (paper Section 4.5): shared coercions are not
/// inlined, which avoids code explosion; core-level coercions stay inline
/// so the CPS optimizer can cancel them.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LEXP_COERCE_H
#define SMLTC_LEXP_COERCE_H

#include "lexp/Lexp.h"
#include "lty/Lty.h"

#include <map>
#include <utility>
#include <vector>

namespace smltc {

class Coercer {
public:
  Coercer(LtyContext &LC, LexpBuilder &B, bool MemoModuleCoercions)
      : LC(LC), B(B), Memo(MemoModuleCoercions) {}

  /// Returns an expression of LTY \p To given \p E of LTY \p From.
  Lexp *coerce(const Lty *From, const Lty *To, Lexp *E);

  /// True if coercing From to To is a no-op (same representations).
  bool isIdentity(const Lty *From, const Lty *To);

  /// Shared module-coercion functions created so far; the translator wraps
  /// the whole program in a FIX of these.
  const std::vector<FixDef> &sharedDefs() const { return SharedDefs; }

  size_t memoHits() const { return MemoHits; }
  size_t memoMisses() const { return MemoMisses; }

private:
  Lexp *coerceStructural(const Lty *From, const Lty *To, Lexp *E);
  Lexp *recordCoercion(const Lty *From, const Lty *To, Lexp *E);

  LtyContext &LC;
  LexpBuilder &B;
  bool Memo;
  std::map<std::pair<const Lty *, const Lty *>, LVar> MemoTable;
  std::vector<FixDef> SharedDefs;
  size_t MemoHits = 0;
  size_t MemoMisses = 0;
};

} // namespace smltc

#endif // SMLTC_LEXP_COERCE_H
