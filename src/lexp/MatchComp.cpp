//===- lexp/MatchComp.cpp - Pattern-match compilation -------------------------===//

#include "lexp/MatchComp.h"

#include <cassert>

using namespace smltc;

namespace {

/// True when two exception-tag expressions statically denote the same tag.
bool sameTag(const AExp *A, const AExp *B) {
  if (A->K != B->K)
    return false;
  if (A->K == AExp::Kind::ExnTag)
    return A->Exn == B->Exn;
  if (A->K == AExp::Kind::Path) {
    if (A->Root != B->Root || A->Slots.size() != B->Slots.size())
      return false;
    for (size_t I = 0; I < A->Slots.size(); ++I)
      if (A->Slots[I] != B->Slots[I])
        return false;
    return true;
  }
  return false;
}

} // namespace

void MatchCompiler::normalizeRow(const std::vector<Col> &Cols, IRow &R) {
  for (size_t J = 0; J < R.Pats.size(); ++J) {
    APat *P = R.Pats[J];
    for (;;) {
      if (!P) {
        break;
      }
      if (P->K == APat::Kind::Layered) {
        R.Binds.emplace_back(P->Var, Cols[J].V, Cols[J].Std);
        P = P->Arg;
        continue;
      }
      if (P->K == APat::Kind::Var) {
        R.Binds.emplace_back(P->Var, Cols[J].V, Cols[J].Std);
        P = nullptr;
        continue;
      }
      if (P->K == APat::Kind::Wild) {
        P = nullptr;
        continue;
      }
      break;
    }
    R.Pats[J] = P; // null means Wild
  }
}

Lexp *MatchCompiler::leaf(const IRow &R) {
  // Bind the pattern variables, coercing out of standard boxed form where
  // the column holds an RBOXED value but the variable's type wants the
  // typed representation.
  std::vector<std::pair<ValInfo *, LVar>> Final;
  std::vector<std::pair<LVar, Lexp *>> Lets;
  for (const auto &[V, ColV, Std] : R.Binds) {
    const Lty *Want = Low.lowerScheme(V->Scheme);
    if (Std && !C.isIdentity(Low.ltyContext().rboxedTy(), Want)) {
      LVar BV = B.fresh();
      Lets.emplace_back(
          BV, C.coerce(Low.ltyContext().rboxedTy(), Want, B.var(ColV)));
      Final.emplace_back(V, BV);
    } else {
      Final.emplace_back(V, ColV);
    }
  }
  Lexp *Body = R.Src->Emit(Final);
  for (size_t I = Lets.size(); I-- > 0;)
    Body = B.let(Lets[I].first, Lets[I].second, Body);
  return Body;
}

Lexp *MatchCompiler::compile(std::vector<Col> Cols,
                             const std::vector<Row> &Rows, FailFn Fail) {
  std::vector<IRow> IRows;
  for (const Row &R : Rows) {
    IRow IR;
    IR.Pats = R.Pats;
    IR.Src = &R;
    IRows.push_back(std::move(IR));
  }
  return compileRec(std::move(Cols), std::move(IRows), std::move(Fail));
}

Lexp *MatchCompiler::compileRec(std::vector<Col> Cols, std::vector<IRow> Rows,
                                FailFn Fail) {
  if (Rows.empty())
    return Fail();
  for (IRow &R : Rows)
    normalizeRow(Cols, R);

  IRow &R0 = Rows[0];
  size_t J = 0;
  while (J < R0.Pats.size() && R0.Pats[J] == nullptr)
    ++J;
  if (J == R0.Pats.size())
    return leaf(R0);

  APat *P0 = R0.Pats[J];
  const Col ColJ = Cols[J];

  switch (P0->K) {
  case APat::Kind::Tuple: {
    // Expand column J into one column per tuple field for every row.
    size_t N = P0->Elems.size();
    // Fresh column variables bound to the selects.
    std::vector<std::pair<LVar, Lexp *>> Lets;
    std::vector<Col> NewCols;
    for (size_t K = 0; K < Cols.size(); ++K) {
      if (K != J) {
        NewCols.push_back(Cols[K]);
        continue;
      }
      for (size_t F = 0; F < N; ++F) {
        LVar FV = B.fresh();
        Lets.emplace_back(FV, B.select(static_cast<int>(F), B.var(ColJ.V)));
        Col NC;
        NC.V = FV;
        NC.Std = ColJ.Std;
        NC.Ty = P0->Elems[F]->Ty;
        NewCols.push_back(NC);
      }
    }
    std::vector<IRow> NewRows;
    for (IRow &R : Rows) {
      IRow NR;
      NR.Binds = R.Binds;
      NR.Src = R.Src;
      for (size_t K = 0; K < R.Pats.size(); ++K) {
        if (K != J) {
          NR.Pats.push_back(R.Pats[K]);
          continue;
        }
        APat *P = R.Pats[K];
        if (!P) {
          for (size_t F = 0; F < N; ++F)
            NR.Pats.push_back(nullptr);
        } else {
          assert(P->K == APat::Kind::Tuple && P->Elems.size() == N &&
                 "tuple pattern arity mismatch");
          for (size_t F = 0; F < N; ++F)
            NR.Pats.push_back(P->Elems[F]);
        }
      }
      NewRows.push_back(std::move(NR));
    }
    Lexp *Body = compileRec(std::move(NewCols), std::move(NewRows), Fail);
    for (size_t I = Lets.size(); I-- > 0;)
      Body = B.let(Lets[I].first, Lets[I].second, Body);
    return Body;
  }

  case APat::Kind::Con: {
    TyCon *DT = P0->Con->Owner;
    // Partition rows per constructor; var/wild rows flow everywhere.
    std::vector<SwitchCase> Cases;
    bool AllCovered = true;
    std::vector<IRow> DefaultRows;
    for (IRow &R : Rows)
      if (!R.Pats[J])
        DefaultRows.push_back(R);

    for (DataCon *DC : DT->Cons) {
      std::vector<IRow> Sub;
      bool Any = false;
      for (IRow &R : Rows) {
        APat *P = R.Pats[J];
        if (P && (P->K != APat::Kind::Con || P->Con != DC))
          continue;
        if (P)
          Any = true;
        IRow NR = R;
        NR.Pats[J] = P ? P->Arg : nullptr; // payload pattern (may be null)
        Sub.push_back(std::move(NR));
      }
      if (!Any) {
        AllCovered = false;
        continue;
      }
      Lexp *Body;
      if (DC->Payload) {
        // Bind the (standard boxed) payload and match against it.
        LVar PV = B.fresh();
        std::vector<Col> SubCols = Cols;
        // Find a row with a real payload pattern to get the payload type.
        Type *PayTy = nullptr;
        for (IRow &R : Sub)
          if (R.Pats[J]) {
            PayTy = R.Pats[J]->Ty;
            break;
          }
        SubCols[J].V = PV;
        SubCols[J].Std = true;
        SubCols[J].Ty = PayTy ? PayTy : Types.UnitType;
        Lexp *Inner = compileRec(std::move(SubCols), std::move(Sub), Fail);
        Body = B.let(PV, B.decon(DC, B.var(ColJ.V)), Inner);
      } else {
        std::vector<Col> SubCols = Cols;
        for (IRow &R : Sub)
          R.Pats[J] = nullptr;
        Body = compileRec(std::move(SubCols), std::move(Sub), Fail);
      }
      SwitchCase SC;
      SC.Con = DC;
      SC.Body = Body;
      Cases.push_back(SC);
    }
    Lexp *Default = nullptr;
    if (!AllCovered || Cases.size() < DT->Cons.size()) {
      if (!DefaultRows.empty()) {
        std::vector<Col> SubCols = Cols;
        Default = compileRec(std::move(SubCols), std::move(DefaultRows),
                             Fail);
      } else {
        Default = Fail();
      }
    }
    return B.switchExp(B.var(ColJ.V), SwitchKind::Con, Cases, Default);
  }

  case APat::Kind::Int:
  case APat::Kind::String: {
    bool IsInt = P0->K == APat::Kind::Int;
    Lexp *Scrut = B.var(ColJ.V);
    if (IsInt && ColJ.Std)
      Scrut = B.unwrap(Low.ltyContext().intTy(), Scrut);
    // Collect distinct keys in row order.
    std::vector<SwitchCase> Cases;
    std::vector<IRow> DefaultRows;
    for (IRow &R : Rows)
      if (!R.Pats[J])
        DefaultRows.push_back(R);
    auto HasKey = [&](const APat *P) {
      for (const SwitchCase &C2 : Cases) {
        if (IsInt ? C2.IntKey == P->IntValue : C2.StrKey == P->StrValue)
          return true;
      }
      return false;
    };
    for (IRow &RK : Rows) {
      APat *PK = RK.Pats[J];
      if (!PK || HasKey(PK))
        continue;
      std::vector<IRow> Sub;
      for (IRow &R : Rows) {
        APat *P = R.Pats[J];
        if (P) {
          bool Match = IsInt ? (P->K == APat::Kind::Int &&
                                P->IntValue == PK->IntValue)
                             : (P->K == APat::Kind::String &&
                                P->StrValue == PK->StrValue);
          if (!Match)
            continue;
        }
        IRow NR = R;
        NR.Pats[J] = nullptr;
        Sub.push_back(std::move(NR));
      }
      SwitchCase SC;
      if (IsInt)
        SC.IntKey = PK->IntValue;
      else
        SC.StrKey = PK->StrValue;
      std::vector<Col> SubCols = Cols;
      SC.Body = compileRec(std::move(SubCols), std::move(Sub), Fail);
      Cases.push_back(SC);
    }
    Lexp *Default;
    if (!DefaultRows.empty()) {
      std::vector<Col> SubCols = Cols;
      Default = compileRec(std::move(SubCols), std::move(DefaultRows), Fail);
    } else {
      Default = Fail();
    }
    return B.switchExp(Scrut, IsInt ? SwitchKind::Int : SwitchKind::Str,
                       Cases, Default);
  }

  case APat::Kind::ExnCon: {
    // Exception tags are first-class values; compile to an equality test
    // on the tag word, then match the payload.
    Lexp *TagOfScrut = B.select(0, B.var(ColJ.V));
    Lexp *WantedTag = TransExp(P0->ExnTag);
    Lexp *Cond = B.prim(PrimId::PtrEq, {TagOfScrut, WantedTag});

    // Then-branch: rows with the same tag (payload pattern) + var/wild.
    std::vector<IRow> ThenRows;
    std::vector<IRow> ElseRows;
    for (IRow &R : Rows) {
      APat *P = R.Pats[J];
      if (!P) {
        ThenRows.push_back(R);
        ElseRows.push_back(R);
        continue;
      }
      if (P->K == APat::Kind::ExnCon && sameTag(P->ExnTag, P0->ExnTag)) {
        IRow NR = R;
        NR.Pats[J] = P->Arg; // payload pattern or null
        ThenRows.push_back(std::move(NR));
      } else {
        ElseRows.push_back(R);
      }
    }
    Lexp *ThenBody;
    if (P0->ExnPayload) {
      LVar PV = B.fresh();
      std::vector<Col> SubCols = Cols;
      SubCols[J].V = PV;
      SubCols[J].Std = true;
      SubCols[J].Ty = P0->ExnPayload;
      Lexp *Inner = compileRec(std::move(SubCols), std::move(ThenRows),
                               Fail);
      ThenBody = B.let(PV, B.select(1, B.var(ColJ.V)), Inner);
    } else {
      for (IRow &R : ThenRows)
        R.Pats[J] = nullptr;
      std::vector<Col> SubCols = Cols;
      ThenBody = compileRec(std::move(SubCols), std::move(ThenRows), Fail);
    }
    std::vector<Col> ElseCols = Cols;
    Lexp *ElseBody = compileRec(std::move(ElseCols), std::move(ElseRows),
                                Fail);

    std::vector<SwitchCase> Cases(2);
    Cases[0].Con = Types.TrueCon;
    Cases[0].Body = ThenBody;
    Cases[1].Con = Types.FalseCon;
    Cases[1].Body = ElseBody;
    return B.switchExp(Cond, SwitchKind::Con, Cases, nullptr);
  }

  default:
    assert(false && "unexpected pattern kind in match compilation");
    return Fail();
  }
}
