//===- lexp/Translate.h - Absyn to LEXP translation --------------------------===//
///
/// \file
/// The Lambda Translator (paper Section 4): translates typed Absyn into the
/// typed lambda language LEXP, inserting representation coercions at every
/// use of a polymorphic variable or data constructor, at signature
/// matching, abstraction, and functor application; specializing polymorphic
/// primitives (notably equality) from their type instantiations; and
/// compiling pattern matches.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LEXP_TRANSLATE_H
#define SMLTC_LEXP_TRANSLATE_H

#include "driver/Options.h"
#include "elab/Absyn.h"
#include "lexp/Coerce.h"
#include "lexp/Lexp.h"
#include "lexp/MatchComp.h"
#include "lty/Lty.h"
#include "lty/TypeToLty.h"
#include "support/Diagnostics.h"
#include "types/Type.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace smltc {

/// The builtin exceptions the translator needs to raise.
struct BuiltinExns {
  ExnInfo *Match = nullptr;
  ExnInfo *Bind = nullptr;
  ExnInfo *Div = nullptr;
  ExnInfo *Subscript = nullptr;
  ExnInfo *Size = nullptr;
  ExnInfo *Overflow = nullptr;
  ExnInfo *Chr = nullptr;

  std::vector<ExnInfo *> all() const {
    return {Match, Bind, Div, Subscript, Size, Overflow, Chr};
  }
};

class Translator {
public:
  Translator(Arena &A, TypeContext &Types, LtyContext &LC,
             const CompilerOptions &Opts, const BuiltinExns &Exns,
             DiagnosticEngine &Diags)
      : A(A), Types(Types), LC(LC), Opts(Opts), Exns(Exns), Diags(Diags),
        Low(LC, Types, Opts.Repr), B(A),
        C(LC, B, Opts.MemoCoercions),
        MC(B, Low, C, Types,
           [this](AExp *E) { return transExp(E); }) {}

  /// Translates a whole program into one LEXP expression (the program's
  /// int result).
  Lexp *translate(const AProgram &P);

  LexpBuilder &builder() { return B; }
  TypeLowering &lowering() { return Low; }
  Coercer &coercer() { return C; }

private:
  Lexp *transExp(AExp *E);
  Lexp *transDecs(Span<ADec *> Decs, size_t I,
                  const std::function<Lexp *()> &Body);
  Lexp *transDec(ADec *D, const std::function<Lexp *()> &Body);
  Lexp *transStrExp(AStrExp *S);
  Lexp *transThinning(const Thinning *T, Lexp *SrcVal);

  Lexp *transFnExp(AExp *E);
  Lexp *transMatchFn(Span<ARule> Rules, Type *ArgTy, Type *ResTy,
                     ExnInfo *FailureExn, SourceLoc Loc);
  Lexp *transPrimApp(AExp *PrimExp, AExp *ArgExp, Type *ResTy);
  Lexp *primValue(AExp *PrimExp);
  Lexp *saturatePrim(PrimId P, Lexp *ArgVal, Type *ArgTy);
  Lexp *equalityExp(Type *Ty, Lexp *AVal, Lexp *BVal);
  Lexp *raiseExn(ExnInfo *X, const Lty *ResLty);
  Lexp *exnValue(Lexp *Tag, Type *Payload, Lexp *Arg);
  Lexp *boolConst(bool V);

  const Lty *ltyOf(Type *T) { return Low.lower(T); }

  LVar lvarOf(ValInfo *V);
  LVar lvarOfStr(StrInfo *S);
  LVar lvarOfExn(ExnInfo *X);
  LVar lvarOfFct(FctInfo *F);

  Arena &A;
  TypeContext &Types;
  LtyContext &LC;
  const CompilerOptions &Opts;
  BuiltinExns Exns;
  DiagnosticEngine &Diags;
  TypeLowering Low;
  LexpBuilder B;
  Coercer C;
  MatchCompiler MC;

  std::unordered_map<const ValInfo *, LVar> ValMap;
  std::unordered_map<const StrInfo *, LVar> StrMap;
  std::unordered_map<const ExnInfo *, LVar> ExnMap;
  std::unordered_map<const FctInfo *, LVar> FctMap;
};

} // namespace smltc

#endif // SMLTC_LEXP_TRANSLATE_H
