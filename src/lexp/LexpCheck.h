//===- lexp/LexpCheck.h - LEXP invariant checking -----------------------------===//
///
/// \file
/// A representation-shape checker for LEXP ("all the intermediate
/// optimizations must preserve type consistency" — paper Section 1). It
/// verifies variable scoping, record arities, and most importantly that raw
/// floating-point values (REALty) never flow into one-word (boxed/integer)
/// positions without an explicit WRAP — the invariant representation
/// analysis depends on.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LEXP_LEXPCHECK_H
#define SMLTC_LEXP_LEXPCHECK_H

#include "lexp/Lexp.h"
#include "lty/Lty.h"

#include <string>

namespace smltc {

struct LexpCheckResult {
  bool Ok = true;
  std::string Error;
  size_t NodesChecked = 0;
};

LexpCheckResult checkLexp(const Lexp *Program, LtyContext &LC);

} // namespace smltc

#endif // SMLTC_LEXP_LEXPCHECK_H
