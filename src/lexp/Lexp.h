//===- lexp/Lexp.h - The typed lambda language LEXP -------------------------===//
///
/// \file
/// The typed call-by-value lambda language of the paper's Section 4.1: a
/// simply-typed lambda calculus with lambda, application, constants, tuple
/// and selection operators, datatype injection/projection, switches,
/// exceptions, type-annotated prim-ops, and the WRAP/UNWRAP coercion
/// operators introduced for representation analysis.
///
/// Representation decisions (constructor layouts, record layouts, argument
/// spreading) are *not* taken here; the CPS converter takes them by
/// consulting the LTY annotations, as in the paper's Section 5.1.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LEXP_LEXP_H
#define SMLTC_LEXP_LEXP_H

#include "elab/Absyn.h"
#include "lty/Lty.h"
#include "support/Arena.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>

namespace smltc {

/// Lambda variables are dense integers (the translator assigns them).
using LVar = int32_t;

struct Lexp;

/// One function of a mutually recursive FIX bundle.
struct FixDef {
  LVar Name = 0;
  LVar Param = 0;
  const Lty *ParamLty = nullptr;
  const Lty *RetLty = nullptr;
  Lexp *Body = nullptr;
};

/// One arm of a SWITCH.
struct SwitchCase {
  DataCon *Con = nullptr; ///< CaseKind::Con
  int64_t IntKey = 0;     ///< CaseKind::Int
  Symbol StrKey;          ///< CaseKind::Str
  Lexp *Body = nullptr;
};

enum class SwitchKind : uint8_t { Con, Int, Str };

struct Lexp {
  enum class Kind : uint8_t {
    Var,
    Int,
    Real,
    String,
    Fn,     ///< fn Var : Ty => A1
    Fix,    ///< fix Defs in A1
    App,    ///< A1 A2
    Let,    ///< let Var = A1 in A2
    Record, ///< record/srecord of Elems; Ty is the record LTY
    Select, ///< Select Index from A1
    Con,    ///< inject DC (A1 is the RBOXED payload, or null)
    Decon,  ///< project DC payload from A1 (result RBOXED)
    Switch, ///< switch on A1 over Cases, with optional Default
    Prim,   ///< saturated primitive application over Elems
    Wrap,   ///< box a value of contents type Ty into one word (Ty2)
    Unwrap, ///< unbox a one-word value into contents type Ty
    Raise,  ///< raise A1; Ty is the result LTY
    Handle, ///< A1 handle A2 (A2 is a fn from exn)
  };
  Kind K;

  LVar Var = 0;            // Var, Fn param, Let binder
  int64_t IntVal = 0;      // Int
  double RealVal = 0;      // Real
  Symbol StrVal;           // String
  const Lty *Ty = nullptr; // Fn param lty; Record lty; Wrap/Unwrap contents
                           // lty; Raise result lty
  const Lty *Ty2 = nullptr; // Fn return lty; Wrap result (BOXED or RBOXED)
  Lexp *A1 = nullptr;
  Lexp *A2 = nullptr;
  Span<Lexp *> Elems;      // Record fields, Prim args
  Span<FixDef> Defs;       // Fix
  DataCon *DC = nullptr;   // Con, Decon
  PrimId Prim = PrimId::PolyEq;
  SwitchKind SK = SwitchKind::Con;
  Span<SwitchCase> Cases;
  Lexp *Default = nullptr; // Switch
  int Index = 0;           // Select
};

/// Convenience constructors over an arena, with a fresh-variable supply.
class LexpBuilder {
public:
  explicit LexpBuilder(Arena &A) : A(A) {}

  Arena &arena() { return A; }
  LVar fresh() { return NextVar++; }
  LVar maxVar() const { return NextVar; }

  Lexp *var(LVar V);
  Lexp *intConst(int64_t V);
  Lexp *realConst(double V);
  Lexp *strConst(Symbol S);
  Lexp *fn(LVar Param, const Lty *ParamLty, const Lty *RetLty, Lexp *Body);
  Lexp *fix(Span<FixDef> Defs, Lexp *Body);
  Lexp *app(Lexp *Fun, Lexp *Arg);
  Lexp *let(LVar V, Lexp *Rhs, Lexp *Body);
  Lexp *record(Span<Lexp *> Elems, const Lty *RecLty);
  Lexp *record(const std::vector<Lexp *> &Elems, const Lty *RecLty);
  Lexp *select(int Index, Lexp *Arg);
  Lexp *conExp(DataCon *DC, Lexp *Payload);
  Lexp *decon(DataCon *DC, Lexp *Arg);
  Lexp *prim(PrimId P, const std::vector<Lexp *> &Args);
  Lexp *wrap(const Lty *Contents, Lexp *Arg, const Lty *Result);
  Lexp *unwrap(const Lty *Contents, Lexp *Arg);
  Lexp *raise(Lexp *Arg, const Lty *ResultLty);
  Lexp *handle(Lexp *Body, Lexp *Handler);
  Lexp *switchExp(Lexp *Scrut, SwitchKind SK,
                  const std::vector<SwitchCase> &Cases, Lexp *Default);

private:
  Lexp *make(Lexp::Kind K) {
    Lexp *E = A.create<Lexp>();
    E->K = K;
    return E;
  }
  Arena &A;
  LVar NextVar = 1;
};

/// Renders a LEXP tree as an s-expression (tests and debugging).
std::string printLexp(const Lexp *E);

/// Counts nodes (compile-effort metric for the ablation benches).
size_t countLexpNodes(const Lexp *E);

} // namespace smltc

#endif // SMLTC_LEXP_LEXP_H
