//===- lexp/Coerce.cpp - Representation coercions -----------------------------===//

#include "lexp/Coerce.h"

#include <cassert>

using namespace smltc;

bool Coercer::isIdentity(const Lty *From, const Lty *To) {
  if (LC.equal(From, To))
    return true;
  if (From->kind() != To->kind())
    return false;
  switch (From->kind()) {
  case LtyKind::Record:
  case LtyKind::SRecord: {
    if (From->fields().size() != To->fields().size())
      return false;
    for (size_t I = 0; I < From->fields().size(); ++I)
      if (!isIdentity(From->fields()[I], To->fields()[I]))
        return false;
    return true;
  }
  case LtyKind::Arrow:
    return isIdentity(To->from(), From->from()) &&
           isIdentity(From->to(), To->to());
  default:
    return false;
  }
}

Lexp *Coercer::coerce(const Lty *From, const Lty *To, Lexp *E) {
  // Fast path: with hash-consed LTYs this is a pointer comparison
  // (paper Section 4.5: "coerce(u, t) is an identity function in the
  // common case that u = t").
  if (LC.equal(From, To) || isIdentity(From, To))
    return E;

  // BOXED: shallow one-word wrapping.
  if (To->kind() == LtyKind::Boxed)
    return B.wrap(From, E, LC.boxedTy());
  if (From->kind() == LtyKind::Boxed)
    return B.unwrap(To, E);

  // RBOXED: recursive wrapping through dup (paper Section 4.2).
  if (To->kind() == LtyKind::RBoxed) {
    const Lty *D = LC.dup(From);
    if (D->kind() == LtyKind::Boxed)
      return B.wrap(From, E, LC.rboxedTy());
    Lexp *Inner = coerce(From, D, E);
    return B.wrap(D, Inner, LC.rboxedTy());
  }
  if (From->kind() == LtyKind::RBoxed) {
    const Lty *D = LC.dup(To);
    if (D->kind() == LtyKind::Boxed)
      return B.unwrap(To, E);
    Lexp *Inner = B.unwrap(D, E);
    return coerce(D, To, Inner);
  }

  return coerceStructural(From, To, E);
}

Lexp *Coercer::recordCoercion(const Lty *From, const Lty *To, Lexp *E) {
  assert(From->fields().size() == To->fields().size() &&
         "record coercion size mismatch");
  LVar X = B.fresh();
  std::vector<Lexp *> Fields;
  for (size_t I = 0; I < From->fields().size(); ++I)
    Fields.push_back(coerce(From->fields()[I], To->fields()[I],
                            B.select(static_cast<int>(I), B.var(X))));
  return B.let(X, E, B.record(Fields, To));
}

Lexp *Coercer::coerceStructural(const Lty *From, const Lty *To, Lexp *E) {
  // Records (same arity, guaranteed by the ML type system).
  if (From->isRecordLike() && To->isRecordLike()) {
    bool ModuleLevel = From->kind() == LtyKind::SRecord &&
                       To->kind() == LtyKind::SRecord;
    if (ModuleLevel && Memo) {
      auto Key = std::make_pair(From, To);
      auto It = MemoTable.find(Key);
      if (It != MemoTable.end()) {
        ++MemoHits;
        return B.app(B.var(It->second), E);
      }
      ++MemoMisses;
      LVar FnName = B.fresh();
      MemoTable.emplace(Key, FnName); // before building, for recursion
      LVar Param = B.fresh();
      Lexp *Body = recordCoercion(From, To, B.var(Param));
      FixDef D;
      D.Name = FnName;
      D.Param = Param;
      D.ParamLty = From;
      D.RetLty = To;
      D.Body = Body;
      SharedDefs.push_back(D);
      return B.app(B.var(FnName), E);
    }
    return recordCoercion(From, To, E);
  }

  // Partial records: fetch the shared subset by index.
  if (From->kind() == LtyKind::PRecord || To->kind() == LtyKind::PRecord) {
    LVar X = B.fresh();
    auto FieldOf = [&](const Lty *T, int Index) -> const Lty * {
      if (T->kind() == LtyKind::PRecord) {
        for (const PField &F : T->pfields())
          if (F.Index == Index)
            return F.Ty;
        return nullptr;
      }
      if (Index < static_cast<int>(T->fields().size()))
        return T->fields()[Index];
      return nullptr;
    };
    std::vector<Lexp *> Fields;
    bool Ok = true;
    if (To->kind() == LtyKind::PRecord) {
      for (const PField &F : To->pfields()) {
        const Lty *FF = FieldOf(From, F.Index);
        if (!FF) {
          Ok = false;
          break;
        }
        Fields.push_back(coerce(FF, F.Ty, B.select(F.Index, B.var(X))));
      }
    } else {
      for (size_t I = 0; I < To->fields().size(); ++I) {
        const Lty *FF = FieldOf(From, static_cast<int>(I));
        if (!FF) {
          Ok = false;
          break;
        }
        Fields.push_back(coerce(FF, To->fields()[I],
                                B.select(static_cast<int>(I), B.var(X))));
      }
    }
    assert(Ok && "partial-record coercion: missing field");
    (void)Ok;
    return B.let(X, E, B.record(Fields, To));
  }

  // Functions: coerce the argument backwards and the result forwards.
  if (From->kind() == LtyKind::Arrow && To->kind() == LtyKind::Arrow) {
    LVar F = B.fresh();
    LVar X = B.fresh();
    Lexp *Arg = coerce(To->from(), From->from(), B.var(X));
    Lexp *Res = coerce(From->to(), To->to(), B.app(B.var(F), Arg));
    return B.let(F, E, B.fn(X, To->from(), To->to(), Res));
  }

  // INT <-> tagged-word views (e.g. INT to/from RBOXED went through the
  // cases above; anything left is an internal inconsistency).
  assert(false && "coerce: incompatible LTYs");
  return E;
}
