//===- lexp/Translate.cpp - Absyn to LEXP translation -------------------------===//

#include "lexp/Translate.h"

#include "lexp/PrimRep.h"

#include <cassert>

using namespace smltc;

LVar Translator::lvarOf(ValInfo *V) {
  auto It = ValMap.find(V);
  if (It != ValMap.end())
    return It->second;
  LVar L = B.fresh();
  ValMap.emplace(V, L);
  return L;
}

LVar Translator::lvarOfStr(StrInfo *S) {
  auto It = StrMap.find(S);
  if (It != StrMap.end())
    return It->second;
  LVar L = B.fresh();
  StrMap.emplace(S, L);
  return L;
}

LVar Translator::lvarOfExn(ExnInfo *X) {
  auto It = ExnMap.find(X);
  if (It != ExnMap.end())
    return It->second;
  LVar L = B.fresh();
  ExnMap.emplace(X, L);
  return L;
}

LVar Translator::lvarOfFct(FctInfo *F) {
  auto It = FctMap.find(F);
  if (It != FctMap.end())
    return It->second;
  LVar L = B.fresh();
  FctMap.emplace(F, L);
  return L;
}

//===----------------------------------------------------------------------===//
// Primitive representation types
//===----------------------------------------------------------------------===//

int smltc::primArity(PrimId P) {
  switch (P) {
  case PrimId::INeg:
  case PrimId::IAbs:
  case PrimId::FNeg:
  case PrimId::FAbs:
  case PrimId::RealFromInt:
  case PrimId::Floor:
  case PrimId::Sqrt:
  case PrimId::Sin:
  case PrimId::Cos:
  case PrimId::Atan:
  case PrimId::Exp:
  case PrimId::Ln:
  case PrimId::StrSize:
  case PrimId::Chr:
  case PrimId::Ord:
  case PrimId::IntToString:
  case PrimId::RealToString:
  case PrimId::Deref:
  case PrimId::ArrayLength:
  case PrimId::Callcc:
  case PrimId::Throw:
  case PrimId::Print:
    return 1;
  case PrimId::Substring:
  case PrimId::ArrayUpdate:
    return 3;
  case PrimId::MakeTag:
    return 1; // builtin-exception index (0 for user exceptions)
  default:
    return 2;
  }
}

const Lty *smltc::primArgLty(LtyContext &LC, PrimId P, int I) {
  const Lty *INT = LC.intTy();
  const Lty *REAL = LC.realTy();
  const Lty *BOX = LC.boxedTy();
  const Lty *RB = LC.rboxedTy();
  switch (P) {
  case PrimId::IAdd: case PrimId::ISub: case PrimId::IMul:
  case PrimId::IDiv: case PrimId::IMod: case PrimId::ILt:
  case PrimId::ILe: case PrimId::IGt: case PrimId::IGe:
  case PrimId::IEq: case PrimId::INeg: case PrimId::IAbs:
    return INT;
  case PrimId::FAdd: case PrimId::FSub: case PrimId::FMul:
  case PrimId::FDiv: case PrimId::FLt: case PrimId::FLe:
  case PrimId::FGt: case PrimId::FGe: case PrimId::FEq:
  case PrimId::FNeg: case PrimId::FAbs:
  case PrimId::Floor: case PrimId::Sqrt: case PrimId::Sin:
  case PrimId::Cos: case PrimId::Atan: case PrimId::Exp:
  case PrimId::Ln: case PrimId::RealToString:
    return REAL;
  case PrimId::RealFromInt:
  case PrimId::IntToString:
  case PrimId::Chr:
  case PrimId::MakeTag:
    return INT;
  case PrimId::StrSize: case PrimId::Ord:
    return BOX;
  case PrimId::StrSub:
    return I == 0 ? BOX : INT;
  case PrimId::StrConcat: case PrimId::StrEq: case PrimId::StrCmp:
    return BOX;
  case PrimId::Substring:
    return I == 0 ? BOX : INT;
  case PrimId::Deref:
    return BOX;
  case PrimId::Assign:
    return I == 0 ? BOX : RB;
  case PrimId::ArrayMake:
    return I == 0 ? INT : RB;
  case PrimId::ArraySub:
    return I == 0 ? BOX : INT;
  case PrimId::ArrayUpdate:
    return I == 0 ? BOX : (I == 1 ? INT : RB);
  case PrimId::ArrayLength:
    return BOX;
  case PrimId::PolyEq:
    return RB;
  case PrimId::PtrEq:
    return BOX;
  case PrimId::Callcc:
    return LC.arrow(BOX, RB);
  case PrimId::Throw:
    return BOX;
  case PrimId::Print:
    return BOX;
  default:
    return RB;
  }
}

const Lty *smltc::primResLty(LtyContext &LC, PrimId P) {
  const Lty *INT = LC.intTy();
  const Lty *REAL = LC.realTy();
  const Lty *BOX = LC.boxedTy();
  const Lty *RB = LC.rboxedTy();
  switch (P) {
  case PrimId::IAdd: case PrimId::ISub: case PrimId::IMul:
  case PrimId::IDiv: case PrimId::IMod: case PrimId::INeg:
  case PrimId::IAbs: case PrimId::Floor: case PrimId::StrSize:
  case PrimId::StrSub: case PrimId::StrCmp: case PrimId::Ord:
  case PrimId::ArrayLength: case PrimId::Assign:
  case PrimId::ArrayUpdate: case PrimId::Print:
    return INT;
  case PrimId::FAdd: case PrimId::FSub: case PrimId::FMul:
  case PrimId::FDiv: case PrimId::FNeg: case PrimId::FAbs:
  case PrimId::RealFromInt: case PrimId::Sqrt: case PrimId::Sin:
  case PrimId::Cos: case PrimId::Atan: case PrimId::Exp:
  case PrimId::Ln:
    return REAL;
  case PrimId::ILt: case PrimId::ILe: case PrimId::IGt:
  case PrimId::IGe: case PrimId::IEq: case PrimId::FLt:
  case PrimId::FLe: case PrimId::FGt: case PrimId::FGe:
  case PrimId::FEq: case PrimId::StrEq: case PrimId::PolyEq:
  case PrimId::PtrEq:
    return BOX; // bool values
  case PrimId::StrConcat: case PrimId::Substring: case PrimId::Chr:
  case PrimId::IntToString: case PrimId::RealToString:
  case PrimId::ArrayMake: case PrimId::MakeTag:
    return BOX;
  case PrimId::Deref: case PrimId::ArraySub: case PrimId::Callcc:
    return RB;
  case PrimId::Throw:
    return LC.arrow(RB, RB);
  default:
    return RB;
  }
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

Lexp *Translator::boolConst(bool V) {
  return B.conExp(V ? Types.TrueCon : Types.FalseCon, nullptr);
}

Lexp *Translator::exnValue(Lexp *Tag, Type *Payload, Lexp *Arg) {
  // exn = [tag, payload], payload always standard boxed.
  Lexp *Pay;
  if (Payload && Arg)
    Pay = C.coerce(ltyOf(Payload), LC.rboxedTy(), Arg);
  else
    Pay = C.coerce(LC.intTy(), LC.rboxedTy(), B.intConst(0));
  const Lty *ExnLty =
      LC.record({LC.boxedTy(), LC.rboxedTy()});
  return B.record({Tag, Pay}, ExnLty);
}

Lexp *Translator::raiseExn(ExnInfo *X, const Lty *ResLty) {
  Lexp *Tag = B.var(lvarOfExn(X));
  return B.raise(exnValue(Tag, nullptr, nullptr), ResLty);
}

/// Structural equality specialization (paper Section 4.4: "polymorphic
/// equality, if used monomorphically, can be translated into primitive
/// equality").
Lexp *Translator::equalityExp(Type *Ty, Lexp *AVal, Lexp *BVal) {
  Type *T = Types.headNormalize(Ty);
  switch (T->K) {
  case Type::Kind::Con: {
    TyCon *TC = T->Con;
    if (TC == Types.IntTycon || TC == Types.UnitTycon)
      return B.prim(PrimId::IEq, {AVal, BVal});
    if (TC == Types.RealTycon) {
      // Values are at lty(real): REAL under FullFloat, boxed otherwise.
      const Lty *RL = ltyOf(T);
      return B.prim(PrimId::FEq, {C.coerce(RL, LC.realTy(), AVal),
                                  C.coerce(RL, LC.realTy(), BVal)});
    }
    if (TC == Types.StringTycon)
      return B.prim(PrimId::StrEq, {AVal, BVal});
    if (TC == Types.RefTycon || TC == Types.ArrayTycon)
      return B.prim(PrimId::PtrEq, {AVal, BVal});
    if (TC->K == TyCon::Kind::Datatype) {
      bool AllConstant = true;
      for (DataCon *DC : TC->Cons)
        if (DC->Payload)
          AllConstant = false;
      if (AllConstant)
        return B.prim(PrimId::IEq, {AVal, BVal});
      // General datatype: values are already recursively boxed.
      return B.prim(PrimId::PolyEq,
                    {C.coerce(ltyOf(T), LC.rboxedTy(), AVal),
                     C.coerce(ltyOf(T), LC.rboxedTy(), BVal)});
    }
    // Flexible / abstract: runtime structural equality on RBOXED.
    return B.prim(PrimId::PolyEq,
                  {C.coerce(ltyOf(T), LC.rboxedTy(), AVal),
                   C.coerce(ltyOf(T), LC.rboxedTy(), BVal)});
  }
  case Type::Kind::Tuple: {
    if (T->Elems.empty())
      return boolConst(true);
    // Inline field-wise comparison (fast path the MTD anecdote relies on).
    LVar X = B.fresh(), Y = B.fresh();
    Lexp *Acc = nullptr;
    for (size_t I = T->Elems.size(); I-- > 0;) {
      Lexp *FieldEq = equalityExp(
          T->Elems[I], B.select(static_cast<int>(I), B.var(X)),
          B.select(static_cast<int>(I), B.var(Y)));
      if (!Acc) {
        Acc = FieldEq;
      } else {
        // FieldEq andalso Acc
        std::vector<SwitchCase> Cases(2);
        Cases[0].Con = Types.TrueCon;
        Cases[0].Body = Acc;
        Cases[1].Con = Types.FalseCon;
        Cases[1].Body = boolConst(false);
        Acc = B.switchExp(FieldEq, SwitchKind::Con, Cases, nullptr);
      }
    }
    return B.let(X, AVal, B.let(Y, BVal, Acc));
  }
  case Type::Kind::Var:
    // Still polymorphic: equality type variables lower to RBOXED, so the
    // runtime structural walk is safe.
    return B.prim(PrimId::PolyEq, {AVal, BVal});
  case Type::Kind::Arrow:
    break;
  }
  Diags.error(SourceLoc(), "equality at a type that does not admit it");
  return boolConst(false);
}

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

Lexp *Translator::saturatePrim(PrimId P, Lexp *ArgVal, Type *ArgTy) {
  int N = primArity(P);
  if (N == 0)
    return B.prim(P, {});
  Type *AT = Types.headNormalize(ArgTy);
  if (N == 1) {
    const Lty *Want = primArgLty(LC, P, 0);
    return B.prim(P, {C.coerce(ltyOf(AT), Want, ArgVal)});
  }
  assert(AT->K == Type::Kind::Tuple &&
         static_cast<int>(AT->Elems.size()) == N &&
         "prim argument tuple mismatch");
  LVar X = B.fresh();
  std::vector<Lexp *> Args;
  for (int I = 0; I < N; ++I) {
    const Lty *Have = ltyOf(AT->Elems[I]);
    const Lty *Want = primArgLty(LC, P, I);
    Args.push_back(C.coerce(Have, Want, B.select(I, B.var(X))));
  }
  return B.let(X, ArgVal, B.prim(P, Args));
}

Lexp *Translator::transPrimApp(AExp *PrimExp, AExp *ArgExp, Type *ResTy) {
  PrimId P = PrimExp->Prim;
  Type *ArgTy = ArgExp->Ty;
  Lexp *ArgVal = transExp(ArgExp);

  if (P == PrimId::GenericEq || P == PrimId::GenericNe) {
    Type *AT = Types.headNormalize(ArgTy);
    assert(AT->K == Type::Kind::Tuple && AT->Elems.size() == 2);
    LVar X = B.fresh();
    Lexp *Eq = equalityExp(AT->Elems[0], B.select(0, B.var(X)),
                           B.select(1, B.var(X)));
    if (P == PrimId::GenericNe) {
      std::vector<SwitchCase> Cases(2);
      Cases[0].Con = Types.TrueCon;
      Cases[0].Body = boolConst(false);
      Cases[1].Con = Types.FalseCon;
      Cases[1].Body = boolConst(true);
      Eq = B.switchExp(Eq, SwitchKind::Con, Cases, nullptr);
    }
    return B.let(X, ArgVal, Eq);
  }

  assert(!isUnresolvedPrim(P) && "unresolved overloaded primitive");
  Lexp *Res = saturatePrim(P, ArgVal, ArgTy);
  return C.coerce(primResLty(LC, P), ltyOf(ResTy), Res);
}

Lexp *Translator::primValue(AExp *PrimExp) {
  // A primitive used as a first-class value: eta-expand at the instance
  // type (the coercions below then adapt representations).
  Type *T = Types.headNormalize(PrimExp->Ty);
  assert(T->K == Type::Kind::Arrow && "prim value must have function type");
  PrimId P = PrimExp->Prim;
  LVar X = B.fresh();
  const Lty *ArgL = ltyOf(T->From);
  const Lty *ResL = ltyOf(T->To);

  Lexp *Body;
  if (P == PrimId::GenericEq || P == PrimId::GenericNe) {
    Type *AT = Types.headNormalize(T->From);
    assert(AT->K == Type::Kind::Tuple && AT->Elems.size() == 2);
    Body = equalityExp(AT->Elems[0], B.select(0, B.var(X)),
                       B.select(1, B.var(X)));
    if (P == PrimId::GenericNe) {
      std::vector<SwitchCase> Cases(2);
      Cases[0].Con = Types.TrueCon;
      Cases[0].Body = boolConst(false);
      Cases[1].Con = Types.FalseCon;
      Cases[1].Body = boolConst(true);
      Body = B.switchExp(Body, SwitchKind::Con, Cases, nullptr);
    }
  } else {
    Lexp *Res = saturatePrim(P, B.var(X), T->From);
    Body = C.coerce(primResLty(LC, P), ResL, Res);
  }
  return B.fn(X, ArgL, ResL, Body);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Lexp *Translator::transMatchFn(Span<ARule> Rules, Type *ArgTy, Type *ResTy,
                               ExnInfo *FailureExn, SourceLoc Loc) {
  (void)Loc;
  LVar Param = B.fresh();
  const Lty *ResL = ltyOf(ResTy);
  std::vector<MatchCompiler::Row> Rows;
  for (const ARule &R : Rules) {
    MatchCompiler::Row Row;
    Row.Pats = {R.P};
    AExp *BodyExp = R.E;
    Row.Emit =
        [this, BodyExp](const std::vector<std::pair<ValInfo *, LVar>> &BS)
        -> Lexp * {
      for (const auto &[V, L] : BS)
        ValMap[V] = L;
      return transExp(BodyExp);
    };
    Rows.push_back(std::move(Row));
  }
  MatchCompiler::Col Col;
  Col.V = Param;
  Col.Ty = ArgTy;
  Col.Std = false;
  Lexp *Body = MC.compile({Col}, Rows, [this, FailureExn, ResL]() {
    return raiseExn(FailureExn, ResL);
  });
  return B.fn(Param, ltyOf(ArgTy), ResL, Body);
}

Lexp *Translator::transFnExp(AExp *E) {
  Type *T = Types.headNormalize(E->Ty);
  assert(T->K == Type::Kind::Arrow);
  return transMatchFn(E->Rules, T->From, T->To, Exns.Match, E->Loc);
}

Lexp *Translator::transExp(AExp *E) {
  switch (E->K) {
  case AExp::Kind::Int:
    return B.intConst(E->IntValue);
  case AExp::Kind::Real: {
    Lexp *R = B.realConst(E->RealValue);
    // Real literals are REAL values; coerce into the mode's representation.
    return C.coerce(LC.realTy(), ltyOf(E->Ty), R);
  }
  case AExp::Kind::String:
    return B.strConst(E->StrValue);
  case AExp::Kind::Var: {
    Lexp *V = B.var(lvarOf(E->Var));
    const Lty *Src = Low.lowerScheme(E->Var->Scheme);
    const Lty *Dst = ltyOf(E->Ty);
    return C.coerce(Src, Dst, V);
  }
  case AExp::Kind::Path: {
    Lexp *V = B.var(lvarOfStr(E->Root));
    for (int Slot : E->Slots)
      V = B.select(Slot, V);
    const Lty *Src = Low.lowerScheme(E->PathScheme);
    const Lty *Dst = ltyOf(E->Ty);
    return C.coerce(Src, Dst, V);
  }
  case AExp::Kind::Prim:
    return primValue(E);
  case AExp::Kind::ExnTag:
    return B.var(lvarOfExn(E->Exn));
  case AExp::Kind::ExnCon: {
    Lexp *Tag = transExp(E->TagExp);
    if (E->ExnPayload && !E->Arg) {
      // Bare value-carrying exception constructor: eta-expand.
      LVar X = B.fresh();
      const Lty *PayL = ltyOf(E->ExnPayload);
      Lexp *Val = exnValue(Tag, E->ExnPayload, B.var(X));
      return B.fn(X, PayL, LC.boxedTy(), Val);
    }
    Lexp *Arg = E->Arg ? transExp(E->Arg) : nullptr;
    Lexp *V = exnValue(Tag, E->ExnPayload, Arg);
    // The record is typed RECORD[...]; uses expect BOXED exn.
    return B.wrap(LC.record({LC.boxedTy(), LC.rboxedTy()}), V,
                  LC.boxedTy());
  }
  case AExp::Kind::Con: {
    DataCon *DC = E->Con;
    if (!DC->Payload)
      return B.conExp(DC, nullptr);
    if (E->Arg) {
      Type *PayTy = Types.substitute(DC->Payload, DC->Owner->Formals,
                                     E->TypeArgs);
      Lexp *Arg = transExp(E->Arg);
      Lexp *Pay = C.coerce(ltyOf(PayTy), LC.rboxedTy(), Arg);
      return B.conExp(DC, Pay);
    }
    // Bare value-carrying constructor: eta-expand at the instance type.
    Type *T = Types.headNormalize(E->Ty);
    assert(T->K == Type::Kind::Arrow);
    LVar X = B.fresh();
    Lexp *Pay = C.coerce(ltyOf(T->From), LC.rboxedTy(), B.var(X));
    return B.fn(X, ltyOf(T->From), ltyOf(T->To), B.conExp(DC, Pay));
  }
  case AExp::Kind::Tuple: {
    if (E->Elems.empty())
      return B.intConst(0); // unit
    std::vector<Lexp *> Elems;
    for (AExp *X : E->Elems)
      Elems.push_back(transExp(X));
    return B.record(Elems, ltyOf(E->Ty));
  }
  case AExp::Kind::Select:
    return B.select(E->SelectIndex, transExp(E->Arg));
  case AExp::Kind::App: {
    if (E->Fun->K == AExp::Kind::Prim)
      return transPrimApp(E->Fun, E->Arg, E->Ty);
    Lexp *F = transExp(E->Fun);
    Lexp *Arg = transExp(E->Arg);
    return B.app(F, Arg);
  }
  case AExp::Kind::Fn:
    return transFnExp(E);
  case AExp::Kind::Case: {
    // Compile as an applied match-function body: bind the scrutinee and
    // run the decision tree inline.
    Lexp *Scrut = transExp(E->Scrut);
    LVar SV = B.fresh();
    std::vector<MatchCompiler::Row> Rows;
    for (const ARule &R : E->Rules) {
      MatchCompiler::Row Row;
      Row.Pats = {R.P};
      AExp *BodyExp = R.E;
      Row.Emit =
          [this, BodyExp](const std::vector<std::pair<ValInfo *, LVar>> &BS)
          -> Lexp * {
        for (const auto &[V, L] : BS)
          ValMap[V] = L;
        return transExp(BodyExp);
      };
      Rows.push_back(std::move(Row));
    }
    MatchCompiler::Col Col;
    Col.V = SV;
    Col.Ty = E->Scrut->Ty;
    Col.Std = false;
    const Lty *ResL = ltyOf(E->Ty);
    Lexp *Body = MC.compile({Col}, Rows, [this, ResL]() {
      return raiseExn(Exns.Match, ResL);
    });
    return B.let(SV, Scrut, Body);
  }
  case AExp::Kind::Let: {
    AExp *BodyExp = E->Body;
    return transDecs(E->Decs, 0,
                     [this, BodyExp]() { return transExp(BodyExp); });
  }
  case AExp::Kind::Seq: {
    Lexp *Result = nullptr;
    std::vector<Lexp *> Vals;
    for (AExp *X : E->Elems)
      Vals.push_back(transExp(X));
    Result = Vals.back();
    for (size_t I = Vals.size() - 1; I-- > 0;)
      Result = B.let(B.fresh(), Vals[I], Result);
    return Result;
  }
  case AExp::Kind::Raise:
    return B.raise(transExp(E->Arg), ltyOf(E->Ty));
  case AExp::Kind::Handle: {
    Lexp *Body = transExp(E->Arg);
    LVar XV = B.fresh();
    std::vector<MatchCompiler::Row> Rows;
    for (const ARule &R : E->Rules) {
      MatchCompiler::Row Row;
      Row.Pats = {R.P};
      AExp *BodyExp = R.E;
      Row.Emit =
          [this, BodyExp](const std::vector<std::pair<ValInfo *, LVar>> &BS)
          -> Lexp * {
        for (const auto &[V, L] : BS)
          ValMap[V] = L;
        return transExp(BodyExp);
      };
      Rows.push_back(std::move(Row));
    }
    MatchCompiler::Col Col;
    Col.V = XV;
    Col.Ty = Types.ExnType;
    Col.Std = false;
    const Lty *ResL = ltyOf(E->Ty);
    Lexp *HBody = MC.compile({Col}, Rows, [this, XV, ResL]() {
      // Unhandled: re-raise.
      return B.raise(B.var(XV), ResL);
    });
    Lexp *Handler = B.fn(XV, LC.boxedTy(), ResL, HBody);
    return B.handle(Body, Handler);
  }
  case AExp::Kind::StrLet:
    break;
  }
  assert(false && "unhandled Absyn expression");
  return B.intConst(0);
}

//===----------------------------------------------------------------------===//
// Declarations and modules
//===----------------------------------------------------------------------===//

Lexp *Translator::transDecs(Span<ADec *> Decs, size_t I,
                            const std::function<Lexp *()> &Body) {
  if (I == Decs.size())
    return Body();
  return transDec(Decs[I], [this, Decs, I, &Body]() {
    return transDecs(Decs, I + 1, Body);
  });
}

Lexp *Translator::transDec(ADec *D, const std::function<Lexp *()> &Body) {
  switch (D->K) {
  case ADec::Kind::Val: {
    Lexp *Rhs = transExp(D->Exp);
    APat *P = D->Pat;
    // Common case: a simple variable binding.
    if (P->K == APat::Kind::Var) {
      LVar V = lvarOf(P->Var);
      return B.let(V, Rhs, Body());
    }
    if (P->K == APat::Kind::Wild)
      return B.let(B.fresh(), Rhs, Body());
    // General pattern: run the decision tree; failure raises Bind.
    LVar SV = B.fresh();
    MatchCompiler::Row Row;
    Row.Pats = {P};
    Row.Emit =
        [this, &Body](const std::vector<std::pair<ValInfo *, LVar>> &BS)
        -> Lexp * {
      for (const auto &[V, L] : BS)
        ValMap[V] = L;
      return Body();
    };
    MatchCompiler::Col Col;
    Col.V = SV;
    Col.Ty = P->Ty;
    Col.Std = false;
    // The result type of the continuation is unknown here; Bind failures
    // use RBOXED, which any context accepts after the raise.
    Lexp *MBody = MC.compile({Col}, {Row}, [this]() {
      return raiseExn(Exns.Bind, LC.rboxedTy());
    });
    return B.let(SV, Rhs, MBody);
  }
  case ADec::Kind::ValRec: {
    std::vector<FixDef> Defs;
    for (size_t I = 0; I < D->RecVars.size(); ++I) {
      LVar Name = lvarOf(D->RecVars[I]);
      Lexp *Fn = transExp(D->RecExps[I]);
      assert(Fn->K == Lexp::Kind::Fn && "val rec rhs must be a function");
      FixDef FD;
      FD.Name = Name;
      FD.Param = Fn->Var;
      FD.ParamLty = Fn->Ty;
      FD.RetLty = Fn->Ty2;
      FD.Body = Fn->A1;
      Defs.push_back(FD);
    }
    return B.fix(Span<FixDef>::copy(A, Defs), Body());
  }
  case ADec::Kind::Exception: {
    LVar Tag = lvarOfExn(D->Exn);
    return B.let(Tag, B.prim(PrimId::MakeTag, {B.intConst(0)}), Body());
  }
  case ADec::Kind::Structure: {
    Lexp *S = transStrExp(D->StrExp);
    return B.let(lvarOfStr(D->Str), S, Body());
  }
  case ADec::Kind::Functor: {
    FctInfo *F = D->Fct;
    LVar Param = lvarOfStr(F->Param);
    Lexp *FBody = transStrExp(F->Body);
    const Lty *ArgL = Low.lowerStatic(F->ParamStatic);
    const Lty *ResL = Low.lowerStatic(F->BodyStatic);
    Lexp *Fn = B.fn(Param, ArgL, ResL, FBody);
    return B.let(lvarOfFct(F), Fn, Body());
  }
  case ADec::Kind::Empty:
    return Body();
  }
  return Body();
}

namespace {
/// The SRECORD type a thinning produces (the "view" type).
const Lty *thinningLty(const Thinning *T, TypeLowering &Low,
                       LtyContext &LC) {
  std::vector<const Lty *> Fields;
  for (const ThinComp &C : T->Comps) {
    switch (C.K) {
    case StrComp::Kind::Val:
      Fields.push_back(Low.lowerScheme(C.DstScheme));
      break;
    case StrComp::Kind::Exn:
      Fields.push_back(LC.boxedTy());
      break;
    case StrComp::Kind::Str:
      Fields.push_back(thinningLty(C.Sub, Low, LC));
      break;
    }
  }
  return LC.srecord(Fields);
}
} // namespace

Lexp *Translator::transThinning(const Thinning *T, Lexp *SrcVal) {
  LVar S = B.fresh();
  std::vector<Lexp *> Fields;
  std::vector<const Lty *> FieldLtys;
  for (const ThinComp &C2 : T->Comps) {
    Lexp *Src = B.select(C2.SrcSlot, B.var(S));
    switch (C2.K) {
    case StrComp::Kind::Val: {
      const Lty *From = Low.lowerScheme(C2.SrcScheme);
      const Lty *To = Low.lowerScheme(C2.DstScheme);
      Fields.push_back(C.coerce(From, To, Src));
      FieldLtys.push_back(To);
      break;
    }
    case StrComp::Kind::Exn:
      Fields.push_back(Src);
      FieldLtys.push_back(LC.boxedTy());
      break;
    case StrComp::Kind::Str: {
      Lexp *Sub = transThinning(C2.Sub, Src);
      Fields.push_back(Sub);
      FieldLtys.push_back(thinningLty(C2.Sub, Low, LC));
      break;
    }
    }
  }
  const Lty *RecL = LC.srecord(FieldLtys);
  return B.let(S, SrcVal, B.record(Fields, RecL));
}

Lexp *Translator::transStrExp(AStrExp *S) {
  switch (S->K) {
  case AStrExp::Kind::Struct: {
    Span<SlotRef> Slots = S->Slots;
    return transDecs(S->Decs, 0, [this, Slots]() -> Lexp * {
      std::vector<Lexp *> Fields;
      std::vector<const Lty *> FieldLtys;
      for (const SlotRef &R : Slots) {
        switch (R.K) {
        case StrComp::Kind::Val: {
          Lexp *V = B.var(lvarOf(R.Val));
          const Lty *From = Low.lowerScheme(R.Val->Scheme);
          const Lty *To = Low.lowerScheme(R.CompScheme);
          Fields.push_back(C.coerce(From, To, V));
          FieldLtys.push_back(To);
          break;
        }
        case StrComp::Kind::Exn:
          Fields.push_back(B.var(lvarOfExn(R.Exn)));
          FieldLtys.push_back(LC.boxedTy());
          break;
        case StrComp::Kind::Str: {
          Lexp *V = B.var(lvarOfStr(R.Str));
          Fields.push_back(V);
          FieldLtys.push_back(Low.lowerStatic(R.Str->Static));
          break;
        }
        }
      }
      return B.record(Fields, LC.srecord(FieldLtys));
    });
  }
  case AStrExp::Kind::Var: {
    Lexp *V = B.var(lvarOfStr(S->Root));
    for (int Slot : S->Path)
      V = B.select(Slot, V);
    return V;
  }
  case AStrExp::Kind::FctApp: {
    Lexp *Arg = transStrExp(S->Arg);
    Lexp *ArgView = transThinning(S->ArgThin, Arg);
    Lexp *F = B.var(lvarOfFct(S->Fct));
    Lexp *Res = B.app(F, ArgView);
    const Lty *From = Low.lowerStatic(S->AbstractResult);
    const Lty *To = Low.lowerStatic(S->Static);
    return C.coerce(From, To, Res);
  }
  case AStrExp::Kind::Thinned: {
    Lexp *Inner = transStrExp(S->Inner);
    return transThinning(S->Thin, Inner);
  }
  }
  assert(false && "unhandled structure expression");
  return B.intConst(0);
}

Lexp *Translator::translate(const AProgram &P) {
  Lexp *Program = transDecs(P.Decs, 0, [this, &P]() -> Lexp * {
    if (P.Result)
      return C.coerce(ltyOf(P.Result->Ty), LC.intTy(), transExp(P.Result));
    return B.intConst(0);
  });

  // Prologue: create the builtin exception tags. The positive indices let
  // the runtime identify the tags it raises itself (Div, Subscript, ...).
  std::vector<ExnInfo *> Builtins = Exns.all();
  for (size_t I = Builtins.size(); I-- > 0;) {
    LVar Tag = lvarOfExn(Builtins[I]);
    Program = B.let(
        Tag,
        B.prim(PrimId::MakeTag, {B.intConst(static_cast<int64_t>(I) + 1)}),
        Program);
  }

  // Shared (memo-ized) module coercions become one top-level FIX.
  if (!C.sharedDefs().empty())
    Program = B.fix(Span<FixDef>::copy(A, C.sharedDefs()), Program);
  return Program;
}
