//===- lexp/Lexp.cpp - The typed lambda language LEXP ------------------------===//

#include "lexp/Lexp.h"

#include <sstream>

using namespace smltc;

Lexp *LexpBuilder::var(LVar V) {
  Lexp *E = make(Lexp::Kind::Var);
  E->Var = V;
  return E;
}

Lexp *LexpBuilder::intConst(int64_t V) {
  Lexp *E = make(Lexp::Kind::Int);
  E->IntVal = V;
  return E;
}

Lexp *LexpBuilder::realConst(double V) {
  Lexp *E = make(Lexp::Kind::Real);
  E->RealVal = V;
  return E;
}

Lexp *LexpBuilder::strConst(Symbol S) {
  Lexp *E = make(Lexp::Kind::String);
  E->StrVal = S;
  return E;
}

Lexp *LexpBuilder::fn(LVar Param, const Lty *ParamLty, const Lty *RetLty,
                      Lexp *Body) {
  Lexp *E = make(Lexp::Kind::Fn);
  E->Var = Param;
  E->Ty = ParamLty;
  E->Ty2 = RetLty;
  E->A1 = Body;
  return E;
}

Lexp *LexpBuilder::fix(Span<FixDef> Defs, Lexp *Body) {
  Lexp *E = make(Lexp::Kind::Fix);
  E->Defs = Defs;
  E->A1 = Body;
  return E;
}

Lexp *LexpBuilder::app(Lexp *Fun, Lexp *Arg) {
  Lexp *E = make(Lexp::Kind::App);
  E->A1 = Fun;
  E->A2 = Arg;
  return E;
}

Lexp *LexpBuilder::let(LVar V, Lexp *Rhs, Lexp *Body) {
  Lexp *E = make(Lexp::Kind::Let);
  E->Var = V;
  E->A1 = Rhs;
  E->A2 = Body;
  return E;
}

Lexp *LexpBuilder::record(Span<Lexp *> Elems, const Lty *RecLty) {
  Lexp *E = make(Lexp::Kind::Record);
  E->Elems = Elems;
  E->Ty = RecLty;
  return E;
}

Lexp *LexpBuilder::record(const std::vector<Lexp *> &Elems,
                          const Lty *RecLty) {
  return record(Span<Lexp *>::copy(A, Elems), RecLty);
}

Lexp *LexpBuilder::select(int Index, Lexp *Arg) {
  Lexp *E = make(Lexp::Kind::Select);
  E->Index = Index;
  E->A1 = Arg;
  return E;
}

Lexp *LexpBuilder::conExp(DataCon *DC, Lexp *Payload) {
  Lexp *E = make(Lexp::Kind::Con);
  E->DC = DC;
  E->A1 = Payload;
  return E;
}

Lexp *LexpBuilder::decon(DataCon *DC, Lexp *Arg) {
  Lexp *E = make(Lexp::Kind::Decon);
  E->DC = DC;
  E->A1 = Arg;
  return E;
}

Lexp *LexpBuilder::prim(PrimId P, const std::vector<Lexp *> &Args) {
  Lexp *E = make(Lexp::Kind::Prim);
  E->Prim = P;
  E->Elems = Span<Lexp *>::copy(A, Args);
  return E;
}

Lexp *LexpBuilder::wrap(const Lty *Contents, Lexp *Arg, const Lty *Result) {
  Lexp *E = make(Lexp::Kind::Wrap);
  E->Ty = Contents;
  E->Ty2 = Result;
  E->A1 = Arg;
  return E;
}

Lexp *LexpBuilder::unwrap(const Lty *Contents, Lexp *Arg) {
  Lexp *E = make(Lexp::Kind::Unwrap);
  E->Ty = Contents;
  E->A1 = Arg;
  return E;
}

Lexp *LexpBuilder::raise(Lexp *Arg, const Lty *ResultLty) {
  Lexp *E = make(Lexp::Kind::Raise);
  E->A1 = Arg;
  E->Ty = ResultLty;
  return E;
}

Lexp *LexpBuilder::handle(Lexp *Body, Lexp *Handler) {
  Lexp *E = make(Lexp::Kind::Handle);
  E->A1 = Body;
  E->A2 = Handler;
  return E;
}

Lexp *LexpBuilder::switchExp(Lexp *Scrut, SwitchKind SK,
                             const std::vector<SwitchCase> &Cases,
                             Lexp *Default) {
  Lexp *E = make(Lexp::Kind::Switch);
  E->A1 = Scrut;
  E->SK = SK;
  E->Cases = Span<SwitchCase>::copy(A, Cases);
  E->Default = Default;
  return E;
}

namespace {

void emit(std::ostringstream &OS, const Lexp *E) {
  switch (E->K) {
  case Lexp::Kind::Var:
    OS << 'v' << E->Var;
    return;
  case Lexp::Kind::Int:
    OS << E->IntVal;
    return;
  case Lexp::Kind::Real:
    OS << E->RealVal;
    return;
  case Lexp::Kind::String:
    OS << '"' << E->StrVal.str() << '"';
    return;
  case Lexp::Kind::Fn:
    OS << "(fn v" << E->Var << ' ';
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::Fix:
    OS << "(fix";
    for (const FixDef &D : E->Defs) {
      OS << " (v" << D.Name << " v" << D.Param << ' ';
      emit(OS, D.Body);
      OS << ')';
    }
    OS << " in ";
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::App:
    OS << "(app ";
    emit(OS, E->A1);
    OS << ' ';
    emit(OS, E->A2);
    OS << ')';
    return;
  case Lexp::Kind::Let:
    OS << "(let v" << E->Var << ' ';
    emit(OS, E->A1);
    OS << ' ';
    emit(OS, E->A2);
    OS << ')';
    return;
  case Lexp::Kind::Record:
    OS << "(record";
    for (const Lexp *X : E->Elems) {
      OS << ' ';
      emit(OS, X);
    }
    OS << ')';
    return;
  case Lexp::Kind::Select:
    OS << "(select " << E->Index << ' ';
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::Con:
    OS << "(con " << E->DC->Name.str();
    if (E->A1) {
      OS << ' ';
      emit(OS, E->A1);
    }
    OS << ')';
    return;
  case Lexp::Kind::Decon:
    OS << "(decon " << E->DC->Name.str() << ' ';
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::Switch:
    OS << "(switch ";
    emit(OS, E->A1);
    for (const SwitchCase &C : E->Cases) {
      OS << " (";
      switch (E->SK) {
      case SwitchKind::Con:
        OS << C.Con->Name.str();
        break;
      case SwitchKind::Int:
        OS << C.IntKey;
        break;
      case SwitchKind::Str:
        OS << '"' << C.StrKey.str() << '"';
        break;
      }
      OS << " => ";
      emit(OS, C.Body);
      OS << ')';
    }
    if (E->Default) {
      OS << " (default => ";
      emit(OS, E->Default);
      OS << ')';
    }
    OS << ')';
    return;
  case Lexp::Kind::Prim:
    OS << "(prim " << static_cast<int>(E->Prim);
    for (const Lexp *X : E->Elems) {
      OS << ' ';
      emit(OS, X);
    }
    OS << ')';
    return;
  case Lexp::Kind::Wrap:
    OS << "(wrap ";
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::Unwrap:
    OS << "(unwrap ";
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::Raise:
    OS << "(raise ";
    emit(OS, E->A1);
    OS << ')';
    return;
  case Lexp::Kind::Handle:
    OS << "(handle ";
    emit(OS, E->A1);
    OS << ' ';
    emit(OS, E->A2);
    OS << ')';
    return;
  }
}

} // namespace

std::string smltc::printLexp(const Lexp *E) {
  std::ostringstream OS;
  emit(OS, E);
  return OS.str();
}

size_t smltc::countLexpNodes(const Lexp *E) {
  if (!E)
    return 0;
  size_t N = 1;
  N += countLexpNodes(E->A1);
  N += countLexpNodes(E->A2);
  for (const Lexp *X : E->Elems)
    N += countLexpNodes(X);
  for (const FixDef &D : E->Defs)
    N += countLexpNodes(D.Body);
  for (const SwitchCase &C : E->Cases)
    N += countLexpNodes(C.Body);
  N += countLexpNodes(E->Default);
  return N;
}
