//===- lexp/LexpCheck.cpp - LEXP invariant checking ----------------------------===//

#include "lexp/LexpCheck.h"

#include "lexp/PrimRep.h"

#include <sstream>
#include <unordered_map>

using namespace smltc;

namespace {

/// One-word (pointer or tagged word) LTY kinds.
bool isWord(const Lty *T) {
  switch (T->kind()) {
  case LtyKind::Int:
  case LtyKind::Boxed:
  case LtyKind::RBoxed:
    return true;
  default:
    return false;
  }
}

/// "A value of type A may flow where B is expected." Boxed/record/arrow
/// confusion is tolerated (all are one-word pointers at runtime); REAL is
/// not: raw floats must be wrapped explicitly.
bool compat(const Lty *A, const Lty *B) {
  if (!A || !B)
    return true; // bottom (from raise)
  if (A == B)
    return true;
  if (A->kind() == LtyKind::Real || B->kind() == LtyKind::Real)
    return false;
  if (isWord(A) || isWord(B)) {
    // One side is an opaque word: anything non-REAL can inhabit it
    // (records and functions are pointers; INT is a tagged word).
    return true;
  }
  if (A->isRecordLike() && B->isRecordLike()) {
    if (A->fields().size() != B->fields().size())
      return false;
    for (size_t I = 0; I < A->fields().size(); ++I)
      if (!compat(A->fields()[I], B->fields()[I]))
        return false;
    return true;
  }
  if (A->kind() == LtyKind::Arrow && B->kind() == LtyKind::Arrow)
    return compat(B->from(), A->from()) && compat(A->to(), B->to());
  if (A->kind() == LtyKind::PRecord || B->kind() == LtyKind::PRecord)
    return true; // partial views are checked at coercion build time
  return false;
}

class Checker {
public:
  explicit Checker(LtyContext &LC) : LC(LC) {}

  LexpCheckResult Result;

  const Lty *check(const Lexp *E) {
    if (!Result.Ok)
      return nullptr;
    ++Result.NodesChecked;
    switch (E->K) {
    case Lexp::Kind::Var: {
      auto It = Env.find(E->Var);
      if (It == Env.end())
        return fail("unbound LEXP variable v" + std::to_string(E->Var));
      return It->second;
    }
    case Lexp::Kind::Int:
      return LC.intTy();
    case Lexp::Kind::Real:
      return LC.realTy();
    case Lexp::Kind::String:
      return LC.boxedTy();
    case Lexp::Kind::Fn: {
      Env[E->Var] = E->Ty;
      const Lty *BodyTy = check(E->A1);
      if (Result.Ok && !compat(BodyTy, E->Ty2))
        return fail("fn body type mismatch");
      return LC.arrow(E->Ty, E->Ty2);
    }
    case Lexp::Kind::Fix: {
      for (const FixDef &D : E->Defs)
        Env[D.Name] = LC.arrow(D.ParamLty, D.RetLty);
      for (const FixDef &D : E->Defs) {
        Env[D.Param] = D.ParamLty;
        const Lty *BodyTy = check(D.Body);
        if (Result.Ok && !compat(BodyTy, D.RetLty))
          return fail("fix body type mismatch");
      }
      return check(E->A1);
    }
    case Lexp::Kind::App: {
      const Lty *F = check(E->A1);
      const Lty *Arg = check(E->A2);
      if (!Result.Ok)
        return nullptr;
      if (!F)
        return nullptr; // bottom
      if (F->kind() != LtyKind::Arrow) {
        if (isWord(F))
          return LC.rboxedTy(); // coerced/unknown function
        return fail("application of a non-function");
      }
      if (!compat(Arg, F->from()))
        return fail("argument representation mismatch: " +
                    LC.toString(Arg) + " vs " + LC.toString(F->from()));
      return F->to();
    }
    case Lexp::Kind::Let: {
      const Lty *Rhs = check(E->A1);
      Env[E->Var] = Rhs;
      return check(E->A2);
    }
    case Lexp::Kind::Record: {
      if (E->Ty && E->Ty->isRecordLike() &&
          E->Ty->fields().size() != E->Elems.size())
        return fail("record arity disagrees with its LTY");
      for (size_t I = 0; I < E->Elems.size(); ++I) {
        const Lty *F = check(E->Elems[I]);
        if (!Result.Ok)
          return nullptr;
        if (E->Ty && E->Ty->isRecordLike() &&
            !compat(F, E->Ty->fields()[I]))
          return fail("record field " + std::to_string(I) +
                      " representation mismatch: " + LC.toString(F) +
                      " vs " + LC.toString(E->Ty->fields()[I]));
      }
      return E->Ty;
    }
    case Lexp::Kind::Select: {
      const Lty *Arg = check(E->A1);
      if (!Result.Ok)
        return nullptr;
      if (!Arg)
        return nullptr;
      if (Arg->isRecordLike()) {
        if (E->Index < 0 ||
            E->Index >= static_cast<int>(Arg->fields().size()))
          return fail("select index out of range");
        return Arg->fields()[E->Index];
      }
      if (Arg->kind() == LtyKind::PRecord) {
        for (const PField &F : Arg->pfields())
          if (F.Index == E->Index)
            return F.Ty;
        return fail("select index not in partial record");
      }
      if (isWord(Arg))
        return LC.rboxedTy(); // standard boxed contents
      return fail("select from a non-record");
    }
    case Lexp::Kind::Con: {
      if (E->A1) {
        const Lty *Pay = check(E->A1);
        if (Result.Ok && !compat(Pay, LC.rboxedTy()))
          return fail("constructor payload must be standard boxed");
      }
      return LC.boxedTy();
    }
    case Lexp::Kind::Decon: {
      const Lty *Arg = check(E->A1);
      if (Result.Ok && !compat(Arg, LC.boxedTy()))
        return fail("decon of a non-boxed value");
      return LC.rboxedTy();
    }
    case Lexp::Kind::Switch: {
      const Lty *Scrut = check(E->A1);
      if (!Result.Ok)
        return nullptr;
      if (E->SK == SwitchKind::Int) {
        if (!compat(Scrut, LC.intTy()))
          return fail("int switch scrutinee is not an int");
      } else if (!compat(Scrut, LC.boxedTy())) {
        return fail("switch scrutinee is not boxed");
      }
      const Lty *Res = nullptr;
      for (const SwitchCase &C : E->Cases) {
        const Lty *T = check(C.Body);
        if (!Result.Ok)
          return nullptr;
        if (!Res)
          Res = T;
        else if (!compat(T, Res) && !compat(Res, T))
          return fail("switch arms disagree in representation");
      }
      if (E->Default) {
        const Lty *T = check(E->Default);
        if (!Result.Ok)
          return nullptr;
        if (!Res)
          Res = T;
        else if (!compat(T, Res) && !compat(Res, T))
          return fail("switch default disagrees in representation");
      }
      return Res;
    }
    case Lexp::Kind::Prim: {
      int N = primArity(E->Prim);
      if (static_cast<int>(E->Elems.size()) != N)
        return fail("prim arity mismatch");
      for (int I = 0; I < N; ++I) {
        const Lty *Arg = check(E->Elems[I]);
        if (!Result.Ok)
          return nullptr;
        if (!compat(Arg, primArgLty(LC, E->Prim, I)))
          return fail("prim argument representation mismatch");
      }
      return primResLty(LC, E->Prim);
    }
    case Lexp::Kind::Wrap: {
      const Lty *Arg = check(E->A1);
      if (Result.Ok && !compat(Arg, E->Ty))
        return fail("wrap contents mismatch");
      if (E->Ty2 && E->Ty2->kind() == LtyKind::RBoxed &&
          !LC.isRecursivelyBoxed(E->Ty) &&
          E->Ty->kind() != LtyKind::Real &&
          E->Ty->kind() != LtyKind::Int &&
          E->Ty->kind() != LtyKind::Boxed)
        return fail("wrap to RBOXED of non-recursively-boxed contents: " +
                    LC.toString(E->Ty));
      return E->Ty2 ? E->Ty2 : LC.boxedTy();
    }
    case Lexp::Kind::Unwrap: {
      const Lty *Arg = check(E->A1);
      if (Result.Ok && !compat(Arg, LC.boxedTy()))
        return fail("unwrap of a non-word value");
      return E->Ty;
    }
    case Lexp::Kind::Raise: {
      const Lty *Arg = check(E->A1);
      if (Result.Ok && !compat(Arg, LC.boxedTy()))
        return fail("raise of a non-exn value");
      return nullptr; // bottom
    }
    case Lexp::Kind::Handle: {
      const Lty *Body = check(E->A1);
      const Lty *H = check(E->A2);
      if (!Result.Ok)
        return nullptr;
      if (H && H->kind() == LtyKind::Arrow) {
        if (Body && !compat(H->to(), Body) && !compat(Body, H->to()))
          return fail("handler result disagrees with body");
        return Body ? Body : H->to();
      }
      return Body;
    }
    }
    return fail("unknown LEXP node");
  }

private:
  const Lty *fail(std::string Msg) {
    if (Result.Ok) {
      Result.Ok = false;
      Result.Error = std::move(Msg);
    }
    return nullptr;
  }

  LtyContext &LC;
  std::unordered_map<LVar, const Lty *> Env;
};

} // namespace

LexpCheckResult smltc::checkLexp(const Lexp *Program, LtyContext &LC) {
  Checker C(LC);
  C.check(Program);
  return C.Result;
}
