//===- lexp/PrimRep.h - Primitive representation types -----------------------===//
///
/// \file
/// The fixed representation types of the primitive operators: what LTYs a
/// prim consumes and produces. Coercions at each occurrence adapt the
/// instance representation to these (e.g. FAdd always computes on raw
/// REALs; under boxed-float modes the operands are unwrapped first, which
/// is exactly the boxing traffic the paper's sml.ffb eliminates).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LEXP_PRIMREP_H
#define SMLTC_LEXP_PRIMREP_H

#include "elab/Absyn.h"
#include "lty/Lty.h"

namespace smltc {

/// Number of (unbundled) arguments the primitive takes.
int primArity(PrimId P);

/// The LTY of argument \p I.
const Lty *primArgLty(LtyContext &LC, PrimId P, int I);

/// The result LTY.
const Lty *primResLty(LtyContext &LC, PrimId P);

} // namespace smltc

#endif // SMLTC_LEXP_PRIMREP_H
