//===- lexp/MatchComp.h - Pattern-match compilation --------------------------===//
///
/// \file
/// Compiles typed Absyn pattern matches into LEXP decision trees of SWITCH
/// expressions (paper Figure 3: "compilation of pattern matches" happens in
/// the Lambda Translator). The compiler is representation-aware: values
/// fetched out of datatype payloads are in standard boxed form, and
/// coercions to the typed representation are inserted only where a variable
/// is actually bound — so walking an int list costs nothing extra, while
/// binding a flat float pair out of a list performs the (paid-for) Leroy
/// coercion the paper describes in Section 2.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_LEXP_MATCHCOMP_H
#define SMLTC_LEXP_MATCHCOMP_H

#include "elab/Absyn.h"
#include "lexp/Coerce.h"
#include "lexp/Lexp.h"
#include "lty/TypeToLty.h"
#include "types/Type.h"

#include <functional>
#include <vector>

namespace smltc {

class MatchCompiler {
public:
  /// Emits a match arm's body given the variable bindings (already at the
  /// representation of each variable's type).
  using EmitFn =
      std::function<Lexp *(const std::vector<std::pair<ValInfo *, LVar>> &)>;
  using FailFn = std::function<Lexp *()>;
  /// Translates an exception-tag expression (AExp::ExnTag or AExp::Path).
  using TransExpFn = std::function<Lexp *(AExp *)>;

  struct Col {
    LVar V;
    Type *Ty;
    bool Std; ///< value is in standard boxed (RBOXED) form
  };
  struct Row {
    std::vector<APat *> Pats;
    EmitFn Emit;
  };

  MatchCompiler(LexpBuilder &B, TypeLowering &Low, Coercer &C,
                TypeContext &Types, TransExpFn TransExp)
      : B(B), Low(Low), C(C), Types(Types), TransExp(std::move(TransExp)) {}

  Lexp *compile(std::vector<Col> Cols, const std::vector<Row> &Rows,
                FailFn Fail);

private:
  struct IRow {
    std::vector<APat *> Pats;
    std::vector<std::tuple<ValInfo *, LVar, bool>> Binds; // (var, col, std)
    const Row *Src;
  };

  Lexp *compileRec(std::vector<Col> Cols, std::vector<IRow> Rows,
                   FailFn Fail);
  void normalizeRow(const std::vector<Col> &Cols, IRow &R);
  Lexp *leaf(const IRow &R);
  Lexp *fetchStd(const Col &C) { return B.var(C.V); }

  LexpBuilder &B;
  TypeLowering &Low;
  Coercer &C;
  TypeContext &Types;
  TransExpFn TransExp;
};

} // namespace smltc

#endif // SMLTC_LEXP_MATCHCOMP_H
