//===- farm/Tenant.h - Tenant token file and quota registry ------------------===//
///
/// \file
/// Tenancy configuration for the build farm. A daemon started with
/// `--token-file=PATH` loads one tenant per line:
///
///     # name   token          [weight]  [max_inflight]  [max_queued]
///     team-a   s3cret-a       3         8               64
///     team-b   s3cret-b       1
///
/// Whitespace-separated; `#` starts a comment; blank lines are skipped.
/// Omitted trailing fields take the defaults below. The token is the
/// only credential a client presents (in a TenantAuth frame after
/// Hello); the tenant name is what shows up in per-tenant metric labels
/// and so is restricted to label-safe characters.
///
/// Loading is all-or-nothing and happens once at startup: a malformed
/// line, a duplicate name, or a duplicate token rejects the whole file
/// (a farm silently running with half its tenants is worse than one
/// that refuses to start).
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_FARM_TENANT_H
#define SMLTC_FARM_TENANT_H

#include <cstdint>
#include <string>
#include <vector>

namespace smltc {
namespace farm {

struct TenantConfig {
  std::string Name;
  std::string Token;
  /// Fair-share weight: a tenant with weight 3 is admitted 3x as often
  /// as a weight-1 tenant when both have work queued.
  uint32_t Weight = 1;
  /// Max requests from this tenant in flight (submitted to the compile
  /// pool, not yet completed). 0 = unlimited.
  uint32_t MaxInFlight = 8;
  /// Max requests from this tenant waiting for admission. 0 =
  /// unlimited. Beyond it the tenant gets QueueFull while others are
  /// unaffected — one noisy tenant cannot fill the shared queue.
  uint32_t MaxQueued = 64;
};

/// Parses and holds the tenant set. Immutable after a successful load;
/// safe to share across threads by const reference.
class TenantRegistry {
public:
  /// Loads `Path`; false + `Err` on I/O or parse failure.
  bool loadFile(const std::string &Path, std::string &Err);
  /// Parses token-file text (exposed for tests and in-process benches).
  bool parse(const std::string &Text, std::string &Err);

  const TenantConfig *byToken(const std::string &Token) const;
  const TenantConfig *byName(const std::string &Name) const;
  const std::vector<TenantConfig> &tenants() const { return Tenants; }
  bool empty() const { return Tenants.empty(); }

private:
  std::vector<TenantConfig> Tenants;
};

} // namespace farm
} // namespace smltc

#endif // SMLTC_FARM_TENANT_H
