//===- farm/FairShare.h - Weighted fair-share compile admission --------------===//
///
/// \file
/// Replaces the compile server's single global bounded queue with
/// weighted fair-share admission across tenants. Each tenant owns a
/// FIFO of queued compile jobs plus two quotas (max queued, max in
/// flight); the scheduler releases jobs to the worker pool by picking,
/// among tenants that have work and in-flight headroom, the one with
/// the least *virtual service* — admissions counted at 1/weight each,
/// the classic stride-scheduling currency. A weight-3 tenant therefore
/// gets 3x the admissions of a weight-1 tenant under contention, an
/// idle tenant's credit is clamped when it returns (no banked bursts),
/// and a tenant that floods its own queue hits its `MaxQueued` quota
/// with `QueueFull` while everyone else is untouched.
///
/// Single-threaded by design: the compile server's poll loop owns the
/// scheduler the same way it owns every connection, so there is no lock
/// and no memory-ordering question — completions arrive on the poll
/// thread via the existing completion queue.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_FARM_FAIRSHARE_H
#define SMLTC_FARM_FAIRSHARE_H

#include "driver/Batch.h"
#include "farm/Tenant.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace smltc {
namespace obs {
class Counter;
class Histogram;
} // namespace obs

namespace farm {

/// A compile request accepted into a tenant queue, waiting for the
/// scheduler to release it to the worker pool. Identified by the same
/// (connection id, sequence) key as the server's pending-request map.
struct QueuedJob {
  uint64_t ConnId = 0;
  uint64_t Seq = 0;
  CompileJob Job;
  uint32_t DeadlineMs = 0;
};

class FairShareScheduler {
public:
  struct Tenant {
    TenantConfig Cfg;
    std::deque<QueuedJob> Q;
    uint32_t InFlight = 0;      ///< released to the pool, not completed
    double VirtualService = 0;  ///< admissions weighted by 1/Cfg.Weight
    // Poll-thread-owned tallies, published via the obs registry.
    uint64_t Requests = 0;      ///< compile requests seen (incl. hits)
    uint64_t Admitted = 0;      ///< released to the pool
    uint64_t QuotaRejects = 0;  ///< bounced on MaxQueued / global cap
    // Registered per-tenant instruments (owned by the registry).
    obs::Counter *ReqCounter = nullptr;
    obs::Counter *RejCounter = nullptr;
    obs::Histogram *LatencyHist = nullptr;
  };

  /// `GlobalMaxQueued` bounds the sum of all tenant queues (0 =
  /// unbounded) — the farm-wide memory guard on top of the per-tenant
  /// quotas.
  explicit FairShareScheduler(size_t GlobalMaxQueued)
      : GlobalMaxQueued(GlobalMaxQueued) {}

  Tenant &addTenant(const TenantConfig &Cfg);
  Tenant *byName(const std::string &Name);

  enum class Verdict : uint8_t {
    Queued,          ///< accepted into the tenant queue
    TenantQueueFull, ///< tenant's MaxQueued quota hit
    GlobalQueueFull, ///< farm-wide queue cap hit
  };
  Verdict enqueue(Tenant &T, QueuedJob Item);

  /// Releases the next job under fair share: among tenants with queued
  /// work and in-flight headroom, the least virtual service wins.
  /// Charges the tenant's in-flight slot and service; the caller pairs
  /// every successful pop with exactly one later `onComplete` (also for
  /// jobs it then discards as stale).
  bool popNext(QueuedJob &Out, Tenant *&Owner);

  /// A released job finished (or was discarded before submission).
  void onComplete(Tenant &T) {
    if (T.InFlight > 0)
      --T.InFlight;
  }

  /// Empties every tenant queue (drain path); returns the jobs so the
  /// server can answer each with Status::Draining. In-flight charges
  /// are untouched — those jobs are really running.
  std::vector<QueuedJob> drainAll();

  size_t totalQueued() const { return TotalQueued; }
  const std::vector<std::unique_ptr<Tenant>> &tenants() const {
    return Tenants;
  }
  std::vector<std::unique_ptr<Tenant>> &tenants() { return Tenants; }

private:
  /// Least virtual service among tenants that currently matter (queued
  /// work or in-flight jobs); the clamp floor for returning idlers.
  double minActiveService() const;

  size_t GlobalMaxQueued;
  size_t TotalQueued = 0;
  std::vector<std::unique_ptr<Tenant>> Tenants;
};

} // namespace farm
} // namespace smltc

#endif // SMLTC_FARM_FAIRSHARE_H
