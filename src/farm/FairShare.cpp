//===- farm/FairShare.cpp - Weighted fair-share compile admission ------------===//

#include "farm/FairShare.h"

#include <algorithm>

using namespace smltc;
using namespace smltc::farm;

FairShareScheduler::Tenant &
FairShareScheduler::addTenant(const TenantConfig &Cfg) {
  for (auto &T : Tenants)
    if (T->Cfg.Name == Cfg.Name)
      return *T;
  auto T = std::make_unique<Tenant>();
  T->Cfg = Cfg;
  Tenants.push_back(std::move(T));
  return *Tenants.back();
}

FairShareScheduler::Tenant *FairShareScheduler::byName(
    const std::string &Name) {
  for (auto &T : Tenants)
    if (T->Cfg.Name == Name)
      return T.get();
  return nullptr;
}

double FairShareScheduler::minActiveService() const {
  double Min = 0;
  bool Any = false;
  for (const auto &T : Tenants) {
    if (T->Q.empty() && T->InFlight == 0)
      continue;
    if (!Any || T->VirtualService < Min) {
      Min = T->VirtualService;
      Any = true;
    }
  }
  return Any ? Min : 0;
}

FairShareScheduler::Verdict FairShareScheduler::enqueue(Tenant &T,
                                                        QueuedJob Item) {
  if (T.Cfg.MaxQueued != 0 && T.Q.size() >= T.Cfg.MaxQueued) {
    ++T.QuotaRejects;
    return Verdict::TenantQueueFull;
  }
  if (GlobalMaxQueued != 0 && TotalQueued >= GlobalMaxQueued) {
    ++T.QuotaRejects;
    return Verdict::GlobalQueueFull;
  }
  // A tenant going from idle to active re-enters at the pack's current
  // service level: fairness is about rates while competing, not about
  // banking credit while away.
  if (T.Q.empty() && T.InFlight == 0)
    T.VirtualService = std::max(T.VirtualService, minActiveService());
  T.Q.push_back(std::move(Item));
  ++TotalQueued;
  return Verdict::Queued;
}

bool FairShareScheduler::popNext(QueuedJob &Out, Tenant *&Owner) {
  Tenant *Best = nullptr;
  for (auto &T : Tenants) {
    if (T->Q.empty())
      continue;
    if (T->Cfg.MaxInFlight != 0 && T->InFlight >= T->Cfg.MaxInFlight)
      continue;
    if (!Best || T->VirtualService < Best->VirtualService)
      Best = T.get();
  }
  if (!Best)
    return false;
  Out = std::move(Best->Q.front());
  Best->Q.pop_front();
  --TotalQueued;
  ++Best->InFlight;
  ++Best->Admitted;
  Best->VirtualService += 1.0 / static_cast<double>(Best->Cfg.Weight);
  Owner = Best;
  return true;
}

std::vector<QueuedJob> FairShareScheduler::drainAll() {
  std::vector<QueuedJob> Out;
  for (auto &T : Tenants) {
    for (QueuedJob &J : T->Q)
      Out.push_back(std::move(J));
    T->Q.clear();
  }
  TotalQueued = 0;
  return Out;
}
