//===- farm/Router.h - Shard-aware front door for the build farm -------------===//
///
/// \file
/// The farm's front door: a router that speaks the same frame protocol
/// as the compile daemons and forwards each CompileReq to one of N
/// backend daemons chosen by consistent-hashing the request's
/// content-addressed cache-key hash. The same source therefore always
/// lands on the same shard (its memory/disk cache stays hot), adding a
/// backend remaps only ~1/N of the key space, and capacity scales by
/// pointing more daemons at the ring.
///
/// Responses are relayed byte-for-byte: the router never re-encodes a
/// backend's CompileResp payload, so programs coming through the router
/// are bit-identical to direct compiles. In-band rejections (QueueFull,
/// Draining, CompileFailed...) pass through untouched — only *transport*
/// failures (backend unreachable, connection broken mid-request) are
/// retried, with bounded backoff, against the next distinct backend on
/// the ring; the failed backend is marked unhealthy and re-probed in the
/// background. Ping/Stats are answered locally, ShutdownReq stops the
/// router only, and HTTP `GET /metrics` scrapes the router's own
/// registry (per-backend forward/failure/health series).
///
/// Concurrency model: unlike the daemon's single poll loop, the router
/// is thread-per-connection — each client conversation is a blocking
/// proxy loop holding its own cached backend connections, so slow
/// backends only stall their own clients. Shared state (backend health,
/// counters) is atomic.
///
//===----------------------------------------------------------------------===//

#ifndef SMLTC_FARM_ROUTER_H
#define SMLTC_FARM_ROUTER_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "server/Client.h"
#include "server/Protocol.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace smltc {
namespace farm {

struct RouterOptions {
  /// TCP listen address "HOST:PORT" (port 0 = ephemeral; see tcpAddr()).
  std::string ListenAddr;
  /// Optional Unix socket to listen on as well.
  std::string SocketPath;
  /// Backend daemon addresses: "HOST:PORT", "tcp://HOST:PORT", or a
  /// Unix socket path (anything containing '/').
  std::vector<std::string> Backends;
  /// Tenant token forwarded to backends that require authentication.
  /// Clients may also present their own TenantAuth, which wins.
  std::string Token;
  size_t MaxConnections = 128;
  /// Transport-failure retries per request (distinct backends).
  int MaxAttempts = 3;
  /// Base backoff before a retry; doubles per attempt.
  int RetryBaseMs = 25;
  /// Unhealthy backends are re-probed at this interval.
  int HealthProbeIntervalMs = 500;
  /// Ring points per backend; more points = smoother key spread.
  int VirtualNodes = 64;
};

class FarmRouter {
public:
  explicit FarmRouter(RouterOptions Options);
  ~FarmRouter();
  FarmRouter(const FarmRouter &) = delete;
  FarmRouter &operator=(const FarmRouter &) = delete;

  /// Validates backends, builds the hash ring, binds the listeners.
  bool start(std::string &Err);
  /// Serves until requestStop() or a client ShutdownReq. Returns the
  /// number of compile requests forwarded.
  uint64_t run();
  /// Thread-safe stop request (also wired to SIGTERM/SIGINT by main).
  void requestStop();

  /// The TCP address actually bound (resolves ephemeral ports).
  const std::string &tcpAddr() const { return BoundTcpAddr; }

  /// Ring lookup, exposed for tests: candidate backend indices for a
  /// key hash, primary first, each backend at most once.
  std::vector<size_t> candidatesFor(uint64_t KeyHash) const;

private:
  struct Backend {
    std::string Addr; ///< normalized connect target
    std::atomic<bool> Healthy{true};
    std::atomic<uint64_t> Forwarded{0};
    std::atomic<uint64_t> Failures{0};
  };

  void handleConn(int Fd);
  void handleHttpConn(int Fd, std::string In);
  /// Forwards one CompileReq frame; answers the client on Fd either
  /// with the relayed response or a router-level error.
  void forwardCompile(int Fd, const server::Frame &F,
                      std::string &ConnToken,
                      std::vector<std::unique_ptr<server::Client>> &Pool);
  /// Records one forwarded (or exhausted) compile into the process
  /// RequestLog so the router's /tracez lists its slowest forwards.
  void recordForward(std::chrono::steady_clock::time_point Arrival,
                     uint64_t RequestId, const obs::TraceContext &Ctx);
  /// Returns a connected (and, if needed, authenticated) client for
  /// backend `Idx` from the per-connection pool, or null on failure.
  server::Client *backendClient(
      size_t Idx, const std::string &ConnToken,
      std::vector<std::unique_ptr<server::Client>> &Pool);
  void probeLoop();
  bool sendAll(int Fd, const std::string &Bytes);
  std::string statsJson() const;
  /// The /statusz JSON document: build identity, uptime, drain state,
  /// and the backend ring with per-backend health and counters.
  std::string renderStatusz() const;
  void registerMetrics();

  RouterOptions Opts;
  std::vector<std::unique_ptr<Backend>> Backends;
  /// Consistent-hash ring: (point, backend index), sorted by point.
  std::vector<std::pair<uint64_t, size_t>> Ring;

  obs::Registry Reg;
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> CompileForwards{0};
  std::atomic<uint64_t> Retries{0};
  std::atomic<uint64_t> Unroutable{0};
  std::atomic<uint64_t> ScrapeRequests{0};
  std::atomic<uint64_t> ProtocolErrors{0};
  std::atomic<uint64_t> ConnsAccepted{0};
  std::atomic<uint64_t> ConnsRejected{0};

  int TcpListenFd = -1;
  int UnixListenFd = -1;
  std::string BoundTcpAddr;
  int StopPipe[2] = {-1, -1};
  std::atomic<bool> StopRequested{false};
  bool Started = false;
  std::chrono::steady_clock::time_point StartTime{
      std::chrono::steady_clock::now()};

  /// Connection threads are detached; this counts the live ones so
  /// shutdown can wait for them (receive timeouts keep every thread
  /// checking StopRequested, so the wait is bounded).
  std::atomic<size_t> LiveConns{0};
  std::thread Prober;
};

} // namespace farm
} // namespace smltc

#endif // SMLTC_FARM_ROUTER_H
